(* The full benchmark harness: regenerates every table and figure of the
   paper's evaluation (simulated time, §5.3 + appendices) and finishes with
   Bechamel wall-clock micro-benchmarks of the engine's hot paths.

   Environment knobs:
     DEUT_SCALE        divisor of the paper's sizes (default 64; smaller =
                       bigger experiment; see DESIGN.md §1)
     DEUT_QUICK        if set, runs a reduced sweep for smoke-testing
     DEUT_BENCH_JSON   output path for the machine-readable run summary
                       (default BENCH_recovery.json in the working dir) *)

module Figures = Deut_workload.Figures
module Client_sched = Deut_workload.Client_sched
module Experiment = Deut_workload.Experiment
module Config = Deut_core.Config
module Recovery = Deut_core.Recovery
module Rs = Deut_core.Recovery_stats

let scale =
  match Sys.getenv_opt "DEUT_SCALE" with
  | Some s -> ( try max 8 (int_of_string s) with _ -> 64)
  | None -> 64

let quick = Sys.getenv_opt "DEUT_QUICK" <> None

(* Real OS-level parallelism for the DOMAINS section: DEUT_DOMAINS when
   set above 1, else as many of the machine's cores as the section can
   use (capped at 4 — the sweep it times has that much width).  Every
   other section honours DEUT_DOMAINS through [Config.default]. *)
let bench_domains =
  let d = Config.default.Config.domains in
  if d > 1 then d else Stdlib.min 4 (Deut_sim.Domain_pool.available_cores ())

let progress msg = Printf.eprintf "[bench] %s\n%!" msg

let section title =
  print_newline ();
  print_endline (String.make 78 '=');
  print_endline title;
  print_endline (String.make 78 '=');
  print_newline ()

(* Wall-clock accounting per harness section, reported at the end and in the
   JSON summary.  The workload is allocation-heavy (every insert encodes a
   log record; every flush stamps a page image), so a minor heap sized for
   interactive programs spends a measurable fraction of the run in the GC —
   give the bench process a larger nursery up front. *)
let () =
  Gc.set
    { (Gc.get ()) with Gc.minor_heap_size = 8 * 1024 * 1024; Gc.space_overhead = 400 }

let section_walls : (string * float) list ref = ref []

(* Shared across sections: several sweeps use structurally identical
   setups (fig2@512 = fig3@1x = the standard-Δ ablation row, fig2@64 =
   the small-cache parallel-redo sweep), and each duplicate build costs
   real seconds.  Results are identical either way — [Experiment.build]
   is deterministic. *)
let build_cache = Deut_workload.Experiment.build_cache ()

let timed_section name f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  section_walls := (name, Unix.gettimeofday () -. t0) :: !section_walls;
  r

(* Machine-readable summary: wall-clock seconds alongside the key simulated
   metrics per (method, cache size).  Hand-rolled writer with a fixed field
   order so runs diff cleanly; consumed by CI as an artifact. *)
let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* The DOMAINS section's measurements, emitted as their own JSON block. *)
type domains_summary = {
  d_requested : int;  (* DEUT_DOMAINS as configured (1 when unset) *)
  d_used : int;  (* domains the parallel sweep actually ran on *)
  d_cores : int;  (* Domain.recommended_domain_count at run time *)
  d_seq_wall_s : float;
  d_par_wall_s : float;
  d_digests_identical : bool;
  d_redo_domains : int;
  d_redo_seq_wall_s : float;
  d_redo_par_wall_s : float;
  d_redo_identical : bool;
}

let write_bench_json ~total_wall_s ~(archiving : Figures.archiving_cell list)
    ~(availability : Figures.availability_cell list)
    ~(sharding : Figures.sharding_cell list) ~(domains : domains_summary)
    (fig2_cells : Figures.fig2_cell list) =
  let path =
    match Sys.getenv_opt "DEUT_BENCH_JSON" with Some p -> p | None -> "BENCH_recovery.json"
  in
  let b = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "{\n";
  add "  \"schema\": \"deut-bench-recovery/1\",\n";
  add "  \"scale\": %d,\n" scale;
  add "  \"quick\": %b,\n" quick;
  add "  \"total_wall_s\": %.3f,\n" total_wall_s;
  add "  \"sections\": [\n";
  let sections = List.rev !section_walls in
  List.iteri
    (fun i (name, w) ->
      add "    { \"name\": \"%s\", \"wall_s\": %.3f }%s\n" (json_escape name) w
        (if i < List.length sections - 1 then "," else ""))
    sections;
  add "  ],\n";
  add "  \"archiving\": [\n";
  let n_arch = List.length archiving in
  List.iteri
    (fun i (cell : Figures.archiving_cell) ->
      let last =
        List.nth cell.Figures.a_rounds (List.length cell.Figures.a_rounds - 1)
      in
      add
        "    { \"archive\": %b, \"rounds\": %d, \"final_logged_kb\": %.1f, \
         \"final_live_kb\": %.1f, \"final_archived_kb\": %.1f, \"segments\": %d, \
         \"digest\": \"%s\" }%s\n"
        cell.Figures.a_archive
        (List.length cell.Figures.a_rounds)
        last.Figures.ar_logged_kb last.Figures.ar_live_kb last.Figures.ar_archive_kb
        last.Figures.ar_segments (json_escape cell.Figures.a_digest)
        (if i < n_arch - 1 then "," else ""))
    archiving;
  add "  ],\n";
  add "  \"availability\": [\n";
  let n_av = List.length availability in
  List.iteri
    (fun i (c : Figures.availability_cell) ->
      add
        "    { \"cache_mb\": %d, \"ttft_ms\": %.3f, \"drained_ms\": %.3f, \
         \"log2_total_ms\": %.3f, \"speedup\": %.2f, \"pages_ondemand\": %d, \
         \"pages_background\": %d, \"probe_reads\": %d }%s\n"
        c.Figures.v_cache_mb c.Figures.v_ttft_ms c.Figures.v_drained_ms
        c.Figures.v_log2_total_ms c.Figures.v_speedup c.Figures.v_pages_ondemand
        c.Figures.v_pages_background c.Figures.v_probe_reads
        (if i < n_av - 1 then "," else ""))
    availability;
  add "  ],\n";
  add "  \"sharding\": [\n";
  let n_sh = List.length sharding in
  List.iteri
    (fun i (c : Figures.sharding_cell) ->
      let s = c.Figures.sh_stats in
      add
        "    { \"shards\": %d, \"clients\": %d, \"txns\": %d, \"makespan_ms\": %.3f, \
         \"tput_tps\": %.0f, \"net_msgs\": %d, \"recover_shard_ms\": %s, \
         \"digest\": \"%s\" }%s\n"
        c.Figures.sh_shards c.Figures.sh_clients s.Client_sched.committed_txns
        s.Client_sched.makespan_ms s.Client_sched.throughput_tps c.Figures.sh_net_msgs
        (match c.Figures.sh_crash with
        | Some cr -> Printf.sprintf "%.3f" cr.Figures.sc_recover_ms
        | None -> "null")
        (json_escape c.Figures.sh_digest)
        (if i < n_sh - 1 then "," else ""))
    sharding;
  add "  ],\n";
  let d = domains in
  add "  \"domains\": {\n";
  add "    \"requested\": %d,\n" d.d_requested;
  add "    \"used\": %d,\n" d.d_used;
  add "    \"cores_available\": %d,\n" d.d_cores;
  add "    \"harness_seq_wall_s\": %.3f,\n" d.d_seq_wall_s;
  add "    \"harness_par_wall_s\": %.3f,\n" d.d_par_wall_s;
  add "    \"harness_speedup\": %.2f,\n"
    (if d.d_par_wall_s > 0.0 then d.d_seq_wall_s /. d.d_par_wall_s else 0.0);
  add "    \"harness_digests_identical\": %b,\n" d.d_digests_identical;
  add "    \"redo_domains\": %d,\n" d.d_redo_domains;
  add "    \"redo_seq_wall_s\": %.3f,\n" d.d_redo_seq_wall_s;
  add "    \"redo_par_wall_s\": %.3f,\n" d.d_redo_par_wall_s;
  add "    \"redo_digest_identical\": %b\n" d.d_redo_identical;
  add "  },\n";
  add "  \"fig2\": [\n";
  let n_cells = List.length fig2_cells in
  List.iteri
    (fun ci (cell : Figures.fig2_cell) ->
      add "    {\n";
      add "      \"cache_mb\": %d,\n" cell.Figures.cache_mb;
      add "      \"pool_pages\": %d,\n" cell.Figures.pool_pages;
      add "      \"db_pages\": %d,\n" cell.Figures.db_pages;
      add "      \"build_wall_s\": %.3f,\n" cell.Figures.build_wall_s;
      add "      \"methods\": [\n";
      let n_m = List.length cell.Figures.methods in
      List.iteri
        (fun mi (m, stats) ->
          let wall = try List.assoc m cell.Figures.method_walls with Not_found -> 0.0 in
          add "        { \"method\": \"%s\", \"wall_s\": %.4f, "
            (Recovery.method_to_string m) wall;
          add "\"analysis_ms\": %.3f, \"redo_ms\": %.3f, \"undo_ms\": %.3f, "
            (Rs.analysis_ms stats) (Rs.redo_ms stats) (Rs.undo_ms stats);
          add "\"records_scanned\": %d, \"redo_applied\": %d, "
            stats.Rs.records_scanned stats.Rs.redo_applied;
          add "\"data_page_fetches\": %d, \"log_pages_read\": %d }%s\n"
            stats.Rs.data_page_fetches stats.Rs.log_pages_read
            (if mi < n_m - 1 then "," else ""))
        cell.Figures.methods;
      add "      ]\n";
      add "    }%s\n" (if ci < n_cells - 1 then "," else ""))
    fig2_cells;
  add "  ]\n";
  add "}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents b);
  close_out oc;
  progress (Printf.sprintf "wrote %s" path)

let () =
  let harness_t0 = Unix.gettimeofday () in
  Printf.printf
    "Deuteronomy logical-recovery reproduction — benchmark harness\n\
     scale: 1/%d of the paper's sizes (DB %d pages-equivalent; see DESIGN.md)\n\
     All recovery runs are verified against the committed-state oracle before\n\
     their timings are reported.\n"
    scale (436_000 / scale);

  (* Figure 2: one workload+crash per cache size, five recoveries each. *)
  let cache_sizes = if quick then [ 64; 512; 2048 ] else [ 64; 128; 256; 512; 1024; 2048 ] in
  let fig2_cells =
    timed_section "fig2" (fun () -> Figures.run_fig2 ~cache:build_cache ~scale ~cache_sizes ~progress ())
  in
  section "FIGURE 2(a)";
  print_string (Figures.fig2a fig2_cells);
  section "FIGURE 2(b)";
  print_string (Figures.fig2b fig2_cells);
  section "FIGURE 2(c)";
  print_string (Figures.fig2c fig2_cells);
  section "PER-PHASE BREAKDOWN";
  print_string (Figures.phase_table fig2_cells);
  section "SECTION 5.3 CLAIMS";
  print_string (Figures.sec53 fig2_cells);
  section "APPENDIX B COST MODEL";
  print_string (Figures.costmodel fig2_cells);

  (* Figure 3: checkpoint-interval sweep. *)
  let multipliers = if quick then [ 1; 5 ] else [ 1; 5; 10 ] in
  let fig3_cells =
    timed_section "fig3" (fun () -> Figures.run_fig3 ~cache:build_cache ~scale ~multipliers ~progress ())
  in
  section "FIGURE 3 (APPENDIX C)";
  print_string (Figures.fig3 fig3_cells);

  (* Appendix D ablations. *)
  let appd_rows = timed_section "appd" (fun () -> Figures.run_appd ~cache:build_cache ~scale ~progress ()) in
  section "APPENDIX D ABLATIONS";
  print_string (Figures.appd appd_rows);

  (* Split-log layout: the Deuteronomy architecture proper (§4.2). *)
  let split_rows = timed_section "split" (fun () -> Figures.run_split ~cache:build_cache ~scale ~progress ()) in
  section "SPLIT-LOG LAYOUT (§4.2)";
  print_string (Figures.split_table split_rows);

  (* Partitioned parallel redo: worker-count sweep at an IO-bound (small)
     and an apply-bound (large) cache, with latency percentiles. *)
  let workers_cache_sizes = if quick then [ 64 ] else [ 64; 512 ] in
  let workers = if quick then [ 1; 4 ] else [ 1; 2; 4; 8 ] in
  let workers_cells =
    timed_section "workers" (fun () ->
        Figures.run_workers ~cache:build_cache ~scale ~cache_sizes:workers_cache_sizes ~workers ~progress ())
  in
  section "PARALLEL REDO";
  print_string (Figures.workers_table workers_cells);

  (* Real multicore: the same sweep run sequentially and fanned across
     OS-level domains.  Simulated results and digests must be identical
     (the determinism gate — the run aborts otherwise); only wall clock
     may differ.  Fresh caches on both sides so the parallel run cannot
     coast on the sequential run's builds. *)
  let domains_cache_sizes = if quick then [ 64; 128 ] else [ 64; 128; 256; 512 ] in
  let domains_summary =
    timed_section "domains" (fun () ->
        progress
          (Printf.sprintf "domains: sweep at 1 then %d domain(s), %d core(s) available"
             bench_domains
             (Deut_sim.Domain_pool.available_cores ()));
        let sweep domains =
          let cache = Experiment.build_cache () in
          let t0 = Unix.gettimeofday () in
          let cells =
            Figures.run_fig2 ~cache ~scale ~cache_sizes:domains_cache_sizes ~progress ~domains ()
          in
          Experiment.drop_cache cache;
          (cells, Unix.gettimeofday () -. t0)
        in
        let seq_cells, seq_wall = sweep 1 in
        let par_cells, par_wall = sweep bench_domains in
        let digests_identical =
          List.for_all2
            (fun (a : Figures.fig2_cell) (b : Figures.fig2_cell) ->
              a.Figures.digests = b.Figures.digests)
            seq_cells par_cells
        in
        if not digests_identical then
          failwith "DOMAINS: harness digests diverged between 1 domain and the parallel sweep";
        (* Domain-parallel redo on one image: the same recovery executed by
           the reference scheduler and by real partitions. *)
        let setup = Experiment.paper_setup ~scale ~cache_mb:256 () in
        let run = Experiment.build setup in
        let redo domains =
          let config =
            { run.Experiment.image.Deut_core.Crash_image.config with Config.domains }
          in
          let t0 = Unix.gettimeofday () in
          let db, _stats = Deut_core.Db.recover ~config run.Experiment.image Recovery.Log2 in
          let wall = Unix.gettimeofday () -. t0 in
          (Experiment.store_digest db, Client_sched.logical_digest db, wall)
        in
        let rs1, rl1, redo_seq_wall = redo 1 in
        let rsn, rln, redo_par_wall = redo bench_domains in
        let redo_identical = rs1 = rsn && rl1 = rln in
        if not redo_identical then
          failwith "DOMAINS: domain-parallel redo digest diverged from the reference scheduler";
        {
          d_requested = Config.default.Config.domains;
          d_used = bench_domains;
          d_cores = Deut_sim.Domain_pool.available_cores ();
          d_seq_wall_s = seq_wall;
          d_par_wall_s = par_wall;
          d_digests_identical = digests_identical;
          d_redo_domains = bench_domains;
          d_redo_seq_wall_s = redo_seq_wall;
          d_redo_par_wall_s = redo_par_wall;
          d_redo_identical = redo_identical;
        })
  in
  section "DOMAINS (real multicore)";
  Printf.printf
    "  cores available: %d, domains used: %d (DEUT_DOMAINS=%d)\n\
    \  harness sweep:   %.2f s sequential -> %.2f s parallel (%.2fx), digests identical: %b\n\
    \  Log2 redo:       %.2f s at 1 domain -> %.2f s at %d domains, digest identical: %b\n\
    \  (simulated times and digests are byte-identical by construction;\n\
    \   wall-clock speedup tracks the machine's real core count)\n"
    domains_summary.d_cores domains_summary.d_used domains_summary.d_requested
    domains_summary.d_seq_wall_s domains_summary.d_par_wall_s
    (if domains_summary.d_par_wall_s > 0.0 then
       domains_summary.d_seq_wall_s /. domains_summary.d_par_wall_s
     else 0.0)
    domains_summary.d_digests_identical domains_summary.d_redo_seq_wall_s
    domains_summary.d_redo_par_wall_s domains_summary.d_redo_domains
    domains_summary.d_redo_identical;

  (* Concurrency: simulated clients sharing the engine during normal
     execution, swept over client count × group-commit batch.  The runner
     cross-checks that every cell converges to the same logical digest. *)
  let conc_clients = if quick then [ 1; 4 ] else [ 1; 2; 4; 8 ] in
  let conc_groups = if quick then [ 1; 4 ] else [ 1; 4; 16 ] in
  let conc_txns = if quick then 120 else 300 in
  let conc_cells =
    timed_section "concurrency" (fun () ->
        Figures.run_concurrency ~scale ~clients:conc_clients ~group_commits:conc_groups
          ~txns:conc_txns ~progress ())
  in
  section "CONCURRENCY";
  print_string (Figures.concurrency_table conc_cells);

  (* Sharding: one TC driving N data components through the Dc_access
     protocol.  The runner enforces shard transparency (digest identical
     in every cell) and runs the single-shard-crash availability scenario
     per multi-shard cell. *)
  let shard_counts = if quick then [ 1; 4 ] else [ 1; 2; 4; 8 ] in
  let shard_clients = if quick then [ 4 ] else [ 4; 8 ] in
  let shard_txns = if quick then 120 else 300 in
  let shard_cells =
    timed_section "sharding" (fun () ->
        Figures.run_sharding ~scale ~shards:shard_counts ~clients:shard_clients
          ~txns:shard_txns ~progress ())
  in
  section "SHARDING";
  print_string (Figures.sharding_table shard_cells);

  (* Log archiving: the long-running multi-client workload with periodic
     checkpoint + archive cuts.  The runner enforces the durability
     contract (sealed coverage meets the live base every round), digest
     equality with archiving off, a bounded live log, and oracle-verified
     restart from the truncated log + archive with every method. *)
  let arch_rounds = if quick then 4 else 8 in
  let arch_txns = if quick then 60 else 120 in
  let arch_cells =
    timed_section "archiving" (fun () ->
        Figures.run_archiving ~scale ~rounds:arch_rounds ~txns_per_round:arch_txns ~progress ())
  in
  section "ARCHIVING";
  print_string (Figures.archiving_table arch_cells);

  (* Instant recovery: availability vs cache size.  The runner enforces
     the determinism gate (drained InstantLog2 digest byte-identical to
     Log2 at every cache size) before reporting the TTFT / drain split. *)
  let avail_cells =
    timed_section "availability" (fun () ->
        Figures.run_availability ~cache:build_cache ~scale ~cache_sizes ~progress ())
  in
  section "INSTANT RECOVERY (AVAILABILITY)";
  print_string (Figures.availability_table avail_cells);

  (* Trace-mined prefetch tuning: sweep the prefetcher knobs per method,
     score candidates by stall-attributed time from the profiler. *)
  (* Quick mode tunes the 512 MB cell: smoke coverage is the same, and the
     build is already in the cache from Figure 2. *)
  let tune_caches = if quick then [ 512 ] else [ 256; 1024 ] in
  let tune_windows = if quick then [ 16; 32 ] else [ 8; 16; 32; 64 ] in
  let tune_chunks = if quick then [ 8; 16 ] else [ 4; 8; 16; 32 ] in
  let tune_lookaheads = if quick then [ 256; 512 ] else [ 128; 256; 512; 1024 ] in
  let tuning_cells =
    timed_section "tuning" (fun () ->
        Figures.run_tuning ~cache:build_cache ~scale ~cache_sizes:tune_caches ~windows:tune_windows
          ~chunks:tune_chunks ~lookaheads:tune_lookaheads ~progress ())
  in
  section "PREFETCH TUNING";
  print_string (Figures.tuning_table tuning_cells);

  (* Bechamel micro-benchmarks: wall-clock cost of the engine's hot paths.
     Drop the build cache first: bechamel compacts the heap around every
     benchmark, and hundreds of MB of retained crash images would turn each
     compaction into seconds. *)
  Deut_workload.Experiment.drop_cache build_cache;
  Gc.compact ();
  section "MICRO-BENCHMARKS (Bechamel, wall clock)";
  print_string (timed_section "micro" (fun () -> Micro.run ()));

  let total_wall_s = Unix.gettimeofday () -. harness_t0 in
  section "WALL-CLOCK PER SECTION (real seconds, not simulated)";
  List.iter
    (fun (name, w) -> Printf.printf "  %-14s %7.2f s\n" name w)
    (List.rev !section_walls);
  Printf.printf "  %-14s %7.2f s\n" "total" total_wall_s;
  write_bench_json ~total_wall_s ~archiving:arch_cells ~availability:avail_cells
    ~sharding:shard_cells ~domains:domains_summary fig2_cells
