(* The full benchmark harness: regenerates every table and figure of the
   paper's evaluation (simulated time, §5.3 + appendices) and finishes with
   Bechamel wall-clock micro-benchmarks of the engine's hot paths.

   Environment knobs:
     DEUT_SCALE   divisor of the paper's sizes (default 64; smaller = bigger
                  experiment; see DESIGN.md §1)
     DEUT_QUICK   if set, runs a reduced sweep for smoke-testing *)

module Figures = Deut_workload.Figures
module Recovery = Deut_core.Recovery

let scale =
  match Sys.getenv_opt "DEUT_SCALE" with
  | Some s -> ( try max 8 (int_of_string s) with _ -> 64)
  | None -> 64

let quick = Sys.getenv_opt "DEUT_QUICK" <> None

let progress msg = Printf.eprintf "[bench] %s\n%!" msg

let section title =
  print_newline ();
  print_endline (String.make 78 '=');
  print_endline title;
  print_endline (String.make 78 '=');
  print_newline ()

let () =
  Printf.printf
    "Deuteronomy logical-recovery reproduction — benchmark harness\n\
     scale: 1/%d of the paper's sizes (DB %d pages-equivalent; see DESIGN.md)\n\
     All recovery runs are verified against the committed-state oracle before\n\
     their timings are reported.\n"
    scale (436_000 / scale);

  (* Figure 2: one workload+crash per cache size, five recoveries each. *)
  let cache_sizes = if quick then [ 64; 512; 2048 ] else [ 64; 128; 256; 512; 1024; 2048 ] in
  let fig2_cells = Figures.run_fig2 ~scale ~cache_sizes ~progress () in
  section "FIGURE 2(a)";
  print_string (Figures.fig2a fig2_cells);
  section "FIGURE 2(b)";
  print_string (Figures.fig2b fig2_cells);
  section "FIGURE 2(c)";
  print_string (Figures.fig2c fig2_cells);
  section "PER-PHASE BREAKDOWN";
  print_string (Figures.phase_table fig2_cells);
  section "SECTION 5.3 CLAIMS";
  print_string (Figures.sec53 fig2_cells);
  section "APPENDIX B COST MODEL";
  print_string (Figures.costmodel fig2_cells);

  (* Figure 3: checkpoint-interval sweep. *)
  let multipliers = if quick then [ 1; 5 ] else [ 1; 5; 10 ] in
  let fig3_cells = Figures.run_fig3 ~scale ~multipliers ~progress () in
  section "FIGURE 3 (APPENDIX C)";
  print_string (Figures.fig3 fig3_cells);

  (* Appendix D ablations. *)
  let appd_rows = Figures.run_appd ~scale ~progress () in
  section "APPENDIX D ABLATIONS";
  print_string (Figures.appd appd_rows);

  (* Split-log layout: the Deuteronomy architecture proper (§4.2). *)
  let split_rows = Figures.run_split ~scale ~progress () in
  section "SPLIT-LOG LAYOUT (§4.2)";
  print_string (Figures.split_table split_rows);

  (* Partitioned parallel redo: worker-count sweep at an IO-bound (small)
     and an apply-bound (large) cache, with latency percentiles. *)
  let workers_cache_sizes = if quick then [ 64 ] else [ 64; 512 ] in
  let workers = if quick then [ 1; 4 ] else [ 1; 2; 4; 8 ] in
  let workers_cells =
    Figures.run_workers ~scale ~cache_sizes:workers_cache_sizes ~workers ~progress ()
  in
  section "PARALLEL REDO";
  print_string (Figures.workers_table workers_cells);

  (* Concurrency: simulated clients sharing the engine during normal
     execution, swept over client count × group-commit batch.  The runner
     cross-checks that every cell converges to the same logical digest. *)
  let conc_clients = if quick then [ 1; 4 ] else [ 1; 2; 4; 8 ] in
  let conc_groups = if quick then [ 1; 4 ] else [ 1; 4; 16 ] in
  let conc_txns = if quick then 120 else 300 in
  let conc_cells =
    Figures.run_concurrency ~scale ~clients:conc_clients ~group_commits:conc_groups
      ~txns:conc_txns ~progress ()
  in
  section "CONCURRENCY";
  print_string (Figures.concurrency_table conc_cells);

  (* Trace-mined prefetch tuning: sweep the prefetcher knobs per method,
     score candidates by stall-attributed time from the profiler. *)
  let tune_caches = if quick then [ 1024 ] else [ 256; 1024 ] in
  let tune_windows = if quick then [ 16; 32 ] else [ 8; 16; 32; 64 ] in
  let tune_chunks = if quick then [ 8; 16 ] else [ 4; 8; 16; 32 ] in
  let tune_lookaheads = if quick then [ 256; 512 ] else [ 128; 256; 512; 1024 ] in
  let tuning_cells =
    Figures.run_tuning ~scale ~cache_sizes:tune_caches ~windows:tune_windows
      ~chunks:tune_chunks ~lookaheads:tune_lookaheads ~progress ()
  in
  section "PREFETCH TUNING";
  print_string (Figures.tuning_table tuning_cells);

  (* Bechamel micro-benchmarks: wall-clock cost of the engine's hot paths. *)
  section "MICRO-BENCHMARKS (Bechamel, wall clock)";
  print_string (Micro.run ())
