(* Before/after micro-benchmarks for the hot-path wall-clock pass.

   Each pair measures one optimisation against the code shape it replaced:

     fnv: word-wide [Fnv.fold] vs the byte-at-a-time reference loop, on a
          full page image and on a log-record-sized payload;
     page-read: the copy-on-write borrow the store hands out now vs the
          copy-and-hash every fetch used to pay;
     wal-encode: the reusable scratch writer vs a fresh buffer + contents
          string per record;
     wal-decode: in-place [decode_sub] out of the log buffer vs decoding a
          substring copy;
     pool: a cache-hit fetch loop through the full stack.

   Run directly (dune exec bench/microbench.exe); honours DEUT_QUICK for a
   reduced sampling budget like the main harness. *)

open Bechamel
open Toolkit
module Fnv = Deut_storage.Fnv
module Page = Deut_storage.Page
module Page_store = Deut_storage.Page_store
module Pool = Deut_buffer.Buffer_pool
module Codec = Deut_wal.Codec
module Lr = Deut_wal.Log_record

let page_size = 8192

let page_buf =
  let b = Bytes.create page_size in
  for i = 0 to page_size - 1 do
    Bytes.set b i (Char.chr ((i * 131) land 0xFF))
  done;
  b

let sample_update =
  Lr.Update_rec
    {
      txn = 42;
      table = 1;
      key = 123456;
      op = Lr.Update;
      before = Some "previous-value-of-the-rec";
      after = Some "updated-value-of-the-recx";
      pid_hint = 9876;
      prev_lsn = 1_000_000;
    }

let encoded_update = Lr.encode sample_update
let encoded_len = String.length encoded_update

(* The in-place decode path reads out of a larger buffer at an offset, the
   way the recovery scan reads frames out of the log. *)
let log_like =
  let b = Bytes.create (encoded_len + 64) in
  Bytes.blit_string encoded_update 0 b 32 encoded_len;
  b

(* A store holding one stable page, for the fetch-path comparison. *)
let store_fixture =
  lazy
    (let store = Page_store.create ~page_size in
     let pid = Page_store.allocate store Page.Btree_leaf in
     let page = Page.create ~page_size ~pid Page.Btree_leaf in
     Page.set_bytes page ~off:Page.header_size "stable-page-payload";
     Page_store.write store page;
     (store, pid))

let pool_fixture =
  lazy
    (let clock = Deut_sim.Clock.create () in
     let disk = Deut_sim.Disk.create clock in
     let store = Page_store.create ~page_size in
     let pool = Pool.create ~capacity:64 ~store ~disk ~clock () in
     let pid = Page_store.allocate store Page.Btree_leaf in
     let page = Page.create ~page_size ~pid Page.Btree_leaf in
     Page_store.write store page;
     ignore (Pool.get pool pid);
     (pool, pid))

let tests =
  [
    Test.make ~name:"fnv-page-byte (before)"
      (Staged.stage (fun () -> Fnv.fold_ref page_buf ~off:0 ~len:page_size ~init:Fnv.seed));
    Test.make ~name:"fnv-page-word (after)"
      (Staged.stage (fun () -> Fnv.fold page_buf ~off:0 ~len:page_size ~init:Fnv.seed));
    Test.make ~name:"fnv-record-byte (before)"
      (Staged.stage (fun () -> Fnv.fold_ref page_buf ~off:32 ~len:encoded_len ~init:Fnv.seed));
    Test.make ~name:"fnv-record-word (after)"
      (Staged.stage (fun () -> Fnv.fold page_buf ~off:32 ~len:encoded_len ~init:Fnv.seed));
    Test.make ~name:"page-read-copy+hash (before)"
      (Staged.stage (fun () ->
           (* What every fetch used to cost: duplicate the stable image,
              then checksum the copy. *)
           let copy = Bytes.copy page_buf in
           ignore (Fnv.fold copy ~off:0 ~len:page_size ~init:Fnv.seed)));
    Test.make ~name:"page-read-borrow (after)"
      (Staged.stage (fun () ->
           let store, pid = Lazy.force store_fixture in
           ignore (Page_store.read store pid)));
    Test.make ~name:"wal-encode-alloc (before)"
      (Staged.stage (fun () -> Lr.encode sample_update));
    Test.make ~name:"wal-encode-scratch (after)"
      (let scratch = Codec.writer () in
       Staged.stage (fun () ->
           Codec.clear scratch;
           Lr.encode_into scratch sample_update;
           Codec.length scratch));
    Test.make ~name:"wal-decode-substring (before)"
      (Staged.stage (fun () ->
           Lr.decode (Bytes.sub_string log_like 32 encoded_len)));
    Test.make ~name:"wal-decode-in-place (after)"
      (Staged.stage (fun () -> Lr.decode_sub log_like ~pos:32 ~len:encoded_len));
    Test.make ~name:"pool-hit-fetch"
      (Staged.stage (fun () ->
           let pool, pid = Lazy.force pool_fixture in
           ignore (Pool.get pool pid)));
  ]

let () =
  let quick = Sys.getenv_opt "DEUT_QUICK" <> None in
  let cfg =
    if quick then Benchmark.cfg ~limit:400 ~quota:(Time.second 0.08) ~kde:None ()
    else Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None ()
  in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let instance = Instance.monotonic_clock in
  Printf.printf "%-32s %14s %10s\n%s\n" "benchmark" "ns/op (OLS)" "r²" (String.make 58 '-');
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let measurement = Benchmark.run cfg [ instance ] elt in
          let result = Analyze.one ols instance measurement in
          let estimate =
            match Analyze.OLS.estimates result with Some [ e ] -> e | _ -> nan
          in
          let r2 = match Analyze.OLS.r_square result with Some r -> r | None -> nan in
          Printf.printf "%-32s %14.1f %10.4f\n" (Test.Elt.name elt) estimate r2)
        (Test.elements test))
    tests
