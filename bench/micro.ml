(* Bechamel micro-benchmarks: one Test.make per hot path of the engine.
   These measure real wall-clock costs (OLS estimate of ns/op), in contrast
   to the figure tables, which report simulated recovery time. *)

open Bechamel
open Toolkit
module Page = Deut_storage.Page
module Page_store = Deut_storage.Page_store
module Pool = Deut_buffer.Buffer_pool
module Btree = Deut_btree.Btree
module Node = Deut_btree.Node
module Lr = Deut_wal.Log_record
module Log = Deut_wal.Log_manager
module Lsn = Deut_wal.Lsn
module Dpt = Deut_core.Dpt
module Rng = Deut_sim.Rng

let sample_update =
  Lr.Update_rec
    {
      txn = 42;
      table = 1;
      key = 123456;
      op = Lr.Update;
      before = Some "previous-value-of-the-rec";
      after = Some "updated-value-of-the-recx";
      pid_hint = 9876;
      prev_lsn = 1_000_000;
    }

let encoded_update = Lr.encode sample_update

(* Shared read-mostly fixture: a 20k-row tree in a pool large enough to hold
   it, so lookups and updates measure CPU cost, not the simulated disk. *)
let fixture =
  lazy
    (let clock = Deut_sim.Clock.create () in
     let disk = Deut_sim.Disk.create clock in
     let store = Page_store.create ~page_size:4096 in
     let pool = Pool.create ~capacity:2048 ~store ~disk ~clock () in
     let log = Log.create ~page_size:4096 in
     let log_smo smo = Log.append log (Lr.Smo smo) in
     Btree.format_store ~pool ~log_smo;
     let tree = Btree.create ~pool ~table:1 ~log_smo () in
     let lsn = ref 0 in
     for k = 0 to 19_999 do
       match Btree.prepare_write tree ~key:k ~op:Lr.Insert ~value_len:20 with
       | Btree.Leaf { pid; _ } ->
           incr lsn;
           Btree.apply_insert tree ~pid ~key:k ~value:(Printf.sprintf "%020d" k) ~lsn:!lsn
       | _ -> assert false
     done;
     (pool, tree, lsn))

let tests =
  let rng = Rng.create ~seed:99 in
  [
    Test.make ~name:"log-record-encode" (Staged.stage (fun () -> Lr.encode sample_update));
    Test.make ~name:"log-record-decode" (Staged.stage (fun () -> Lr.decode encoded_update));
    Test.make ~name:"btree-lookup"
      (Staged.stage (fun () ->
           let _, tree, _ = Lazy.force fixture in
           ignore (Btree.lookup tree ~key:(Rng.int rng 20_000))));
    Test.make ~name:"btree-update-in-place"
      (Staged.stage (fun () ->
           let _, tree, lsn = Lazy.force fixture in
           let key = Rng.int rng 20_000 in
           match Btree.prepare_write tree ~key ~op:Lr.Update ~value_len:20 with
           | Btree.Leaf { pid; _ } ->
               incr lsn;
               Btree.apply_update tree ~pid ~key ~value:(Printf.sprintf "%020d" key) ~lsn:!lsn
           | _ -> assert false));
    Test.make ~name:"buffer-pool-hit"
      (Staged.stage (fun () ->
           let pool, tree, _ = Lazy.force fixture in
           ignore (Pool.get pool (Btree.root_pid tree))));
    Test.make ~name:"dpt-add-find"
      (let dpt = Dpt.create () in
       Staged.stage (fun () ->
           let pid = Rng.int rng 4096 in
           ignore (Dpt.add dpt ~pid ~lsn:pid);
           ignore (Dpt.find dpt pid)));
  ]

let run () =
  (* DEUT_QUICK is a smoke test: a tenth of the sampling budget still gives
     a stable OLS slope for these tight loops, and keeps the whole harness
     inside the CI time budget. *)
  let quick = Sys.getenv_opt "DEUT_QUICK" <> None in
  let cfg =
    if quick then Benchmark.cfg ~limit:400 ~quota:(Time.second 0.08) ~kde:None ()
    else Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None ()
  in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instance = Instance.monotonic_clock in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "%-24s %14s %10s\n%s\n" "benchmark" "ns/op (OLS)" "r²"
       (String.make 50 '-'));
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let measurement = Benchmark.run cfg [ instance ] elt in
          let result = Analyze.one ols instance measurement in
          let estimate =
            match Analyze.OLS.estimates result with Some [ e ] -> e | _ -> nan
          in
          let r2 = match Analyze.OLS.r_square result with Some r -> r | None -> nan in
          Buffer.add_string buf
            (Printf.sprintf "%-24s %14.1f %10.4f\n" (Test.Elt.name elt) estimate r2))
        (Test.elements test))
    tests;
  Buffer.contents buf
