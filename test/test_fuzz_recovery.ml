(* Randomized crash-recovery property test.

   The workload/image generator lives in [Deut_workload.Fuzz] (shared
   with [repro_cli forensics]); this suite drives it over a seed corpus,
   recovers every sampled image under all runnable methods and compares
   each result, key for key, against the committed-prefix oracle folded
   from the image's own log.  InstantLog2 additionally runs in the staged
   open-while-redoing form with probe reads interleaved with background
   drain steps.

   On any failure the seed and a copy-paste repro command are printed, and
   the seed is appended to $DEUT_FUZZ_FAIL_FILE when set (CI uploads it as
   an artifact, then runs [repro_cli forensics] on each listed seed).
   Env knobs:
     DEUT_FUZZ_SEEDS=s1,s2,...   run exactly these seeds
     DEUT_FUZZ_SALT=n            add DEUT_FUZZ_COUNT (default 16) fresh
                                 seeds derived from n *)

module Db = Deut_core.Db
module Recovery = Deut_core.Recovery
module Crash_image = Deut_core.Crash_image
module Fuzz = Deut_workload.Fuzz
module Rng = Deut_sim.Rng

(* DEUT_SHARDS stripes the fuzzed key space across that many data
   components (§4.1 protocol + split layout per shard).  CI runs the
   matrix at 1 and 4. *)
let fuzz_shards =
  match Sys.getenv_opt "DEUT_SHARDS" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 1 -> n | _ -> 1)
  | None -> 1

let dump_all db =
  List.concat_map
    (fun table -> List.map (fun (k, v) -> ((table, k), v)) (Db.dump_table db ~table))
    Fuzz.tables
  |> List.sort compare

let show entries =
  String.concat "; "
    (List.map (fun ((t, k), v) -> Printf.sprintf "%d:%d=%s" t k v) entries)

(* One "<seed> <shards>" line per failure: exactly the arguments
   [repro_cli forensics] needs to rebuild the failing image. *)
let note_failure seed =
  match Sys.getenv_opt "DEUT_FUZZ_FAIL_FILE" with
  | None -> ()
  | Some path ->
      let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
      Printf.fprintf oc "%d %d\n" seed fuzz_shards;
      close_out oc

let fail_seed seed fmt =
  Printf.ksprintf
    (fun msg ->
      note_failure seed;
      Alcotest.failf "seed %d: %s\n  %s" seed msg (Fuzz.repro_hint seed))
    fmt

let methods = Fuzz.methods_for ~shards:fuzz_shards

let run_seed seed () =
  let image = Fuzz.build_image ~shards:fuzz_shards seed in
  let expected = Fuzz.expected_of_log image.Crash_image.log in
  (* Every runnable method against the oracle. *)
  List.iter
    (fun m ->
      let recovered, _stats = Db.recover image m in
      (match Db.check_integrity recovered with
      | Ok () -> ()
      | Error msg -> fail_seed seed "%s: broken B-tree: %s" (Recovery.method_to_string m) msg);
      let got = dump_all recovered in
      if got <> expected then
        fail_seed seed "%s diverged from oracle:\n  expected %s\n  got      %s"
          (Recovery.method_to_string m) (show expected) (show got))
    methods;
  if fuzz_shards > 1 then ()
  else begin
  (* InstantLog2, staged: probe reads interleaved with the background
     drain, then finish and compare again. *)
  let inst = Db.recover_instant image in
  let db = Db.instant_db inst in
  let probe_rng = Rng.create ~seed:(seed + 7919) in
  let progressed = ref true in
  while !progressed do
    let table = List.nth Fuzz.tables (Rng.int probe_rng (List.length Fuzz.tables)) in
    ignore (Db.read db ~table ~key:(Rng.int probe_rng 200));
    progressed := Db.instant_step inst
  done;
  ignore (Db.instant_finish inst);
  let got = dump_all db in
  if got <> expected then
    fail_seed seed "staged InstantLog2 diverged from oracle:\n  expected %s\n  got      %s"
      (show expected) (show got)
  end

let seeds =
  match Sys.getenv_opt "DEUT_FUZZ_SEEDS" with
  | Some csv ->
      List.map
        (fun s -> int_of_string (String.trim s))
        (List.filter (fun s -> String.trim s <> "") (String.split_on_char ',' csv))
  | None -> (
      match Sys.getenv_opt "DEUT_FUZZ_SALT" with
      | None -> Fuzz.corpus
      | Some salt ->
          let count =
            match Sys.getenv_opt "DEUT_FUZZ_COUNT" with Some n -> int_of_string n | None -> 16
          in
          let r = Rng.create ~seed:(int_of_string salt) in
          Fuzz.corpus @ List.init count (fun _ -> Rng.int r 1_000_000))

let suite =
  List.map
    (fun seed ->
      Alcotest.test_case (Printf.sprintf "seed %d" seed) `Quick (run_seed seed))
    seeds
