(* Observability layer: trace ring semantics, Chrome-JSON export,
   same-seed determinism of traced recoveries, span/counter agreement,
   histogram bucketing, and CSV quoting. *)

module Db = Deut_core.Db
module Config = Deut_core.Config
module Engine = Deut_core.Engine
module Recovery = Deut_core.Recovery
module Recovery_stats = Deut_core.Recovery_stats
module Workload = Deut_workload.Workload
module Driver = Deut_workload.Driver
module Report = Deut_workload.Report
module Trace = Deut_obs.Trace
module Metrics = Deut_obs.Metrics

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* ---------- ring buffer ---------- *)

let test_ring_wraparound () =
  let clock = ref 0.0 in
  let tr = Trace.create ~now:(fun () -> !clock) ~capacity:4 () in
  for i = 1 to 10 do
    clock := float_of_int i;
    Trace.instant tr ~name:(Printf.sprintf "e%d" i) ~cat:"t" ()
  done;
  check_int "length capped at capacity" 4 (Trace.length tr);
  check_int "all emissions counted" 10 (Trace.emitted tr);
  check_int "overflow reported" 6 (Trace.dropped tr);
  let names = List.map (fun ev -> ev.Trace.name) (Trace.events tr) in
  Alcotest.(check (list string)) "oldest-first, newest retained" [ "e7"; "e8"; "e9"; "e10" ] names;
  Trace.stop tr;
  Trace.instant tr ~name:"late" ~cat:"t" ();
  check_int "stopped trace drops emissions" 10 (Trace.emitted tr)

(* ---------- minimal JSON well-formedness checker ---------- *)

(* Recursive-descent validator for the JSON subset the exporter emits;
   raises [Failure] on malformed input. *)
let validate_json s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos >= n then failwith "eof" else s.[!pos] in
  let advance () = incr pos in
  let skip_ws () = while !pos < n && (peek () = ' ' || peek () = '\n') do advance () done in
  let expect c = if peek () <> c then failwith (Printf.sprintf "expected %c at %d" c !pos) else advance () in
  let rec value () =
    skip_ws ();
    match peek () with
    | '{' -> obj ()
    | '[' -> arr ()
    | '"' -> string_lit ()
    | '-' | '0' .. '9' -> number ()
    | 't' -> literal "true"
    | 'f' -> literal "false"
    | 'n' -> literal "null"
    | c -> failwith (Printf.sprintf "unexpected %c at %d" c !pos)
  and literal lit =
    String.iter (fun c -> expect c) lit
  and string_lit () =
    expect '"';
    let rec go () =
      match peek () with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (match peek () with
          | '"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't' -> advance ()
          | 'u' ->
              advance ();
              for _ = 1 to 4 do
                (match peek () with
                | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> advance ()
                | _ -> failwith "bad \\u escape")
              done
          | _ -> failwith "bad escape");
          go ()
      | c when Char.code c < 0x20 -> failwith "raw control char in string"
      | _ ->
          advance ();
          go ()
    in
    go ()
  and number () =
    if peek () = '-' then advance ();
    while !pos < n && (match peek () with '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true | _ -> false) do
      advance ()
    done
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = '}' then advance ()
    else
      let rec members () =
        skip_ws ();
        string_lit ();
        skip_ws ();
        expect ':';
        value ();
        skip_ws ();
        if peek () = ',' then begin advance (); members () end else expect '}'
      in
      members ()
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = ']' then advance ()
    else
      let rec elements () =
        value ();
        skip_ws ();
        if peek () = ',' then begin advance (); elements () end else expect ']'
      in
      elements ()
  in
  value ();
  skip_ws ();
  if !pos <> n then failwith "trailing garbage"

(* ---------- traced recovery ---------- *)

let traced_config =
  {
    Config.default with
    Config.page_size = 1024;
    pool_pages = 48;
    delta_period = 40;
    delta_capacity = 64;
    shards = 1;
    tracing = true;
    trace_capacity = 1 lsl 18;
  }

let small_spec = { Workload.default with Workload.rows = 1200; value_size = 16; seed = 5 }

let make_crash () =
  let driver = Driver.create ~config:traced_config small_spec in
  Driver.run_crash_protocol driver ~checkpoints:3 ~interval:300 ~tail:15;
  Driver.start_loser driver ~ops:8;
  (driver, Driver.crash driver)

let recover_traced image method_ =
  let db, stats = Db.recover ~config:traced_config image method_ in
  let tr =
    match Engine.trace (Db.engine db) with
    | Some tr -> tr
    | None -> Alcotest.fail "tracing enabled in config but engine has no trace"
  in
  (db, stats, tr)

let test_traced_recovery_deterministic () =
  let _, image = make_crash () in
  List.iter
    (fun m ->
      let _, _, tr1 = recover_traced image m in
      let _, _, tr2 = recover_traced image m in
      let j1 = Trace.to_chrome_json tr1 and j2 = Trace.to_chrome_json tr2 in
      check
        (Printf.sprintf "%s: same-seed traces byte-identical" (Recovery.method_to_string m))
        true (String.equal j1 j2))
    [ Recovery.Log2; Recovery.Sql2 ]

let test_chrome_json_well_formed () =
  let _, image = make_crash () in
  let _, _, tr = recover_traced image Recovery.Log2 in
  check "trace non-empty" true (Trace.length tr > 0);
  check_int "nothing dropped at this scale" 0 (Trace.dropped tr);
  let json = Trace.to_chrome_json tr in
  (match validate_json json with
  | () -> ()
  | exception Failure msg -> Alcotest.failf "exported JSON malformed: %s" msg);
  (* The export carries every buffered event plus one lane-name record per
     lane — the 7 fixed lanes and any per-worker lane present (parallel
     redo adds one per worker beyond the first) — plus one process-name
     record for the single engine pid all those lanes live on (net and
     shard lanes, absent here, would add their own pids). *)
  let worker_lanes =
    List.sort_uniq compare
      (List.filter_map
         (fun ev -> if ev.Trace.track > 6 then Some ev.Trace.track else None)
         (Trace.events tr))
  in
  let count_occurrences needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i acc =
      if i + nl > hl then acc
      else if String.sub hay i nl = needle then go (i + 1) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  in
  check_int "all events exported"
    (Trace.length tr + 1 + 7 + List.length worker_lanes)
    (count_occurrences "\"name\":" json - count_occurrences "\"args\":{\"name\":" json)

let test_spans_match_counters () =
  let _, image = make_crash () in
  List.iter
    (fun m ->
      let _, stats, tr = recover_traced image m in
      check_int
        (Printf.sprintf "%s: one page_fetch span per fetch" (Recovery.method_to_string m))
        (stats.Recovery_stats.data_page_fetches + stats.Recovery_stats.index_page_fetches)
        (Trace.count tr ~kind:Trace.Span ~name:"page_fetch" ());
      check_int
        (Printf.sprintf "%s: one redo_op span per candidate" (Recovery.method_to_string m))
        stats.Recovery_stats.redo_candidates
        (Trace.count tr ~kind:Trace.Span ~name:"redo_op" ());
      List.iter
        (fun phase ->
          check_int
            (Printf.sprintf "%s: exactly one %s phase span" (Recovery.method_to_string m) phase)
            1
            (Trace.count tr ~kind:Trace.Span ~name:phase ()))
        [ "analysis"; "redo"; "undo" ])
    [ Recovery.Log1; Recovery.Sql1 ]

(* ---------- histograms ---------- *)

let test_histogram_buckets () =
  let m = Metrics.create () in
  let h = Metrics.histogram m ~base:2.0 ~lo:1.0 ~buckets:4 "h" in
  let bounds = Metrics.bucket_bounds h in
  Alcotest.(check (array (float 1e-9))) "log-scale bounds" [| 1.0; 2.0; 4.0; 8.0 |] bounds;
  (* A value exactly on a bound lands in that bound's bucket (<=); past the
     last bound it lands in the overflow bucket. *)
  check_int "at first bound" 0 (Metrics.bucket_of h 1.0);
  check_int "just above first bound" 1 (Metrics.bucket_of h 1.5);
  check_int "at last bound" 3 (Metrics.bucket_of h 8.0);
  check_int "overflow" 4 (Metrics.bucket_of h 9.0);
  List.iter (fun v -> Metrics.observe h v) [ 0.5; 1.0; 3.0; 8.0; 100.0 ];
  Alcotest.(check (array int)) "counts per bucket" [| 2; 0; 1; 1; 1 |] (Metrics.bucket_counts h);
  check_int "n" 5 (Metrics.observations h);
  check "sum" true (abs_float (Metrics.sum h -. 112.5) < 1e-9)

(* ---------- CSV quoting ---------- *)

let test_csv_quoting () =
  check_str "plain cells stay bare" "a,b\n1,2\n"
    (Report.csv ~header:[ "a"; "b" ] ~rows:[ [ "1"; "2" ] ]);
  check_str "comma cell quoted" "k,args\n1,\"pid=3,count=2\"\n"
    (Report.csv ~header:[ "k"; "args" ] ~rows:[ [ "1"; "pid=3,count=2" ] ]);
  check_str "embedded quotes doubled" "v\n\"say \"\"hi\"\"\"\n"
    (Report.csv ~header:[ "v" ] ~rows:[ [ "say \"hi\"" ] ]);
  (* Trace CSV rows with multi-key args survive the round of quoting. *)
  let clock = ref 42.0 in
  let tr = Trace.create ~now:(fun () -> !clock) ~capacity:8 () in
  Trace.instant tr ~name:"io_batch" ~cat:"io" ~args:[ ("first_pid", 7); ("count", 3) ] ();
  let csv = Report.csv ~header:Trace.csv_header ~rows:(Trace.csv_rows tr) in
  check "args cell quoted in trace CSV" true
    (String.length csv > 0
    && Option.is_some
         (String.index_opt csv '"'))

let suite =
  [
    Alcotest.test_case "ring wraparound" `Quick test_ring_wraparound;
    Alcotest.test_case "same-seed determinism" `Quick test_traced_recovery_deterministic;
    Alcotest.test_case "chrome JSON well-formed" `Quick test_chrome_json_well_formed;
    Alcotest.test_case "spans match counters" `Quick test_spans_match_counters;
    Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
    Alcotest.test_case "csv quoting" `Quick test_csv_quoting;
  ]
