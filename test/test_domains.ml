(* Real OS-level parallelism is a pure wall-clock knob: the domain count
   must never change recovered state.  The gate here recovers the same
   crash image with domain-parallel redo at 1/2/4/8 partitions and checks
   store digest, logical digest, and apply counts byte-identical to the
   single-domain reference; fans fig2 harness cells across domains and
   checks every cell's digests and simulated times against a sequential
   sweep; and instantiates one crash image from several domains at once to
   prove images are immutable shareable inputs.  The obs structures'
   single-domain ownership guards are exercised last. *)

module Db = Deut_core.Db
module Config = Deut_core.Config
module Recovery = Deut_core.Recovery
module Rs = Deut_core.Recovery_stats
module Workload = Deut_workload.Workload
module Driver = Deut_workload.Driver
module Experiment = Deut_workload.Experiment
module Figures = Deut_workload.Figures
module Client_sched = Deut_workload.Client_sched
module Domain_pool = Deut_sim.Domain_pool
module Metrics = Deut_obs.Metrics
module Trace = Deut_obs.Trace

let check = Alcotest.(check bool)
let domain_counts = [ 1; 2; 4; 8 ]

let small_config ?(domains = 1) () =
  {
    Config.default with
    Config.page_size = 1024;
    pool_pages = 48;
    delta_period = 40;
    delta_capacity = 64;
    shards = 1;
    redo_workers = 1;
    domains;
  }

let make_crash ?(op_mix = Workload.Update_only) ?(rows = 1200) () =
  let spec = { Workload.default with Workload.rows; value_size = 16; op_mix; seed = 11 } in
  let driver = Driver.create ~config:(small_config ()) spec in
  Driver.run_crash_protocol driver ~checkpoints:3 ~interval:300 ~tail:15;
  Driver.start_loser driver ~ops:8;
  (driver, Driver.crash driver)

(* The redo decisions and undo work — everything that determines state.
   IO/prefetch/stall counters legitimately vary with the domain count
   (each partition repeats the analysis on its own engine). *)
let apply_counts (s : Rs.t) =
  [
    s.Rs.records_scanned;
    s.Rs.redo_candidates;
    s.Rs.redo_applied;
    s.Rs.skipped_dpt;
    s.Rs.skipped_rlsn;
    s.Rs.skipped_plsn;
    s.Rs.tail_records;
    s.Rs.dpt_size;
    s.Rs.smos_replayed;
    s.Rs.losers;
    s.Rs.clrs_written;
  ]

let recover_with driver image method_ domains =
  let db, stats = Db.recover ~config:(small_config ~domains ()) image method_ in
  (match Driver.verify_recovered driver db with
  | Ok () -> ()
  | Error msg ->
      Alcotest.failf "%s at %d domains: wrong state: %s" (Recovery.method_to_string method_)
        domains msg);
  let logical = Client_sched.logical_digest db in
  (Experiment.store_digest db, logical, apply_counts stats)

(* The tier-1 determinism gate: every partition count yields the same
   bytes as the single-domain reference scheduler. *)
let test_redo_deterministic () =
  let driver, image = make_crash () in
  List.iter
    (fun m ->
      let results = List.map (recover_with driver image m) domain_counts in
      match results with
      | [] -> ()
      | (store1, logical1, counts1) :: rest ->
          List.iteri
            (fun i (store, logical, counts) ->
              let d = List.nth domain_counts (i + 1) in
              check
                (Printf.sprintf "%s: %d domains, byte-identical store"
                   (Recovery.method_to_string m) d)
                true
                (String.equal store store1);
              check
                (Printf.sprintf "%s: %d domains, byte-identical logical state"
                   (Recovery.method_to_string m) d)
                true
                (String.equal logical logical1);
              Alcotest.(check (list int))
                (Printf.sprintf "%s: %d domains, identical apply counts"
                   (Recovery.method_to_string m) d)
                counts1 counts)
            rest)
    [ Recovery.Log0; Recovery.Log1; Recovery.Log2 ]

(* Methods outside the logical family fall back to their existing paths at
   any domain setting; the state contract is the same. *)
let test_non_logical_fallback () =
  let driver, image = make_crash () in
  List.iter
    (fun m ->
      let ref1 = recover_with driver image m 1 in
      let par4 = recover_with driver image m 4 in
      check
        (Printf.sprintf "%s: domains=4 falls back byte-identically"
           (Recovery.method_to_string m))
        true (ref1 = par4))
    [ Recovery.Sql1; Recovery.Sql2 ]

(* An SMO-heavy image stresses partition ownership: leaves that split
   during the run are located in the final (post-DC-recovery) tree, so
   every domain must assign each record to the same partition. *)
let test_redo_smo_heavy () =
  let driver, image =
    make_crash
      ~op_mix:(Workload.Mixed { update = 0.3; insert = 0.6; delete = 0.1; read = 0.0 })
      ~rows:800 ()
  in
  List.iter
    (fun m ->
      let results = List.map (recover_with driver image m) [ 1; 4 ] in
      match results with
      | [ r1; r4 ] ->
          check
            (Printf.sprintf "%s: SMO-heavy image, domains=4 identical"
               (Recovery.method_to_string m))
            true (r1 = r4)
      | _ -> assert false)
    [ Recovery.Log1; Recovery.Log2 ]

(* A crash image is an immutable input: several domains instantiating and
   recovering from the same image concurrently must neither perturb each
   other nor the image (a later sequential recovery still matches). *)
let test_crash_image_isolation () =
  let driver, image = make_crash () in
  let reference = recover_with driver image Recovery.Log1 1 in
  let pool = Domain_pool.create ~domains:4 in
  let results =
    Domain_pool.map pool
      (fun _ -> recover_with driver image Recovery.Log1 1)
      [ 0; 1; 2; 3 ]
  in
  List.iteri
    (fun i r ->
      check (Printf.sprintf "concurrent recovery %d matches reference" i) true (r = reference))
    results;
  check "image unperturbed after concurrent use" true
    (recover_with driver image Recovery.Log1 1 = reference)

(* Harness fan-out: a fig2 sweep fanned across domains must return the
   same cells — digests, apply counts and simulated times — as the
   sequential sweep, in the same order. *)
let test_fig2_cells_deterministic () =
  let cache = Experiment.build_cache () in
  let methods = [ Recovery.Log1; Recovery.Log2 ] in
  let sweep domains =
    Figures.run_fig2 ~cache ~scale:256 ~cache_sizes:[ 64; 128 ] ~methods ~domains ()
  in
  let reference = sweep 1 in
  List.iter
    (fun domains ->
      let cells = sweep domains in
      List.iter2
        (fun (r : Figures.fig2_cell) (c : Figures.fig2_cell) ->
          check
            (Printf.sprintf "fig2 %d MB: digests identical at %d domains" r.Figures.cache_mb
               domains)
            true
            (r.Figures.digests = c.Figures.digests);
          List.iter2
            (fun (m, (sr : Rs.t)) (m', (sc : Rs.t)) ->
              check "method order preserved" true (m = m');
              check
                (Printf.sprintf "fig2 %d MB %s: apply counts identical at %d domains"
                   r.Figures.cache_mb (Recovery.method_to_string m) domains)
                true
                (apply_counts sr = apply_counts sc);
              check
                (Printf.sprintf "fig2 %d MB %s: simulated redo time identical at %d domains"
                   r.Figures.cache_mb (Recovery.method_to_string m) domains)
                true
                (Rs.redo_ms sr = Rs.redo_ms sc))
            r.Figures.methods c.Figures.methods)
        reference cells)
    [ 2; 4 ]

let test_domain_pool () =
  let pool = Domain_pool.create ~domains:4 in
  let items = List.init 37 Fun.id in
  Alcotest.(check (list int))
    "results in input order" (List.map (fun i -> i * i) items)
    (Domain_pool.map pool (fun i -> i * i) items);
  check "exception propagates" true
    (match Domain_pool.map pool (fun i -> if i = 13 then failwith "boom" else i) items with
    | _ -> false
    | exception Failure msg -> msg = "boom")

(* The loud ownership guards: instrumentation structures refuse writes
   from domains that do not own them instead of tearing their rings. *)
let test_obs_owner_guards () =
  let metrics = Metrics.create () in
  let trace = Trace.create ~now:(fun () -> 0.0) () in
  let refused f =
    Domain.join
      (Domain.spawn (fun () ->
           match f () with () -> false | exception Invalid_argument _ -> true))
  in
  check "metrics registration refused cross-domain" true
    (refused (fun () -> ignore (Metrics.counter metrics "guard.test")));
  check "trace push refused cross-domain" true
    (refused (fun () -> Trace.instant trace ~name:"guard" ~cat:"test" ()));
  (* The owner itself is unaffected. *)
  Metrics.incr (Metrics.counter metrics "guard.test");
  Trace.instant trace ~name:"guard" ~cat:"test" ();
  check "owner writes fine" true
    (Metrics.read_int metrics "guard.test" = 1 && Trace.emitted trace = 1)

let suite =
  [
    Alcotest.test_case "domain redo is timing-only" `Quick test_redo_deterministic;
    Alcotest.test_case "non-logical methods fall back" `Quick test_non_logical_fallback;
    Alcotest.test_case "SMO-heavy partition ownership" `Quick test_redo_smo_heavy;
    Alcotest.test_case "crash-image isolation" `Quick test_crash_image_isolation;
    Alcotest.test_case "fig2 cells deterministic" `Slow test_fig2_cells_deterministic;
    Alcotest.test_case "domain pool order and errors" `Quick test_domain_pool;
    Alcotest.test_case "obs ownership guards" `Quick test_obs_owner_guards;
  ]
