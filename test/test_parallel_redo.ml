(* Partitioned parallel redo: the worker count is a pure timing knob.
   Application stays in log order, so the same crash image recovered with
   redo_workers in {1,2,4,8} must produce a byte-identical stable page
   store and identical apply counts; an SMO-heavy workload exercises the
   cross-partition barrier; tracing surfaces per-worker lanes. *)

module Db = Deut_core.Db
module Config = Deut_core.Config
module Engine = Deut_core.Engine
module Recovery = Deut_core.Recovery
module Rs = Deut_core.Recovery_stats
module Pool = Deut_buffer.Buffer_pool
module Page = Deut_storage.Page
module Page_store = Deut_storage.Page_store
module Workload = Deut_workload.Workload
module Driver = Deut_workload.Driver
module Trace = Deut_obs.Trace

let check = Alcotest.(check bool)
let worker_counts = [ 1; 2; 4; 8 ]

let small_config ?(tracing = false) ?(workers = 1) () =
  {
    Config.default with
    Config.page_size = 1024;
    pool_pages = 48;
    delta_period = 40;
    delta_capacity = 64;
    shards = 1;
    redo_workers = workers;
    tracing;
    trace_capacity = 1 lsl 18;
  }

let make_crash ?(op_mix = Workload.Update_only) ?(rows = 1200) () =
  let spec = { Workload.default with Workload.rows; value_size = 16; op_mix; seed = 5 } in
  let driver = Driver.create ~config:(small_config ()) spec in
  Driver.run_crash_protocol driver ~checkpoints:3 ~interval:300 ~tail:15;
  Driver.start_loser driver ~ops:8;
  (driver, Driver.crash driver)

(* Digest of the stable page store after forcing every dirty frame out:
   the complete post-recovery database image, byte for byte. *)
let store_digest db =
  let engine = Db.engine db in
  Pool.flush_all_dirty engine.Engine.pool;
  let pages = ref [] in
  Page_store.iter_stable engine.Engine.store (fun p ->
      pages := (p.Page.pid, Bytes.to_string p.Page.buf) :: !pages);
  let buf = Buffer.create 4096 in
  List.iter
    (fun (pid, bytes) ->
      Buffer.add_string buf (string_of_int pid);
      Buffer.add_char buf ':';
      Buffer.add_string buf bytes)
    (List.sort compare !pages);
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* The redo decisions and undo work — everything that determines state.
   IO/prefetch/stall counters legitimately vary with the worker count. *)
let apply_counts (s : Rs.t) =
  [
    s.Rs.records_scanned;
    s.Rs.redo_candidates;
    s.Rs.redo_applied;
    s.Rs.skipped_dpt;
    s.Rs.skipped_rlsn;
    s.Rs.skipped_plsn;
    s.Rs.tail_records;
    s.Rs.dpt_size;
    s.Rs.smos_replayed;
    s.Rs.losers;
    s.Rs.clrs_written;
  ]

let recover_with driver image method_ workers =
  let db, stats = Db.recover ~config:(small_config ~workers ()) image method_ in
  (match Driver.verify_recovered driver db with
  | Ok () -> ()
  | Error msg ->
      Alcotest.failf "%s at %d workers: wrong state: %s" (Recovery.method_to_string method_)
        workers msg);
  (store_digest db, apply_counts stats, stats)

let check_deterministic driver image methods =
  List.iter
    (fun m ->
      let results = List.map (recover_with driver image m) worker_counts in
      match results with
      | [] -> ()
      | (digest1, counts1, _) :: rest ->
          List.iteri
            (fun i (digest, counts, _) ->
              let w = List.nth worker_counts (i + 1) in
              check
                (Printf.sprintf "%s: %d workers, byte-identical store"
                   (Recovery.method_to_string m) w)
                true (String.equal digest digest1);
              Alcotest.(check (list int))
                (Printf.sprintf "%s: %d workers, identical apply counts"
                   (Recovery.method_to_string m) w)
                counts1 counts)
            rest)
    methods

let test_workers_identical () =
  let driver, image = make_crash () in
  check_deterministic driver image Recovery.all_methods

let test_smo_heavy_barrier () =
  (* Insert-weighted churn splits leaves continuously, so the physiological
     methods hit the cross-partition SMO barrier while replaying; the final
     image must still be independent of the worker count. *)
  let driver, image =
    make_crash ~op_mix:(Workload.Mixed { update = 0.3; insert = 0.6; delete = 0.1; read = 0.0 })
      ~rows:800 ()
  in
  List.iter
    (fun m ->
      let _, _, stats = recover_with driver image m 4 in
      check
        (Printf.sprintf "%s: workload produced SMOs to replay" (Recovery.method_to_string m))
        true
        (stats.Rs.smos_replayed > 0))
    [ Recovery.Sql1; Recovery.Sql2 ];
  check_deterministic driver image [ Recovery.Sql1; Recovery.Sql2; Recovery.Log1 ]

let test_worker_trace_lanes () =
  let driver, image = make_crash () in
  (* Per-worker lanes belong to the simulated-worker scheduler; pin
     [domains = 1] so a DEUT_DOMAINS run doesn't divert Log1 to the
     domain path (whose partitions are deliberately uninstrumented). *)
  let config = { (small_config ~tracing:true ~workers:4 ()) with Config.domains = 1 } in
  let db, _stats = Db.recover ~config image Recovery.Log1 in
  (match Driver.verify_recovered driver db with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "traced parallel recovery wrong: %s" msg);
  let tr =
    match Engine.trace (Db.engine db) with
    | Some tr -> tr
    | None -> Alcotest.fail "tracing enabled but engine has no trace"
  in
  let events = Trace.events tr in
  let on_worker_lane name ev = ev.Trace.name = name && ev.Trace.track >= Trace.track_worker 0 in
  check "redo_op spans land on worker lanes" true
    (List.exists (on_worker_lane "redo_op") events);
  check "stall spans land on worker lanes" true (List.exists (on_worker_lane "stall") events);
  check "no event beyond the configured worker lanes" false
    (List.exists (fun ev -> ev.Trace.track > Trace.track_worker 3) events);
  let json = Trace.to_chrome_json tr in
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  check "chrome export names the worker lanes" true (contains "redo-worker-" json)

let suite =
  [
    Alcotest.test_case "workers are timing-only" `Quick test_workers_identical;
    Alcotest.test_case "SMO barrier determinism" `Quick test_smo_heavy_barrier;
    Alcotest.test_case "worker trace lanes" `Quick test_worker_trace_lanes;
  ]
