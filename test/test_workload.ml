(* Workload library: oracle semantics, driver behaviour, report rendering,
   and the experiment harness at a tiny scale. *)

module Db = Deut_core.Db
module Config = Deut_core.Config
module Recovery = Deut_core.Recovery
module Workload = Deut_workload.Workload
module Oracle = Deut_workload.Oracle
module Driver = Deut_workload.Driver
module Report = Deut_workload.Report
module Experiment = Deut_workload.Experiment

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_oracle_txn_semantics () =
  let o = Oracle.create () in
  Oracle.begin_txn o 1;
  Oracle.buffer_put o ~txn:1 ~table:1 ~key:5 ~value:"a";
  check "pending writes invisible" true (Oracle.committed_value o ~table:1 ~key:5 = None);
  Oracle.commit o ~txn:1;
  check "committed visible" true (Oracle.committed_value o ~table:1 ~key:5 = Some "a");
  Oracle.begin_txn o 2;
  Oracle.buffer_put o ~txn:2 ~table:1 ~key:5 ~value:"b";
  Oracle.buffer_delete o ~txn:2 ~table:1 ~key:5;
  Oracle.buffer_put o ~txn:2 ~table:1 ~key:6 ~value:"c";
  Oracle.abort o ~txn:2;
  check "aborted writes discarded" true (Oracle.committed_value o ~table:1 ~key:5 = Some "a");
  check "aborted inserts discarded" true (Oracle.committed_value o ~table:1 ~key:6 = None);
  Oracle.begin_txn o 3;
  Oracle.buffer_put o ~txn:3 ~table:1 ~key:5 ~value:"x";
  Oracle.buffer_delete o ~txn:3 ~table:1 ~key:5;
  Oracle.commit o ~txn:3;
  check "in-txn order respected" true (Oracle.committed_value o ~table:1 ~key:5 = None);
  Oracle.begin_txn o 4;
  Oracle.buffer_put o ~txn:4 ~table:2 ~key:5 ~value:"other";
  Oracle.commit o ~txn:4;
  check_int "tables separate" 0 (Oracle.entry_count o ~table:1);
  check_int "tables separate 2" 1 (Oracle.entry_count o ~table:2);
  Alcotest.(check (list (pair int string))) "sorted entries" [ (5, "other") ]
    (Oracle.committed_entries o ~table:2)

let small_config =
  { Config.default with Config.page_size = 1024; pool_pages = 32; delta_period = 50; shards = 1 }

let small_spec = { Workload.default with Workload.rows = 500; value_size = 12; seed = 2 }

let test_driver_load_and_verify () =
  let driver = Driver.create ~config:small_config small_spec in
  (* Without any crash, the live db must match the oracle. *)
  (match Driver.verify_recovered driver (Driver.db driver) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  check_int "all rows loaded" 500 (Db.entry_count (Driver.db driver) ~table:1)

let test_driver_updates_tracked () =
  let driver = Driver.create ~config:small_config small_spec in
  Driver.run_updates driver ~updates:200;
  check "updates counted" true (Driver.updates_done driver >= 200);
  match Driver.verify_recovered driver (Driver.db driver) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_driver_mixed_ops () =
  let spec =
    {
      small_spec with
      Workload.op_mix = Workload.Mixed { update = 0.4; insert = 0.3; delete = 0.2; read = 0.1 };
    }
  in
  let driver = Driver.create ~config:small_config spec in
  Driver.run_updates driver ~updates:400;
  match Driver.verify_recovered driver (Driver.db driver) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_crash_protocol_tail () =
  (* The protocol must leave roughly [tail] updates after the last Δ/BW
     record so logical redo exercises its fallback.  The table must exceed
     the cache: with everything resident there are no misses, hence no
     background flushing and eventually no dirty transitions, and the late
     Δ windows come out empty (correctly emitting nothing). *)
  let spec = { small_spec with Workload.rows = 2500 } in
  let driver = Driver.create ~config:small_config spec in
  Driver.run_crash_protocol driver ~checkpoints:2 ~interval:200 ~tail:17;
  let image = Driver.crash driver in
  let recovered, stats = Db.recover image Recovery.Log1 in
  (match Driver.verify_recovered driver recovered with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  check "tail of expected size" true
    (stats.Deut_core.Recovery_stats.tail_records >= 15
    && stats.Deut_core.Recovery_stats.tail_records <= 60)

let test_value_of_sizes () =
  let rng = Deut_sim.Rng.create ~seed:3 in
  List.iter
    (fun size ->
      let v = Workload.value_of rng ~size in
      Alcotest.(check int) "exact size" size (String.length v);
      String.iter
        (fun c ->
          if not ((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) then
            Alcotest.failf "unexpected byte %C" c)
        v)
    [ 0; 1; 16; 255 ]

let test_sequential_distribution () =
  let spec =
    { small_spec with Workload.rows = 100; key_dist = Workload.Sequential; seed = 6 }
  in
  let driver = Driver.create ~config:small_config spec in
  Driver.run_updates driver ~updates:250;
  (* Sequential keys wrap around; state still matches the oracle. *)
  match Driver.verify_recovered driver (Driver.db driver) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_report_table () =
  let rendered =
    Report.table ~title:"T" ~header:[ "name"; "value" ]
      ~rows:[ [ "alpha"; "1.0" ]; [ "very-long-name"; "22.5" ] ]
      ()
  in
  let lines = String.split_on_char '\n' rendered in
  check_int "title + header + rule + 2 rows + trailing" 6 (List.length lines);
  (* All data lines equally wide (aligned). *)
  (match lines with
  | _title :: header :: rule :: r1 :: r2 :: _ ->
      check_int "aligned widths" (String.length header) (String.length rule);
      check "rows padded" true (String.length r1 = String.length r2)
  | _ -> Alcotest.fail "unexpected shape");
  let csv = Report.csv ~header:[ "a"; "b" ] ~rows:[ [ "1"; "2" ] ] in
  Alcotest.(check string) "csv" "a,b\n1,2\n" csv

let test_experiment_tiny () =
  (* One tiny experiment cell end-to-end, verifying every method. *)
  let setup = Experiment.paper_setup ~scale:512 ~cache_mb:256 () in
  let run = Experiment.build setup in
  check "db built" true (run.Experiment.db_pages > 100);
  check "dirty pages at crash" true (run.Experiment.dirty_at_crash > 0);
  check "deltas written" true (run.Experiment.deltas_total > 0);
  check "dirty fraction sane" true
    (run.Experiment.dirty_fraction > 0.0 && run.Experiment.dirty_fraction <= 1.0);
  let results = Experiment.run_all run Recovery.all_methods in
  check_int "five methods" 5 (List.length results);
  List.iter
    (fun (_, stats) -> check "redo happened" true (stats.Deut_core.Recovery_stats.records_scanned > 0))
    results

let suite =
  [
    Alcotest.test_case "oracle txn semantics" `Quick test_oracle_txn_semantics;
    Alcotest.test_case "driver load + verify" `Quick test_driver_load_and_verify;
    Alcotest.test_case "driver updates tracked" `Quick test_driver_updates_tracked;
    Alcotest.test_case "driver mixed ops" `Quick test_driver_mixed_ops;
    Alcotest.test_case "crash protocol tail" `Quick test_crash_protocol_tail;
    Alcotest.test_case "value_of sizes" `Quick test_value_of_sizes;
    Alcotest.test_case "sequential distribution" `Quick test_sequential_distribution;
    Alcotest.test_case "report table" `Quick test_report_table;
    Alcotest.test_case "experiment tiny cell" `Slow test_experiment_tiny;
  ]
