(* Normal-execution engine behaviour: transactions, aborts, WAL and
   checkpoint invariants, log archiving. *)

module Db = Deut_core.Db
module Config = Deut_core.Config
module Engine = Deut_core.Engine
module Tc = Deut_core.Tc
module Lr = Deut_wal.Log_record
module Lsn = Deut_wal.Lsn
module Log = Deut_wal.Log_manager
module Page = Deut_storage.Page
module Page_store = Deut_storage.Page_store
module Pool = Deut_buffer.Buffer_pool

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let config =
  { Config.default with Config.page_size = 1024; pool_pages = 48; delta_period = 50; shards = 1 }

let make () =
  let db = Db.create ~config () in
  Db.create_table db ~table:1;
  db

let ok = function Ok () -> () | Error e -> Alcotest.fail (Db.error_to_string e)

let test_read_your_writes () =
  let db = make () in
  let txn = Db.begin_txn db in
  ok (Db.insert db txn ~table:1 ~key:1 ~value:"a");
  (* No isolation layer (locking is out of scope, paper [13]): reads see
     applied operations immediately. *)
  check "uncommitted write visible to reads" true (Db.read db ~table:1 ~key:1 = Some "a");
  Db.commit db txn;
  check "still visible after commit" true (Db.read db ~table:1 ~key:1 = Some "a")

let test_error_paths () =
  let db = make () in
  let txn = Db.begin_txn db in
  ok (Db.insert db txn ~table:1 ~key:1 ~value:"a");
  check "duplicate insert rejected" true
    (Db.insert db txn ~table:1 ~key:1 ~value:"b"
    = Error (Db.Duplicate_key { table = 1; key = 1 }));
  check "update of absent key rejected" true
    (Db.update db txn ~table:1 ~key:2 ~value:"b" = Error (Db.Missing_key { table = 1; key = 2 }));
  check "delete of absent key rejected" true
    (Db.delete db txn ~table:1 ~key:2 = Error (Db.Missing_key { table = 1; key = 2 }));
  check "unknown table rejected" true
    (Db.update db txn ~table:9 ~key:0 ~value:"b" = Error (Db.No_such_table 9));
  Db.commit db txn

let test_abort_rolls_back () =
  let db = make () in
  let txn = Db.begin_txn db in
  ok (Db.insert db txn ~table:1 ~key:10 ~value:"committed");
  Db.commit db txn;
  let txn = Db.begin_txn db in
  ok (Db.update db txn ~table:1 ~key:10 ~value:"doomed");
  ok (Db.insert db txn ~table:1 ~key:11 ~value:"doomed-too");
  ok (Db.delete db txn ~table:1 ~key:10);
  Db.abort db txn;
  check "update+delete rolled back" true (Db.read db ~table:1 ~key:10 = Some "committed");
  check "insert rolled back" true (Db.read db ~table:1 ~key:11 = None);
  (match Db.check_integrity db with Ok () -> () | Error e -> Alcotest.fail e);
  (* The abort wrote CLRs and an abort record; a crash now must preserve
     exactly the committed state. *)
  let image = Db.crash db in
  let recovered, stats = Db.recover image Deut_core.Recovery.Log1 in
  check "state preserved across crash after abort" true
    (Db.read recovered ~table:1 ~key:10 = Some "committed");
  check_int "no losers after a clean abort" 0 stats.Deut_core.Recovery_stats.losers

let test_interleaved_txns () =
  let db = make () in
  let t1 = Db.begin_txn db in
  let t2 = Db.begin_txn db in
  ok (Db.insert db t1 ~table:1 ~key:1 ~value:"t1");
  ok (Db.insert db t2 ~table:1 ~key:2 ~value:"t2");
  ok (Db.update db t1 ~table:1 ~key:1 ~value:"t1'");
  Db.commit db t2;
  Db.abort db t1;
  check "t2 committed" true (Db.read db ~table:1 ~key:2 = Some "t2");
  check "t1 aborted through interleaving" true (Db.read db ~table:1 ~key:1 = None)

let expect_invalid_arg what f =
  match f () with
  | _ -> Alcotest.failf "%s must raise Invalid_argument" what
  | exception Invalid_argument _ -> ()

let test_txn_handle_misuse () =
  let db = make () in
  let other = make () in
  let txn = Db.begin_txn db in
  ok (Db.insert db txn ~table:1 ~key:1 ~value:"a");
  (* A handle is bound to the database that created it. *)
  expect_invalid_arg "foreign-db handle" (fun () -> Db.insert other txn ~table:1 ~key:1 ~value:"a");
  Db.commit db txn;
  (* A finished handle refuses further work — immediately, not stringly. *)
  check "post-commit op refused" true
    (Db.update db txn ~table:1 ~key:1 ~value:"b" = Error Db.Txn_finished);
  expect_invalid_arg "double commit" (fun () -> Db.commit db txn);
  expect_invalid_arg "abort after commit" (fun () -> Db.abort db txn)

let test_crash_poisons_handle () =
  let db = make () in
  Db.put db ~table:1 ~key:1 ~value:"a";
  let txn = Db.begin_txn db in
  let image = Db.crash db in
  (* The crashed handle is dead: the only way forward is Db.recover. *)
  expect_invalid_arg "read after crash" (fun () -> Db.read db ~table:1 ~key:1);
  expect_invalid_arg "write after crash" (fun () -> Db.insert db txn ~table:1 ~key:2 ~value:"b");
  expect_invalid_arg "second crash" (fun () -> Db.crash db);
  let recovered, _ = Db.recover image Deut_core.Recovery.Log1 in
  check "recovered handle lives" true (Db.read recovered ~table:1 ~key:1 = Some "a")

(* One transaction, one handle: the typed [Db.Txn.t] is the only way to
   drive a transaction (the old int-id shim is gone), and the handle keeps
   working across several operations before its single commit. *)
let test_txn_handle_reuse () =
  let db = make () in
  let txn = Db.begin_txn db in
  ok (Db.insert db txn ~table:1 ~key:1 ~value:"a");
  ok (Db.update db txn ~table:1 ~key:1 ~value:"b");
  check "own id is stable" true (Db.Txn.id txn > 0);
  Db.commit db txn;
  check "handle drove the txn" true (Db.read db ~table:1 ~key:1 = Some "b")

let test_put_upsert () =
  let db = make () in
  Db.put db ~table:1 ~key:7 ~value:"first";
  Db.put db ~table:1 ~key:7 ~value:"second";
  check "upsert" true (Db.read db ~table:1 ~key:7 = Some "second")

(* The WAL invariant: no stable page image may carry a pLSN beyond the
   stable log. *)
let wal_invariant db =
  let engine = Db.engine db in
  let stable = Log.stable_lsn engine.Engine.log in
  Page_store.iter_stable engine.Engine.store (fun page ->
      if Page.plsn page > stable then
        Alcotest.failf "WAL violation: page %d stable with pLSN %d > stable log %d"
          page.Page.pid (Page.plsn page) stable)

let test_wal_invariant_under_churn () =
  let db = make () in
  let rng = Deut_sim.Rng.create ~seed:8 in
  for k = 0 to 999 do
    Db.put db ~table:1 ~key:k ~value:(string_of_int k)
  done;
  wal_invariant db;
  for _ = 1 to 100 do
    let txn = Db.begin_txn db in
    for _ = 1 to 10 do
      ok (Db.update db txn ~table:1 ~key:(Deut_sim.Rng.int rng 1000) ~value:"churn")
    done;
    Db.commit db txn
  done;
  wal_invariant db;
  Db.checkpoint db;
  wal_invariant db

let test_penultimate_checkpoint_cleans () =
  let db = make () in
  for k = 0 to 500 do
    Db.put db ~table:1 ~key:k ~value:"x"
  done;
  check "dirty before checkpoint" true (Db.dirty_page_count db > 0);
  Db.checkpoint db;
  (* Synchronous penultimate checkpoint: everything dirtied before the
     begin-checkpoint record is flushed; nothing was dirtied after. *)
  check_int "clean after checkpoint" 0 (Db.dirty_page_count db);
  wal_invariant db

let test_log_archiving_safe () =
  let db = make () in
  for k = 0 to 300 do
    Db.put db ~table:1 ~key:k ~value:"v"
  done;
  Db.checkpoint db;
  Db.compact_log db;
  let engine = Db.engine db in
  check "archived up to the master" true
    (Log.base_lsn engine.Engine.log = Tc.master engine.Engine.tc);
  (* Recovery still works from the archived log. *)
  for k = 0 to 50 do
    Db.put db ~table:1 ~key:k ~value:"v2"
  done;
  let image = Db.crash db in
  let recovered, _ = Db.recover image Deut_core.Recovery.Sql1 in
  check "post-archive recovery" true (Db.read recovered ~table:1 ~key:3 = Some "v2")

let test_archiving_blocked_by_open_txn () =
  let db = make () in
  for k = 0 to 100 do
    Db.put db ~table:1 ~key:k ~value:"v"
  done;
  let txn = Db.begin_txn db in
  ok (Db.update db txn ~table:1 ~key:5 ~value:"open");
  let first_lsn_region = Db.log_end db in
  for k = 0 to 100 do
    Db.put db ~table:1 ~key:k ~value:"v2"
  done;
  Db.checkpoint db;
  Db.compact_log db;
  let engine = Db.engine db in
  (* The archive point must not pass the open transaction's chain, which
     started before [first_lsn_region]. *)
  check "open txn pins the log" true (Log.base_lsn engine.Engine.log < first_lsn_region);
  (* And the abort can still walk its chain.  Undo restores the before-
     image ("v"), clobbering the later blind write — exactly why full
     isolation needs the locking of the companion paper [13], which is out
     of scope here. *)
  Db.abort db txn;
  check "abort after checkpoint walks the pinned chain" true
    (Db.read db ~table:1 ~key:5 = Some "v")

let test_commit_forces_log () =
  let db = make () in
  let engine = Db.engine db in
  let txn = Db.begin_txn db in
  ok (Db.insert db txn ~table:1 ~key:1 ~value:"a");
  let stable_before = Log.stable_lsn engine.Engine.log in
  Db.commit db txn;
  check "commit advanced the stable log" true (Log.stable_lsn engine.Engine.log > stable_before);
  check_int "everything stable after commit" (Log.end_lsn engine.Engine.log)
    (Log.stable_lsn engine.Engine.log)

let test_group_commit_semantics () =
  (* Forces happen every 4th commit; commits queued in the volatile tail
     at a crash are losers, exactly as the durability contract says. *)
  let config = { config with Config.group_commit = 4; pool_pages = 256 } in
  let db = Db.create ~config () in
  Db.create_table db ~table:1;
  (* Seed + checkpoint so only the group-commit txns are in the redo range. *)
  for k = 0 to 49 do
    Db.put db ~table:1 ~key:k ~value:"init"
  done;
  Db.checkpoint db;
  let durability = ref [] in
  for k = 0 to 9 do
    let txn = Db.begin_txn db in
    ok (Db.update db txn ~table:1 ~key:k ~value:(Printf.sprintf "gc-%d" k));
    durability := Db.commit_durable db txn :: !durability
  done;
  (* 10 commits in groups of 4: forces after the 4th and 8th. *)
  Alcotest.(check (list bool))
    "durability acks follow the group boundary"
    [ false; false; true; false; false; false; true; false; false; false ]
    !durability;
  let image = Db.crash db in
  let recovered, _ = Db.recover image Deut_core.Recovery.Log1 in
  for k = 0 to 7 do
    check "group-covered commits survive" true
      (Db.read recovered ~table:1 ~key:k = Some (Printf.sprintf "gc-%d" k))
  done;
  for k = 8 to 9 do
    check "queued commits rolled back" true (Db.read recovered ~table:1 ~key:k = Some "init")
  done;
  (* flush_commits makes the tail durable. *)
  let db2 = Db.create ~config () in
  Db.create_table db2 ~table:1;
  Db.put db2 ~table:1 ~key:1 ~value:"init";
  Db.checkpoint db2;
  let txn = Db.begin_txn db2 in
  ok (Db.update db2 txn ~table:1 ~key:1 ~value:"flushed");
  check "queued" false (Db.commit_durable db2 txn);
  Db.flush_commits db2;
  let recovered2, _ = Db.recover (Db.crash db2) Deut_core.Recovery.Sql1 in
  check "flushed commit survives" true (Db.read recovered2 ~table:1 ~key:1 = Some "flushed")

let test_monitor_counts_visible () =
  let db = make () in
  for k = 0 to 400 do
    Db.put db ~table:1 ~key:k ~value:"x"
  done;
  check "delta records written" true (Db.deltas_written db > 0);
  check "delta bytes accounted" true (Db.delta_bytes db > 0);
  check "bw not more frequent than delta" true (Db.bws_written db <= Db.deltas_written db)

let test_stats_snapshot () =
  let db = make () in
  for k = 0 to 199 do
    Db.put db ~table:1 ~key:k ~value:"x"
  done;
  Db.checkpoint db;
  let s = Db.stats db in
  check_int "capacity" 48 s.Deut_core.Engine_stats.cache_capacity;
  check "resident pages" true (s.Deut_core.Engine_stats.cache_resident > 0);
  check "hit rate sane" true
    (s.Deut_core.Engine_stats.hit_rate >= 0.0 && s.Deut_core.Engine_stats.hit_rate <= 1.0);
  check "log records counted" true (s.Deut_core.Engine_stats.tc_log_records > 200);
  check "not split" false s.Deut_core.Engine_stats.split_logs;
  check "flushes happened at checkpoint" true (s.Deut_core.Engine_stats.flushes > 0);
  let rendered = Db.stats_string db in
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  check "rendering mentions the cache" true
    (String.length rendered > 100 && contains rendered "cache:")

let suite =
  [
    Alcotest.test_case "read your writes" `Quick test_read_your_writes;
    Alcotest.test_case "stats snapshot" `Quick test_stats_snapshot;
    Alcotest.test_case "error paths" `Quick test_error_paths;
    Alcotest.test_case "abort rolls back" `Quick test_abort_rolls_back;
    Alcotest.test_case "interleaved txns" `Quick test_interleaved_txns;
    Alcotest.test_case "txn handle misuse" `Quick test_txn_handle_misuse;
    Alcotest.test_case "crash poisons the handle" `Quick test_crash_poisons_handle;
    Alcotest.test_case "txn handle reuse" `Quick test_txn_handle_reuse;
    Alcotest.test_case "put upsert" `Quick test_put_upsert;
    Alcotest.test_case "WAL invariant under churn" `Quick test_wal_invariant_under_churn;
    Alcotest.test_case "penultimate checkpoint cleans" `Quick test_penultimate_checkpoint_cleans;
    Alcotest.test_case "log archiving safe" `Quick test_log_archiving_safe;
    Alcotest.test_case "archiving blocked by open txn" `Quick test_archiving_blocked_by_open_txn;
    Alcotest.test_case "commit forces log" `Quick test_commit_forces_log;
    Alcotest.test_case "group commit semantics" `Quick test_group_commit_semantics;
    Alcotest.test_case "monitor counts visible" `Quick test_monitor_counts_visible;
  ]
