(* Causal cross-shard tracing and the crash-surviving flight recorder.

   A traced sharded recovery over the simulated network must export one
   stitched story: every TC-side protocol call opens a Chrome flow on the
   recovery lane, the flow steps through the link's delivery span and the
   DC-side handler span, and closes back on the TC's [req:] span — so
   this suite walks the flow-event graph and checks the arrows actually
   connect.  On top of that: same-seed byte determinism of the sharded
   networked export, retransmit attribution in the Analysis stall budget,
   flow pairing surviving ring overflow, metrics registry collision
   detection, shard-prefixed device metrics, and byte-identical forensics
   dumps from the flight recorder that rides through a crash. *)

module Db = Deut_core.Db
module Config = Deut_core.Config
module Engine = Deut_core.Engine
module Crash_image = Deut_core.Crash_image
module Recovery = Deut_core.Recovery
module Trace = Deut_obs.Trace
module Metrics = Deut_obs.Metrics
module Analysis = Deut_obs.Analysis
module Flight = Deut_obs.Flight
module Fuzz = Deut_workload.Fuzz
module Workload = Deut_workload.Workload
module Driver = Deut_workload.Driver
module Client_sched = Deut_workload.Client_sched

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let config ?(shards = 4) ?(lossy = false) () =
  {
    Config.default with
    Config.page_size = 1024;
    pool_pages = 64;
    locking = true;
    clients = 4;
    shards;
    net = true;
    net_latency_us = (if lossy then 80.0 else 20.0);
    net_jitter_us = (if lossy then 40.0 else 0.0);
    net_loss = (if lossy then 0.05 else 0.0);
    net_reorder = (if lossy then 0.1 else 0.0);
    net_timeout_us = 500.0;
    tracing = true;
    trace_capacity = 1 lsl 18;
  }

let spec = { Workload.default with Workload.rows = 150; seed = 1903 }

(* Crash a sharded networked workload, then recover it traced. *)
let recover_traced ?shards ?lossy () =
  let c = config ?shards ?lossy () in
  let driver = Driver.create ~config:c spec in
  let sched = Driver.run_concurrent driver ~txns:40 in
  Client_sched.flush sched;
  let image = Driver.crash driver in
  let db, _stats = Db.recover image Recovery.Log2 in
  let tr =
    match Engine.trace (Db.engine db) with
    | Some tr -> tr
    | None -> Alcotest.fail "tracing enabled but engine has no trace"
  in
  (db, tr)

(* ---------- the flow-event graph ---------- *)

(* Group the trace's flow events by id, preserving emission order. *)
let flows_of tr =
  let tbl = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun ev ->
      match ev.Trace.kind with
      | Trace.Flow_start | Trace.Flow_step | Trace.Flow_end ->
          let id = Trace.flow_id ev in
          if not (Hashtbl.mem tbl id) then order := id :: !order;
          Hashtbl.replace tbl id (ev :: Option.value (Hashtbl.find_opt tbl id) ~default:[])
      | _ -> ())
    (Trace.events tr);
  List.rev_map (fun id -> (id, List.rev (Hashtbl.find tbl id))) !order

let kind_counts chain =
  List.fold_left
    (fun (s, t, f) ev ->
      match ev.Trace.kind with
      | Trace.Flow_start -> (s + 1, t, f)
      | Trace.Flow_step -> (s, t + 1, f)
      | Trace.Flow_end -> (s, t, f + 1)
      | _ -> (s, t, f))
    (0, 0, 0) chain

(* Every message's flow must read s -> t... -> f: open on the TC's
   recovery lane, step across the wire / the shard handler, close back on
   the TC — with non-decreasing timestamps, so Perfetto's arrows point
   forward in time.  A DEUT_SHARDS=4 recovery must stitch flows into
   every shard. *)
let test_flow_graph_connects () =
  let _db, tr = recover_traced () in
  check_int "nothing dropped at this capacity" 0 (Trace.dropped tr);
  let flows = flows_of tr in
  check "recovery produced flows" true (List.length flows >= 4);
  let shards_seen = Hashtbl.create 8 in
  List.iter
    (fun (id, chain) ->
      let s, t, f = kind_counts chain in
      check_int (Printf.sprintf "flow %d: one start" id) 1 s;
      check_int (Printf.sprintf "flow %d: one end" id) 1 f;
      check (Printf.sprintf "flow %d: steps exist" id) true (t >= 1);
      (match chain with
      | first :: _ ->
          check (Printf.sprintf "flow %d opens as a start" id) true
            (first.Trace.kind = Trace.Flow_start);
          check_int (Printf.sprintf "flow %d opens on the recovery lane" id)
            Trace.track_recovery first.Trace.track
      | [] -> Alcotest.fail "empty flow chain");
      (match List.rev chain with
      | last :: _ ->
          check (Printf.sprintf "flow %d closes as an end" id) true
            (last.Trace.kind = Trace.Flow_end);
          check_int (Printf.sprintf "flow %d closes on the recovery lane" id)
            Trace.track_recovery last.Trace.track
      | [] -> ());
      List.iter
        (fun ev ->
          if ev.Trace.kind = Trace.Flow_step then begin
            check (Printf.sprintf "flow %d steps off-engine (lane %d)" id ev.Trace.track)
              true
              (ev.Trace.track >= Trace.track_net);
            if ev.Trace.track >= Trace.track_shard 0 then
              Hashtbl.replace shards_seen (ev.Trace.track - Trace.track_shard 0) ()
          end)
        chain;
      ignore
        (List.fold_left
           (fun prev ev ->
             check (Printf.sprintf "flow %d: time moves forward" id) true
               (ev.Trace.ts >= prev);
             ev.Trace.ts)
           neg_infinity chain))
    flows;
  check "flows reach every shard" true (Hashtbl.length shards_seen >= 4)

(* Same seed, same wire luck, same arrows: the full sharded networked
   export is byte-identical across runs. *)
let test_sharded_trace_deterministic () =
  let json () =
    let _db, tr = recover_traced ~lossy:true () in
    Trace.to_chrome_json tr
  in
  check "same-seed sharded+lossy traces byte-identical" true
    (String.equal (json ()) (json ()))

(* ---------- stall -> message attribution ---------- *)

(* Under a lossy link the profile must charge cross-shard waiting to the
   requests that waited, and pin at least one retransmit on its causing
   request kind. *)
let test_retransmit_attribution () =
  let _db, tr = recover_traced ~lossy:true () in
  let p = Analysis.of_trace tr in
  check "messages observed" true (p.Analysis.net_msgs > 0);
  check "wire time accumulated" true (p.Analysis.net_wire_us > 0.0);
  check "losses observed" true (p.Analysis.net_retransmits > 0);
  check "attribution buckets exist" true (p.Analysis.net_sources <> []);
  check "a named request owns a retransmit" true
    (List.exists
       (fun s -> s.Analysis.ns_request <> "(unknown)" && s.Analysis.ns_retransmits > 0)
       p.Analysis.net_sources);
  List.iter
    (fun s ->
      check (Printf.sprintf "%s: calls counted" s.Analysis.ns_request) true
        (s.Analysis.ns_calls > 0))
    p.Analysis.net_sources;
  (* The net section survives the JSON round trip. *)
  match Analysis.of_json (Analysis.to_json p) with
  | Error e -> Alcotest.failf "round trip failed: %s" e
  | Ok p' ->
      check_int "msgs round trip" p.Analysis.net_msgs p'.Analysis.net_msgs;
      check_int "retransmits round trip" p.Analysis.net_retransmits p'.Analysis.net_retransmits;
      check_int "buckets round trip"
        (List.length p.Analysis.net_sources)
        (List.length p'.Analysis.net_sources)

(* Profiles written before the net section existed must still parse. *)
let test_profile_json_backward_compat () =
  let p = Analysis.of_events [] in
  let json = Analysis.to_json p in
  (* Strip the net object the way an old writer would never have emitted
     it. *)
  let idx =
    let rec find i =
      if i + 7 > String.length json then Alcotest.fail "no net key in json"
      else if String.sub json i 7 = ",\"net\":" then i
      else find (i + 1)
    in
    find 0
  in
  let close =
    let rec find i depth =
      match json.[i] with
      | '{' -> find (i + 1) (depth + 1)
      | '}' -> if depth = 1 then i else find (i + 1) (depth - 1)
      | _ -> find (i + 1) depth
    in
    find (idx + 7) 0
  in
  let old = String.sub json 0 idx ^ String.sub json (close + 1) (String.length json - close - 1) in
  match Analysis.of_json old with
  | Error e -> Alcotest.failf "pre-net profile rejected: %s" e
  | Ok p' ->
      check_int "defaults to zero msgs" 0 p'.Analysis.net_msgs;
      check "defaults to empty buckets" true (p'.Analysis.net_sources = [])

(* ---------- overflow ---------- *)

(* A tiny ring under a sharded networked recovery overflows by design:
   the advice must name the sufficient DEUT_TRACE_CAP, and the retained
   flow events must still pair up (at most one start and one end per id,
   in order) — the ring drops oldest-first, never from the middle of a
   chain's emission order. *)
let test_overflow_advice_and_pairing () =
  let c = { (config ()) with Config.trace_capacity = 256 } in
  let driver = Driver.create ~config:c spec in
  let sched = Driver.run_concurrent driver ~txns:40 in
  Client_sched.flush sched;
  let image = Driver.crash driver in
  let db, _ = Db.recover image Recovery.Log2 in
  let tr = Option.get (Engine.trace (Db.engine db)) in
  check "ring overflowed" true (Trace.dropped tr > 0);
  (match Trace.overflow_advice tr with
  | None -> Alcotest.fail "overflow produced no advice"
  | Some advice ->
      check "advice names the env knob" true
        (let needle = Printf.sprintf "DEUT_TRACE_CAP=%d" (Trace.emitted tr) in
         let nl = String.length needle and al = String.length advice in
         let rec go i = i + nl <= al && (String.sub advice i nl = needle || go (i + 1)) in
         go 0));
  List.iter
    (fun (id, chain) ->
      let s, _, f = kind_counts chain in
      check (Printf.sprintf "flow %d: at most one start survives" id) true (s <= 1);
      check (Printf.sprintf "flow %d: at most one end survives" id) true (f <= 1);
      match (chain, List.rev chain) with
      | first :: _, last :: _ ->
          if s = 1 then
            check (Printf.sprintf "flow %d: surviving start is first" id) true
              (first.Trace.kind = Trace.Flow_start);
          if f = 1 then
            check (Printf.sprintf "flow %d: surviving end is last" id) true
              (last.Trace.kind = Trace.Flow_end)
      | [], _ | _, [] -> ())
    (flows_of tr)

(* ---------- metrics registry ---------- *)

(* Duplicate registration fails loudly instead of silently shadowing. *)
let test_metrics_collision_detection () =
  let m = Metrics.create () in
  Metrics.gauge m "x.level" (fun () -> 1.0);
  check "duplicate gauge raises" true
    (match Metrics.gauge m "x.level" (fun () -> 2.0) with
    | exception Invalid_argument _ -> true
    | () -> false);
  check "gauge over live counter raises" true
    (let _ = Metrics.counter m "x.count" in
     match Metrics.gauge m "x.count" (fun () -> 0.0) with
    | exception Invalid_argument _ -> true
    | () -> false);
  (* Cells stay get-or-create: asking again is sharing, not shadowing. *)
  let c1 = Metrics.counter m "x.shared" in
  Metrics.incr c1;
  Metrics.incr (Metrics.counter m "x.shared");
  check_int "counter shared, not shadowed" 2 (Metrics.read_int m "x.shared")

(* Every shard's device histograms carry the shard<i>. prefix — shard 0
   included — so a sharded registry never aliases two devices. *)
let test_shard_prefixed_metrics () =
  let c = { (config ()) with Config.net = false; tracing = false } in
  let driver = Driver.create ~config:c spec in
  let sched = Driver.run_concurrent driver ~txns:20 in
  Client_sched.flush sched;
  let names = Metrics.names (Engine.metrics (Db.engine (Driver.db driver))) in
  for i = 0 to 3 do
    check (Printf.sprintf "shard%d.disk.data.io_us registered" i) true
      (List.mem (Printf.sprintf "shard%d.disk.data.io_us" i) names)
  done;
  check "no unprefixed data-disk histogram when sharded" false
    (List.mem "disk.data.io_us" names)

(* ---------- forensics ---------- *)

(* The flight recorder rides through Db.crash inside the image; rendering
   two same-seed rebuilds is byte-identical, which is what lets CI dump a
   failing fuzz seed's black box after the fact. *)
let test_forensics_deterministic () =
  let dump shards =
    let image = Fuzz.build_image ~shards 4242 in
    match Crash_image.flight image with
    | Some snap -> Flight.render snap
    | None -> Alcotest.fail "fuzz image carries no flight snapshot"
  in
  check_string "single-shard forensics byte-identical" (dump 1) (dump 1);
  check_string "sharded forensics byte-identical" (dump 4) (dump 4);
  let d = dump 4 in
  let contains needle =
    let nl = String.length needle and dl = String.length d in
    let rec go i = i + nl <= dl && (String.sub d i nl = needle || go (i + 1)) in
    go 0
  in
  check "dump names the tc" true (contains "[tc]");
  check "dump names a sibling shard" true (contains "[shard 3]");
  check "dump resolves causal chains" true (contains "causal chains");
  check "protocol sends recorded" true (contains "send");
  check "log forces recorded" true (contains "log_force")

(* Db.crash stamps the black box before the snapshot leaves. *)
let test_crash_marker_recorded () =
  let db = Db.create ~config:{ Config.default with Config.page_size = 1024 } () in
  Db.create_table db ~table:1;
  Db.put db ~table:1 ~key:1 ~value:"v";
  let image = Db.crash db in
  match Crash_image.flight image with
  | None -> Alcotest.fail "image carries no flight snapshot"
  | Some snap ->
      check "crash marker is the last tc event" true
        (match List.rev (Flight.snapshot_entries snap ~comp:Flight.tc) with
        | last :: _ -> last.Flight.e_kind = Flight.Crash
        | [] -> false)

let suite =
  [
    Alcotest.test_case "flow graph connects TC -> net -> shards" `Quick
      test_flow_graph_connects;
    Alcotest.test_case "sharded networked trace byte-deterministic" `Quick
      test_sharded_trace_deterministic;
    Alcotest.test_case "retransmits attributed to requests" `Quick test_retransmit_attribution;
    Alcotest.test_case "profile json backward compatible" `Quick
      test_profile_json_backward_compat;
    Alcotest.test_case "overflow advice + flow pairing" `Quick test_overflow_advice_and_pairing;
    Alcotest.test_case "metrics collision detection" `Quick test_metrics_collision_detection;
    Alcotest.test_case "shard-prefixed device metrics" `Quick test_shard_prefixed_metrics;
    Alcotest.test_case "forensics dumps byte-identical" `Quick test_forensics_deterministic;
    Alcotest.test_case "crash marker recorded" `Quick test_crash_marker_recorded;
  ]
