(* Key locking (strict 2PL, no-wait): the lock table, and its integration
   with transactions, aborts, and recovery. *)

module Db = Deut_core.Db
module Config = Deut_core.Config
module Tc = Deut_core.Tc
module Lock_table = Deut_core.Lock_table
module Recovery = Deut_core.Recovery

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_lock_table_basics () =
  let t = Lock_table.create () in
  check "x grant" true (Lock_table.acquire t ~txn:1 ~table:1 ~key:5 Lock_table.Exclusive = Ok ());
  check "x re-grant to holder" true
    (Lock_table.acquire t ~txn:1 ~table:1 ~key:5 Lock_table.Exclusive = Ok ());
  check "x blocks x" true
    (Lock_table.acquire t ~txn:2 ~table:1 ~key:5 Lock_table.Exclusive = Error 1);
  check "x blocks s" true (Lock_table.acquire t ~txn:2 ~table:1 ~key:5 Lock_table.Shared = Error 1);
  check "different key free" true
    (Lock_table.acquire t ~txn:2 ~table:1 ~key:6 Lock_table.Exclusive = Ok ());
  check "different table free" true
    (Lock_table.acquire t ~txn:2 ~table:2 ~key:5 Lock_table.Exclusive = Ok ());
  check_int "holders tracked" 1 (Lock_table.held_by t ~txn:1);
  check_int "holders tracked 2" 2 (Lock_table.held_by t ~txn:2);
  Lock_table.release_all t ~txn:1;
  check_int "released" 0 (Lock_table.held_by t ~txn:1);
  check "freed for others" true
    (Lock_table.acquire t ~txn:2 ~table:1 ~key:5 Lock_table.Exclusive = Ok ())

let test_shared_locks () =
  let t = Lock_table.create () in
  check "s grant" true (Lock_table.acquire t ~txn:1 ~table:1 ~key:1 Lock_table.Shared = Ok ());
  check "s shares" true (Lock_table.acquire t ~txn:2 ~table:1 ~key:1 Lock_table.Shared = Ok ());
  check "x blocked by sharers" true
    (match Lock_table.acquire t ~txn:3 ~table:1 ~key:1 Lock_table.Exclusive with
    | Error (1 | 2) -> true
    | _ -> false);
  check "upgrade blocked while shared" true
    (match Lock_table.acquire t ~txn:1 ~table:1 ~key:1 Lock_table.Exclusive with
    | Error 2 -> true
    | _ -> false);
  Lock_table.release_all t ~txn:2;
  check "sole sharer upgrades" true
    (Lock_table.acquire t ~txn:1 ~table:1 ~key:1 Lock_table.Exclusive = Ok ());
  check "upgraded lock excludes" true
    (Lock_table.acquire t ~txn:3 ~table:1 ~key:1 Lock_table.Shared = Error 1);
  Lock_table.release_all t ~txn:1;
  Lock_table.release_all t ~txn:3;
  check_int "empty table" 0 (Lock_table.locked_keys t)

let locking_config =
  { Config.default with Config.page_size = 1024; pool_pages = 32; locking = true }

let test_txn_conflicts_and_release () =
  let db = Db.create ~config:locking_config () in
  Db.create_table db ~table:1;
  let t1 = Db.begin_txn db in
  (match Db.insert db t1 ~table:1 ~key:1 ~value:"a" with Ok () -> () | Error e -> Alcotest.fail (Db.error_to_string e));
  let t2 = Db.begin_txn db in
  (* Writer/writer conflict fails fast. *)
  (match Db.update db t2 ~table:1 ~key:1 ~value:"b" with
  | Error (Db.Lock_conflict { holder }) ->
      check_int "conflict names the holder" (Db.Txn.id t1) holder
  | Error e -> Alcotest.failf "unexpected error: %s" (Db.error_to_string e)
  | Ok () -> Alcotest.fail "conflicting write must be refused");
  (* Reader blocked by the exclusive holder too. *)
  (match Db.read_locked db t2 ~table:1 ~key:1 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "locked read must conflict");
  (* Unlocked reads bypass locking by design. *)
  check "unlocked read sees through" true (Db.read db ~table:1 ~key:1 = Some "a");
  Db.commit db t1;
  (* Commit released the lock; t2 can proceed now. *)
  (match Db.update db t2 ~table:1 ~key:1 ~value:"b" with Ok () -> () | Error e -> Alcotest.fail (Db.error_to_string e));
  Db.commit db t2;
  check "final value" true (Db.read db ~table:1 ~key:1 = Some "b")

let test_abort_releases_locks () =
  let db = Db.create ~config:locking_config () in
  Db.create_table db ~table:1;
  Db.put db ~table:1 ~key:7 ~value:"base";
  let t1 = Db.begin_txn db in
  (match Db.update db t1 ~table:1 ~key:7 ~value:"doomed" with Ok () -> () | Error e -> Alcotest.fail (Db.error_to_string e));
  check_int "lock held" 1 (Tc.locks_held (Db.engine db).Deut_core.Engine.tc ~txn:(Db.Txn.id t1));
  Db.abort db t1;
  check_int "abort released" 0
    (Tc.locks_held (Db.engine db).Deut_core.Engine.tc ~txn:(Db.Txn.id t1));
  let t2 = Db.begin_txn db in
  (match Db.update db t2 ~table:1 ~key:7 ~value:"next" with Ok () -> () | Error e -> Alcotest.fail (Db.error_to_string e));
  Db.commit db t2;
  check "abort restored then t2 applied" true (Db.read db ~table:1 ~key:7 = Some "next")

let test_locking_crash_recovery () =
  (* Locks are volatile; recovery of a locking engine works like any other
     and the recovered engine accepts new locked transactions. *)
  let db = Db.create ~config:locking_config () in
  Db.create_table db ~table:1;
  for k = 0 to 199 do
    Db.put db ~table:1 ~key:k ~value:"v"
  done;
  Db.checkpoint db;
  let loser = Db.begin_txn db in
  (match Db.update db loser ~table:1 ~key:0 ~value:"LOSER" with Ok () -> () | Error e -> Alcotest.fail (Db.error_to_string e));
  Deut_wal.Log_manager.force (Db.engine db).Deut_core.Engine.log;
  let image = Db.crash db in
  let recovered, stats = Db.recover image Recovery.Log1 in
  check "loser undone" true (Db.read recovered ~table:1 ~key:0 = Some "v");
  check_int "one loser" 1 stats.Deut_core.Recovery_stats.losers;
  let t = Db.begin_txn recovered in
  (match Db.update recovered t ~table:1 ~key:0 ~value:"post" with Ok () -> () | Error e -> Alcotest.fail (Db.error_to_string e));
  Db.commit recovered t;
  check "post-recovery locking works" true (Db.read recovered ~table:1 ~key:0 = Some "post")

let suite =
  [
    Alcotest.test_case "lock table basics" `Quick test_lock_table_basics;
    Alcotest.test_case "shared locks + upgrade" `Quick test_shared_locks;
    Alcotest.test_case "txn conflicts and release" `Quick test_txn_conflicts_and_release;
    Alcotest.test_case "abort releases locks" `Quick test_abort_releases_locks;
    Alcotest.test_case "crash recovery with locking" `Quick test_locking_crash_recovery;
  ]
