(* Trace-mining profiler: stall-attribution invariants against the engine
   counters and the stall histogram, prefetch hit/late/wasted
   reconciliation, byte-identical same-seed profiles, JSON round-trip, the
   regression gate, empty-input guards, and tuner scoring. *)

module Db = Deut_core.Db
module Config = Deut_core.Config
module Engine = Deut_core.Engine
module Recovery = Deut_core.Recovery
module Recovery_stats = Deut_core.Recovery_stats
module Workload = Deut_workload.Workload
module Driver = Deut_workload.Driver
module Trace = Deut_obs.Trace
module Metrics = Deut_obs.Metrics
module Analysis = Deut_obs.Analysis
module Tuner = Deut_obs.Tuner

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let close msg a b = check (Printf.sprintf "%s (%.6f vs %.6f)" msg a b) true (Float.abs (a -. b) < 1e-6)

(* Same small traced setup as test_trace.ml. *)
let traced_config =
  {
    Config.default with
    Config.page_size = 1024;
    pool_pages = 48;
    delta_period = 40;
    delta_capacity = 64;
    shards = 1;
    tracing = true;
    trace_capacity = 1 lsl 18;
    (* Pin the timing overlays so the single-cursor invariants below
       (phase stall <= phase duration) hold regardless of the
       DEUT_REDO_WORKERS / DEUT_CLIENTS environment the CI matrix sets. *)
    redo_workers = 1;
    clients = 1;
  }

let small_spec = { Workload.default with Workload.rows = 1200; value_size = 16; seed = 5 }

let make_crash () =
  let driver = Driver.create ~config:traced_config small_spec in
  Driver.run_crash_protocol driver ~checkpoints:3 ~interval:300 ~tail:15;
  Driver.start_loser driver ~ops:8;
  (driver, Driver.crash driver)

let recover_profiled image method_ =
  let db, stats = Db.recover ~config:traced_config image method_ in
  let tr =
    match Engine.trace (Db.engine db) with
    | Some tr -> tr
    | None -> Alcotest.fail "tracing enabled in config but engine has no trace"
  in
  check "ring did not overflow" true (Trace.dropped tr = 0);
  (db, stats, tr, Analysis.of_trace tr)

(* ---------- attribution invariants ---------- *)

let test_stall_attribution_matches_counters () =
  let _, image = make_crash () in
  List.iter
    (fun m ->
      let name fmt = Printf.sprintf "%s: %s" (Recovery.method_to_string m) fmt in
      let db, stats, _, p = recover_profiled image m in
      check_int (name "stall span count = counter") stats.Recovery_stats.stalls p.Analysis.stall_count;
      close (name "stall mass = counter stall time")
        (stats.Recovery_stats.data_stall_us +. stats.Recovery_stats.index_stall_us)
        p.Analysis.stall_total_us;
      (* The histogram records exactly the waits the spans describe: total
         stall time attributed by the profiler equals the histogram mass. *)
      (match Metrics.find_histogram (Engine.metrics (Db.engine db)) "cache.stall_wait_us" with
      | None -> Alcotest.fail "cache.stall_wait_us not registered"
      | Some h ->
          close (name "stall mass = histogram mass") (Metrics.sum h) p.Analysis.stall_total_us;
          check_int (name "stall spans = histogram n") (Metrics.observations h)
            p.Analysis.stall_count);
      (* Every stall waits on a request the deterministic disk model had
         already scheduled, so its span must find its device span. *)
      close (name "every stall attributed") p.Analysis.stall_total_us
        p.Analysis.stall_attributed_us;
      let bucket_sum =
        List.fold_left (fun acc s -> acc +. s.Analysis.src_stall_us) 0.0 p.Analysis.sources
      in
      close (name "attribution buckets partition the mass") p.Analysis.stall_attributed_us
        bucket_sum;
      check_int (name "bucket counts partition the spans") p.Analysis.stall_count
        (List.fold_left (fun acc s -> acc + s.Analysis.src_count) 0 p.Analysis.sources))
    [ Recovery.Log2; Recovery.Sql2; Recovery.Log1 ]

let test_prefetch_classes_reconcile () =
  let _, image = make_crash () in
  List.iter
    (fun m ->
      let name fmt = Printf.sprintf "%s: %s" (Recovery.method_to_string m) fmt in
      let _, stats, _, p = recover_profiled image m in
      check_int (name "hit + late = prefetch_hits counter")
        stats.Recovery_stats.prefetch_hits
        (p.Analysis.pf_hit + p.Analysis.pf_late);
      check_int (name "issued = prefetch_issued counter") stats.Recovery_stats.prefetch_issued
        p.Analysis.pf_issued;
      check_int (name "hit + late + wasted = issued") p.Analysis.pf_issued
        (p.Analysis.pf_hit + p.Analysis.pf_late + p.Analysis.pf_wasted);
      check_int (name "fetch total = counters")
        (stats.Recovery_stats.data_page_fetches + stats.Recovery_stats.index_page_fetches)
        p.Analysis.fetch_total;
      check_int (name "index fetches = counter") stats.Recovery_stats.index_page_fetches
        p.Analysis.fetch_index;
      check_int (name "prefetched fetches = claims") stats.Recovery_stats.prefetch_hits
        p.Analysis.fetch_prefetched)
    [ Recovery.Log2; Recovery.Sql2 ]

let test_phase_budget_consistent () =
  let _, image = make_crash () in
  let _, stats, _, p = recover_profiled image Recovery.Log2 in
  close "profile total = analysis + redo + undo"
    (stats.Recovery_stats.analysis_us +. stats.Recovery_stats.redo_us
    +. stats.Recovery_stats.undo_us)
    p.Analysis.total_us;
  List.iter
    (fun ph ->
      check
        (Printf.sprintf "phase %s: overlap <= io busy" ph.Analysis.ph_name)
        true
        (ph.Analysis.ph_overlap_us <= ph.Analysis.ph_io_us +. 1e-9);
      check
        (Printf.sprintf "phase %s: budget components non-negative" ph.Analysis.ph_name)
        true
        (ph.Analysis.ph_stall_us >= 0.0 && ph.Analysis.ph_io_us >= 0.0
        && ph.Analysis.ph_compute_us >= 0.0))
    p.Analysis.phases;
  (* Single-cursor recovery: a phase cannot wait longer than it lasted. *)
  List.iter
    (fun ph ->
      check
        (Printf.sprintf "phase %s: stall <= duration" ph.Analysis.ph_name)
        true
        (ph.Analysis.ph_stall_us <= ph.Analysis.ph_dur_us +. 1e-9))
    p.Analysis.phases

(* ---------- determinism and round-trip ---------- *)

let test_profiles_byte_identical () =
  let _, image = make_crash () in
  List.iter
    (fun m ->
      let _, _, _, p1 = recover_profiled image m in
      let _, _, _, p2 = recover_profiled image m in
      check
        (Printf.sprintf "%s: same-seed profile JSON byte-identical" (Recovery.method_to_string m))
        true
        (String.equal (Analysis.to_json p1) (Analysis.to_json p2));
      check
        (Printf.sprintf "%s: same-seed render byte-identical" (Recovery.method_to_string m))
        true
        (String.equal (Analysis.render p1) (Analysis.render p2)))
    [ Recovery.Log2; Recovery.Sql2 ]

let test_json_roundtrip () =
  let _, image = make_crash () in
  let _, _, _, p = recover_profiled image Recovery.Log2 in
  let json = Analysis.to_json p in
  (match Analysis.of_json json with
  | Error msg -> Alcotest.failf "of_json failed on own output: %s" msg
  | Ok p' ->
      Alcotest.(check string) "parse-print fixed point" json (Analysis.to_json p');
      check_int "fetch counts survive" p.Analysis.fetch_total p'.Analysis.fetch_total;
      check_int "sources survive" (List.length p.Analysis.sources)
        (List.length p'.Analysis.sources));
  check "garbage rejected" true (Result.is_error (Analysis.of_json "{nope"));
  check "wrong shape rejected" true (Result.is_error (Analysis.of_json "{\"schema\":1}"))

(* ---------- regression gate ---------- *)

let test_regression_gate () =
  let _, image = make_crash () in
  let _, _, _, p = recover_profiled image Recovery.Log2 in
  check "profile passes against itself" true
    (Analysis.check_ok (Analysis.check ~baseline:p ~current:p ~tolerance_pct:10.0));
  let slower =
    {
      p with
      Analysis.stall_total_us = (p.Analysis.stall_total_us *. 1.5) +. 10_000.0;
      stall_attributed_us = (p.Analysis.stall_attributed_us *. 1.5) +. 10_000.0;
    }
  in
  check "50% more stall time fails the gate" false
    (Analysis.check_ok (Analysis.check ~baseline:p ~current:slower ~tolerance_pct:10.0));
  let more_fetches = { p with Analysis.fetch_total = p.Analysis.fetch_total + 100 } in
  check "fetch-count regression fails the gate" false
    (Analysis.check_ok (Analysis.check ~baseline:p ~current:more_fetches ~tolerance_pct:10.0));
  let faster = { p with Analysis.stall_total_us = p.Analysis.stall_total_us /. 2.0 } in
  check "improvement passes the gate" true
    (Analysis.check_ok (Analysis.check ~baseline:p ~current:faster ~tolerance_pct:10.0));
  (* Near-zero baselines get absolute slack instead of percentage noise. *)
  let zero = { p with Analysis.fetch_total = 0 } in
  check "tiny count drift tolerated" true
    (Analysis.check_ok
       (Analysis.check ~baseline:zero
          ~current:{ zero with Analysis.fetch_total = 2 }
          ~tolerance_pct:0.0))

(* ---------- empty inputs must yield zeros, not NaN ---------- *)

let no_nan p =
  List.iter
    (fun (name, v) -> check (name ^ " is finite") true (Float.is_finite v))
    [
      ("total_us", p.Analysis.total_us);
      ("stall_total_us", p.Analysis.stall_total_us);
      ("stall_attributed_us", p.Analysis.stall_attributed_us);
      ("late_fraction", Analysis.late_fraction p);
      ("wasted_fraction", Analysis.wasted_fraction p);
      ("attributed_fraction", Analysis.attributed_fraction p);
    ]

let test_empty_trace_guards () =
  let p = Analysis.of_events [] in
  check_int "no events, no fetches" 0 p.Analysis.fetch_total;
  check_int "no events, no stalls" 0 p.Analysis.stall_count;
  close "no events, zero stall mass" 0.0 p.Analysis.stall_total_us;
  close "late fraction of nothing is 0" 0.0 (Analysis.late_fraction p);
  close "wasted fraction of nothing is 0" 0.0 (Analysis.wasted_fraction p);
  close "attribution of no stalls is vacuously complete" 1.0 (Analysis.attributed_fraction p);
  no_nan p;
  check "render total on empty input" true (String.length (Analysis.render p) > 0);
  (match Analysis.of_json (Analysis.to_json p) with
  | Ok p' -> Alcotest.(check string) "empty profile round-trips" (Analysis.to_json p) (Analysis.to_json p')
  | Error msg -> Alcotest.failf "empty profile does not round-trip: %s" msg);
  check "empty histogram percentile is 0" true
    (let m = Metrics.create () in
     Metrics.percentile (Metrics.histogram m "h") 95.0 = 0.0)

(* A warm, hit-everything run: phases exist but nothing stalled and nothing
   was fetched. *)
let test_warm_run_all_zero () =
  let clock = ref 0.0 in
  let tr = Trace.create ~now:(fun () -> !clock) ~capacity:64 () in
  Trace.span tr ~name:"analysis" ~cat:"phase" ~ts:0.0 ~dur:10.0 ();
  Trace.span tr ~name:"redo" ~cat:"phase" ~ts:10.0 ~dur:20.0 ();
  Trace.span tr ~name:"undo" ~cat:"phase" ~ts:30.0 ~dur:5.0 ();
  let p = Analysis.of_trace tr in
  close "warm total is the phase time" 35.0 p.Analysis.total_us;
  check_int "warm run fetched nothing" 0 p.Analysis.fetch_total;
  close "warm run stalled for nothing" 0.0 p.Analysis.stall_total_us;
  no_nan p;
  List.iter
    (fun ph -> close ("warm " ^ ph.Analysis.ph_name ^ " is pure compute") ph.Analysis.ph_dur_us
        ph.Analysis.ph_compute_us)
    p.Analysis.phases

(* ---------- synthetic classification ---------- *)

let test_synthetic_classification () =
  let clock = ref 0.0 in
  let tr = Trace.create ~now:(fun () -> !clock) ~capacity:64 () in
  let data = Trace.track_data_disk in
  (* One batch of three pages on the data disk, busy 0–100. *)
  List.iter
    (fun pid ->
      Trace.instant tr ~name:"prefetch_page" ~cat:"cache" ~args:[ ("pid", pid); ("lane", 0) ] ())
    [ 1; 2; 3 ];
  Trace.span tr ~name:"io_batch" ~cat:"io" ~track:data ~ts:0.0 ~dur:100.0
    ~args:[ ("first_pid", 1); ("count", 3) ]
    ();
  (* Page 1 claimed after completion: a hit (zero-duration fetch). *)
  Trace.span tr ~name:"page_fetch" ~cat:"cache" ~ts:110.0 ~dur:0.0
    ~args:[ ("pid", 1); ("prefetched", 1); ("index", 0) ]
    ();
  (* Page 2 claimed at 60, waits until the batch lands at 100: late. *)
  Trace.span tr ~name:"stall" ~cat:"cache" ~ts:60.0 ~dur:40.0 ~args:[ ("pid", 2) ] ();
  Trace.span tr ~name:"page_fetch" ~cat:"cache" ~ts:60.0 ~dur:40.0
    ~args:[ ("pid", 2); ("prefetched", 1); ("index", 1) ]
    ();
  (* Page 3 never claimed: wasted.  A demand read stalls 120–150. *)
  Trace.span tr ~name:"io_read" ~cat:"io" ~track:data ~ts:120.0 ~dur:30.0 ~args:[ ("pid", 9) ] ();
  Trace.span tr ~name:"stall" ~cat:"cache" ~ts:120.0 ~dur:30.0 ~args:[ ("pid", 9) ] ();
  Trace.span tr ~name:"page_fetch" ~cat:"cache" ~ts:120.0 ~dur:30.0
    ~args:[ ("pid", 9); ("prefetched", 0); ("index", 0) ]
    ();
  let p = Analysis.of_trace tr in
  check_int "issued" 3 p.Analysis.pf_issued;
  check_int "hit" 1 p.Analysis.pf_hit;
  check_int "late" 1 p.Analysis.pf_late;
  check_int "wasted" 1 p.Analysis.pf_wasted;
  check_int "fetches" 3 p.Analysis.fetch_total;
  check_int "index fetches" 1 p.Analysis.fetch_index;
  check_int "demand fetches" 1 p.Analysis.fetch_demand;
  close "stall mass" 70.0 p.Analysis.stall_total_us;
  close "fully attributed" 70.0 p.Analysis.stall_attributed_us;
  let find kind =
    List.find_opt (fun s -> s.Analysis.src_kind = kind) p.Analysis.sources
  in
  (match find "io_batch" with
  | Some s ->
      close "late wait charged to the batch" 40.0 s.Analysis.src_stall_us;
      Alcotest.(check string) "batch on the data disk" "data-disk" s.Analysis.src_device
  | None -> Alcotest.fail "no io_batch attribution bucket");
  (match find "io_read" with
  | Some s -> close "demand wait charged to the read" 30.0 s.Analysis.src_stall_us
  | None -> Alcotest.fail "no io_read attribution bucket")

(* ---------- tuner ---------- ----------------------------------------- *)

let profile_with_stall us wasted =
  let clock = ref 0.0 in
  let tr = Trace.create ~now:(fun () -> !clock) ~capacity:64 () in
  for pid = 1 to wasted do
    Trace.instant tr ~name:"prefetch_page" ~cat:"cache" ~args:[ ("pid", pid); ("lane", 0) ] ()
  done;
  if us > 0.0 then begin
    Trace.span tr ~name:"io_read" ~cat:"io" ~track:Trace.track_data_disk ~ts:0.0 ~dur:us
      ~args:[ ("pid", 1) ] ();
    Trace.span tr ~name:"stall" ~cat:"cache" ~ts:0.0 ~dur:us ~args:[ ("pid", 1) ] ()
  end;
  Analysis.of_trace tr

let test_tuner_scoring () =
  let cand window = { Tuner.window; chunk = 16; lookahead = 512; source = "pf-list" } in
  let out window us wasted =
    { Tuner.cand = cand window; profile = profile_with_stall us wasted; redo_ms = us /. 1000.0 }
  in
  check "best of nothing" true (Tuner.best [] = None);
  (* Lower stall wins. *)
  (match Tuner.best [ out 8 500.0 0; out 16 100.0 0; out 32 300.0 0 ] with
  | Some o -> check_int "lowest stall-attributed score wins" 16 o.Tuner.cand.Tuner.window
  | None -> Alcotest.fail "no winner");
  (* Wasted prefetch is penalised even at equal stall time. *)
  (match Tuner.best [ out 8 100.0 4; out 16 100.0 0 ] with
  | Some o -> check_int "waste penalty breaks the stall tie" 16 o.Tuner.cand.Tuner.window
  | None -> Alcotest.fail "no winner");
  (* Exact score ties resolve by candidate order, deterministically. *)
  (match Tuner.best [ out 32 100.0 0; out 8 100.0 0; out 16 100.0 0 ] with
  | Some o -> check_int "tie-break picks the smallest setting" 8 o.Tuner.cand.Tuner.window
  | None -> Alcotest.fail "no winner");
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  let table = Tuner.table ~default:(cand 32) [ out 8 500.0 0; out 32 300.0 0 ] in
  check "table marks the default row" true (contains table "default");
  check "table marks the winner" true (contains table "<-- best")

let suite =
  [
    Alcotest.test_case "stall attribution matches counters" `Quick
      test_stall_attribution_matches_counters;
    Alcotest.test_case "prefetch classes reconcile" `Quick test_prefetch_classes_reconcile;
    Alcotest.test_case "phase budget consistent" `Quick test_phase_budget_consistent;
    Alcotest.test_case "same-seed profiles byte-identical" `Quick test_profiles_byte_identical;
    Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "regression gate" `Quick test_regression_gate;
    Alcotest.test_case "empty-input guards" `Quick test_empty_trace_guards;
    Alcotest.test_case "warm run reports zeros" `Quick test_warm_run_all_zero;
    Alcotest.test_case "synthetic classification" `Quick test_synthetic_classification;
    Alcotest.test_case "tuner scoring" `Quick test_tuner_scoring;
  ]
