(* The Δ/BW monitor: emission cadence and record contents (§3.3, §4.1). *)

module Monitor = Deut_core.Monitor
module Config = Deut_core.Config
module Lr = Deut_wal.Log_record
module Lsn = Deut_wal.Lsn

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

type env = {
  monitor : Monitor.t;
  records : Lr.t list ref;
  stable : Lsn.t ref;
}

let make ?(config = Config.default) () =
  let records = ref [] in
  let stable = ref 0 in
  let lsn = ref 0 in
  let log_append r =
    records := r :: !records;
    incr lsn;
    !lsn
  in
  let monitor = Monitor.create ~config ~log_append ~stable_lsn:(fun () -> !stable) () in
  { monitor; records; stable }

let deltas e =
  List.filter_map (function Lr.Delta d -> Some d | _ -> None) (List.rev !(e.records))

let bws e = List.filter_map (function Lr.Bw b -> Some b | _ -> None) (List.rev !(e.records))

let config ?(dpt_mode = Config.Standard) ?(period = 10) ?(capacity = 100) () =
  { Config.default with Config.delta_period = period; delta_capacity = capacity; dpt_mode }

let test_periodic_emission () =
  let e = make ~config:(config ()) () in
  for i = 1 to 9 do
    Monitor.on_dirty e.monitor ~pid:i ~lsn:i;
    Monitor.tick_update e.monitor
  done;
  check_int "no emission before the period" 0 (List.length (deltas e));
  Monitor.on_dirty e.monitor ~pid:10 ~lsn:10;
  Monitor.tick_update e.monitor;
  (match deltas e with
  | [ d ] ->
      Alcotest.(check (array int)) "dirty set order" (Array.init 10 (fun i -> i + 1)) d.Lr.dirty;
      check "no flushes: nil FW-LSN" true (Lsn.is_nil d.Lr.fw_lsn);
      check_int "first_dirty = |dirty| without flush" 10 d.Lr.first_dirty;
      check "written empty" true (d.Lr.written = [||])
  | l -> Alcotest.failf "expected one Δ record, got %d" (List.length l));
  check_int "no BW without flushes" 0 (List.length (bws e));
  check_int "counter" 1 (Monitor.deltas_written e.monitor)

let test_fw_lsn_and_first_dirty () =
  let e = make ~config:(config ()) () in
  Monitor.on_dirty e.monitor ~pid:1 ~lsn:5;
  Monitor.on_dirty e.monitor ~pid:2 ~lsn:6;
  e.stable := 77;
  Monitor.on_flush e.monitor ~pid:1;
  (* First flush captured the stable end and the DirtySet watermark. *)
  Monitor.on_dirty e.monitor ~pid:3 ~lsn:80;
  e.stable := 90;
  Monitor.on_flush e.monitor ~pid:2;
  Monitor.emit_pending e.monitor;
  (match deltas e with
  | [ d ] ->
      check_int "fw_lsn is stable end at FIRST flush" 77 d.Lr.fw_lsn;
      check_int "first_dirty splits before/after first flush" 2 d.Lr.first_dirty;
      Alcotest.(check (array int)) "dirty order" [| 1; 2; 3 |] d.Lr.dirty;
      Alcotest.(check (array int)) "written order" [| 1; 2 |] d.Lr.written
  | l -> Alcotest.failf "expected one Δ record, got %d" (List.length l));
  match bws e with
  | [ b ] ->
      check_int "bw fw_lsn" 77 b.Lr.fw_lsn;
      Alcotest.(check (array int)) "bw written" [| 1; 2 |] b.Lr.written
  | l -> Alcotest.failf "expected one BW record, got %d" (List.length l)

let test_delta_before_bw () =
  (* §5.2: Δ-log records are written exactly before BW-log records. *)
  let e = make ~config:(config ()) () in
  Monitor.on_dirty e.monitor ~pid:1 ~lsn:1;
  Monitor.on_flush e.monitor ~pid:1;
  Monitor.emit_pending e.monitor;
  match List.rev !(e.records) with
  | [ Lr.Delta _; Lr.Bw _ ] -> ()
  | _ -> Alcotest.fail "expected Δ record immediately before BW record"

let test_capacity_trigger_delta_only () =
  let e = make ~config:(config ~capacity:5 ()) () in
  for i = 1 to 5 do
    Monitor.on_dirty e.monitor ~pid:i ~lsn:i
  done;
  (* DirtySet hit capacity: Δ emitted without any tick, BW not. *)
  check_int "capacity-triggered Δ" 1 (List.length (deltas e));
  check_int "no BW for a dirty-only record" 0 (List.length (bws e));
  check_int "counters agree" 1 (Monitor.deltas_written e.monitor)

let test_interval_reset () =
  let e = make ~config:(config ()) () in
  Monitor.on_dirty e.monitor ~pid:1 ~lsn:1;
  e.stable := 10;
  Monitor.on_flush e.monitor ~pid:1;
  Monitor.emit_pending e.monitor;
  (* Second interval starts from scratch. *)
  Monitor.on_dirty e.monitor ~pid:2 ~lsn:20;
  Monitor.emit_pending e.monitor;
  match deltas e with
  | [ _; d2 ] ->
      Alcotest.(check (array int)) "fresh dirty set" [| 2 |] d2.Lr.dirty;
      check "fresh fw_lsn" true (Lsn.is_nil d2.Lr.fw_lsn);
      check "fresh written" true (d2.Lr.written = [||])
  | l -> Alcotest.failf "expected two Δ records, got %d" (List.length l)

let test_empty_emission_skipped () =
  let e = make ~config:(config ()) () in
  Monitor.emit_pending e.monitor;
  for _ = 1 to 25 do
    Monitor.tick_update e.monitor
  done;
  check_int "nothing to say, nothing written" 0 (List.length !(e.records))

let test_perfect_mode_dirty_lsns () =
  let e = make ~config:(config ~dpt_mode:Config.Perfect ()) () in
  Monitor.on_dirty e.monitor ~pid:7 ~lsn:100;
  Monitor.on_dirty e.monitor ~pid:8 ~lsn:200;
  Monitor.emit_pending e.monitor;
  match deltas e with
  | [ d ] ->
      Alcotest.(check (array int)) "exact dirtying LSNs" [| 100; 200 |] d.Lr.dirty_lsns;
      Alcotest.(check (array int)) "pids" [| 7; 8 |] d.Lr.dirty
  | l -> Alcotest.failf "expected one Δ record, got %d" (List.length l)

let test_reduced_mode_drops_fw () =
  let e = make ~config:(config ~dpt_mode:Config.Reduced ()) () in
  Monitor.on_dirty e.monitor ~pid:1 ~lsn:1;
  e.stable := 50;
  Monitor.on_flush e.monitor ~pid:1;
  Monitor.on_dirty e.monitor ~pid:2 ~lsn:60;
  Monitor.emit_pending e.monitor;
  match deltas e with
  | [ d ] ->
      check "reduced: no fw_lsn" true (Lsn.is_nil d.Lr.fw_lsn);
      check_int "reduced: first_dirty = |dirty|" 2 d.Lr.first_dirty;
      check "written still present" true (d.Lr.written = [| 1 |]);
      check "no dirty_lsns" true (d.Lr.dirty_lsns = [||])
  | l -> Alcotest.failf "expected one Δ record, got %d" (List.length l)

let test_written_capacity_triggers_both () =
  (* A full WrittenSet forces both records out, Δ first. *)
  let e = make ~config:(config ~capacity:3 ()) () in
  Monitor.on_dirty e.monitor ~pid:9 ~lsn:1;
  e.stable := 5;
  Monitor.on_flush e.monitor ~pid:1;
  Monitor.on_flush e.monitor ~pid:2;
  Monitor.on_flush e.monitor ~pid:3;
  (match List.rev !(e.records) with
  | [ Lr.Delta d; Lr.Bw b ] ->
      Alcotest.(check (array int)) "delta written" [| 1; 2; 3 |] d.Lr.written;
      Alcotest.(check (array int)) "delta dirty came along" [| 9 |] d.Lr.dirty;
      Alcotest.(check (array int)) "bw written" [| 1; 2; 3 |] b.Lr.written
  | l -> Alcotest.failf "expected Δ then BW, got %d records" (List.length l));
  check_int "counters" 1 (Monitor.deltas_written e.monitor);
  check_int "counters bw" 1 (Monitor.bws_written e.monitor);
  check "byte accounting" true (Monitor.delta_bytes e.monitor > Monitor.bw_bytes e.monitor)

let test_runtime_dpt_aries_mode () =
  let aries = { (config ()) with Config.checkpoint_mode = Config.Aries_fuzzy } in
  let e = make ~config:aries () in
  Monitor.on_dirty e.monitor ~pid:3 ~lsn:30;
  Monitor.on_dirty e.monitor ~pid:1 ~lsn:10;
  (* Flush removes from the runtime map. *)
  Monitor.on_flush e.monitor ~pid:3;
  Alcotest.(check (array (triple int int int)))
    "runtime DPT tracks unflushed dirty pages" [| (1, 10, 10) |]
    (Monitor.runtime_dpt e.monitor);
  (* In penultimate mode, the map is not maintained. *)
  let e2 = make ~config:(config ()) () in
  Monitor.on_dirty e2.monitor ~pid:1 ~lsn:10;
  check_int "penultimate: no runtime DPT" 0 (Array.length (Monitor.runtime_dpt e2.monitor))

let suite =
  [
    Alcotest.test_case "periodic emission" `Quick test_periodic_emission;
    Alcotest.test_case "FW-LSN and FirstDirty" `Quick test_fw_lsn_and_first_dirty;
    Alcotest.test_case "Δ before BW" `Quick test_delta_before_bw;
    Alcotest.test_case "capacity triggers Δ only" `Quick test_capacity_trigger_delta_only;
    Alcotest.test_case "interval reset" `Quick test_interval_reset;
    Alcotest.test_case "empty emission skipped" `Quick test_empty_emission_skipped;
    Alcotest.test_case "perfect mode" `Quick test_perfect_mode_dirty_lsns;
    Alcotest.test_case "reduced mode" `Quick test_reduced_mode_drops_fw;
    Alcotest.test_case "written capacity triggers both" `Quick test_written_capacity_triggers_both;
    Alcotest.test_case "runtime DPT (ARIES mode)" `Quick test_runtime_dpt_aries_mode;
  ]
