(* End-to-end crash recovery: all methods, all modes, against the
   committed-state oracle; DPT safety; idempotence; undo; pid-blindness of
   logical recovery. *)

module Db = Deut_core.Db
module Config = Deut_core.Config
module Engine = Deut_core.Engine
module Dc = Deut_core.Dc
module Dpt = Deut_core.Dpt
module Recovery = Deut_core.Recovery
module Recovery_stats = Deut_core.Recovery_stats
module Crash_image = Deut_core.Crash_image
module Lr = Deut_wal.Log_record
module Lsn = Deut_wal.Lsn
module Log = Deut_wal.Log_manager
module Page = Deut_storage.Page
module Page_store = Deut_storage.Page_store
module Workload = Deut_workload.Workload
module Driver = Deut_workload.Driver
module Oracle = Deut_workload.Oracle
module Experiment = Deut_workload.Experiment

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let small_config ?(dpt_mode = Config.Standard) ?(checkpoint_mode = Config.Penultimate) () =
  {
    Config.default with
    Config.page_size = 1024;
    pool_pages = 48;
    delta_period = 40;
    delta_capacity = 64;
    (* pinned against the CI DEUT_SHARDS matrix: these cases exercise
       methods and image shapes that only exist single-shard *)
    shards = 1;
    dpt_mode;
    checkpoint_mode;
  }

let small_spec ?(rows = 1200) ?(op_mix = Workload.Update_only) ?(key_dist = Workload.Uniform) ()
    =
  { Workload.default with Workload.rows; value_size = 16; op_mix; key_dist; seed = 5 }

(* A standard small crash scenario: load, churn, checkpoints, loser, crash. *)
let make_crash ?dpt_mode ?checkpoint_mode ?op_mix ?key_dist ?(loser = true) () =
  let driver = Driver.create ~config:(small_config ?dpt_mode ?checkpoint_mode ()) (small_spec ?op_mix ?key_dist ()) in
  Driver.run_crash_protocol driver ~checkpoints:3 ~interval:300 ~tail:15;
  if loser then Driver.start_loser driver ~ops:8;
  (driver, Driver.crash driver)

let recover_verified driver image method_ =
  let recovered, stats = Db.recover image method_ in
  (match Driver.verify_recovered driver recovered with
  | Ok () -> ()
  | Error msg ->
      Alcotest.failf "%s: recovered state wrong: %s" (Recovery.method_to_string method_) msg);
  (recovered, stats)

let test_all_methods_restore_committed_state () =
  let driver, image = make_crash () in
  List.iter
    (fun m ->
      let _db, stats = recover_verified driver image m in
      check "some records were scanned" true (stats.Recovery_stats.records_scanned > 0);
      check "undo found the loser" true (stats.Recovery_stats.losers >= 1);
      check "CLRs written" true (stats.Recovery_stats.clrs_written >= 1))
    Recovery.all_methods

let test_methods_apply_identical_work () =
  (* All methods must agree on how many operations actually needed
     re-execution: redo work is a property of the crash, not the method. *)
  let driver, image = make_crash () in
  let applied =
    List.map
      (fun m -> (recover_verified driver image m |> snd).Recovery_stats.redo_applied)
      Recovery.all_methods
  in
  match applied with
  | first :: rest -> List.iter (fun a -> check_int "same redo_applied" first a) rest
  | [] -> ()

let test_dpt_methods_fetch_fewer_pages () =
  let driver, image = make_crash () in
  let fetches m =
    let _, stats = recover_verified driver image m in
    stats.Recovery_stats.data_page_fetches
  in
  let log0 = fetches Recovery.Log0 in
  let log1 = fetches Recovery.Log1 in
  let sql1 = fetches Recovery.Sql1 in
  check "DPT reduces logical fetches" true (log1 <= log0);
  check "physiological fetches comparable" true (abs (log1 - sql1) <= (log1 / 2) + 16)

let test_sql_does_no_index_io () =
  let driver, image = make_crash () in
  let _, s1 = recover_verified driver image Recovery.Sql1 in
  check_int "SQL1 never touches the index" 0 s1.Recovery_stats.index_page_fetches;
  let _, s2 = recover_verified driver image Recovery.Log1 in
  check "logical redo reads index pages" true (s2.Recovery_stats.index_page_fetches > 0)

let test_recovery_idempotent () =
  let driver, image = make_crash () in
  List.iter
    (fun m ->
      let db1, _ = recover_verified driver image m in
      (* Crash again immediately: the recovered engine wrote CLRs and an
         abort but no new user work; a second recovery (with any method)
         must land in the same state. *)
      let image2 = Db.crash db1 in
      List.iter
        (fun m2 -> ignore (recover_verified driver image2 m2))
        [ Recovery.Log0; Recovery.Sql1 ])
    [ Recovery.Log1; Recovery.Sql2 ]

let test_crash_without_checkpoint () =
  let config = small_config () in
  let db = Db.create ~config () in
  Db.create_table db ~table:1;
  let txn = Db.begin_txn db in
  for k = 0 to 199 do
    match Db.insert db txn ~table:1 ~key:k ~value:(string_of_int k) with
    | Ok () -> ()
    | Error e -> Alcotest.fail (Db.error_to_string e)
  done;
  Db.commit db txn;
  let image = Db.crash db in
  check "no checkpoint ever taken" true (Lsn.is_nil (Crash_image.master image));
  List.iter
    (fun m ->
      let recovered, _ = Db.recover image m in
      check_int "all rows recovered from log start" 200 (Db.entry_count recovered ~table:1);
      (match Db.check_integrity recovered with
      | Ok () -> ()
      | Error e -> Alcotest.fail e))
    Recovery.all_methods

let test_empty_db_crash () =
  let db = Db.create ~config:(small_config ()) () in
  Db.create_table db ~table:1;
  Db.checkpoint db;
  let image = Db.crash db in
  List.iter
    (fun m ->
      let recovered, stats = Db.recover image m in
      check_int "empty stays empty" 0 (Db.entry_count recovered ~table:1);
      check_int "nothing applied" 0 stats.Recovery_stats.redo_applied)
    Recovery.all_methods

let test_mixed_workload_recovery () =
  let op_mix = Workload.Mixed { update = 0.5; insert = 0.2; delete = 0.2; read = 0.1 } in
  let driver, image = make_crash ~op_mix () in
  List.iter (fun m -> ignore (recover_verified driver image m)) Recovery.all_methods

let test_zipf_workload_recovery () =
  let driver, image = make_crash ~key_dist:(Workload.Zipf 0.99) () in
  List.iter (fun m -> ignore (recover_verified driver image m)) Recovery.all_methods

let test_multi_table_recovery () =
  let spec =
    { (small_spec ~rows:400 ()) with Workload.tables = 3 }
  in
  let driver = Driver.create ~config:(small_config ()) spec in
  Driver.run_crash_protocol driver ~checkpoints:2 ~interval:200 ~tail:10;
  Driver.start_loser driver ~ops:5;
  let image = Driver.crash driver in
  List.iter (fun m -> ignore (recover_verified driver image m)) Recovery.all_methods

let test_dpt_mode_variants () =
  List.iter
    (fun dpt_mode ->
      let driver, image = make_crash ~dpt_mode () in
      List.iter (fun m -> ignore (recover_verified driver image m)) Recovery.all_methods)
    [ Config.Perfect; Config.Reduced ]

let test_aries_checkpoint_mode () =
  let driver, image = make_crash ~checkpoint_mode:Config.Aries_fuzzy ~loser:true () in
  let _, stats = recover_verified driver image Recovery.Aries_ckpt in
  check "aries analysis built a DPT" true (stats.Recovery_stats.dpt_size > 0)

let test_perfect_dpt_not_larger () =
  (* D.1: the perfect DPT is at most as large as the standard one, and at
     least as large as the truly-dirty page count. *)
  let driver_std, image_std = make_crash ~dpt_mode:Config.Standard () in
  let driver_pft, image_pft = make_crash ~dpt_mode:Config.Perfect () in
  let _, s_std = recover_verified driver_std image_std Recovery.Log1 in
  let _, s_pft = recover_verified driver_pft image_pft Recovery.Log1 in
  check "perfect DPT not larger than standard" true
    (s_pft.Recovery_stats.dpt_size <= s_std.Recovery_stats.dpt_size + 4);
  let _, s_red =
    let driver, image = make_crash ~dpt_mode:Config.Reduced () in
    recover_verified driver image Recovery.Log1
  in
  check "reduced DPT not smaller than standard" true
    (s_red.Recovery_stats.dpt_size + 4 >= s_std.Recovery_stats.dpt_size)

(* DPT safety: every page whose stable image misses logged updates must be
   in the DPT, with an rLSN at or below its first needed record.
   [covered_upto] bounds the obligation: the Δ-built DPT only covers
   operations below the last Δ record's TC-LSN — beyond it, Algorithm 5
   falls back to basic redo (the "tail of the log", §4.3) — while SQL's
   BW-built DPT must cover everything. *)
let dpt_safety ?(covered_upto = max_int) image dpt =
  let log = Log.crash image.Crash_image.log in
  let store = image.Crash_image.store in
  let needed = Hashtbl.create 64 in
  (* first record per pid (by pid_hint — ground truth) whose LSN is above
     the stable image's pLSN *)
  Log.iter log ~from:(Crash_image.master image) (fun lsn record ->
      match Lr.redo_view record with
      | Some v ->
          let stable_plsn =
            if Page_store.exists store v.Lr.rv_pid then
              Page.plsn (Page_store.read store v.Lr.rv_pid)
            else -1
          in
          if lsn > stable_plsn && lsn < covered_upto && not (Hashtbl.mem needed v.Lr.rv_pid)
          then Hashtbl.replace needed v.Lr.rv_pid lsn
      | None -> ());
  Hashtbl.iter
    (fun pid first_needed ->
      match Dpt.find dpt pid with
      | None -> Alcotest.failf "DPT safety: dirty page %d missing from DPT" pid
      | Some (rlsn, _) ->
          if rlsn > first_needed then
            Alcotest.failf "DPT safety: page %d rLSN %d above first needed record %d" pid rlsn
              first_needed)
    needed

let test_dpt_safety_all_algorithms () =
  (* Several seeds; check both the SQL DPT (Algorithm 3) and the Δ-built
     DPT (Algorithm 4) against ground truth. *)
  List.iter
    (fun seed ->
      let spec = { (small_spec ()) with Workload.seed } in
      let driver = Driver.create ~config:(small_config ()) spec in
      Driver.run_crash_protocol driver ~checkpoints:2 ~interval:250 ~tail:13;
      let image = Driver.crash driver in
      (* SQL analysis *)
      let stats = Recovery_stats.create () in
      let log = Log.crash image.Crash_image.log in
      let sql_dpt = Recovery.sql_analysis log ~from:(Crash_image.master image) ~stats in
      dpt_safety image sql_dpt;
      (* Logical DC analysis: run a Log1 recovery and inspect its DPT.
         Recovery mutates its own copies, so inspect before undo by running
         dc_recovery on a fresh instance. *)
      let engine = Crash_image.instantiate image in
      let stats2 = Recovery_stats.create () in
      let bckpt = Crash_image.master image in
      Dc.dc_recovery engine.Engine.dc ~log:engine.Engine.log ~from:bckpt ~bckpt ~build_dpt:true
        ~stats:stats2;
      dpt_safety image
        ~covered_upto:(Dc.last_delta_tclsn engine.Engine.dc)
        (Dc.dpt engine.Engine.dc))
    [ 3; 17; 99 ]

let test_logical_recovery_ignores_pids () =
  (* Scramble every pid_hint in the log; logical recovery must not notice.
     This enforces the paper's core claim: the TC log is usable without any
     physical page information (§1.2).  Built without the driver so the log
     is never archived and can be re-encoded from offset 0. *)
  let config = small_config () in
  let db = Db.create ~config () in
  Db.create_table db ~table:1;
  let expected = Hashtbl.create 256 in
  let rng = Deut_sim.Rng.create ~seed:21 in
  for k = 0 to 399 do
    let v = Printf.sprintf "init-%d" k in
    Db.put db ~table:1 ~key:k ~value:v;
    Hashtbl.replace expected k v
  done;
  Db.checkpoint db;
  for _ = 0 to 59 do
    let txn = Db.begin_txn db in
    for _ = 0 to 9 do
      let k = Deut_sim.Rng.int rng 400 in
      let v = Printf.sprintf "upd-%d-%d" k (Deut_sim.Rng.int rng 10000) in
      (match Db.update db txn ~table:1 ~key:k ~value:v with
      | Ok () -> ()
      | Error e -> Alcotest.fail (Db.error_to_string e));
      Hashtbl.replace expected k v
    done;
    Db.commit db txn
  done;
  let image = Db.crash db in
  let scrambled = Log.create ~page_size:(Log.page_size image.Crash_image.log) in
  Log.iter image.Crash_image.log ~from:Lsn.nil (fun _ record ->
      let record' =
        match record with
        | Lr.Update_rec u -> Lr.Update_rec { u with Lr.pid_hint = 0xDEAD }
        | Lr.Clr c -> Lr.Clr { c with Lr.pid_hint = 0xDEAD }
        | other -> other
      in
      ignore (Log.append scrambled record'));
  Log.force scrambled;
  check_int "scrambling preserved offsets" (Log.end_lsn image.Crash_image.log)
    (Log.end_lsn scrambled);
  let image' = { image with Crash_image.log = scrambled } in
  List.iter
    (fun m ->
      let recovered, _ = Db.recover image' m in
      Hashtbl.iter
        (fun k v ->
          if Db.read recovered ~table:1 ~key:k <> Some v then
            Alcotest.failf "%s: key %d wrong under scrambled pids"
              (Recovery.method_to_string m) k)
        expected)
    [ Recovery.Log0; Recovery.Log1; Recovery.Log2 ]

let test_recovered_db_usable () =
  (* Post-recovery, the engine must support normal operation, further
     checkpoints, and another clean crash/recovery cycle. *)
  let driver, image = make_crash () in
  let db, _ = recover_verified driver image Recovery.Log2 in
  let txn = Db.begin_txn db in
  (match Db.insert db txn ~table:1 ~key:999_999 ~value:"post-recovery" with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Db.error_to_string e));
  Db.commit db txn;
  Db.checkpoint db;
  let image2 = Db.crash db in
  let db2, _ = Db.recover image2 Recovery.Sql1 in
  check "post-recovery write survives the next crash" true
    (Db.read db2 ~table:1 ~key:999_999 = Some "post-recovery");
  match Db.check_integrity db2 with Ok () -> () | Error e -> Alcotest.fail e

let test_committed_tail_redone () =
  (* Updates committed after the last Δ/BW record (the log tail) must be
     recovered by every method, including the tail fallback of logical
     redo. *)
  let config = small_config () in
  let db = Db.create ~config () in
  Db.create_table db ~table:1;
  for k = 0 to 99 do
    Db.put db ~table:1 ~key:k ~value:"init"
  done;
  Db.checkpoint db;
  (* A handful of updates, fewer than delta_period, then crash: they sit in
     the tail. *)
  let txn = Db.begin_txn db in
  for k = 0 to 9 do
    match Db.update db txn ~table:1 ~key:k ~value:"tail-update" with
    | Ok () -> ()
    | Error e -> Alcotest.fail (Db.error_to_string e)
  done;
  Db.commit db txn;
  let image = Db.crash db in
  List.iter
    (fun m ->
      let recovered, stats = Db.recover image m in
      for k = 0 to 9 do
        if Db.read recovered ~table:1 ~key:k <> Some "tail-update" then
          Alcotest.failf "%s lost tail update %d" (Recovery.method_to_string m) k
      done;
      if Recovery.is_logical m && m <> Recovery.Log0 then
        check "tail records took the fallback path" true
          (stats.Recovery_stats.tail_records > 0))
    Recovery.all_methods

let test_dpt_order_prefetch_variant () =
  (* Appendix A.2's alternative: Log2 prefetching the DPT in rLSN order
     instead of the PF-list.  Same correctness, still prefetches. *)
  let driver = Driver.create ~config:(small_config ()) (small_spec ()) in
  Driver.run_crash_protocol driver ~checkpoints:2 ~interval:300 ~tail:15;
  let image = Driver.crash driver in
  let variant_config =
    { (Crash_image.config image) with Config.prefetch_source = Config.Dpt_order }
  in
  let recovered, stats = Db.recover ~config:variant_config image Recovery.Log2 in
  (match Driver.verify_recovered driver recovered with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "dpt-order prefetch: %s" msg);
  check "dpt-order variant still prefetches" true (stats.Recovery_stats.prefetch_issued > 0);
  (* And compare with the default PF-list run from the same image. *)
  let recovered2, stats2 = Db.recover image Recovery.Log2 in
  (match Driver.verify_recovered driver recovered2 with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg);
  check_int "same redo work either way" stats2.Recovery_stats.redo_applied
    stats.Recovery_stats.redo_applied

let test_crash_during_undo () =
  (* The ARIES CLR discipline: crash in the middle of the undo pass, then
     recover again — compensation must resume at the last CLR's undo-next,
     and no update may ever be compensated twice.  The loser has 8 updates. *)
  let driver, image = make_crash () in
  let engine, s1 = Recovery.recover ~undo_fault_after_clrs:3 image Recovery.Log1 in
  check_int "fault stopped undo after 3 CLRs" 3 s1.Recovery_stats.clrs_written;
  let mid = Db.crash (Db.of_engine engine) in
  List.iter
    (fun m ->
      let recovered, s2 = Db.recover mid m in
      (match Driver.verify_recovered driver recovered with
      | Ok () -> ()
      | Error msg ->
          Alcotest.failf "%s after crash-in-undo: %s" (Recovery.method_to_string m) msg);
      check_int "loser still detected" 1 s2.Recovery_stats.losers;
      check_int "exactly the remaining 5 compensations" 5 s2.Recovery_stats.clrs_written)
    [ Recovery.Log1; Recovery.Sql1; Recovery.Log2 ];
  (* Crash mid-undo twice in a row. *)
  let engine2, s2 = Recovery.recover ~undo_fault_after_clrs:2 mid Recovery.Sql2 in
  check_int "second fault after 2 more CLRs" 2 s2.Recovery_stats.clrs_written;
  let mid2 = Db.crash (Db.of_engine engine2) in
  let recovered, s3 = Db.recover mid2 Recovery.Log2 in
  (match Driver.verify_recovered driver recovered with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg);
  check_int "final 3 compensations" 3 s3.Recovery_stats.clrs_written

let test_recovery_detects_corruption () =
  (* Corruption in the stable store or the log must fail recovery loudly,
     never produce a silently wrong database. *)
  let driver, image = make_crash ~loser:false () in
  ignore driver;
  (* A corrupted log record in the redo range. *)
  let bad_log = Log.crash image.Crash_image.log in
  let victim = ref Lsn.nil in
  Log.iter bad_log ~from:(Crash_image.master image) (fun lsn record ->
      if Lsn.is_nil !victim && Lr.is_update record then victim := lsn);
  Log.corrupt_for_test bad_log !victim;
  (try
     ignore (Db.recover { image with Crash_image.log = bad_log } Recovery.Sql1);
     Alcotest.fail "recovery over a corrupt log must raise"
   with Log.Corrupt_record _ -> ());
  (* A corrupted stable page read during redo. *)
  let bad_store = Page_store.clone image.Crash_image.store in
  (* Pick a data page that redo will fetch: any DPT member. *)
  let stats = Recovery_stats.create () in
  let dpt =
    Recovery.sql_analysis (Log.crash image.Crash_image.log)
      ~from:(Crash_image.master image) ~stats
  in
  match Dpt.to_sorted_list dpt with
  | [] -> Alcotest.fail "expected a non-empty DPT"
  | (pid, _, _) :: _ ->
      Page_store.corrupt_for_test bad_store pid;
      (try
         ignore (Db.recover { image with Crash_image.store = bad_store } Recovery.Sql1);
         Alcotest.fail "recovery over a corrupt page must raise"
       with Page_store.Corrupt_page p -> check_int "corrupt pid surfaced" pid p)

(* The flagship property: for arbitrary workload shapes, cache sizes,
   monitor cadences, and crash points, every recovery method reproduces the
   committed state exactly. *)
let crash_scenario_gen =
  let open QCheck2.Gen in
  let* seed = 0 -- 10_000
  and* rows = 300 -- 2000
  and* pool = 24 -- 96
  and* period = 20 -- 80
  and* tail = 0 -- 30
  and* loser_ops = 0 -- 12
  and* mixed = bool
  and* zipf = bool in
  return (seed, rows, pool, period, tail, loser_ops, mixed, zipf)

let prop_recovery_equivalence =
  QCheck2.Test.make ~name:"all methods recover the committed state (random scenarios)"
    ~count:15 crash_scenario_gen
    (fun (seed, rows, pool, period, tail, loser_ops, mixed, zipf) ->
      let config =
        {
          (small_config ()) with
          Config.pool_pages = pool;
          delta_period = period;
          seed = seed + 1;
        }
      in
      let spec =
        {
          (small_spec ~rows ()) with
          Workload.seed;
          op_mix =
            (if mixed then Workload.Mixed { update = 0.5; insert = 0.25; delete = 0.15; read = 0.1 }
             else Workload.Update_only);
          key_dist = (if zipf then Workload.Zipf 0.9 else Workload.Uniform);
        }
      in
      let driver = Driver.create ~config spec in
      Driver.run_crash_protocol driver ~checkpoints:2 ~interval:250 ~tail;
      if loser_ops > 0 then Driver.start_loser driver ~ops:loser_ops;
      let image = Driver.crash driver in
      List.for_all
        (fun m ->
          let recovered, _ = Db.recover image m in
          match Driver.verify_recovered driver recovered with
          | Ok () -> true
          | Error msg ->
              Printf.eprintf "seed=%d %s: %s\n" seed (Recovery.method_to_string m) msg;
              false)
        Recovery.all_methods)

let test_stats_accounting_consistent () =
  let driver, image = make_crash () in
  List.iter
    (fun m ->
      let _, s = recover_verified driver image m in
      check "candidates = skips + applied" true
        (s.Recovery_stats.redo_candidates
        = s.Recovery_stats.skipped_dpt + s.Recovery_stats.skipped_rlsn
          + s.Recovery_stats.skipped_plsn + s.Recovery_stats.redo_applied);
      check "scanned >= candidates" true
        (s.Recovery_stats.records_scanned >= s.Recovery_stats.redo_candidates);
      check "log pages read" true (s.Recovery_stats.log_pages_read > 0);
      check "clock advanced" true (Recovery_stats.total_ms s > 0.0))
    Recovery.all_methods

(* Regression: [Recovery_stats.create] on a registry that already holds
   "recovery.*" instruments hands back the same handles — a previous run's
   totals used to leak into the next harness cell through them.  [create]
   must zero every dial and counter. *)
let test_stats_reset_between_runs () =
  let m = Deut_obs.Metrics.create () in
  let stats = Recovery_stats.create ~metrics:m () in
  Deut_obs.Metrics.fset stats.Recovery_stats.analysis_us 12.5;
  Deut_obs.Metrics.fset stats.Recovery_stats.ttft_us 3.25;
  Deut_obs.Metrics.incr stats.Recovery_stats.records_scanned;
  Deut_obs.Metrics.add stats.Recovery_stats.redo_applied 41;
  Deut_obs.Metrics.incr stats.Recovery_stats.pages_ondemand;
  Deut_obs.Metrics.incr stats.Recovery_stats.losers;
  let stats' = Recovery_stats.create ~metrics:m () in
  let s = Recovery_stats.snapshot stats' in
  check "same handles under a shared registry" true
    (stats.Recovery_stats.records_scanned == stats'.Recovery_stats.records_scanned);
  check "analysis dial zeroed" true (s.Recovery_stats.analysis_us = 0.0);
  check "ttft dial zeroed" true (s.Recovery_stats.ttft_us = 0.0);
  check_int "records_scanned zeroed" 0 s.Recovery_stats.records_scanned;
  check_int "redo_applied zeroed" 0 s.Recovery_stats.redo_applied;
  check_int "pages_ondemand zeroed" 0 s.Recovery_stats.pages_ondemand;
  check_int "losers zeroed" 0 s.Recovery_stats.losers

let suite =
  [
    Alcotest.test_case "all methods restore committed state" `Quick
      test_all_methods_restore_committed_state;
    Alcotest.test_case "methods apply identical work" `Quick test_methods_apply_identical_work;
    Alcotest.test_case "DPT methods fetch fewer pages" `Quick test_dpt_methods_fetch_fewer_pages;
    Alcotest.test_case "SQL does no index IO" `Quick test_sql_does_no_index_io;
    Alcotest.test_case "recovery idempotent" `Quick test_recovery_idempotent;
    Alcotest.test_case "crash without checkpoint" `Quick test_crash_without_checkpoint;
    Alcotest.test_case "empty db crash" `Quick test_empty_db_crash;
    Alcotest.test_case "mixed workload" `Quick test_mixed_workload_recovery;
    Alcotest.test_case "zipf workload" `Quick test_zipf_workload_recovery;
    Alcotest.test_case "multi-table" `Quick test_multi_table_recovery;
    Alcotest.test_case "perfect/reduced logging modes" `Quick test_dpt_mode_variants;
    Alcotest.test_case "ARIES checkpoint mode" `Quick test_aries_checkpoint_mode;
    Alcotest.test_case "DPT size ordering across modes" `Quick test_perfect_dpt_not_larger;
    Alcotest.test_case "DPT safety (algorithms 3 and 4)" `Quick test_dpt_safety_all_algorithms;
    Alcotest.test_case "logical recovery ignores pids" `Quick test_logical_recovery_ignores_pids;
    Alcotest.test_case "recovered db usable" `Quick test_recovered_db_usable;
    Alcotest.test_case "committed tail redone" `Quick test_committed_tail_redone;
    Alcotest.test_case "DPT-order prefetch variant (A.2)" `Quick test_dpt_order_prefetch_variant;
    Alcotest.test_case "crash during undo (CLR resumption)" `Quick test_crash_during_undo;
    Alcotest.test_case "stats accounting" `Quick test_stats_accounting_consistent;
    Alcotest.test_case "stats reset between runs" `Quick test_stats_reset_between_runs;
    Alcotest.test_case "corruption fails loudly" `Quick test_recovery_detects_corruption;
    QCheck_alcotest.to_alcotest prop_recovery_equivalence;
  ]
