(* Simulation substrate: clock, rng, ivec, disk model. *)

module Clock = Deut_sim.Clock
module Rng = Deut_sim.Rng
module Ivec = Deut_sim.Ivec
module Disk = Deut_sim.Disk

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

let test_clock () =
  let c = Clock.create () in
  check_float "starts at zero" 0.0 (Clock.now c);
  Clock.advance c 100.0;
  check_float "advance" 100.0 (Clock.now c);
  Clock.advance_to c 50.0;
  check_float "advance_to past is a no-op" 100.0 (Clock.now c);
  Clock.advance_to c 250.0;
  check_float "advance_to future" 250.0 (Clock.now c);
  check_float "ms" 0.25 (Clock.now_ms c);
  (try
     Clock.advance c (-1.0);
     Alcotest.fail "negative advance accepted"
   with Invalid_argument _ -> ());
  Clock.reset c;
  check_float "reset" 0.0 (Clock.now c)

let test_rng_determinism () =
  let a = Rng.create ~seed:9 and b = Rng.create ~seed:9 in
  for _ = 1 to 100 do
    check_int "same seed, same stream" (Rng.int a 1_000_000) (Rng.int b 1_000_000)
  done;
  let c = Rng.create ~seed:10 in
  let differs = ref false in
  for _ = 1 to 20 do
    if Rng.int a 1_000_000 <> Rng.int c 1_000_000 then differs := true
  done;
  check "different seeds differ" true !differs

let test_rng_bounds () =
  let r = Rng.create ~seed:1 in
  for _ = 1 to 10_000 do
    let v = Rng.int r 7 in
    check "int in bounds" true (v >= 0 && v < 7);
    let f = Rng.float r 3.0 in
    check "float in bounds" true (f >= 0.0 && f < 3.0)
  done;
  (try
     ignore (Rng.int r 0);
     Alcotest.fail "zero bound accepted"
   with Invalid_argument _ -> ())

let test_rng_uniformity () =
  let r = Rng.create ~seed:2 in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let k = Rng.int r 10 in
    buckets.(k) <- buckets.(k) + 1
  done;
  Array.iteri
    (fun i count ->
      let expected = n / 10 in
      if abs (count - expected) > expected / 5 then
        Alcotest.failf "bucket %d badly skewed: %d vs %d" i count expected)
    buckets

let test_zipf () =
  let r = Rng.create ~seed:3 in
  let dist = Rng.Zipf.create ~n:100 ~theta:0.99 in
  let counts = Array.make 100 0 in
  for _ = 1 to 50_000 do
    let k = Rng.Zipf.sample r dist in
    check "zipf in bounds" true (k >= 0 && k < 100);
    counts.(k) <- counts.(k) + 1
  done;
  check "zipf head heavier than tail" true (counts.(0) > 10 * counts.(99));
  check "zipf roughly monotone" true (counts.(0) > counts.(10) && counts.(10) > counts.(90));
  (* theta = 0 degenerates to uniform *)
  let flat = Rng.Zipf.create ~n:10 ~theta:0.0 in
  let c2 = Array.make 10 0 in
  for _ = 1 to 50_000 do
    let k = Rng.Zipf.sample r flat in
    c2.(k) <- c2.(k) + 1
  done;
  Array.iter (fun c -> check "theta=0 uniform-ish" true (abs (c - 5000) < 1000)) c2

let test_shuffle () =
  let r = Rng.create ~seed:4 in
  let a = Array.init 100 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 100 Fun.id) sorted;
  check "actually shuffled" true (a <> Array.init 100 Fun.id)

let test_ivec () =
  let v = Ivec.create ~capacity:2 () in
  check "empty" true (Ivec.is_empty v);
  for i = 0 to 99 do
    Ivec.push v (i * 2)
  done;
  check_int "length" 100 (Ivec.length v);
  check_int "get" 42 (Ivec.get v 21);
  Alcotest.(check (array int)) "to_array" (Array.init 100 (fun i -> 2 * i)) (Ivec.to_array v);
  let sum = ref 0 in
  Ivec.iter (fun x -> sum := !sum + x) v;
  check_int "iter" 9900 !sum;
  (try
     ignore (Ivec.get v 100);
     Alcotest.fail "out of bounds accepted"
   with Invalid_argument _ -> ());
  Ivec.clear v;
  check "cleared" true (Ivec.is_empty v)

let params =
  { Disk.seek_us = 1000.0; transfer_us = 100.0; sequential_gap = 1; batch_seek_factor = 0.5 }

let test_disk_sync_read () =
  let clock = Clock.create () in
  let d = Disk.create ~params clock in
  Disk.read_sync d ~pid:10;
  check_float "seek + transfer" 1100.0 (Clock.now clock);
  (* Sequential follow-up: no seek. *)
  Disk.read_sync d ~pid:11;
  check_float "sequential read skips seek" 1200.0 (Clock.now clock);
  Disk.read_sync d ~pid:500;
  check_float "random read seeks" 2300.0 (Clock.now clock);
  let c = Disk.counters d in
  check_int "pages read" 3 c.Disk.pages_read;
  check_int "seeks" 2 c.Disk.seeks;
  check_int "sequential" 1 c.Disk.sequential_requests

let test_disk_async_queueing () =
  let clock = Clock.create () in
  let d = Disk.create ~params clock in
  let c1 = Disk.submit_read d ~pid:5 in
  let c2 = Disk.submit_read d ~pid:200 in
  check_float "first completion" 1100.0 c1;
  (* The second request arrives while the disk is busy, so its positioning
     is elevator-scheduled: 1100 + 0.5 x 1000 seek + 100 transfer. *)
  check_float "second queues behind first at the batch seek" 1700.0 c2;
  check_float "clock does not advance on submit" 0.0 (Clock.now clock);
  Disk.drain d;
  check_float "drain waits for the queue" 1700.0 (Clock.now clock)

let test_disk_block_read () =
  let clock = Clock.create () in
  let d = Disk.create ~params clock in
  let c = Disk.submit_block_read d ~first_pid:20 ~count:8 in
  check_float "one seek, eight transfers" 1800.0 c;
  check_int "counted" 8 (Disk.counters d).Disk.pages_read

let test_disk_batch_read () =
  let clock = Clock.create () in
  let d = Disk.create ~params clock in
  (* Unsorted input; contiguous pairs coalesce after sorting. *)
  let c = Disk.submit_batch_read d [ 101; 40; 100; 300 ] in
  (* Sorted: 40 (batch seek), 100 (batch seek), 101 (sequential), 300
     (batch seek): 3 × 500 + 4 × 100 = 1900. *)
  check_float "elevator-order service" 1900.0 c;
  check_int "batch pages" 4 (Disk.counters d).Disk.pages_read;
  let idle = Disk.submit_batch_read d [] in
  check_float "empty batch completes immediately" (Disk.busy_until d) idle

let test_disk_write_delays_read () =
  let clock = Clock.create () in
  let d = Disk.create ~params clock in
  ignore (Disk.submit_write d ~pid:7);
  Disk.read_sync d ~pid:900;
  (* Queued behind the in-flight write: elevator seek, not a cold one. *)
  check_float "read queues behind write" 1700.0 (Clock.now clock)

let test_stats_accumulator () =
  let module Stats = Deut_sim.Stats in
  let s = Stats.create () in
  check_int "empty count" 0 (Stats.count s);
  List.iter (Stats.add s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  check_int "count" 8 (Stats.count s);
  check_float "mean" 5.0 (Stats.mean s);
  check_float "min" 2.0 (Stats.min s);
  check_float "max" 9.0 (Stats.max s);
  (* Sample stddev of the classic example set: sqrt(32/7). *)
  Alcotest.(check (float 1e-6)) "stddev" (sqrt (32.0 /. 7.0)) (Stats.stddev s);
  check "summary mentions n" true
    (let str = Stats.summary s in
     String.length str > 0 && str.[String.length str - 1] = ')')

let suite =
  [
    Alcotest.test_case "clock" `Quick test_clock;
    Alcotest.test_case "stats accumulator" `Quick test_stats_accumulator;
    Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
    Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
    Alcotest.test_case "rng uniformity" `Quick test_rng_uniformity;
    Alcotest.test_case "zipf" `Quick test_zipf;
    Alcotest.test_case "shuffle" `Quick test_shuffle;
    Alcotest.test_case "ivec" `Quick test_ivec;
    Alcotest.test_case "disk sync read" `Quick test_disk_sync_read;
    Alcotest.test_case "disk async queueing" `Quick test_disk_async_queueing;
    Alcotest.test_case "disk block read" `Quick test_disk_block_read;
    Alcotest.test_case "disk batch read" `Quick test_disk_batch_read;
    Alcotest.test_case "disk write delays read" `Quick test_disk_write_delays_read;
  ]
