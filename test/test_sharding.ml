(* Sharded data components behind the Dc_access protocol (§4.1 made
   explicit): shard transparency (same workload, same digest, at any shard
   count), whole-image crash/recovery at shards = 4, single-shard crash
   with siblings serving and per-shard recovery, cross-shard commit
   atomicity through the one TC log, the simulated-network transport's
   determinism, and the guard rails (barred methods, env knobs). *)

module Db = Deut_core.Db
module Config = Deut_core.Config
module Engine = Deut_core.Engine
module Dc_access = Deut_core.Dc_access
module Recovery = Deut_core.Recovery
module Metrics = Deut_obs.Metrics
module Workload = Deut_workload.Workload
module Driver = Deut_workload.Driver
module Client_sched = Deut_workload.Client_sched

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let config ?(shards = 4) ?(net = false) () =
  {
    Config.default with
    Config.page_size = 1024;
    pool_pages = 64;
    locking = true;
    clients = 4;
    shards;
    net;
  }

let spec ~rows = { Workload.default with Workload.rows; seed = 1903 }

let verified driver db =
  match Driver.verify_recovered driver db with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let table = 1

(* A small hand-driven db: [n] committed rows striped over every shard. *)
let seeded ?shards ?net ~rows () =
  let db = Db.create ~config:(config ?shards ?net ()) () in
  Db.create_table db ~table;
  for k = 0 to rows - 1 do
    Db.put db ~table ~key:k ~value:(Printf.sprintf "v%d" k)
  done;
  Db.flush_commits db;
  db

(* {2 Shard transparency} *)

(* The facade contract: striping is invisible.  The same seeded workload
   must commit the identical logical state — byte-identical digest — at
   one, two, and four shards. *)
let test_digest_across_shard_counts () =
  let run shards =
    let driver = Driver.create ~config:(config ~shards ()) (spec ~rows:200) in
    let sched = Driver.run_concurrent driver ~txns:60 in
    Client_sched.flush sched;
    verified driver (Driver.db driver);
    check_int "shard_count" shards (Db.shard_count (Driver.db driver));
    Client_sched.logical_digest (Driver.db driver)
  in
  let d1 = run 1 and d2 = run 2 and d4 = run 4 in
  check_string "1 vs 2 shards" d1 d2;
  check_string "1 vs 4 shards" d1 d4

(* Every key readable, inspection ops merge the stripes in key order. *)
let test_striped_reads_and_scans () =
  let rows = 40 in
  let db = seeded ~rows () in
  for k = 0 to rows - 1 do
    check_string "read" (Printf.sprintf "v%d" k)
      (Option.get (Db.read db ~table ~key:k))
  done;
  check_int "entry_count sums stripes" rows (Db.entry_count db ~table);
  let dump = Db.dump_table db ~table in
  check_int "dump has every row" rows (List.length dump);
  check "dump sorted by key" true
    (List.for_all2 (fun (k, _) i -> k = i) dump (List.init rows Fun.id));
  (match Db.check_integrity db with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  check_int "scan range" 10 (List.length (Db.scan db ~table ~lo:5 ~hi:15))

(* {2 Whole-image crash and recovery} *)

(* Crash the whole sharded engine; every logical method must recover the
   committed prefix, per shard in parallel, to the same digest. *)
let test_sharded_crash_recovery () =
  let driver = Driver.create ~config:(config ~shards:4 ()) (spec ~rows:300) in
  let sched = Driver.run_concurrent driver ~txns:80 in
  Client_sched.flush sched;
  let reference = Client_sched.logical_digest (Driver.db driver) in
  let image = Driver.crash driver in
  List.iter
    (fun m ->
      let recovered, stats = Db.recover image m in
      verified driver recovered;
      check_string
        (Printf.sprintf "%s digest" (Recovery.method_to_string m))
        reference
        (Client_sched.logical_digest recovered);
      check
        (Printf.sprintf "%s did work" (Recovery.method_to_string m))
        true
        (stats.Deut_core.Recovery_stats.records_scanned > 0))
    [ Recovery.Log0; Recovery.Log1; Recovery.Log2 ]

(* Physiological and SQL-analysis methods need one physical page space;
   instant recovery is not yet sharded.  All must refuse, not corrupt. *)
let test_barred_methods_sharded () =
  let driver = Driver.create ~config:(config ~shards:2 ()) (spec ~rows:60) in
  let sched = Driver.run_concurrent driver ~txns:10 in
  Client_sched.flush sched;
  let image = Driver.crash driver in
  List.iter
    (fun m ->
      check
        (Printf.sprintf "%s barred" (Recovery.method_to_string m))
        true
        (match Db.recover image m with
        | exception Invalid_argument _ -> true
        | _ -> false))
    [ Recovery.Sql1; Recovery.Sql2; Recovery.Aries_ckpt; Recovery.InstantLog2 ];
  check "recover_instant barred" true
    (match Db.recover_instant image with exception Invalid_argument _ -> true | _ -> false)

(* ARIES fuzzy checkpoints capture one runtime DPT over one page space —
   meaningless across shards, so assembly refuses the combination. *)
let test_aries_fuzzy_barred () =
  let c = { (config ~shards:2 ()) with Config.checkpoint_mode = Config.Aries_fuzzy } in
  check "aries-fuzzy + shards refused" true
    (match Db.create ~config:c () with exception Invalid_argument _ -> true | _ -> false)

(* {2 Single-shard crash: siblings keep serving} *)

let shard_of db key = key mod Db.shard_count db

let test_shard_crash_siblings_serve () =
  let rows = 48 in
  let db = seeded ~rows () in
  let before = Db.dump_table db ~table in
  let down = 2 in
  Db.crash_shard db ~shard:down;
  check "shard reported down" false (Db.shard_up db ~shard:down);
  check "siblings reported up" true
    (Db.shard_up db ~shard:0 && Db.shard_up db ~shard:1 && Db.shard_up db ~shard:3);
  (* A write routed to the down stripe: typed error, not an exception. *)
  let txn = Db.begin_txn db in
  let key_down = down and key_up = down + 1 in
  (match Db.update db txn ~table ~key:key_down ~value:"x" with
  | Error (Db.Shard_down s) -> check_int "error names the shard" down s
  | Ok () -> Alcotest.fail "write to down shard succeeded"
  | Error e -> Alcotest.failf "unexpected error: %s" (Db.error_to_string e));
  Db.abort db txn;
  (* A sibling write commits while the shard is down. *)
  let txn = Db.begin_txn db in
  check_int "sibling key routes elsewhere" (shard_of db key_up) (key_up mod 4);
  (match Db.update db txn ~table ~key:key_up ~value:"sibling" with
  | Ok () -> Db.commit db txn
  | Error e -> Alcotest.failf "sibling write failed: %s" (Db.error_to_string e));
  Db.flush_commits db;
  (* Reads on the down stripe raise; sibling reads serve. *)
  check "down-stripe read raises" true
    (match Db.read db ~table ~key:key_down with
    | exception Dc_access.Unavailable s -> s = down
    | _ -> false);
  check_string "sibling read serves" "sibling" (Option.get (Db.read db ~table ~key:key_up));
  (* Checkpoint needs every shard's RSSP flush. *)
  check "checkpoint refused while down" true
    (match Db.checkpoint db with exception Invalid_argument _ -> true | _ -> false);
  (* Recover the one shard on the live engine; full state returns,
     including the sibling commit made while it was down. *)
  Db.recover_shard db ~shard:down;
  check "shard back up" true (Db.shard_up db ~shard:down);
  let expected =
    List.map (fun (k, v) -> if k = key_up then (k, "sibling") else (k, v)) before
  in
  check "state intact after per-shard recovery" true (Db.dump_table db ~table = expected);
  (match Db.check_integrity db with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* And the db keeps working: checkpoint + a fresh commit. *)
  Db.checkpoint db;
  Db.put db ~table ~key:1000 ~value:"after";
  check_string "post-recovery write" "after" (Option.get (Db.read db ~table ~key:1000))

(* The crashed shard's unforced DC-log tail and cache dirt vanish, but the
   TC log survives — so commits whose Δ records never reached the shard's
   stable log still recover, replayed from the TC log stripe. *)
let test_shard_crash_loses_nothing_committed () =
  let db = seeded ~rows:32 () in
  (* More committed writes after the flush: their DC-side state is cache
     dirt + volatile DC-log tail only. *)
  for k = 100 to 131 do
    Db.put db ~table ~key:k ~value:(Printf.sprintf "tail%d" k)
  done;
  let before = Db.dump_table db ~table in
  let down = 1 in
  Db.crash_shard db ~shard:down;
  Db.recover_shard db ~shard:down;
  check "committed tail recovered from TC log" true (Db.dump_table db ~table = before)

let test_shard_guards () =
  let single = seeded ~shards:1 ~rows:8 () in
  check "crash_shard refused on single-shard engine" true
    (match Db.crash_shard single ~shard:0 with
    | exception Invalid_argument _ -> true
    | _ -> false);
  let db = seeded ~rows:16 () in
  let txn = Db.begin_txn db in
  (match Db.insert db txn ~table ~key:999 ~value:"x" with Ok () -> () | Error _ -> ());
  check "crash_shard refused with active txn" true
    (match Db.crash_shard db ~shard:1 with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Db.abort db txn;
  Db.crash_shard db ~shard:1;
  check "double crash refused" true
    (match Db.crash_shard db ~shard:1 with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check "recover_shard refused on up shard" true
    (match Db.recover_shard db ~shard:0 with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Db.recover_shard db ~shard:1

(* {2 Cross-shard commit atomicity} *)

(* Each transaction writes one key on every shard; the single TC log
   sequences all commits, so after a crash each transaction is all-or-
   nothing across shards — whatever the group-commit tail swallowed. *)
let test_cross_shard_atomicity () =
  let shards = 4 in
  let c = { (config ~shards ()) with Config.group_commit = 4 } in
  let db = Db.create ~config:c () in
  Db.create_table db ~table;
  let n_txns = 25 in
  for t = 0 to n_txns - 1 do
    let txn = Db.begin_txn db in
    for s = 0 to shards - 1 do
      match Db.insert db txn ~table ~key:((t * shards) + s) ~value:(Printf.sprintf "t%d" t) with
      | Ok () -> ()
      | Error e -> Alcotest.failf "insert failed: %s" (Db.error_to_string e)
    done;
    Db.commit db txn
  done;
  (* No flush: the last group-commit batch is volatile and dies here. *)
  let image = Db.crash db in
  List.iter
    (fun m ->
      let recovered, _ = Db.recover image m in
      let present = Hashtbl.create 32 in
      List.iter
        (fun (k, v) -> Hashtbl.replace present (k / shards) v)
        (Db.dump_table recovered ~table);
      for t = 0 to n_txns - 1 do
        let keys =
          List.filter_map
            (fun s -> Db.read recovered ~table ~key:((t * shards) + s))
            (List.init shards Fun.id)
        in
        let n = List.length keys in
        if n <> 0 && n <> shards then
          Alcotest.failf "%s: txn %d committed on %d of %d shards (dump: %s)"
            (Recovery.method_to_string m) t n shards
            (String.concat ","
               (List.map (fun (k, v) -> Printf.sprintf "%d=%s" k v)
                  (Db.dump_table recovered ~table)))
      done)
    [ Recovery.Log0; Recovery.Log2 ]

(* {2 The networked transport} *)

(* Latency, jitter, loss and reordering all draw from seeded streams on
   the virtual clock: two identical runs must agree byte for byte, and
   the link counters must show the traffic (and the retransmits). *)
let test_net_determinism () =
  let lossy =
    {
      (config ~shards:2 ~net:true ()) with
      Config.net_latency_us = 80.0;
      net_jitter_us = 40.0;
      net_loss = 0.05;
      net_reorder = 0.1;
      net_timeout_us = 500.0;
    }
  in
  let run () =
    let driver = Driver.create ~config:lossy (spec ~rows:120) in
    let sched = Driver.run_concurrent driver ~txns:30 in
    Client_sched.flush sched;
    verified driver (Driver.db driver);
    let m = Engine.metrics (Db.engine (Driver.db driver)) in
    (Client_sched.logical_digest (Driver.db driver),
     Metrics.read_int m "net.messages",
     Metrics.read_int m "net.retransmits")
  in
  let d1, msgs1, rts1 = run () in
  let d2, msgs2, rts2 = run () in
  check_string "same seed, same digest over the network" d1 d2;
  check_int "same message count" msgs1 msgs2;
  check_int "same retransmit count" rts1 rts2;
  check "messages flowed" true (msgs1 > 0);
  check "losses forced retransmits" true (rts1 > 0)

(* The cost model is charged on the virtual clock: the same workload takes
   longer with the network on than off, and the digest is unchanged. *)
let test_net_is_transparent_but_costly () =
  let run net =
    let driver = Driver.create ~config:(config ~shards:2 ~net ()) (spec ~rows:120) in
    let sched = Driver.run_concurrent driver ~txns:30 in
    Client_sched.flush sched;
    (Client_sched.logical_digest (Driver.db driver), Db.now_ms (Driver.db driver))
  in
  let d_off, t_off = run false in
  let d_on, t_on = run true in
  check_string "digest unchanged by the transport" d_off d_on;
  check "network time was charged" true (t_on > t_off)

(* {2 Zero observer effect} *)

(* Recording never advances the clock: the always-on flight recorder and
   opt-in causal tracing, in every combination, must leave the committed
   state, the operation counts and the simulated clock untouched. *)
let test_observers_change_nothing () =
  let run ~flight ~tracing =
    let c =
      {
        (config ~shards:2 ~net:true ()) with
        Config.flight;
        tracing;
        trace_capacity = 1 lsl 18;
      }
    in
    let driver = Driver.create ~config:c (spec ~rows:120) in
    let sched = Driver.run_concurrent driver ~txns:30 in
    Client_sched.flush sched;
    let m = Engine.metrics (Db.engine (Driver.db driver)) in
    ( Client_sched.logical_digest (Driver.db driver),
      Metrics.read_int m "net.messages",
      Db.now_ms (Driver.db driver) )
  in
  let reference = run ~flight:true ~tracing:false in
  let d0, m0, t0 = reference in
  List.iter
    (fun (flight, tracing) ->
      let d, m, t = run ~flight ~tracing in
      let label = Printf.sprintf "flight=%b tracing=%b" flight tracing in
      check_string (label ^ ": digest unchanged") d0 d;
      check_int (label ^ ": op counts unchanged") m0 m;
      check (label ^ ": clock unchanged") true (t = t0))
    [ (false, false); (true, true); (false, true) ]

(* {2 Env knobs} *)

let with_env bindings f =
  let saved = List.map (fun (k, _) -> (k, Sys.getenv_opt k)) bindings in
  List.iter (fun (k, v) -> Unix.putenv k v) bindings;
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun (k, v) -> Unix.putenv k (Option.value v ~default:""))
        saved)
    f

let test_env_knobs () =
  with_env
    [
      ("DEUT_SHARDS", "4");
      ("DEUT_NET", "1");
      ("DEUT_NET_LATENCY_US", "123.5");
      ("DEUT_NET_LOSS", "0.25");
    ]
    (fun () ->
      let c = Config.of_env Config.default in
      check_int "DEUT_SHARDS" 4 c.Config.shards;
      check "DEUT_NET" true c.Config.net;
      check "DEUT_NET_LATENCY_US" true (c.Config.net_latency_us = 123.5);
      check "DEUT_NET_LOSS" true (c.Config.net_loss = 0.25))

let suite =
  [
    Alcotest.test_case "digest equal across shard counts" `Quick
      test_digest_across_shard_counts;
    Alcotest.test_case "striped reads and merged scans" `Quick test_striped_reads_and_scans;
    Alcotest.test_case "sharded crash recovery (Log0/1/2)" `Quick test_sharded_crash_recovery;
    Alcotest.test_case "non-logical methods barred sharded" `Quick test_barred_methods_sharded;
    Alcotest.test_case "aries-fuzzy barred sharded" `Quick test_aries_fuzzy_barred;
    Alcotest.test_case "shard crash: siblings serve" `Quick test_shard_crash_siblings_serve;
    Alcotest.test_case "shard crash loses nothing committed" `Quick
      test_shard_crash_loses_nothing_committed;
    Alcotest.test_case "shard guard rails" `Quick test_shard_guards;
    Alcotest.test_case "cross-shard commit atomicity" `Quick test_cross_shard_atomicity;
    Alcotest.test_case "network transport determinism" `Quick test_net_determinism;
    Alcotest.test_case "network cost is charged, digest unchanged" `Quick
      test_net_is_transparent_but_costly;
    Alcotest.test_case "observers change nothing" `Quick test_observers_change_nothing;
    Alcotest.test_case "env knobs" `Quick test_env_knobs;
  ]
