(* Hot-path optimisations: word-wide FNV equivalence, copy-on-write page
   sharing discipline, the allocation-lean WAL codec, the log's verified
   watermark, and per-lane in-flight accounting.  These pin the invariants
   the wall-clock pass leans on — every one of them is a "fast path must
   equal slow path" property. *)

module Fnv = Deut_storage.Fnv
module Page = Deut_storage.Page
module Page_store = Deut_storage.Page_store
module Pool = Deut_buffer.Buffer_pool
module Codec = Deut_wal.Codec
module Lr = Deut_wal.Log_record
module Log = Deut_wal.Log_manager
module Clock = Deut_sim.Clock
module Disk = Deut_sim.Disk

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* qcheck: the word-wide FNV fold equals the byte-wise reference on every
   buffer, sub-range, and chained init — including ranges that start and
   end unaligned and tails shorter than a word. *)
let fnv_case_gen =
  let open QCheck2.Gen in
  let* n = 0 -- 300 in
  let* bytes = string_size (return n) in
  let* off = 0 -- n in
  let* len = 0 -- (n - off) in
  let* init = oneof [ return Fnv.seed; 0 -- 0xFFFFFFFF ] in
  return (Bytes.of_string bytes, off, len, init)

let prop_fnv_word_eq_byte =
  QCheck2.Test.make ~name:"word-wide FNV equals byte-wise reference" ~count:1000
    fnv_case_gen (fun (buf, off, len, init) ->
      Fnv.fold buf ~off ~len ~init = Fnv.fold_ref buf ~off ~len ~init)

let test_fnv_bounds () =
  let buf = Bytes.create 16 in
  List.iter
    (fun (off, len) ->
      try
        ignore (Fnv.fold buf ~off ~len ~init:Fnv.seed);
        Alcotest.fail "out-of-bounds range must raise"
      with Invalid_argument _ -> ())
    [ (-1, 4); (0, 17); (12, 5); (0, -1) ]

(* qcheck: the size computed without encoding matches the encoding, and both
   encode paths (fresh string, reusable scratch writer) agree; decode_sub
   reads the record in place at an arbitrary offset. *)
let record_gen =
  let open QCheck2.Gen in
  let op = oneofl [ Lr.Insert; Lr.Update; Lr.Delete ] in
  let opt_str = option (string_size (0 -- 64)) in
  let* txn = 0 -- 1000 and* table = 0 -- 10 and* key = int and* o = op in
  let* before = opt_str and* after = opt_str and* pid = 0 -- 1_000_000 and* prev = -1 -- 10000 in
  return (Lr.Update_rec { txn; table; key; op = o; before; after; pid_hint = pid; prev_lsn = prev })

let prop_encode_paths_agree =
  let scratch = Codec.writer () in
  QCheck2.Test.make ~name:"encoded_size / encode_into / decode_sub agree with encode"
    ~count:500 record_gen (fun r ->
      let s = Lr.encode r in
      Codec.clear scratch;
      Lr.encode_into scratch r;
      let len = String.length s in
      let padded = Bytes.make (len + 13) '\xAA' in
      Bytes.blit_string s 0 padded 7 len;
      Lr.encoded_size r = len
      && Codec.contents scratch = s
      && Lr.decode_sub padded ~pos:7 ~len = r)

(* COW sharing discipline: a page fetched from the store borrows the stable
   image; the first mutation unshares it, so neither side ever observes the
   other's writes. *)
let test_cow_read_isolation () =
  let s = Page_store.create ~page_size:128 in
  let pid = Page_store.allocate s Page.Btree_leaf in
  let p = Page.create ~page_size:128 ~pid Page.Btree_leaf in
  Page.set_bytes p ~off:32 "original";
  Page_store.write s p;
  let borrowed = Page_store.read s pid in
  check "fetched page is a borrow" true (Page.is_borrowed borrowed);
  check_str "borrow reads the image" "original" (Page.get_bytes borrowed ~off:32 ~len:8);
  (* Mutating the borrow must not leak into the stable image... *)
  Page.set_bytes borrowed ~off:32 "mutated!";
  check "mutation unshared the page" false (Page.is_borrowed borrowed);
  check_str "stable image untouched" "original"
    (Page.get_bytes (Page_store.read s pid) ~off:32 ~len:8);
  (* ...and the stable image still passes its checksum after the scare. *)
  check "stable image still verifies" true (Page.checksum_ok (Page_store.read s pid))

let test_cow_two_borrows_independent () =
  let s = Page_store.create ~page_size:128 in
  let pid = Page_store.allocate s Page.Meta in
  let p = Page.create ~page_size:128 ~pid Page.Meta in
  Page.set_u16 p 32 7;
  Page_store.write s p;
  let a = Page_store.read s pid and b = Page_store.read s pid in
  Page.set_u16 a 32 8;
  check_int "sibling borrow unaffected" 7 (Page.get_u16 b 32);
  check_int "writer sees its own write" 8 (Page.get_u16 a 32)

let test_stable_image_not_aliased () =
  (* stable_image hands the store a private copy: mutating the source page
     afterwards must not bend the filed image. *)
  let p = Page.create ~page_size:128 ~pid:0 Page.Meta in
  Page.set_u16 p 32 1;
  let img = Page.stable_image p in
  Page.set_u16 p 32 2;
  let reread = Page.borrow ~pid:0 img in
  check_int "image frozen at write time" 1 (Page.get_u16 reread 32);
  check "image carries a valid stamp" true (Page.checksum_ok reread)

(* The verified watermark must not outlive the bytes it vouches for:
   corruption injected behind it is still detected, both in the live log
   and in crash copies. *)
let test_watermark_corruption_still_detected () =
  let log = Log.create ~page_size:4096 in
  let l1 = Log.append log (Lr.Commit { txn = 1 }) in
  let _l2 = Log.append log (Lr.Commit { txn = 2 }) in
  Log.force log;
  (* Verify everything once — the watermark now covers both records. *)
  Log.iter log ~from:(-1) (fun _ _ -> ());
  Log.corrupt_for_test log l1;
  (try
     ignore (Log.read_at log l1);
     Alcotest.fail "corruption behind the watermark must be detected"
   with Log.Corrupt_record l -> check_int "corrupt lsn reported" l1 l);
  (* A crash copy of a corrupted log detects it too. *)
  let log2 = Log.create ~page_size:4096 in
  let m1 = Log.append log2 (Lr.Commit { txn = 1 }) in
  Log.force log2;
  Log.iter log2 ~from:(-1) (fun _ _ -> ());
  Log.corrupt_for_test log2 m1;
  let crashed = Log.crash log2 in
  (try
     ignore (Log.read_at crashed m1);
     Alcotest.fail "crash copy must re-detect corruption"
   with Log.Corrupt_record _ -> ())

let test_watermark_reads_stay_correct () =
  (* Repeat reads (the first verifies, the rest ride the watermark) return
     identical records. *)
  let log = Log.create ~page_size:4096 in
  let records =
    [ Lr.Commit { txn = 1 }; Lr.Begin_ckpt; Lr.Abort { txn = 2 }; Lr.Commit { txn = 3 } ]
  in
  let lsns = List.map (Log.append log) records in
  List.iter2
    (fun lsn r ->
      let first, _ = Log.read_at log lsn in
      let second, _ = Log.read_at log lsn in
      check "first read decodes" true (first = r);
      check "watermarked read agrees" true (second = r))
    lsns records

(* Per-lane in-flight accounting: lanes partition the total. *)
let make_pool ~capacity ~pages =
  let clock = Clock.create () in
  let disk = Disk.create clock in
  let store = Page_store.create ~page_size:256 in
  let pool = Pool.create ~capacity ~store ~disk ~clock () in
  for _ = 1 to pages do
    let pid = Page_store.allocate store Page.Meta in
    let p = Page.create ~page_size:256 ~pid Page.Meta in
    Page_store.write store p
  done;
  pool

let test_per_lane_in_flight () =
  let pool = make_pool ~capacity:16 ~pages:16 in
  Pool.prefetch pool ~lane:1 [ 0; 1; 2 ];
  Pool.prefetch pool ~lane:2 [ 3; 4 ];
  check_int "lane 1" 3 (Pool.in_flight_count ~lane:1 pool);
  check_int "lane 2" 2 (Pool.in_flight_count ~lane:2 pool);
  check_int "idle lane" 0 (Pool.in_flight_count ~lane:0 pool);
  check_int "lanes sum to total" 5 (Pool.in_flight_count pool);
  (* Claiming a page decrements its issuing lane only. *)
  ignore (Pool.get pool 3);
  check_int "lane 2 drained by one" 1 (Pool.in_flight_count ~lane:2 pool);
  check_int "lane 1 untouched" 3 (Pool.in_flight_count ~lane:1 pool);
  check_int "total follows" 4 (Pool.in_flight_count pool);
  ignore (Pool.get pool 0);
  ignore (Pool.get pool 1);
  ignore (Pool.get pool 2);
  ignore (Pool.get pool 4);
  check_int "all drained" 0 (Pool.in_flight_count pool);
  check_int "lane 1 drained" 0 (Pool.in_flight_count ~lane:1 pool);
  check_int "lane 2 drained" 0 (Pool.in_flight_count ~lane:2 pool)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_fnv_word_eq_byte;
    Alcotest.test_case "fnv bounds checks" `Quick test_fnv_bounds;
    QCheck_alcotest.to_alcotest prop_encode_paths_agree;
    Alcotest.test_case "cow read isolation" `Quick test_cow_read_isolation;
    Alcotest.test_case "cow sibling borrows" `Quick test_cow_two_borrows_independent;
    Alcotest.test_case "stable image not aliased" `Quick test_stable_image_not_aliased;
    Alcotest.test_case "watermark: corruption detected" `Quick test_watermark_corruption_still_detected;
    Alcotest.test_case "watermark: reads stay correct" `Quick test_watermark_reads_stay_correct;
    Alcotest.test_case "per-lane in-flight counters" `Quick test_per_lane_in_flight;
  ]
