(* Log archiving and restart-from-archive.

   The durability contract (DESIGN.md §8): at every instant the union of
   sealed archive segments and the durable live log covers the whole
   recoverable range contiguously, because the archiver seals a segment
   under its checksum before truncating the live log.  These tests prove
   the contract where it matters: recovery from a truncated log spanning
   archive + live bytes is byte-identical to recovery from the untruncated
   log, for every method, including from a crash at every step of the
   archiving protocol itself. *)

module Db = Deut_core.Db
module Config = Deut_core.Config
module Engine = Deut_core.Engine
module Tc = Deut_core.Tc
module Recovery = Deut_core.Recovery
module Recovery_stats = Deut_core.Recovery_stats
module Engine_stats = Deut_core.Engine_stats
module Crash_image = Deut_core.Crash_image
module Lr = Deut_wal.Log_record
module Lsn = Deut_wal.Lsn
module Log = Deut_wal.Log_manager
module Archive = Deut_wal.Archive
module Page_store = Deut_storage.Page_store

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let table = 1

let base_config =
  {
    Config.default with
    Config.page_size = 1024;
    pool_pages = 32;
    delta_period = 10;
    delta_capacity = 64;
    shards = 1;
    archive = false;
  }

let archive_config = { base_config with Config.archive = true }
let ok = function Ok () -> () | Error e -> Alcotest.fail (Db.error_to_string e)
let value gen k = Printf.sprintf "v%d.%d" gen k

(* Phase one: enough history (splits, a checkpoint, an abort) that the
   archive point lands well past zero once a second checkpoint completes. *)
let run_phase1 db =
  for k = 0 to 15 do
    Db.put db ~table ~key:k ~value:(value 0 k)
  done;
  let t1 = Db.begin_txn db in
  for k = 0 to 4 do
    ok (Db.update db t1 ~table ~key:k ~value:(value 1 k))
  done;
  Db.commit db t1;
  let t2 = Db.begin_txn db in
  for k = 100 to 109 do
    ok (Db.insert db t2 ~table ~key:k ~value:(value 2 k))
  done;
  Db.commit db t2;
  Db.checkpoint db;
  let t3 = Db.begin_txn db in
  for k = 5 to 9 do
    ok (Db.update db t3 ~table ~key:k ~value:(value 3 k))
  done;
  Db.abort db t3;
  Db.checkpoint db

(* Phase two: post-archiving activity, ending with an in-flight loser. *)
let run_phase2 db =
  let t4 = Db.begin_txn db in
  ok (Db.delete db t4 ~table ~key:1);
  ok (Db.delete db t4 ~table ~key:3);
  Db.commit db t4;
  let t5 = Db.begin_txn db in
  for k = 10 to 14 do
    ok (Db.update db t5 ~table ~key:k ~value:(value 5 k))
  done;
  Db.commit db t5;
  let t6 = Db.begin_txn db in
  ok (Db.update db t6 ~table ~key:4 ~value:"loser4");
  ok (Db.insert db t6 ~table ~key:110 ~value:"loser110")

let setup config =
  let db = Db.create ~config () in
  Db.create_table db ~table;
  db

(* Committed state implied by a log prefix; [Log.iter ~from:Lsn.nil] spans
   archive segments and live bytes transparently, so the same fold works on
   truncated and untruncated images. *)
let expected_of_log log =
  let committed = Hashtbl.create 64 in
  let pending = Hashtbl.create 8 in
  Log.iter log ~from:Lsn.nil (fun _lsn record ->
      match record with
      | Lr.Update_rec u when u.Lr.table = table ->
          let prior = Option.value (Hashtbl.find_opt pending u.Lr.txn) ~default:[] in
          Hashtbl.replace pending u.Lr.txn ((u.Lr.key, u.Lr.after) :: prior)
      | Lr.Commit { txn } ->
          List.iter
            (fun (k, after) ->
              match after with
              | Some v -> Hashtbl.replace committed k v
              | None -> Hashtbl.remove committed k)
            (List.rev (Option.value (Hashtbl.find_opt pending txn) ~default:[]));
          Hashtbl.remove pending txn
      | Lr.Abort { txn } -> Hashtbl.remove pending txn
      | Lr.Update_rec _ | Lr.Clr _ | Lr.Begin_ckpt | Lr.End_ckpt _ | Lr.Aries_ckpt_dpt _
      | Lr.Bw _ | Lr.Delta _ | Lr.Smo _ ->
          ());
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) committed [])

let show_entries entries =
  String.concat "; " (List.map (fun (k, v) -> Printf.sprintf "%d=%s" k v) entries)

let recover_and_dump image m =
  let recovered, _stats = Db.recover image m in
  (match Db.check_integrity recovered with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s: broken B-tree: %s" (Recovery.method_to_string m) msg);
  Db.dump_table recovered ~table

(* Identical workloads, one archiving + truncating and one untouched: every
   method must recover the same state from both crash images. *)
let test_truncated_equals_untruncated () =
  let db_a = setup archive_config in
  let db_u = setup base_config in
  run_phase1 db_a;
  run_phase1 db_u;
  Db.compact_log db_a;
  (* db_u deliberately not compacted: its log keeps the full history. *)
  run_phase2 db_a;
  run_phase2 db_u;
  let image_a = Db.crash db_a in
  let image_u = Db.crash db_u in
  check "live log was truncated" true (Log.base_lsn image_a.Crash_image.log > 0);
  (match Log.archive image_a.Crash_image.log with
  | Some a ->
      check "archive holds a sealed segment" true (Archive.segment_count a > 0);
      check_int "archive meets the truncation point" (Log.base_lsn image_a.Crash_image.log)
        (Archive.covered_upto a)
  | None -> Alcotest.fail "archiving config produced no archive");
  let expected = expected_of_log image_u.Crash_image.log in
  check_int "spanning scan sees the same history"
    (List.length expected)
    (List.length (expected_of_log image_a.Crash_image.log));
  List.iter
    (fun m ->
      let from_archive = recover_and_dump image_a m in
      let from_full = recover_and_dump image_u m in
      if from_archive <> from_full then
        Alcotest.failf "%s: truncated+archive differs from untruncated:\n  %s\n  %s"
          (Recovery.method_to_string m) (show_entries from_archive) (show_entries from_full);
      if from_archive <> expected then
        Alcotest.failf "%s: wrong state:\n  expected %s\n  got      %s"
          (Recovery.method_to_string m) (show_entries expected) (show_entries from_archive))
    Recovery.all_methods

(* Crash DURING archiving, at every step of the protocol: a segment
   half-written, a segment sealed but the live log untruncated, a torn
   truncation, and the completed cut.  Each image must recover to exactly
   the state of the untruncated log, under every method. *)
let test_crash_during_archiving () =
  let db = setup archive_config in
  let engine = Db.engine db in
  let log = engine.Engine.log in
  run_phase1 db;
  let images = ref [] in
  Log.set_archive_hook log
    (Some
       (fun step ->
         images :=
           ( step,
             Crash_image.make ~config:engine.Engine.config
               ~store:(Page_store.clone engine.Engine.store)
               ~log:(Log.crash log)
               ~master:(Tc.master engine.Engine.tc) () )
           :: !images));
  Db.compact_log db;
  Log.set_archive_hook log None;
  let images = List.rev !images in
  let steps = List.map fst images in
  check "partial-segment crash point fired" true (List.mem Log.Archive_segment_partial steps);
  check "sealed-not-truncated crash point fired" true
    (List.mem Log.Archive_segment_sealed steps);
  check "torn-truncation crash point fired" true (List.mem Log.Archive_truncate_torn steps);
  check "completed-cut crash point fired" true (List.mem Log.Archive_truncated steps);
  let step_name = function
    | Log.Archive_segment_partial -> "segment-partial"
    | Log.Archive_segment_sealed -> "segment-sealed"
    | Log.Archive_truncate_torn -> "truncate-torn"
    | Log.Archive_truncated -> "truncated"
  in
  (* The reference state: same workload, never archived. *)
  let db_u = setup base_config in
  run_phase1 db_u;
  let image_u = Db.crash db_u in
  let expected = expected_of_log image_u.Crash_image.log in
  List.iter
    (fun (step, image) ->
      (match step with
      | Log.Archive_segment_partial ->
          check "partial: live log not yet cut" true
            (Log.base_lsn image.Crash_image.log = Log.genesis);
          (match Log.archive image.Crash_image.log with
          | Some a -> check "partial: unsealed residue is not durable" true
                        (Archive.segment_count a = 0 && Archive.start_lsn a = None)
          | None -> Alcotest.fail "partial: archive missing from image")
      | Log.Archive_segment_sealed ->
          check "sealed: live log not yet cut" true
            (Log.base_lsn image.Crash_image.log = Log.genesis)
      | Log.Archive_truncate_torn ->
          check "torn: live log partly cut" true
            (Log.base_lsn image.Crash_image.log > Log.genesis)
      | Log.Archive_truncated -> ());
      List.iter
        (fun m ->
          let got = recover_and_dump image m in
          if got <> expected then
            Alcotest.failf "crash at %s, %s:\n  expected %s\n  got      %s" (step_name step)
              (Recovery.method_to_string m) (show_entries expected) (show_entries got))
        Recovery.all_methods)
    images

(* A damaged segment must stop recovery loudly, never degrade silently.
   Archive the whole log so the redo scan cannot avoid the segment, then
   flip one byte near the master record every method must read: the
   whole-segment checksum catches it before any frame is decoded. *)
let test_corrupt_segment_fails_loudly () =
  let db = setup archive_config in
  run_phase1 db;
  let log = (Db.engine db).Engine.log in
  check "whole log archived" true (Log.archive_to log ~upto:(Log.stable_lsn log));
  let image = Db.crash db in
  let a =
    match Log.archive image.Crash_image.log with
    | Some a -> a
    | None -> Alcotest.fail "no archive in image"
  in
  check "master record is archived" true (Archive.contains a image.Crash_image.master);
  Archive.corrupt_for_test a ~lsn:(image.Crash_image.master + 4);
  List.iter
    (fun m ->
      match Db.recover image m with
      | exception Archive.Corrupt_segment _ -> ()
      | _ -> Alcotest.failf "%s: recovered from a corrupt segment" (Recovery.method_to_string m))
    Recovery.all_methods

(* Archive everything up to the stable end: the live log is empty and
   recovery replays purely from segments. *)
let test_restart_from_archive_alone () =
  let db = setup archive_config in
  run_phase1 db;
  let before = Db.dump_table db ~table in
  let log = (Db.engine db).Engine.log in
  check "protocol ran" true (Log.archive_to log ~upto:(Log.stable_lsn log));
  check_int "live log is empty" (Log.end_lsn log) (Log.base_lsn log);
  let image = Db.crash db in
  check_int "crash image keeps the empty live log" (Log.end_lsn image.Crash_image.log)
    (Log.base_lsn image.Crash_image.log);
  List.iter
    (fun m ->
      let got = recover_and_dump image m in
      if got <> before then
        Alcotest.failf "%s: restart from archive alone lost state:\n  expected %s\n  got      %s"
          (Recovery.method_to_string m) (show_entries before) (show_entries got))
    Recovery.all_methods

(* Db.crash must hand recovery the archive exactly as a real restart finds
   the device: same sealed segments, checksums unverified, counters fresh. *)
let test_crash_preserves_archive () =
  let db = setup archive_config in
  run_phase1 db;
  Db.compact_log db;
  let live = match Log.archive (Db.engine db).Engine.log with
    | Some a -> a
    | None -> Alcotest.fail "no live archive"
  in
  let live_segments = Archive.segments live in
  let live_covered = Archive.covered_upto live in
  check "something was archived" true (live_segments <> []);
  let image = Db.crash db in
  let a =
    match Log.archive image.Crash_image.log with
    | Some a -> a
    | None -> Alcotest.fail "Db.crash dropped the archive"
  in
  check "same segments survive the crash" true (Archive.segments a = live_segments);
  check_int "same coverage" live_covered (Archive.covered_upto a);
  check_int "lifetime counters reset" 0 (Archive.seal_count a);
  check_int "device pages reset" 0 (Archive.pages_written a);
  (* Independence: corrupting the image's copy must not touch the live one. *)
  let lo, _, _ = List.hd live_segments in
  Archive.corrupt_for_test a ~lsn:lo;
  ignore (Archive.locate live lo);
  check "image archive is a deep copy" true
    (match Archive.locate a lo with
    | exception Archive.Corrupt_segment _ -> true
    | _ -> false)

(* Instant recovery over a part-archived log: the redo range itself
   straddles the archive cut — the first post-checkpoint transaction's
   records live in a sealed segment, the second's (and the loser's) in
   the live tail.  Probe reads on keys whose history straddles the cut
   drive on-demand replay that must pull bytes back out of the archive
   device; the rest drains in the background.  Final state must equal the
   never-archived reference, and the stats must show both replay paths
   were exercised. *)
let test_instant_over_archive () =
  (* Wide values spread the post-checkpoint history over ~10 leaves —
     enough for both the on-demand and the background replay paths to
     fire.  [tail1] is the half that gets archived, [tail2] stays live. *)
  let wide gen k = Printf.sprintf "%s.%d.%d" (String.make 64 'w') gen k in
  let run_tail1 db =
    let t = Db.begin_txn db in
    for k = 0 to 15 do
      ok (Db.update db t ~table ~key:k ~value:(wide 7 k))
    done;
    for k = 200 to 239 do
      ok (Db.insert db t ~table ~key:k ~value:(wide 9 k))
    done;
    Db.commit db t
  in
  let run_tail2 db =
    let t = Db.begin_txn db in
    for k = 100 to 109 do
      ok (Db.update db t ~table ~key:k ~value:(wide 8 k))
    done;
    for k = 220 to 229 do
      ok (Db.update db t ~table ~key:k ~value:(wide 10 k))
    done;
    Db.commit db t;
    let tl = Db.begin_txn db in
    ok (Db.insert db tl ~table ~key:110 ~value:"loser110")
  in
  let db = setup archive_config in
  run_phase1 db;
  run_tail1 db;
  (* Archive the whole stable prefix — checkpoint and tail1 included — so
     the redo scan cannot stay inside the live log. *)
  let log = (Db.engine db).Engine.log in
  check "mid-tail cut ran" true (Log.archive_to log ~upto:(Log.stable_lsn log));
  run_tail2 db;
  let image = Db.crash db in
  (match Log.archive image.Crash_image.log with
  | Some a -> check "history is split across the cut" true (Archive.segment_count a > 0)
  | None -> Alcotest.fail "no archive in image");
  check "live tail is non-empty" true
    (Log.end_lsn image.Crash_image.log > Log.base_lsn image.Crash_image.log);
  let db_u = setup base_config in
  run_phase1 db_u;
  run_tail1 db_u;
  run_tail2 db_u;
  let expected = expected_of_log (Db.crash db_u).Crash_image.log in
  let inst = Db.recover_instant image in
  let rdb = Db.instant_db inst in
  check "several pages pending at open" true (Db.instant_pending inst >= 4);
  (* One background step first (guaranteeing the drain path fires even if
     the probes cascade through the rest of the tree), then probe reads
     spread across the key ranges: keys 0–15 and 100–109 have history on
     both sides of the cut, 200–239 only in the live tail. *)
  ignore (Db.instant_step inst);
  List.iter (fun key -> ignore (Db.read rdb ~table ~key)) [ 0; 12; 104; 210; 230 ];
  let stats = Db.instant_finish inst in
  (match Db.check_integrity rdb with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "instant over archive: broken B-tree: %s" msg);
  let got = Db.dump_table rdb ~table in
  if got <> expected then
    Alcotest.failf "instant over archive:\n  expected %s\n  got      %s" (show_entries expected)
      (show_entries got);
  check "probe reads replayed pages on demand" true
    (stats.Recovery_stats.pages_ondemand >= 1);
  check "background drain replayed the rest" true
    (stats.Recovery_stats.pages_background >= 1);
  check "served before fully drained" true
    (stats.Recovery_stats.ttft_us < stats.Recovery_stats.drained_us);
  (* The recovered engine's devices start from zero, so any archive reads
     are recovery's own: the redo scan crossed into sealed segments. *)
  check "redo read from the archive device" true
    ((Db.stats rdb).Engine_stats.archive_pages_read > 0)

(* Unsealed segments are outside the durability contract. *)
let test_unsealed_segment_ignored () =
  let a = Archive.create ~page_size:1024 in
  Archive.begin_segment a ~lo:0 ~len:100;
  Archive.append_bytes a ~src:(Bytes.make 40 'x') ~src_off:0 ~len:40;
  check_int "no sealed segments" 0 (Archive.segment_count a);
  check "no coverage" true (Archive.start_lsn a = None && Archive.covered_upto a = 0);
  check "offset inside the open segment is not readable" false (Archive.contains a 10);
  let after_crash = Archive.crash a in
  check_int "crash keeps it unsealed" 0 (Archive.segment_count after_crash);
  (* The next cut discards the residue and re-copies from the same start. *)
  Archive.begin_segment a ~lo:0 ~len:60;
  Archive.append_bytes a ~src:(Bytes.make 60 'y') ~src_off:0 ~len:60;
  Archive.seal a;
  check_int "exactly the new segment" 1 (Archive.segment_count a);
  check_int "covered by the re-cut" 60 (Archive.covered_upto a)

let suite =
  [
    Alcotest.test_case "truncated equals untruncated" `Quick test_truncated_equals_untruncated;
    Alcotest.test_case "crash at every archiving step" `Quick test_crash_during_archiving;
    Alcotest.test_case "corrupt segment fails loudly" `Quick test_corrupt_segment_fails_loudly;
    Alcotest.test_case "restart from archive alone" `Quick test_restart_from_archive_alone;
    Alcotest.test_case "crash preserves the archive" `Quick test_crash_preserves_archive;
    Alcotest.test_case "instant recovery over the archive" `Quick test_instant_over_archive;
    Alcotest.test_case "unsealed segment ignored" `Quick test_unsealed_segment_ignored;
  ]
