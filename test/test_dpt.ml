(* The DPT structure and the three construction algorithms on synthetic
   logs: SQL Server's Algorithm 3, the paper's Algorithm 4 (plus its
   Appendix D variants), and classic ARIES analysis. *)

module Dpt = Deut_core.Dpt
module Dc = Deut_core.Dc
module Engine = Deut_core.Engine
module Config = Deut_core.Config
module Recovery = Deut_core.Recovery
module Recovery_stats = Deut_core.Recovery_stats
module Lr = Deut_wal.Log_record
module Lsn = Deut_wal.Lsn
module Log = Deut_wal.Log_manager

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_dpt_structure () =
  let d = Dpt.create () in
  check_int "empty" 0 (Dpt.size d);
  check "min_rlsn nil when empty" true (Lsn.is_nil (Dpt.min_rlsn d));
  check "first add" true (Dpt.add d ~pid:1 ~lsn:100);
  check "re-add reports existing" false (Dpt.add d ~pid:1 ~lsn:200);
  (match Dpt.find d 1 with
  | Some (rlsn, last) ->
      check_int "rlsn keeps first mention" 100 rlsn;
      check_int "lastLSN raised" 200 last
  | None -> Alcotest.fail "entry missing");
  (* lastLSN is monotone. *)
  ignore (Dpt.add d ~pid:1 ~lsn:150);
  (match Dpt.find d 1 with
  | Some (_, last) -> check_int "lastLSN monotone" 200 last
  | None -> Alcotest.fail "entry missing");
  ignore (Dpt.add d ~pid:2 ~lsn:50);
  check_int "min rlsn" 50 (Dpt.min_rlsn d);
  Dpt.raise_rlsn d ~pid:2 ~to_:80;
  check "raise_rlsn floors" true (Dpt.rlsn d 2 = Some 80);
  Dpt.raise_rlsn d ~pid:2 ~to_:60;
  check "raise_rlsn never lowers" true (Dpt.rlsn d 2 = Some 80);
  Dpt.raise_rlsn d ~pid:99 ~to_:10;
  check "raise of absent is noop" true (Dpt.find d 99 = None);
  Alcotest.(check (list int)) "entries_by_rlsn" [ 2; 1 ] (Dpt.entries_by_rlsn d);
  Alcotest.(check (list (triple int int int)))
    "sorted entries" [ (1, 100, 200); (2, 80, 50) ] (Dpt.to_sorted_list d);
  Dpt.remove d 1;
  check_int "removed" 1 (Dpt.size d)

let update ~lsn:_ ~pid ?(txn = 1) ?(key = 0) () =
  Lr.Update_rec
    {
      txn;
      table = 1;
      key;
      op = Lr.Update;
      before = Some "a";
      after = Some "b";
      pid_hint = pid;
      prev_lsn = Lsn.nil;
    }

let build_log records =
  let log = Log.create ~page_size:4096 in
  let lsns = List.map (fun r -> Log.append log r) records in
  Log.force log;
  (log, Array.of_list lsns)

let test_sql_analysis_basic () =
  (* Pages 1,2,3 updated; 3 updated twice.  The BW window's first write
     happened between 3's two updates (fw between l2 and l3); pages 1 and 3
     were flushed in the window.  Expected: 1 pruned (its only update
     precedes fw); 2 untouched (not in the written set); 3 kept with its
     rLSN floored at fw. *)
  let probe, lsns =
    build_log
      [
        update ~lsn:0 ~pid:1 ();
        update ~lsn:1 ~pid:2 ();
        update ~lsn:2 ~pid:3 ();
        update ~lsn:3 ~pid:3 ();
      ]
  in
  ignore probe;
  let fw = lsns.(3) - 1 in
  let log, lsns =
    build_log
      [
        update ~lsn:0 ~pid:1 ();
        update ~lsn:1 ~pid:2 ();
        update ~lsn:2 ~pid:3 ();
        update ~lsn:3 ~pid:3 ();
        Lr.Bw { written = [| 1; 3 |]; fw_lsn = fw };
      ]
  in
  let stats = Recovery_stats.create () in
  let dpt = Recovery.sql_analysis log ~from:Lsn.nil ~stats in
  check "page 1 pruned (flushed after its last update)" false (Dpt.mem dpt 1);
  check "page 2 keeps its first-mention rlsn" true (Dpt.rlsn dpt 2 = Some lsns.(1));
  (match Dpt.find dpt 3 with
  | Some (rlsn, last) ->
      check_int "page 3 rlsn raised to fw" fw rlsn;
      check_int "page 3 last is the later update" lsns.(3) last
  | None -> Alcotest.fail "page 3 missing");
  check_int "bw counted" 1 (Recovery_stats.snapshot stats).Recovery_stats.bws_seen;
  check_int "dpt size" 2 (Dpt.size dpt)

(* Algorithm 4 needs a DC; a tiny fresh engine provides one and the
   synthetic log carries only Δ records. *)
let small_config =
  { Config.default with Config.page_size = 512; pool_pages = 16; delta_period = 1000 }

let dc_dpt_of ?(bckpt = Lsn.nil) records =
  let log, lsns = build_log records in
  let engine = Engine.fresh small_config in
  let stats = Recovery_stats.create () in
  let from = if Lsn.is_nil bckpt then Lsn.nil else bckpt in
  Dc.dc_recovery engine.Engine.dc ~log ~from ~bckpt ~build_dpt:true ~stats;
  (engine.Engine.dc, lsns, stats)

let delta ~dirty ~written ~fw_lsn ~first_dirty ~tc_lsn ?(dirty_lsns = [||]) () =
  Lr.Delta { dirty; written; fw_lsn; first_dirty; tc_lsn; dirty_lsns }

let test_algorithm4_standard () =
  (* Δ1: pages 1,2,3 dirtied, no flush.  Δ2: 3 re-dirtied and 4 dirtied
     after the first write; 1 flushed. *)
  let dc, _, stats =
    dc_dpt_of
      [
        delta ~dirty:[| 1; 2; 3 |] ~written:[||] ~fw_lsn:Lsn.nil ~first_dirty:3 ~tc_lsn:50 ();
        delta ~dirty:[| 3; 4 |] ~written:[| 1 |] ~fw_lsn:70 ~first_dirty:1 ~tc_lsn:100 ();
      ]
  in
  let dpt = Dc.dpt dc in
  check "page 1 pruned" false (Dpt.mem dpt 1);
  (* Pages from Δ1 get the previous record's TC-LSN (here the bckpt = nil)
     as rLSN — conservative. *)
  check "page 2 kept" true (Dpt.mem dpt 2);
  (match Dpt.find dpt 3 with
  | Some (rlsn, last) ->
      check "page 3 rlsn from first interval" true (rlsn <= 50);
      check_int "page 3 last raised by re-dirty (i < FirstDirty → prevΔ)" 50 last
  | None -> Alcotest.fail "page 3 missing");
  check "page 4 rlsn = FW-LSN (dirtied after first write)" true (Dpt.rlsn dpt 4 = Some 70);
  check_int "Δ records seen" 2 (Recovery_stats.snapshot stats).Recovery_stats.deltas_seen;
  check_int "lastΔ TC-LSN recorded" 100 (Dc.last_delta_tclsn dc);
  check_int "dpt size in stats" (Dpt.size dpt) (Recovery_stats.snapshot stats).Recovery_stats.dpt_size

let test_algorithm4_redirty_not_pruned () =
  (* The paper's subtle case (§4.2): page dirtied both before and after the
     interval's first write, then flushed.  Its lastLSN becomes FW-LSN and
     the strict < test must NOT prune it. *)
  let dc, _, _ =
    dc_dpt_of
      [ delta ~dirty:[| 7; 7 |] ~written:[| 7 |] ~fw_lsn:60 ~first_dirty:1 ~tc_lsn:90 () ]
  in
  let dpt = Dc.dpt dc in
  check "re-dirtied page survives pruning" true (Dpt.mem dpt 7);
  check "its rlsn is floored at FW-LSN" true (Dpt.rlsn dpt 7 = Some 60)

let test_algorithm4_dirtied_before_fw_pruned () =
  (* Dirtied only before the first write, then flushed: pruned. *)
  let dc, _, _ =
    dc_dpt_of
      [ delta ~dirty:[| 5 |] ~written:[| 5 |] ~fw_lsn:60 ~first_dirty:1 ~tc_lsn:90 () ]
  in
  check "flushed-after-update page pruned" false (Dpt.mem (Dc.dpt dc) 5)

let test_algorithm4_bckpt_filter () =
  (* Δ records before the checkpoint (or carrying a TC-LSN at or below it)
     are ignored; the first live Δ's entries get the checkpoint as rLSN. *)
  let records =
    [
      delta ~dirty:[| 1 |] ~written:[||] ~fw_lsn:Lsn.nil ~first_dirty:1 ~tc_lsn:10 ();
      Lr.Begin_ckpt;
      delta ~dirty:[| 2 |] ~written:[||] ~fw_lsn:Lsn.nil ~first_dirty:1 ~tc_lsn:10_000 ();
    ]
  in
  let _, lsns = build_log records in
  let bckpt = lsns.(1) in
  let dc, _, stats = dc_dpt_of ~bckpt records in
  let dpt = Dc.dpt dc in
  check "pre-checkpoint Δ ignored" false (Dpt.mem dpt 1);
  check "post-checkpoint Δ applied" true (Dpt.mem dpt 2);
  check "its rlsn is the checkpoint" true (Dpt.rlsn dpt 2 = Some bckpt);
  check_int "only the live Δ counted" 1 (Recovery_stats.snapshot stats).Recovery_stats.deltas_seen

let test_algorithm4_perfect () =
  (* Appendix D.1: exact dirtying LSNs allow exact rLSNs and SQL-grade
     pruning (strict <, since FW-LSN is an exclusive byte offset). *)
  let dc, _, _ =
    dc_dpt_of
      [
        delta ~dirty:[| 1; 2 |] ~written:[| 1 |] ~fw_lsn:150 ~first_dirty:2 ~tc_lsn:200
          ~dirty_lsns:[| 100; 140 |] ();
      ]
  in
  let dpt = Dc.dpt dc in
  check "flushed page pruned (exact lastLSN ≤ fw)" false (Dpt.mem dpt 1);
  check "kept page has its exact dirtying LSN (not in written set: no floor)" true
    (Dpt.rlsn dpt 2 = Some 140);
  (* An entry updated after fw keeps its exact rlsn. *)
  let dc2, _, _ =
    dc_dpt_of
      [
        delta ~dirty:[| 3 |] ~written:[||] ~fw_lsn:150 ~first_dirty:0 ~tc_lsn:300
          ~dirty_lsns:[| 280 |] ();
      ]
  in
  check "exact rlsn retained" true (Dpt.rlsn (Dc.dpt dc2) 3 = Some 280)

let test_algorithm4_reduced () =
  (* Appendix D.2: no FW-LSN; the written set prunes only entries from
     earlier Δ records. *)
  let dc, _, _ =
    dc_dpt_of
      [
        delta ~dirty:[| 1 |] ~written:[||] ~fw_lsn:Lsn.nil ~first_dirty:1 ~tc_lsn:50 ();
        (* Interval 2: 1 flushed (added earlier → pruned); 2 dirtied and
           flushed within the interval (NOT pruned — that is the price of
           reduced logging). *)
        delta ~dirty:[| 2 |] ~written:[| 1; 2 |] ~fw_lsn:Lsn.nil ~first_dirty:1 ~tc_lsn:120 ();
      ]
  in
  let dpt = Dc.dpt dc in
  check "earlier-interval entry pruned" false (Dpt.mem dpt 1);
  check "same-interval entry conservatively kept" true (Dpt.mem dpt 2);
  check "reduced rlsn is prevΔ TC-LSN" true (Dpt.rlsn dpt 2 = Some 50)

let test_fw_boundary_not_pruned () =
  (* Regression: LSNs are byte offsets, so FW-LSN (an end-of-stable-log) is
     exclusive.  A page whose last update record starts exactly at FW-LSN
     was updated AFTER the interval's first write — the flush cannot have
     captured it, and pruning it loses the update.  Found by the random
     crash-scenario property (a flush slipped between a commit force and
     the next append, so FW-LSN equalled the next record's offset). *)
  let probe, lsns = build_log [ update ~lsn:0 ~pid:5 (); update ~lsn:1 ~pid:5 () ] in
  ignore probe;
  let fw = lsns.(1) in
  (* Algorithm 3 (SQL): page 5 flushed before the record at [fw] existed. *)
  let log, _ =
    build_log
      [ update ~lsn:0 ~pid:5 (); update ~lsn:1 ~pid:5 (); Lr.Bw { written = [| 5 |]; fw_lsn = fw } ]
  in
  let stats = Recovery_stats.create () in
  let dpt = Recovery.sql_analysis log ~from:Lsn.nil ~stats in
  check "boundary record keeps the page in the SQL DPT" true (Dpt.mem dpt 5);
  (match Dpt.find dpt 5 with
  | Some (rlsn, _) -> check "rlsn does not pass the boundary record" true (rlsn <= fw)
  | None -> Alcotest.fail "entry missing");
  (* Algorithm 4, perfect variant (D.1): same boundary. *)
  let dc, _, _ =
    dc_dpt_of
      [
        delta ~dirty:[| 5; 5 |] ~written:[| 5 |] ~fw_lsn:fw ~first_dirty:1 ~tc_lsn:(fw + 500)
          ~dirty_lsns:[| lsns.(0); fw |] ();
      ]
  in
  check "boundary record keeps the page in the Δ DPT" true (Dpt.mem (Dc.dpt dc) 5)

let test_aries_analysis () =
  let ckpt_dpt = Lr.Aries_ckpt_dpt { entries = [| (10, 30, 30); (11, 40, 40) |] } in
  let log, lsns = build_log [ ckpt_dpt; update ~lsn:1 ~pid:12 (); update ~lsn:2 ~pid:10 () ] in
  let stats = Recovery_stats.create () in
  let dpt, redo_start = Recovery.aries_analysis log ~from:Lsn.nil ~stats in
  check "seeded entry kept" true (Dpt.rlsn dpt 11 = Some 40);
  check "scan mention added" true (Dpt.rlsn dpt 12 = Some lsns.(1));
  check "seed rlsn wins over later mention" true (Dpt.rlsn dpt 10 = Some 30);
  check_int "redo starts at min rlsn" 30 redo_start;
  check_int "three entries" 3 (Dpt.size dpt)

let suite =
  [
    Alcotest.test_case "dpt structure" `Quick test_dpt_structure;
    Alcotest.test_case "algorithm 3 (SQL analysis)" `Quick test_sql_analysis_basic;
    Alcotest.test_case "algorithm 4 standard" `Quick test_algorithm4_standard;
    Alcotest.test_case "algorithm 4: re-dirtied page kept" `Quick test_algorithm4_redirty_not_pruned;
    Alcotest.test_case "algorithm 4: flushed page pruned" `Quick
      test_algorithm4_dirtied_before_fw_pruned;
    Alcotest.test_case "algorithm 4: checkpoint filter" `Quick test_algorithm4_bckpt_filter;
    Alcotest.test_case "algorithm 4: perfect DPT (D.1)" `Quick test_algorithm4_perfect;
    Alcotest.test_case "algorithm 4: reduced logging (D.2)" `Quick test_algorithm4_reduced;
    Alcotest.test_case "FW-LSN boundary not pruned (regression)" `Quick test_fw_boundary_not_pruned;
    Alcotest.test_case "ARIES checkpoint analysis" `Quick test_aries_analysis;
  ]
