let () =
  Alcotest.run "deut"
    [
      ("sim", Test_sim.suite);
      ("storage", Test_storage.suite);
      ("wal", Test_wal.suite);
      ("node", Test_node.suite);
      ("btree", Test_btree.suite);
      ("cursor", Test_cursor.suite);
      ("pool", Test_pool.suite);
      ("monitor", Test_monitor.suite);
      ("dpt", Test_dpt.suite);
      ("recovery", Test_recovery.suite);
      ("workload", Test_workload.suite);
      ("engine", Test_engine.suite);
      ("split-log", Test_split_log.suite);
      ("locks", Test_locks.suite);
      ("trace", Test_trace.suite);
      ("crash-points", Test_crash_points.suite);
      ("fuzz-recovery", Test_fuzz_recovery.suite);
      ("archive", Test_archive.suite);
      ("parallel-redo", Test_parallel_redo.suite);
      ("domains", Test_domains.suite);
      ("concurrency", Test_concurrency.suite);
      ("sharding", Test_sharding.suite);
      ("causal", Test_causal.suite);
      ("analysis", Test_analysis.suite);
      ("hotpath", Test_hotpath.suite);
    ]
