(* Codec, log records, and the log manager. *)

module Codec = Deut_wal.Codec
module Lr = Deut_wal.Log_record
module Lsn = Deut_wal.Lsn
module Log = Deut_wal.Log_manager
module Clock = Deut_sim.Clock
module Disk = Deut_sim.Disk

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let test_codec_scalars () =
  let w = Codec.writer () in
  Codec.w_u8 w 0xFE;
  Codec.w_u16 w 0xBEEF;
  Codec.w_u32 w 0xDEADBEEF;
  Codec.w_i64 w (-42);
  Codec.w_bool w true;
  Codec.w_string w "abc";
  Codec.w_opt_string w None;
  Codec.w_opt_string w (Some "");
  Codec.w_u32_array w [| 1; 2; 3 |];
  Codec.w_i64_array w [| -1; max_int |];
  let r = Codec.reader (Codec.contents w) in
  check_int "u8" 0xFE (Codec.r_u8 r);
  check_int "u16" 0xBEEF (Codec.r_u16 r);
  check_int "u32" 0xDEADBEEF (Codec.r_u32 r);
  check_int "i64" (-42) (Codec.r_i64 r);
  check "bool" true (Codec.r_bool r);
  check_str "string" "abc" (Codec.r_string r);
  check "none" true (Codec.r_opt_string r = None);
  check "some empty" true (Codec.r_opt_string r = Some "");
  Alcotest.(check (array int)) "u32 array" [| 1; 2; 3 |] (Codec.r_u32_array r);
  Alcotest.(check (array int)) "i64 array" [| -1; max_int |] (Codec.r_i64_array r);
  check "consumed all" true (Codec.at_end r)

let test_codec_truncation () =
  let w = Codec.writer () in
  Codec.w_string w "hello";
  let full = Codec.contents w in
  let r = Codec.reader (String.sub full 0 6) in
  try
    ignore (Codec.r_string r);
    Alcotest.fail "truncated read must raise"
  with Codec.Truncated _ -> ()

let sample_records =
  [
    Lr.Update_rec
      {
        txn = 7;
        table = 1;
        key = 42;
        op = Lr.Update;
        before = Some "old";
        after = Some "new";
        pid_hint = 17;
        prev_lsn = 900;
      };
    Lr.Update_rec
      {
        txn = 8;
        table = 2;
        key = -5;
        op = Lr.Insert;
        before = None;
        after = Some "";
        pid_hint = 0;
        prev_lsn = Lsn.nil;
      };
    Lr.Update_rec
      {
        txn = 9;
        table = 3;
        key = max_int;
        op = Lr.Delete;
        before = Some "gone";
        after = None;
        pid_hint = 123456;
        prev_lsn = 0;
      };
    Lr.Commit { txn = 3 };
    Lr.Abort { txn = 12 };
    Lr.Clr
      {
        txn = 4;
        table = 1;
        key = 10;
        op = Lr.Insert;
        value = Some "restored";
        pid_hint = 3;
        undo_next = Lsn.nil;
      };
    Lr.Begin_ckpt;
    Lr.End_ckpt { bckpt = 1000; active = [| (1, 555); (9, Lsn.nil) |] };
    Lr.End_ckpt { bckpt = Lsn.nil; active = [||] };
    Lr.Aries_ckpt_dpt { entries = [| (1, 10, 20); (2, 30, 40) |] };
    Lr.Bw { written = [| 5; 6; 7 |]; fw_lsn = 88 };
    Lr.Delta
      {
        dirty = [| 1; 2; 2; 3 |];
        written = [| 2 |];
        fw_lsn = 77;
        first_dirty = 2;
        tc_lsn = 99;
        dirty_lsns = [||];
      };
    Lr.Delta
      {
        dirty = [| 4 |];
        written = [||];
        fw_lsn = Lsn.nil;
        first_dirty = 1;
        tc_lsn = 101;
        dirty_lsns = [| 55 |];
      };
    Lr.Smo { kind = Lr.Leaf_split; pages = [| (3, "abc"); (4, String.make 100 'z') |] };
    Lr.Smo { kind = Lr.Catalog; pages = [||] };
  ]

let test_record_roundtrip () =
  List.iter
    (fun record ->
      let decoded = Lr.decode (Lr.encode record) in
      if decoded <> record then
        Alcotest.failf "roundtrip failed for %s" (Lr.describe record))
    sample_records

let test_redo_view () =
  List.iter
    (fun record ->
      match (record, Lr.redo_view record) with
      | Lr.Update_rec u, Some v ->
          check_int "view key" u.Lr.key v.Lr.rv_key;
          check "view value" true (v.Lr.rv_value = u.Lr.after)
      | Lr.Clr c, Some v ->
          check_int "clr view pid" c.Lr.pid_hint v.Lr.rv_pid;
          check "clr view value" true (v.Lr.rv_value = c.Lr.value)
      | (Lr.Update_rec _ | Lr.Clr _), None -> Alcotest.fail "update/clr must be redoable"
      | _, None -> ()
      | _, Some _ -> Alcotest.fail "non-update records are not redoable")
    sample_records

(* qcheck: arbitrary update records roundtrip. *)
let record_gen =
  let open QCheck2.Gen in
  let op = oneofl [ Lr.Insert; Lr.Update; Lr.Delete ] in
  let opt_str = option (string_size (0 -- 64)) in
  let* txn = 0 -- 1000 and* table = 0 -- 10 and* key = int and* o = op in
  let* before = opt_str and* after = opt_str and* pid = 0 -- 1_000_000 and* prev = -1 -- 10000 in
  return (Lr.Update_rec { txn; table; key; op = o; before; after; pid_hint = pid; prev_lsn = prev })

let prop_roundtrip =
  QCheck2.Test.make ~name:"log record roundtrip (random updates)" ~count:500 record_gen
    (fun r -> Lr.decode (Lr.encode r) = r)

let test_log_append_read () =
  let log = Log.create ~page_size:4096 in
  let lsns = List.map (Log.append log) sample_records in
  check_int "record count" (List.length sample_records) (Log.record_count log);
  List.iter2
    (fun lsn record ->
      let got, _next = Log.read_at log lsn in
      check "read_at returns the record" true (got = record))
    lsns sample_records;
  (* LSNs are byte offsets: strictly increasing, first at the genesis
     (offset 0 is reserved as the fresh-page pLSN sentinel). *)
  check_int "first lsn" Log.genesis (List.hd lsns);
  ignore
    (List.fold_left
       (fun prev lsn ->
         check "lsns increase" true (lsn > prev);
         lsn)
       (-1) lsns)

let test_log_force_semantics () =
  let log = Log.create ~page_size:4096 in
  let l1 = Log.append log (Lr.Commit { txn = 1 }) in
  let l2 = Log.append log (Lr.Commit { txn = 2 }) in
  let _l3 = Log.append log (Lr.Commit { txn = 3 }) in
  check_int "nothing stable yet" Log.genesis (Log.stable_lsn log);
  Log.force_upto log l1;
  check "force_upto covers the record" true (Log.stable_lsn log > l1);
  check "force_upto stops before the next" true (Log.stable_lsn log <= l2);
  Log.force log;
  check_int "force all" (Log.end_lsn log) (Log.stable_lsn log)

let test_log_crash_drops_tail () =
  let log = Log.create ~page_size:4096 in
  let _ = Log.append log (Lr.Commit { txn = 1 }) in
  Log.force log;
  let stable_end = Log.stable_lsn log in
  let _ = Log.append log (Lr.Commit { txn = 2 }) in
  let crashed = Log.crash log in
  check_int "tail dropped" stable_end (Log.end_lsn crashed);
  let seen = ref 0 in
  Log.iter crashed ~from:Lsn.nil (fun _ _ -> incr seen);
  check_int "only stable records visible" 1 !seen

let test_log_iter_range () =
  let log = Log.create ~page_size:4096 in
  let lsns = Array.init 10 (fun i -> Log.append log (Lr.Commit { txn = i })) in
  Log.force log;
  let seen = ref [] in
  Log.iter log ~from:lsns.(4) (fun _ r ->
      match r with Lr.Commit { txn } -> seen := txn :: !seen | _ -> ());
  Alcotest.(check (list int)) "scan from mid-log" [ 4; 5; 6; 7; 8; 9 ] (List.rev !seen);
  let total = Log.fold log ~from:Lsn.nil ~init:0 (fun acc _ _ -> acc + 1) in
  check_int "fold all" 10 total;
  let upto = Log.fold log ~from:Lsn.nil ~upto:lsns.(3) ~init:0 (fun acc _ _ -> acc + 1) in
  check_int "upto is exclusive" 3 upto

let test_log_compact () =
  let log = Log.create ~page_size:4096 in
  let lsns = Array.init 10 (fun i -> Log.append log (Lr.Commit { txn = i })) in
  Log.force log;
  Log.compact log ~keep_from:lsns.(5);
  check_int "base moved" lsns.(5) (Log.base_lsn log);
  (* Retained records still readable at their original LSNs. *)
  let r, _ = Log.read_at log lsns.(7) in
  check "post-compact read" true (r = Lr.Commit { txn = 7 });
  (try
     ignore (Log.read_at log lsns.(2));
     Alcotest.fail "archived offset must raise"
   with Invalid_argument _ -> ());
  (* Appends continue with consistent offsets. *)
  let l = Log.append log (Lr.Commit { txn = 99 }) in
  Log.force log;
  let r, _ = Log.read_at log l in
  check "append after compact" true (r = Lr.Commit { txn = 99 });
  (* A crash copy of a compacted log keeps the base. *)
  let crashed = Log.crash log in
  check_int "crash keeps base" lsns.(5) (Log.base_lsn crashed)

let test_log_charges_disk () =
  let log = Log.create ~page_size:512 in
  for i = 0 to 199 do
    ignore (Log.append log (Lr.Commit { txn = i }))
  done;
  Log.force log;
  let clock = Clock.create () in
  let disk = Disk.create clock in
  Log.attach_read_disk log disk;
  Log.iter log ~from:Lsn.nil (fun _ _ -> ());
  let expected_pages = Log.pages_between log 0 (Log.end_lsn log) in
  check_int "every log page charged once" expected_pages (Disk.counters disk).Disk.pages_read;
  check "scan advanced the clock" true (Clock.now clock > 0.0);
  Log.detach_read_disk log;
  let before = (Disk.counters disk).Disk.pages_read in
  Log.iter log ~from:Lsn.nil (fun _ _ -> ());
  check_int "detached scans are free" before (Disk.counters disk).Disk.pages_read

let test_corruption_detected () =
  let log = Log.create ~page_size:4096 in
  let l0 = Log.append log (Lr.Commit { txn = 1 }) in
  let l1 = Log.append log (Lr.Commit { txn = 2 }) in
  Log.force log;
  Log.corrupt_for_test log l0;
  (try
     ignore (Log.read_at log l0);
     Alcotest.fail "corrupt record must be detected"
   with Log.Corrupt_record l -> check_int "corrupt lsn reported" l0 l);
  (* Other records unaffected. *)
  let r, _ = Log.read_at log l1 in
  check "later record intact" true (r = Lr.Commit { txn = 2 });
  (* Scans surface the corruption too. *)
  try
    Log.iter log ~from:Lsn.nil (fun _ _ -> ());
    Alcotest.fail "scan over corruption must raise"
  with Log.Corrupt_record _ -> ()

let test_pages_between () =
  let log = Log.create ~page_size:100 in
  check_int "empty range" 0 (Log.pages_between log 50 50);
  check_int "within one page" 1 (Log.pages_between log 10 20);
  check_int "spanning boundary" 2 (Log.pages_between log 90 110);
  check_int "exact page end excluded" 1 (Log.pages_between log 0 100)

let suite =
  [
    Alcotest.test_case "codec scalars" `Quick test_codec_scalars;
    Alcotest.test_case "codec truncation" `Quick test_codec_truncation;
    Alcotest.test_case "record roundtrip" `Quick test_record_roundtrip;
    Alcotest.test_case "redo view" `Quick test_redo_view;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    Alcotest.test_case "log append/read" `Quick test_log_append_read;
    Alcotest.test_case "log force semantics" `Quick test_log_force_semantics;
    Alcotest.test_case "log crash drops tail" `Quick test_log_crash_drops_tail;
    Alcotest.test_case "log iter range" `Quick test_log_iter_range;
    Alcotest.test_case "log compact" `Quick test_log_compact;
    Alcotest.test_case "log charges disk" `Quick test_log_charges_disk;
    Alcotest.test_case "log corruption detected" `Quick test_corruption_detected;
    Alcotest.test_case "pages_between" `Quick test_pages_between;
  ]
