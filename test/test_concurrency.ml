(* The multi-client scheduler: conflict/abort/retry convergence, group-commit
   durability under a mid-run crash, and the determinism contract — the same
   seed must produce the identical committed state at any client count. *)

module Db = Deut_core.Db
module Config = Deut_core.Config
module Recovery = Deut_core.Recovery
module Workload = Deut_workload.Workload
module Driver = Deut_workload.Driver
module Client_sched = Deut_workload.Client_sched

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let config ~clients ~group_commit =
  {
    Config.default with
    Config.page_size = 1024;
    pool_pages = 64;
    locking = true;
    shards = 1;
    clients;
    group_commit;
  }

let spec ~rows = { Workload.default with Workload.rows; seed = 11 }

let verified driver db =
  match Driver.verify_recovered driver db with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

(* High contention (few rows, many clients): conflicts must occur, losers
   must abort, back off, and retry — and every ticket still commits. *)
let test_conflict_abort_retry () =
  let driver = Driver.create ~config:(config ~clients:4 ~group_commit:1) (spec ~rows:16) in
  let sched = Driver.run_concurrent driver ~txns:60 in
  Client_sched.flush sched;
  let s = Client_sched.stats sched in
  check_int "every ticket committed" 60 s.Client_sched.committed_txns;
  check "contention produced conflicts" true (s.Client_sched.conflicts > 0);
  check "conflicts produced aborts" true (s.Client_sched.aborts > 0);
  check "retries converged (abort rate < 1)" true (s.Client_sched.abort_rate < 1.0);
  verified driver (Driver.db driver)

(* Crash mid-run with group commit batching across clients: commits still
   queued in the volatile tail are losers; the durable-prefix-aware oracle
   and all five recovery methods must agree on the surviving state. *)
let test_group_commit_crash () =
  let driver = Driver.create ~config:(config ~clients:4 ~group_commit:4) (spec ~rows:200) in
  let sched = Client_sched.create ~oracle:(Driver.oracle driver) (Driver.db driver)
      (Driver.spec driver) in
  Client_sched.run_steps sched ~steps:600;
  check "some tickets committed before the crash" true (Client_sched.commits_done sched > 0);
  let image = Driver.crash driver in
  let digests =
    List.map
      (fun m ->
        let recovered, _ = Db.recover image m in
        verified driver recovered;
        Client_sched.logical_digest recovered)
      Recovery.all_methods
  in
  List.iter
    (fun d -> check_string "all methods recover the same committed prefix" (List.hd digests) d)
    (List.tl digests)

(* The determinism contract: same seed ⇒ byte-identical logical digest and
   identical committed txn/op counts at 1, 4, and 8 clients. *)
let test_determinism_across_client_counts () =
  let run n =
    let driver = Driver.create ~config:(config ~clients:n ~group_commit:2) (spec ~rows:120) in
    let sched = Driver.run_concurrent driver ~txns:50 in
    Client_sched.flush sched;
    verified driver (Driver.db driver);
    let s = Client_sched.stats sched in
    (Client_sched.logical_digest (Driver.db driver), s.Client_sched.committed_txns,
     s.Client_sched.committed_ops)
  in
  let d1, t1, o1 = run 1 in
  let d4, t4, o4 = run 4 in
  let d8, t8, o8 = run 8 in
  check_int "same txns at 1 vs 4 clients" t1 t4;
  check_int "same txns at 1 vs 8 clients" t1 t8;
  check_int "same ops at 1 vs 4 clients" o1 o4;
  check_int "same ops at 1 vs 8 clients" o1 o8;
  check_string "digest invariant 1 vs 4 clients" d1 d4;
  check_string "digest invariant 1 vs 8 clients" d1 d8

(* Mixed workloads (inserts/deletes draw fresh keys from the shared stream)
   keep the invariant too. *)
let test_determinism_mixed_mix () =
  let mixed =
    { (spec ~rows:150) with
      Workload.op_mix = Workload.Mixed { update = 0.5; insert = 0.2; delete = 0.2; read = 0.1 }
    }
  in
  let run n =
    let driver = Driver.create ~config:(config ~clients:n ~group_commit:1) mixed in
    let sched = Driver.run_concurrent driver ~txns:40 in
    Client_sched.flush sched;
    verified driver (Driver.db driver);
    Client_sched.logical_digest (Driver.db driver)
  in
  check_string "mixed-mix digest invariant" (run 1) (run 8)

let suite =
  [
    Alcotest.test_case "conflict, abort, backoff, retry" `Quick test_conflict_abort_retry;
    Alcotest.test_case "group-commit crash mid-run" `Quick test_group_commit_crash;
    Alcotest.test_case "determinism across client counts" `Quick
      test_determinism_across_client_counts;
    Alcotest.test_case "determinism with a mixed op mix" `Quick test_determinism_mixed_mix;
  ]
