(* Crash-point recovery equivalence: capture a crash image at EVERY log
   record boundary of a seeded workload and recover each with every method,
   asserting the recovered B-tree equals the committed prefix of the log,
   key for key.

   Images are captured at append time (store clone + log truncated at the
   boundary) because truncating the final log after the fact is unsound:
   later flushes put post-boundary page images in the stable store, and the
   undo information for them would be missing from the prefix. *)

module Db = Deut_core.Db
module Config = Deut_core.Config
module Engine = Deut_core.Engine
module Tc = Deut_core.Tc
module Recovery = Deut_core.Recovery
module Crash_image = Deut_core.Crash_image
module Lr = Deut_wal.Log_record
module Lsn = Deut_wal.Lsn
module Log = Deut_wal.Log_manager
module Page_store = Deut_storage.Page_store

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let table = 1

let small_config =
  {
    Config.default with
    Config.page_size = 1024;
    pool_pages = 32;
    delta_period = 10;
    delta_capacity = 64;
    shards = 1;
  }

let ok = function Ok () -> () | Error e -> Alcotest.fail (Db.error_to_string e)
let value gen k = Printf.sprintf "v%d.%d" gen k

(* Deterministic workload touching every record type the log can carry:
   auto-commit load, multi-op transactions, B-tree splits (SMO records), a
   checkpoint straddled by activity, an abort (CLRs), deletes, and an
   uncommitted loser at the end. *)
let run_workload db =
  for k = 0 to 15 do
    Db.put db ~table ~key:k ~value:(value 0 k)
  done;
  let t1 = Db.begin_txn db in
  for k = 0 to 4 do
    ok (Db.update db t1 ~table ~key:k ~value:(value 1 k))
  done;
  Db.commit db t1;
  let t2 = Db.begin_txn db in
  for k = 100 to 104 do
    ok (Db.insert db t2 ~table ~key:k ~value:(value 2 k))
  done;
  Db.commit db t2;
  Db.checkpoint db;
  let t3 = Db.begin_txn db in
  for k = 5 to 9 do
    ok (Db.update db t3 ~table ~key:k ~value:(value 3 k))
  done;
  Db.abort db t3;
  let t4 = Db.begin_txn db in
  ok (Db.delete db t4 ~table ~key:1);
  ok (Db.delete db t4 ~table ~key:3);
  Db.commit db t4;
  let t5 = Db.begin_txn db in
  ok (Db.update db t5 ~table ~key:2 ~value:(value 5 2));
  ok (Db.insert db t5 ~table ~key:105 ~value:(value 5 105));
  ok (Db.delete db t5 ~table ~key:0);
  Db.commit db t5;
  Db.checkpoint db;
  let t6 = Db.begin_txn db in
  for k = 10 to 14 do
    ok (Db.update db t6 ~table ~key:k ~value:(value 6 k))
  done;
  Db.commit db t6;
  (* Loser: updates that must NOT survive any crash boundary. *)
  let t7 = Db.begin_txn db in
  ok (Db.update db t7 ~table ~key:4 ~value:"loser4");
  ok (Db.insert db t7 ~table ~key:106 ~value:"loser106")

(* Build the workload with an append hook that snapshots a crash image at
   every record boundary; returns images oldest-first. *)
let build_images () =
  let db = Db.create ~config:small_config () in
  Db.create_table db ~table;
  let engine = Db.engine db in
  let log = engine.Engine.log in
  let images = ref [] in
  Log.set_append_hook log
    (Some
       (fun _lsn ->
         let boundary = Log.end_lsn log in
         images :=
           Crash_image.make ~config:engine.Engine.config
             ~store:(Page_store.clone engine.Engine.store)
             ~log:(Log.crash_at log boundary)
             ~master:(Tc.master engine.Engine.tc) ()
           :: !images));
  let records_before = Db.log_record_count db in
  run_workload db;
  Log.set_append_hook log None;
  (Db.log_record_count db - records_before, List.rev !images)

(* The committed state a prefix of the log implies: buffer each
   transaction's operations in order, fold them into the committed map on
   Commit, drop them on Abort.  CLRs are ignored — a loser's updates and
   its compensations net to nothing. *)
let expected_of_log log =
  let committed = Hashtbl.create 64 in
  let pending = Hashtbl.create 8 in
  Log.iter log ~from:Lsn.nil (fun _lsn record ->
      match record with
      | Lr.Update_rec u when u.Lr.table = table ->
          let prior = Option.value (Hashtbl.find_opt pending u.Lr.txn) ~default:[] in
          Hashtbl.replace pending u.Lr.txn ((u.Lr.key, u.Lr.after) :: prior)
      | Lr.Commit { txn } ->
          List.iter
            (fun (k, after) ->
              match after with
              | Some v -> Hashtbl.replace committed k v
              | None -> Hashtbl.remove committed k)
            (List.rev (Option.value (Hashtbl.find_opt pending txn) ~default:[]));
          Hashtbl.remove pending txn
      | Lr.Abort { txn } -> Hashtbl.remove pending txn
      | Lr.Update_rec _ | Lr.Clr _ | Lr.Begin_ckpt | Lr.End_ckpt _ | Lr.Aries_ckpt_dpt _
      | Lr.Bw _ | Lr.Delta _ | Lr.Smo _ ->
          ());
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) committed [])

let show_entries entries =
  String.concat "; " (List.map (fun (k, v) -> Printf.sprintf "%d=%s" k v) entries)

let test_every_boundary_every_method () =
  let records_appended, images = build_images () in
  check "a substantial boundary set" true (List.length images > 60);
  check_int "one image per log record" records_appended (List.length images);
  List.iteri
    (fun idx image ->
      let expected = expected_of_log image.Crash_image.log in
      List.iter
        (fun m ->
          let recovered, _stats = Db.recover image m in
          (match Db.check_integrity recovered with
          | Ok () -> ()
          | Error msg ->
              Alcotest.failf "boundary %d, %s: broken B-tree: %s" idx
                (Recovery.method_to_string m) msg);
          let got = Db.dump_table recovered ~table in
          if got <> expected then
            Alcotest.failf "boundary %d, %s:\n  expected %s\n  got      %s" idx
              (Recovery.method_to_string m) (show_entries expected) (show_entries got))
        Recovery.all_methods_with_instant)
    images

let test_cross_method_equivalence () =
  (* All methods recovered from the same crash image must converge to the
     same logical state — here the final boundary, which has in-flight
     loser updates and a full history behind it. *)
  let _db, images = build_images () in
  let image = List.nth images (List.length images - 1) in
  let dumps =
    List.map
      (fun m ->
        let recovered, _ = Db.recover image m in
        (m, Db.dump_table recovered ~table))
      Recovery.all_methods_with_instant
  in
  match dumps with
  | [] -> ()
  | (m0, d0) :: rest ->
      List.iter
        (fun (m, d) ->
          if d <> d0 then
            Alcotest.failf "%s and %s disagree:\n  %s\n  %s" (Recovery.method_to_string m0)
              (Recovery.method_to_string m) (show_entries d0) (show_entries d))
        rest;
      check "loser update rolled back everywhere" false
        (List.mem_assoc 106 d0 || List.exists (fun (_, v) -> v = "loser4") d0)

(* Crash *again* in the middle of instant recovery — once while on-demand
   replay is being driven by reads, once partway through the background
   drain — and re-recover.  The double-crash result must be byte-identical
   to recovering the original image once.  Key safety property under test:
   the buffer pool never flushes a page whose redo is still pending (the
   flush hook replays it first), so the second image's stable pages are
   always fully redone and its Δ-derived DPT still covers the rest.  The
   mid-instant captures also must not disturb the live session, which
   finishes afterwards and is compared too. *)
let test_instant_double_crash () =
  let _n, images = build_images () in
  let images = Array.of_list images in
  let n = Array.length images in
  let idxs = List.sort_uniq compare (List.init 8 (fun i -> i * (n - 1) / 7)) in
  List.iter
    (fun idx ->
      let image = images.(idx) in
      let expected = expected_of_log image.Crash_image.log in
      let recheck what db =
        let got = Db.dump_table db ~table in
        if got <> expected then
          Alcotest.failf "boundary %d, %s:\n  expected %s\n  got      %s" idx what
            (show_entries expected) (show_entries got)
      in
      let rerecover what image2 =
        List.iter
          (fun m ->
            let recovered, _ = Db.recover image2 m in
            recheck (Printf.sprintf "%s, re-recovered with %s" what (Recovery.method_to_string m))
              recovered)
          [ Recovery.Log2; Recovery.InstantLog2 ]
      in
      (* (a) crash during on-demand replay: probe reads fault in some
         slices, then the "machine dies" with the rest still pending. *)
      let inst = Db.recover_instant image in
      let db = Db.instant_db inst in
      List.iter (fun key -> ignore (Db.read db ~table ~key)) [ 0; 5; 12; 102 ];
      rerecover "crash during on-demand replay" (Crash_image.capture (Db.engine db));
      ignore (Db.instant_finish inst);
      recheck "session continued after mid-ondemand capture" db;
      (* (b) crash partway through the background drain. *)
      let inst = Db.recover_instant image in
      let db = Db.instant_db inst in
      let half = Db.instant_pending inst / 2 in
      for _ = 1 to half do
        ignore (Db.instant_step inst)
      done;
      rerecover "crash mid background drain" (Crash_image.capture (Db.engine db));
      ignore (Db.instant_finish inst);
      recheck "session continued after mid-drain capture" db)
    idxs

let suite =
  [
    Alcotest.test_case "every boundary, every method" `Quick test_every_boundary_every_method;
    Alcotest.test_case "cross-method equivalence" `Quick test_cross_method_equivalence;
    Alcotest.test_case "instant recovery: double crash" `Quick test_instant_double_crash;
  ]
