(* Command-line driver: run individual experiments from the paper's
   evaluation, or a single detailed crash/recovery cell. *)

open Cmdliner
module Figures = Deut_workload.Figures
module Experiment = Deut_workload.Experiment
module Recovery = Deut_core.Recovery
module Recovery_stats = Deut_core.Recovery_stats
module Config = Deut_core.Config
module Db = Deut_core.Db
module Engine = Deut_core.Engine
module Driver = Deut_workload.Driver
module Report = Deut_workload.Report
module Trace = Deut_obs.Trace

let progress msg = Printf.eprintf "[repro] %s\n%!" msg

let scale_arg =
  let doc = "Divide the paper's sizes (database, cache, checkpoint interval) by $(docv)." in
  Arg.(value & opt int 64 & info [ "s"; "scale" ] ~docv:"N" ~doc)

let cache_arg =
  let doc = "Paper-equivalent cache size in MB (64..2048)." in
  Arg.(value & opt int 512 & info [ "c"; "cache" ] ~docv:"MB" ~doc)

let cache_sizes_arg =
  let doc = "Comma-separated paper-equivalent cache sizes in MB." in
  Arg.(
    value
    & opt (list int) [ 64; 128; 256; 512; 1024; 2048 ]
    & info [ "cache-sizes" ] ~docv:"MBS" ~doc)

let workers_arg =
  let doc = "Simulated parallel redo workers (overrides Config.redo_workers)." in
  Arg.(value & opt (some int) None & info [ "w"; "workers" ] ~docv:"N" ~doc)

let method_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "log0" -> Ok Recovery.Log0
    | "log1" -> Ok Recovery.Log1
    | "log2" -> Ok Recovery.Log2
    | "sql1" -> Ok Recovery.Sql1
    | "sql2" -> Ok Recovery.Sql2
    | "aries" | "aries-ckpt" -> Ok Recovery.Aries_ckpt
    | other -> Error (`Msg (Printf.sprintf "unknown recovery method %S" other))
  in
  Arg.conv (parse, fun fmt m -> Format.pp_print_string fmt (Recovery.method_to_string m))

let fig2_cmd =
  let run scale cache_sizes =
    let cells = Figures.run_fig2 ~scale ~cache_sizes ~progress () in
    print_string (Figures.fig2a cells);
    print_newline ();
    print_string (Figures.fig2b cells);
    print_newline ();
    print_string (Figures.fig2c cells);
    print_newline ();
    print_string (Figures.sec53 cells);
    print_newline ();
    print_string (Figures.costmodel cells)
  in
  Cmd.v
    (Cmd.info "fig2" ~doc:"Figures 2(a)-(c), the §5.3 claims, and the Appendix B cost model")
    Term.(const run $ scale_arg $ cache_sizes_arg)

let fig3_cmd =
  let multipliers_arg =
    Arg.(
      value
      & opt (list int) [ 1; 5; 10 ]
      & info [ "multipliers" ] ~docv:"KS" ~doc:"Checkpoint interval multipliers.")
  in
  let run scale cache multipliers =
    let cells = Figures.run_fig3 ~scale ~cache_mb:cache ~multipliers ~progress () in
    print_string (Figures.fig3 cells)
  in
  Cmd.v
    (Cmd.info "fig3" ~doc:"Figure 3 (Appendix C): checkpoint-interval sweep")
    Term.(const run $ scale_arg $ cache_arg $ multipliers_arg)

let appd_cmd =
  let run scale cache =
    print_string (Figures.appd (Figures.run_appd ~scale ~cache_mb:cache ~progress ()))
  in
  Cmd.v
    (Cmd.info "appd" ~doc:"Appendix D ablations: the DC-logging spectrum")
    Term.(const run $ scale_arg $ cache_arg)

let splitlog_cmd =
  let run scale cache =
    print_string (Figures.split_table (Figures.run_split ~scale ~cache_mb:cache ~progress ()))
  in
  Cmd.v
    (Cmd.info "splitlog" ~doc:"Split-log layout (§4.2) vs the integrated prototype")
    Term.(const run $ scale_arg $ cache_arg)

let workers_cmd =
  let worker_counts_arg =
    Arg.(
      value
      & opt (list int) [ 1; 2; 4; 8 ]
      & info [ "counts" ] ~docv:"NS" ~doc:"Comma-separated worker counts to sweep.")
  in
  let run scale cache counts =
    print_string
      (Figures.workers_table
         (Figures.run_workers ~scale ~cache_sizes:[ cache ] ~workers:counts ~progress ()))
  in
  Cmd.v
    (Cmd.info "workers"
       ~doc:"Parallel-redo sweep: redo time and latency percentiles per worker count")
    Term.(const run $ scale_arg $ cache_arg $ worker_counts_arg)

let clients_cmd =
  let client_counts_arg =
    Arg.(
      value
      & opt (list int) [ 1; 2; 4; 8 ]
      & info [ "counts" ] ~docv:"NS" ~doc:"Comma-separated client counts to sweep.")
  in
  let group_commits_arg =
    Arg.(
      value
      & opt (list int) [ 1; 4 ]
      & info [ "group-commits" ] ~docv:"GS" ~doc:"Comma-separated group-commit batch sizes.")
  in
  let txns_arg =
    Arg.(
      value & opt int 300
      & info [ "t"; "txns" ] ~docv:"N" ~doc:"Committed transactions per cell.")
  in
  let run scale cache counts group_commits txns =
    print_string
      (Figures.concurrency_table
         (Figures.run_concurrency ~scale ~cache_mb:cache ~clients:counts ~group_commits ~txns
            ~progress ()))
  in
  Cmd.v
    (Cmd.info "clients"
       ~doc:
         "Concurrency sweep: simulated multi-client normal execution per (clients, \
          group_commit) cell, with the cross-cell determinism digest check")
    Term.(const run $ scale_arg $ cache_arg $ client_counts_arg $ group_commits_arg $ txns_arg)

let crash_cmd =
  let methods_arg =
    Arg.(
      value
      & opt (list method_conv) Recovery.all_methods
      & info [ "m"; "methods" ] ~docv:"METHODS"
          ~doc:"Recovery methods to run (log0, log1, log2, sql1, sql2, aries).")
  in
  let repeat_arg =
    Arg.(
      value & opt int 1
      & info [ "r"; "repeat" ] ~docv:"N"
          ~doc:
            "Recover N times per method (fresh copies of the same image) and report redo time              mean ± stddev — the paper notes the high run-to-run variance of the prefetching              methods.")
  in
  let run scale cache methods repeat workers =
    progress (Printf.sprintf "building crash at cache %d MB, scale 1/%d" cache scale);
    let checkpoint_mode =
      if List.mem Recovery.Aries_ckpt methods then Deut_core.Config.Aries_fuzzy
      else Deut_core.Config.Penultimate
    in
    let setup = Experiment.paper_setup ~scale ~cache_mb:cache ~checkpoint_mode () in
    let crash = Experiment.build setup in
    Printf.printf
      "crash image: %d db pages, %d dirty of %d cached (%.1f%% of cache), %d Δ / %d BW \
       records, %d updates run\n\n"
      crash.Experiment.db_pages crash.Experiment.dirty_at_crash crash.Experiment.cached_at_crash
      (100.0 *. crash.Experiment.dirty_fraction)
      crash.Experiment.deltas_total crash.Experiment.bws_total crash.Experiment.updates_run;
    List.iter
      (fun m ->
        let stats = Experiment.run_method ?workers crash m in
        Printf.printf "--- %s (verified against the oracle) ---\n%s\n"
          (Recovery.method_to_string m)
          (Recovery_stats.to_string stats);
        if repeat > 1 then begin
          let acc = Deut_sim.Stats.create () in
          Deut_sim.Stats.add acc (Recovery_stats.redo_ms stats);
          for _ = 2 to repeat do
            Deut_sim.Stats.add acc
              (Recovery_stats.redo_ms (Experiment.run_method ?workers crash m))
          done;
          Printf.printf "redo over %d runs: %s ms\n" repeat (Deut_sim.Stats.summary acc)
        end;
        print_newline ())
      methods
  in
  Cmd.v
    (Cmd.info "crash" ~doc:"One crash, recovered side-by-side with full per-method statistics")
    Term.(const run $ scale_arg $ cache_arg $ methods_arg $ repeat_arg $ workers_arg)

let trace_cmd =
  let method_arg =
    Arg.(
      value
      & pos 0 method_conv Recovery.Log2
      & info [] ~docv:"METHOD"
          ~doc:"Recovery method to trace (log0, log1, log2, sql1, sql2, aries).")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"Chrome trace_event JSON output path (default trace_<method>_<cache>.json).")
  in
  let csv_arg =
    Arg.(
      value & flag
      & info [ "csv" ] ~doc:"Also write the flat event list as CSV next to the JSON file.")
  in
  let run scale cache method_ out emit_csv workers =
    progress (Printf.sprintf "building crash at cache %d MB, scale 1/%d" cache scale);
    let checkpoint_mode =
      if method_ = Recovery.Aries_ckpt then Config.Aries_fuzzy else Config.Penultimate
    in
    let setup = Experiment.paper_setup ~scale ~cache_mb:cache ~checkpoint_mode () in
    let crash = Experiment.build setup in
    let config =
      { setup.Experiment.config with Config.tracing = true; trace_capacity = 1 lsl 20 }
    in
    let config =
      match workers with None -> config | Some w -> { config with Config.redo_workers = w }
    in
    progress (Printf.sprintf "recovering with %s, tracing on" (Recovery.method_to_string method_));
    let db, stats = Db.recover ~config crash.Experiment.image method_ in
    (match Driver.verify_recovered crash.Experiment.driver db with
    | Ok () -> ()
    | Error msg ->
        failwith
          (Printf.sprintf "recovery with %s produced wrong state: %s"
             (Recovery.method_to_string method_) msg));
    let tr =
      match Engine.trace (Db.engine db) with
      | Some tr -> tr
      | None -> failwith "tracing was not enabled on the recovery engine"
    in
    let path =
      match out with
      | Some p -> p
      | None ->
          Printf.sprintf "trace_%s_%d.json" (Recovery.method_to_string method_) cache
    in
    let write_file p s =
      let oc = open_out p in
      output_string oc s;
      close_out oc
    in
    write_file path (Trace.to_chrome_json tr);
    Printf.printf "wrote %s (%d events, %d dropped)\n" path (Trace.length tr) (Trace.dropped tr);
    if emit_csv then begin
      let csv_path = Filename.remove_extension path ^ ".csv" in
      write_file csv_path (Report.csv ~header:Trace.csv_header ~rows:(Trace.csv_rows tr));
      Printf.printf "wrote %s\n" csv_path
    end;
    print_newline ();
    print_string
      (Report.table ~title:"Per-phase breakdown (simulated ms)"
         ~header:[ "phase"; "ms" ]
         ~rows:
           [
             [ "analysis"; Report.ms (Recovery_stats.analysis_ms stats) ];
             [ "redo"; Report.ms (Recovery_stats.redo_ms stats) ];
             [ "undo"; Report.ms (Recovery_stats.undo_ms stats) ];
             [ "total"; Report.ms (Recovery_stats.total_ms stats) ];
           ]
         ());
    print_newline ();
    (* Cross-check the trace against the counters: every page fetch and every
       redo candidate must have produced exactly one span. *)
    let fetch_spans = Trace.count tr ~kind:Trace.Span ~name:"page_fetch" () in
    let redo_spans = Trace.count tr ~kind:Trace.Span ~name:"redo_op" () in
    let fetches =
      stats.Recovery_stats.data_page_fetches + stats.Recovery_stats.index_page_fetches
    in
    let candidates = stats.Recovery_stats.redo_candidates in
    Printf.printf "page_fetch spans: %d (stats: %d)\nredo_op spans:    %d (stats: %d)\n"
      fetch_spans fetches redo_spans candidates;
    if Trace.dropped tr > 0 then begin
      Printf.eprintf "FAIL: ring overflowed, %d events dropped — raise trace_capacity\n"
        (Trace.dropped tr);
      exit 1
    end;
    if fetch_spans <> fetches || redo_spans <> candidates then begin
      Printf.eprintf "FAIL: trace spans disagree with Recovery_stats counters\n";
      exit 1
    end;
    print_endline "trace/counter cross-check OK"
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Recover once with virtual-clock tracing on and export a Chrome trace_event JSON \
          (load it in chrome://tracing or Perfetto); validates span counts against \
          Recovery_stats.")
    Term.(const run $ scale_arg $ cache_arg $ method_arg $ out_arg $ csv_arg $ workers_arg)

let () =
  let doc =
    "reproduction of 'Implementing Performance Competitive Logical Recovery' (VLDB 2011)"
  in
  let info = Cmd.info "repro_cli" ~version:"1.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            fig2_cmd;
            fig3_cmd;
            appd_cmd;
            splitlog_cmd;
            workers_cmd;
            clients_cmd;
            crash_cmd;
            trace_cmd;
          ]))
