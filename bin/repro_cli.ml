(* Command-line driver: run individual experiments from the paper's
   evaluation, or a single detailed crash/recovery cell. *)

open Cmdliner
module Figures = Deut_workload.Figures
module Experiment = Deut_workload.Experiment
module Recovery = Deut_core.Recovery
module Recovery_stats = Deut_core.Recovery_stats
module Config = Deut_core.Config
module Db = Deut_core.Db
module Engine = Deut_core.Engine
module Driver = Deut_workload.Driver
module Report = Deut_workload.Report
module Trace = Deut_obs.Trace
module Metrics = Deut_obs.Metrics
module Analysis = Deut_obs.Analysis
module Tuner = Deut_obs.Tuner

let progress msg = Printf.eprintf "[repro] %s\n%!" msg

let write_file p s =
  let oc = open_out p in
  output_string oc s;
  close_out oc

let read_file p =
  let ic = open_in_bin p in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* A dropped event means the profile would describe a truncated run; tell
   the operator exactly what capacity to ask for. *)
let fail_on_overflow tr =
  match Trace.overflow_advice tr with
  | None -> ()
  | Some advice ->
      Printf.eprintf "FAIL: %s\n" advice;
      exit 1

let scale_arg =
  let doc = "Divide the paper's sizes (database, cache, checkpoint interval) by $(docv)." in
  Arg.(value & opt int 64 & info [ "s"; "scale" ] ~docv:"N" ~doc)

let cache_arg =
  let doc = "Paper-equivalent cache size in MB (64..2048)." in
  Arg.(value & opt int 512 & info [ "c"; "cache" ] ~docv:"MB" ~doc)

let cache_sizes_arg =
  let doc = "Comma-separated paper-equivalent cache sizes in MB." in
  Arg.(
    value
    & opt (list int) [ 64; 128; 256; 512; 1024; 2048 ]
    & info [ "cache-sizes" ] ~docv:"MBS" ~doc)

let workers_arg =
  let doc = "Simulated parallel redo workers (overrides Config.redo_workers)." in
  Arg.(value & opt (some int) None & info [ "w"; "workers" ] ~docv:"N" ~doc)

let method_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "log0" -> Ok Recovery.Log0
    | "log1" -> Ok Recovery.Log1
    | "log2" -> Ok Recovery.Log2
    | "sql1" -> Ok Recovery.Sql1
    | "sql2" -> Ok Recovery.Sql2
    | "aries" | "aries-ckpt" -> Ok Recovery.Aries_ckpt
    | "instant" | "instant-log2" -> Ok Recovery.InstantLog2
    | other -> Error (`Msg (Printf.sprintf "unknown recovery method %S" other))
  in
  Arg.conv (parse, fun fmt m -> Format.pp_print_string fmt (Recovery.method_to_string m))

let fig2_cmd =
  let run scale cache_sizes =
    let cells = Figures.run_fig2 ~scale ~cache_sizes ~progress () in
    print_string (Figures.fig2a cells);
    print_newline ();
    print_string (Figures.fig2b cells);
    print_newline ();
    print_string (Figures.fig2c cells);
    print_newline ();
    print_string (Figures.sec53 cells);
    print_newline ();
    print_string (Figures.costmodel cells)
  in
  Cmd.v
    (Cmd.info "fig2" ~doc:"Figures 2(a)-(c), the §5.3 claims, and the Appendix B cost model")
    Term.(const run $ scale_arg $ cache_sizes_arg)

let fig3_cmd =
  let multipliers_arg =
    Arg.(
      value
      & opt (list int) [ 1; 5; 10 ]
      & info [ "multipliers" ] ~docv:"KS" ~doc:"Checkpoint interval multipliers.")
  in
  let run scale cache multipliers =
    let cells = Figures.run_fig3 ~scale ~cache_mb:cache ~multipliers ~progress () in
    print_string (Figures.fig3 cells)
  in
  Cmd.v
    (Cmd.info "fig3" ~doc:"Figure 3 (Appendix C): checkpoint-interval sweep")
    Term.(const run $ scale_arg $ cache_arg $ multipliers_arg)

let appd_cmd =
  let run scale cache =
    print_string (Figures.appd (Figures.run_appd ~scale ~cache_mb:cache ~progress ()))
  in
  Cmd.v
    (Cmd.info "appd" ~doc:"Appendix D ablations: the DC-logging spectrum")
    Term.(const run $ scale_arg $ cache_arg)

let splitlog_cmd =
  let run scale cache =
    print_string (Figures.split_table (Figures.run_split ~scale ~cache_mb:cache ~progress ()))
  in
  Cmd.v
    (Cmd.info "splitlog" ~doc:"Split-log layout (§4.2) vs the integrated prototype")
    Term.(const run $ scale_arg $ cache_arg)

let workers_cmd =
  let worker_counts_arg =
    Arg.(
      value
      & opt (list int) [ 1; 2; 4; 8 ]
      & info [ "counts" ] ~docv:"NS" ~doc:"Comma-separated worker counts to sweep.")
  in
  let run scale cache counts =
    print_string
      (Figures.workers_table
         (Figures.run_workers ~scale ~cache_sizes:[ cache ] ~workers:counts ~progress ()))
  in
  Cmd.v
    (Cmd.info "workers"
       ~doc:"Parallel-redo sweep: redo time and latency percentiles per worker count")
    Term.(const run $ scale_arg $ cache_arg $ worker_counts_arg)

let clients_cmd =
  let client_counts_arg =
    Arg.(
      value
      & opt (list int) [ 1; 2; 4; 8 ]
      & info [ "counts" ] ~docv:"NS" ~doc:"Comma-separated client counts to sweep.")
  in
  let group_commits_arg =
    Arg.(
      value
      & opt (list int) [ 1; 4 ]
      & info [ "group-commits" ] ~docv:"GS" ~doc:"Comma-separated group-commit batch sizes.")
  in
  let txns_arg =
    Arg.(
      value & opt int 300
      & info [ "t"; "txns" ] ~docv:"N" ~doc:"Committed transactions per cell.")
  in
  let run scale cache counts group_commits txns =
    print_string
      (Figures.concurrency_table
         (Figures.run_concurrency ~scale ~cache_mb:cache ~clients:counts ~group_commits ~txns
            ~progress ()))
  in
  Cmd.v
    (Cmd.info "clients"
       ~doc:
         "Concurrency sweep: simulated multi-client normal execution per (clients, \
          group_commit) cell, with the cross-cell determinism digest check")
    Term.(const run $ scale_arg $ cache_arg $ client_counts_arg $ group_commits_arg $ txns_arg)

let shards_cmd =
  let shard_counts_arg =
    Arg.(
      value
      & opt (list int) [ 1; 2; 4; 8 ]
      & info [ "counts" ] ~docv:"NS" ~doc:"Comma-separated shard counts to sweep.")
  in
  let client_counts_arg =
    Arg.(
      value
      & opt (list int) [ 4; 8 ]
      & info [ "clients" ] ~docv:"NS" ~doc:"Comma-separated client counts to sweep.")
  in
  let txns_arg =
    Arg.(
      value & opt int 300
      & info [ "t"; "txns" ] ~docv:"N" ~doc:"Committed transactions per cell.")
  in
  let net_arg =
    Arg.(
      value & flag
      & info [ "net" ]
          ~doc:
            "Route the TC-DC protocol over simulated network links (latency model from \
             DEUT_NET_* / defaults) instead of in-process calls.")
  in
  let run scale cache counts clients txns net =
    print_string
      (Figures.sharding_table
         (Figures.run_sharding ~scale ~cache_mb:cache ~shards:counts ~clients ~txns ~net
            ~progress ()))
  in
  Cmd.v
    (Cmd.info "shards"
       ~doc:
         "Sharding sweep: one TC driving N data components per (shards, clients) cell, \
          with the cross-cell shard-transparency digest check and a single-shard-crash \
          availability scenario per multi-shard cell")
    Term.(
      const run $ scale_arg $ cache_arg $ shard_counts_arg $ client_counts_arg $ txns_arg
      $ net_arg)

let archive_cmd =
  let clients_arg =
    Arg.(
      value & opt int 4
      & info [ "clients" ] ~docv:"N" ~doc:"Simulated concurrent clients driving the workload.")
  in
  let rounds_arg =
    Arg.(
      value & opt int 6
      & info [ "rounds" ] ~docv:"N" ~doc:"Checkpoint + archive-cut rounds to run.")
  in
  let txns_arg =
    Arg.(
      value & opt int 100
      & info [ "t"; "txns" ] ~docv:"N" ~doc:"Committed transactions per round.")
  in
  let run scale cache clients rounds txns =
    print_string
      (Figures.archiving_table
         (Figures.run_archiving ~scale ~cache_mb:cache ~clients ~rounds ~txns_per_round:txns
            ~progress ()))
  in
  Cmd.v
    (Cmd.info "archive"
       ~doc:
         "Log-archiving sweep: the long-running multi-client workload with periodic \
          checkpoint + archive cuts, run with archiving off and on.  Shows the live log \
          staying bounded while logged bytes grow, checks the sealed-coverage durability \
          contract every round, cross-checks the final digests, and restarts from the \
          truncated log + archive with every method (oracle-verified).")
    Term.(const run $ scale_arg $ cache_arg $ clients_arg $ rounds_arg $ txns_arg)

let crash_cmd =
  let methods_arg =
    Arg.(
      value
      & opt (list method_conv) Recovery.all_methods
      & info [ "m"; "methods" ] ~docv:"METHODS"
          ~doc:"Recovery methods to run (log0, log1, log2, sql1, sql2, aries).")
  in
  let repeat_arg =
    Arg.(
      value & opt int 1
      & info [ "r"; "repeat" ] ~docv:"N"
          ~doc:
            "Recover N times per method (fresh copies of the same image) and report redo time              mean ± stddev — the paper notes the high run-to-run variance of the prefetching              methods.")
  in
  let run scale cache methods repeat workers =
    progress (Printf.sprintf "building crash at cache %d MB, scale 1/%d" cache scale);
    let checkpoint_mode =
      if List.mem Recovery.Aries_ckpt methods then Deut_core.Config.Aries_fuzzy
      else Deut_core.Config.Penultimate
    in
    let setup = Experiment.paper_setup ~scale ~cache_mb:cache ~checkpoint_mode () in
    let crash = Experiment.build setup in
    Printf.printf
      "crash image: %d db pages, %d dirty of %d cached (%.1f%% of cache), %d Δ / %d BW \
       records, %d updates run\n\n"
      crash.Experiment.db_pages crash.Experiment.dirty_at_crash crash.Experiment.cached_at_crash
      (100.0 *. crash.Experiment.dirty_fraction)
      crash.Experiment.deltas_total crash.Experiment.bws_total crash.Experiment.updates_run;
    List.iter
      (fun m ->
        let stats = Experiment.run_method ?workers crash m in
        Printf.printf "--- %s (verified against the oracle) ---\n%s\n"
          (Recovery.method_to_string m)
          (Recovery_stats.to_string stats);
        if repeat > 1 then begin
          let acc = Deut_sim.Stats.create () in
          Deut_sim.Stats.add acc (Recovery_stats.redo_ms stats);
          for _ = 2 to repeat do
            Deut_sim.Stats.add acc
              (Recovery_stats.redo_ms (Experiment.run_method ?workers crash m))
          done;
          Printf.printf "redo over %d runs: %s ms\n" repeat (Deut_sim.Stats.summary acc)
        end;
        print_newline ())
      methods
  in
  Cmd.v
    (Cmd.info "crash" ~doc:"One crash, recovered side-by-side with full per-method statistics")
    Term.(const run $ scale_arg $ cache_arg $ methods_arg $ repeat_arg $ workers_arg)

let trace_cmd =
  let method_arg =
    Arg.(
      value
      & pos 0 method_conv Recovery.Log2
      & info [] ~docv:"METHOD"
          ~doc:"Recovery method to trace (log0, log1, log2, sql1, sql2, aries).")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"Chrome trace_event JSON output path (default trace_<method>_<cache>.json).")
  in
  let csv_arg =
    Arg.(
      value & flag
      & info [ "csv" ] ~doc:"Also write the flat event list as CSV next to the JSON file.")
  in
  let run scale cache method_ out emit_csv workers =
    progress (Printf.sprintf "building crash at cache %d MB, scale 1/%d" cache scale);
    let checkpoint_mode =
      if method_ = Recovery.Aries_ckpt then Config.Aries_fuzzy else Config.Penultimate
    in
    let setup = Experiment.paper_setup ~scale ~cache_mb:cache ~checkpoint_mode () in
    let crash = Experiment.build setup in
    let config =
      Config.of_env
        { setup.Experiment.config with Config.tracing = true; trace_capacity = 1 lsl 20 }
    in
    let config =
      match workers with None -> config | Some w -> { config with Config.redo_workers = w }
    in
    progress (Printf.sprintf "recovering with %s, tracing on" (Recovery.method_to_string method_));
    let db, stats = Db.recover ~config crash.Experiment.image method_ in
    (match Driver.verify_recovered crash.Experiment.driver db with
    | Ok () -> ()
    | Error msg ->
        failwith
          (Printf.sprintf "recovery with %s produced wrong state: %s"
             (Recovery.method_to_string method_) msg));
    let tr =
      match Engine.trace (Db.engine db) with
      | Some tr -> tr
      | None -> failwith "tracing was not enabled on the recovery engine"
    in
    let path =
      match out with
      | Some p -> p
      | None ->
          Printf.sprintf "trace_%s_%d.json" (Recovery.method_to_string method_) cache
    in
    write_file path (Trace.to_chrome_json ~metrics:(Engine.metrics (Db.engine db)) tr);
    Printf.printf "wrote %s (%d events, %d dropped)\n" path (Trace.length tr) (Trace.dropped tr);
    if emit_csv then begin
      let csv_path = Filename.remove_extension path ^ ".csv" in
      write_file csv_path (Report.csv ~header:Trace.csv_header ~rows:(Trace.csv_rows tr));
      Printf.printf "wrote %s\n" csv_path
    end;
    print_newline ();
    print_string
      (Report.table ~title:"Per-phase breakdown (simulated ms)"
         ~header:[ "phase"; "ms" ]
         ~rows:
           [
             [ "analysis"; Report.ms (Recovery_stats.analysis_ms stats) ];
             [ "redo"; Report.ms (Recovery_stats.redo_ms stats) ];
             [ "undo"; Report.ms (Recovery_stats.undo_ms stats) ];
             [ "total"; Report.ms (Recovery_stats.total_ms stats) ];
           ]
         ());
    print_newline ();
    (* Cross-check the trace against the counters: every page fetch and every
       redo candidate must have produced exactly one span. *)
    let fetch_spans = Trace.count tr ~kind:Trace.Span ~name:"page_fetch" () in
    let redo_spans = Trace.count tr ~kind:Trace.Span ~name:"redo_op" () in
    let fetches =
      stats.Recovery_stats.data_page_fetches + stats.Recovery_stats.index_page_fetches
    in
    let candidates = stats.Recovery_stats.redo_candidates in
    Printf.printf "page_fetch spans: %d (stats: %d)\nredo_op spans:    %d (stats: %d)\n"
      fetch_spans fetches redo_spans candidates;
    fail_on_overflow tr;
    if fetch_spans <> fetches || redo_spans <> candidates then begin
      Printf.eprintf "FAIL: trace spans disagree with Recovery_stats counters\n";
      exit 1
    end;
    print_endline "trace/counter cross-check OK"
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Recover once with virtual-clock tracing on and export a Chrome trace_event JSON \
          (load it in chrome://tracing or Perfetto); validates span counts against \
          Recovery_stats.")
    Term.(const run $ scale_arg $ cache_arg $ method_arg $ out_arg $ csv_arg $ workers_arg)

(* Shared by analyze/metrics: one traced (or not), oracle-verified recovery
   of the standard Figure-2 crash.  Profiling pins redo_workers/clients to
   1 so the emitted profile is byte-identical regardless of the
   DEUT_REDO_WORKERS / DEUT_CLIENTS environment — a committed baseline must
   not depend on the CI matrix leg that produced it.  DEUT_TRACE_CAP (via
   [Config.of_env]) still applies. *)
let recover_standard ~scale ~cache ~tracing method_ =
  progress (Printf.sprintf "building crash at cache %d MB, scale 1/%d" cache scale);
  let checkpoint_mode =
    if method_ = Recovery.Aries_ckpt then Config.Aries_fuzzy else Config.Penultimate
  in
  let setup = Experiment.paper_setup ~scale ~cache_mb:cache ~checkpoint_mode () in
  let crash = Experiment.build setup in
  let config =
    Config.of_env
      { setup.Experiment.config with Config.tracing; trace_capacity = 1 lsl 20 }
  in
  let config = { config with Config.redo_workers = 1; clients = 1 } in
  progress (Printf.sprintf "recovering with %s%s" (Recovery.method_to_string method_)
       (if tracing then ", tracing on" else ""));
  let db, stats = Db.recover ~config crash.Experiment.image method_ in
  (match Driver.verify_recovered crash.Experiment.driver db with
  | Ok () -> ()
  | Error msg ->
      failwith
        (Printf.sprintf "recovery with %s produced wrong state: %s"
           (Recovery.method_to_string method_) msg));
  (db, stats)

let method_pos_arg =
  Arg.(
    value
    & pos 0 method_conv Recovery.Log2
    & info [] ~docv:"METHOD" ~doc:"Recovery method (log0, log1, log2, sql1, sql2, aries).")

let analyze_cmd =
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Write the profile JSON here.")
  in
  let trace_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:"Also export the Chrome trace_event JSON (with the metrics snapshot embedded).")
  in
  let csv_arg =
    Arg.(
      value & flag
      & info [ "csv" ] ~doc:"Also write the profile as CSV next to the $(b,--out) file.")
  in
  let check_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "check" ] ~docv:"BASELINE"
          ~doc:
            "Compare against a committed baseline profile JSON and exit non-zero when \
             stall-attributed time or fetch counts regress beyond the tolerance.")
  in
  let tolerance_arg =
    Arg.(
      value & opt float 10.0
      & info [ "tolerance" ] ~docv:"PCT"
          ~doc:"Allowed regression, in percent over the baseline (default 10).")
  in
  let run scale cache method_ out trace_out emit_csv check tolerance =
    let db, stats = recover_standard ~scale ~cache ~tracing:true method_ in
    let tr =
      match Engine.trace (Db.engine db) with
      | Some tr -> tr
      | None -> failwith "tracing was not enabled on the recovery engine"
    in
    fail_on_overflow tr;
    let meta =
      [
        ("method", Recovery.method_to_string method_);
        ("cache_mb", string_of_int cache);
        ("scale", string_of_int scale);
      ]
    in
    let profile = Analysis.of_trace ~meta tr in
    print_string (Analysis.render profile);
    print_newline ();
    (* The profile is mined from the trace alone; the counters are kept by
       the engine.  They must agree exactly — same invariant as
       test_analysis.ml, enforced on every CLI run. *)
    let fetches =
      stats.Recovery_stats.data_page_fetches + stats.Recovery_stats.index_page_fetches
    in
    let stall_us =
      stats.Recovery_stats.data_stall_us +. stats.Recovery_stats.index_stall_us
    in
    let mismatches =
      List.filter_map
        (fun (name, got, want) -> if got = want then None else Some (name, got, want))
        [
          ("page fetches", profile.Analysis.fetch_total, fetches);
          ("index fetches", profile.Analysis.fetch_index, stats.Recovery_stats.index_page_fetches);
          ("stalls", profile.Analysis.stall_count, stats.Recovery_stats.stalls);
          ( "prefetch claims",
            profile.Analysis.pf_hit + profile.Analysis.pf_late,
            stats.Recovery_stats.prefetch_hits );
          ("prefetch issued", profile.Analysis.pf_issued, stats.Recovery_stats.prefetch_issued);
          ("redo ops", profile.Analysis.redo_ops, stats.Recovery_stats.redo_candidates);
        ]
    in
    let stall_drift = Float.abs (profile.Analysis.stall_total_us -. stall_us) in
    if mismatches <> [] || stall_drift > 0.01 then begin
      List.iter
        (fun (name, got, want) ->
          Printf.eprintf "FAIL: profile %s = %d, counters say %d\n" name got want)
        mismatches;
      if stall_drift > 0.01 then
        Printf.eprintf "FAIL: profile stall mass %.3f µs, counters say %.3f µs\n"
          profile.Analysis.stall_total_us stall_us;
      exit 1
    end;
    print_endline "profile/counter cross-check OK";
    let json = Analysis.to_json profile in
    (match out with
    | Some path ->
        write_file path json;
        Printf.printf "wrote %s\n" path;
        if emit_csv then begin
          let csv_path = Filename.remove_extension path ^ ".csv" in
          write_file csv_path
            (Report.csv ~header:Analysis.csv_header ~rows:(Analysis.csv_rows profile));
          Printf.printf "wrote %s\n" csv_path
        end
    | None -> ());
    (match trace_out with
    | Some path ->
        write_file path (Trace.to_chrome_json ~metrics:(Engine.metrics (Db.engine db)) tr);
        Printf.printf "wrote %s\n" path
    | None -> ());
    match check with
    | None -> ()
    | Some baseline_path ->
        let baseline =
          match Analysis.of_json (read_file baseline_path) with
          | Ok b -> b
          | Error msg ->
              Printf.eprintf "FAIL: cannot parse baseline %s: %s\n" baseline_path msg;
              exit 1
        in
        let checks = Analysis.check ~baseline ~current:profile ~tolerance_pct:tolerance in
        print_newline ();
        Printf.printf "regression gate vs %s (tolerance +%g%%):\n" baseline_path tolerance;
        print_string (Analysis.check_table checks);
        if not (Analysis.check_ok checks) then begin
          Printf.eprintf "FAIL: profile regressed beyond tolerance\n";
          exit 1
        end;
        print_endline "profile gate OK"
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Recover once with tracing on and mine the trace into a profile: per-phase \
          compute/IO/stall budget, every stall attributed to the device span it waited on, \
          prefetched pages classified hit/late/wasted.  Cross-checks the profile against the \
          engine counters; with $(b,--check), gates against a committed baseline profile.")
    Term.(
      const run $ scale_arg $ cache_arg $ method_pos_arg $ out_arg $ trace_out_arg $ csv_arg
      $ check_arg $ tolerance_arg)

let tune_cmd =
  let ints_opt name doc =
    Arg.(value & opt (some (list int)) None & info [ name ] ~docv:"NS" ~doc)
  in
  let windows_arg = ints_opt "windows" "Comma-separated prefetch_window candidates." in
  let chunks_arg = ints_opt "chunks" "Comma-separated prefetch_chunk candidates." in
  let lookaheads_arg =
    ints_opt "lookaheads" "Comma-separated prefetch_lookahead candidates (SQL2 only)."
  in
  let run scale cache method_ windows chunks lookaheads =
    (match method_ with
    | Recovery.Log2 | Recovery.Sql2 -> ()
    | m ->
        Printf.eprintf "tune: %s does not prefetch; only log2 and sql2 can be tuned\n"
          (Recovery.method_to_string m);
        exit 1);
    let cells =
      Figures.run_tuning ~scale ~cache_sizes:[ cache ] ~methods:[ method_ ] ?windows ?chunks
        ?lookaheads ~progress ()
    in
    print_string (Figures.tuning_table cells)
  in
  Cmd.v
    (Cmd.info "tune"
       ~doc:
         "Sweep prefetch settings for one method at one cache size, score each candidate by \
          its trace-mined profile (stall-attributed time plus late/wasted-prefetch \
          penalties), and print the recommendation table.  Every candidate recovery is \
          oracle-verified.")
    Term.(
      const run $ scale_arg $ cache_arg $ method_pos_arg $ windows_arg $ chunks_arg
      $ lookaheads_arg)

let instant_cmd =
  let min_speedup_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "min-speedup" ] ~docv:"R"
          ~doc:
            "Gate: fail (exit 1) unless time-to-full-recovery is at least $(docv)x the \
             time-to-first-transaction at the smallest cache size.")
  in
  let probes_arg =
    Arg.(
      value & opt int 32
      & info [ "probes" ] ~docv:"N"
          ~doc:"Probe reads served while the background redo is still draining.")
  in
  let run scale cache_sizes probes min_speedup =
    let cells = Figures.run_availability ~scale ~cache_sizes ~probes ~progress () in
    print_string (Figures.availability_table cells);
    match min_speedup with
    | None -> ()
    | Some r -> (
        match
          List.fold_left
            (fun acc (c : Figures.availability_cell) ->
              match acc with
              | Some (b : Figures.availability_cell) when b.Figures.v_cache_mb <= c.Figures.v_cache_mb ->
                  acc
              | _ -> Some c)
            None cells
        with
        | None ->
            Printf.eprintf "FAIL: no availability cells were produced\n";
            exit 1
        | Some smallest ->
            print_newline ();
            if smallest.Figures.v_speedup < r then begin
              Printf.eprintf
                "FAIL: availability gate — %.1fx at %d MB, need >= %.1fx (open %.3f ms, \
                 drained %.3f ms)\n"
                smallest.Figures.v_speedup smallest.Figures.v_cache_mb r
                smallest.Figures.v_ttft_ms smallest.Figures.v_drained_ms;
              exit 1
            end;
            Printf.printf "availability gate OK: %.1fx at %d MB (need >= %.1fx)\n"
              smallest.Figures.v_speedup smallest.Figures.v_cache_mb r)
  in
  Cmd.v
    (Cmd.info "instant"
       ~doc:
         "Instant-recovery availability sweep: per cache size, recover with InstantLog2 and \
          report time-to-first-transaction vs time-to-full-recovery.  Each cell first \
          proves the determinism gate — the drained InstantLog2 state is byte-identical to \
          offline Log2 — then serves probe reads during the staged drain.  With \
          $(b,--min-speedup), acts as a regression gate on the availability win.")
    Term.(const run $ scale_arg $ cache_sizes_arg $ probes_arg $ min_speedup_arg)

let domains_cmd =
  let domains_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "d"; "domains" ] ~docv:"N"
          ~doc:
            "Domains for the parallel run (default: DEUT_DOMAINS when set above 1, else \
             min(4, available cores)).")
  in
  let min_speedup_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "min-speedup" ] ~docv:"R"
          ~doc:
            "Gate: fail (exit 1) unless the parallel sweep finishes at least $(docv)x \
             faster than the sequential one.  Wall-clock speedup tracks the machine's \
             real core count — only gate on hardware with enough idle cores.")
  in
  let run scale cache_sizes domains min_speedup =
    let domains =
      match domains with
      | Some d when d >= 1 -> d
      | _ ->
          let d = Config.default.Config.domains in
          if d > 1 then d else Stdlib.min 4 (Deut_sim.Domain_pool.available_cores ())
    in
    let cores = Deut_sim.Domain_pool.available_cores () in
    progress
      (Printf.sprintf "sweep at 1 then %d domain(s); %d core(s) available" domains cores);
    (* Fresh caches on both sides so the parallel run cannot coast on the
       sequential run's builds. *)
    let sweep d =
      let cache = Experiment.build_cache () in
      let t0 = Unix.gettimeofday () in
      let cells = Figures.run_fig2 ~cache ~scale ~cache_sizes ~progress ~domains:d () in
      (cells, Unix.gettimeofday () -. t0)
    in
    let seq_cells, seq_wall = sweep 1 in
    let par_cells, par_wall = sweep domains in
    List.iter2
      (fun (a : Figures.fig2_cell) (b : Figures.fig2_cell) ->
        if a.Figures.digests <> b.Figures.digests then begin
          Printf.eprintf
            "FAIL: determinism gate — digests diverged at %d MB between 1 and %d domains\n"
            a.Figures.cache_mb domains;
          exit 1
        end)
      seq_cells par_cells;
    (* Domain-parallel redo on one image: the reference scheduler against
       real partitions at every partition count. *)
    let cache_mb = List.fold_left Stdlib.max 64 cache_sizes in
    let setup = Experiment.paper_setup ~scale ~cache_mb () in
    let crash = Experiment.build setup in
    let redo d =
      let config =
        { crash.Experiment.image.Deut_core.Crash_image.config with Config.domains = d }
      in
      let t0 = Unix.gettimeofday () in
      let db, _stats = Db.recover ~config crash.Experiment.image Recovery.Log2 in
      (match Driver.verify_recovered crash.Experiment.driver db with
      | Ok () -> ()
      | Error msg -> failwith (Printf.sprintf "Log2 at %d domains: wrong state: %s" d msg));
      let wall = Unix.gettimeofday () -. t0 in
      (Experiment.store_digest db, Deut_workload.Client_sched.logical_digest db, wall)
    in
    let s1, l1, redo_seq_wall = redo 1 in
    let redo_par_wall = ref redo_seq_wall in
    List.iter
      (fun d ->
        let s, l, w = redo d in
        if d = domains then redo_par_wall := w;
        if s <> s1 || l <> l1 then begin
          Printf.eprintf
            "FAIL: determinism gate — Log2 redo digest diverged at %d partitions\n" d;
          exit 1
        end)
      (List.sort_uniq compare [ 2; 4; 8; domains ]);
    let speedup = if par_wall > 0.0 then seq_wall /. par_wall else 0.0 in
    print_string
      (Report.table ~title:"Real multicore — identical results, wall clock only"
         ~header:[ "measure"; "sequential"; Printf.sprintf "%d domains" domains; "speedup" ]
         ~rows:
           [
             [
               "fig2 sweep (s)";
               Printf.sprintf "%.2f" seq_wall;
               Printf.sprintf "%.2f" par_wall;
               Printf.sprintf "%.2fx" speedup;
             ];
             [
               "Log2 redo (s)";
               Printf.sprintf "%.2f" redo_seq_wall;
               Printf.sprintf "%.2f" !redo_par_wall;
               (if !redo_par_wall > 0.0 then
                  Printf.sprintf "%.2fx" (redo_seq_wall /. !redo_par_wall)
                else "-");
             ];
           ]
         ());
    Printf.printf
      "determinism gate OK: digests byte-identical at 1 and %d domains (harness) and at \
       every redo partition count; %d core(s) available\n"
      domains cores;
    match min_speedup with
    | None -> ()
    | Some r ->
        if speedup < r then begin
          Printf.eprintf "FAIL: domains gate — %.2fx, need >= %.2fx (%d cores available)\n"
            speedup r cores;
          exit 1
        end;
        Printf.printf "domains gate OK: %.2fx (need >= %.2fx)\n" speedup r
  in
  Cmd.v
    (Cmd.info "domains"
       ~doc:
         "Real-multicore determinism and speedup check: run the Figure-2 sweep \
          sequentially and fanned across OS-level domains, prove every cell's store and \
          logical digests byte-identical, then recover one image with domain-parallel \
          redo at every partition count and prove the same.  With $(b,--min-speedup), \
          gates on the harness wall-clock win.")
    Term.(const run $ scale_arg $ cache_sizes_arg $ domains_arg $ min_speedup_arg)

let metrics_cmd =
  let run scale cache method_ =
    let db, _stats = recover_standard ~scale ~cache ~tracing:false method_ in
    print_string (Metrics.render (Engine.metrics (Db.engine db)))
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Recover once and dump the engine's metrics registry — the same snapshot \
          $(b,trace)/$(b,analyze) embed as metadata events in the exported JSON.")
    Term.(const run $ scale_arg $ cache_arg $ method_pos_arg)

let forensics_cmd =
  let seed_arg =
    Arg.(
      required
      & pos 0 (some int) None
      & info [] ~docv:"SEED" ~doc:"Fuzz seed whose crash image to rebuild.")
  in
  let shards_arg =
    Arg.(
      value & opt int 1
      & info [ "shards" ] ~docv:"N"
          ~doc:"Shard count the failing run used (the fuzz suite's DEUT_SHARDS).")
  in
  let run seed shards =
    (* Same generator the fuzz suite uses: the image — flight snapshot
       included — is a pure function of (seed, shards), so this prints
       exactly the black box the failing run crashed with. *)
    let image = Deut_workload.Fuzz.build_image ~shards seed in
    match Deut_core.Crash_image.flight image with
    | Some snap -> print_string (Deut_obs.Flight.render snap)
    | None ->
        Printf.eprintf
          "FAIL: no flight recorder in the image — was it built with DEUT_FLIGHT=0?\n";
        exit 1
  in
  Cmd.v
    (Cmd.info "forensics"
       ~doc:
         "Post-crash forensics for a crash-recovery fuzz seed: rebuild the seed's sampled \
          crash image and dump the flight recorder that rode through the crash — the last \
          N protocol sends/receives, log forces, checkpoints and recovery-phase \
          transitions per component, plus causal chains grouped by message id.  \
          Deterministic: same seed, byte-identical dump.")
    Term.(const run $ seed_arg $ shards_arg)

let () =
  let doc =
    "reproduction of 'Implementing Performance Competitive Logical Recovery' (VLDB 2011)"
  in
  let info = Cmd.info "repro_cli" ~version:"1.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            fig2_cmd;
            fig3_cmd;
            appd_cmd;
            splitlog_cmd;
            workers_cmd;
            clients_cmd;
            shards_cmd;
            archive_cmd;
            crash_cmd;
            trace_cmd;
            analyze_cmd;
            tune_cmd;
            instant_cmd;
            domains_cmd;
            metrics_cmd;
            forensics_cmd;
          ]))
