module Clock = Deut_sim.Clock
module Rng = Deut_sim.Rng
module Trace = Deut_obs.Trace

type params = {
  latency_us : float;
  jitter_us : float;
  loss : float;
  reorder : float;
  timeout_us : float;
}

let default_params =
  { latency_us = 0.0; jitter_us = 0.0; loss = 0.0; reorder = 0.0; timeout_us = 1000.0 }

type counters = {
  mutable messages : int;
  mutable retransmits : int;
  mutable reorders : int;
  mutable delay_us : float;
}

type t = {
  clock : Clock.t;
  params : params;
  rng : Rng.t;
  counters : counters;
  trace : Trace.t option;
  track : int;
}

let create ?trace ?(track = Trace.track_net) ~clock ~params ~seed () =
  {
    clock;
    params;
    rng = Rng.create ~seed;
    counters = { messages = 0; retransmits = 0; reorders = 0; delay_us = 0.0 };
    trace;
    track;
  }

let counters t = t.counters
let params t = t.params

(* One message leg.  Every draw comes from the link's own seeded stream, in
   a fixed order per leg (delay, then loss, then reorder), so a run is
   bit-for-bit repeatable regardless of what else shares the clock.  A lost
   message costs a timeout plus the retransmit's own delay — the sender
   blocks (synchronous RPC), so the charge lands on the calling worker's
   timeline.  A reordered message models queueing behind an unrelated
   burst: it just arrives one extra latency late.

   [mid] is the causal message id of the protocol exchange this leg
   carries (< 0 = none): it is stamped on the leg's span and its loss
   instants so a retransmit can be charged to the request that waited on
   it, and a flow step with that id is dropped mid-span so Chrome draws
   the causal arrow through the wire. *)
let one_way t ?(mid = -1) ~name () =
  let p = t.params in
  let delay () = p.latency_us +. (if p.jitter_us > 0.0 then Rng.float t.rng p.jitter_us else 0.0) in
  let total = ref (delay ()) in
  let args = if mid >= 0 then [ ("mid", mid) ] else [] in
  (if p.loss > 0.0 then
     while Rng.float t.rng 1.0 < p.loss do
       t.counters.retransmits <- t.counters.retransmits + 1;
       (match t.trace with
       | Some tr -> Trace.instant tr ~name:"net_loss" ~cat:"net" ~track:t.track ~args ()
       | None -> ());
       total := !total +. p.timeout_us +. delay ()
     done);
  (if p.reorder > 0.0 && Rng.float t.rng 1.0 < p.reorder then begin
     t.counters.reorders <- t.counters.reorders + 1;
     total := !total +. p.latency_us
   end);
  t.counters.messages <- t.counters.messages + 1;
  t.counters.delay_us <- t.counters.delay_us +. !total;
  let ts0 = Clock.now t.clock in
  Clock.advance t.clock !total;
  match t.trace with
  | Some tr ->
      if mid >= 0 then
        Trace.flow_step tr ~name ~cat:"net" ~track:t.track
          ~ts:(ts0 +. (!total /. 2.0))
          ~id:mid ();
      Trace.span tr ~name ~cat:"net" ~track:t.track ~ts:ts0 ~dur:!total ~args ()
  | None -> ()

let rpc ?flow_id t f req =
  let mid = match flow_id with Some id -> id () | None -> -1 in
  one_way t ~mid ~name:"net_send" ();
  let reply = f req in
  one_way t ~mid ~name:"net_reply" ();
  reply
