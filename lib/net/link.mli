(** A simulated network link on the virtual clock.

    A link is a point-to-point channel with a cost model — fixed latency,
    uniform jitter, loss with timeout-driven retransmit, and reordering
    (modelled as an extra-latency arrival) — driven by its own seeded RNG
    so that every run is bit-for-bit repeatable.  {!rpc} is a synchronous
    request/reply exchange: both legs advance the shared clock on the
    caller's timeline, exactly like a blocking disk IO in {!Deut_sim.Disk}.

    With all-zero parameters a link adds zero simulated time and draws
    nothing from its RNG, so an idle link is observationally absent. *)

type params = {
  latency_us : float;  (** one-way propagation + service time *)
  jitter_us : float;  (** uniform [0, jitter) extra delay per message *)
  loss : float;  (** per-message loss probability in [0, 1) *)
  reorder : float;  (** probability a message queues one extra latency *)
  timeout_us : float;  (** sender retransmit timeout after a loss *)
}

val default_params : params
(** All costs zero; 1 ms retransmit timeout. *)

type counters = {
  mutable messages : int;  (** delivered messages (both legs of an RPC) *)
  mutable retransmits : int;  (** messages lost and re-sent *)
  mutable reorders : int;  (** messages that arrived late *)
  mutable delay_us : float;  (** total simulated time spent on the wire *)
}

type t

val create :
  ?trace:Deut_obs.Trace.t ->
  ?track:int ->
  clock:Deut_sim.Clock.t ->
  params:params ->
  seed:int ->
  unit ->
  t
(** [track] defaults to {!Deut_obs.Trace.track_net}; per-shard links pass
    their shard lane instead. *)

val counters : t -> counters
val params : t -> params

val rpc : ?flow_id:(unit -> int) -> t -> ('req -> 'rep) -> 'req -> 'rep
(** [rpc t serve req] delivers [req] over the link, runs [serve] at the
    far end, and delivers the reply back, advancing the clock for both
    legs (losses cost a timeout each before the retransmit).

    [flow_id], queried once per call, supplies the causal message id of
    the protocol exchange (< 0 = none).  With an id and a trace, each
    leg's [net_send]/[net_reply] span and every [net_loss] instant carry
    a ["mid"] arg — so a retransmit is attributable to the request that
    blocked on it — and each leg emits a Chrome flow step with that id,
    threading the causal arrow TC → wire → shard → wire → TC. *)
