type t = { mutable now_us : float }

let create () = { now_us = 0.0 }
let now t = t.now_us
let now_ms t = t.now_us /. 1000.0

let advance t us =
  if us < 0.0 then invalid_arg "Clock.advance: negative duration";
  t.now_us <- t.now_us +. us

let advance_to t deadline = if deadline > t.now_us then t.now_us <- deadline

let set t us =
  if us < 0.0 then invalid_arg "Clock.set: negative time";
  t.now_us <- us

let reset t = t.now_us <- 0.0

module Cursor = struct
  type clock = t
  type t = { clock : clock; mutable at : float }

  let make ?at clock =
    { clock; at = (match at with Some a -> a | None -> clock.now_us) }

  let time c = c.at
  let enter c = set c.clock c.at
  (* Forward-only: a step may have scheduled the cursor past the shared
     clock (think time, retry backoff) — leaving must not undo that. *)
  let leave c = if c.clock.now_us > c.at then c.at <- c.clock.now_us
  let advance_to c deadline = if deadline > c.at then c.at <- deadline
end
