type t = { mutable now_us : float }

let create () = { now_us = 0.0 }
let now t = t.now_us
let now_ms t = t.now_us /. 1000.0

let advance t us =
  if us < 0.0 then invalid_arg "Clock.advance: negative duration";
  t.now_us <- t.now_us +. us

let advance_to t deadline = if deadline > t.now_us then t.now_us <- deadline

let set t us =
  if us < 0.0 then invalid_arg "Clock.set: negative time";
  t.now_us <- us

let reset t = t.now_us <- 0.0
