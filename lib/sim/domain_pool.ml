type t = { domains : int }

let create ~domains =
  if domains < 1 then invalid_arg "Domain_pool.create: domains must be >= 1";
  { domains }

let size t = t.domains
let available_cores () = Domain.recommended_domain_count ()

(* Spawn-per-batch rather than a persistent worker queue: a [map] spawns at
   most [min size (List.length items)] domains, each pulling item indices
   from a mutex-guarded counter, and joins them all before returning.  Two
   reasons over a long-lived pool: (1) no nested-submission deadlock — a
   task may itself create a pool and [map] (a bench cell running
   domain-parallel redo) without reserving workers; (2) spawn cost
   (~tens of µs) is noise at the granularity we fan out (multi-second bench
   cells, multi-thousand-record redo partitions). *)
let map t f items =
  let arr = Array.of_list items in
  let n = Array.length arr in
  if t.domains <= 1 || n <= 1 then List.map f items
  else begin
    let results = Array.make n None in
    let errors = Array.make n None in
    let next = ref 0 in
    let m = Mutex.create () in
    let take () =
      Mutex.lock m;
      let i = !next in
      if i < n then incr next;
      Mutex.unlock m;
      if i < n then Some i else None
    in
    let worker () =
      let rec loop () =
        match take () with
        | None -> ()
        | Some i ->
            (match f arr.(i) with
            | r -> results.(i) <- Some r
            | exception e ->
                errors.(i) <- Some (e, Printexc.get_raw_backtrace ()));
            loop ()
      in
      loop ()
    in
    let spawned = Stdlib.min t.domains n in
    let handles = Array.init spawned (fun _ -> Domain.spawn worker) in
    Array.iter Domain.join handles;
    (* Re-raise the first failure in input order, so error behaviour is
       independent of domain scheduling. *)
    Array.iter
      (function
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt | None -> ())
      errors;
    Array.to_list (Array.map (function Some r -> r | None -> assert false) results)
  end
