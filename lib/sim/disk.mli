(** Discrete-event model of a single disk (or SSD) with a FIFO queue.

    Service time for a request is a positioning cost ([seek_us], charged
    unless the request starts where the previous one ended) plus a per-page
    transfer cost.  Asynchronous submissions return their completion time on
    the shared {!Clock.t}; the caller stalls by [Clock.advance_to] when it
    actually needs the data.  This is exactly the structure the paper's
    Appendix B cost model assumes: redo time ≈ pages fetched × effective IO
    latency, with prefetching overlapping computation and IO. *)

type params = {
  seek_us : float;  (** positioning cost of a non-sequential access *)
  transfer_us : float;  (** cost of moving one page *)
  sequential_gap : int;
      (** accesses within this many pids of the end of the previous request
          are treated as sequential (no seek) *)
  batch_seek_factor : float;
      (** seek-cost multiplier for elevator-scheduled positioning: pages
          inside one sorted asynchronous batch, and any request that arrives
          while the device is still busy (a non-empty queue lets the head
          schedule the next access rather than seek cold).  A request
          arriving at an idle device always pays the full [seek_us].
          1.0 disables the effect. *)
}

val default_params : params
(** 4 ms seek, 50 µs/page transfer, gap 1, batch factor 0.75 — a 2011-era
    SATA disk, matching the paper's hardware generation. *)

type counters = {
  mutable requests : int;
  mutable pages_read : int;
  mutable pages_written : int;
  mutable seeks : int;
  mutable sequential_requests : int;
}

type t

val create : ?params:params -> Clock.t -> t

val instrument :
  t -> ?trace:Deut_obs.Trace.t -> ?io_hist:Deut_obs.Metrics.histogram -> track:int -> unit -> unit
(** Attach observability sinks.  Every serviced request is recorded as a
    span ([io_read] / [io_write] / [io_block] / [io_batch] / [io_log]) on
    [track] covering service time, and its latency is fed to [io_hist].
    Purely observational: submission timing is unchanged. *)

val params : t -> params
val counters : t -> counters
val reset_counters : t -> unit

val busy_until : t -> float
(** Time at which all queued requests will have completed. *)

val read_sync : t -> pid:int -> unit
(** Submit a one-page read and advance the clock to its completion. *)

val submit_read : t -> pid:int -> float
(** Queue a one-page read; returns its completion time without waiting. *)

val submit_block_read : t -> first_pid:int -> count:int -> float
(** Queue a read of [count] contiguous pages as a single request (the
    paper's 8-page block read-ahead); returns its completion time. *)

val submit_batch_read : t -> int list -> float
(** Queue one asynchronous batch of (not necessarily contiguous) page
    reads.  The batch is served in sorted order: contiguous neighbours pay
    transfer only; jumps pay [batch_seek_factor × seek_us].  Returns the
    completion time of the whole batch. *)

val submit_write : t -> pid:int -> float
(** Queue a one-page write (used by cache flushes); returns completion
    time.  Flushes are fire-and-forget for timing purposes but still occupy
    the disk, delaying reads that queue behind them. *)

val submit_sequential_write : t -> first_pid:int -> count:int -> float
(** Queue a write of [count] contiguous pages as a single request (archive
    segment writes); returns its completion time without waiting.  Like
    {!submit_write}, fire-and-forget: the device stays busy but the caller's
    clock does not advance. *)

val read_sequential_sync : t -> first_pid:int -> count:int -> unit
(** Synchronously read [count] contiguous pages (log scan IO) and advance
    the clock to completion. *)

val drain : t -> unit
(** Advance the clock until the disk is idle (checkpoint completion, end of
    a recovery pass). *)
