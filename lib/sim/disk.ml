type params = {
  seek_us : float;
  transfer_us : float;
  sequential_gap : int;
  batch_seek_factor : float;
}

let default_params =
  { seek_us = 4000.0; transfer_us = 50.0; sequential_gap = 1; batch_seek_factor = 0.75 }

type counters = {
  mutable requests : int;
  mutable pages_read : int;
  mutable pages_written : int;
  mutable seeks : int;
  mutable sequential_requests : int;
}

type t = {
  clock : Clock.t;
  params : params;
  counters : counters;
  mutable free_at : float;  (* when the queue drains *)
  mutable head_pos : int;  (* pid just past the last request served *)
  mutable trace : Deut_obs.Trace.t option;
  mutable track : int;
  mutable io_hist : Deut_obs.Metrics.histogram option;
}

let create ?(params = default_params) clock =
  {
    clock;
    params;
    counters =
      { requests = 0; pages_read = 0; pages_written = 0; seeks = 0; sequential_requests = 0 };
    free_at = 0.0;
    head_pos = -1000;
    trace = None;
    track = 0;
    io_hist = None;
  }

let instrument t ?trace ?io_hist ~track () =
  t.trace <- trace;
  t.io_hist <- io_hist;
  t.track <- track

(* Record one serviced request.  [start] is when the head began moving, so
   the span shows pure service time; queueing delay is visible as the gap
   to the preceding span on the same track. *)
let note t ~ev ~start ~completion ~args =
  (match t.io_hist with
  | Some h -> Deut_obs.Metrics.observe h (completion -. start)
  | None -> ());
  match t.trace with
  | Some tr ->
      Deut_obs.Trace.span tr ~name:ev ~cat:"io" ~track:t.track ~ts:start
        ~dur:(completion -. start) ~args ()
  | None -> ()

let params t = t.params
let counters t = t.counters

let reset_counters t =
  let c = t.counters in
  c.requests <- 0;
  c.pages_read <- 0;
  c.pages_written <- 0;
  c.seeks <- 0;
  c.sequential_requests <- 0

let busy_until t = Float.max t.free_at (Clock.now t.clock)

(* Core queueing step: a request for [count] pages starting at [first_pid]
   begins when the disk is free, pays a seek unless it continues the previous
   transfer, and transfers each page.  A request that arrives while the
   device is still busy joins a non-empty queue, so the head schedules it
   like a batch member and its positioning costs [batch_seek_factor ×
   seek_us]; an arrival at an idle device (queue depth 0 — every synchronous
   miss path, since the caller stalled to the previous completion) pays the
   full cold seek.  Returns the completion time. *)
let submit t ~first_pid ~count =
  let now = Clock.now t.clock in
  let queued = t.free_at > now in
  let start = if queued then t.free_at else now in
  let sequential = abs (first_pid - t.head_pos) <= t.params.sequential_gap in
  let seek =
    if sequential then 0.0
    else if queued then t.params.seek_us *. t.params.batch_seek_factor
    else t.params.seek_us
  in
  let completion = start +. seek +. (float_of_int count *. t.params.transfer_us) in
  t.free_at <- completion;
  t.head_pos <- first_pid + count;
  t.counters.requests <- t.counters.requests + 1;
  if sequential then t.counters.sequential_requests <- t.counters.sequential_requests + 1
  else t.counters.seeks <- t.counters.seeks + 1;
  (start, completion)

let submit_read t ~pid =
  let start, completion = submit t ~first_pid:pid ~count:1 in
  t.counters.pages_read <- t.counters.pages_read + 1;
  note t ~ev:"io_read" ~start ~completion ~args:[ ("pid", pid) ];
  completion

let submit_block_read t ~first_pid ~count =
  let start, completion = submit t ~first_pid ~count in
  t.counters.pages_read <- t.counters.pages_read + count;
  note t ~ev:"io_block" ~start ~completion ~args:[ ("first_pid", first_pid); ("count", count) ];
  completion

let submit_write t ~pid =
  let start, completion = submit t ~first_pid:pid ~count:1 in
  t.counters.pages_written <- t.counters.pages_written + 1;
  note t ~ev:"io_write" ~start ~completion ~args:[ ("pid", pid) ];
  completion

let submit_sequential_write t ~first_pid ~count =
  let start, completion = submit t ~first_pid ~count in
  t.counters.pages_written <- t.counters.pages_written + count;
  note t ~ev:"io_write_seq" ~start ~completion
    ~args:[ ("first_pid", first_pid); ("count", count) ];
  completion

let submit_batch_read t pids =
  match List.sort Int.compare pids with
  | [] -> busy_until t
  | sorted ->
      let start = Float.max t.free_at (Clock.now t.clock) in
      let batch_seek = t.params.seek_us *. t.params.batch_seek_factor in
      let service = ref 0.0 in
      let prev_end = ref t.head_pos in
      List.iter
        (fun pid ->
          let sequential = abs (pid - !prev_end) <= t.params.sequential_gap in
          service := !service +. (if sequential then 0.0 else batch_seek) +. t.params.transfer_us;
          if sequential then
            t.counters.sequential_requests <- t.counters.sequential_requests + 1
          else t.counters.seeks <- t.counters.seeks + 1;
          prev_end := pid + 1)
        sorted;
      let completion = start +. !service in
      t.free_at <- completion;
      t.head_pos <- !prev_end;
      t.counters.requests <- t.counters.requests + 1;
      t.counters.pages_read <- t.counters.pages_read + List.length sorted;
      note t ~ev:"io_batch" ~start ~completion
        ~args:[ ("first_pid", List.hd sorted); ("count", List.length sorted) ];
      completion

let read_sync t ~pid = Clock.advance_to t.clock (submit_read t ~pid)

let read_sequential_sync t ~first_pid ~count =
  let start, completion = submit t ~first_pid ~count in
  t.counters.pages_read <- t.counters.pages_read + count;
  note t ~ev:"io_log" ~start ~completion ~args:[ ("first_pid", first_pid); ("count", count) ];
  Clock.advance_to t.clock completion

let drain t = Clock.advance_to t.clock t.free_at
