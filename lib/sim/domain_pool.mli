(** A fixed-size pool of OCaml domains for embarrassingly-parallel fan-out.

    This is the {e only} source of real OS-level parallelism in the system;
    everything else (redo workers, clients, shards) multiplexes simulated
    timelines onto one OS thread.  Tasks given to [map] must therefore
    share no mutable state — in practice each task owns a whole engine
    (built from a [scaled] setup or instantiated from an immutable crash
    image), so all instrumentation and clocks are domain-private.

    Determinism contract: [map] preserves input order in its result list
    and re-raises the first task failure in input order, so outcomes are
    independent of how the OS schedules the domains. *)

type t

val create : domains:int -> t
(** [domains] is the maximum parallelism; [map] over fewer items spawns
    fewer.  Raises [Invalid_argument] for a count below 1. *)

val size : t -> int

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** Apply [f] to every item, on up to [size] fresh domains spawned for this
    call and joined before it returns.  With a pool of size 1 (or a single
    item) this is [List.map] on the calling domain — the reference path.
    Results come back in input order; if any task raised, the first
    failure (in input order) is re-raised after all domains join. *)

val available_cores : unit -> int
(** [Domain.recommended_domain_count ()] — what the hardware can actually
    run in parallel; reported alongside bench speedups so a 1-core CI
    runner's numbers read as what they are. *)
