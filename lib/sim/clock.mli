(** Virtual clock for discrete-event simulation.

    All components that consume simulated time (the disk model, CPU cost
    accounting in the recovery passes) share one clock.  Time is measured in
    microseconds as a float; experiments report milliseconds. *)

type t

val create : unit -> t
(** A clock starting at time 0. *)

val now : t -> float
(** Current simulated time in microseconds. *)

val now_ms : t -> float
(** Current simulated time in milliseconds. *)

val advance : t -> float -> unit
(** [advance t us] moves the clock forward by [us] microseconds.  Negative
    durations are rejected with [Invalid_argument]. *)

val advance_to : t -> float -> unit
(** [advance_to t deadline] moves the clock to [deadline] if the deadline is
    in the future; otherwise does nothing.  Used to model waiting for an
    asynchronous IO completion. *)

val set : t -> float -> unit
(** [set t us] moves the clock to an absolute time, backward included.
    Parallel replay multiplexes several worker timelines onto the one
    clock: switching to a worker rewinds to that worker's cursor, while
    shared resources (the disk's busy horizon) keep their own monotonic
    state.  Negative times are rejected with [Invalid_argument]. *)

val reset : t -> unit
(** Rewind to time 0 (used when re-running recovery from a crash image). *)
