(** Virtual clock for discrete-event simulation.

    All components that consume simulated time (the disk model, CPU cost
    accounting in the recovery passes) share one clock.  Time is measured in
    microseconds as a float; experiments report milliseconds. *)

type t

val create : unit -> t
(** A clock starting at time 0. *)

val now : t -> float
(** Current simulated time in microseconds. *)

val now_ms : t -> float
(** Current simulated time in milliseconds. *)

val advance : t -> float -> unit
(** [advance t us] moves the clock forward by [us] microseconds.  Negative
    durations are rejected with [Invalid_argument]. *)

val advance_to : t -> float -> unit
(** [advance_to t deadline] moves the clock to [deadline] if the deadline is
    in the future; otherwise does nothing.  Used to model waiting for an
    asynchronous IO completion. *)

val set : t -> float -> unit
(** [set t us] moves the clock to an absolute time, backward included.
    Parallel replay multiplexes several worker timelines onto the one
    clock: switching to a worker rewinds to that worker's cursor, while
    shared resources (the disk's busy horizon) keep their own monotonic
    state.  Negative times are rejected with [Invalid_argument]. *)

val reset : t -> unit
(** Rewind to time 0 (used when re-running recovery from a crash image). *)

(** A private timeline multiplexed onto the shared clock.

    Parallel redo workers and simulated clients each own a cursor: a
    scheduler picks the cursor with the smallest time, [enter]s it (the
    clock jumps to that timeline), runs one step — which may advance the
    clock through CPU charges and IO waits — and [leave]s, capturing the
    new position.  Shared resources (the disk's busy horizon) keep their
    own monotonic state, so overlapping IO across timelines is modelled
    correctly. *)
module Cursor : sig
  type clock = t

  type t

  val make : ?at:float -> clock -> t
  (** A cursor positioned at [at] (default: the clock's current time). *)

  val time : t -> float
  (** The cursor's position, in microseconds. *)

  val enter : t -> unit
  (** Set the shared clock to this cursor's position. *)

  val leave : t -> unit
  (** Capture the shared clock's position into the cursor, forward
      only: a position already scheduled past the clock (think time,
      retry backoff) is kept. *)

  val advance_to : t -> float -> unit
  (** Push the cursor forward to a deadline (no-op if already past it):
      think time, retry backoff, or waking a parked client at the
      committer's time. *)
end
