module Page = Deut_storage.Page
module Page_store = Deut_storage.Page_store
module Disk = Deut_sim.Disk
module Clock = Deut_sim.Clock
module Lsn = Deut_wal.Lsn

type hooks = {
  on_dirty : pid:int -> lsn:Lsn.t -> unit;
  on_flush : pid:int -> unit;
  ensure_stable : tc_lsn:Lsn.t -> dc_lsn:Lsn.t -> unit;
}

let null_hooks =
  {
    on_dirty = (fun ~pid:_ ~lsn:_ -> ());
    on_flush = (fun ~pid:_ -> ());
    ensure_stable = (fun ~tc_lsn:_ ~dc_lsn:_ -> ());
  }

type counters = {
  mutable hits : int;
  mutable misses : int;
  mutable prefetch_hits : int;
  mutable prefetch_issued : int;
  mutable stalls : int;
  mutable stall_us : float;
  mutable evictions : int;
  mutable flushes : int;
}

type frame = {
  mutable pid : int;  (* -1 when free *)
  mutable page : Page.t;
  mutable dirty : bool;
  mutable epoch : bool;
  mutable ref_bit : bool;
  mutable pins : int;
  mutable dirtied_at : int;  (* update tick of the clean->dirty transition *)
}

type t = {
  capacity : int;
  block_pages : int;
  lazy_writer_every : int;  (* flush one dirty frame per this many misses; 0 = off *)
  lazy_writer_min_age : int;  (* only flush frames dirtied at least this many updates ago *)
  mutable lazy_writer_enabled : bool;
  mutable miss_ticks : int;
  mutable update_ticks : int;
  store : Page_store.t;
  disk : Disk.t;
  clock : Clock.t;
  frames : frame array;
  by_pid : (int, int) Hashtbl.t;
  mutable free_slots : int list;
  mutable hand : int;
  mutable writer_hand : int;
  mutable hooks : hooks;
  mutable cur_epoch : bool;
  in_flight : (int, float * int) Hashtbl.t;  (* pid -> completion, issuing lane *)
  mutable lane_in_flight : int array;  (* per-lane slice of [in_flight], kept in step *)
  counters : counters;
  mutable trace : Deut_obs.Trace.t option;
  mutable stall_hist : Deut_obs.Metrics.histogram option;
  mutable stall_track : int option;  (* trace lane override for stall spans *)
  mutable fetch_index : bool;  (* current fetches belong to an index traversal *)
  mutable redo_hook : (int -> unit) option;  (* instant recovery's replay-on-touch *)
}

let dummy_page = Page.create ~page_size:Page.header_size ~pid:(-1) Page.Free

let create ~capacity ?(block_pages = 8) ?(lazy_writer_every = 0) ?(lazy_writer_min_age = 0)
    ~store ~disk ~clock () =
  if capacity < 4 then invalid_arg "Buffer_pool.create: capacity must be at least 4";
  let frame _ =
    {
      pid = -1;
      page = dummy_page;
      dirty = false;
      epoch = false;
      ref_bit = false;
      pins = 0;
      dirtied_at = 0;
    }
  in
  {
    capacity;
    block_pages;
    lazy_writer_every;
    lazy_writer_min_age;
    lazy_writer_enabled = true;
    miss_ticks = 0;
    update_ticks = 0;
    store;
    disk;
    clock;
    frames = Array.init capacity frame;
    by_pid = Hashtbl.create (2 * capacity);
    free_slots = List.init capacity Fun.id;
    hand = 0;
    writer_hand = 0;
    hooks = null_hooks;
    cur_epoch = false;
    in_flight = Hashtbl.create 64;
    lane_in_flight = Array.make 8 0;
    counters =
      {
        hits = 0;
        misses = 0;
        prefetch_hits = 0;
        prefetch_issued = 0;
        stalls = 0;
        stall_us = 0.0;
        evictions = 0;
        flushes = 0;
      };
    trace = None;
    stall_hist = None;
    stall_track = None;
    fetch_index = false;
    redo_hook = None;
  }

let instrument t ?trace ?stall_hist () =
  t.trace <- trace;
  t.stall_hist <- stall_hist

let set_stall_track t track = t.stall_track <- track
let set_fetch_index t b = t.fetch_index <- b
let set_hooks t hooks = t.hooks <- hooks
let capacity t = t.capacity
let block_pages t = t.block_pages
let counters t = t.counters

let reset_counters t =
  let c = t.counters in
  c.hits <- 0;
  c.misses <- 0;
  c.prefetch_hits <- 0;
  c.prefetch_issued <- 0;
  c.stalls <- 0;
  c.stall_us <- 0.0;
  c.evictions <- 0;
  c.flushes <- 0

let size t = Hashtbl.length t.by_pid

let dirty_count t =
  Array.fold_left (fun n f -> if f.pid >= 0 && f.dirty then n + 1 else n) 0 t.frames

let contains t pid = Hashtbl.mem t.by_pid pid

let is_dirty t pid =
  match Hashtbl.find_opt t.by_pid pid with None -> false | Some slot -> t.frames.(slot).dirty

(* The prefetcher polls per-lane occupancy on every step, so the per-lane
   counts are maintained on submit/claim/discard instead of folding the
   whole table per call. *)
let in_flight_count ?lane t =
  match lane with
  | None -> Hashtbl.length t.in_flight
  | Some l -> if l < Array.length t.lane_in_flight then t.lane_in_flight.(l) else 0

let note_in_flight t lane n =
  let len = Array.length t.lane_in_flight in
  if lane >= len then begin
    let grown = Array.make (Stdlib.max (lane + 1) (2 * len)) 0 in
    Array.blit t.lane_in_flight 0 grown 0 len;
    t.lane_in_flight <- grown
  end;
  t.lane_in_flight.(lane) <- t.lane_in_flight.(lane) + n

(* Remove [pid] from the in-flight set (claimed by a fetch or overwritten by
   an install), keeping the lane counters in step. *)
let drop_in_flight t pid =
  match Hashtbl.find_opt t.in_flight pid with
  | None -> ()
  | Some (_, lane) ->
      Hashtbl.remove t.in_flight pid;
      t.lane_in_flight.(lane) <- t.lane_in_flight.(lane) - 1

let set_redo_hook t hook = t.redo_hook <- hook

(* Instant recovery's replay-on-touch.  The hook fires on every [get]
   (hits included: analysis installs dirty images straight into the cache)
   and at the top of every frame flush, so a page can neither be served to
   a client nor written back to the store with redo still pending.  The
   hook is re-entrant by construction — the replayer removes the page from
   its pending set before applying — so the nested [get]s it performs
   settle immediately. *)
let run_redo_hook t pid = match t.redo_hook with None -> () | Some h -> h pid

let flush_frame t f =
  run_redo_hook t f.pid;
  t.hooks.ensure_stable ~tc_lsn:(Page.plsn f.page) ~dc_lsn:(Page.dc_plsn f.page);
  Page_store.write t.store f.page;
  ignore (Disk.submit_write t.disk ~pid:f.pid);
  f.dirty <- false;
  t.counters.flushes <- t.counters.flushes + 1;
  (match t.trace with
  | Some tr ->
      Deut_obs.Trace.instant tr ~name:"flush" ~cat:"cache" ~track:Deut_obs.Trace.track_cache
        ~args:[ ("pid", f.pid) ] ()
  | None -> ());
  t.hooks.on_flush ~pid:f.pid

(* CLOCK second-chance sweep.  Pinned frames are skipped; a dirty victim is
   flushed (WAL first) before its frame is reused. *)
let evict_one t =
  let attempts = ref 0 in
  let limit = 2 * t.capacity in
  let rec sweep () =
    if !attempts > limit then failwith "Buffer_pool: all frames pinned, cannot evict";
    incr attempts;
    let f = t.frames.(t.hand) in
    t.hand <- (t.hand + 1) mod t.capacity;
    if f.pid < 0 || f.pins > 0 then sweep ()
    else if f.ref_bit then begin
      f.ref_bit <- false;
      sweep ()
    end
    else begin
      if f.dirty then flush_frame t f;
      Hashtbl.remove t.by_pid f.pid;
      let slot = if t.hand = 0 then t.capacity - 1 else t.hand - 1 in
      f.pid <- -1;
      f.page <- dummy_page;
      t.counters.evictions <- t.counters.evictions + 1;
      slot
    end
  in
  sweep ()

let take_slot t =
  match t.free_slots with
  | slot :: rest ->
      t.free_slots <- rest;
      slot
  | [] -> evict_one t

let install_frame t page ~dirty =
  let slot =
    match Hashtbl.find_opt t.by_pid page.Page.pid with Some slot -> slot | None -> take_slot t
  in
  let f = t.frames.(slot) in
  f.pid <- page.Page.pid;
  f.page <- page;
  f.dirty <- dirty;
  f.epoch <- t.cur_epoch;
  f.ref_bit <- true;
  f.pins <- (if Hashtbl.mem t.by_pid page.Page.pid then f.pins else 0);
  Hashtbl.replace t.by_pid page.Page.pid slot;
  f

(* Background-writer step: flush (without evicting) the next aged dirty
   frame in sweep order.  Models SQL Server's lazy writer, which cleans the
   cache under read pressure — the source of the flush events that let the
   DPT prune (§3.3, §4.1).  Two properties matter for the paper's shapes:
   it is driven by {e misses}, so a cache much larger than the working set
   sees little cleaning and its dirty set (and DPT) keeps growing — the
   large-cache regime where "the DPT is not very effective" (§5.3) — and it
   flushes only pages dirtied at least [lazy_writer_min_age] updates ago,
   so the flush lands in a later Δ/BW window than the page's last update
   and the FW-LSN pruning rules can actually remove the entry. *)
let flush_one_dirty t =
  let rec go steps =
    if steps >= t.capacity then false
    else begin
      let f = t.frames.(t.writer_hand) in
      t.writer_hand <- (t.writer_hand + 1) mod t.capacity;
      if
        f.pid >= 0 && f.dirty && f.pins = 0
        && t.update_ticks - f.dirtied_at >= t.lazy_writer_min_age
      then begin
        flush_frame t f;
        true
      end
      else go (steps + 1)
    end
  in
  go 0

let set_lazy_writer_enabled t enabled = t.lazy_writer_enabled <- enabled

let lazy_writer_tick t =
  if t.lazy_writer_enabled && t.lazy_writer_every > 0 then begin
    t.miss_ticks <- t.miss_ticks + 1;
    if t.miss_ticks mod t.lazy_writer_every = 0 then ignore (flush_one_dirty t)
  end

let stall_until t completion =
  let now = Clock.now t.clock in
  if completion > now then begin
    t.counters.stalls <- t.counters.stalls + 1;
    t.counters.stall_us <- t.counters.stall_us +. (completion -. now);
    (match t.stall_hist with
    | Some h -> Deut_obs.Metrics.observe h (completion -. now)
    | None -> ());
    (match t.trace with
    | Some tr ->
        let track = Option.value t.stall_track ~default:Deut_obs.Trace.track_cache in
        Deut_obs.Trace.span tr ~name:"stall" ~cat:"cache" ~track ~ts:now
          ~dur:(completion -. now) ()
    | None -> ());
    Clock.advance_to t.clock completion
  end

(* One "page_fetch" span per cache fill that went to disk (miss or
   prefetched page claimed), covering submit-to-install.  Recovery's span
   accounting relies on fetch spans ≡ misses + prefetch_hits.  [index]
   marks fetches inside an index traversal ([set_fetch_index]); [late]
   marks a claimed prefetch the cursor had to wait for — the span's [dur]
   carries the same fact (a zero-duration prefetched fetch arrived in
   time), the instant makes it scannable. *)
let note_fetch t ~pid ~start ~prefetched ~late =
  match t.trace with
  | Some tr ->
      Deut_obs.Trace.span tr ~name:"page_fetch" ~cat:"cache" ~track:Deut_obs.Trace.track_cache
        ~ts:start
        ~dur:(Clock.now t.clock -. start)
        ~args:
          [
            ("pid", pid);
            ("prefetched", if prefetched then 1 else 0);
            ("index", if t.fetch_index then 1 else 0);
          ]
        ();
      if prefetched then
        Deut_obs.Trace.instant tr ~name:"prefetch_hit" ~cat:"cache"
          ~track:Deut_obs.Trace.track_cache
          ~args:[ ("pid", pid); ("late", if late then 1 else 0) ]
          ()
  | None -> ()

let get t ?(pin = false) pid =
  run_redo_hook t pid;
  let f =
    match Hashtbl.find_opt t.by_pid pid with
    | Some slot ->
        let f = t.frames.(slot) in
        f.ref_bit <- true;
        t.counters.hits <- t.counters.hits + 1;
        f
    | None -> (
        match Hashtbl.find_opt t.in_flight pid with
        | Some (completion, _lane) ->
            (* The page was prefetched; wait (if needed) for that IO. *)
            let start = Clock.now t.clock in
            let late = completion > start in
            stall_until t completion;
            drop_in_flight t pid;
            t.counters.prefetch_hits <- t.counters.prefetch_hits + 1;
            let f = install_frame t (Page_store.read t.store pid) ~dirty:false in
            note_fetch t ~pid ~start ~prefetched:true ~late;
            f
        | None ->
            t.counters.misses <- t.counters.misses + 1;
            lazy_writer_tick t;
            let start = Clock.now t.clock in
            let completion = Disk.submit_read t.disk ~pid in
            stall_until t completion;
            let f = install_frame t (Page_store.read t.store pid) ~dirty:false in
            note_fetch t ~pid ~start ~prefetched:false ~late:false;
            f)
  in
  if pin then f.pins <- f.pins + 1;
  f.page

let get_if_cached t pid =
  match Hashtbl.find_opt t.by_pid pid with
  | Some slot ->
      let f = t.frames.(slot) in
      f.ref_bit <- true;
      Some f.page
  | None -> None

let pin t pid =
  match Hashtbl.find_opt t.by_pid pid with
  | Some slot -> t.frames.(slot).pins <- t.frames.(slot).pins + 1
  | None -> invalid_arg "Buffer_pool.pin: page not cached"

let unpin t pid =
  match Hashtbl.find_opt t.by_pid pid with
  | Some slot ->
      let f = t.frames.(slot) in
      if f.pins <= 0 then invalid_arg "Buffer_pool.unpin: page not pinned";
      f.pins <- f.pins - 1
  | None -> invalid_arg "Buffer_pool.unpin: page not cached"

let new_page t kind =
  let pid = Page_store.allocate t.store kind in
  let page = Page.create ~page_size:(Page_store.page_size t.store) ~pid kind in
  ignore (install_frame t page ~dirty:false);
  page

let install t ?event_lsn page ~dirty =
  (* Installing an image over a still-in-flight prefetch discards that
     fetch unread — the profiler counts it toward the wasted class. *)
  (match t.trace with
  | Some tr when Hashtbl.mem t.in_flight page.Page.pid ->
      Deut_obs.Trace.instant tr ~name:"prefetch_unused" ~cat:"cache"
        ~track:Deut_obs.Trace.track_cache ~args:[ ("pid", page.Page.pid) ] ()
  | _ -> ());
  drop_in_flight t page.Page.pid;
  let f = install_frame t page ~dirty in
  if dirty then
    let lsn = Option.value event_lsn ~default:(Page.plsn page) in
    t.hooks.on_dirty ~pid:f.pid ~lsn

let mark_dirty_common t ~pid ~stamp ~event_lsn =
  match Hashtbl.find_opt t.by_pid pid with
  | None -> invalid_arg "Buffer_pool.mark_dirty: page not cached"
  | Some slot ->
      let f = t.frames.(slot) in
      stamp f.page;
      t.update_ticks <- t.update_ticks + 1;
      if not f.dirty then begin
        f.dirty <- true;
        f.epoch <- t.cur_epoch;
        f.dirtied_at <- t.update_ticks;
        t.hooks.on_dirty ~pid ~lsn:event_lsn
      end

let mark_dirty t ~pid ~lsn =
  mark_dirty_common t ~pid ~stamp:(fun page -> Page.set_plsn page lsn) ~event_lsn:lsn

let mark_dirty_dc t ~pid ~dc_lsn ~event_lsn =
  mark_dirty_common t ~pid ~stamp:(fun page -> Page.set_dc_plsn page dc_lsn) ~event_lsn

let prefetch t ?(lane = 0) pids =
  let wanted =
    List.filter (fun pid -> not (Hashtbl.mem t.by_pid pid || Hashtbl.mem t.in_flight pid)) pids
  in
  let budget = t.capacity - size t - in_flight_count t in
  let rec take n = function
    | [] -> []
    | _ when n <= 0 -> []
    | pid :: rest -> pid :: take (n - 1) rest
  in
  let accepted = take budget wanted in
  (* One asynchronous batch: the disk serves it in elevator order, so
     contiguous pages coalesce into block reads and scattered pages pay the
     cheaper queued-seek cost. *)
  if accepted <> [] then begin
    let completion = Disk.submit_batch_read t.disk accepted in
    List.iter (fun pid -> Hashtbl.replace t.in_flight pid (completion, lane)) accepted;
    note_in_flight t lane (List.length accepted);
    t.counters.prefetch_issued <- t.counters.prefetch_issued + List.length accepted;
    match t.trace with
    | Some tr ->
        Deut_obs.Trace.instant tr ~name:"prefetch_issue" ~cat:"cache"
          ~track:Deut_obs.Trace.track_cache
          ~args:[ ("count", List.length accepted); ("first_pid", List.hd accepted) ]
          ();
        (* Per-page instants let the profiler reconcile issued pages with
           claimed ones without guessing the batch's membership. *)
        List.iter
          (fun pid ->
            Deut_obs.Trace.instant tr ~name:"prefetch_page" ~cat:"cache"
              ~track:Deut_obs.Trace.track_cache
              ~args:[ ("pid", pid); ("lane", lane) ]
              ())
          accepted
    | None -> ()
  end

let flush_page t pid =
  match Hashtbl.find_opt t.by_pid pid with
  | None -> invalid_arg "Buffer_pool.flush_page: page not cached"
  | Some slot ->
      let f = t.frames.(slot) in
      if f.dirty then flush_frame t f

let flush_all_dirty t =
  Array.iter (fun f -> if f.pid >= 0 && f.dirty then flush_frame t f) t.frames

let begin_checkpoint_epoch t = t.cur_epoch <- not t.cur_epoch

let flush_previous_epoch t =
  Array.iter
    (fun f -> if f.pid >= 0 && f.dirty && f.epoch <> t.cur_epoch then flush_frame t f)
    t.frames

let iter_frames t f =
  Array.iter (fun fr -> if fr.pid >= 0 then f fr.page ~dirty:fr.dirty) t.frames

let dirty_pids t =
  Array.fold_left (fun acc f -> if f.pid >= 0 && f.dirty then f.pid :: acc else acc) [] t.frames
