(** The database cache: a fixed number of page frames over the stable page
    store, with CLOCK replacement.

    Responsibilities that matter to the paper:

    - {b Dirty tracking.}  A clean→dirty transition fires [on_dirty] — this
      event stream is exactly what the DC's Δ-log monitor records (§4.1) and
      what classic ARIES checkpointing samples (§3.1).
    - {b Flush tracking.}  Every flush fires [on_flush], feeding the
      WrittenSet of both BW-log records (§3.3) and Δ-log records.
    - {b WAL enforcement.}  Before a dirty page is written, [ensure_stable]
      is called with its pLSN so the log can be forced first.
    - {b Penultimate checkpointing.}  Each frame carries the SQL-Server
      checkpoint-epoch bit (§3.2): dirtying stamps the current epoch;
      a checkpoint flips the epoch and flushes only frames dirtied in the
      previous one.
    - {b Prefetch.}  [prefetch] groups contiguous pids into block reads
      (up to [block_pages] per IO) and tracks them in-flight; a later [get]
      that finds its page in flight stalls only until that IO's completion
      — the mechanism behind Log2/SQL2.

    Timing: misses stall the shared clock on the data disk; hits are free
    (CPU costs are charged by the recovery drivers, not here). *)

type hooks = {
  on_dirty : pid:int -> lsn:Deut_wal.Lsn.t -> unit;
  on_flush : pid:int -> unit;
  ensure_stable : tc_lsn:Deut_wal.Lsn.t -> dc_lsn:Deut_wal.Lsn.t -> unit;
      (** WAL: called with the page's two pLSNs before it is written; the
          DC forces the TC log through [tc_lsn] and its own log through
          [dc_lsn] (the same log, forced twice, in the integrated layout). *)
}

val null_hooks : hooks

type counters = {
  mutable hits : int;
  mutable misses : int;
  mutable prefetch_hits : int;  (** gets satisfied by an in-flight prefetch *)
  mutable prefetch_issued : int;  (** pages submitted by [prefetch] *)
  mutable stalls : int;  (** gets that had to wait for the disk *)
  mutable stall_us : float;  (** total simulated wait time *)
  mutable evictions : int;
  mutable flushes : int;
}

type t

val create :
  capacity:int ->
  ?block_pages:int ->
  ?lazy_writer_every:int ->
  ?lazy_writer_min_age:int ->
  store:Deut_storage.Page_store.t ->
  disk:Deut_sim.Disk.t ->
  clock:Deut_sim.Clock.t ->
  unit ->
  t
(** [lazy_writer_every] (default 0 = off): flush one dirty frame per this
    many cache misses — a miss-pressure-driven background writer like SQL
    Server's lazy writer.  [lazy_writer_min_age] (default 0): only flush
    frames dirtied at least that many updates ago, so the flush lands in a
    later Δ/BW window than the page's last update and stays prunable. *)

val instrument :
  t -> ?trace:Deut_obs.Trace.t -> ?stall_hist:Deut_obs.Metrics.histogram -> unit -> unit
(** Attach observability sinks.  Emits on the cache track: a [page_fetch]
    span per miss or claimed prefetch (submit → install, with [prefetched]
    and [index] args), a [stall] span per wait on the disk (also fed to
    [stall_hist]), [prefetch_issue] (one per batch) and [prefetch_page]
    (one per submitted pid) instants, [prefetch_hit] (with a [late] arg —
    the cursor reached the page before its IO completed) and [flush]
    instants, and [prefetch_unused] when an install discards a
    still-in-flight prefetch unread.  Purely observational. *)

val set_hooks : t -> hooks -> unit
val capacity : t -> int
val block_pages : t -> int
val counters : t -> counters
val reset_counters : t -> unit

val size : t -> int
(** Number of occupied frames. *)

val dirty_count : t -> int
val contains : t -> int -> bool
val is_dirty : t -> int -> bool

val get : t -> ?pin:bool -> int -> Deut_storage.Page.t
(** Return the cached page, waiting for an in-flight prefetch or performing
    a synchronous read on a miss.  [pin] (default false) protects the frame
    from eviction until [unpin]. *)

val get_if_cached : t -> int -> Deut_storage.Page.t option
(** A hit or an already-completed in-flight read; never does IO and never
    stalls. *)

val pin : t -> int -> unit
val unpin : t -> int -> unit

val new_page : t -> Deut_storage.Page.kind -> Deut_storage.Page.t
(** Allocate a pid in the store and a zeroed frame for it.  The frame is
    clean until the caller logs an operation and calls [mark_dirty]. *)

val install : t -> ?event_lsn:Deut_wal.Lsn.t -> Deut_storage.Page.t -> dirty:bool -> unit
(** Place a page image in the cache (DC recovery installing an SMO page
    image), evicting if needed.  Replaces any cached version.  A dirty
    install fires [on_dirty] with [event_lsn] (default: the image's TC
    pLSN). *)

val mark_dirty : t -> pid:int -> lsn:Deut_wal.Lsn.t -> unit
(** Record that a logged transactional operation with the given LSN just
    modified the page: sets its (TC) pLSN, and on a clean→dirty transition
    stamps the current checkpoint epoch and fires [on_dirty]. *)

val mark_dirty_dc : t -> pid:int -> dc_lsn:Deut_wal.Lsn.t -> event_lsn:Deut_wal.Lsn.t -> unit
(** Same for a DC (structure-modification) record: sets the DC-domain pLSN
    instead.  [event_lsn] is the TC-domain value reported to [on_dirty]
    (the record's own LSN in the integrated layout; the TC end-of-stable-log
    under a separate DC log, so Δ-record rLSNs stay in one domain). *)

val prefetch : t -> ?lane:int -> int list -> unit
(** Submit asynchronous reads for the pids not already cached or in flight,
    coalescing contiguous runs into block IOs.  Never evicts pinned frames;
    if the cache is too full to accept more in-flight pages, the remainder
    of the list is dropped (prefetch is best-effort, as in the paper where
    over-eager prefetch just causes page swaps).  [lane] (default 0) tags
    the submitted pages with the issuing prefetch pipeline; parallel redo
    gives each worker its own lane so per-worker windows can be gated
    independently.  A page prefetched on any lane satisfies any [get]. *)

val in_flight_count : ?lane:int -> t -> int
(** Pages submitted but not yet claimed; with [lane], only those issued by
    that pipeline. *)

val set_stall_track : t -> int option -> unit
(** Override the trace lane for subsequent [stall] spans ([None] restores
    the cache track).  Parallel redo points this at the active worker's
    lane so the trace shows which worker waited. *)

val set_fetch_index : t -> bool -> unit
(** Mark subsequent fetches as index (vs data) traffic: [page_fetch] spans
    carry an [index] arg while set.  [Dc.tracked_index] flips this around
    B-tree traversals so the trace attributes the fetch split the same way
    the counters do. *)

val set_redo_hook : t -> (int -> unit) option -> unit
(** Instant recovery's replay-on-touch hook.  While set, the hook runs
    with the page id at the top of every [get] (hits included — analysis
    installs dirty images straight into the cache) and before every frame
    flush (eviction, lazy writer, checkpoint, explicit), so a page can
    neither be served nor written back while its redo is still pending.
    The hook must be re-entrant: the [get]s it performs run it again. *)

val set_lazy_writer_enabled : t -> bool -> unit
(** Recovery drivers switch the background writer off during their passes
    (a recovering system defers cleaning until it is open for business) and
    back on afterwards. *)

val flush_one_dirty : t -> bool
(** Background-writer step: flush (without evicting) the next dirty
    unpinned frame in sweep order; [false] if none exists.  Models the
    lazy writer whose flush activity feeds the WrittenSets that let the
    DPT prune. *)

val flush_page : t -> int -> unit
(** Force the page's image to the store (WAL first); fires [on_flush]. *)

val flush_all_dirty : t -> unit

val begin_checkpoint_epoch : t -> unit
(** Flip the epoch bit: pages dirtied from now on belong to the new epoch
    (§3.2). *)

val flush_previous_epoch : t -> unit
(** Flush every frame still dirty from before the last epoch flip — the
    penultimate checkpoint's flush phase. *)

val iter_frames : t -> (Deut_storage.Page.t -> dirty:bool -> unit) -> unit

val dirty_pids : t -> int list
(** Pids of all dirty frames — ground truth for DPT safety tests. *)
