(** The TC↔DC wire protocol: the §4.1 control operations as first-class,
    typed messages.

    The TC never calls into a data component directly — every interaction
    is a {!request} sent through an {!endpoint} and a {!reply} coming
    back.  The requests are exactly the narrow interface the paper
    describes: [Prepare]/[Apply] for data operations, [Read] for lookups,
    [Eosl] (end of stable log) and [Rssp] (redo-scan start point) for the
    two control operations, table management, and the redo entry points
    the recovery drivers drive a remote DC with.  The reverse direction —
    the only call a DC makes against the TC — is [Force_upto], the
    WAL-force a page flush needs on the TC's log.

    Two transports implement an endpoint: the in-process one
    ({!Dc.handle} behind a closure — today's behavior, zero simulated
    overhead) and a networked one ({!networked}) that carries each
    request/reply pair over a {!Deut_net.Link}, charging latency, loss
    and reordering on the virtual clock.  Because the protocol is the
    {e only} channel between the components, the two are observationally
    identical except for time.

    A {!router} is the TC-side map of the sharded key space: [shards]
    endpoints, one per data component, and the pure striping function
    that assigns every [(table, key)] to one of them. *)

module Lr = Deut_wal.Log_record
module Lsn = Deut_wal.Lsn

type request =
  | Prepare of { table : int; key : int; op : Lr.op_kind; value_len : int }
      (** route to the leaf, splitting as needed; returns the
          before-image for the TC's log record *)
  | Apply of {
      table : int;
      pid : int;
      key : int;
      op : Lr.op_kind;
      value : string option;
      lsn : Lsn.t;
      tick : bool;  (** count toward the Δ monitor's update period
                        (normal execution) or not (undo compensation) *)
    }
  | Read of { table : int; key : int }
  | Eosl of Lsn.t  (** end of stable log — after every TC log force *)
  | Rssp of Lsn.t  (** redo-scan start point — checkpoint flush request *)
  | Create_table of int
  | Has_table of int
  | Runtime_dpt  (** the DC's runtime dirty-page table (ARIES fuzzy ckpt) *)
  | Redo_logical of {
      lsn : Lsn.t;
      view : Lr.redo_view;
      use_dpt : bool;
      stats : Recovery_stats.cells;
    }
  | Redo_physiological of {
      lsn : Lsn.t;
      view : Lr.redo_view;
      use_dpt : bool;
      stats : Recovery_stats.cells;
    }
  | Redo_smo of { lsn : Lsn.t; smo : Lr.smo; dpt_test : bool; stats : Recovery_stats.cells }

(* Stable short name per request constructor, used by the causal-tracing
   span names ("req:apply", "dc:apply"), the flight recorder and the
   stall→message attribution in [Analysis] — keep in sync with all
   three. *)
let request_tag = function
  | Prepare _ -> "prepare"
  | Apply _ -> "apply"
  | Read _ -> "read"
  | Eosl _ -> "eosl"
  | Rssp _ -> "rssp"
  | Create_table _ -> "create_table"
  | Has_table _ -> "has_table"
  | Runtime_dpt -> "runtime_dpt"
  | Redo_logical _ -> "redo_logical"
  | Redo_physiological _ -> "redo_physiological"
  | Redo_smo _ -> "redo_smo"

type reply =
  | Prepared of Deut_btree.Btree.write_target
  | Value of string option
  | Known of bool
  | Dpt_entries of (int * Lsn.t * Lsn.t) array
  | Ack

(* The DC→TC direction: WAL-force on the TC log, with the new
   end-of-stable-log in the reply. *)
type tc_request = Force_upto of Lsn.t
type tc_reply = Forced of Lsn.t

type endpoint = { shard : int; call : request -> reply }
type tc_endpoint = { tc_call : tc_request -> tc_reply }

exception Unavailable of int
(** Raised by an endpoint whose data component is crashed and not yet
    recovered.  [Db] maps it to the [Shard_down] error on the data path;
    siblings keep serving. *)

exception Protocol_error of string

let protocol_error what =
  raise (Protocol_error (Printf.sprintf "Dc_access.%s: reply does not match request" what))

(* {2 Typed wrappers} — one per request, collapsing the reply match so
   callers read like the direct calls they replaced. *)

let prepare ep ~table ~key ~op ~value_len =
  match ep.call (Prepare { table; key; op; value_len }) with
  | Prepared wt -> wt
  | _ -> protocol_error "prepare"

let apply ep ~table ~pid ~key ~op ~value ~lsn ~tick =
  match ep.call (Apply { table; pid; key; op; value; lsn; tick }) with
  | Ack -> ()
  | _ -> protocol_error "apply"

let read ep ~table ~key =
  match ep.call (Read { table; key }) with
  | Value v -> v
  | _ -> protocol_error "read"

let eosl ep lsn = match ep.call (Eosl lsn) with Ack -> () | _ -> protocol_error "eosl"
let rssp ep lsn = match ep.call (Rssp lsn) with Ack -> () | _ -> protocol_error "rssp"

let create_table ep ~table =
  match ep.call (Create_table table) with Ack -> () | _ -> protocol_error "create_table"

let has_table ep ~table =
  match ep.call (Has_table table) with Known b -> b | _ -> protocol_error "has_table"

let runtime_dpt ep =
  match ep.call Runtime_dpt with Dpt_entries e -> e | _ -> protocol_error "runtime_dpt"

let redo_logical ep ~lsn ~view ~use_dpt ~stats =
  match ep.call (Redo_logical { lsn; view; use_dpt; stats }) with
  | Ack -> ()
  | _ -> protocol_error "redo_logical"

let redo_physiological ep ~lsn ~view ~use_dpt ~stats =
  match ep.call (Redo_physiological { lsn; view; use_dpt; stats }) with
  | Ack -> ()
  | _ -> protocol_error "redo_physiological"

let redo_smo ep ~lsn ~smo ~dpt_test ~stats =
  match ep.call (Redo_smo { lsn; smo; dpt_test; stats }) with
  | Ack -> ()
  | _ -> protocol_error "redo_smo"

let force_upto tc lsn =
  match tc.tc_call (Force_upto lsn) with Forced stable -> stable

(* {2 Transports} *)

let networked ?flow_id link ep =
  { ep with call = (fun req -> Deut_net.Link.rpc ?flow_id link ep.call req) }

let networked_tc link tc =
  { tc_call = (fun req -> Deut_net.Link.rpc link tc.tc_call req) }

(* {2 Routing} *)

type router = {
  shards : int;
  endpoints : endpoint array;
  route : table:int -> key:int -> int;
}

(* Key striping: shard = key mod shards.  Table-blind so a table spans
   every shard; pure and stable so the TC, the recovery drivers and the
   tests all agree on placement without coordination. *)
let striped ~shards = fun ~table:_ ~key -> if shards = 1 then 0 else key mod shards

let make_router endpoints =
  let shards = Array.length endpoints in
  { shards; endpoints; route = striped ~shards }

let endpoint_for r ~table ~key = r.endpoints.(r.route ~table ~key)

let iter_endpoints r f = Array.iter f r.endpoints

(* Broadcast a control message to every shard that is up: a crashed shard
   misses EOSL notifications while down (it has no activity to stamp with
   them) and is re-seeded with the current stable LSN when it recovers. *)
let broadcast_eosl r lsn =
  iter_endpoints r (fun ep -> try eosl ep lsn with Unavailable _ -> ())
