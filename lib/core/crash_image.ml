(** What survives a crash: the stable page store, the stable log prefix,
    and the master record (last completed checkpoint) — per shard.

    A captured image is immutable here: every recovery run instantiates its
    own deep copies, so the five methods of §5.2 can be compared
    side-by-side from the {e same} crash — the paper's controlled
    methodology.

    The scalar [store]/[dc_log] fields are shard 0 (the whole engine when
    [shards = 1]); [extra_shards] carries the stable state of shards
    [1 .. n-1].  The TC log is shared: there is one commit order however
    many data components there are. *)

module Page_store = Deut_storage.Page_store
module Log_manager = Deut_wal.Log_manager
module Lsn = Deut_wal.Lsn
module Flight = Deut_obs.Flight

type shard_image = {
  sh_store : Page_store.t;
  sh_dc_log : Log_manager.t;  (* every sibling shard runs the split layout *)
}

type t = {
  config : Config.t;
  store : Page_store.t;
  log : Log_manager.t;  (* TC log, truncated to the stable prefix *)
  dc_log : Log_manager.t option;  (* shard 0's own log in the split layout *)
  master : Lsn.t;
  extra_shards : shard_image array;  (* shards 1..n-1; empty when [shards = 1] *)
  flight : Flight.snapshot option;
      (* the flight recorder's last-moments snapshot: not recovery input,
         but forensic evidence [repro_cli forensics] prints after the fact *)
}

(* Single-shard images (the common case, and what the crash-point tests
   hand-assemble): no siblings. *)
let make ~config ~store ~log ?dc_log ?flight ~master () =
  { config; store; log; dc_log; master; extra_shards = [||]; flight }

let capture (engine : Engine.t) =
  let extra_shards =
    Array.init
      (Engine.shard_count engine - 1)
      (fun i ->
        let sh = Engine.shard engine (i + 1) in
        {
          sh_store = Page_store.clone sh.Engine.s_store;
          sh_dc_log = Log_manager.crash sh.Engine.s_dc_log;
        })
  in
  {
    config = engine.Engine.config;
    store = Page_store.clone engine.Engine.store;
    log = Log_manager.crash engine.Engine.log;
    dc_log =
      (if Engine.split engine then Some (Log_manager.crash engine.Engine.dc_log) else None);
    master = Tc.master engine.Engine.tc;
    extra_shards;
    flight = Option.map Flight.snapshot (Engine.flight engine);
  }

let config t = t.config
let master t = t.master
let flight t = t.flight
let shard_count t = Array.length t.extra_shards + 1

let instantiate ?config t =
  let config = Option.value config ~default:t.config in
  (* A config override may retune cache sizes etc., but the log layout is a
     property of what was logged: recovering a split image as integrated
     would silently drop the DC log (and vice versa would look for one that
     does not exist).  Likewise the shard count: striping placed every key,
     so the image can only be recovered at the width it was written. *)
  (match (t.dc_log, config.Config.log_layout) with
  | Some _, Config.Split | None, Config.Integrated -> ()
  | Some _, Config.Integrated ->
      invalid_arg "Crash_image.instantiate: split-log image cannot be recovered as integrated"
  | None, Config.Split ->
      invalid_arg "Crash_image.instantiate: integrated image cannot be recovered as split");
  if Stdlib.max 1 config.Config.shards <> shard_count t then
    invalid_arg
      (Printf.sprintf "Crash_image.instantiate: image has %d shard(s), config asks for %d"
         (shard_count t) config.Config.shards);
  let dc_log = Option.map Log_manager.crash t.dc_log in
  let extra_shards =
    if Array.length t.extra_shards = 0 then None
    else
      Some
        (Array.map
           (fun si -> (Page_store.clone si.sh_store, Log_manager.crash si.sh_dc_log))
           t.extra_shards)
  in
  Engine.assemble ?dc_log ?extra_shards config ~store:(Page_store.clone t.store)
    ~log:(Log_manager.crash t.log)

let log_bytes t = Log_manager.end_lsn t.log

let stable_pages t =
  Array.fold_left
    (fun acc si -> acc + Page_store.stable_count si.sh_store)
    (Page_store.stable_count t.store) t.extra_shards
