module Lr = Deut_wal.Log_record
module Lsn = Deut_wal.Lsn
module Ivec = Deut_sim.Ivec

type t = {
  config : Config.t;
  log_append : Lr.t -> Lsn.t;
  stable_lsn : unit -> Lsn.t;
  trace : Deut_obs.Trace.t option;
  (* Δ-record state *)
  dirty : Ivec.t;
  dirty_lsns : Ivec.t;  (* Perfect mode only *)
  written : Ivec.t;
  mutable fw_lsn : Lsn.t;
  mutable first_dirty : int;  (* |dirty| at first flush; max_int = no flush yet *)
  (* BW-record state *)
  bw_written : Ivec.t;
  mutable bw_fw_lsn : Lsn.t;
  mutable updates_since_emit : int;
  (* ARIES runtime DPT *)
  runtime : (int, Lsn.t) Hashtbl.t;
  (* counters *)
  mutable deltas : int;
  mutable bws : int;
  mutable delta_bytes : int;
  mutable bw_bytes : int;
}

let create ?trace ~config ~log_append ~stable_lsn () =
  {
    config;
    log_append;
    stable_lsn;
    trace;
    dirty = Ivec.create ();
    dirty_lsns = Ivec.create ();
    written = Ivec.create ();
    fw_lsn = Lsn.nil;
    first_dirty = max_int;
    bw_written = Ivec.create ();
    bw_fw_lsn = Lsn.nil;
    updates_since_emit = 0;
    runtime = Hashtbl.create 512;
    deltas = 0;
    bws = 0;
    delta_bytes = 0;
    bw_bytes = 0;
  }

let track_runtime t pid lsn =
  if t.config.Config.checkpoint_mode = Config.Aries_fuzzy && not (Hashtbl.mem t.runtime pid)
  then Hashtbl.replace t.runtime pid lsn

let emit_delta t =
  if not (Ivec.is_empty t.dirty && Ivec.is_empty t.written) then begin
    let first_dirty = if t.first_dirty = max_int then Ivec.length t.dirty else t.first_dirty in
    let record =
      match t.config.Config.dpt_mode with
      | Config.Standard ->
          Lr.Delta
            {
              dirty = Ivec.to_array t.dirty;
              written = Ivec.to_array t.written;
              fw_lsn = t.fw_lsn;
              first_dirty;
              tc_lsn = t.stable_lsn ();
              dirty_lsns = [||];
            }
      | Config.Perfect ->
          Lr.Delta
            {
              dirty = Ivec.to_array t.dirty;
              written = Ivec.to_array t.written;
              fw_lsn = t.fw_lsn;
              first_dirty;
              tc_lsn = t.stable_lsn ();
              dirty_lsns = Ivec.to_array t.dirty_lsns;
            }
      | Config.Reduced ->
          (* §D.2: drop FW-LSN and FirstDirty; analysis treats the whole
             DirtySet as dirtied before any flush of the interval. *)
          Lr.Delta
            {
              dirty = Ivec.to_array t.dirty;
              written = Ivec.to_array t.written;
              fw_lsn = Lsn.nil;
              first_dirty = Ivec.length t.dirty;
              tc_lsn = t.stable_lsn ();
              dirty_lsns = [||];
            }
    in
    ignore (t.log_append record);
    t.deltas <- t.deltas + 1;
    t.delta_bytes <- t.delta_bytes + Lr.encoded_size record;
    (match t.trace with
    | Some tr ->
        Deut_obs.Trace.instant tr ~name:"delta_emit" ~cat:"monitor"
          ~track:Deut_obs.Trace.track_monitor
          ~args:[ ("dirty", Ivec.length t.dirty); ("written", Ivec.length t.written) ]
          ()
    | None -> ());
    Ivec.clear t.dirty;
    Ivec.clear t.dirty_lsns;
    Ivec.clear t.written;
    t.fw_lsn <- Lsn.nil;
    t.first_dirty <- max_int
  end

let emit_bw t =
  if not (Ivec.is_empty t.bw_written) then begin
    let record = Lr.Bw { written = Ivec.to_array t.bw_written; fw_lsn = t.bw_fw_lsn } in
    ignore (t.log_append record);
    t.bws <- t.bws + 1;
    t.bw_bytes <- t.bw_bytes + Lr.encoded_size record;
    (match t.trace with
    | Some tr ->
        Deut_obs.Trace.instant tr ~name:"bw_emit" ~cat:"monitor"
          ~track:Deut_obs.Trace.track_monitor
          ~args:[ ("written", Ivec.length t.bw_written) ]
          ()
    | None -> ());
    Ivec.clear t.bw_written;
    t.bw_fw_lsn <- Lsn.nil
  end

(* Δ first, then BW, per the experimental-fairness rule of §5.2. *)
let emit_both t =
  emit_delta t;
  emit_bw t

let on_dirty t ~pid ~lsn =
  Ivec.push t.dirty pid;
  if t.config.Config.dpt_mode = Config.Perfect then Ivec.push t.dirty_lsns lsn;
  track_runtime t pid lsn;
  if Ivec.length t.dirty >= t.config.Config.delta_capacity then emit_delta t

let on_flush t ~pid =
  if Ivec.is_empty t.written then begin
    t.fw_lsn <- t.stable_lsn ();
    t.first_dirty <- Ivec.length t.dirty
  end;
  Ivec.push t.written pid;
  if Ivec.is_empty t.bw_written then t.bw_fw_lsn <- t.stable_lsn ();
  Ivec.push t.bw_written pid;
  Hashtbl.remove t.runtime pid;
  if
    Ivec.length t.written >= t.config.Config.delta_capacity
    || Ivec.length t.bw_written >= t.config.Config.delta_capacity
  then emit_both t

let tick_update t =
  t.updates_since_emit <- t.updates_since_emit + 1;
  if t.updates_since_emit >= t.config.Config.delta_period then begin
    t.updates_since_emit <- 0;
    emit_both t
  end

let emit_pending t =
  t.updates_since_emit <- 0;
  emit_both t

let deltas_written t = t.deltas
let bws_written t = t.bws
let delta_bytes t = t.delta_bytes
let bw_bytes t = t.bw_bytes

let runtime_dpt t =
  Hashtbl.fold (fun pid rlsn acc -> (pid, rlsn, rlsn) :: acc) t.runtime []
  |> List.sort (fun (a, _, _) (b, _, _) -> Int.compare a b)
  |> Array.of_list
