(** Public facade: a transactional key-value store with logical (TC/DC)
    recovery — the paper's system as a library.

    Typical use:
    {[
      let db = Db.create () in
      Db.create_table db ~table:1;
      let txn = Db.begin_txn db in
      (match Db.insert db txn ~table:1 ~key:42 ~value:"hello" with
      | Ok () -> Db.commit db txn
      | Error e -> Db.abort db txn; prerr_endline (Db.error_to_string e));
      Db.checkpoint db;
      let image = Db.crash db in
      let db', stats = Db.recover image Recovery.Log2 in
      assert (Db.read db' ~table:1 ~key:42 = Some "hello")
    ]} *)

type t

(** Typed errors on the data path (re-export of {!Db_error.t}).  The
    retry loop of a concurrent client matches on [Lock_conflict] — no
    string parsing. *)
type error = Db_error.t =
  | Lock_conflict of { holder : int }
  | Txn_finished
  | No_such_table of int
  | Duplicate_key of { table : int; key : int }
  | Missing_key of { table : int; key : int }
  | Shard_down of int

val error_to_string : error -> string

(** Session-typed transaction handles.  A handle knows its owning db and
    client and whether it has finished: using it on another db raises
    [Invalid_argument] immediately, and using it after commit/abort is
    [Error Txn_finished] on the data path (commit/abort themselves raise
    — finishing twice is always a caller bug). *)
module Txn : sig
  type t

  val id : t -> int
  (** The TC's transaction id (log records, lock table, oracle keys). *)

  val client : t -> int
  (** The simulated client that began the transaction (0 by default). *)

  val finished : t -> bool
end

val create : ?config:Config.t -> unit -> t
val of_engine : Engine.t -> t
val engine : t -> Engine.t
val config : t -> Config.t

val create_table : t -> table:int -> unit
(** Create the table on every shard (its keys stripe across all of them).
    Raises [Invalid_argument] while any shard is down. *)

val tables : t -> int list

(** {2 Transactions} *)

val begin_txn : ?client:int -> t -> Txn.t
(** Start a transaction; [client] tags the handle (and its trace lane)
    for concurrent workloads. *)

val insert : t -> Txn.t -> table:int -> key:int -> value:string -> (unit, error) result
val update : t -> Txn.t -> table:int -> key:int -> value:string -> (unit, error) result
val delete : t -> Txn.t -> table:int -> key:int -> (unit, error) result

val read : t -> table:int -> key:int -> string option
(** Latch-free read outside any transaction (no lock, no isolation).
    Routed to the key's shard; raises {!Dc_access.Unavailable} if that
    shard is down. *)

val read_locked : t -> Txn.t -> table:int -> key:int -> (string option, error) result
(** Transactional read: takes a shared key lock first when [Config.locking]
    is enabled; [Error (Lock_conflict _)] means the caller should abort. *)

val commit : t -> Txn.t -> unit
(** Commit.  With [Config.group_commit] > 1 the commit may remain in the
    volatile log tail until the group's force; [commit_durable] reports
    which, and [flush_commits] forces immediately.  Raises
    [Invalid_argument] if the handle already finished. *)

val commit_durable : t -> Txn.t -> bool
(** Like [commit], returning whether the commit is already durable. *)

val flush_commits : t -> unit
(** Force the log, making every queued group commit durable. *)

val abort : t -> Txn.t -> unit
(** Roll back.  Raises [Invalid_argument] if the handle already finished. *)

val put : t -> table:int -> key:int -> value:string -> unit
(** Auto-commit upsert convenience. *)

(** {2 Checkpointing, crash, recovery} *)

val checkpoint : t -> unit
(** Raises [Invalid_argument] while a shard is down: RSSP must flush every
    shard before the master record may advance. *)

val compact_log : t -> unit
(** Archive log bytes no recovery could need (before the last completed
    checkpoint and every active transaction's first record).  Long-running
    workload drivers call this to bound memory; it has no observable
    effect on recovery. *)

val crash : t -> Crash_image.t
(** Capture what survives: stable pages, stable log prefix, master record.
    The returned image is reusable — each recovery runs on its own copies.
    The crashed [t] is poisoned: any later operation on it raises
    [Invalid_argument] instead of touching post-crash engine state. *)

val recover : ?config:Config.t -> Crash_image.t -> Recovery.method_ -> t * Recovery_stats.t
(** [recover image InstantLog2] drains the background redo fully before
    returning — the offline-equivalent (and determinism-gated) form.  Use
    {!recover_instant} for the open-while-redoing form. *)

(** {2 Shards}

    With [Config.shards] > 1 the key space stripes over that many data
    components ([key mod shards]), each with its own store, cache and DC
    log, all driven by the one TC through the {!Dc_access} protocol.  A
    single shard can crash and recover while its siblings keep serving:
    operations routed to the down shard return [Error (Shard_down _)]
    (reads raise {!Dc_access.Unavailable}); everything else proceeds. *)

val shard_count : t -> int

val shard_up : t -> shard:int -> bool

val crash_shard : t -> shard:int -> unit
(** Kill one data component: its cache (dirty pages included) and unforced
    DC-log tail vanish; stable pages and the stable DC-log prefix survive.
    The db handle stays live.  Raises [Invalid_argument] on single-shard
    engines (use {!crash}), if the shard is already down, or while any
    transaction is active — quiesce first. *)

val recover_shard : t -> shard:int -> unit
(** Replay the crashed shard — its own DC log, then its stripe of the TC
    log from the master record — and put it back in service.  Runs on the
    live engine; siblings and the TC are untouched. *)

(** {2 Instant recovery}

    The staged form of [InstantLog2]: the returned db serves transactions
    immediately — any touched page replays its pending redo slice first —
    while the caller interleaves {!instant_step} background replay with
    client work.  [checkpoint] and [compact_log] are deferred (raise
    [Invalid_argument]) until {!instant_finish}; crashing mid-drain is
    legal and recovers exactly like a single crash. *)

type instant

val recover_instant :
  ?config:Config.t -> ?undo_fault_after_clrs:int -> Crash_image.t -> instant

val instant_db : instant -> t
(** Open for transactions from the moment [recover_instant] returns. *)

val instant_pending : instant -> int
(** Pages with redo still outstanding. *)

val instant_step : instant -> bool
(** Replay one pending page in the background; [false] once drained. *)

val instant_drain : instant -> unit

val instant_finish : instant -> Recovery_stats.t
(** Drain, re-enable maintenance and finalise statistics (idempotent).
    [Recovery_stats.t.ttft_us] vs [drained_us] is the availability win. *)

(** {2 Inspection} *)

val fold_table : t -> table:int -> init:'a -> f:('a -> int -> string -> 'a) -> 'a

val fold_range :
  t -> table:int -> lo:int -> hi:int -> init:'a -> f:('a -> int -> string -> 'a) -> 'a
(** Fold over entries with lo ≤ key < hi, in key order (cursor-based). *)

val scan : t -> table:int -> lo:int -> hi:int -> (int * string) list
(** Entries with lo <= key < hi, sorted by key. *)

val dump_table : t -> table:int -> (int * string) list
val entry_count : t -> table:int -> int

val check_integrity : t -> (unit, string) result
(** Structural invariants of every table's B-tree. *)

val dirty_page_count : t -> int
val cached_page_count : t -> int
val deltas_written : t -> int
val bws_written : t -> int
val delta_bytes : t -> int
val bw_bytes : t -> int
val log_end : t -> Deut_wal.Lsn.t
val log_record_count : t -> int
val allocated_pages : t -> int
val now_ms : t -> float

val stats : t -> Engine_stats.t
(** Snapshot of every engine counter. *)

val stats_string : t -> string
(** Human-readable rendering of {!stats}. *)
