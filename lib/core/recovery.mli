(** Recovery drivers: the five methods compared side-by-side in §5.2, plus
    the classic-ARIES-checkpointing ablation.

    - [Log0] — basic logical redo (Algorithm 2): every update re-traverses
      the B-tree and fetches its page.
    - [Log1] — logical redo with the Δ-record-built DPT (Algorithms 4+5),
      no prefetch.
    - [Log2] — Log1 plus index preloading and PF-list data prefetch
      (Appendix A).
    - [Sql1] — physiological redo with the BW-record-built DPT
      (Algorithms 3+1), no prefetch.
    - [Sql2] — Sql1 plus log-driven data prefetch.
    - [Aries_ckpt] — physiological redo with the DPT captured at
      checkpoints (§3.1); requires the workload to have run in
      [Aries_fuzzy] checkpoint mode.

    All methods run from deep copies of the same crash image, finish with
    the same logical undo pass, and report {!Recovery_stats}. *)

type method_ = Log0 | Log1 | Log2 | Sql1 | Sql2 | Aries_ckpt

val method_to_string : method_ -> string
val all_methods : method_ list
(** The five paper methods, in the paper's order (no [Aries_ckpt]). *)

val is_logical : method_ -> bool

val recover :
  ?config:Config.t ->
  ?undo_fault_after_clrs:int ->
  Crash_image.t ->
  method_ ->
  Engine.t * Recovery_stats.t
(** Instantiate the image and run the full recovery sequence:
    analysis/DC-recovery, redo, undo.  The returned engine is ready for
    normal execution.  [config] overrides the image's configuration (e.g.
    a different cache size at the replica).

    [undo_fault_after_clrs] is test-only fault injection: abandon the undo
    pass after that many CLRs, returning an engine in the state of a
    system that crashed mid-undo (crash it and recover again to exercise
    CLR/undo-next resumption). *)

(** Exposed for tests: the scan that materialises the redo range and finds
    loser transactions. *)
type scan_result = {
  records : (Deut_wal.Lsn.t * Deut_wal.Log_record.t) array;
  losers : (int * Deut_wal.Lsn.t) list;
  max_txn : int;
}

val scan_log : Deut_wal.Log_manager.t -> from:Deut_wal.Lsn.t -> scan_result

val sql_analysis :
  ?trace:Deut_obs.Trace.t ->
  Deut_wal.Log_manager.t ->
  from:Deut_wal.Lsn.t ->
  stats:Recovery_stats.cells ->
  Dpt.t
(** Algorithm 3: SQL Server's DPT construction from update pids and
    BW-log records.  [trace] records a [dpt_prune] instant per removed
    entry. *)

val aries_analysis :
  Deut_wal.Log_manager.t ->
  from:Deut_wal.Lsn.t ->
  stats:Recovery_stats.cells ->
  Dpt.t * Deut_wal.Lsn.t
(** §3.1: DPT from the checkpoint-captured image plus first mentions in
    the scan; returns the DPT and the redo scan start point (minimum
    rLSN). *)
