(** Recovery drivers: the five methods compared side-by-side in §5.2, plus
    the classic-ARIES-checkpointing ablation.

    - [Log0] — basic logical redo (Algorithm 2): every update re-traverses
      the B-tree and fetches its page.
    - [Log1] — logical redo with the Δ-record-built DPT (Algorithms 4+5),
      no prefetch.
    - [Log2] — Log1 plus index preloading and PF-list data prefetch
      (Appendix A).
    - [Sql1] — physiological redo with the BW-record-built DPT
      (Algorithms 3+1), no prefetch.
    - [Sql2] — Sql1 plus log-driven data prefetch.
    - [Aries_ckpt] — physiological redo with the DPT captured at
      checkpoints (§3.1); requires the workload to have run in
      [Aries_fuzzy] checkpoint mode.
    - [InstantLog2] — Log2's analysis, then open for business immediately:
      each page's slice of the redo range replays on first touch (a
      buffer-pool fault hook), with a background drain covering the rest.
      Through {!recover} the drain completes before the engine is
      returned, making the result byte-identical to [Log2]; the staged
      {!recover_instant} API exposes the open-while-redoing form.

    All methods run from deep copies of the same crash image, finish with
    the same logical undo pass, and report {!Recovery_stats}. *)

type method_ = Log0 | Log1 | Log2 | Sql1 | Sql2 | Aries_ckpt | InstantLog2

val method_to_string : method_ -> string
val all_methods : method_ list
(** The five paper methods, in the paper's order (no [Aries_ckpt]). *)

val all_methods_with_instant : method_ list
(** [all_methods] plus [InstantLog2] — the six modes the fuzz harness and
    crash-point tests sweep. *)

val is_logical : method_ -> bool

val recover :
  ?config:Config.t ->
  ?undo_fault_after_clrs:int ->
  Crash_image.t ->
  method_ ->
  Engine.t * Recovery_stats.t
(** Instantiate the image and run the full recovery sequence:
    analysis/DC-recovery, redo, undo.  The returned engine is ready for
    normal execution.  [config] overrides the image's configuration (e.g.
    a different cache size at the replica).

    [undo_fault_after_clrs] is test-only fault injection: abandon the undo
    pass after that many CLRs, returning an engine in the state of a
    system that crashed mid-undo (crash it and recover again to exercise
    CLR/undo-next resumption). *)

(** {1 Per-shard recovery} *)

val recover_shard : Engine.t -> int -> unit
(** Live recovery of one crashed shard ([Engine.crash_shard]) on a running
    engine: replay its own DC log (SMO images + DPT), then its stripe of
    the shared TC log from the master record — the TC is alive, so its
    volatile tail is readable and no sibling's commit is lost — and put
    the shard back in service.  No undo: [Db.crash_shard] requires a
    quiesced transaction table.  Raises [Invalid_argument] if the shard is
    not down. *)

(** {1 Instant recovery}

    The staged form of [InstantLog2].  [recover_instant] runs analysis and
    the sequential log scan, collects the keys each loser transaction
    wrote (in-memory log reads), and returns an engine that is already
    open for transactions — {!Recovery_stats.t.ttft_us} marks that
    moment; no data page has been touched yet.  Everything else is
    deferred and demand-driven:

    - Any page touch from then on (client read or update, eviction,
      lazy-writer or checkpoint flush) first builds the per-page history
      index over the redo range (once, with a batched warm-up of the
      index levels) and replays that page's pending slice, so no page is
      ever served or written back with redo outstanding.
    - Loser rollback runs at the first client touch of a key a loser
      wrote (the in-memory lock substitute — key locks are not
      persisted), at the first background step, or at
      {!instant_finish}, whichever comes first; its own page touches
      replay on demand through the same hook.

    Callers interleave {!instant_step} with client work on the virtual
    clock until the pending set drains, then call {!instant_finish}
    (idempotent; finishes rollback, drains anything left, re-enables page
    merges, uninstalls the hook and finalises the statistics). *)

type instant

val recover_instant :
  ?config:Config.t -> ?undo_fault_after_clrs:int -> Crash_image.t -> instant

val instant_engine : instant -> Engine.t
(** The recovered engine, open for transactions from the moment
    [recover_instant] returns. *)

val instant_pending_pages : instant -> int
(** Pages whose redo slice has not yet been replayed (forces the history
    build if no page demand has triggered it yet). *)

val instant_touch_key : instant -> table:int -> key:int -> unit
(** The admission gate, called by the [Db] layer on every keyed client
    operation while redo is pending: touching a key some loser wrote
    forces rollback first.  Cheap no-op otherwise. *)

val instant_force_undo : instant -> unit
(** Run loser rollback now if it has not run yet — called before whole-
    table scans, which cannot be gated per key. *)

val instant_step : instant -> bool
(** Finish any deferred recovery work (history index, loser rollback),
    then replay one pending page (log first-touch order); [false] when
    the pending set is empty. *)

val instant_drain : instant -> unit
(** Run {!instant_step} to exhaustion. *)

val instant_finish : instant -> Recovery_stats.t

(** Exposed for tests: the scan that materialises the redo range and finds
    loser transactions. *)
type scan_result = {
  records : (Deut_wal.Lsn.t * Deut_wal.Log_record.t) array;
  losers : (int * Deut_wal.Lsn.t) list;
  max_txn : int;
}

val scan_log : Deut_wal.Log_manager.t -> from:Deut_wal.Lsn.t -> scan_result

val sql_analysis :
  ?trace:Deut_obs.Trace.t ->
  Deut_wal.Log_manager.t ->
  from:Deut_wal.Lsn.t ->
  stats:Recovery_stats.cells ->
  Dpt.t
(** Algorithm 3: SQL Server's DPT construction from update pids and
    BW-log records.  [trace] records a [dpt_prune] instant per removed
    entry. *)

val aries_analysis :
  Deut_wal.Log_manager.t ->
  from:Deut_wal.Lsn.t ->
  stats:Recovery_stats.cells ->
  Dpt.t * Deut_wal.Lsn.t
(** §3.1: DPT from the checkpoint-captured image plus first mentions in
    the scan; returns the DPT and the redo scan start point (minimum
    rLSN). *)
