(** Assembly of one running engine instance: clock, disks, stable store,
    log, cache, DC, TC, plus the observability bundle.  [Db] wraps this
    for users; the recovery drivers assemble one from a crash image. *)

module Clock = Deut_sim.Clock
module Disk = Deut_sim.Disk
module Page_store = Deut_storage.Page_store
module Log_manager = Deut_wal.Log_manager
module Archive = Deut_wal.Archive
module Pool = Deut_buffer.Buffer_pool
module Obs = Deut_obs.Obs
module Trace = Deut_obs.Trace
module Metrics = Deut_obs.Metrics

type t = {
  config : Config.t;
  clock : Clock.t;
  data_disk : Disk.t;
  log_disk : Disk.t;
  dc_log_disk : Disk.t option;  (* the DC log's own device in the split layout *)
  archive_disk : Disk.t option;  (* the archive's device when archiving is on *)
  store : Page_store.t;
  log : Log_manager.t;  (* the TC log; also carries DC records when integrated *)
  dc_log : Log_manager.t;  (* == [log] in the integrated layout *)
  pool : Pool.t;
  dc : Dc.t;
  tc : Tc.t;
  obs : Obs.t;
}

let split t = not (t.dc_log == t.log)
let obs t = t.obs
let trace t = Obs.trace t.obs
let metrics t = Obs.metrics t.obs

(* Lazy gauges over every live counter the engine keeps, so [Engine_stats]
   and the CLI read one namespace instead of crawling component records.
   Reading a gauge never mutates anything. *)
let register_gauges t =
  let m = metrics t in
  let fi name f = Metrics.gauge m name (fun () -> float_of_int (f ())) in
  let ff name f = Metrics.gauge m name f in
  let pc = Pool.counters t.pool in
  fi "cache.capacity" (fun () -> Pool.capacity t.pool);
  fi "cache.resident" (fun () -> Pool.size t.pool);
  fi "cache.dirty" (fun () -> Pool.dirty_count t.pool);
  fi "cache.hits" (fun () -> pc.Pool.hits);
  fi "cache.misses" (fun () -> pc.Pool.misses);
  fi "cache.prefetch_issued" (fun () -> pc.Pool.prefetch_issued);
  fi "cache.prefetch_hits" (fun () -> pc.Pool.prefetch_hits);
  fi "cache.stalls" (fun () -> pc.Pool.stalls);
  ff "cache.stall_us" (fun () -> pc.Pool.stall_us);
  fi "cache.evictions" (fun () -> pc.Pool.evictions);
  fi "cache.flushes" (fun () -> pc.Pool.flushes);
  let dd = Disk.counters t.data_disk in
  fi "disk.data.pages_read" (fun () -> dd.Disk.pages_read);
  fi "disk.data.pages_written" (fun () -> dd.Disk.pages_written);
  fi "disk.data.seeks" (fun () -> dd.Disk.seeks);
  fi "disk.data.sequential" (fun () -> dd.Disk.sequential_requests);
  let ld = Disk.counters t.log_disk in
  fi "disk.log.pages_read" (fun () -> ld.Disk.pages_read);
  fi "log.tc.records" (fun () -> Log_manager.record_count t.log);
  fi "log.tc.end_lsn" (fun () -> Log_manager.end_lsn t.log);
  fi "log.tc.base_lsn" (fun () -> Log_manager.base_lsn t.log);
  fi "log.tc.forces" (fun () -> Log_manager.force_count t.log);
  fi "log.dc.records" (fun () -> if split t then Log_manager.record_count t.dc_log else 0);
  fi "log.dc.end_lsn" (fun () -> if split t then Log_manager.end_lsn t.dc_log else 0);
  fi "log.dc.base_lsn" (fun () -> if split t then Log_manager.base_lsn t.dc_log else 0);
  (* Archive gauges are registered unconditionally (0 with archiving off)
     so dashboards and [Engine_stats] read a stable namespace. *)
  let arch f = fun () -> match Log_manager.archive t.log with Some a -> f a | None -> 0 in
  fi "archive.segments" (arch Archive.segment_count);
  fi "archive.bytes" (arch Archive.sealed_bytes);
  fi "archive.cuts" (arch Archive.seal_count);
  fi "archive.covered_upto" (arch Archive.covered_upto);
  fi "disk.archive.pages_written" (fun () ->
      match t.archive_disk with Some d -> (Disk.counters d).Disk.pages_written | None -> 0);
  fi "disk.archive.pages_read" (fun () ->
      match t.archive_disk with Some d -> (Disk.counters d).Disk.pages_read | None -> 0);
  let monitor = Dc.monitor t.dc in
  fi "monitor.delta_records" (fun () -> Monitor.deltas_written monitor);
  fi "monitor.delta_bytes" (fun () -> Monitor.delta_bytes monitor);
  fi "monitor.bw_records" (fun () -> Monitor.bws_written monitor);
  fi "monitor.bw_bytes" (fun () -> Monitor.bw_bytes monitor);
  fi "store.allocated" (fun () -> Page_store.allocated_count t.store);
  fi "store.stable" (fun () -> Page_store.stable_count t.store);
  fi "tc.commits" (fun () -> Tc.commit_count t.tc);
  fi "tc.aborts" (fun () -> Tc.abort_count t.tc);
  fi "locks.conflicts" (fun () -> Tc.lock_conflicts t.tc);
  fi "locks.keys" (fun () -> Tc.locked_keys t.tc);
  ff "clock.now_us" (fun () -> Clock.now t.clock)

let assemble ?dc_log config ~store ~log =
  let clock = Clock.create () in
  let trace =
    if config.Config.tracing then
      Some (Trace.create ~now:(fun () -> Clock.now clock) ~capacity:config.Config.trace_capacity ())
    else None
  in
  let obs = Obs.create ?trace () in
  let m = Obs.metrics obs in
  let data_disk = Disk.create ~params:config.Config.data_disk clock in
  let log_disk = Disk.create ~params:config.Config.log_disk clock in
  Disk.instrument data_disk ?trace ~io_hist:(Metrics.histogram m "disk.data.io_us")
    ~track:Trace.track_data_disk ();
  Disk.instrument log_disk ?trace ~io_hist:(Metrics.histogram m "disk.log.io_us")
    ~track:Trace.track_log_disk ();
  Log_manager.attach_read_disk log log_disk;
  Log_manager.instrument log ?trace ();
  let dc_log, dc_log_disk =
    match config.Config.log_layout with
    | Config.Integrated -> (log, None)
    | Config.Split ->
        let own =
          match dc_log with
          | Some l -> l
          | None -> Log_manager.create ~page_size:config.Config.page_size
        in
        let disk = Disk.create ~params:config.Config.log_disk clock in
        Disk.instrument disk ?trace ~io_hist:(Metrics.histogram m "disk.dc_log.io_us")
          ~track:Trace.track_dc_log_disk ();
        Log_manager.attach_read_disk own disk;
        Log_manager.instrument own ?trace ();
        (own, Some disk)
  in
  (* Attach the archive when configured on — or when the log already
     carries one, i.e. this engine is being assembled from a crash image of
     an archiving incarnation: the segments are durable device state and
     must stay readable even if the restart's config flag differs. *)
  let archive_disk =
    let existing = Log_manager.archive log in
    if config.Config.archive || existing <> None then begin
      let a =
        match existing with
        | Some a -> a
        | None ->
            let a = Archive.create ~page_size:config.Config.page_size in
            Log_manager.attach_archive log a;
            a
      in
      let disk = Disk.create ~params:config.Config.archive_disk clock in
      Disk.instrument disk ?trace ~io_hist:(Metrics.histogram m "disk.archive.io_us")
        ~track:Trace.track_archive_disk ();
      Archive.attach_disk a disk;
      Archive.instrument a ?trace ();
      Some disk
    end
    else None
  in
  let pool =
    Pool.create ~capacity:config.Config.pool_pages ~block_pages:config.Config.block_pages
      ~lazy_writer_every:config.Config.lazy_writer_every
      ~lazy_writer_min_age:(2 * config.Config.delta_period) ~store ~disk:data_disk ~clock ()
  in
  Pool.instrument pool ?trace ~stall_hist:(Metrics.histogram m "cache.stall_wait_us") ();
  let dc =
    Dc.create ?trace ~config ~clock ~disk:data_disk ~store ~pool ~dc_log
      ~tc_force_upto:(Log_manager.force_upto log) ()
  in
  let tc = Tc.create ?trace ~config ~log () in
  let t =
    {
      config;
      clock;
      data_disk;
      log_disk;
      dc_log_disk;
      archive_disk;
      store;
      log;
      dc_log;
      pool;
      dc;
      tc;
      obs;
    }
  in
  register_gauges t;
  t

let fresh config =
  let store = Page_store.create ~page_size:config.Config.page_size in
  let log = Log_manager.create ~page_size:config.Config.page_size in
  let t = assemble config ~store ~log in
  Dc.format t.dc;
  t
