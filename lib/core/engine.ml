(** Assembly of one running engine instance: clock, disks, stable store,
    log, cache, DC shards, TC, plus the observability bundle.  [Db] wraps
    this for users; the recovery drivers assemble one from a crash image.

    The TC side never holds a [Dc.t] — it holds a {!Dc_access.router}
    whose endpoints dispatch into the shards, either in-process (the
    default: a closure straight onto {!Dc.handle}, zero simulated cost)
    or over a per-shard {!Deut_net.Link} when [Config.net] is on.  With
    [Config.shards = 1] and the in-process transport the assembly below
    is structurally identical to the pre-protocol engine, which is what
    keeps its digests byte-identical. *)

module Clock = Deut_sim.Clock
module Disk = Deut_sim.Disk
module Page_store = Deut_storage.Page_store
module Log_manager = Deut_wal.Log_manager
module Archive = Deut_wal.Archive
module Pool = Deut_buffer.Buffer_pool
module Link = Deut_net.Link
module Obs = Deut_obs.Obs
module Trace = Deut_obs.Trace
module Metrics = Deut_obs.Metrics
module Flight = Deut_obs.Flight

(* One data component: its own stable store, cache, DC log and devices.
   The mutable fields are what a per-shard crash destroys and a per-shard
   recovery rebuilds; the router's endpoint closures read them afresh on
   every call, so a recovered shard swaps in without re-wiring the TC. *)
type shard = {
  s_id : int;
  s_data_disk : Disk.t;
  s_dc_log_disk : Disk.t option;  (* [None] only in the integrated layout *)
  s_link : Link.t option;  (* the simulated TC↔DC link when [Config.net] *)
  mutable s_store : Page_store.t;
  mutable s_dc_log : Log_manager.t;
  mutable s_pool : Pool.t;
  mutable s_dc : Dc.t;
  mutable s_up : bool;
}

type t = {
  config : Config.t;
  clock : Clock.t;
  data_disk : Disk.t;  (* shard 0's data device *)
  log_disk : Disk.t;
  dc_log_disk : Disk.t option;  (* shard 0's DC-log device in the split layout *)
  archive_disk : Disk.t option;  (* the archive's device when archiving is on *)
  mutable store : Page_store.t;  (* alias of [shards.(0).s_store] *)
  log : Log_manager.t;  (* the TC log; also carries DC records when integrated *)
  mutable dc_log : Log_manager.t;  (* == [log] in the integrated layout *)
  mutable pool : Pool.t;  (* alias of [shards.(0).s_pool] *)
  mutable dc : Dc.t;  (* alias of [shards.(0).s_dc] *)
  tc : Tc.t;
  obs : Obs.t;
  shards : shard array;
  router : Dc_access.router;
  tc_ep : Dc_access.tc_endpoint;  (* the un-networked DC→TC direction *)
}

let split t = not (t.dc_log == t.log)
let obs t = t.obs
let trace t = Obs.trace t.obs
let metrics t = Obs.metrics t.obs
let flight t = Obs.flight t.obs
let shard_count t = Array.length t.shards
let shard t i = t.shards.(i)
let shard_up t i = t.shards.(i).s_up
let router t = t.router

(* Per-shard layout: more than one shard forces the split layout (each DC
   logs into its own short log — pids are per-shard page spaces, so a
   single integrated log would interleave records no one shard could
   replay) and an equal slice of the cache budget. *)
let normalize config =
  if config.Config.shards <= 1 then config
  else begin
    if config.Config.checkpoint_mode = Config.Aries_fuzzy then
      invalid_arg
        "Engine: ARIES fuzzy checkpoints need a single physical page space (shards = 1)";
    { config with Config.log_layout = Config.Split }
  end

let shard_pool_pages config =
  if config.Config.shards <= 1 then config.Config.pool_pages
  else Stdlib.max 8 (config.Config.pool_pages / config.Config.shards)

(* Keep the scalar shard-0 aliases live across per-shard recovery. *)
let sync_shard0 t =
  let sh = t.shards.(0) in
  t.store <- sh.s_store;
  t.dc_log <- sh.s_dc_log;
  t.pool <- sh.s_pool;
  t.dc <- sh.s_dc

(* Lazy gauges over every live counter the engine keeps, so [Engine_stats]
   and the CLI read one namespace instead of crawling component records.
   Reading a gauge never mutates anything; every per-shard counter is
   summed across shards (a single shard reads exactly as before). *)
let register_gauges t =
  let m = metrics t in
  let fi name f = Metrics.gauge m name (fun () -> float_of_int (f ())) in
  let ff name f = Metrics.gauge m name f in
  let sum f = Array.fold_left (fun acc sh -> acc + f sh) 0 t.shards in
  let sumf f = Array.fold_left (fun acc sh -> acc +. f sh) 0.0 t.shards in
  fi "cache.capacity" (fun () -> sum (fun sh -> Pool.capacity sh.s_pool));
  fi "cache.resident" (fun () -> sum (fun sh -> Pool.size sh.s_pool));
  fi "cache.dirty" (fun () -> sum (fun sh -> Pool.dirty_count sh.s_pool));
  let pc f = sum (fun sh -> f (Pool.counters sh.s_pool)) in
  fi "cache.hits" (fun () -> pc (fun c -> c.Pool.hits));
  fi "cache.misses" (fun () -> pc (fun c -> c.Pool.misses));
  fi "cache.prefetch_issued" (fun () -> pc (fun c -> c.Pool.prefetch_issued));
  fi "cache.prefetch_hits" (fun () -> pc (fun c -> c.Pool.prefetch_hits));
  fi "cache.stalls" (fun () -> pc (fun c -> c.Pool.stalls));
  ff "cache.stall_us" (fun () -> sumf (fun sh -> (Pool.counters sh.s_pool).Pool.stall_us));
  fi "cache.evictions" (fun () -> pc (fun c -> c.Pool.evictions));
  fi "cache.flushes" (fun () -> pc (fun c -> c.Pool.flushes));
  let dd f = sum (fun sh -> f (Disk.counters sh.s_data_disk)) in
  fi "disk.data.pages_read" (fun () -> dd (fun c -> c.Disk.pages_read));
  fi "disk.data.pages_written" (fun () -> dd (fun c -> c.Disk.pages_written));
  fi "disk.data.seeks" (fun () -> dd (fun c -> c.Disk.seeks));
  fi "disk.data.sequential" (fun () -> dd (fun c -> c.Disk.sequential_requests));
  fi "disk.log.pages_read" (fun () -> (Disk.counters t.log_disk).Disk.pages_read);
  fi "log.tc.records" (fun () -> Log_manager.record_count t.log);
  fi "log.tc.end_lsn" (fun () -> Log_manager.end_lsn t.log);
  fi "log.tc.base_lsn" (fun () -> Log_manager.base_lsn t.log);
  fi "log.tc.forces" (fun () -> Log_manager.force_count t.log);
  fi "log.dc.records" (fun () ->
      if split t then sum (fun sh -> Log_manager.record_count sh.s_dc_log) else 0);
  fi "log.dc.end_lsn" (fun () ->
      if split t then sum (fun sh -> Log_manager.end_lsn sh.s_dc_log) else 0);
  fi "log.dc.base_lsn" (fun () ->
      if split t then sum (fun sh -> Log_manager.base_lsn sh.s_dc_log) else 0);
  (* Archive gauges are registered unconditionally (0 with archiving off)
     so dashboards and [Engine_stats] read a stable namespace. *)
  let arch f = fun () -> match Log_manager.archive t.log with Some a -> f a | None -> 0 in
  fi "archive.segments" (arch Archive.segment_count);
  fi "archive.bytes" (arch Archive.sealed_bytes);
  fi "archive.cuts" (arch Archive.seal_count);
  fi "archive.covered_upto" (arch Archive.covered_upto);
  fi "disk.archive.pages_written" (fun () ->
      match t.archive_disk with Some d -> (Disk.counters d).Disk.pages_written | None -> 0);
  fi "disk.archive.pages_read" (fun () ->
      match t.archive_disk with Some d -> (Disk.counters d).Disk.pages_read | None -> 0);
  let mon f = sum (fun sh -> f (Dc.monitor sh.s_dc)) in
  fi "monitor.delta_records" (fun () -> mon Monitor.deltas_written);
  fi "monitor.delta_bytes" (fun () -> mon Monitor.delta_bytes);
  fi "monitor.bw_records" (fun () -> mon Monitor.bws_written);
  fi "monitor.bw_bytes" (fun () -> mon Monitor.bw_bytes);
  fi "store.allocated" (fun () -> sum (fun sh -> Page_store.allocated_count sh.s_store));
  fi "store.stable" (fun () -> sum (fun sh -> Page_store.stable_count sh.s_store));
  fi "tc.commits" (fun () -> Tc.commit_count t.tc);
  fi "tc.aborts" (fun () -> Tc.abort_count t.tc);
  fi "locks.conflicts" (fun () -> Tc.lock_conflicts t.tc);
  fi "locks.keys" (fun () -> Tc.locked_keys t.tc);
  fi "shards.total" (fun () -> Array.length t.shards);
  fi "shards.up" (fun () -> sum (fun sh -> if sh.s_up then 1 else 0));
  let net f =
    sumf (fun sh -> match sh.s_link with Some l -> f (Link.counters l) | None -> 0.0)
  in
  fi "net.messages" (fun () -> int_of_float (net (fun c -> float_of_int c.Link.messages)));
  fi "net.retransmits" (fun () ->
      int_of_float (net (fun c -> float_of_int c.Link.retransmits)));
  fi "net.reorders" (fun () -> int_of_float (net (fun c -> float_of_int c.Link.reorders)));
  ff "net.delay_us" (fun () -> net (fun c -> c.Link.delay_us));
  ff "clock.now_us" (fun () -> Clock.now t.clock)

(* The in-process endpoint for one shard: a closure onto [Dc.handle],
   reading the mutable [s_dc]/[s_up] at every call so per-shard recovery
   swaps components without re-wiring.  Costs nothing on the clock. *)
let local_endpoint sh =
  {
    Dc_access.shard = sh.s_id;
    call =
      (fun req ->
        if not sh.s_up then raise (Dc_access.Unavailable sh.s_id);
        Dc.handle sh.s_dc req);
  }

(* Assemble one shard's stack: devices, cache, DC.  [store]/[dc_log] come
   from the caller (fresh or a crash image); [tc] is this shard's view of
   the TC (networked when the link is). *)
let assemble_shard ?trace ?flight ~config ~clock ~m ~tc ~i ~store ~dc_log ~data_disk
    ~dc_log_disk ~link () =
  (match dc_log_disk with
  | Some disk ->
      Log_manager.attach_read_disk dc_log disk;
      Log_manager.instrument dc_log ?trace
        ?flight:(Option.map (fun f -> (f, i)) flight)
        ()
  | None -> ());
  let pool =
    Pool.create ~capacity:(shard_pool_pages config) ~block_pages:config.Config.block_pages
      ~lazy_writer_every:config.Config.lazy_writer_every
      ~lazy_writer_min_age:(2 * config.Config.delta_period) ~store ~disk:data_disk ~clock ()
  in
  Pool.instrument pool ?trace ~stall_hist:(Metrics.histogram m "cache.stall_wait_us") ();
  let tc = match link with Some l -> Dc_access.networked_tc l tc | None -> tc in
  let dc = Dc.create ?trace ~config ~clock ~disk:data_disk ~store ~pool ~dc_log ~tc () in
  { s_id = i; s_data_disk = data_disk; s_dc_log_disk = dc_log_disk; s_link = link;
    s_store = store; s_dc_log = dc_log; s_pool = pool; s_dc = dc; s_up = true }

let assemble ?dc_log ?extra_shards config ~store ~log =
  let config = normalize config in
  let n = Stdlib.max 1 config.Config.shards in
  let clock = Clock.create () in
  let trace =
    if config.Config.tracing then
      Some (Trace.create ~now:(fun () -> Clock.now clock) ~capacity:config.Config.trace_capacity ())
    else None
  in
  let flight =
    if config.Config.flight then
      Some
        (Flight.create
           ~now:(fun () -> Clock.now clock)
           ~components:n ~capacity:config.Config.flight_capacity ())
    else None
  in
  let obs = Obs.create ?trace ?flight () in
  let m = Obs.metrics obs in
  (* Shard-local device histograms carry their shard prefix whenever the
     engine is sharded — including shard 0, so "shard0.disk.data.io_us"
     lines up with its siblings instead of hiding under the historical
     unprefixed name.  Single-shard keeps the unprefixed names (and the
     committed baselines). *)
  let shard0_hist base = if n = 1 then base else "shard0." ^ base in
  let data_disk = Disk.create ~params:config.Config.data_disk clock in
  let log_disk = Disk.create ~params:config.Config.log_disk clock in
  Disk.instrument data_disk ?trace
    ~io_hist:(Metrics.histogram m (shard0_hist "disk.data.io_us"))
    ~track:Trace.track_data_disk ();
  Disk.instrument log_disk ?trace ~io_hist:(Metrics.histogram m "disk.log.io_us")
    ~track:Trace.track_log_disk ();
  Log_manager.attach_read_disk log log_disk;
  Log_manager.instrument log ?trace
    ?flight:(Option.map (fun f -> (f, Flight.tc)) flight)
    ();
  (* Shard 0's DC log keeps the historical single-shard wiring (shared log
     when integrated, own log and device when split). *)
  let dc_log0, dc_log_disk0 =
    match config.Config.log_layout with
    | Config.Integrated -> (log, None)
    | Config.Split ->
        let own =
          match dc_log with
          | Some l -> l
          | None -> Log_manager.create ~page_size:config.Config.page_size
        in
        let disk = Disk.create ~params:config.Config.log_disk clock in
        Disk.instrument disk ?trace
          ~io_hist:(Metrics.histogram m (shard0_hist "disk.dc_log.io_us"))
          ~track:Trace.track_dc_log_disk ();
        (own, Some disk)
  in
  (* Attach the archive when configured on — or when the log already
     carries one, i.e. this engine is being assembled from a crash image of
     an archiving incarnation: the segments are durable device state and
     must stay readable even if the restart's config flag differs. *)
  let archive_disk =
    let existing = Log_manager.archive log in
    if config.Config.archive || existing <> None then begin
      let a =
        match existing with
        | Some a -> a
        | None ->
            let a = Archive.create ~page_size:config.Config.page_size in
            Log_manager.attach_archive log a;
            a
      in
      let disk = Disk.create ~params:config.Config.archive_disk clock in
      Disk.instrument disk ?trace ~io_hist:(Metrics.histogram m "disk.archive.io_us")
        ~track:Trace.track_archive_disk ();
      Archive.attach_disk a disk;
      Archive.instrument a ?trace ();
      Some disk
    end
    else None
  in
  let tc_ep =
    {
      Dc_access.tc_call =
        (fun (Dc_access.Force_upto lsn) ->
          (match flight with
          | Some f -> Flight.record f ~comp:Flight.tc Flight.Handle "force_upto" ~lsn ()
          | None -> ());
          Log_manager.force_upto log lsn;
          Dc_access.Forced (Log_manager.stable_lsn log));
    }
  in
  let link_for i =
    if not config.Config.net then None
    else
      let track = if n = 1 then Trace.track_net else Trace.track_shard i in
      let params =
        {
          Link.latency_us = config.Config.net_latency_us;
          jitter_us = config.Config.net_jitter_us;
          loss = config.Config.net_loss;
          reorder = config.Config.net_reorder;
          timeout_us = config.Config.net_timeout_us;
        }
      in
      Some (Link.create ?trace ~track ~clock ~params ~seed:(config.Config.seed + (7919 * (i + 1))) ())
  in
  let shard_of i =
    if i = 0 then
      assemble_shard ?trace ?flight ~config ~clock ~m ~tc:tc_ep ~i:0 ~store ~dc_log:dc_log0
        ~data_disk ~dc_log_disk:dc_log_disk0 ~link:(link_for 0) ()
    else begin
      (* Sibling shards: own data device and DC-log device on distinct
         trace lanes, own store and short log. *)
      let s_store, s_dc_log =
        match extra_shards with
        | Some a -> a.(i - 1)
        | None ->
            ( Page_store.create ~page_size:config.Config.page_size,
              Log_manager.create ~page_size:config.Config.page_size )
      in
      let d = Disk.create ~params:config.Config.data_disk clock in
      Disk.instrument d ?trace
        ~io_hist:(Metrics.histogram m (Printf.sprintf "shard%d.disk.data.io_us" i))
        ~track:(Trace.track_shard i) ();
      let ld = Disk.create ~params:config.Config.log_disk clock in
      Disk.instrument ld ?trace
        ~io_hist:(Metrics.histogram m (Printf.sprintf "shard%d.disk.dc_log.io_us" i))
        ~track:(Trace.track_shard i) ();
      assemble_shard ?trace ?flight ~config ~clock ~m ~tc:tc_ep ~i ~store:s_store
        ~dc_log:s_dc_log ~data_disk:d ~dc_log_disk:(Some ld) ~link:(link_for i) ()
    end
  in
  let shards = Array.init n shard_of in
  (* Causal tracing over the protocol.  Every TC→DC exchange gets a fresh
     message id; [current_mid] carries it down the synchronous call chain
     so the link legs and the DC-side handler stamp the same id.  The
     trace view is emitted only for assemblies where the protocol has a
     cost or a remote side (net on, or more than one shard) — a plain
     single-shard in-process engine keeps its historical event stream.
     Flight records are unconditional: the recorder is the always-on black
     box.

     The flow chain per id, in both ring and timestamp order:
     [s] on the TC lane as the request leaves, a [t] per network leg and
     one inside the DC handler span, and [f] back on the TC lane bound to
     the enclosing [req:*] span — which is exactly the synchronous wait
     the TC spent on this message, so [Analysis] charges cross-shard
     stalls (and retransmits, via the ["mid"] args) to it.  A request that
     dies on the way (e.g. [Unavailable]) leaves its flow unterminated:
     the arrow just ends, which is the honest picture. *)
  let next_mid = ref 0 in
  let current_mid = ref (-1) in
  let verbose = config.Config.net || n > 1 in
  let instrumented_endpoint sh =
    let local = local_endpoint sh in
    let serve req =
      let mid = !current_mid in
      let tag = Dc_access.request_tag req in
      (match flight with
      | Some f -> Flight.record f ~comp:sh.s_id Flight.Handle tag ~mid ()
      | None -> ());
      match trace with
      | Some tr when verbose ->
          let ts0 = Clock.now clock in
          let reply = local.Dc_access.call req in
          let ts1 = Clock.now clock in
          Trace.flow_step tr ~name:("dc:" ^ tag) ~cat:"rpc"
            ~track:(Trace.track_shard sh.s_id)
            ~ts:((ts0 +. ts1) /. 2.0)
            ~id:mid ();
          Trace.span tr ~name:("dc:" ^ tag) ~cat:"rpc" ~track:(Trace.track_shard sh.s_id)
            ~ts:ts0 ~dur:(ts1 -. ts0) ~args:[ ("mid", mid) ] ();
          reply
      | _ -> local.Dc_access.call req
    in
    let inner = { local with Dc_access.call = serve } in
    let routed =
      match sh.s_link with
      | Some link -> Dc_access.networked ~flow_id:(fun () -> !current_mid) link inner
      | None -> inner
    in
    let call req =
      let tag = Dc_access.request_tag req in
      let mid = !next_mid in
      incr next_mid;
      let saved = !current_mid in
      current_mid := mid;
      (match flight with
      | Some f -> Flight.record f ~comp:Flight.tc Flight.Send tag ~mid ()
      | None -> ());
      let reply =
        match trace with
        | Some tr when verbose ->
            let ts0 = Clock.now clock in
            Trace.flow_start tr ~name:"rpc" ~cat:"rpc" ~track:Trace.track_recovery ~ts:ts0
              ~id:mid ();
            let reply =
              Fun.protect ~finally:(fun () -> current_mid := saved)
                (fun () -> routed.Dc_access.call req)
            in
            let ts1 = Clock.now clock in
            Trace.span tr ~name:("req:" ^ tag) ~cat:"rpc" ~track:Trace.track_recovery ~ts:ts0
              ~dur:(ts1 -. ts0) ~args:[ ("mid", mid) ] ();
            Trace.flow_end tr ~name:("req:" ^ tag) ~cat:"rpc" ~track:Trace.track_recovery
              ~ts:ts1 ~id:mid ();
            reply
        | _ ->
            Fun.protect ~finally:(fun () -> current_mid := saved)
              (fun () -> routed.Dc_access.call req)
      in
      (match flight with
      | Some f -> Flight.record f ~comp:Flight.tc Flight.Recv tag ~mid ()
      | None -> ());
      reply
    in
    { Dc_access.shard = sh.s_id; call }
  in
  let router = Dc_access.make_router (Array.map instrumented_endpoint shards) in
  let tc = Tc.create ?trace ?flight ~config ~log () in
  let sh0 = shards.(0) in
  let t =
    {
      config;
      clock;
      data_disk;
      log_disk;
      dc_log_disk = dc_log_disk0;
      archive_disk;
      store = sh0.s_store;
      log;
      dc_log = sh0.s_dc_log;
      pool = sh0.s_pool;
      dc = sh0.s_dc;
      tc;
      obs;
      shards;
      router;
      tc_ep;
    }
  in
  register_gauges t;
  t

let fresh config =
  let store = Page_store.create ~page_size:config.Config.page_size in
  let log = Log_manager.create ~page_size:config.Config.page_size in
  let t = assemble config ~store ~log in
  Array.iter (fun sh -> Dc.format sh.s_dc) t.shards;
  t

(* {2 Per-shard crash and revival}

   A single data component failing is the availability story the sharded
   engine exists to tell: its volatile state dies (cache dirt, the DC
   log's unforced tail), its durable state survives (stable pages, stable
   DC-log prefix), the TC and the sibling shards never notice beyond
   [Shard_down] errors on the crashed stripe.  [Recovery.recover_shard]
   replays the survivor state and flips the shard back up. *)

let rebuild_shard t sh ~dc_log =
  let tr = trace t in
  (match sh.s_dc_log_disk with
  | Some disk ->
      Log_manager.attach_read_disk dc_log disk;
      Log_manager.instrument dc_log ?trace:tr
        ?flight:(Option.map (fun f -> (f, sh.s_id)) (flight t))
        ()
  | None -> ());
  let pool =
    Pool.create ~capacity:(shard_pool_pages t.config) ~block_pages:t.config.Config.block_pages
      ~lazy_writer_every:t.config.Config.lazy_writer_every
      ~lazy_writer_min_age:(2 * t.config.Config.delta_period) ~store:sh.s_store
      ~disk:sh.s_data_disk ~clock:t.clock ()
  in
  Pool.instrument pool ?trace:tr
    ~stall_hist:(Metrics.histogram (metrics t) "cache.stall_wait_us") ();
  let tc =
    match sh.s_link with Some l -> Dc_access.networked_tc l t.tc_ep | None -> t.tc_ep
  in
  let dc =
    Dc.create ?trace:tr ~config:t.config ~clock:t.clock ~disk:sh.s_data_disk ~store:sh.s_store
      ~pool ~dc_log ~tc ()
  in
  sh.s_dc_log <- dc_log;
  sh.s_pool <- pool;
  sh.s_dc <- dc;
  sync_shard0 t

let crash_shard t i =
  if Array.length t.shards = 1 then
    invalid_arg "Engine.crash_shard: a single-shard engine crashes whole (use Db.crash)";
  let sh = t.shards.(i) in
  if not sh.s_up then invalid_arg (Printf.sprintf "Engine.crash_shard: shard %d already down" i);
  sh.s_up <- false;
  (match flight t with
  | Some f -> Flight.record f ~comp:i Flight.Crash "shard_crash" ()
  | None -> ());
  (* The cache (with its dirty pages) vanishes; the DC log truncates to its
     stable prefix; the stable store is the disk and stays. *)
  rebuild_shard t sh ~dc_log:(Log_manager.crash sh.s_dc_log);
  match trace t with
  | Some tr ->
      Trace.instant tr ~name:"shard_crash" ~cat:"shard" ~track:(Trace.track_shard i)
        ~args:[ ("shard", i) ] ()
  | None -> ()
