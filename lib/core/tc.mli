(** The transactional component (TC): transaction table, logical logging,
    commit/abort, undo with CLRs, and checkpointing.

    The TC logs operations by (table, key) — it does not know pages.  The
    physiological pid rides along in the record purely so the ARIES/SQL
    baseline can recover from the same log (§5.1).  It coordinates with
    the DC through EOSL (every commit force) and RSSP (each checkpoint),
    the two control operations of §4.1.

    Every interaction with the data side goes through a {!Dc_access.router}
    — the typed message protocol over however many shards the engine
    assembled.  The TC is the sole sequencer of the commit order (its log),
    which is what makes cross-shard transactions atomic: a transaction's
    updates may land on several shards, but its commit record is a single
    point in the single TC log. *)

type t

val create :
  ?trace:Deut_obs.Trace.t ->
  ?flight:Deut_obs.Flight.t ->
  config:Config.t ->
  log:Deut_wal.Log_manager.t ->
  unit ->
  t
(* [trace] records a [ckpt] span (begin-ckpt to end-ckpt force) on the
   recovery track for every checkpoint; [flight] records the begin/end
   checkpoint milestones in the TC's flight-recorder ring. *)
val log : t -> Deut_wal.Log_manager.t

val master : t -> Deut_wal.Lsn.t
(** Begin-checkpoint LSN of the last completed checkpoint — the redo scan
    start point (kept in the "master record" outside the log, as real
    systems do). *)

val set_master : t -> Deut_wal.Lsn.t -> unit

val begin_txn : t -> int
val active_txns : t -> (int * Deut_wal.Lsn.t) array
val restore_txn_state : t -> losers:(int * Deut_wal.Lsn.t) list -> next_txn:int -> unit

val execute :
  t ->
  Dc_access.router ->
  txn:int ->
  table:int ->
  key:int ->
  op:Deut_wal.Log_record.op_kind ->
  value:string option ->
  (unit, Db_error.t) result
(** One data operation: route the key to its shard, [Prepare] there (the
    before-image comes back), log the logical record on the TC log, then
    [Apply] under the record's LSN.  With [Config.locking] on, an
    exclusive key lock is taken first; a conflict returns
    [Error (Lock_conflict _)] and the caller should abort (no-wait
    policy).  A crashed shard returns [Error (Shard_down _)]. *)

val read_lock : t -> txn:int -> table:int -> key:int -> (unit, Db_error.t) result
(** Shared key lock for a transactional read (no-op unless locking is on). *)

val locks_held : t -> txn:int -> int

val lock_conflicts : t -> int
(** Cumulative no-wait lock refusals this engine lifetime. *)

val locked_keys : t -> int
(** Keys currently locked (any mode). *)

val commit_count : t -> int
(** Transactions committed this engine lifetime. *)

val abort_count : t -> int
(** Transactions explicitly aborted this engine lifetime (the recovery
    undo pass does not count — it calls {!undo_txn} directly). *)

val commit : t -> Dc_access.router -> txn:int -> bool
(** Append the commit record; force the log every [Config.group_commit]
    commits.  Returns whether this commit is durable yet — [false] means it
    sits in the volatile tail until the next force (or [flush_commits])
    and would be undone by a crash before then. *)

val flush_commits : t -> Dc_access.router -> unit
(** Force the log now, making every queued commit durable. *)

val abort : t -> Dc_access.router -> txn:int -> unit
(** Roll the transaction back through its chain, logging CLRs. *)

exception Undo_interrupted of int
(** Raised by [undo_txn] when the test-only fault fires; carries the number
    of CLRs written before the "crash". *)

val undo_txn :
  ?fault_after_clrs:int -> t -> Dc_access.router -> txn:int -> last:Deut_wal.Lsn.t -> int
(** Undo machinery shared by [abort] and the recovery undo pass: walk the
    backward chain from [last], apply logical compensations (CLR-logged,
    redo-only), skip over already-compensated work via undo-next, finish
    with an abort record.  Returns the number of CLRs written.

    [fault_after_clrs] is fault injection for tests: stop (raising
    {!Undo_interrupted}) after that many CLRs, before the abort record —
    the state of a system that crashed mid-undo.  A subsequent recovery
    must resume compensation at the last CLR's undo-next, never
    compensating the same update twice. *)

val loser_keys : t -> txn:int -> last:Deut_wal.Lsn.t -> (int * int) list
(** The [(table, key)] pairs the loser wrote, read off the same backward
    chain {!undo_txn} compensates (following undo-next over CLRs).  Pure
    in-memory log reads — no data page is touched.  Instant recovery's
    lock substitute: these keys stay blocked until rollback runs. *)

val log_archive_point : t -> Deut_wal.Lsn.t
(** The LSN up to which the log may be archived: the minimum of the master
    record and every active transaction's first LSN ([Lsn.nil] if that is
    unknown, blocking archiving). *)

val checkpoint : t -> Dc_access.router -> unit
(** [Penultimate]: begin-ckpt → RSSP to every shard (each flushes
    everything dirtied before it) → end-ckpt (§3.2).  [Aries_fuzzy]:
    begin-ckpt → capture the DC's runtime DPT in the log → end-ckpt, no
    flushing (§3.1; single-shard only).  Raises [Dc_access.Unavailable]
    if a shard is down — checkpoints wait until every shard is back. *)
