module Lr = Deut_wal.Log_record
module Log_manager = Deut_wal.Log_manager
module Pool = Deut_buffer.Buffer_pool
module Btree = Deut_btree.Btree

type t = {
  engine : Engine.t;
  mutable crashed : bool;
  mutable redo_pending : bool;
  (* The instant-recovery session while redo is still pending: keyed
     client operations are gated on it (a touch of a key some loser wrote
     forces rollback first), whole-table scans force rollback outright. *)
  mutable instant_sess : Recovery.instant option;
}

let touch_gate t ~table ~key =
  match t.instant_sess with
  | Some sess -> Recovery.instant_touch_key sess ~table ~key
  | None -> ()

let scan_gate t =
  match t.instant_sess with Some sess -> Recovery.instant_force_undo sess | None -> ()

type error = Db_error.t =
  | Lock_conflict of { holder : int }
  | Txn_finished
  | No_such_table of int
  | Duplicate_key of { table : int; key : int }
  | Missing_key of { table : int; key : int }
  | Shard_down of int

let error_to_string = Db_error.to_string

module Txn = struct
  type db = t
  type t = { id : int; db : db; client : int; mutable finished : bool }

  let id t = t.id
  let client t = t.client
  let finished t = t.finished
end

let create ?(config = Config.default) () =
  { engine = Engine.fresh config; crashed = false; redo_pending = false; instant_sess = None }

let of_engine engine = { engine; crashed = false; redo_pending = false; instant_sess = None }
let engine t = t.engine
let config t = t.engine.Engine.config

let live t =
  if t.crashed then
    invalid_arg "Db: handle used after Db.crash — recover from the crash image instead"

(* A finished handle is a soft error on the data path ([Txn_finished]);
   a handle from another db is a hard bug, reported immediately. *)
let check_txn t (txn : Txn.t) =
  live t;
  if txn.Txn.db != t then
    invalid_arg "Db: transaction handle belongs to a different db than this one";
  txn.Txn.finished

let guarded t txn f = if check_txn t txn then Error Db_error.Txn_finished else f ()

let router t = Engine.router t.engine

(* Inspection and maintenance refuse to run with a shard down rather than
   hand back a partial view that looks like data loss. *)
let require_all_up t what =
  let e = t.engine in
  for i = 0 to Engine.shard_count e - 1 do
    if not (Engine.shard_up e i) then
      invalid_arg (Printf.sprintf "Db.%s: shard %d is down — recover it first" what i)
  done

let create_table t ~table =
  live t;
  require_all_up t "create_table";
  (* Every shard carries the catalog entry: the table's keys stripe across
     all of them. *)
  Dc_access.iter_endpoints (router t) (fun ep -> Dc_access.create_table ep ~table)

let tables t =
  live t;
  require_all_up t "tables";
  Dc.tables t.engine.Engine.dc

let begin_txn ?(client = 0) t =
  live t;
  { Txn.id = Tc.begin_txn t.engine.Engine.tc; db = t; client; finished = false }

let insert t txn ~table ~key ~value =
  guarded t txn (fun () ->
      touch_gate t ~table ~key;
      Tc.execute t.engine.Engine.tc (router t) ~txn:txn.Txn.id ~table ~key
        ~op:Lr.Insert ~value:(Some value))

let update t txn ~table ~key ~value =
  guarded t txn (fun () ->
      touch_gate t ~table ~key;
      Tc.execute t.engine.Engine.tc (router t) ~txn:txn.Txn.id ~table ~key
        ~op:Lr.Update ~value:(Some value))

let delete t txn ~table ~key =
  guarded t txn (fun () ->
      touch_gate t ~table ~key;
      Tc.execute t.engine.Engine.tc (router t) ~txn:txn.Txn.id ~table ~key
        ~op:Lr.Delete ~value:None)

let read t ~table ~key =
  live t;
  touch_gate t ~table ~key;
  Dc_access.read (Dc_access.endpoint_for (router t) ~table ~key) ~table ~key

let read_locked t txn ~table ~key =
  guarded t txn (fun () ->
      match Tc.read_lock t.engine.Engine.tc ~txn:txn.Txn.id ~table ~key with
      | Ok () -> Ok (read t ~table ~key)
      | Error _ as e -> e)

let finish_txn t (txn : Txn.t) what =
  if check_txn t txn then
    invalid_arg (Printf.sprintf "Db.%s: transaction %d already finished" what txn.Txn.id);
  txn.Txn.finished <- true

let commit_durable t txn =
  finish_txn t txn "commit";
  Tc.commit t.engine.Engine.tc (router t) ~txn:txn.Txn.id

let commit t txn = ignore (commit_durable t txn)

let flush_commits t =
  live t;
  Tc.flush_commits t.engine.Engine.tc (router t)

let abort t txn =
  finish_txn t txn "abort";
  Tc.abort t.engine.Engine.tc (router t) ~txn:txn.Txn.id

let put t ~table ~key ~value =
  let txn = begin_txn t in
  let result =
    match read t ~table ~key with
    | Some _ -> update t txn ~table ~key ~value
    | None -> insert t txn ~table ~key ~value
  in
  (match result with
  | Ok () -> commit t txn
  | Error e ->
      abort t txn;
      failwith ("Db.put: " ^ Db_error.to_string e));
  ()

(* Maintenance that flushes or truncates is deferred while instant
   recovery is still draining: a checkpoint would flush the whole dirty
   set (forcing every pending page through on-demand replay at once,
   defeating the availability story), and log compaction must not cut
   records the drain still has to read. *)
let no_maintenance_while_draining t what =
  if t.redo_pending then
    invalid_arg
      (Printf.sprintf "Db.%s: instant recovery still draining — finish it first" what)

let checkpoint t =
  live t;
  no_maintenance_while_draining t "checkpoint";
  (* RSSP must flush every shard: a checkpoint taken around a down shard
     would advance the master past records that shard still needs. *)
  require_all_up t "checkpoint";
  Tc.checkpoint t.engine.Engine.tc (router t)

let compact_log t =
  live t;
  no_maintenance_while_draining t "compact_log";
  let tc_point = Tc.log_archive_point t.engine.Engine.tc in
  (* In ARIES-checkpointing mode the redo scan can start at the minimum
     rLSN of the runtime DPT, which precedes the checkpoint; keep the log
     back to there. *)
  let point =
    match (config t).Config.checkpoint_mode with
    | Config.Penultimate -> tc_point
    | Config.Aries_fuzzy ->
        Array.fold_left
          (fun acc (_, rlsn, _) -> Deut_wal.Lsn.min acc rlsn)
          tc_point
          (Monitor.runtime_dpt (Dc.monitor t.engine.Engine.dc))
  in
  (if not (Deut_wal.Lsn.is_nil point) then
     let log = t.engine.Engine.log in
     match Log_manager.archive log with
     | Some a ->
         (* Archiving on: seal the prefix into a segment before cutting
            (never drop bytes), and batch cuts below the configured size. *)
         let lo =
           if Deut_wal.Archive.segment_count a > 0 then Deut_wal.Archive.covered_upto a
           else Log_manager.base_lsn log
         in
         if point - lo >= (config t).Config.archive_min_bytes then
           ignore (Log_manager.archive_to log ~upto:point)
     | None -> Log_manager.compact log ~keep_from:point);
  if Engine.split t.engine then
    for i = 0 to Engine.shard_count t.engine - 1 do
      let sh = Engine.shard t.engine i in
      if Engine.shard_up t.engine i then begin
        let dc_point = Dc.dc_archive_point sh.Engine.s_dc in
        if not (Deut_wal.Lsn.is_nil dc_point) then
          Log_manager.compact sh.Engine.s_dc_log ~keep_from:dc_point
      end
    done

let crash t =
  live t;
  t.crashed <- true;
  (* Mark the crash in the black box before the snapshot rides out in the
     image, so a forensic dump ends on the crash record itself. *)
  (match Engine.flight t.engine with
  | Some f -> Deut_obs.Flight.record f ~comp:Deut_obs.Flight.tc Deut_obs.Flight.Crash "crash" ()
  | None -> ());
  Crash_image.capture t.engine

let recover ?config image method_ =
  let engine, stats = Recovery.recover ?config image method_ in
  ({ engine; crashed = false; redo_pending = false; instant_sess = None }, stats)

(* Staged instant recovery: the db is usable immediately; callers
   interleave client work with [instant_step] and close with
   [instant_finish]. *)
type instant = { i_db : t; i_sess : Recovery.instant }

let recover_instant ?config ?undo_fault_after_clrs image =
  let sess = Recovery.recover_instant ?config ?undo_fault_after_clrs image in
  let db =
    {
      engine = Recovery.instant_engine sess;
      crashed = false;
      redo_pending = true;
      instant_sess = Some sess;
    }
  in
  { i_db = db; i_sess = sess }

let instant_db i = i.i_db
let instant_pending i = Recovery.instant_pending_pages i.i_sess
let instant_step i = Recovery.instant_step i.i_sess
let instant_drain i = Recovery.instant_drain i.i_sess

let instant_finish i =
  let stats = Recovery.instant_finish i.i_sess in
  i.i_db.redo_pending <- false;
  i.i_db.instant_sess <- None;
  stats

(* {2 Per-shard crash and recovery} *)

let shard_count t = Engine.shard_count t.engine
let shard_up t ~shard = Engine.shard_up t.engine shard

let crash_shard t ~shard =
  live t;
  if Tc.active_txns t.engine.Engine.tc <> [||] then
    invalid_arg
      "Db.crash_shard: active transactions would be orphaned — commit or abort them first";
  Engine.crash_shard t.engine shard

let recover_shard t ~shard =
  live t;
  Recovery.recover_shard t.engine shard

(* {2 Inspection} *)

(* A whole-table view over shards is the key-sorted merge of each shard's
   disjoint stripe.  Single-shard engines keep the direct B-tree path. *)
let merged_entries t ~table ~fold =
  let e = t.engine in
  let per =
    List.init (Engine.shard_count e) (fun i ->
        let tree = Dc.tree (Engine.shard e i).Engine.s_dc ~table in
        List.rev (fold tree ~init:[] ~f:(fun acc k v -> (k, v) :: acc)))
  in
  List.sort (fun (a, _) (b, _) -> compare a b) (List.concat per)

let fold_table t ~table ~init ~f =
  live t;
  scan_gate t;
  if shard_count t = 1 then Btree.fold_entries (Dc.tree t.engine.Engine.dc ~table) ~init ~f
  else begin
    require_all_up t "fold_table";
    List.fold_left
      (fun acc (k, v) -> f acc k v)
      init
      (merged_entries t ~table ~fold:Btree.fold_entries)
  end

let fold_range t ~table ~lo ~hi ~init ~f =
  live t;
  scan_gate t;
  if shard_count t = 1 then
    Deut_btree.Cursor.fold_range (Dc.tree t.engine.Engine.dc ~table) ~lo ~hi ~init ~f
  else begin
    require_all_up t "fold_range";
    List.fold_left
      (fun acc (k, v) -> f acc k v)
      init
      (merged_entries t ~table ~fold:(fun tree ~init ~f ->
           Deut_btree.Cursor.fold_range tree ~lo ~hi ~init ~f))
  end

let scan t ~table ~lo ~hi =
  List.rev (fold_range t ~table ~lo ~hi ~init:[] ~f:(fun acc k v -> (k, v) :: acc))

let dump_table t ~table =
  List.rev (fold_table t ~table ~init:[] ~f:(fun acc key value -> (key, value) :: acc))

let sum_shards t f =
  let e = t.engine in
  let acc = ref 0 in
  for i = 0 to Engine.shard_count e - 1 do
    acc := !acc + f (Engine.shard e i)
  done;
  !acc

let entry_count t ~table =
  live t;
  scan_gate t;
  if shard_count t = 1 then Btree.entry_count (Dc.tree t.engine.Engine.dc ~table)
  else begin
    require_all_up t "entry_count";
    sum_shards t (fun sh -> Btree.entry_count (Dc.tree sh.Engine.s_dc ~table))
  end

let check_integrity t =
  require_all_up t "check_integrity";
  let e = t.engine in
  let check_shard i =
    let dc = (Engine.shard e i).Engine.s_dc in
    let rec go = function
      | [] -> Ok ()
      | table :: rest -> (
          match Btree.check_tree (Dc.tree dc ~table) with
          | Ok () -> go rest
          | Error msg -> Error (Printf.sprintf "shard %d table %d: %s" i table msg))
    in
    go (Dc.tables dc)
  in
  let rec shards i =
    if i >= Engine.shard_count e then Ok ()
    else match check_shard i with Ok () -> shards (i + 1) | Error _ as err -> err
  in
  shards 0

let dirty_page_count t = sum_shards t (fun sh -> Pool.dirty_count sh.Engine.s_pool)
let cached_page_count t = sum_shards t (fun sh -> Pool.size sh.Engine.s_pool)
let deltas_written t = sum_shards t (fun sh -> Monitor.deltas_written (Dc.monitor sh.Engine.s_dc))
let bws_written t = sum_shards t (fun sh -> Monitor.bws_written (Dc.monitor sh.Engine.s_dc))
let delta_bytes t = sum_shards t (fun sh -> Monitor.delta_bytes (Dc.monitor sh.Engine.s_dc))
let bw_bytes t = sum_shards t (fun sh -> Monitor.bw_bytes (Dc.monitor sh.Engine.s_dc))
let log_end t = Log_manager.end_lsn t.engine.Engine.log
let log_record_count t = Log_manager.record_count t.engine.Engine.log

let allocated_pages t =
  sum_shards t (fun sh -> Deut_storage.Page_store.allocated_count sh.Engine.s_store)
let now_ms t = Deut_sim.Clock.now_ms t.engine.Engine.clock
let stats t = Engine_stats.capture t.engine
let stats_string t = Engine_stats.to_string (stats t)
