module Page = Deut_storage.Page
module Page_store = Deut_storage.Page_store
module Pool = Deut_buffer.Buffer_pool
module Btree = Deut_btree.Btree
module Lr = Deut_wal.Log_record
module Lsn = Deut_wal.Lsn
module Log_manager = Deut_wal.Log_manager
module Clock = Deut_sim.Clock
module Disk = Deut_sim.Disk
module Ivec = Deut_sim.Ivec
module Metrics = Deut_obs.Metrics
module Trace = Deut_obs.Trace

type t = {
  config : Config.t;
  clock : Clock.t;
  disk : Disk.t;
  store : Page_store.t;
  pool : Pool.t;
  trees : (int, Btree.t) Hashtbl.t;
  heights : (int, int) Hashtbl.t;
  monitor : Monitor.t;
  dc_log : Log_manager.t;
  elsn_ref : Lsn.t ref;
  mutable dc_archive : Lsn.t;
  mutable dpt : Dpt.t;
  mutable pf : int array;
  mutable last_delta_tclsn : Lsn.t;
  mutable ticks : int;
  merge_allowed : bool ref;
  trace : Trace.t option;
  mutable redo_track : int option;  (* trace lane override for redo_op spans *)
}

let create ?trace ~config ~clock ~disk ~store ~pool ~dc_log ~tc () =
  let elsn_ref = ref Lsn.nil in
  let monitor =
    Monitor.create ?trace ~config
      ~log_append:(fun r ->
        let lsn = Log_manager.append dc_log r in
        (* With its own log, the DC must make Δ/BW records durable itself —
           nothing else forces that log between checkpoints, and a Δ lost
           in the volatile tail degrades every covered operation to the
           basic-redo fallback.  In the integrated layout they ride the
           TC's commit forces, as in the paper's prototype. *)
        (match config.Config.log_layout with
        | Config.Split -> Log_manager.force dc_log
        | Config.Integrated -> ());
        lsn)
      ~stable_lsn:(fun () -> !elsn_ref)
      ()
  in
  let t =
    {
      config;
      clock;
      disk;
      store;
      pool;
      trees = Hashtbl.create 8;
      heights = Hashtbl.create 8;
      monitor;
      dc_log;
      elsn_ref;
      dc_archive = Lsn.nil;
      dpt = Dpt.create ();
      pf = [||];
      last_delta_tclsn = Lsn.nil;
      ticks = 0;
      merge_allowed = ref true;
      trace;
      redo_track = None;
    }
  in
  Pool.set_hooks pool
    {
      Pool.on_dirty = (fun ~pid ~lsn -> Monitor.on_dirty monitor ~pid ~lsn);
      on_flush = (fun ~pid -> Monitor.on_flush monitor ~pid);
      ensure_stable =
        (fun ~tc_lsn ~dc_lsn ->
          (* WAL on both LSN domains; one shared log in the integrated
             layout just gets forced twice.  The TC-side force is a
             [Force_upto] message — the only request a DC ever makes
             against the TC. *)
          ignore (Dc_access.force_upto tc tc_lsn);
          Log_manager.force_upto dc_log dc_lsn;
          (* The force response carries the new end-of-stable-log. *)
          if tc_lsn > !elsn_ref then elsn_ref := tc_lsn);
    };
  t

let config t = t.config
let pool t = t.pool
let store t = t.store
let monitor t = t.monitor
let clock t = t.clock
let dpt t = t.dpt
let pf_list t = t.pf
let last_delta_tclsn t = t.last_delta_tclsn
let set_dpt t dpt = t.dpt <- dpt
let dc_archive_point t = t.dc_archive
let dc_log t = t.dc_log

(* Append the SMO record, then stamp every touched page with its LSN in
   the DC domain.  The dirty-event value fed to the Δ monitor stays in the
   TC domain: the record's own LSN when the logs are one, the TC
   end-of-stable-log when they are separate. *)
let log_smo t (smo : Lr.smo) =
  let lsn = Log_manager.append t.dc_log (Lr.Smo smo) in
  let event_lsn =
    match t.config.Config.log_layout with
    | Config.Integrated -> lsn
    | Config.Split ->
        (* An SMO is a system transaction that commits synchronously: with
           a separate DC log, a TC commit no longer forces DC records, so a
           transactional operation that depends on this structure change
           could otherwise become durable while the change itself sat in
           the DC log's volatile tail — unrecoverable placement.  SMOs are
           rare, so the force is cheap. *)
        Log_manager.force t.dc_log;
        !(t.elsn_ref)
  in
  Array.iter
    (fun (pid, _) -> Pool.mark_dirty_dc t.pool ~pid ~dc_lsn:lsn ~event_lsn)
    smo.Lr.pages;
  lsn

let format t = Btree.format_store ~pool:t.pool ~log_smo:(log_smo t)

let create_table t ~table =
  let tree =
    Btree.create ~merge_allowed:t.merge_allowed ~pool:t.pool ~table ~log_smo:(log_smo t) ()
  in
  Hashtbl.replace t.trees table tree

let tree t ~table =
  match Hashtbl.find_opt t.trees table with
  | Some tr -> tr
  | None ->
      let tr =
        Btree.open_existing ~merge_allowed:t.merge_allowed ~pool:t.pool ~table
          ~log_smo:(log_smo t) ()
      in
      Hashtbl.replace t.trees table tr;
      tr

let open_tables t =
  let catalog = Pool.get t.pool Btree.catalog_pid in
  List.iter
    (fun (table, _root) -> ignore (tree t ~table))
    (Deut_btree.Catalog.tables catalog)

let tables t =
  let catalog = Pool.get t.pool Btree.catalog_pid in
  List.map fst (Deut_btree.Catalog.tables catalog)

let has_table t ~table =
  Hashtbl.mem t.trees table
  ||
  let catalog = Pool.get t.pool Btree.catalog_pid in
  List.mem_assoc table (Deut_btree.Catalog.tables catalog)

(* {2 Normal execution} *)

let prepare t ~table ~key ~op ~value_len = Btree.prepare_write (tree t ~table) ~key ~op ~value_len

let apply t ~table ~pid ~key ~op ~value ~lsn =
  let tr = tree t ~table in
  match (op, value) with
  | Lr.Insert, Some v -> Btree.apply_insert tr ~pid ~key ~value:v ~lsn
  | Lr.Update, Some v -> Btree.apply_update tr ~pid ~key ~value:v ~lsn
  | Lr.Delete, _ -> Btree.apply_delete tr ~pid ~key ~lsn
  | (Lr.Insert | Lr.Update), None -> invalid_arg "Dc.apply: insert/update without a value"

let read t ~table ~key = Btree.lookup (tree t ~table) ~key

let eosl t lsn = if lsn > !(t.elsn_ref) then t.elsn_ref := lsn
let elsn t = !(t.elsn_ref)

let rssp t _rssp_lsn =
  (* Everything the DC logged before this point will be reflected in
     stable pages once the flush below completes, so the DC log may later
     be archived up to here. *)
  let archive = Log_manager.end_lsn t.dc_log in
  Pool.begin_checkpoint_epoch t.pool;
  Pool.flush_previous_epoch t.pool;
  (* Put the checkpoint's own flush events on the log before end-ckpt, and
     make them durable: the TC writes end-checkpoint only after this call
     returns, so checkpoint completion implies a durable Δ trail. *)
  Monitor.emit_pending t.monitor;
  Log_manager.force t.dc_log;
  t.dc_archive <- archive

let set_merge_allowed t enabled = t.merge_allowed := enabled

let tick_update t =
  t.ticks <- t.ticks + 1;
  Monitor.tick_update t.monitor

(* {2 Recovery} *)

(* Wrap an index traversal so its page fetches and stalls are attributed to
   index IO in the stats (§5.3 reports index waits separately) and its
   page_fetch spans carry the [index] arg the trace profiler splits on. *)
let tracked_index (stats : Recovery_stats.cells) (pool : Pool.t) f =
  let c = Pool.counters pool in
  let fetches0 = c.Pool.misses + c.Pool.prefetch_hits in
  let stall0 = c.Pool.stall_us in
  Pool.set_fetch_index pool true;
  let result = Fun.protect ~finally:(fun () -> Pool.set_fetch_index pool false) f in
  Metrics.add stats.Recovery_stats.index_page_fetches
    (c.Pool.misses + c.Pool.prefetch_hits - fetches0);
  Metrics.fadd stats.Recovery_stats.index_stall_us (c.Pool.stall_us -. stall0);
  result

let height_of t ~table =
  match Hashtbl.find_opt t.heights table with
  | Some h -> h
  | None ->
      let h = Btree.height (tree t ~table) in
      Hashtbl.replace t.heights table h;
      h

(* Reinstall an SMO page image.  The image's embedded TC pLSN (captured
   when the SMO ran) is authoritative for the transactional redo test; the
   DC pLSN is stamped with this record's LSN.  The monitor event stays in
   the TC domain, as in [log_smo]. *)
let install_image t ~pid ~image ~lsn =
  let event_lsn =
    match t.config.Config.log_layout with
    | Config.Integrated -> lsn
    | Config.Split -> !(t.elsn_ref)
  in
  match Pool.get_if_cached t.pool pid with
  | Some page ->
      Page.set_bytes page ~off:0 image;
      Pool.mark_dirty_dc t.pool ~pid ~dc_lsn:lsn ~event_lsn
  | None ->
      let page = Page.of_image ~pid image in
      Page.set_dc_plsn page lsn;
      Pool.install t.pool page ~dirty:true ~event_lsn

let redo_smo t ~lsn ~(smo : Lr.smo) ~dpt_test ~(stats : Recovery_stats.cells) =
  Metrics.incr stats.Recovery_stats.smos_replayed;
  (match t.trace with
  | Some tr ->
      Trace.instant tr ~name:"smo_replay" ~cat:"recovery" ~track:Trace.track_recovery
        ~args:[ ("lsn", lsn); ("pages", Array.length smo.Lr.pages) ]
        ()
  | None -> ());
  Array.iter
    (fun (pid, image) ->
      Page_store.note_allocated t.store pid;
      if dpt_test && not (Dpt.mem t.dpt pid) then ()
      else
        match Pool.get_if_cached t.pool pid with
        | Some page -> if Page.dc_plsn page < lsn then install_image t ~pid ~image ~lsn
        | None ->
            if Page_store.exists t.store pid then begin
              let page = Pool.get t.pool pid in
              if Page.dc_plsn page < lsn then install_image t ~pid ~image ~lsn
            end
            else install_image t ~pid ~image ~lsn)
    smo.Lr.pages

let prune_entry t dpt pid =
  Dpt.remove dpt pid;
  match t.trace with
  | Some tr ->
      Trace.instant tr ~name:"dpt_prune" ~cat:"recovery" ~track:Trace.track_recovery
        ~args:[ ("pid", pid) ] ()
  | None -> ()

let process_delta t ~pf ~prev_delta (d : Lr.delta) =
  let dpt = t.dpt in
  let add_entry pid rlsn = if Dpt.add dpt ~pid ~lsn:rlsn then Ivec.push pf pid in
  if Array.length d.Lr.dirty_lsns > 0 then begin
    (* Appendix D.1 "perfect DPT": exact dirtying LSNs, SQL-grade pruning. *)
    Array.iteri (fun i pid -> add_entry pid d.Lr.dirty_lsns.(i)) d.Lr.dirty;
    if not (Lsn.is_nil d.Lr.fw_lsn) then
      Array.iter
        (fun pid ->
          match Dpt.find dpt pid with
          | Some (rlsn, last) ->
              (* Strict <: FW-LSN is an exclusive end-of-stable-log byte
                 offset; a record starting at it is not covered by the
                 interval's first write (see the same fix in Algorithm 3,
                 recovery.ml). *)
              if last < d.Lr.fw_lsn then prune_entry t dpt pid
              else if rlsn < d.Lr.fw_lsn then Dpt.raise_rlsn dpt ~pid ~to_:d.Lr.fw_lsn
          | None -> ())
        d.Lr.written
  end
  else if Lsn.is_nil d.Lr.fw_lsn && Array.length d.Lr.written > 0 then begin
    (* Appendix D.2 reduced logging: no FW-LSN/FirstDirty.  Every dirty
       entry is stamped with the previous record's TC-LSN; the written set
       may prune only entries last touched before this interval. *)
    Array.iter (fun pid -> add_entry pid prev_delta) d.Lr.dirty;
    Array.iter
      (fun pid ->
        match Dpt.find dpt pid with
        | Some (_, last) when last < prev_delta -> prune_entry t dpt pid
        | Some _ | None -> ())
      d.Lr.written
  end
  else begin
    (* Algorithm 4.  Entries dirtied before the interval's first flush get
       the previous Δ record's TC-LSN as rLSN; later ones get FW-LSN. *)
    Array.iteri
      (fun i pid -> add_entry pid (if i < d.Lr.first_dirty then prev_delta else d.Lr.fw_lsn))
      d.Lr.dirty;
    if not (Lsn.is_nil d.Lr.fw_lsn) then
      Array.iter
        (fun pid ->
          match Dpt.find dpt pid with
          | Some (_, last) when last < d.Lr.fw_lsn -> prune_entry t dpt pid
          | Some (rlsn, _) when rlsn < d.Lr.fw_lsn -> Dpt.raise_rlsn dpt ~pid ~to_:d.Lr.fw_lsn
          | Some _ | None -> ())
        d.Lr.written
  end

let dc_recovery t ~log ~from ~bckpt ~build_dpt ~(stats : Recovery_stats.cells) =
  Hashtbl.reset t.heights;
  t.dpt <- Dpt.create ();
  let pf = Ivec.create ~capacity:1024 () in
  let prev_delta = ref bckpt in
  Log_manager.iter log ~from (fun lsn record ->
      match record with
      | Lr.Smo smo -> redo_smo t ~lsn ~smo ~dpt_test:false ~stats
      | Lr.Delta d when d.Lr.tc_lsn > bckpt ->
          Metrics.incr stats.Recovery_stats.deltas_seen;
          if build_dpt then process_delta t ~pf ~prev_delta:!prev_delta d;
          prev_delta := d.Lr.tc_lsn
      | Lr.Delta _ -> ()
      | Lr.Bw _ -> Metrics.incr stats.Recovery_stats.bws_seen
      | Lr.Update_rec _ | Lr.Commit _ | Lr.Abort _ | Lr.Clr _ | Lr.Begin_ckpt | Lr.End_ckpt _
      | Lr.Aries_ckpt_dpt _ ->
          ());
  t.last_delta_tclsn <- !prev_delta;
  t.pf <- Ivec.to_array pf;
  if build_dpt then Metrics.add stats.Recovery_stats.dpt_size (Dpt.size t.dpt)

let preload_indexes t ~stats =
  List.iter
    (fun table -> tracked_index stats t.pool (fun () -> Btree.preload_index (tree t ~table)))
    (tables t)

let apply_view t ~(view : Lr.redo_view) ~pid ~lsn =
  let tr = tree t ~table:view.Lr.rv_table in
  match (view.Lr.rv_op, view.Lr.rv_value) with
  | Lr.Insert, Some v -> Btree.apply_insert tr ~pid ~key:view.Lr.rv_key ~value:v ~lsn
  | Lr.Update, Some v -> Btree.apply_update tr ~pid ~key:view.Lr.rv_key ~value:v ~lsn
  | Lr.Delete, _ -> Btree.apply_delete tr ~pid ~key:view.Lr.rv_key ~lsn
  | (Lr.Insert | Lr.Update), None -> invalid_arg "Dc.apply_view: insert/update without a value"

(* The pLSN test (sound because a zero-initialised page header reports
   pLSN 0 and the log reserves offset 0 — no record ever carries lsn 0,
   so a fresh page always tests strictly below every record). *)
let fetch_and_test_then_apply t ~lsn ~view ~pid ~(stats : Recovery_stats.cells) =
  let page = Pool.get t.pool pid in
  if lsn <= Page.plsn page then Metrics.incr stats.Recovery_stats.skipped_plsn
  else begin
    apply_view t ~view ~pid ~lsn;
    Metrics.incr stats.Recovery_stats.redo_applied
  end

(* One "redo_op" span per redo candidate, covering CPU charge, index
   traversal (logical) and any page fetch.  Recovery's span accounting
   relies on redo_op spans ≡ redo_candidates. *)
let note_redo_op t ~lsn ~pid ~ts0 =
  match t.trace with
  | Some tr ->
      let track = Option.value t.redo_track ~default:Trace.track_recovery in
      Trace.span tr ~name:"redo_op" ~cat:"recovery" ~track ~ts:ts0
        ~dur:(Clock.now t.clock -. ts0)
        ~args:[ ("lsn", lsn); ("pid", pid) ]
        ()
  | None -> ()

let set_redo_track t track = t.redo_track <- track

let redo_logical t ~lsn ~(view : Lr.redo_view) ~use_dpt ~(stats : Recovery_stats.cells) =
  Metrics.incr stats.Recovery_stats.redo_candidates;
  let ts0 = Clock.now t.clock in
  let height = height_of t ~table:view.Lr.rv_table in
  Clock.advance t.clock
    (t.config.Config.cpu_op_us +. (t.config.Config.cpu_index_level_us *. float_of_int height));
  (* The traversal that turns the logical key into a PID — the extra work
     logical redo cannot avoid (§1.3). *)
  let tr = tree t ~table:view.Lr.rv_table in
  let pid = tracked_index stats t.pool (fun () -> Btree.locate_leaf tr ~key:view.Lr.rv_key) in
  let in_tail = Lsn.is_nil t.last_delta_tclsn || lsn >= t.last_delta_tclsn in
  if use_dpt && in_tail then Metrics.incr stats.Recovery_stats.tail_records;
  (if use_dpt && not in_tail then begin
     match Dpt.find t.dpt pid with
     | None -> Metrics.incr stats.Recovery_stats.skipped_dpt
     | Some (rlsn, _) when lsn < rlsn -> Metrics.incr stats.Recovery_stats.skipped_rlsn
     | Some _ -> fetch_and_test_then_apply t ~lsn ~view ~pid ~stats
   end
   else fetch_and_test_then_apply t ~lsn ~view ~pid ~stats);
  note_redo_op t ~lsn ~pid ~ts0

let redo_physiological t ~lsn ~(view : Lr.redo_view) ~use_dpt ~(stats : Recovery_stats.cells) =
  Metrics.incr stats.Recovery_stats.redo_candidates;
  let ts0 = Clock.now t.clock in
  Clock.advance t.clock t.config.Config.cpu_op_us;
  let pid = view.Lr.rv_pid in
  (if use_dpt then begin
     match Dpt.find t.dpt pid with
     | None -> Metrics.incr stats.Recovery_stats.skipped_dpt
     | Some (rlsn, _) when lsn < rlsn -> Metrics.incr stats.Recovery_stats.skipped_rlsn
     | Some _ -> fetch_and_test_then_apply t ~lsn ~view ~pid ~stats
   end
   else fetch_and_test_then_apply t ~lsn ~view ~pid ~stats);
  note_redo_op t ~lsn ~pid ~ts0

(* {2 The protocol server} *)

(* Serve one [Dc_access] request.  This is the only entry the transports
   call: every protocol interaction — in-process or networked — lands
   here and dispatches to the operations above, so the message API and
   the direct API cannot drift apart. *)
let handle t (req : Dc_access.request) : Dc_access.reply =
  match req with
  | Dc_access.Prepare { table; key; op; value_len } ->
      Dc_access.Prepared (prepare t ~table ~key ~op ~value_len)
  | Dc_access.Apply { table; pid; key; op; value; lsn; tick } ->
      apply t ~table ~pid ~key ~op ~value ~lsn;
      if tick then tick_update t;
      Dc_access.Ack
  | Dc_access.Read { table; key } -> Dc_access.Value (read t ~table ~key)
  | Dc_access.Eosl lsn ->
      eosl t lsn;
      Dc_access.Ack
  | Dc_access.Rssp lsn ->
      rssp t lsn;
      Dc_access.Ack
  | Dc_access.Create_table table ->
      create_table t ~table;
      Dc_access.Ack
  | Dc_access.Has_table table -> Dc_access.Known (has_table t ~table)
  | Dc_access.Runtime_dpt -> Dc_access.Dpt_entries (Monitor.runtime_dpt t.monitor)
  | Dc_access.Redo_logical { lsn; view; use_dpt; stats } ->
      redo_logical t ~lsn ~view ~use_dpt ~stats;
      Dc_access.Ack
  | Dc_access.Redo_physiological { lsn; view; use_dpt; stats } ->
      redo_physiological t ~lsn ~view ~use_dpt ~stats;
      Dc_access.Ack
  | Dc_access.Redo_smo { lsn; smo; dpt_test; stats } ->
      redo_smo t ~lsn ~smo ~dpt_test ~stats;
      Dc_access.Ack
