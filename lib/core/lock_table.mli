(** Key locks for the TC — strict two-phase locking with a no-wait policy.

    The paper factors concurrency control out to its companion ("Locking
    key ranges with unbundled transaction services" [13]); recovery only
    assumes that the TC serialises conflicting transactions somehow.  This
    is the minimal such somehow: per-(table, key) S/X locks held to end of
    transaction.  In a single-threaded engine a conflict cannot wait — the
    holder would never progress — so conflicts fail fast ([Conflict]) and
    the caller aborts, a standard no-wait deadlock-avoidance policy.

    Locks are volatile: a crash discards them; recovery's undo pass needs
    none (losers are rolled back before new work starts). *)

type mode = Shared | Exclusive

type t

val create : unit -> t

val acquire : t -> txn:int -> table:int -> key:int -> mode -> (unit, int) result
(** [Error holder] on conflict, naming one conflicting transaction.
    Re-acquisition and S→X upgrade by a sole holder succeed. *)

val release_all : t -> txn:int -> unit
(** End of transaction (commit or abort): drop every lock the transaction
    holds. *)

val held_by : t -> txn:int -> int
(** Number of locks the transaction holds (diagnostics, tests). *)

val locked_keys : t -> int
(** Number of keys with at least one holder. *)

val conflicts : t -> int
(** Cumulative count of acquisitions refused under the no-wait policy. *)
