type mode = Shared | Exclusive

(* Per-key state: either any number of sharers, or one exclusive owner. *)
type entry = { mutable owners : (int * mode) list }

type t = {
  locks : (int * int, entry) Hashtbl.t;  (* (table, key) -> holders *)
  by_txn : (int, (int * int) list ref) Hashtbl.t;  (* txn -> keys it holds *)
  mutable conflicts : int;  (* acquisitions refused under no-wait *)
}

let create () = { locks = Hashtbl.create 1024; by_txn = Hashtbl.create 32; conflicts = 0 }

let note_held t ~txn addr =
  match Hashtbl.find_opt t.by_txn txn with
  | Some keys -> keys := addr :: !keys
  | None -> Hashtbl.replace t.by_txn txn (ref [ addr ])

let acquire t ~txn ~table ~key mode =
  let addr = (table, key) in
  match Hashtbl.find_opt t.locks addr with
  | None ->
      Hashtbl.replace t.locks addr { owners = [ (txn, mode) ] };
      note_held t ~txn addr;
      Ok ()
  | Some entry -> (
      let mine = List.assoc_opt txn entry.owners in
      let others = List.filter (fun (owner, _) -> owner <> txn) entry.owners in
      match (mode, mine, others) with
      | _, Some Exclusive, _ ->
          (* Already exclusive: covers both requests. *)
          Ok ()
      | Shared, Some Shared, _ -> Ok ()
      | Shared, None, _ when List.for_all (fun (_, m) -> m = Shared) others ->
          entry.owners <- (txn, Shared) :: entry.owners;
          note_held t ~txn addr;
          Ok ()
      | Exclusive, Some Shared, [] ->
          (* Sole sharer: upgrade in place. *)
          entry.owners <- [ (txn, Exclusive) ];
          Ok ()
      | Exclusive, None, [] ->
          entry.owners <- [ (txn, Exclusive) ];
          note_held t ~txn addr;
          Ok ()
      | _, _, (holder, _) :: _ ->
          t.conflicts <- t.conflicts + 1;
          Error holder
      | _, _, [] -> Error txn (* unreachable: no others yet not grantable *))

let release_all t ~txn =
  match Hashtbl.find_opt t.by_txn txn with
  | None -> ()
  | Some keys ->
      List.iter
        (fun addr ->
          match Hashtbl.find_opt t.locks addr with
          | None -> ()
          | Some entry ->
              entry.owners <- List.filter (fun (owner, _) -> owner <> txn) entry.owners;
              if entry.owners = [] then Hashtbl.remove t.locks addr)
        !keys;
      Hashtbl.remove t.by_txn txn

let held_by t ~txn =
  match Hashtbl.find_opt t.by_txn txn with Some keys -> List.length !keys | None -> 0

let locked_keys t = Hashtbl.length t.locks
let conflicts t = t.conflicts
