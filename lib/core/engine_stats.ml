(** Introspection: one snapshot record over every counter the engine
    keeps — cache, disks, logs, monitors — with a human-readable
    rendering.  [Db.stats]/[Db.stats_string] expose it to users.

    Values are read from the engine's metrics registry (the gauges
    [Engine.assemble] registers) rather than by crawling component
    records, so this module and any external consumer see the same
    namespace. *)

module Metrics = Deut_obs.Metrics

type latency = { n : int; p50_us : float; p95_us : float; p99_us : float }
(** Percentiles of a latency histogram, quantised to its log-scale bucket
    bounds; all zero when nothing was observed. *)

type t = {
  (* cache *)
  cache_capacity : int;
  cache_resident : int;
  cache_dirty : int;
  hits : int;
  misses : int;
  hit_rate : float;
  evictions : int;
  flushes : int;
  prefetch_issued : int;
  prefetch_hits : int;
  stalls : int;
  stall_ms : float;
  stall_wait : latency;  (** cache.stall_wait_us percentiles *)
  (* data disk *)
  data_pages_read : int;
  data_pages_written : int;
  data_seeks : int;
  data_sequential : int;
  data_io : latency;  (** disk.data.io_us percentiles *)
  log_io : latency;  (** disk.log.io_us percentiles *)
  (* logs *)
  split_logs : bool;
  tc_log_records : int;
  tc_log_bytes : int;
  tc_log_retained_bytes : int;
  tc_log_forces : int;
  dc_log_records : int;
  dc_log_retained_bytes : int;
  (* archive *)
  archive_segments : int;
  archive_bytes : int;
  archive_cuts : int;
  archive_pages_written : int;
  archive_pages_read : int;
  archive_io : latency;  (** disk.archive.io_us percentiles *)
  (* monitors *)
  delta_records : int;
  delta_bytes : int;
  bw_records : int;
  bw_bytes : int;
  (* transactions *)
  txn_commits : int;
  txn_aborts : int;
  lock_conflicts : int;
  locked_keys : int;
  commit_latency : latency;  (** txn.commit_latency_us percentiles (request → durable) *)
  (* instant recovery (zeros unless the engine came out of InstantLog2) *)
  recovery_ttft_ms : float;
  recovery_drained_ms : float;
  recovery_pages_ondemand : int;
  recovery_pages_background : int;
  (* database *)
  allocated_pages : int;
  stable_pages : int;
  tables : int;
  sim_now_ms : float;
}

let capture (engine : Engine.t) =
  let m = Engine.metrics engine in
  let gi name = Metrics.read_int m name in
  let gf name = Metrics.read m name in
  let latency name =
    match Metrics.find_histogram m name with
    | Some h ->
        {
          n = Metrics.observations h;
          p50_us = Metrics.percentile h 50.0;
          p95_us = Metrics.percentile h 95.0;
          p99_us = Metrics.percentile h 99.0;
        }
    | None -> { n = 0; p50_us = 0.0; p95_us = 0.0; p99_us = 0.0 }
  in
  (* Read every gauge before [tables] below touches the cache (listing the
     catalog) and perturbs the counters being reported. *)
  let cache_capacity = gi "cache.capacity"
  and cache_resident = gi "cache.resident"
  and cache_dirty = gi "cache.dirty"
  and hits = gi "cache.hits"
  and misses = gi "cache.misses"
  and prefetch_hits = gi "cache.prefetch_hits"
  and prefetch_issued = gi "cache.prefetch_issued"
  and evictions = gi "cache.evictions"
  and flushes = gi "cache.flushes"
  and stalls = gi "cache.stalls"
  and stall_us = gf "cache.stall_us"
  and data_pages_read = gi "disk.data.pages_read"
  and data_pages_written = gi "disk.data.pages_written"
  and data_seeks = gi "disk.data.seeks"
  and data_sequential = gi "disk.data.sequential"
  and tc_log_records = gi "log.tc.records"
  and tc_log_bytes = gi "log.tc.end_lsn"
  and tc_log_base = gi "log.tc.base_lsn"
  and tc_log_forces = gi "log.tc.forces"
  and archive_segments = gi "archive.segments"
  and archive_bytes = gi "archive.bytes"
  and archive_cuts = gi "archive.cuts"
  and archive_pages_written = gi "disk.archive.pages_written"
  and archive_pages_read = gi "disk.archive.pages_read"
  and dc_log_records = gi "log.dc.records"
  and dc_log_bytes = gi "log.dc.end_lsn"
  and dc_log_base = gi "log.dc.base_lsn"
  and delta_records = gi "monitor.delta_records"
  and delta_bytes = gi "monitor.delta_bytes"
  and bw_records = gi "monitor.bw_records"
  and bw_bytes = gi "monitor.bw_bytes"
  and allocated_pages = gi "store.allocated"
  and stable_pages = gi "store.stable"
  and txn_commits = gi "tc.commits"
  and txn_aborts = gi "tc.aborts"
  and lock_conflicts = gi "locks.conflicts"
  and locked_keys = gi "locks.keys"
  and sim_now_us = gf "clock.now_us" in
  (* recovery.* instruments exist only after a recovery ran on this
     engine's registry; a fresh engine has none. *)
  let gf0 name = if Metrics.mem m name then Metrics.read m name else 0.0 in
  let recovery_ttft_us = gf0 "recovery.ttft_us"
  and recovery_drained_us = gf0 "recovery.drained_us"
  and recovery_pages_ondemand = truncate (gf0 "recovery.pages_ondemand")
  and recovery_pages_background = truncate (gf0 "recovery.pages_background") in
  let lookups = hits + misses + prefetch_hits in
  {
    cache_capacity;
    cache_resident;
    cache_dirty;
    hits;
    misses;
    hit_rate = (if lookups = 0 then 1.0 else float_of_int hits /. float_of_int lookups);
    evictions;
    flushes;
    prefetch_issued;
    prefetch_hits;
    stalls;
    stall_ms = stall_us /. 1000.0;
    stall_wait = latency "cache.stall_wait_us";
    data_pages_read;
    data_pages_written;
    data_seeks;
    data_sequential;
    data_io = latency "disk.data.io_us";
    log_io = latency "disk.log.io_us";
    split_logs = Engine.split engine;
    tc_log_records;
    tc_log_bytes;
    tc_log_retained_bytes = tc_log_bytes - tc_log_base;
    tc_log_forces;
    dc_log_records;
    dc_log_retained_bytes = dc_log_bytes - dc_log_base;
    archive_segments;
    archive_bytes;
    archive_cuts;
    archive_pages_written;
    archive_pages_read;
    archive_io = latency "disk.archive.io_us";
    delta_records;
    delta_bytes;
    bw_records;
    bw_bytes;
    txn_commits;
    txn_aborts;
    lock_conflicts;
    locked_keys;
    commit_latency = latency "txn.commit_latency_us";
    recovery_ttft_ms = recovery_ttft_us /. 1000.0;
    recovery_drained_ms = recovery_drained_us /. 1000.0;
    recovery_pages_ondemand;
    recovery_pages_background;
    allocated_pages;
    stable_pages;
    tables = List.length (Dc.tables engine.Engine.dc);
    sim_now_ms = sim_now_us /. 1000.0;
  }

let to_string t =
  let b = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "database:   %d tables, %d pages allocated (%d stable)" t.tables t.allocated_pages
    t.stable_pages;
  line "cache:      %d/%d resident, %d dirty; hits %d / misses %d (%.1f%% hit rate)"
    t.cache_resident t.cache_capacity t.cache_dirty t.hits t.misses (100.0 *. t.hit_rate);
  line "            evictions %d, flushes %d, prefetch %d issued / %d used, stalls %d (%.1f ms)"
    t.evictions t.flushes t.prefetch_issued t.prefetch_hits t.stalls t.stall_ms;
  line "data disk:  %d pages read, %d written; %d seeks, %d sequential" t.data_pages_read
    t.data_pages_written t.data_seeks t.data_sequential;
  let lat name (l : latency) =
    if l.n > 0 then
      line "%s  n %d, p50 %.0f µs, p95 %.0f µs, p99 %.0f µs (bucket upper bounds)" name l.n
        l.p50_us l.p95_us l.p99_us
  in
  lat "  io lat:   " t.data_io;
  lat "  log lat:  " t.log_io;
  lat "  stall lat:" t.stall_wait;
  line "tc log:     %d records, %d bytes (%d retained), %d forces" t.tc_log_records
    t.tc_log_bytes t.tc_log_retained_bytes t.tc_log_forces;
  if t.split_logs then
    line "dc log:     %d records, %d bytes retained (split layout)" t.dc_log_records
      t.dc_log_retained_bytes;
  if t.archive_segments > 0 || t.archive_cuts > 0 then begin
    line "archive:    %d segments (%d B sealed), %d cuts; %d pages written, %d read"
      t.archive_segments t.archive_bytes t.archive_cuts t.archive_pages_written
      t.archive_pages_read;
    lat "  arch lat: " t.archive_io
  end;
  line "monitors:   %d Δ records (%d B), %d BW records (%d B)" t.delta_records t.delta_bytes
    t.bw_records t.bw_bytes;
  if t.txn_commits > 0 || t.txn_aborts > 0 then begin
    line "txns:       %d commits, %d aborts, %d lock conflicts (%d keys locked)" t.txn_commits
      t.txn_aborts t.lock_conflicts t.locked_keys;
    lat "  commit:   " t.commit_latency
  end;
  if t.recovery_ttft_ms > 0.0 then
    line "instant:    open at %.1f ms, drained at %.1f ms; pages on-demand %d, background %d"
      t.recovery_ttft_ms t.recovery_drained_ms t.recovery_pages_ondemand
      t.recovery_pages_background;
  line "sim clock:  %.1f ms" t.sim_now_ms;
  Buffer.contents b
