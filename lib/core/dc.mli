(** The data component (DC): pages, B-trees, cache, and the physical
    bookkeeping for recovery.

    The DC owns data placement.  It maps (table, key) to pages, manages the
    buffer pool, logs SMOs and Δ/BW records, and at recovery time runs
    {b before} the TC: its recovery pass replays SMO page images (so
    B-trees are well-formed for logical redo) and builds the DPT from
    Δ-log records per Algorithm 4.

    The TC talks to it through a narrow interface: [prepare]/[apply] for
    data operations, [eosl] (end of stable log) and [rssp] (redo scan
    start point = checkpoint flush request) for the two control operations
    of §4.1, and the redo entry points used by the recovery drivers. *)

type t

val create :
  ?trace:Deut_obs.Trace.t ->
  config:Config.t ->
  clock:Deut_sim.Clock.t ->
  disk:Deut_sim.Disk.t ->
  store:Deut_storage.Page_store.t ->
  pool:Deut_buffer.Buffer_pool.t ->
  dc_log:Deut_wal.Log_manager.t ->
  tc:Dc_access.tc_endpoint ->
  unit ->
  t
(** [dc_log] is where the DC's own records (SMOs, Δ, BW) go — the shared
    log in the integrated layout, its own log in the split layout.  Wires
    the buffer-pool hooks: dirty/flush events feed the monitor, and flushes
    enforce WAL on both logs (the TC log through [tc]'s [Force_upto]
    message — the DC's only request against the TC — and the DC log
    directly). *)

val config : t -> Config.t
val pool : t -> Deut_buffer.Buffer_pool.t
val store : t -> Deut_storage.Page_store.t
val monitor : t -> Monitor.t
val clock : t -> Deut_sim.Clock.t

val format : t -> unit
(** Initialise the catalog on a fresh store. *)

val create_table : t -> table:int -> unit
val open_tables : t -> unit
(** Attach to every table in the (recovered) catalog. *)

val tree : t -> table:int -> Deut_btree.Btree.t
val tables : t -> int list

val has_table : t -> table:int -> bool
(** Whether the table is attached or present in the catalog (checked
    before routing an operation, so a bad table id is a typed error
    rather than a failed catalog lookup). *)

(** {2 Normal execution} *)

val prepare : t -> table:int -> key:int -> op:Deut_wal.Log_record.op_kind -> value_len:int
  -> Deut_btree.Btree.write_target
(** Route to the leaf, splitting as needed so the apply cannot fail;
    returns the before-image for the TC's log record. *)

val apply :
  t ->
  table:int ->
  pid:int ->
  key:int ->
  op:Deut_wal.Log_record.op_kind ->
  value:string option ->
  lsn:Deut_wal.Lsn.t ->
  unit

val read : t -> table:int -> key:int -> string option

val eosl : t -> Deut_wal.Lsn.t -> unit
(** TC's "end of stable log" notification; the value feeds FW-LSN and
    TC-LSN fields of Δ/BW records. *)

val elsn : t -> Deut_wal.Lsn.t

val rssp : t -> Deut_wal.Lsn.t -> unit
(** Redo-scan-start-point request: flip the checkpoint epoch, flush every
    page dirtied before it, and emit the pending Δ/BW records so that the
    flush events precede the end-checkpoint record on the log.  Also
    records the DC-log archive point: everything the DC logged before this
    checkpoint is now reflected in stable pages. *)

val dc_archive_point : t -> Deut_wal.Lsn.t
(** DC-log position before the last completed checkpoint's flush — the DC
    log may be archived up to here ([Lsn.nil] before any checkpoint). *)

val dc_log : t -> Deut_wal.Log_manager.t

val tick_update : t -> unit

val set_merge_allowed : t -> bool -> unit
(** Gate the B-trees' opportunistic leaf merging (off during redo). *)

val set_redo_track : t -> int option -> unit
(** Override the trace lane for subsequent [redo_op] spans ([None] restores
    the recovery track).  Parallel redo points this at the active worker's
    lane before each record so the trace shows per-worker replay. *)

(** {2 Recovery} *)

val dc_recovery :
  t ->
  log:Deut_wal.Log_manager.t ->
  from:Deut_wal.Lsn.t ->
  bckpt:Deut_wal.Lsn.t ->
  build_dpt:bool ->
  stats:Recovery_stats.cells ->
  unit
(** The DC redo/analysis pass (§4.2): scan the DC's records starting at
    [from] (the checkpoint position in the integrated layout; the retained
    start of the short DC log in the split layout), replay SMO page images
    (DC-pLSN-guarded), and — when [build_dpt] — construct the DPT and
    prefetch list from Δ-log records with TC-LSN beyond [bckpt]
    (Algorithm 4; exact-LSN and reduced-logging record shapes of Appendix D
    are handled by the record contents).  Also records the last Δ record's
    TC-LSN, the boundary between DPT-tested redo and tail fallback. *)

val dpt : t -> Dpt.t
val pf_list : t -> int array
val last_delta_tclsn : t -> Deut_wal.Lsn.t

val set_dpt : t -> Dpt.t -> unit
(** Install an externally built DPT (the SQL analysis pass, Algorithm 3). *)

val preload_indexes : t -> stats:Recovery_stats.cells -> unit
(** Appendix A.1: load all internal index pages into the cache. *)

val tracked_index : Recovery_stats.cells -> Deut_buffer.Buffer_pool.t -> (unit -> 'a) -> 'a
(** Run an index traversal with its page fetches and stalls attributed to
    the index IO cells (§5.3 reports index waits separately).  Exposed for
    the domain-parallel redo driver, whose partition-ownership leaf
    locates happen outside [redo_logical]. *)

val redo_logical :
  t ->
  lsn:Deut_wal.Lsn.t ->
  view:Deut_wal.Log_record.redo_view ->
  use_dpt:bool ->
  stats:Recovery_stats.cells ->
  unit
(** Algorithms 2 (without DPT) and 5 (with): traverse the B-tree by key,
    apply the DPT/rLSN tests when the operation predates the last Δ
    record, fetch the page, apply the pLSN test, re-execute if needed. *)

val redo_physiological :
  t ->
  lsn:Deut_wal.Lsn.t ->
  view:Deut_wal.Log_record.redo_view ->
  use_dpt:bool ->
  stats:Recovery_stats.cells ->
  unit
(** Algorithm 1: DPT/rLSN tests on the record's pid, then pLSN test. *)

val redo_smo :
  t ->
  lsn:Deut_wal.Lsn.t ->
  smo:Deut_wal.Log_record.smo ->
  dpt_test:bool ->
  stats:Recovery_stats.cells ->
  unit
(** Install the SMO's page images where the DC pLSN shows them missing.
    With [dpt_test], pages absent from the DPT are skipped without IO (the
    physiological pass); without, the stable DC pLSN decides (the DC pass,
    which runs before any DPT exists). *)

(** {2 The protocol server} *)

val handle : t -> Dc_access.request -> Dc_access.reply
(** Serve one {!Dc_access} request — the single dispatch every transport
    (in-process or networked) lands on, so the message protocol and the
    direct API above cannot drift apart.  [Apply] with [tick] folds the
    Δ-monitor update tick into the same message. *)
