(** Normal-execution dirty/flush monitoring: the DC-side bookkeeping that
    makes optimized recovery possible.

    One monitor accumulates, in parallel:
    - the paper's Δ-log record state (§4.1): DirtySet (every clean→dirty
      transition — capturing {e all} of these is a correctness requirement),
      WrittenSet, FW-LSN (end of stable log at the interval's first flush),
      FirstDirty (index in DirtySet of the first page dirtied after that
      flush);
    - SQL Server's BW-log record state (§3.3): WrittenSet + FW-LSN;
    - in [Aries_fuzzy] checkpoint mode, the runtime DPT (pid → rLSN) that
      classic ARIES captures at checkpoints (§3.1).

    Emission cadence follows §5.2: a periodic emission every
    [delta_period] updates writes the Δ-record immediately before the
    BW-record; additionally a DirtySet reaching [delta_capacity] forces a
    Δ-only emission (the "cache fills" case that makes Δ records more
    numerous than BW records in Figure 2(c)), and a full WrittenSet forces
    both. *)

type t

val create :
  ?trace:Deut_obs.Trace.t ->
  config:Config.t ->
  log_append:(Deut_wal.Log_record.t -> Deut_wal.Lsn.t) ->
  stable_lsn:(unit -> Deut_wal.Lsn.t) ->
  unit ->
  t
(** [trace] records a [delta_emit] / [bw_emit] instant (with set sizes) on
    the monitor track for every record written. *)

val on_dirty : t -> pid:int -> lsn:Deut_wal.Lsn.t -> unit
val on_flush : t -> pid:int -> unit

val tick_update : t -> unit
(** Called once per logged update; drives the periodic emission. *)

val emit_pending : t -> unit
(** Flush accumulated state to the log now (checkpoint boundary), so flush
    events from the checkpoint's own flushing are on the log before the
    end-checkpoint record. *)

val deltas_written : t -> int
val bws_written : t -> int
val delta_bytes : t -> int
val bw_bytes : t -> int

val runtime_dpt : t -> (int * Deut_wal.Lsn.t * Deut_wal.Lsn.t) array
(** Snapshot of the runtime dirty-page map (pid, rLSN, rLSN) — the DPT an
    ARIES checkpoint writes.  Only tracked in [Aries_fuzzy] mode. *)
