(** Typed errors for the transactional API.

    Lives below both [Tc] and [Db] so the same constructors flow from the
    lock table and DC checks out through the public facade without string
    matching.  [Db] re-exports this type as [Db.error]. *)

type t =
  | Lock_conflict of { holder : int }
      (** The no-wait lock table refused the lock; [holder] is one
          transaction currently holding it.  The caller is expected to
          abort and retry after a backoff. *)
  | Txn_finished
      (** The transaction handle was already committed or aborted. *)
  | No_such_table of int
  | Duplicate_key of { table : int; key : int }
  | Missing_key of { table : int; key : int }
  | Shard_down of int
      (** The data component holding this key is crashed and not yet
          recovered; siblings keep serving.  The caller should abort the
          transaction and retry after [Db.recover_shard]. *)

let to_string = function
  | Lock_conflict { holder } -> Printf.sprintf "lock conflict with txn %d" holder
  | Txn_finished -> "transaction already committed or aborted"
  | No_such_table table -> Printf.sprintf "no such table %d" table
  | Duplicate_key { table; key } -> Printf.sprintf "duplicate key %d in table %d" key table
  | Missing_key { table; key } -> Printf.sprintf "missing key %d in table %d" key table
  | Shard_down shard -> Printf.sprintf "shard %d is down" shard
