module Lr = Deut_wal.Log_record
module Lsn = Deut_wal.Lsn
module Log_manager = Deut_wal.Log_manager

type t = {
  config : Config.t;
  log : Log_manager.t;
  trace : Deut_obs.Trace.t option;
  flight : Deut_obs.Flight.t option;
  mutable next_txn : int;
  active : (int, Lsn.t) Hashtbl.t;  (* txn -> lastLSN of its chain *)
  starts : (int, Lsn.t) Hashtbl.t;  (* txn -> first LSN ([nil] = unknown) *)
  locks : Lock_table.t;
  mutable queued_commits : int;
  mutable master : Lsn.t;
  mutable commits : int;  (* commits this engine lifetime *)
  mutable aborts : int;  (* explicit aborts (recovery undo not counted) *)
}

let create ?trace ?flight ~config ~log () =
  {
    config;
    log;
    trace;
    flight;
    next_txn = 1;
    active = Hashtbl.create 32;
    starts = Hashtbl.create 32;
    locks = Lock_table.create ();
    queued_commits = 0;
    master = Lsn.nil;
    commits = 0;
    aborts = 0;
  }
let log t = t.log
let master t = t.master
let set_master t lsn = t.master <- lsn

let begin_txn t =
  let txn = t.next_txn in
  t.next_txn <- txn + 1;
  Hashtbl.replace t.active txn Lsn.nil;
  txn

let active_txns t =
  Hashtbl.fold (fun txn last acc -> (txn, last) :: acc) t.active []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  |> Array.of_list

let restore_txn_state t ~losers ~next_txn =
  Hashtbl.reset t.active;
  Hashtbl.reset t.starts;
  List.iter
    (fun (txn, last) ->
      Hashtbl.replace t.active txn last;
      (* First LSN unknown for a loser; [nil] blocks log archiving until
         the undo pass finishes it. *)
      Hashtbl.replace t.starts txn Lsn.nil)
    losers;
  t.next_txn <- next_txn

(* The log may be archived up to here: no recovery scan (master) nor undo
   chain (active transactions' first records) can reach further back. *)
let log_archive_point t =
  Hashtbl.fold (fun _ first acc -> Lsn.min first acc) t.starts t.master

let last_lsn_of t txn =
  match Hashtbl.find_opt t.active txn with
  | Some lsn -> lsn
  | None -> invalid_arg (Printf.sprintf "Tc: transaction %d is not active" txn)

let lock t ~txn ~table ~key mode =
  if not t.config.Config.locking then Ok ()
  else
    match Lock_table.acquire t.locks ~txn ~table ~key mode with
    | Ok () -> Ok ()
    | Error holder -> Error (Db_error.Lock_conflict { holder })

let read_lock t ~txn ~table ~key = lock t ~txn ~table ~key Lock_table.Shared
let locks_held t ~txn = Lock_table.held_by t.locks ~txn
let lock_conflicts t = Lock_table.conflicts t.locks
let locked_keys t = Lock_table.locked_keys t.locks
let commit_count t = t.commits
let abort_count t = t.aborts

(* One data operation, end to end over the protocol: route the key to its
   shard, [Prepare] there (before-image back), log the logical record on
   the TC log, [Apply] under the record's LSN (the apply message carries
   the Δ-monitor tick).  A crashed shard surfaces as [Shard_down] — the
   transaction can abort while siblings keep serving. *)
let execute t router ~txn ~table ~key ~op ~value =
  let prev_lsn = last_lsn_of t txn in
  let value_len = match value with Some v -> String.length v | None -> 0 in
  try
    let ep = Dc_access.endpoint_for router ~table ~key in
    if not (Dc_access.has_table ep ~table) then Error (Db_error.No_such_table table)
    else
    match lock t ~txn ~table ~key Lock_table.Exclusive with
    | Error _ as e -> e
    | Ok () ->
    match Dc_access.prepare ep ~table ~key ~op ~value_len with
    | Deut_btree.Btree.Duplicate_key -> Error (Db_error.Duplicate_key { table; key })
    | Deut_btree.Btree.Missing_key -> Error (Db_error.Missing_key { table; key })
    | Deut_btree.Btree.Leaf { pid; before } ->
        let lsn =
          Log_manager.append t.log
            (Lr.Update_rec { txn; table; key; op; before; after = value; pid_hint = pid; prev_lsn })
        in
        if Lsn.is_nil prev_lsn then Hashtbl.replace t.starts txn lsn;
        Hashtbl.replace t.active txn lsn;
        Dc_access.apply ep ~table ~pid ~key ~op ~value ~lsn ~tick:true;
        Ok ()
  with Dc_access.Unavailable shard -> Error (Db_error.Shard_down shard)

let force_now t router =
  Log_manager.force t.log;
  t.queued_commits <- 0;
  (* EOSL to every live shard; a crashed one is re-seeded at recovery. *)
  Dc_access.broadcast_eosl router (Log_manager.stable_lsn t.log)

let flush_commits t router = force_now t router

let commit t router ~txn =
  ignore (last_lsn_of t txn);
  ignore (Log_manager.append t.log (Lr.Commit { txn }));
  Hashtbl.remove t.active txn;
  Hashtbl.remove t.starts txn;
  Lock_table.release_all t.locks ~txn;
  t.commits <- t.commits + 1;
  t.queued_commits <- t.queued_commits + 1;
  if t.queued_commits >= Stdlib.max 1 t.config.Config.group_commit then begin
    force_now t router;
    true
  end
  else false

exception Undo_interrupted of int

(* Walk the backward chain, compensating each update.  CLRs are redo-only:
   their undo-next pointer lets a crash-interrupted undo resume where it
   left off instead of compensating twice. *)
let undo_txn ?fault_after_clrs t router ~txn ~last =
  let clrs = ref 0 in
  let maybe_fault () =
    match fault_after_clrs with
    | Some n when !clrs >= n ->
        (* Simulated crash mid-undo: the CLRs written so far are on the
           log; the transaction stays unresolved. *)
        Log_manager.force t.log;
        raise (Undo_interrupted !clrs)
    | Some _ | None -> ()
  in
  let compensate (u : Lr.update) =
    let op, value =
      match u.Lr.op with
      | Lr.Insert -> (Lr.Delete, None)
      | Lr.Update -> (Lr.Update, u.Lr.before)
      | Lr.Delete -> (Lr.Insert, u.Lr.before)
    in
    let value_len = match value with Some v -> String.length v | None -> 0 in
    let ep = Dc_access.endpoint_for router ~table:u.Lr.table ~key:u.Lr.key in
    match Dc_access.prepare ep ~table:u.Lr.table ~key:u.Lr.key ~op ~value_len with
    | Deut_btree.Btree.Leaf { pid; _ } ->
        let lsn =
          Log_manager.append t.log
            (Lr.Clr
               {
                 txn;
                 table = u.Lr.table;
                 key = u.Lr.key;
                 op;
                 value;
                 pid_hint = pid;
                 undo_next = u.Lr.prev_lsn;
               })
        in
        Hashtbl.replace t.active txn lsn;
        (* Compensations do not tick the Δ monitor, as before. *)
        Dc_access.apply ep ~table:u.Lr.table ~pid ~key:u.Lr.key ~op ~value ~lsn ~tick:false;
        incr clrs
    | Deut_btree.Btree.Duplicate_key | Deut_btree.Btree.Missing_key ->
        failwith "Tc.undo_txn: compensation rejected — state diverged from the log"
  in
  let rec walk lsn =
    maybe_fault ();
    if not (Lsn.is_nil lsn) then begin
      let record, _next = Log_manager.read_at t.log lsn in
      match record with
      | Lr.Update_rec u when u.Lr.txn = txn ->
          compensate u;
          walk u.Lr.prev_lsn
      | Lr.Clr c when c.Lr.txn = txn -> walk c.Lr.undo_next
      | other ->
          failwith
            (Printf.sprintf "Tc.undo_txn: unexpected record in txn %d chain: %s" txn
               (Lr.describe other))
    end
  in
  walk last;
  ignore (Log_manager.append t.log (Lr.Abort { txn }));
  Hashtbl.remove t.active txn;
  Hashtbl.remove t.starts txn;
  Lock_table.release_all t.locks ~txn;
  force_now t router;
  !clrs

(* The (table, key) pairs a loser transaction wrote, gathered from the same
   backward chain [undo_txn] compensates.  Pure in-memory log reads — no
   page is touched.  Instant recovery uses this as its lock substitute:
   key locks are not persisted (§2.1), so the set of keys whose rollback
   is still outstanding must be reconstructed from the log before new
   transactions are admitted. *)
let loser_keys t ~txn ~last =
  let keys = ref [] in
  let rec walk lsn =
    if not (Lsn.is_nil lsn) then
      match fst (Log_manager.read_at t.log lsn) with
      | Lr.Update_rec u when u.Lr.txn = txn ->
          keys := (u.Lr.table, u.Lr.key) :: !keys;
          walk u.Lr.prev_lsn
      | Lr.Clr c when c.Lr.txn = txn ->
          keys := (c.Lr.table, c.Lr.key) :: !keys;
          walk c.Lr.undo_next
      | other ->
          failwith
            (Printf.sprintf "Tc.loser_keys: unexpected record in txn %d chain: %s" txn
               (Lr.describe other))
  in
  walk last;
  !keys

let abort t router ~txn =
  t.aborts <- t.aborts + 1;
  ignore (undo_txn t router ~txn ~last:(last_lsn_of t txn))

let flight_ckpt t what ~lsn =
  match t.flight with
  | Some f -> Deut_obs.Flight.record f ~comp:Deut_obs.Flight.tc Deut_obs.Flight.Ckpt what ~lsn ()
  | None -> ()

let checkpoint t router =
  let ts0 = match t.trace with Some tr -> Deut_obs.Trace.now tr | None -> 0.0 in
  let bckpt = Log_manager.append t.log Lr.Begin_ckpt in
  flight_ckpt t "begin_ckpt" ~lsn:bckpt;
  force_now t router;
  (match t.config.Config.checkpoint_mode with
  | Config.Penultimate ->
      (* RSSP to every shard: each must flush everything dirtied before
         [bckpt] before the checkpoint may complete.  A crashed shard
         cannot honour it, so the [Unavailable] propagates — checkpoints
         wait until every shard is back. *)
      Dc_access.iter_endpoints router (fun ep -> Dc_access.rssp ep bckpt)
  | Config.Aries_fuzzy ->
      (* Single-shard only (the assembly bars it otherwise): the captured
         DPT holds physical pids, meaningless across shards. *)
      let entries = Dc_access.runtime_dpt router.Dc_access.endpoints.(0) in
      ignore (Log_manager.append t.log (Lr.Aries_ckpt_dpt { entries })));
  ignore (Log_manager.append t.log (Lr.End_ckpt { bckpt; active = active_txns t }));
  force_now t router;
  t.master <- bckpt;
  flight_ckpt t "end_ckpt" ~lsn:bckpt;
  match t.trace with
  | Some tr ->
      Deut_obs.Trace.span tr ~name:"ckpt" ~cat:"recovery" ~track:Deut_obs.Trace.track_recovery
        ~ts:ts0
        ~dur:(Deut_obs.Trace.now tr -. ts0)
        ~args:[ ("bckpt", bckpt) ] ()
  | None -> ()
