(** Measurements of one recovery run — the quantities behind every figure
    and table in the paper's evaluation (§5.3, Appendices B and C).

    Two representations: {!cells} is the live form the recovery passes
    mutate — metric handles registered in a {!Deut_obs.Metrics.t} registry
    under ["recovery.*"] names, so the CLI and [Engine_stats] can read them
    uniformly — and {!t} is the plain frozen record callers receive from
    [Recovery.recover] (same field names; take a {!snapshot} when the run
    is over). *)

module Metrics = Deut_obs.Metrics

type cells = {
  analysis_us : Metrics.dial;
  redo_us : Metrics.dial;
  undo_us : Metrics.dial;
  ttft_us : Metrics.dial;
  drained_us : Metrics.dial;
  records_scanned : Metrics.counter;
  redo_candidates : Metrics.counter;
  redo_applied : Metrics.counter;
  skipped_dpt : Metrics.counter;
  skipped_rlsn : Metrics.counter;
  skipped_plsn : Metrics.counter;
  tail_records : Metrics.counter;
  data_page_fetches : Metrics.counter;
  index_page_fetches : Metrics.counter;
  data_stall_us : Metrics.dial;
  index_stall_us : Metrics.dial;
  log_pages_read : Metrics.counter;
  dpt_size : Metrics.counter;
  deltas_seen : Metrics.counter;
  bws_seen : Metrics.counter;
  smos_replayed : Metrics.counter;
  losers : Metrics.counter;
  clrs_written : Metrics.counter;
  prefetch_issued : Metrics.counter;
  prefetch_hits : Metrics.counter;
  stalls : Metrics.counter;
  pages_ondemand : Metrics.counter;
  pages_background : Metrics.counter;
}

(* Frozen snapshot.  Field names deliberately mirror [cells]; OCaml's
   type-directed disambiguation keeps uses apart. *)
type t = {
  analysis_us : float;  (** DC-recovery / analysis pass time *)
  redo_us : float;
  undo_us : float;
  ttft_us : float;
      (** instant recovery: clock when the engine opened for transactions
          (0 for the offline modes, where opening = full recovery) *)
  drained_us : float;
      (** instant recovery: clock when the last pending page was replayed *)
  records_scanned : int;  (** redo-range records examined *)
  redo_candidates : int;  (** update/CLR records subjected to a redo test *)
  redo_applied : int;
  skipped_dpt : int;  (** bypassed: page not in DPT (no page fetch) *)
  skipped_rlsn : int;  (** bypassed: LSN below the entry's rLSN (no fetch) *)
  skipped_plsn : int;  (** fetched, then bypassed by the pLSN test *)
  tail_records : int;  (** logical ops past the last Δ record (basic mode) *)
  data_page_fetches : int;
  index_page_fetches : int;
  data_stall_us : float;
  index_stall_us : float;
  log_pages_read : int;
  dpt_size : int;
  deltas_seen : int;  (** Δ-log records seen by the analysis pass (Fig. 2c) *)
  bws_seen : int;  (** BW-log records seen by the analysis pass (Fig. 2c) *)
  smos_replayed : int;
  losers : int;
  clrs_written : int;
  prefetch_issued : int;
  prefetch_hits : int;
  stalls : int;
  pages_ondemand : int;  (** pages replayed from the fault hook *)
  pages_background : int;  (** pages replayed by the background drain *)
}

let reset (s : cells) =
  Metrics.fset s.analysis_us 0.0;
  Metrics.fset s.redo_us 0.0;
  Metrics.fset s.undo_us 0.0;
  Metrics.fset s.ttft_us 0.0;
  Metrics.fset s.drained_us 0.0;
  Metrics.fset s.data_stall_us 0.0;
  Metrics.fset s.index_stall_us 0.0;
  Metrics.reset_counter s.records_scanned;
  Metrics.reset_counter s.redo_candidates;
  Metrics.reset_counter s.redo_applied;
  Metrics.reset_counter s.skipped_dpt;
  Metrics.reset_counter s.skipped_rlsn;
  Metrics.reset_counter s.skipped_plsn;
  Metrics.reset_counter s.tail_records;
  Metrics.reset_counter s.data_page_fetches;
  Metrics.reset_counter s.index_page_fetches;
  Metrics.reset_counter s.log_pages_read;
  Metrics.reset_counter s.dpt_size;
  Metrics.reset_counter s.deltas_seen;
  Metrics.reset_counter s.bws_seen;
  Metrics.reset_counter s.smos_replayed;
  Metrics.reset_counter s.losers;
  Metrics.reset_counter s.clrs_written;
  Metrics.reset_counter s.prefetch_issued;
  Metrics.reset_counter s.prefetch_hits;
  Metrics.reset_counter s.stalls;
  Metrics.reset_counter s.pages_ondemand;
  Metrics.reset_counter s.pages_background

let create ?metrics () : cells =
  let m = match metrics with Some m -> m | None -> Metrics.create () in
  let c name = Metrics.counter m ("recovery." ^ name) in
  let d name = Metrics.dial m ("recovery." ^ name) in
  let cells : cells =
    {
      analysis_us = d "analysis_us";
      redo_us = d "redo_us";
      undo_us = d "undo_us";
      ttft_us = d "ttft_us";
      drained_us = d "drained_us";
      records_scanned = c "records_scanned";
      redo_candidates = c "redo_candidates";
      redo_applied = c "redo_applied";
      skipped_dpt = c "skipped_dpt";
      skipped_rlsn = c "skipped_rlsn";
      skipped_plsn = c "skipped_plsn";
      tail_records = c "tail_records";
      data_page_fetches = c "data_page_fetches";
      index_page_fetches = c "index_page_fetches";
      data_stall_us = d "data_stall_us";
      index_stall_us = d "index_stall_us";
      log_pages_read = c "log_pages_read";
      dpt_size = c "dpt_size";
      deltas_seen = c "deltas_seen";
      bws_seen = c "bws_seen";
      smos_replayed = c "smos_replayed";
      losers = c "losers";
      clrs_written = c "clrs_written";
      prefetch_issued = c "prefetch_issued";
      prefetch_hits = c "prefetch_hits";
      stalls = c "stalls";
      pages_ondemand = c "pages_ondemand";
      pages_background = c "pages_background";
    }
  in
  (* Registering an already-registered name hands back the existing
     instrument, so under a shared registry (the memoized harness reuses
     one engine's metrics across cells) these handles may carry a previous
     run's totals — zero them so every recovery starts from scratch. *)
  reset cells;
  cells

let snapshot (s : cells) : t =
  {
    analysis_us = Metrics.value s.analysis_us;
    redo_us = Metrics.value s.redo_us;
    undo_us = Metrics.value s.undo_us;
    ttft_us = Metrics.value s.ttft_us;
    drained_us = Metrics.value s.drained_us;
    records_scanned = Metrics.count s.records_scanned;
    redo_candidates = Metrics.count s.redo_candidates;
    redo_applied = Metrics.count s.redo_applied;
    skipped_dpt = Metrics.count s.skipped_dpt;
    skipped_rlsn = Metrics.count s.skipped_rlsn;
    skipped_plsn = Metrics.count s.skipped_plsn;
    tail_records = Metrics.count s.tail_records;
    data_page_fetches = Metrics.count s.data_page_fetches;
    index_page_fetches = Metrics.count s.index_page_fetches;
    data_stall_us = Metrics.value s.data_stall_us;
    index_stall_us = Metrics.value s.index_stall_us;
    log_pages_read = Metrics.count s.log_pages_read;
    dpt_size = Metrics.count s.dpt_size;
    deltas_seen = Metrics.count s.deltas_seen;
    bws_seen = Metrics.count s.bws_seen;
    smos_replayed = Metrics.count s.smos_replayed;
    losers = Metrics.count s.losers;
    clrs_written = Metrics.count s.clrs_written;
    prefetch_issued = Metrics.count s.prefetch_issued;
    prefetch_hits = Metrics.count s.prefetch_hits;
    stalls = Metrics.count s.stalls;
    pages_ondemand = Metrics.count s.pages_ondemand;
    pages_background = Metrics.count s.pages_background;
  }

let redo_ms (t : t) = t.redo_us /. 1000.0
let analysis_ms (t : t) = t.analysis_us /. 1000.0
let undo_ms (t : t) = t.undo_us /. 1000.0
let total_ms (t : t) = (t.analysis_us +. t.redo_us +. t.undo_us) /. 1000.0
let ttft_ms (t : t) = t.ttft_us /. 1000.0
let drained_ms (t : t) = t.drained_us /. 1000.0

let pp fmt (t : t) =
  Format.fprintf fmt
    "@[<v>analysis %.1f ms, redo %.1f ms, undo %.1f ms@,\
     records: scanned %d, candidates %d, applied %d, tail %d@,\
     skips: dpt %d, rlsn %d, plsn %d@,\
     fetches: data %d (stall %.1f ms), index %d (stall %.1f ms), log pages %d@,\
     dpt %d entries; Δ seen %d, BW seen %d, SMO replayed %d@,\
     prefetch: issued %d, hits %d, stalls %d@,\
     undo: losers %d, CLRs %d@]"
    (analysis_ms t) (redo_ms t) (undo_ms t) t.records_scanned t.redo_candidates t.redo_applied
    t.tail_records t.skipped_dpt t.skipped_rlsn t.skipped_plsn t.data_page_fetches
    (t.data_stall_us /. 1000.0)
    t.index_page_fetches
    (t.index_stall_us /. 1000.0)
    t.log_pages_read t.dpt_size t.deltas_seen t.bws_seen t.smos_replayed t.prefetch_issued
    t.prefetch_hits t.stalls t.losers t.clrs_written;
  if t.ttft_us > 0.0 then
    Format.fprintf fmt
      "@\ninstant: open at %.1f ms, drained at %.1f ms; pages on-demand %d, background %d"
      (ttft_ms t) (drained_ms t) t.pages_ondemand t.pages_background

let to_string t = Format.asprintf "%a" pp t
