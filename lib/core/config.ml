(** Engine configuration: all knobs for the experiments in one record. *)

(** The Appendix D spectrum of DC logging (§D):
    - [Standard] — the paper's Δ-log record: DirtySet, WrittenSet, FW-LSN,
      FirstDirty, TC-LSN.
    - [Perfect] — §D.1: DirtySet entries carry their exact dirtying LSNs
      (DirtyLSNs array), so the DC can rebuild the same DPT SQL Server
      would.
    - [Reduced] — §D.2: no FW-LSN / FirstDirty; every dirty entry gets the
      previous Δ record's TC-LSN as its rLSN, and the written set may prune
      only entries from earlier Δ records. *)
type dpt_mode = Standard | Perfect | Reduced

let dpt_mode_to_string = function
  | Standard -> "standard"
  | Perfect -> "perfect"
  | Reduced -> "reduced"

(** Checkpointing scheme:
    - [Penultimate] — SQL Server's scheme (§3.2): begin-checkpoint, flush
      everything dirtied before it, end-checkpoint; recovery starts at the
      last completed checkpoint's begin record with an empty DPT.
    - [Aries_fuzzy] — classic ARIES (§3.1): capture the runtime DPT in the
      checkpoint without flushing; redo starts at the minimum rLSN. *)
type checkpoint_mode = Penultimate | Aries_fuzzy

let checkpoint_mode_to_string = function
  | Penultimate -> "penultimate"
  | Aries_fuzzy -> "aries-fuzzy"

(** Where DC records (SMO page images, Δ- and BW-records) are logged:
    - [Integrated] — the paper's prototype (§5.1): one shared log carries
      both TC and DC records, so physiological and logical recovery can run
      side-by-side from the same log.
    - [Split] — the Deuteronomy architecture proper (§4.2): the DC has its
      own log with its own LSN space (pages carry a separate DC pLSN), and
      DC recovery scans only that short log.  Only the logical methods can
      recover in this layout. *)
type log_layout = Integrated | Split

let log_layout_to_string = function Integrated -> "integrated" | Split -> "split"

(** Data-page prefetch source for Log2 (Appendix A.2):
    - [Pf_list] — the paper's choice: a "log-driven" read-ahead over the
      PF-list, the deduplicated concatenation of Δ-record DirtySets in
      update order.
    - [Dpt_order] — the alternative the paper discusses: prefetch the DPT's
      pages in ascending rLSN order, independent of the log. *)
type prefetch_source = Pf_list | Dpt_order

let prefetch_source_to_string = function Pf_list -> "pf-list" | Dpt_order -> "dpt-order"

let prefetch_source_of_string = function
  | "pf-list" -> Some Pf_list
  | "dpt-order" -> Some Dpt_order
  | _ -> None

type t = {
  page_size : int;
  pool_pages : int;  (** cache capacity in pages *)
  block_pages : int;  (** pages per prefetch block IO *)
  data_disk : Deut_sim.Disk.params;
  log_disk : Deut_sim.Disk.params;
  delta_period : int;  (** updates between periodic Δ/BW-record emissions *)
  delta_capacity : int;  (** DirtySet/WrittenSet entries that force an emission *)
  lazy_writer_every : int;
      (** flush one dirty page per this many cache {e misses} (0 = off):
          miss-pressure-driven background cleaning (SQL Server's lazy
          writer) whose flush events give the DPT something to prune; a
          cache larger than the working set sees little of it, so its DPT
          keeps growing — the paper's large-cache regime *)
  dpt_mode : dpt_mode;
  checkpoint_mode : checkpoint_mode;
  cpu_op_us : float;  (** CPU cost charged per redo log record *)
  cpu_index_level_us : float;  (** extra CPU per B-tree level for logical redo *)
  prefetch_window : int;  (** top up prefetch when in-flight drops below this *)
  prefetch_chunk : int;  (** pids submitted per top-up *)
  prefetch_lookahead : int;  (** SQL2 log read-ahead horizon, in records *)
  prefetch_source : prefetch_source;  (** Log2's data-prefetch driver (App. A.2) *)
  redo_workers : int;
      (** simulated parallel redo workers (1 = sequential replay).  Records
          are applied in log order regardless, so recovery results are
          identical for any count; workers only overlap CPU and page-fetch
          stalls on the shared virtual clock.  Defaults from the
          [DEUT_REDO_WORKERS] environment variable when set. *)
  log_layout : log_layout;  (** integrated (§5.1 prototype) or split (§4.2) *)
  locking : bool;
      (** strict 2PL key locks at the TC (no-wait conflicts), the minimal
          stand-in for the companion locking paper [13]; off by default —
          the recovery experiments are single-transaction-at-a-time *)
  group_commit : int;
      (** force the log every Nth commit (1 = every commit, the paper's
          setting).  Queued commits are {e not durable} until the next
          force — a crash loses them, and recovery correctly treats them
          as losers. *)
  clients : int;
      (** simulated concurrent clients driving normal execution (1 = one
          serial client).  Like [redo_workers], clients are a timing
          overlay on the virtual clock: transaction descriptors come from
          a shared seeded stream in hand-out (ticket) order and commits
          are gated to ticket order, so the committed state is identical
          at any client count — only timing, aborts and IO overlap vary.
          Defaults from the [DEUT_CLIENTS] environment variable when
          set. *)
  think_us : float;
      (** mean client think time between transactions, in simulated µs *)
  retry_backoff_us : float;
      (** base delay for the seeded exponential backoff a client applies
          after a no-wait lock conflict aborts its transaction *)
  flight : bool;
      (** keep the always-on flight recorder ({!Deut_obs.Flight}): a small
          bounded ring of recent protocol/durability history per component
          that rides inside crash images for [repro_cli forensics].  On by
          default — recording is O(1) into preallocated rings and never
          advances the simulated clock, so it cannot perturb results; the
          switch exists for the zero-observer-effect tests.  Defaults from
          [DEUT_FLIGHT]. *)
  flight_capacity : int;
      (** flight-recorder ring size per component, in events
          ([DEUT_FLIGHT_CAP]) *)
  tracing : bool;
      (** record structured events (virtual-clock timestamped) into the
          engine's trace ring; off by default — recording is skipped
          entirely when disabled and never advances the simulated clock
          either way *)
  trace_capacity : int;  (** trace ring-buffer size, in events *)
  archive : bool;
      (** archive the live log to sealed segments on a dedicated device and
          truncate it at the archive point on every [Db.compact_log]; off
          by default.  Archiving is a background overlay on the virtual
          clock (segment writes are fire-and-forget on their own disk), so
          enabling it cannot perturb simulated results.  Defaults from the
          [DEUT_ARCHIVE] environment variable when set. *)
  archive_min_bytes : int;
      (** skip an archiving cut that would move fewer than this many bytes
          (0 = cut whenever the archive point advances): batches segment
          churn under workloads that checkpoint frequently *)
  archive_disk : Deut_sim.Disk.params;  (** the archive device's cost model *)
  shards : int;
      (** data-component shards (1 = the single-DC engine).  With more than
          one, the key space is striped ([key mod shards]) across
          independent DCs — each with its own buffer pool (an equal slice
          of [pool_pages]), page store, data disk and DC log — driven by
          the one TC through the {!Dc_access} message protocol; the TC log
          stays the single commit order, so cross-shard transactions
          commit atomically.  Implies the split log layout per shard
          (Δ/BW/SMO records never share the TC log), which bars the
          physiological methods, ARIES fuzzy checkpoints and InstantLog2.
          Defaults from the [DEUT_SHARDS] environment variable when
          set. *)
  domains : int;
      (** real OS-level parallelism: the number of OCaml domains the bench
          harness fans method × cache cells across, and that recovery uses
          to execute page-disjoint redo partitions on real cores (1 = the
          single-domain reference scheduler).  Recovered state (store and
          logical digests) and apply counts are byte-identical at any
          domain count — the tier-1 determinism gate enforces it; simulated
          IO accounting and phase times reflect the parallel schedule, the
          way they already vary with [redo_workers].  Defaults from the
          [DEUT_DOMAINS] environment variable when set. *)
  net : bool;
      (** route TC↔DC messages over simulated network links
          ({!Deut_net.Link}) with the [net_*] cost model below; off by
          default — the in-process transport adds zero simulated time, so
          [shards = 1] without [net] is byte-identical to the pre-protocol
          engine.  Defaults from [DEUT_NET]. *)
  net_latency_us : float;  (** one-way message latency ([DEUT_NET_LATENCY_US]) *)
  net_jitter_us : float;  (** uniform extra delay per message ([DEUT_NET_JITTER_US]) *)
  net_loss : float;  (** message loss probability ([DEUT_NET_LOSS]) *)
  net_reorder : float;  (** reorder (late-arrival) probability ([DEUT_NET_REORDER]) *)
  net_timeout_us : float;  (** retransmit timeout after a loss ([DEUT_NET_TIMEOUT_US]) *)
  seed : int;
}

let default_redo_workers =
  match Sys.getenv_opt "DEUT_REDO_WORKERS" with
  | Some s -> ( match int_of_string_opt (String.trim s) with Some n when n >= 1 -> n | _ -> 1)
  | None -> 1

let default_clients =
  match Sys.getenv_opt "DEUT_CLIENTS" with
  | Some s -> ( match int_of_string_opt (String.trim s) with Some n when n >= 1 -> n | _ -> 1)
  | None -> 1

let default_shards =
  match Sys.getenv_opt "DEUT_SHARDS" with
  | Some s -> ( match int_of_string_opt (String.trim s) with Some n when n >= 1 -> n | _ -> 1)
  | None -> 1

let default_domains =
  match Sys.getenv_opt "DEUT_DOMAINS" with
  | Some s -> ( match int_of_string_opt (String.trim s) with Some n when n >= 1 -> n | _ -> 1)
  | None -> 1

(* Environment overrides, applied to an already-built config so callers
   can layer them over experiment-specific settings.  Invalid or
   out-of-range values are ignored rather than fatal — the env is a
   convenience channel, not a config file. *)
let of_env config =
  let pos_int name current =
    match Sys.getenv_opt name with
    | Some s -> (
        match int_of_string_opt (String.trim s) with Some n when n >= 1 -> n | _ -> current)
    | None -> current
  in
  let nonneg_int name current =
    match Sys.getenv_opt name with
    | Some s -> (
        match int_of_string_opt (String.trim s) with Some n when n >= 0 -> n | _ -> current)
    | None -> current
  in
  let flag name current =
    match Sys.getenv_opt name with
    | Some s -> ( match String.trim s with "1" | "true" | "yes" -> true | "0" | "false" | "no" -> false | _ -> current)
    | None -> current
  in
  let nonneg_float name current =
    match Sys.getenv_opt name with
    | Some s -> (
        match float_of_string_opt (String.trim s) with Some f when f >= 0.0 -> f | _ -> current)
    | None -> current
  in
  {
    config with
    trace_capacity = pos_int "DEUT_TRACE_CAP" config.trace_capacity;
    flight = flag "DEUT_FLIGHT" config.flight;
    flight_capacity = pos_int "DEUT_FLIGHT_CAP" config.flight_capacity;
    redo_workers = pos_int "DEUT_REDO_WORKERS" config.redo_workers;
    clients = pos_int "DEUT_CLIENTS" config.clients;
    archive = flag "DEUT_ARCHIVE" config.archive;
    archive_min_bytes = nonneg_int "DEUT_ARCHIVE_MIN_BYTES" config.archive_min_bytes;
    shards = pos_int "DEUT_SHARDS" config.shards;
    domains = pos_int "DEUT_DOMAINS" config.domains;
    net = flag "DEUT_NET" config.net;
    net_latency_us = nonneg_float "DEUT_NET_LATENCY_US" config.net_latency_us;
    net_jitter_us = nonneg_float "DEUT_NET_JITTER_US" config.net_jitter_us;
    net_loss = nonneg_float "DEUT_NET_LOSS" config.net_loss;
    net_reorder = nonneg_float "DEUT_NET_REORDER" config.net_reorder;
    net_timeout_us = nonneg_float "DEUT_NET_TIMEOUT_US" config.net_timeout_us;
  }

let default =
  {
    page_size = 8192;
    pool_pages = 1024;
    block_pages = 8;
    data_disk = Deut_sim.Disk.default_params;
    log_disk =
      {
        Deut_sim.Disk.seek_us = 4000.0;
        transfer_us = 50.0;
        sequential_gap = 4;
        batch_seek_factor = 0.75;
      };
    delta_period = 1000;
    delta_capacity = 256;
    lazy_writer_every = 1;
    dpt_mode = Standard;
    checkpoint_mode = Penultimate;
    cpu_op_us = 2.0;
    cpu_index_level_us = 1.0;
    prefetch_window = 32;
    prefetch_chunk = 16;
    prefetch_lookahead = 512;
    prefetch_source = Pf_list;
    redo_workers = default_redo_workers;
    log_layout = Integrated;
    locking = false;
    group_commit = 1;
    clients = default_clients;
    think_us = 300.0;
    retry_backoff_us = 150.0;
    flight = true;
    flight_capacity = 128;
    tracing = false;
    trace_capacity = 65536;
    archive = (match Sys.getenv_opt "DEUT_ARCHIVE" with
              | Some s -> ( match String.trim s with "1" | "true" | "yes" -> true | _ -> false)
              | None -> false);
    archive_min_bytes = 0;
    (* Sequential device: segment copies and restart scans are streaming
       workloads, so give the archive a long sequential-gap like the log
       disk's. *)
    archive_disk =
      {
        Deut_sim.Disk.seek_us = 4000.0;
        transfer_us = 50.0;
        sequential_gap = 4;
        batch_seek_factor = 0.75;
      };
    shards = default_shards;
    domains = default_domains;
    net = (match Sys.getenv_opt "DEUT_NET" with
          | Some s -> ( match String.trim s with "1" | "true" | "yes" -> true | _ -> false)
          | None -> false);
    (* A LAN-ish default cost model, only charged when [net] is on. *)
    net_latency_us = 50.0;
    net_jitter_us = 0.0;
    net_loss = 0.0;
    net_reorder = 0.0;
    net_timeout_us = 1000.0;
    seed = 42;
  }
