module Lr = Deut_wal.Log_record
module Lsn = Deut_wal.Lsn
module Log_manager = Deut_wal.Log_manager
module Clock = Deut_sim.Clock
module Disk = Deut_sim.Disk
module Pool = Deut_buffer.Buffer_pool
module Metrics = Deut_obs.Metrics
module Trace = Deut_obs.Trace
module Flight = Deut_obs.Flight

type method_ = Log0 | Log1 | Log2 | Sql1 | Sql2 | Aries_ckpt | InstantLog2

let method_to_string = function
  | Log0 -> "Log0"
  | Log1 -> "Log1"
  | Log2 -> "Log2"
  | Sql1 -> "SQL1"
  | Sql2 -> "SQL2"
  | Aries_ckpt -> "ARIES-ckpt"
  | InstantLog2 -> "InstantLog2"

let all_methods = [ Log0; Log1; Sql1; Log2; Sql2 ]
let all_methods_with_instant = all_methods @ [ InstantLog2 ]

let is_logical = function
  | Log0 | Log1 | Log2 | InstantLog2 -> true
  | Sql1 | Sql2 | Aries_ckpt -> false

type scan_result = {
  records : (Lsn.t * Lr.t) array;
  losers : (int * Lsn.t) list;
  max_txn : int;
}

(* Materialise the redo range once (charging its log IO) and reconstruct
   the transaction table: losers are transactions with logged work but no
   commit/abort, seeded from the end-checkpoint's captured table for
   transactions whose records all precede the scan start. *)
let scan_log log ~from =
  let records = ref [] in
  let n = ref 0 in
  let last = Hashtbl.create 32 in
  let finished = Hashtbl.create 32 in
  let max_txn = ref 0 in
  let note_txn txn = if txn > !max_txn then max_txn := txn in
  let track lsn record =
    match record with
    | Lr.Update_rec u ->
        note_txn u.Lr.txn;
        Hashtbl.replace last u.Lr.txn lsn
    | Lr.Clr c ->
        note_txn c.Lr.txn;
        Hashtbl.replace last c.Lr.txn lsn
    | Lr.Commit { txn } | Lr.Abort { txn } ->
        note_txn txn;
        Hashtbl.remove last txn;
        Hashtbl.replace finished txn ()
    | Lr.End_ckpt { active; _ } ->
        Array.iter
          (fun (txn, last_lsn) ->
            note_txn txn;
            if (not (Hashtbl.mem finished txn)) && not (Hashtbl.mem last txn) then
              if not (Lsn.is_nil last_lsn) then Hashtbl.replace last txn last_lsn)
          active
    | Lr.Begin_ckpt | Lr.Aries_ckpt_dpt _ | Lr.Bw _ | Lr.Delta _ | Lr.Smo _ -> ()
  in
  Log_manager.iter log ~from (fun lsn record ->
      records := (lsn, record) :: !records;
      incr n;
      track lsn record);
  let arr = Array.make !n (Lsn.nil, Lr.Begin_ckpt) in
  let () =
    (* The list is in reverse scan order. *)
    List.iteri (fun i entry -> arr.(!n - 1 - i) <- entry) !records
  in
  let losers =
    Hashtbl.fold (fun txn lsn acc -> (txn, lsn) :: acc) last []
    |> List.sort (fun (_, a) (_, b) -> Lsn.compare b a)
  in
  { records = arr; losers; max_txn = !max_txn }

(* Algorithm 3: SQL Server's analysis pass. *)
let sql_analysis ?trace log ~from ~(stats : Recovery_stats.cells) =
  let dpt = Dpt.create () in
  let prune pid =
    Dpt.remove dpt pid;
    match trace with
    | Some tr ->
        Trace.instant tr ~name:"dpt_prune" ~cat:"recovery" ~track:Trace.track_recovery
          ~args:[ ("pid", pid) ] ()
    | None -> ()
  in
  Log_manager.iter log ~from (fun lsn record ->
      match record with
      | Lr.Update_rec u -> ignore (Dpt.add dpt ~pid:u.Lr.pid_hint ~lsn)
      | Lr.Clr c -> ignore (Dpt.add dpt ~pid:c.Lr.pid_hint ~lsn)
      | Lr.Smo smo -> Array.iter (fun (pid, _) -> ignore (Dpt.add dpt ~pid ~lsn)) smo.Lr.pages
      | Lr.Bw b ->
          Metrics.incr stats.Recovery_stats.bws_seen;
          Array.iter
            (fun pid ->
              match Dpt.find dpt pid with
              | Some (rlsn, last) ->
                  (* The paper's Algorithm 3 removes on lastLSN ≤ FW-LSN,
                     with record-numbered LSNs.  Our LSNs are byte offsets,
                     so FW-LSN (an end-of-stable-log) is EXCLUSIVE: a
                     record starting exactly at FW-LSN was appended after
                     the first write and is not covered by the flush — the
                     test must be strict.  (Algorithm 4 is already written
                     with a strict <.) *)
                  if last < b.Lr.fw_lsn then prune pid
                  else if rlsn < b.Lr.fw_lsn then Dpt.raise_rlsn dpt ~pid ~to_:b.Lr.fw_lsn
              | None -> ())
            b.Lr.written
      | Lr.Delta _ -> Metrics.incr stats.Recovery_stats.deltas_seen
      | Lr.Commit _ | Lr.Abort _ | Lr.Begin_ckpt | Lr.End_ckpt _ | Lr.Aries_ckpt_dpt _ -> ());
  Metrics.add stats.Recovery_stats.dpt_size (Dpt.size dpt);
  dpt

(* §3.1: classic ARIES analysis — seed from the checkpoint-captured DPT,
   add first mentions, no flush-based pruning. *)
let aries_analysis log ~from ~(stats : Recovery_stats.cells) =
  let dpt = Dpt.create () in
  let seeded = ref false in
  Log_manager.iter log ~from (fun lsn record ->
      match record with
      | Lr.Update_rec u -> ignore (Dpt.add dpt ~pid:u.Lr.pid_hint ~lsn)
      | Lr.Clr c -> ignore (Dpt.add dpt ~pid:c.Lr.pid_hint ~lsn)
      | Lr.Smo smo -> Array.iter (fun (pid, _) -> ignore (Dpt.add dpt ~pid ~lsn)) smo.Lr.pages
      | Lr.Aries_ckpt_dpt { entries } when not !seeded ->
          seeded := true;
          Array.iter
            (fun (pid, rlsn, last_lsn) ->
              match Dpt.find dpt pid with
              | Some (existing_rlsn, _) when existing_rlsn <= rlsn -> ()
              | Some _ | None -> Dpt.add_exact dpt ~pid ~rlsn ~last_lsn)
            entries
      | Lr.Aries_ckpt_dpt _ -> ()
      | Lr.Bw _ -> Metrics.incr stats.Recovery_stats.bws_seen
      | Lr.Delta _ -> Metrics.incr stats.Recovery_stats.deltas_seen
      | Lr.Commit _ | Lr.Abort _ | Lr.Begin_ckpt | Lr.End_ckpt _ -> ());
  Metrics.add stats.Recovery_stats.dpt_size (Dpt.size dpt);
  let redo_start =
    let m = Dpt.min_rlsn dpt in
    if Lsn.is_nil m then from else if Lsn.is_nil from then m else Lsn.min m from
  in
  (dpt, redo_start)

(* Data-page prefetch driver for Log2 (Appendix A.2): keep the in-flight
   set topped up from either the PF-list (the paper's log-driven choice,
   deduplicated DirtySets in update order, skipping entries since pruned
   from the DPT) or the DPT itself in ascending rLSN order (the discussed
   alternative). *)
let make_pf_prefetcher dc ~lane ~workers =
  let pf =
    match (Dc.config dc).Config.prefetch_source with
    | Config.Pf_list -> Dc.pf_list dc
    | Config.Dpt_order -> Array.of_list (Dpt.entries_by_rlsn (Dc.dpt dc))
  in
  let pool = Dc.pool dc in
  let config = Dc.config dc in
  (* Each worker owns a contiguous segment of the PF list: segments keep
     the list's update-order locality, so per-worker batches still coalesce
     on the disk the way the single sequential pipeline's did. *)
  let len = Array.length pf in
  let hi = len * (lane + 1) / workers in
  let pos = ref (len * lane / workers) in
  fun () ->
    if Pool.in_flight_count ~lane pool < config.Config.prefetch_window then begin
      let chunk = ref [] in
      let picked = ref 0 in
      while !picked < config.Config.prefetch_chunk && !pos < hi do
        let pid = pf.(!pos) in
        incr pos;
        if Dpt.mem (Dc.dpt dc) pid then begin
          chunk := pid :: !chunk;
          incr picked
        end
      done;
      if !chunk <> [] then Pool.prefetch pool ~lane (List.rev !chunk)
    end

(* Log-driven prefetch for SQL2 (Appendix A.2): examine records ahead of
   the redo cursor; pids that pass the DPT/rLSN test are prefetched.
   [owns] restricts the window to the records this worker will replay. *)
let make_log_prefetcher dc ~lane ?owns (records : (Lsn.t * Lr.t) array) =
  let pool = Dc.pool dc in
  let config = Dc.config dc in
  let ahead = ref 0 in
  fun current_index ->
    if Pool.in_flight_count ~lane pool < config.Config.prefetch_window then begin
      if !ahead <= current_index then ahead := current_index + 1;
      let horizon = min (Array.length records) (current_index + config.Config.prefetch_lookahead) in
      let chunk = ref [] in
      let picked = ref 0 in
      while !picked < config.Config.prefetch_chunk && !ahead < horizon do
        let i = !ahead in
        let lsn, record = records.(i) in
        incr ahead;
        if match owns with None -> true | Some f -> f i then
          match Lr.redo_view record with
          | Some view -> (
              match Dpt.find (Dc.dpt dc) view.Lr.rv_pid with
              | Some (rlsn, _) when lsn >= rlsn ->
                  chunk := view.Lr.rv_pid :: !chunk;
                  incr picked
              | Some _ | None -> ())
          | None -> ()
      done;
      if !chunk <> [] then Pool.prefetch pool ~lane (List.rev !chunk)
    end

(* Record-to-worker assignment.  Physiological methods partition by page
   id; logical methods slice each table's observed key range into
   [workers] contiguous bands (a table offset spreads small tables).  The
   assignment only decides whose simulated time a record is charged to —
   application always happens in log order. *)
let make_partitioner method_ ~workers (records : (Lsn.t * Lr.t) array) =
  if not (is_logical method_) then fun (v : Lr.redo_view) -> v.Lr.rv_pid mod workers
  else begin
    let ranges = Hashtbl.create 8 in
    Array.iter
      (fun (_, record) ->
        match Lr.redo_view record with
        | Some v ->
            let lo, hi =
              match Hashtbl.find_opt ranges v.Lr.rv_table with
              | Some (lo, hi) -> (min lo v.Lr.rv_key, max hi v.Lr.rv_key)
              | None -> (v.Lr.rv_key, v.Lr.rv_key)
            in
            Hashtbl.replace ranges v.Lr.rv_table (lo, hi)
        | None -> ())
      records;
    fun (v : Lr.redo_view) ->
      match Hashtbl.find_opt ranges v.Lr.rv_table with
      | None -> 0
      | Some (lo, hi) ->
          let band = (v.Lr.rv_key - lo) * workers / (hi - lo + 1) in
          (min band (workers - 1) + v.Lr.rv_table) mod workers
  end

(* Replay the materialised redo range on [Config.redo_workers] simulated
   workers.  Records are processed in global log order; each is charged to
   its partition's worker by rewinding the shared clock to that worker's
   time cursor ([Clock.set]) before replaying it.  The disk keeps its own
   monotonic busy horizon, so IO requests from workers at earlier cursors
   still queue behind in-flight service — contention on the single device
   is preserved — while CPU charges and page-fetch stalls on different
   workers overlap.  Because application order is log order regardless of
   the partitioning, the recovered state and the apply-count statistics
   are identical for every worker count; with one worker the loop is
   exactly the sequential pass.  SMO records barrier: every worker joins
   (clock = max cursor) before the page images are installed, and all
   cursors restart from the completed replay. *)
let redo_pass method_ (engine : Engine.t) (scan : scan_result) ~(stats : Recovery_stats.cells) =
  let dc = engine.Engine.dc in
  let clock = engine.Engine.clock in
  let pool = Dc.pool dc in
  let workers = max 1 (Dc.config dc).Config.redo_workers in
  let records = scan.records in
  let assign = Array.make (Array.length records) (-1) in
  let partition = make_partitioner method_ ~workers records in
  Array.iteri
    (fun i (_, record) ->
      match Lr.redo_view record with Some v -> assign.(i) <- partition v | None -> ())
    records;
  let parallel = workers > 1 in
  let cursors = Array.make workers (Clock.now clock) in
  let enter w =
    if parallel then begin
      Clock.set clock cursors.(w);
      Pool.set_stall_track pool (Some (Trace.track_worker w));
      Dc.set_redo_track dc (Some (Trace.track_worker w))
    end
  in
  let leave w = if parallel then cursors.(w) <- Clock.now clock in
  let barrier () =
    if parallel then Clock.set clock (Array.fold_left max cursors.(0) cursors)
  in
  let release_all () = if parallel then Array.fill cursors 0 workers (Clock.now clock) in
  let prefetch_pf =
    if method_ = Log2 then
      Some (Array.init workers (fun lane -> make_pf_prefetcher dc ~lane ~workers))
    else None
  in
  let prefetch_log =
    if method_ = Sql2 then
      Some
        (Array.init workers (fun lane ->
             let owns = if parallel then Some (fun i -> assign.(i) = lane) else None in
             make_log_prefetcher dc ~lane ?owns records))
    else None
  in
  let pump w i =
    (match prefetch_pf with Some fs -> fs.(w) () | None -> ());
    match prefetch_log with Some fs -> fs.(w) i | None -> ()
  in
  Array.iteri
    (fun i (lsn, record) ->
      Metrics.incr stats.Recovery_stats.records_scanned;
      match record with
      | Lr.Smo smo when not (is_logical method_) ->
          (* Physiological redo replays SMOs in log order under the DPT
             test; the multi-page image is a cross-partition write, so all
             workers synchronise around it. *)
          barrier ();
          pump (i mod workers) i;
          Dc.redo_smo dc ~lsn ~smo ~dpt_test:true ~stats;
          release_all ()
      | Lr.Smo _ ->
          (* Logical methods replayed SMOs in the DC pass. *)
          let w = i mod workers in
          enter w;
          pump w i;
          leave w
      | _ -> (
          match Lr.redo_view record with
          | None ->
              let w = i mod workers in
              enter w;
              pump w i;
              leave w
          | Some view ->
              let w = assign.(i) in
              enter w;
              pump w i;
              (match method_ with
              | Log0 -> Dc.redo_logical dc ~lsn ~view ~use_dpt:false ~stats
              | Log1 | Log2 -> Dc.redo_logical dc ~lsn ~view ~use_dpt:true ~stats
              | Sql1 | Sql2 | Aries_ckpt ->
                  Dc.redo_physiological dc ~lsn ~view ~use_dpt:true ~stats
              | InstantLog2 ->
                  (* Instant recovery never takes the offline redo pass. *)
                  assert false);
              leave w))
    records;
  (* Redo completes when the slowest worker does. *)
  barrier ();
  if parallel then begin
    Pool.set_stall_track pool None;
    Dc.set_redo_track dc None
  end

(* ---------- Domain-parallel redo (real cores) ---------- *)

(* Replay the redo range on [Config.domains] OCaml domains — real
   parallelism, where [redo_pass] above multiplexes simulated workers onto
   one OS thread.  The refactor the ROADMAP asks for: each partition's
   apply loop is a pure function of (its record slice, the immutable crash
   image), so partitions share {e nothing} mutable and the barrier merge is
   deterministic.

   Partitioning is page-disjoint by construction: a record belongs to the
   partition of its {e final} leaf ([pid mod domains]).  The tree shape is
   final after DC recovery (SMOs are replayed there; merges stay disabled
   during redo; replayed states are prefixes of the actual history, so no
   further splits occur), hence a leaf's recovered content is a pure
   function of its own records in log order — the same invariant instant
   recovery's per-page replay (§9) already rests on.  Each domain
   instantiates a private engine from the image, repeats the (deterministic)
   analysis pass to obtain the same tree/DPT, then replays only the pids it
   owns; ownership is decided by a cache-hot leaf locate, so every domain
   computes the same assignment without coordination.

   The merge back into the master engine, in partition-index order:
   - pages that applied at least one record are installed dirty with the
     first applied LSN as the dirty event — exactly the (pid, rLSN) pair
     the reference path's first [mark_dirty] would have reported, so the
     Δ-log monitor stays correct for a {e subsequent} crash;
   - apply counters (candidates/applied/skip reasons/tail) sum to the
     reference totals because the record partition is exact;
   - the master clock advances by the slowest partition's virtual elapsed
     time — the parallel schedule's makespan.
   IO accounting (fetches, stalls) is absorbed from the private pools; its
   split across partitions legitimately differs from the virtual-worker
   schedule, like timing does.  Digests and apply counts cannot: the
   tier-1 determinism gate ([test_domains]) pins both to the
   single-domain scheduler at every domain count.

   Only the logical family runs here: physiological redo interleaves
   multi-page SMO images with page writes in global log order, which the
   per-page purity argument does not cover — those methods keep the
   simulated-worker path (as does the sharded driver below, whose
   parallelism is per-shard already). *)
let redo_pass_domains method_ (engine : Engine.t) image (scan : scan_result)
    ~(stats : Recovery_stats.cells) ~domains =
  let dc = engine.Engine.dc in
  let clock = engine.Engine.clock in
  let pool = Dc.pool dc in
  let records = scan.records in
  Metrics.add stats.Recovery_stats.records_scanned (Array.length records);
  let use_dpt = method_ <> Log0 in
  (* Private engines carry no instrumentation: trace/flight rings are
     per-engine, so rings the user asked for live on the master only and
     are never written from another domain. *)
  let worker_config =
    {
      (Dc.config dc) with
      Config.domains = 1;
      redo_workers = 1;
      tracing = false;
      flight = false;
    }
  in
  let bckpt = Crash_image.master image in
  let replay_partition d =
    let weng = Crash_image.instantiate ~config:worker_config image in
    let wdc = weng.Engine.dc in
    let wclock = weng.Engine.clock in
    let wpool = Dc.pool wdc in
    Pool.set_lazy_writer_enabled wpool false;
    Dc.set_merge_allowed wdc false;
    (* Repeat the analysis the master already ran (and accounted): it is
       deterministic, so this domain ends up with the same tree shape,
       DPT and Δ boundary.  Its stats and IO are discarded — only the
       replay below is this partition's contribution. *)
    let setup_stats = Recovery_stats.create () in
    let split = Engine.split weng in
    let dc_from = if split then Lsn.nil else if Lsn.is_nil bckpt then Lsn.nil else bckpt in
    Dc.dc_recovery wdc ~log:weng.Engine.dc_log ~from:dc_from ~bckpt ~build_dpt:use_dpt
      ~stats:setup_stats;
    if method_ = Log2 then Dc.preload_indexes wdc ~stats:setup_stats;
    Pool.reset_counters wpool;
    let wstats = Recovery_stats.create () in
    (* Log2 keeps its PF-list read-ahead: each partition runs the whole
       pipeline against its private pool/disk.  Prefetch only moves IO
       earlier — it can neither change an apply decision nor page content —
       so it stays a pure timing/IO overlay here exactly as on the
       simulated path. *)
    let prefetch_pf =
      if method_ = Log2 then Some (make_pf_prefetcher wdc ~lane:0 ~workers:1) else None
    in
    let first_applied : (int, Lsn.t) Hashtbl.t = Hashtbl.create 64 in
    let t0 = Clock.now wclock in
    Array.iter
      (fun (lsn, record) ->
        (match prefetch_pf with Some f -> f () | None -> ());
        match Lr.redo_view record with
        | None -> ()
        | Some view ->
            let pid =
              Dc.tracked_index wstats wpool (fun () ->
                  let tr = Dc.tree wdc ~table:view.Lr.rv_table in
                  Deut_btree.Btree.locate_leaf tr ~key:view.Lr.rv_key)
            in
            if pid mod domains = d then begin
              let before = Metrics.count wstats.Recovery_stats.redo_applied in
              Dc.redo_logical wdc ~lsn ~view ~use_dpt ~stats:wstats;
              if
                Metrics.count wstats.Recovery_stats.redo_applied > before
                && not (Hashtbl.mem first_applied pid)
              then Hashtbl.add first_applied pid lsn
            end)
      records;
    let elapsed = Clock.now wclock -. t0 in
    (* Collect the final image of every page this partition modified: still
       cached, or flushed to the private store by an eviction. *)
    let pages =
      Hashtbl.fold
        (fun pid lsn acc ->
          let page =
            match Pool.get_if_cached wpool pid with
            | Some p -> p
            | None -> Deut_storage.Page_store.read weng.Engine.store pid
          in
          (pid, page, lsn) :: acc)
        first_applied []
      |> List.sort (fun (a, _, _) (b, _, _) -> Int.compare a b)
    in
    (pages, Recovery_stats.snapshot wstats, Pool.counters wpool, elapsed)
  in
  let dpool = Deut_sim.Domain_pool.create ~domains in
  let results = Deut_sim.Domain_pool.map dpool replay_partition (List.init domains Fun.id) in
  let c = Pool.counters pool in
  let max_elapsed =
    List.fold_left (fun acc (_, _, _, e) -> Float.max acc e) 0.0 results
  in
  List.iter
    (fun (pages, (snap : Recovery_stats.t), (wc : Pool.counters), _) ->
      List.iter
        (fun (pid, page, lsn) ->
          ignore pid;
          Pool.install pool ~event_lsn:lsn page ~dirty:true)
        pages;
      Metrics.add stats.Recovery_stats.redo_candidates snap.Recovery_stats.redo_candidates;
      Metrics.add stats.Recovery_stats.redo_applied snap.Recovery_stats.redo_applied;
      Metrics.add stats.Recovery_stats.skipped_dpt snap.Recovery_stats.skipped_dpt;
      Metrics.add stats.Recovery_stats.skipped_rlsn snap.Recovery_stats.skipped_rlsn;
      Metrics.add stats.Recovery_stats.skipped_plsn snap.Recovery_stats.skipped_plsn;
      Metrics.add stats.Recovery_stats.tail_records snap.Recovery_stats.tail_records;
      Metrics.add stats.Recovery_stats.index_page_fetches
        snap.Recovery_stats.index_page_fetches;
      Metrics.fadd stats.Recovery_stats.index_stall_us snap.Recovery_stats.index_stall_us;
      c.Pool.hits <- c.Pool.hits + wc.Pool.hits;
      c.Pool.misses <- c.Pool.misses + wc.Pool.misses;
      c.Pool.prefetch_hits <- c.Pool.prefetch_hits + wc.Pool.prefetch_hits;
      c.Pool.prefetch_issued <- c.Pool.prefetch_issued + wc.Pool.prefetch_issued;
      c.Pool.stalls <- c.Pool.stalls + wc.Pool.stalls;
      c.Pool.stall_us <- c.Pool.stall_us +. wc.Pool.stall_us)
    results;
  Clock.advance clock max_elapsed

(* Sharded offline recovery: every shard replays its own short DC log and
   its own stripe of the shared TC log, overlapped on the virtual clock —
   the phase costs what the slowest shard costs, which is the point of
   recovering shards in parallel.  Only the logical methods run here: the
   TC log carries no page ids that mean anything across per-shard page
   spaces, and the sharded engine always runs the split layout.  Redo goes
   through the same {!Dc_access} endpoints normal execution uses, so a
   networked recovery pays the wire for every replayed record. *)
let recover_offline_sharded ?undo_fault_after_clrs engine image method_ =
  let clock = engine.Engine.clock in
  let log = engine.Engine.log in
  let tc = engine.Engine.tc in
  let router = Engine.router engine in
  let n = Engine.shard_count engine in
  let trace = Engine.trace engine in
  let stats = Recovery_stats.create ~metrics:(Engine.metrics engine) () in
  let phase name ~ts0 =
    (* Phase completions also land in the flight recorder, so a post-crash
       dump shows how far a recovery got before dying. *)
    (match Engine.flight engine with
    | Some f -> Flight.record f ~comp:Flight.tc Flight.Phase name ()
    | None -> ());
    match trace with
    | Some tr ->
        Trace.span tr ~name ~cat:"phase" ~track:Trace.track_recovery ~ts:ts0
          ~dur:(Clock.now clock -. ts0) ()
    | None -> ()
  in
  let bckpt = Crash_image.master image in
  let each_shard f =
    for i = 0 to n - 1 do
      f i (Engine.shard engine i)
    done
  in
  (* Overlap one per-shard phase on the clock: rewind to the phase start
     for each shard, run it, and resume at the slowest cursor. *)
  let overlapped f =
    let t0 = Clock.now clock in
    let horizon = ref t0 in
    each_shard (fun i sh ->
        Clock.set clock t0;
        f i sh;
        if Clock.now clock > !horizon then horizon := Clock.now clock);
    Clock.set clock !horizon
  in
  each_shard (fun _ sh ->
      Pool.reset_counters sh.Engine.s_pool;
      Pool.set_lazy_writer_enabled sh.Engine.s_pool false;
      Dc.set_merge_allowed sh.Engine.s_dc false);
  (* Phase 1: per-shard DC recovery (SMO replay + DPT build), in parallel. *)
  let build_dpt = method_ <> Log0 in
  let t0 = Clock.now clock in
  overlapped (fun _ sh ->
      Dc.dc_recovery sh.Engine.s_dc ~log:sh.Engine.s_dc_log ~from:Lsn.nil ~bckpt ~build_dpt
        ~stats;
      if method_ = Log2 then Dc.preload_indexes sh.Engine.s_dc ~stats);
  Metrics.fset stats.Recovery_stats.analysis_us (Clock.now clock -. t0);
  phase "analysis" ~ts0:t0;
  (* Phase 2: one sequential scan of the single TC log. *)
  let t1 = Clock.now clock in
  let scan = scan_log log ~from:bckpt in
  phase "log_scan" ~ts0:t1;
  Metrics.add stats.Recovery_stats.records_scanned (Array.length scan.records);
  (* Phase 3: redo, partitioned by the same striping the TC routed with,
     each shard's slice in log order through its endpoint. *)
  let t_redo = Clock.now clock in
  let use_dpt = build_dpt in
  overlapped (fun i _sh ->
      let ep = router.Dc_access.endpoints.(i) in
      Array.iter
        (fun (lsn, record) ->
          match Lr.redo_view record with
          | Some view
            when router.Dc_access.route ~table:view.Lr.rv_table ~key:view.Lr.rv_key = i ->
              Dc_access.redo_logical ep ~lsn ~view ~use_dpt ~stats
          | Some _ | None -> ())
        scan.records);
  Metrics.fset stats.Recovery_stats.redo_us (Clock.now clock -. t1);
  phase "redo" ~ts0:t_redo;
  (* Phase 4: logical undo of losers through the router — compensations
     route to whichever shard holds each key, exactly like live aborts. *)
  each_shard (fun _ sh -> Dc.set_merge_allowed sh.Engine.s_dc true);
  let t2 = Clock.now clock in
  Tc.restore_txn_state tc ~losers:scan.losers ~next_txn:(scan.max_txn + 1);
  Tc.set_master tc bckpt;
  Metrics.add stats.Recovery_stats.losers (List.length scan.losers);
  (try
     List.iter
       (fun (txn, last) ->
         let budget =
           Option.map
             (fun fuel -> fuel - Metrics.count stats.Recovery_stats.clrs_written)
             undo_fault_after_clrs
         in
         Metrics.add stats.Recovery_stats.clrs_written
           (Tc.undo_txn ?fault_after_clrs:budget tc router ~txn ~last))
       scan.losers
   with Tc.Undo_interrupted clrs -> Metrics.add stats.Recovery_stats.clrs_written clrs);
  Metrics.fset stats.Recovery_stats.undo_us (Clock.now clock -. t2);
  phase "undo" ~ts0:t2;
  each_shard (fun _ sh -> Pool.set_lazy_writer_enabled sh.Engine.s_pool true);
  (* Finalise the IO accounting, summed across shards. *)
  let fetches = ref 0 and stall = ref 0.0 and issued = ref 0 and hits = ref 0 in
  let stalls = ref 0 and log_reads = ref 0 in
  each_shard (fun _ sh ->
      let c = Pool.counters sh.Engine.s_pool in
      fetches := !fetches + c.Pool.misses + c.Pool.prefetch_hits;
      stall := !stall +. c.Pool.stall_us;
      issued := !issued + c.Pool.prefetch_issued;
      hits := !hits + c.Pool.prefetch_hits;
      stalls := !stalls + c.Pool.stalls;
      match sh.Engine.s_dc_log_disk with
      | Some d -> log_reads := !log_reads + (Disk.counters d).Disk.pages_read
      | None -> ());
  Metrics.add stats.Recovery_stats.data_page_fetches
    (!fetches - Metrics.count stats.Recovery_stats.index_page_fetches);
  Metrics.fset stats.Recovery_stats.data_stall_us
    (!stall -. Metrics.value stats.Recovery_stats.index_stall_us);
  Metrics.add stats.Recovery_stats.log_pages_read
    (!log_reads
    + (Disk.counters engine.Engine.log_disk).Disk.pages_read
    + (match engine.Engine.archive_disk with
      | Some d -> (Disk.counters d).Disk.pages_read
      | None -> 0));
  Metrics.add stats.Recovery_stats.prefetch_issued !issued;
  Metrics.add stats.Recovery_stats.prefetch_hits !hits;
  Metrics.add stats.Recovery_stats.stalls !stalls;
  Option.iter Trace.stop trace;
  each_shard (fun _ sh -> Dc.open_tables sh.Engine.s_dc);
  (engine, Recovery_stats.snapshot stats)

let recover_offline ?config ?undo_fault_after_clrs image method_ =
  let engine = Crash_image.instantiate ?config image in
  if Engine.shard_count engine > 1 then begin
    if (not (is_logical method_)) || method_ = InstantLog2 then
      invalid_arg
        (Printf.sprintf
           "Recovery.recover: %s needs a single physical page space and cannot run sharded \
            — use Log0/Log1/Log2"
           (method_to_string method_));
    recover_offline_sharded ?undo_fault_after_clrs engine image method_
  end
  else begin
  let { Engine.clock; log; pool; dc; tc; _ } = engine in
  let split = Engine.split engine in
  if split && not (is_logical method_) then
    invalid_arg
      (Printf.sprintf
         "Recovery.recover: %s needs page ids on the TC log and cannot run in the split-log           layout (§5.1)"
         (method_to_string method_));
  let trace = Engine.trace engine in
  let stats = Recovery_stats.create ~metrics:(Engine.metrics engine) () in
  let phase name ~ts0 =
    (* Phase completions also land in the flight recorder, so a post-crash
       dump shows how far a recovery got before dying. *)
    (match Engine.flight engine with
    | Some f -> Flight.record f ~comp:Flight.tc Flight.Phase name ()
    | None -> ());
    match trace with
    | Some tr ->
        Trace.span tr ~name ~cat:"phase" ~track:Trace.track_recovery ~ts:ts0
          ~dur:(Clock.now clock -. ts0) ()
    | None -> ()
  in
  let bckpt = Crash_image.master image in
  Pool.reset_counters pool;
  Pool.set_lazy_writer_enabled pool false;
  (* Redo must not reorganise the tree while logged SMOs are still being
     replayed; merging resumes for undo and normal operation. *)
  Dc.set_merge_allowed dc false;
  let log_disk_counters = Disk.counters engine.Engine.log_disk in
  let dc_log_disk_counters = Option.map Disk.counters engine.Engine.dc_log_disk in
  (* Archived pages a restart scan reads are log pages on another device. *)
  let archive_disk_counters = Option.map Disk.counters engine.Engine.archive_disk in
  (* Phase 1: analysis / DC recovery.  The DC scans its own records: the
     shared log from the checkpoint when integrated, its entire (short)
     private log when split. *)
  let dc_log = engine.Engine.dc_log in
  let dc_from = if split then Lsn.nil else if Lsn.is_nil bckpt then Lsn.nil else bckpt in
  let t0 = Clock.now clock in
  let redo_start =
    match method_ with
    | Log0 ->
        Dc.dc_recovery dc ~log:dc_log ~from:dc_from ~bckpt ~build_dpt:false ~stats;
        bckpt
    | Log1 ->
        Dc.dc_recovery dc ~log:dc_log ~from:dc_from ~bckpt ~build_dpt:true ~stats;
        bckpt
    | Log2 ->
        Dc.dc_recovery dc ~log:dc_log ~from:dc_from ~bckpt ~build_dpt:true ~stats;
        Dc.preload_indexes dc ~stats;
        bckpt
    | Sql1 | Sql2 ->
        Dc.set_dpt dc (sql_analysis ?trace log ~from:bckpt ~stats);
        bckpt
    | Aries_ckpt ->
        let dpt, redo_start = aries_analysis log ~from:bckpt ~stats in
        Dc.set_dpt dc dpt;
        redo_start
    | InstantLog2 -> assert false (* dispatched to [recover_instant] *)
  in
  Metrics.fset stats.Recovery_stats.analysis_us (Clock.now clock -. t0);
  phase "analysis" ~ts0:t0;
  (* Phase 2+3: materialise the redo range, then redo. *)
  let t1 = Clock.now clock in
  let scan = scan_log log ~from:redo_start in
  phase "log_scan" ~ts0:t1;
  let domains = (Dc.config dc).Config.domains in
  (* A traced engine takes the simulated path even at [domains > 1]:
     instrumentation rings are single-domain, so the partitions' IO spans
     could never land in the master's ring and the trace would fail the
     spans-match-counters cross-check.  Results are identical either way
     (the determinism gate), so tracing only forfeits the wall-clock win. *)
  if domains > 1 && is_logical method_ && Option.is_none (Engine.trace engine) then
    redo_pass_domains method_ engine image scan ~stats ~domains
  else redo_pass method_ engine scan ~stats;
  Metrics.fset stats.Recovery_stats.redo_us (Clock.now clock -. t1);
  phase "redo" ~ts0:t1;
  (* Phase 4: logical undo of losers (identical across methods, §2.1).
     The tree is fully replayed now; maintenance may resume. *)
  Dc.set_merge_allowed dc true;
  let t2 = Clock.now clock in
  Tc.restore_txn_state tc ~losers:scan.losers ~next_txn:(scan.max_txn + 1);
  Tc.set_master tc bckpt;
  Metrics.add stats.Recovery_stats.losers (List.length scan.losers);
  (try
     List.iter
       (fun (txn, last) ->
         let budget =
           Option.map
             (fun n -> n - Metrics.count stats.Recovery_stats.clrs_written)
             undo_fault_after_clrs
         in
         Metrics.add stats.Recovery_stats.clrs_written
           (Tc.undo_txn ?fault_after_clrs:budget tc (Engine.router engine) ~txn ~last))
       scan.losers
   with Tc.Undo_interrupted n -> Metrics.add stats.Recovery_stats.clrs_written n);
  Metrics.fset stats.Recovery_stats.undo_us (Clock.now clock -. t2);
  phase "undo" ~ts0:t2;
  Pool.set_lazy_writer_enabled pool true;
  (* Finalise the IO accounting. *)
  let c = Pool.counters pool in
  let total_fetches = c.Pool.misses + c.Pool.prefetch_hits in
  Metrics.add stats.Recovery_stats.data_page_fetches
    (total_fetches - Metrics.count stats.Recovery_stats.index_page_fetches);
  Metrics.fset stats.Recovery_stats.data_stall_us
    (c.Pool.stall_us -. Metrics.value stats.Recovery_stats.index_stall_us);
  Metrics.add stats.Recovery_stats.log_pages_read
    (log_disk_counters.Disk.pages_read
    + (match dc_log_disk_counters with Some c -> c.Disk.pages_read | None -> 0)
    + (match archive_disk_counters with Some c -> c.Disk.pages_read | None -> 0));
  Metrics.add stats.Recovery_stats.prefetch_issued c.Pool.prefetch_issued;
  Metrics.add stats.Recovery_stats.prefetch_hits c.Pool.prefetch_hits;
  Metrics.add stats.Recovery_stats.stalls c.Pool.stalls;
  (* Close the trace window before reopening the catalog below: the span
     accounting (page_fetch ≡ fetches, redo_op ≡ candidates) holds exactly
     over the recovery interval, and [open_tables] does cache work that is
     not part of it. *)
  Option.iter Trace.stop trace;
  Dc.open_tables dc;
  (engine, Recovery_stats.snapshot stats)
  end

(* ---------- Instant recovery (InstantLog2) ---------- *)

(* An open-for-business engine with redo still pending.  [i_pending] maps a
   leaf pid to that page's slice of the redo range (in log order);
   [i_order] remembers the pids by first appearance in the log — the
   background drain replays them in that order, which matches the page
   order the offline pass would have first touched them in.

   Both the history index and the loser rollback are deferred past the
   open: [i_records] holds the raw redo range until the first page demand
   builds the index ([ensure_history]), and [i_losers] wait un-undone
   until background work or a conflicting key touch forces them
   ([ensure_undo]).  [i_loser_keys] is the lock substitute meanwhile: any
   client touch of a key a loser wrote must run rollback first. *)
type instant = {
  i_engine : Engine.t;
  i_stats : Recovery_stats.cells;
  i_pending : (int, (Lsn.t * Lr.redo_view) list) Hashtbl.t;
  mutable i_order : int list;
  mutable i_records : (Lsn.t * Lr.t) array;  (* redo range, unindexed until first demand *)
  mutable i_built : bool;
  mutable i_building : bool;
  i_losers : (int * Lsn.t) list;
  i_loser_keys : (int * int, unit) Hashtbl.t;
  mutable i_undone : bool;
  i_undo_fault : int option;
  mutable i_finished : bool;
  i_t0 : float;  (* clock at recovery start; ttft/drained are relative to it *)
}

let instant_engine sess = sess.i_engine

(* Replay one page's whole slice through the ordinary Log2 redo operator.
   [Dc.redo_logical] is self-contained — it charges the per-record CPU,
   re-locates the leaf, applies the tail/DPT/rLSN/pLSN tests and keeps
   every counter — so replaying each record exactly once, grouped by page
   instead of globally by LSN, produces the same page trajectories and the
   same statistics as the offline pass (the tree shape is final after
   analysis and merges stay disabled until the drain completes, so a key's
   leaf is constant; a page's content depends only on its own records in
   log order).  Removing the page from the pending set {e first} makes the
   buffer-pool hook re-entrant: the nested [get]s below settle without
   recursing. *)
let replay_page sess ~background pid =
  match Hashtbl.find_opt sess.i_pending pid with
  | None -> ()
  | Some slice ->
      Hashtbl.remove sess.i_pending pid;
      let engine = sess.i_engine in
      let dc = engine.Engine.dc in
      let clock = engine.Engine.clock in
      let stats = sess.i_stats in
      let t0 = Clock.now clock in
      List.iter (fun (lsn, view) -> Dc.redo_logical dc ~lsn ~view ~use_dpt:true ~stats) slice;
      Metrics.fadd stats.Recovery_stats.redo_us (Clock.now clock -. t0);
      Metrics.incr
        (if background then stats.Recovery_stats.pages_background
         else stats.Recovery_stats.pages_ondemand);
      (match Engine.trace engine with
      | Some tr ->
          Trace.span tr ~name:"replay_page" ~cat:"recovery"
            ~track:(if background then Trace.track_recovery else Trace.track_ondemand)
            ~ts:t0
            ~dur:(Clock.now clock -. t0)
            ~args:[ ("pid", pid); ("records", List.length slice) ]
            ()
      | None -> ())

(* Build the per-page history index on first demand, after the engine is
   already open.  Warms the internal levels with one batched preload so
   every locate below is cache-hot, then assigns each redo-view record to
   its leaf's slice.  The tree shape is final after analysis and merges
   stay disabled until the drain completes, so a key's leaf is constant —
   building late yields the same slices building eagerly would have.
   Re-entrancy: the preload/locates below fault only internal pages, which
   are never in [i_pending]; [i_building] stops the nested hook calls they
   trigger from recursing into the build. *)
let ensure_history sess =
  if (not sess.i_built) && not sess.i_building then begin
    sess.i_building <- true;
    let engine = sess.i_engine in
    let dc = engine.Engine.dc in
    let clock = engine.Engine.clock in
    let stats = sess.i_stats in
    let t0 = Clock.now clock in
    Dc.preload_indexes dc ~stats;
    let order = ref [] in
    Array.iter
      (fun (lsn, record) ->
        Metrics.incr stats.Recovery_stats.records_scanned;
        match Lr.redo_view record with
        | None -> ()
        | Some view ->
            let tr = Dc.tree dc ~table:view.Lr.rv_table in
            let pid = Deut_btree.Btree.locate_leaf tr ~key:view.Lr.rv_key in
            (match Hashtbl.find_opt sess.i_pending pid with
            | Some slice -> Hashtbl.replace sess.i_pending pid ((lsn, view) :: slice)
            | None ->
                order := pid :: !order;
                Hashtbl.replace sess.i_pending pid [ (lsn, view) ]))
      sess.i_records;
    Hashtbl.filter_map_inplace (fun _ slice -> Some (List.rev slice)) sess.i_pending;
    sess.i_order <- List.rev !order;
    sess.i_records <- [||];
    sess.i_built <- true;
    sess.i_building <- false;
    match Engine.trace engine with
    | Some tr ->
        Trace.span tr ~name:"history_build" ~cat:"phase" ~track:Trace.track_recovery ~ts:t0
          ~dur:(Clock.now clock -. t0) ()
    | None -> ()
  end

(* Roll the losers back, once.  Deferred past the open: new transactions
   only wait on it when they touch a key a loser wrote (the [i_loser_keys]
   gate), or when background work reaches it.  Undo's own page touches
   drive on-demand replay through the buffer-pool hook, so compensations
   always apply to fully-redone pages regardless of when this runs. *)
let ensure_undo sess =
  if not sess.i_undone then begin
    sess.i_undone <- true;
    let engine = sess.i_engine in
    let { Engine.clock; tc; _ } = engine in
    let stats = sess.i_stats in
    let t2 = Clock.now clock in
    (try
       List.iter
         (fun (txn, last) ->
           let budget =
             Option.map
               (fun n -> n - Metrics.count stats.Recovery_stats.clrs_written)
               sess.i_undo_fault
           in
           Metrics.add stats.Recovery_stats.clrs_written
             (Tc.undo_txn ?fault_after_clrs:budget tc (Engine.router engine) ~txn ~last))
         sess.i_losers
     with Tc.Undo_interrupted n -> Metrics.add stats.Recovery_stats.clrs_written n);
    Hashtbl.reset sess.i_loser_keys;
    Metrics.fset stats.Recovery_stats.undo_us (Clock.now clock -. t2);
    match Engine.trace engine with
    | Some tr ->
        Trace.span tr ~name:"undo" ~cat:"phase" ~track:Trace.track_recovery ~ts:t2
          ~dur:(Clock.now clock -. t2) ()
    | None -> ()
  end

let instant_pending_pages sess =
  ensure_history sess;
  Hashtbl.length sess.i_pending

(* The admission gate: a client touch of a key some loser wrote forces
   rollback before the touch proceeds — the in-memory stand-in for the
   persistent locks real instant recovery reacquires during analysis. *)
let instant_touch_key sess ~table ~key =
  if (not sess.i_undone) && Hashtbl.mem sess.i_loser_keys (table, key) then ensure_undo sess

let instant_force_undo sess = ensure_undo sess

(* Open the engine for transactions right after analysis, leaving redo to
   the fault hook and the background drain, the history index to the first
   page demand, and loser rollback to the first conflicting key touch (or
   background work).  Time-to-first-transaction is analysis + the
   sequential log scan + the in-memory loser-key walk — no data-page IO at
   all. *)
let recover_instant ?config ?undo_fault_after_clrs image =
  let engine = Crash_image.instantiate ?config image in
  if Engine.shard_count engine > 1 then
    invalid_arg
      "Recovery.recover_instant: instant recovery needs a single data component (shards = 1)";
  let { Engine.clock; log; pool; dc; tc; _ } = engine in
  let split = Engine.split engine in
  let trace = Engine.trace engine in
  let stats = Recovery_stats.create ~metrics:(Engine.metrics engine) () in
  let phase name ~ts0 =
    (* Phase completions also land in the flight recorder, so a post-crash
       dump shows how far a recovery got before dying. *)
    (match Engine.flight engine with
    | Some f -> Flight.record f ~comp:Flight.tc Flight.Phase name ()
    | None -> ());
    match trace with
    | Some tr ->
        Trace.span tr ~name ~cat:"phase" ~track:Trace.track_recovery ~ts:ts0
          ~dur:(Clock.now clock -. ts0) ()
    | None -> ()
  in
  let bckpt = Crash_image.master image in
  Pool.reset_counters pool;
  Pool.set_lazy_writer_enabled pool false;
  (* Merges stay off until the drain completes: a merge would move keys
     between leaves and invalidate the page slices built below.  (Splits
     by admitted transactions are safe — splitting a page first touches
     it, which replays its slice.) *)
  Dc.set_merge_allowed dc false;
  let t_start = Clock.now clock in
  (* Phase 1: analysis, exactly as Log2. *)
  let dc_log = engine.Engine.dc_log in
  let dc_from = if split then Lsn.nil else if Lsn.is_nil bckpt then Lsn.nil else bckpt in
  let t0 = Clock.now clock in
  Dc.dc_recovery dc ~log:dc_log ~from:dc_from ~bckpt ~build_dpt:true ~stats;
  Metrics.fset stats.Recovery_stats.analysis_us (Clock.now clock -. t0);
  phase "analysis" ~ts0:t0;
  (* Phase 2: materialise the redo range (a sequential log read; the
     per-page index over it is built lazily, on the first page demand). *)
  let t1 = Clock.now clock in
  let scan = scan_log log ~from:bckpt in
  phase "log_scan" ~ts0:t1;
  (* Restore the transaction table and collect each loser's written keys
     from its backward chain (in-memory log reads only).  Those keys stay
     blocked until rollback runs — the lock substitute that lets undo
     itself move past the open. *)
  Tc.restore_txn_state tc ~losers:scan.losers ~next_txn:(scan.max_txn + 1);
  Tc.set_master tc bckpt;
  Metrics.add stats.Recovery_stats.losers (List.length scan.losers);
  let loser_keys : (int * int, unit) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (txn, last) ->
      List.iter (fun tk -> Hashtbl.replace loser_keys tk ()) (Tc.loser_keys tc ~txn ~last))
    scan.losers;
  let sess =
    {
      i_engine = engine;
      i_stats = stats;
      i_pending = Hashtbl.create 256;
      i_order = [];
      i_records = scan.records;
      i_built = false;
      i_building = false;
      i_losers = scan.losers;
      i_loser_keys = loser_keys;
      i_undone = scan.losers = [];
      i_undo_fault = undo_fault_after_clrs;
      i_finished = false;
      i_t0 = t_start;
    }
  in
  (* Reopen the catalog before the hook goes in: [open_tables] touches
     only the catalog page, which is never a data leaf, and doing it here
     keeps the touch from counting as the first page demand. *)
  Dc.open_tables dc;
  (* From here, any page touch — a client read, an undo compensation, an
     eviction or lazy-writer flush — builds the history index if needed
     and replays that page's slice first.  (The filter cannot be "is the
     pid in the DPT": a pre-crash split can leave a key's final leaf
     different from the pid its Δ record dirtied, so a pending leaf need
     not appear in the DPT at all — only the built index knows.) *)
  Pool.set_redo_hook pool
    (Some
       (fun pid ->
         ensure_history sess;
         replay_page sess ~background:false pid));
  Pool.set_lazy_writer_enabled pool true;
  (* Open for business: time-to-first-transaction is now. *)
  Metrics.fset stats.Recovery_stats.ttft_us (Clock.now clock -. t_start);
  (match trace with
  | Some tr ->
      Trace.instant tr ~name:"open_for_business" ~cat:"recovery" ~track:Trace.track_recovery
        ~args:[ ("redo_records", Array.length scan.records); ("losers", List.length scan.losers) ]
        ()
  | None -> ());
  sess

(* One background-drain step: finish any deferred recovery work first
   (history index, loser rollback), then replay the next still-pending
   page in log first-touch order.  Returns [false] once nothing is
   pending. *)
let instant_step sess =
  ensure_history sess;
  ensure_undo sess;
  let rec go = function
    | [] ->
        sess.i_order <- [];
        false
    | pid :: rest ->
        if Hashtbl.mem sess.i_pending pid then begin
          sess.i_order <- rest;
          replay_page sess ~background:true pid;
          true
        end
        else go rest
  in
  go sess.i_order

let instant_drain sess = while instant_step sess do () done

(* Close the recovery: drain whatever is left, re-enable maintenance,
   uninstall the hook and finalise the IO accounting.  Idempotent. *)
let instant_finish sess =
  let engine = sess.i_engine in
  let { Engine.clock; pool; dc; _ } = engine in
  let stats = sess.i_stats in
  if not sess.i_finished then begin
    sess.i_finished <- true;
    ensure_history sess;
    ensure_undo sess;
    instant_drain sess;
    Pool.set_redo_hook pool None;
    Dc.set_merge_allowed dc true;
    Metrics.fset stats.Recovery_stats.drained_us (Clock.now clock -. sess.i_t0);
    let c = Pool.counters pool in
    let total_fetches = c.Pool.misses + c.Pool.prefetch_hits in
    Metrics.add stats.Recovery_stats.data_page_fetches
      (total_fetches - Metrics.count stats.Recovery_stats.index_page_fetches);
    Metrics.fset stats.Recovery_stats.data_stall_us
      (c.Pool.stall_us -. Metrics.value stats.Recovery_stats.index_stall_us);
    Metrics.add stats.Recovery_stats.log_pages_read
      ((Disk.counters engine.Engine.log_disk).Disk.pages_read
      + (match engine.Engine.dc_log_disk with
        | Some d -> (Disk.counters d).Disk.pages_read
        | None -> 0)
      + (match engine.Engine.archive_disk with
        | Some d -> (Disk.counters d).Disk.pages_read
        | None -> 0));
    Metrics.add stats.Recovery_stats.prefetch_issued c.Pool.prefetch_issued;
    Metrics.add stats.Recovery_stats.prefetch_hits c.Pool.prefetch_hits;
    Metrics.add stats.Recovery_stats.stalls c.Pool.stalls;
    Option.iter Trace.stop (Engine.trace engine)
  end;
  Recovery_stats.snapshot stats

let recover ?config ?undo_fault_after_clrs image method_ =
  match method_ with
  | InstantLog2 ->
      (* The offline-equivalent form: open, then drain fully before any
         client work — the determinism gate that pins InstantLog2's final
         state to Log2's, byte for byte. *)
      let sess = recover_instant ?config ?undo_fault_after_clrs image in
      let stats = instant_finish sess in
      (sess.i_engine, stats)
  | _ -> recover_offline ?config ?undo_fault_after_clrs image method_

(* ---------- Live single-shard recovery ---------- *)

(* The availability story (§6 directions): one data component died, the TC
   and the sibling shards never stopped.  Replay the crashed shard's own
   DC log (SMO images + DPT), then its stripe of the TC log from the
   master record — the TC is alive, so its in-memory tail is readable and
   nothing any sibling committed is lost — and rejoin.  There is no undo:
   [Db.crash_shard] requires a quiesced transaction table, so every
   replayed record belongs to a winner.  Idempotence comes from the same
   pLSN tests normal logical redo uses. *)
let recover_shard engine i =
  let sh = Engine.shard engine i in
  if sh.Engine.s_up then
    invalid_arg (Printf.sprintf "Recovery.recover_shard: shard %d is not down" i);
  let clock = engine.Engine.clock in
  let log = engine.Engine.log in
  let router = Engine.router engine in
  let trace = Engine.trace engine in
  let stats = Recovery_stats.create () in
  let t0 = Clock.now clock in
  (* Flip up first: recovery replays through the shard's own endpoint, the
     same protocol channel normal redo drives a remote DC with. *)
  sh.Engine.s_up <- true;
  Pool.set_lazy_writer_enabled sh.Engine.s_pool false;
  Dc.set_merge_allowed sh.Engine.s_dc false;
  let bckpt = Tc.master engine.Engine.tc in
  Dc.dc_recovery sh.Engine.s_dc ~log:sh.Engine.s_dc_log ~from:Lsn.nil ~bckpt ~build_dpt:true
    ~stats;
  let ep = router.Dc_access.endpoints.(i) in
  Log_manager.iter log ~from:bckpt (fun lsn record ->
      match Lr.redo_view record with
      | Some view
        when router.Dc_access.route ~table:view.Lr.rv_table ~key:view.Lr.rv_key = i ->
          Dc_access.redo_logical ep ~lsn ~view ~use_dpt:true ~stats
      | Some _ | None -> ());
  Dc.set_merge_allowed sh.Engine.s_dc true;
  Pool.set_lazy_writer_enabled sh.Engine.s_pool true;
  Dc.open_tables sh.Engine.s_dc;
  (* Re-seed the end-of-stable-log notifications the shard missed while
     down. *)
  Dc_access.eosl ep (Log_manager.stable_lsn log);
  match trace with
  | Some tr ->
      Trace.span tr ~name:"shard_recovery" ~cat:"shard" ~track:(Trace.track_shard i) ~ts:t0
        ~dur:(Clock.now clock -. t0)
        ~args:[ ("shard", i) ]
        ()
  | None -> ()
