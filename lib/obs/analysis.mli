(** Trace-mining recovery profiler.

    Turns a raw event stream (the [Trace] ring, or a re-parsed export) into
    a machine-readable profile: a per-phase time budget (compute vs
    IO-overlapped vs stall-blocked), every [stall] span attributed to the
    device span whose completion it waited on (which disk, demand read vs
    prefetch batch), and every prefetched page classified as hit / late /
    wasted.  The inputs are deterministic, the arithmetic is, and the JSON
    and text renders use fixed formatting — so two same-seed runs produce
    byte-identical profiles, which is what makes a committed profile usable
    as a regression gate ({!check}).

    This module sits below [Deut_core] in the dependency order: it knows
    nothing about recovery methods or configs, only about the event schema
    documented in OBSERVABILITY.md. *)

(** One recovery-phase window with its time budget (all simulated µs).
    [ph_stall_us] is the mass of [stall] spans clipped to the window (with
    parallel redo workers this can exceed the wall-clock duration — each
    worker's wait counts).  [ph_io_us] is the union busy time of all device
    lanes clipped to the window; [ph_overlap_us] is the part of that busy
    time not covered by a stall, i.e. IO hidden under compute; and
    [ph_compute_us] is [dur - stall] (clamped at 0). *)
type phase = {
  ph_name : string;
  ph_start_us : float;
  ph_dur_us : float;
  ph_stall_us : float;
  ph_io_us : float;
  ph_overlap_us : float;
  ph_compute_us : float;
}

(** One stall-attribution bucket: stalls whose wait ended with the
    completion of an IO span named [src_kind] ("io_read" = demand,
    "io_batch" = prefetch, "io_block", "io_write", "io_log") on device lane
    [src_device] ("data-disk", "log-disk", "dc-log-disk"). *)
type source = { src_device : string; src_kind : string; src_count : int; src_stall_us : float }

(** One stall→message attribution bucket: cross-shard stalls charged to the
    protocol request they waited on.  Built from the TC-side ["rpc"] spans
    (named [req:<tag>], carrying the message id) joined against the ["net"]
    lane's per-message delivery spans and loss instants — so [ns_wire_us]
    is time physically on the wire and [ns_retransmits] counts dropped
    sends that forced the timeout/retry path for that request kind. *)
type net_source = {
  ns_request : string;  (** protocol request tag, e.g. ["redo_logical"] *)
  ns_calls : int;  (** round trips issued for this request kind *)
  ns_wait_us : float;  (** TC-side wall time spent inside these calls *)
  ns_wire_us : float;  (** wire time of the deliveries carrying them *)
  ns_retransmits : int;  (** net losses on this request's message ids *)
}

type t = {
  meta : (string * string) list;  (** caller-supplied identity, e.g. method/cache *)
  total_us : float;  (** analysis + redo + undo phase time (log_scan nests in redo) *)
  phases : phase list;  (** in emission order: analysis, log_scan, redo, undo *)
  fetch_total : int;  (** page_fetch spans *)
  fetch_data : int;
  fetch_index : int;  (** fetches inside an index traversal ([args.index] = 1) *)
  fetch_prefetched : int;
  fetch_demand : int;
  pf_issued : int;  (** pages submitted by the prefetcher *)
  pf_hit : int;  (** prefetched pages claimed with zero wait *)
  pf_late : int;  (** claimed, but the redo cursor got there first and stalled *)
  pf_wasted : int;  (** fetched but never claimed (evicted unused or still in flight) *)
  stall_count : int;
  stall_total_us : float;
  stall_attributed_us : float;  (** stall mass matched to a device span *)
  sources : source list;  (** attribution buckets, largest stall mass first *)
  net_msgs : int;  (** one-way deliveries observed on the net lane *)
  net_wire_us : float;  (** total wire time across those deliveries *)
  net_retransmits : int;  (** net_loss instants (drops that forced a retry) *)
  net_sources : net_source list;  (** stall→message buckets, largest wait first *)
  redo_ops : int;
}

val of_events : ?meta:(string * string) list -> Trace.event list -> t
(** Profile an event stream.  Total functions of the input: an empty or
    stall-free stream (a warm, hit-everything run) yields all-zero
    components, never NaN — every ratio below is guarded. *)

val of_trace : ?meta:(string * string) list -> Trace.t -> t

val late_fraction : t -> float
(** [pf_late / (pf_hit + pf_late)], 0 when no prefetch was claimed. *)

val wasted_fraction : t -> float
(** [pf_wasted / pf_issued], 0 when nothing was issued. *)

val attributed_fraction : t -> float
(** [stall_attributed_us / stall_total_us], 1 when there were no stalls. *)

(** {1 Render} *)

val render : t -> string
(** Human-readable profile: phase-budget table, fetch/prefetch breakdown,
    stall attribution by (device, kind).  Deterministic. *)

val to_json : t -> string
(** Machine-readable profile, fixed field order and ["%.3f"] floats —
    byte-identical across same-seed runs, diffable, committable as a
    baseline. *)

val of_json : string -> (t, string) result
(** Parse [to_json] output (a small self-contained JSON subset reader; no
    external dependencies).  [Error] describes the first problem found. *)

val csv_header : string list

val csv_rows : t -> string list list
(** Flat [metric, value] rows covering every scalar in the profile. *)

(** {1 Regression gate} *)

(** One gate comparison: [ck_ok] is false when [ck_current] exceeds
    [ck_limit] (= baseline grown by the tolerance, plus an absolute slack
    of 2 for event counts so tiny baselines aren't brittle). *)
type check = {
  ck_name : string;
  ck_baseline : float;
  ck_current : float;
  ck_limit : float;
  ck_ok : bool;
}

val check : baseline:t -> current:t -> tolerance_pct:float -> check list
(** Compare the regression-gated scalars — total time, stall mass,
    stall-attributed mass, fetch counts, prefetch waste — of [current]
    against [baseline].  Only increases beyond the tolerance fail;
    improvements always pass. *)

val check_ok : check list -> bool
val check_table : check list -> string
