(* Profile-driven prefetch tuner.  See tuner.mli for the contract. *)

type candidate = { window : int; chunk : int; lookahead : int; source : string }

let candidate_to_string c =
  Printf.sprintf "w=%d c=%d la=%d src=%s" c.window c.chunk c.lookahead c.source

type outcome = { cand : candidate; profile : Analysis.t; redo_ms : float }

(* A wasted prefetch spent a page transfer fetching nothing the pass read;
   a late one still saved most of the fetch but lost the race.  The
   penalties are in µs so the score stays commensurate with the
   stall-attributed time it mostly consists of. *)
let wasted_penalty_us = 50.0
let late_penalty_us = 12.5

let score (p : Analysis.t) =
  p.Analysis.stall_attributed_us
  +. (wasted_penalty_us *. float_of_int p.Analysis.pf_wasted)
  +. (late_penalty_us *. float_of_int p.Analysis.pf_late)

let order_key o = (o.cand.window, o.cand.chunk, o.cand.lookahead, o.cand.source)

let best outcomes =
  List.fold_left
    (fun acc o ->
      match acc with
      | None -> Some o
      | Some b ->
          let so = score o.profile and sb = score b.profile in
          if so < sb || (so = sb && order_key o < order_key b) then Some o else Some b)
    None outcomes

let table ~default outcomes =
  let winner = best outcomes in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "  %-30s %10s %10s %6s %7s %10s  %s\n" "candidate" "redo ms" "stall ms"
       "late" "wasted" "score" "");
  List.iter
    (fun o ->
      let p = o.profile in
      let mark =
        (if o.cand = default then " default" else "")
        ^ match winner with Some w when w.cand = o.cand -> " <-- best" | _ -> ""
      in
      Buffer.add_string buf
        (Printf.sprintf "  %-30s %10.3f %10.3f %6d %7d %10.1f %s\n"
           (candidate_to_string o.cand) o.redo_ms
           (p.Analysis.stall_total_us /. 1000.0)
           p.Analysis.pf_late p.Analysis.pf_wasted (score p) mark))
    outcomes;
  Buffer.contents buf
