(* Named metrics registry.  See metrics.mli for the contract. *)

type counter = { c_name : string; mutable c : int }
type dial = { d_name : string; mutable d : float }
type gauge = { g_name : string; g_read : unit -> float }

type histogram = {
  h_name : string;
  bounds : float array; (* ascending upper bounds; one extra overflow bucket *)
  counts : int array; (* length = Array.length bounds + 1 *)
  mutable h_n : int;
  mutable h_sum : float;
}

type entry =
  | Counter of counter
  | Dial of dial
  | Gauge of gauge
  | Histogram of histogram

type t = {
  by_name : (string, entry) Hashtbl.t;
  mutable order : string list; (* reverse registration order *)
  owner : Domain.id;  (* instrumentation is single-domain; see metrics.mli *)
}

let create () = { by_name = Hashtbl.create 64; order = []; owner = Domain.self () }

(* Registration is loud: a second registration under the same name is a
   naming bug (e.g. two shards both claiming "disk.data.io_us"), and
   silently shadowing the first instrument would make one of them
   disappear from every reader.  The get-or-create constructors below
   never reach here for an existing name, so this fires only on genuine
   collisions.

   It is also the domain-ownership checkpoint: every instrument reaches
   its engine's registry through here first, so a cell or worker engine
   leaking into another domain trips this guard on its first new
   instrument instead of corrupting the table.  The per-cell update paths
   ([incr], [observe], …) stay guard-free — they are the hot path, and
   they only ever touch handles this registration already vetted. *)
let register t name entry =
  if Domain.self () <> t.owner then
    invalid_arg
      ("Metrics: registration of " ^ name
     ^ " from a domain that does not own this registry (instrumentation is \
        single-domain: give each domain its own engine)");
  if Hashtbl.mem t.by_name name then
    invalid_arg ("Metrics: duplicate registration of " ^ name);
  Hashtbl.add t.by_name name entry;
  t.order <- name :: t.order

let kind_mismatch name = invalid_arg ("Metrics: kind mismatch for " ^ name)

let counter t name =
  match Hashtbl.find_opt t.by_name name with
  | Some (Counter c) -> c
  | Some _ -> kind_mismatch name
  | None ->
      let c = { c_name = name; c = 0 } in
      register t name (Counter c);
      c

let dial t name =
  match Hashtbl.find_opt t.by_name name with
  | Some (Dial d) -> d
  | Some _ -> kind_mismatch name
  | None ->
      let d = { d_name = name; d = 0.0 } in
      register t name (Dial d);
      d

(* Unlike the cell kinds there is no handle to share, so a second gauge
   under the same name can only mean two writers fighting over it —
   keeping the old closure would silently ignore the new one. *)
let gauge t name read =
  match Hashtbl.find_opt t.by_name name with
  | Some (Gauge _) -> invalid_arg ("Metrics: duplicate registration of " ^ name)
  | Some _ -> kind_mismatch name
  | None -> register t name (Gauge { g_name = name; g_read = read })

let histogram t ?(base = 2.0) ?(lo = 1.0) ?(buckets = 24) name =
  match Hashtbl.find_opt t.by_name name with
  | Some (Histogram h) -> h
  | Some _ -> kind_mismatch name
  | None ->
      if base <= 1.0 || lo <= 0.0 || buckets < 1 then
        invalid_arg "Metrics.histogram: need base > 1, lo > 0, buckets >= 1";
      let bounds = Array.init buckets (fun i -> lo *. (base ** float_of_int i)) in
      let h =
        { h_name = name; bounds; counts = Array.make (buckets + 1) 0; h_n = 0; h_sum = 0.0 }
      in
      register t name (Histogram h);
      h

let incr c = c.c <- c.c + 1
let add c n = c.c <- c.c + n
let reset_counter c = c.c <- 0
let fset d x = d.d <- x
let fadd d x = d.d <- d.d +. x

let bucket_of h x =
  (* First bucket whose upper bound admits [x]; binary search not worth it
     for two dozen buckets. *)
  let n = Array.length h.bounds in
  let rec go i = if i >= n || x <= h.bounds.(i) then i else go (i + 1) in
  go 0

let observe h x =
  let i = bucket_of h x in
  h.counts.(i) <- h.counts.(i) + 1;
  h.h_n <- h.h_n + 1;
  h.h_sum <- h.h_sum +. x

let percentile h p =
  if h.h_n = 0 then 0.0
  else begin
    let p = if p < 0.0 then 0.0 else if p > 100.0 then 100.0 else p in
    let target = p /. 100.0 *. float_of_int h.h_n in
    let nb = Array.length h.bounds in
    let rec go i cum =
      if i > nb then h.bounds.(nb - 1)
      else
        let cum = cum + h.counts.(i) in
        if float_of_int cum >= target && h.counts.(i) > 0 then
          (* Overflow bucket has no finite upper bound; report the largest
             finite one — a known-conservative floor. *)
          if i < nb then h.bounds.(i) else h.bounds.(nb - 1)
        else go (i + 1) cum
    in
    go 0 0
  end

let count c = c.c
let value d = d.d
let bucket_bounds h = Array.copy h.bounds
let bucket_counts h = Array.copy h.counts
let observations h = h.h_n
let sum h = h.h_sum

let read t name =
  match Hashtbl.find_opt t.by_name name with
  | Some (Counter c) -> float_of_int c.c
  | Some (Dial d) -> d.d
  | Some (Gauge g) -> g.g_read ()
  | Some (Histogram h) -> h.h_sum
  | None -> raise Not_found

let read_int t name = truncate (read t name)

let find_histogram t name =
  match Hashtbl.find_opt t.by_name name with
  | Some (Histogram h) -> Some h
  | _ -> None
let mem t name = Hashtbl.mem t.by_name name
let names t = List.rev t.order

let render t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun name ->
      match Hashtbl.find_opt t.by_name name with
      | None -> ()
      | Some (Counter c) -> Buffer.add_string buf (Printf.sprintf "%-32s %d\n" c.c_name c.c)
      | Some (Dial d) -> Buffer.add_string buf (Printf.sprintf "%-32s %.3f\n" d.d_name d.d)
      | Some (Gauge g) ->
          Buffer.add_string buf (Printf.sprintf "%-32s %.3f\n" g.g_name (g.g_read ()))
      | Some (Histogram h) ->
          let mean = if h.h_n = 0 then 0.0 else h.h_sum /. float_of_int h.h_n in
          Buffer.add_string buf
            (Printf.sprintf "%-32s n=%d sum=%.1f mean=%.2f\n" h.h_name h.h_n h.h_sum mean);
          Array.iteri
            (fun i n ->
              if n > 0 then
                let label =
                  if i < Array.length h.bounds then
                    Printf.sprintf "<=%.0f" h.bounds.(i)
                  else Printf.sprintf ">%.0f" h.bounds.(Array.length h.bounds - 1)
                in
                Buffer.add_string buf (Printf.sprintf "  %-12s %d\n" label n))
            h.counts)
    (names t);
  Buffer.contents buf
