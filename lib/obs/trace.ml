(* Ring-buffer event trace.  See trace.mli for the contract. *)

type kind = Span | Instant | Flow_start | Flow_step | Flow_end

type event = {
  name : string;
  cat : string;
  track : int;
  ts : float;
  dur : float;
  kind : kind;
  args : (string * int) list;
}

type t = {
  now : unit -> float;
  capacity : int;
  buf : event array;
  mutable total : int; (* events ever recorded *)
  mutable stopped : bool;
  owner : Domain.id;  (* instrumentation is single-domain; see trace.mli *)
}

let track_recovery = 0
let track_cache = 1
let track_data_disk = 2
let track_log_disk = 3
let track_dc_log_disk = 4
let track_wal = 5
let track_monitor = 6
let track_archive_disk = 7
let worker_track_base = 8
let track_worker w = worker_track_base + w
let track_net = 39
let shard_track_base = 40
let track_shard s = shard_track_base + s
let track_ondemand = 63
let client_track_base = 64
let track_client c = client_track_base + c

(* Chrome "process" grouping: the engine's lanes live in pid 0, the
   network in pid 1, and each data-component shard in its own pid, so
   Perfetto groups lanes per component instead of one flat list. *)
let pid_of_track tid =
  if tid = track_net then 1
  else if tid >= shard_track_base && tid < track_ondemand then 2 + (tid - shard_track_base)
  else 0

let pid_name = function
  | 0 -> "engine"
  | 1 -> "net"
  | p -> "shard-" ^ string_of_int (p - 2)

let track_name = function
  | 0 -> "recovery"
  | 1 -> "cache"
  | 2 -> "data-disk"
  | 3 -> "log-disk"
  | 4 -> "dc-log-disk"
  | 5 -> "wal"
  | 6 -> "monitor"
  | 7 -> "archive-disk"
  | 39 -> "net"
  | 63 -> "ondemand-redo"
  | n when n >= client_track_base -> "client-" ^ string_of_int (n - client_track_base)
  | n when n >= shard_track_base -> "shard-" ^ string_of_int (n - shard_track_base)
  | n when n >= worker_track_base -> "redo-worker-" ^ string_of_int (n - worker_track_base)
  | n -> "track-" ^ string_of_int n

let dummy =
  { name = ""; cat = ""; track = 0; ts = 0.0; dur = 0.0; kind = Instant; args = [] }

let create ~now ?(capacity = 65536) () =
  if capacity < 1 then invalid_arg "Trace.create: capacity must be positive";
  {
    now;
    capacity;
    buf = Array.make capacity dummy;
    total = 0;
    stopped = false;
    owner = Domain.self ();
  }

let now t = t.now ()

(* The ownership guard makes a cross-domain event a loud error instead of
   a silently torn ring (two domains racing [total] would overwrite each
   other's slots).  One comparison per event; tracing is a diagnostic
   mode, so the cost is irrelevant. *)
let push t ev =
  if Domain.self () <> t.owner then
    invalid_arg
      ("Trace: event '" ^ ev.name
     ^ "' pushed from a domain that does not own this ring (instrumentation \
        is single-domain: give each domain its own engine)");
  if not t.stopped then begin
    t.buf.(t.total mod t.capacity) <- ev;
    t.total <- t.total + 1
  end

let span t ~name ~cat ?(track = 0) ~ts ~dur ?(args = []) () =
  push t { name; cat; track; ts; dur; kind = Span; args }

let instant t ~name ~cat ?(track = 0) ?(args = []) () =
  push t { name; cat; track; ts = t.now (); dur = 0.0; kind = Instant; args }

(* Flow events carry their id as the ["id"] arg by convention; the
   exporter renders it as the top-level Chrome flow [id] field.  The
   timestamp is explicit so a flow point can be placed inside the span it
   binds to (spans are emitted after their duration is known). *)
let flow t kind ~name ~cat ?(track = 0) ~ts ~id () =
  push t { name; cat; track; ts; dur = 0.0; kind; args = [ ("id", id) ] }

let flow_start t = flow t Flow_start
let flow_step t = flow t Flow_step
let flow_end t = flow t Flow_end

let flow_id ev = match List.assoc_opt "id" ev.args with Some id -> id | None -> -1

let stop t = t.stopped <- true
let emitted t = t.total
let length t = min t.total t.capacity
let dropped t = max 0 (t.total - t.capacity)

let events t =
  let n = length t in
  let first = t.total - n in
  List.init n (fun i -> t.buf.((first + i) mod t.capacity))

let count t ?kind ?name () =
  let matches ev =
    (match kind with Some k -> ev.kind = k | None -> true)
    && match name with Some n -> ev.name = n | None -> true
  in
  List.fold_left (fun acc ev -> if matches ev then acc + 1 else acc) 0 (events t)

(* ---------- export ---------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Fixed "%.3f" keeps the output byte-stable across runs: the inputs are
   deterministic doubles from the simulation, so their rounding is too. *)
let js_ts x = Printf.sprintf "%.3f" x

let args_json args =
  String.concat "," (List.map (fun (k, v) -> Printf.sprintf "\"%s\":%d" (json_escape k) v) args)

let event_json ev =
  let common =
    Printf.sprintf "\"name\":\"%s\",\"cat\":\"%s\",\"pid\":%d,\"tid\":%d,\"ts\":%s"
      (json_escape ev.name) (json_escape ev.cat) (pid_of_track ev.track) ev.track
      (js_ts ev.ts)
  in
  let tail = match ev.args with [] -> "" | args -> Printf.sprintf ",\"args\":{%s}" (args_json args) in
  match ev.kind with
  | Span -> Printf.sprintf "{%s,\"ph\":\"X\",\"dur\":%s%s}" common (js_ts ev.dur) tail
  | Instant -> Printf.sprintf "{%s,\"ph\":\"i\",\"s\":\"t\"%s}" common tail
  | Flow_start -> Printf.sprintf "{%s,\"ph\":\"s\",\"id\":%d}" common (flow_id ev)
  | Flow_step -> Printf.sprintf "{%s,\"ph\":\"t\",\"id\":%d}" common (flow_id ev)
  | Flow_end -> Printf.sprintf "{%s,\"ph\":\"f\",\"bp\":\"e\",\"id\":%d}" common (flow_id ev)

let to_chrome_json ?metrics t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  let first = ref true in
  let emit s =
    if !first then first := false else Buffer.add_char buf ',';
    Buffer.add_string buf s
  in
  (* Process- and thread-name metadata so Perfetto groups lanes per
     component and labels them: the seven fixed lanes plus any extra lane
     actually present in the events, each under its component's pid. *)
  let evs = events t in
  let extra =
    List.sort_uniq compare
      (List.filter_map (fun ev -> if ev.track > 6 then Some ev.track else None) evs)
  in
  let lanes = List.init 7 Fun.id @ extra in
  let pids = List.sort_uniq compare (List.map pid_of_track lanes) in
  List.iter
    (fun pid ->
      emit
        (Printf.sprintf
           "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":\"%s\"}}"
           pid (pid_name pid)))
    pids;
  List.iter
    (fun tid ->
      emit
        (Printf.sprintf
           "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":\"%s\"}}"
           (pid_of_track tid) tid (track_name tid)))
    lanes;
  (* A metrics snapshot rides along as metadata events (ignored by trace
     viewers, read back by tools): one per registered name, in registration
     order so the bytes are stable. *)
  (match metrics with
  | None -> ()
  | Some m ->
      List.iter
        (fun name ->
          let n =
            match Metrics.find_histogram m name with
            | Some h -> Printf.sprintf ",\"n\":%d" (Metrics.observations h)
            | None -> ""
          in
          emit
            (Printf.sprintf
               "{\"name\":\"metric\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"args\":{\"metric\":\"%s\",\"value\":%s%s}}"
               (json_escape name)
               (js_ts (Metrics.read m name))
               n))
        (Metrics.names m));
  List.iter (fun ev -> emit (event_json ev)) evs;
  Buffer.add_string buf "]}";
  Buffer.contents buf

(* A dropped event means an export would describe a truncated run; tell
   the operator exactly what capacity to ask for. *)
let overflow_advice t =
  if dropped t = 0 then None
  else
    Some
      (Printf.sprintf
         "trace ring overflowed (%d of %d events dropped).\n\
          A trace_capacity of %d would have sufficed — rerun with DEUT_TRACE_CAP=%d."
         (dropped t) (emitted t) (emitted t) (emitted t))

let csv_header = [ "ts_us"; "dur_us"; "kind"; "track"; "cat"; "name"; "args" ]

let csv_rows t =
  List.map
    (fun ev ->
      [
        js_ts ev.ts;
        js_ts ev.dur;
        (match ev.kind with
        | Span -> "span"
        | Instant -> "instant"
        | Flow_start -> "flow-start"
        | Flow_step -> "flow-step"
        | Flow_end -> "flow-end");
        track_name ev.track;
        ev.cat;
        ev.name;
        String.concat "," (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) ev.args);
      ])
    (events t)
