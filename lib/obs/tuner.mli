(** Deterministic prefetch auto-tuner over mined profiles.

    This module is the policy half of the feedback loop: given one
    {!Analysis.t} per candidate prefetch setting (all from the same crash
    image, produced by a sweep the caller runs — see
    [Figures.run_tuning]), it scores each candidate by its stall-attributed
    time plus penalties for late and wasted prefetches, and picks a winner
    with a total-order tie-break so the recommendation is reproducible.

    It sits below the engine in the dependency order, so candidates are
    plain integers/strings here; mapping them onto [Config.prefetch_*] is
    the caller's job. *)

(** One prefetch setting under trial.  [lookahead] only matters to
    log-driven (SQL2-style) prefetch and [source] only to PF-list
    (Log2-style) prefetch; sweeps hold the irrelevant one fixed. *)
type candidate = { window : int; chunk : int; lookahead : int; source : string }

val candidate_to_string : candidate -> string

(** A candidate with its measured result: the mined profile and the
    simulated redo time the engine reported for that run. *)
type outcome = { cand : candidate; profile : Analysis.t; redo_ms : float }

val score : Analysis.t -> float
(** Stall-attributed µs, plus [50 µs] per wasted prefetched page (a page
    transfer spent on nothing) and [12.5 µs] per late page (the batch was
    issued, but after the cursor needed it).  Lower is better.  Pure
    arithmetic on the profile — no clock, no randomness. *)

val best : outcome list -> outcome option
(** Minimum score; ties break on (window, chunk, lookahead, source)
    ascending, so equal-scoring sweeps always recommend the same setting.
    [None] on an empty list. *)

val table : default:candidate -> outcome list -> string
(** Recommendation table, one row per outcome in sweep order: setting,
    simulated redo ms, stall ms, late/wasted counts, score; the row
    matching [default] is marked [default], the winner [<-- best]. *)
