(** Always-on, fixed-cost flight recorder: a small bounded ring of recent
    protocol/durability history per component, distinct from the opt-in
    {!Trace}.

    Where a trace is a complete event stream sized for offline analysis,
    the flight recorder is a black box: each component (the TC and every
    data-component shard) keeps only its last [capacity] events —
    protocol sends/receives/handles with their causal message ids, log
    forces, checkpoints, recovery-phase transitions, crash markers.  Cost
    is O(1) per event into preallocated rings regardless of run length,
    which is why it can stay on in every configuration.

    Recording samples the simulated clock but never advances it, so the
    recorder is invisible to simulated results (the zero-observer-effect
    contract shared with {!Trace}).  A {!snapshot} is an immutable deep
    copy taken at crash time; it rides inside the crash image so
    [repro_cli forensics] can print the last events before the crash after
    the fact.  [render] is deterministic: same seed, same bytes.

    Instrumentation is single-domain: the recorder belongs to the domain
    that created it, and recording from any other domain raises
    [Invalid_argument] rather than interleaving rings through a torn
    sequence counter.  The domain-parallel harness and redo honour this by
    giving every domain its own engine; snapshots taken after the owning
    domain has been joined are safe. *)

type kind =
  | Send  (** TC dispatched a protocol request *)
  | Recv  (** TC received the reply *)
  | Handle  (** DC-side handler ran the request *)
  | Force  (** a log force reached stable storage *)
  | Ckpt  (** checkpoint milestone *)
  | Phase  (** recovery-phase transition *)
  | Crash  (** crash marker (whole engine or one shard) *)

val kind_to_string : kind -> string

type entry = {
  e_seq : int;  (** global sequence number, total order across components *)
  e_ts : float;  (** simulated µs *)
  e_comp : int;  (** component: [-1] = TC, [0..n-1] = shard *)
  e_kind : kind;
  e_what : string;  (** request tag / phase name / detail *)
  e_mid : int;  (** causal message id, [-1] when not message-related *)
  e_lsn : int;  (** LSN detail, [-1] when not applicable *)
}

type t

val tc : int
(** The TC's component index, [-1]. *)

val create : now:(unit -> float) -> components:int -> ?capacity:int -> unit -> t
(** One ring for the TC plus one per data-component shard ([components]
    shards).  [capacity] (default 128) is per component. *)

val components : t -> int
val capacity : t -> int

val recorded : t -> int
(** Total events ever recorded, across all components. *)

val record :
  t -> comp:int -> kind -> string -> ?mid:int -> ?lsn:int -> unit -> unit
(** [record t ~comp kind what] appends to component [comp]'s ring,
    overwriting its oldest entry when full. *)

(** {1 Snapshots and forensics} *)

type snapshot

val snapshot : t -> snapshot
(** Immutable deep copy of every ring; later recording does not show
    through.  Captured by [Db.crash] / [Db.crash_shard] into the crash
    image. *)

val snapshot_components : snapshot -> int
val snapshot_entries : snapshot -> comp:int -> entry list
(** Oldest first. *)

val render : snapshot -> string
(** The forensic dump: per-component recent history (sequence number,
    timestamp, kind, detail, message id, LSN), then every causal message
    id stitched across components in sequence order.  Byte-deterministic
    for a given snapshot. *)
