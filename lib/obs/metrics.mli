(** Named metrics registry: counters, dials, gauges and log-scale histograms.

    Every engine owns one registry.  Components register their own
    instruments under dotted names ("cache.hits", "disk.data.io_us") and
    mutate them through O(1) handles; readers ([Engine_stats], the CLI)
    address them by name.  The registry never touches the simulated clock,
    so it cannot perturb simulated time.

    Instrumentation is single-domain: a registry belongs to the domain
    that created it (normally the domain running that engine), and
    registering an instrument from any other domain raises
    [Invalid_argument] — a loud guard, since a silent cross-domain race
    would corrupt the table.  The domain-parallel harness and redo honour
    this by giving every domain its own engine, hence its own registry;
    reading a registry after the owning domain has been joined is safe. *)

type counter
(** Monotonic integer cell. *)

type dial
(** Settable float cell (a gauge the writer pushes into). *)

type histogram
(** Fixed-bucket histogram.  Buckets are upper bounds in ascending order
    plus an implicit overflow bucket. *)

type t
(** A registry. *)

val create : unit -> t

(** {1 Registration}

    [counter]/[dial]/[histogram] are get-or-create: asking for an existing
    name returns the existing instrument of that kind (so independent
    components may share a cell on purpose) and raises [Invalid_argument]
    on a kind mismatch.  [gauge] has no handle to share, so registering a
    gauge name twice raises [Invalid_argument] — a duplicate means two
    writers are fighting over one name, and shadowing either would
    silently lose an instrument. *)

val counter : t -> string -> counter
val dial : t -> string -> dial

val gauge : t -> string -> (unit -> float) -> unit
(** Lazy read-only metric; [read] runs only when the registry is queried.
    @raise Invalid_argument on a duplicate name. *)

val histogram : t -> ?base:float -> ?lo:float -> ?buckets:int -> string -> histogram
(** Log-scale buckets: upper bounds [lo *. base^i] for [i < buckets]
    (defaults: base 2.0, lo 1.0, 24 buckets — 1 µs up to ~8.4 simulated
    seconds), plus an overflow bucket. *)

(** {1 Writing} *)

val incr : counter -> unit
val add : counter -> int -> unit

val reset_counter : counter -> unit
(** Zero the cell.  Owners that reuse one registry across runs (e.g.
    [Recovery_stats] under the memoized harness) reset their instruments
    at the start of each run rather than accumulate across cells. *)

val fset : dial -> float -> unit
val fadd : dial -> float -> unit
val observe : histogram -> float -> unit

(** {1 Reading} *)

val count : counter -> int
val value : dial -> float

val bucket_of : histogram -> float -> int
(** Index of the bucket [observe] would land the value in (last index is
    the overflow bucket). *)

val bucket_bounds : histogram -> float array
val bucket_counts : histogram -> int array
val observations : histogram -> int
val sum : histogram -> float

val percentile : histogram -> float -> float
(** [percentile h p] for [p] in [0, 100]: the upper bound of the first
    bucket at which the cumulative count reaches [p]% of observations —
    an upper estimate quantised to the bucket grid.  Observations in the
    overflow bucket report the largest finite bound.  0 when empty. *)

val read : t -> string -> float
(** Current value by name: counters as floats, dials as-is, gauges by
    calling their closure, histograms as their running sum.
    @raise Not_found if no such metric is registered. *)

val read_int : t -> string -> int
(** [truncate (read t name)]. *)

val mem : t -> string -> bool

val find_histogram : t -> string -> histogram option
(** The histogram registered under [name], if any ([None] also when the
    name holds a different kind of instrument). *)

val names : t -> string list
(** All registered names, in registration order. *)

val render : t -> string
(** Human-readable dump: one [name value] line per scalar metric, and for
    each histogram a line with count/sum/mean plus its non-empty buckets. *)
