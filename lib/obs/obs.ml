(** Observability bundle carried by an engine: an optional event trace
    (present only when [Config.tracing] is on) plus the always-on metrics
    registry. *)

type t = { trace : Trace.t option; metrics : Metrics.t }

let create ?trace () = { trace; metrics = Metrics.create () }
let trace t = t.trace
let metrics t = t.metrics
