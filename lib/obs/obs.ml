(** Observability bundle carried by an engine: an optional event trace
    (present only when [Config.tracing] is on), the always-on metrics
    registry, and the always-on flight recorder (absent only when
    explicitly disabled for the observer-effect tests). *)

type t = { trace : Trace.t option; metrics : Metrics.t; flight : Flight.t option }

let create ?trace ?flight () = { trace; metrics = Metrics.create (); flight }
let trace t = t.trace
let metrics t = t.metrics
let flight t = t.flight
