(* Trace-mining profiler.  See analysis.mli for the contract. *)

type phase = {
  ph_name : string;
  ph_start_us : float;
  ph_dur_us : float;
  ph_stall_us : float;
  ph_io_us : float;
  ph_overlap_us : float;
  ph_compute_us : float;
}

type source = { src_device : string; src_kind : string; src_count : int; src_stall_us : float }

type net_source = {
  ns_request : string;
  ns_calls : int;
  ns_wait_us : float;
  ns_wire_us : float;
  ns_retransmits : int;
}

type t = {
  meta : (string * string) list;
  total_us : float;
  phases : phase list;
  fetch_total : int;
  fetch_data : int;
  fetch_index : int;
  fetch_prefetched : int;
  fetch_demand : int;
  pf_issued : int;
  pf_hit : int;
  pf_late : int;
  pf_wasted : int;
  stall_count : int;
  stall_total_us : float;
  stall_attributed_us : float;
  sources : source list;
  net_msgs : int;
  net_wire_us : float;
  net_retransmits : int;
  net_sources : net_source list;
  redo_ops : int;
}

let arg ev key = match List.assoc_opt key ev.Trace.args with Some v -> v | None -> 0
let span_end ev = ev.Trace.ts +. ev.Trace.dur

(* ---------- interval arithmetic ---------- *)

(* Clip [(s, e)] intervals to [lo, hi] and return the length of their union.
   Sums within a window must not double-count two devices busy at once. *)
let union_clipped intervals ~lo ~hi =
  let clipped =
    List.filter_map
      (fun (s, e) ->
        let s = max s lo and e = min e hi in
        if e > s then Some (s, e) else None)
      intervals
  in
  let sorted = List.sort compare clipped in
  let rec go acc cur = function
    | [] -> ( match cur with None -> acc | Some (s, e) -> acc +. (e -. s))
    | (s, e) :: rest -> (
        match cur with
        | None -> go acc (Some (s, e)) rest
        | Some (cs, ce) ->
            if s <= ce then go acc (Some (cs, max ce e)) rest
            else go (acc +. (ce -. cs)) (Some (s, e)) rest)
  in
  go 0.0 None sorted

let sum_clipped intervals ~lo ~hi =
  List.fold_left
    (fun acc (s, e) ->
      let s = max s lo and e = min e hi in
      if e > s then acc +. (e -. s) else acc)
    0.0 intervals

(* ---------- stall attribution ---------- *)

(* A stall span ends exactly when the awaited IO completes
   ([Buffer_pool.stall_until] advances the clock to the request's
   completion), so the device span whose end matches the stall's end — both
   deterministic doubles — is the cause.  [eps] absorbs float summation
   noise only; distinct completions differ by whole transfer times. *)
let end_eps = 0.5

let attribute_stalls ~stalls ~ios =
  let ios = Array.of_list ios in
  (* Total order so the scan (and any tie-break) is deterministic. *)
  Array.sort
    (fun a b ->
      compare
        (span_end a, a.Trace.ts, a.Trace.track, a.Trace.name)
        (span_end b, b.Trace.ts, b.Trace.track, b.Trace.name))
    ios;
  let n = Array.length ios in
  let ends = Array.map span_end ios in
  let max_dur = Array.fold_left (fun m io -> max m io.Trace.dur) 0.0 ios in
  (* First io (in end order) whose end is >= x. *)
  let lower_bound x =
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if ends.(mid) < x then lo := mid + 1 else hi := mid
    done;
    !lo
  in
  let buckets : (string * string, int ref * float ref) Hashtbl.t = Hashtbl.create 16 in
  let attributed = ref 0.0 in
  List.iter
    (fun st ->
      let st_end = span_end st in
      let best = ref None in
      let i = ref (lower_bound st.Trace.ts) in
      (* Any io overlapping the stall has end >= stall start (hence >= !i)
         and start <= stall end; once end - max_dur > stall end no later io
         can reach back into the window. *)
      let continue = ref true in
      while !continue && !i < n do
        let io = ios.(!i) in
        let io_end = ends.(!i) in
        if io_end -. max_dur > st_end then continue := false
        else begin
          let overlap = min st_end io_end -. max st.Trace.ts io.Trace.ts in
          if overlap > 0.0 then begin
            let end_delta = Float.abs (io_end -. st_end) in
            let better =
              match !best with
              | None -> true
              | Some (bd, bo, _) ->
                  if end_delta <= end_eps && bd > end_eps then true
                  else if bd <= end_eps then end_delta < bd
                  else overlap > bo
            in
            if better then best := Some (end_delta, overlap, io)
          end;
          incr i
        end
      done;
      match !best with
      | None -> ()
      | Some (_, _, io) ->
          let key = (Trace.track_name io.Trace.track, io.Trace.name) in
          let cnt, us =
            match Hashtbl.find_opt buckets key with
            | Some cell -> cell
            | None ->
                let cell = (ref 0, ref 0.0) in
                Hashtbl.add buckets key cell;
                cell
          in
          incr cnt;
          us := !us +. st.Trace.dur;
          attributed := !attributed +. st.Trace.dur)
    stalls;
  let sources =
    Hashtbl.fold
      (fun (dev, kind) (cnt, us) acc ->
        { src_device = dev; src_kind = kind; src_count = !cnt; src_stall_us = !us } :: acc)
      buckets []
  in
  let sources =
    List.sort
      (fun a b ->
        compare
          (-.a.src_stall_us, a.src_device, a.src_kind)
          (-.b.src_stall_us, b.src_device, b.src_kind))
      sources
  in
  (!attributed, sources)

(* ---------- stall → message attribution ---------- *)

(* The causal-tracing layer stamps every protocol exchange with a message
   id: the TC-side [req:<tag>] span is the synchronous wait the exchange
   cost, the [net_send]/[net_reply] spans are its wire legs, and each
   [net_loss] instant is a retransmit — all carrying the same ["mid"].
   Grouping the three by the request tag the mid resolves to turns the
   device-style stall budget into a per-message one: which protocol
   operations the TC waited on, for how long, how much of that was wire,
   and which retransmits made it worse. *)
let attribute_net ~rpcs ~nets ~losses =
  let mid_of ev = List.assoc_opt "mid" ev.Trace.args in
  let tag_of_rpc ev =
    let name = ev.Trace.name in
    let plen = String.length "req:" in
    if String.length name > plen && String.sub name 0 plen = "req:" then
      Some (String.sub name plen (String.length name - plen))
    else None
  in
  let mid_to_req = Hashtbl.create 64 in
  List.iter
    (fun ev ->
      match (tag_of_rpc ev, mid_of ev) with
      | Some tag, Some mid -> Hashtbl.replace mid_to_req mid tag
      | _ -> ())
    rpcs;
  let resolve ev =
    match mid_of ev with
    | Some mid -> (
        match Hashtbl.find_opt mid_to_req mid with Some tag -> tag | None -> "(unknown)")
    | None -> "(unknown)"
  in
  let buckets : (string, int ref * float ref * float ref * int ref) Hashtbl.t =
    Hashtbl.create 16
  in
  let bucket tag =
    match Hashtbl.find_opt buckets tag with
    | Some cell -> cell
    | None ->
        let cell = (ref 0, ref 0.0, ref 0.0, ref 0) in
        Hashtbl.add buckets tag cell;
        cell
  in
  List.iter
    (fun ev ->
      match tag_of_rpc ev with
      | Some tag ->
          let calls, wait, _, _ = bucket tag in
          incr calls;
          wait := !wait +. ev.Trace.dur
      | None -> ())
    rpcs;
  List.iter
    (fun ev ->
      let _, _, wire, _ = bucket (resolve ev) in
      wire := !wire +. ev.Trace.dur)
    nets;
  List.iter
    (fun ev ->
      let _, _, _, retx = bucket (resolve ev) in
      incr retx)
    losses;
  Hashtbl.fold
    (fun tag (calls, wait, wire, retx) acc ->
      {
        ns_request = tag;
        ns_calls = !calls;
        ns_wait_us = !wait;
        ns_wire_us = !wire;
        ns_retransmits = !retx;
      }
      :: acc)
    buckets []
  |> List.sort (fun a b ->
         compare (-.a.ns_wait_us, a.ns_request) (-.b.ns_wait_us, b.ns_request))

(* ---------- profile construction ---------- *)

let of_events ?(meta = []) events =
  let stalls = ref [] and ios = ref [] and phases_raw = ref [] in
  let rpcs = ref [] and nets = ref [] and losses = ref [] in
  let fetch_total = ref 0
  and fetch_index = ref 0
  and fetch_prefetched = ref 0
  and pf_hit = ref 0
  and pf_late = ref 0
  and pf_pages = ref 0
  and pf_issue_count = ref 0
  and redo_ops = ref 0 in
  List.iter
    (fun ev ->
      match (ev.Trace.kind, ev.Trace.name) with
      | Trace.Span, "stall" -> stalls := ev :: !stalls
      | Trace.Span, _ when ev.Trace.cat = "io" -> ios := ev :: !ios
      | Trace.Span, _ when ev.Trace.cat = "phase" -> phases_raw := ev :: !phases_raw
      | Trace.Span, _ when ev.Trace.cat = "rpc" -> rpcs := ev :: !rpcs
      | Trace.Span, _ when ev.Trace.cat = "net" -> nets := ev :: !nets
      | Trace.Instant, "net_loss" -> losses := ev :: !losses
      | Trace.Span, "page_fetch" ->
          incr fetch_total;
          if arg ev "index" = 1 then incr fetch_index;
          if arg ev "prefetched" = 1 then begin
            incr fetch_prefetched;
            if ev.Trace.dur > 0.0 then incr pf_late else incr pf_hit
          end
      | Trace.Span, "redo_op" -> incr redo_ops
      | Trace.Instant, "prefetch_page" -> incr pf_pages
      | Trace.Instant, "prefetch_issue" -> pf_issue_count := !pf_issue_count + arg ev "count"
      | _ -> ())
    events;
  let stalls = List.rev !stalls and ios = List.rev !ios in
  let phases_raw = List.rev !phases_raw in
  let rpcs = List.rev !rpcs and nets = List.rev !nets and losses = List.rev !losses in
  (* Older traces predate per-page prefetch instants; the batch counts
     carry the same total. *)
  let pf_issued = if !pf_pages > 0 then !pf_pages else !pf_issue_count in
  let pf_wasted = max 0 (pf_issued - !pf_hit - !pf_late) in
  let stall_ivals = List.map (fun ev -> (ev.Trace.ts, span_end ev)) stalls in
  let io_ivals = List.map (fun ev -> (ev.Trace.ts, span_end ev)) ios in
  let phases =
    List.map
      (fun ev ->
        let lo = ev.Trace.ts and hi = span_end ev in
        let stall = sum_clipped stall_ivals ~lo ~hi in
        let stall_union = union_clipped stall_ivals ~lo ~hi in
        let io = union_clipped io_ivals ~lo ~hi in
        {
          ph_name = ev.Trace.name;
          ph_start_us = ev.Trace.ts;
          ph_dur_us = ev.Trace.dur;
          ph_stall_us = stall;
          ph_io_us = io;
          (* Stall intervals sit inside device-busy intervals (the waiter
             follows an in-flight request), so busy-minus-stalled is the IO
             the phase hid under compute. *)
          ph_overlap_us = max 0.0 (io -. stall_union);
          ph_compute_us = max 0.0 (ev.Trace.dur -. stall);
        })
      phases_raw
  in
  (* The redo phase span covers the log-scan, so the wall-clock total is
     analysis + redo + undo. *)
  let total_us =
    List.fold_left
      (fun acc ph -> if ph.ph_name = "log_scan" then acc else acc +. ph.ph_dur_us)
      0.0 phases
  in
  let stall_total_us = List.fold_left (fun acc ev -> acc +. ev.Trace.dur) 0.0 stalls in
  let stall_attributed_us, sources = attribute_stalls ~stalls ~ios in
  {
    meta;
    total_us;
    phases;
    fetch_total = !fetch_total;
    fetch_data = !fetch_total - !fetch_index;
    fetch_index = !fetch_index;
    fetch_prefetched = !fetch_prefetched;
    fetch_demand = !fetch_total - !fetch_prefetched;
    pf_issued;
    pf_hit = !pf_hit;
    pf_late = !pf_late;
    pf_wasted;
    stall_count = List.length stalls;
    stall_total_us;
    stall_attributed_us;
    sources;
    net_msgs = List.length nets;
    net_wire_us = List.fold_left (fun acc ev -> acc +. ev.Trace.dur) 0.0 nets;
    net_retransmits = List.length losses;
    net_sources = attribute_net ~rpcs ~nets ~losses;
    redo_ops = !redo_ops;
  }

let of_trace ?meta tr = of_events ?meta (Trace.events tr)

let ratio num den = if den <= 0.0 then 0.0 else num /. den
let late_fraction t = ratio (float_of_int t.pf_late) (float_of_int (t.pf_hit + t.pf_late))
let wasted_fraction t = ratio (float_of_int t.pf_wasted) (float_of_int t.pf_issued)

let attributed_fraction t =
  if t.stall_total_us <= 0.0 then 1.0 else t.stall_attributed_us /. t.stall_total_us

(* ---------- render ---------- *)

let ms us = Printf.sprintf "%.3f" (us /. 1000.0)
let pct x = Printf.sprintf "%.1f%%" (100.0 *. x)

let render t =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  (match t.meta with
  | [] -> ()
  | meta -> line "profile: %s" (String.concat ", " (List.map (fun (k, v) -> k ^ "=" ^ v) meta)));
  line "total (analysis+redo+undo): %s ms" (ms t.total_us);
  line "";
  line "phase budget (simulated ms):";
  line "  %-10s %10s %10s %10s %10s %10s %10s" "phase" "start" "dur" "stall" "io-busy"
    "overlap" "compute";
  List.iter
    (fun ph ->
      line "  %-10s %10s %10s %10s %10s %10s %10s" ph.ph_name (ms ph.ph_start_us)
        (ms ph.ph_dur_us) (ms ph.ph_stall_us) (ms ph.ph_io_us) (ms ph.ph_overlap_us)
        (ms ph.ph_compute_us))
    t.phases;
  line "";
  line "fetches: %d page_fetch = %d data + %d index; %d prefetched, %d demand" t.fetch_total
    t.fetch_data t.fetch_index t.fetch_prefetched t.fetch_demand;
  line "prefetch: %d issued -> %d hit, %d late (%s of claims), %d wasted (%s of issued)"
    t.pf_issued t.pf_hit t.pf_late
    (pct (late_fraction t))
    t.pf_wasted
    (pct (wasted_fraction t));
  line "stalls: %d spans, %s ms; attributed %s ms (%s)" t.stall_count (ms t.stall_total_us)
    (ms t.stall_attributed_us)
    (pct (attributed_fraction t));
  if t.sources <> [] then begin
    line "  %-12s %-10s %8s %12s" "device" "kind" "stalls" "stall ms";
    List.iter
      (fun s -> line "  %-12s %-10s %8d %12s" s.src_device s.src_kind s.src_count (ms s.src_stall_us))
      t.sources
  end;
  if t.net_msgs > 0 || t.net_retransmits > 0 then begin
    line "net: %d messages, %s ms on the wire, %d retransmits" t.net_msgs (ms t.net_wire_us)
      t.net_retransmits;
    line "  %-20s %8s %12s %12s %8s" "request" "calls" "wait ms" "wire ms" "retx";
    List.iter
      (fun s ->
        line "  %-20s %8d %12s %12s %8d" s.ns_request s.ns_calls (ms s.ns_wait_us)
          (ms s.ns_wire_us) s.ns_retransmits)
      t.net_sources
  end;
  line "redo ops: %d" t.redo_ops;
  Buffer.contents buf

(* ---------- JSON ---------- *)

let js_f x = Printf.sprintf "%.3f" x

let js_str s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let to_json t =
  let buf = Buffer.create 2048 in
  let add = Buffer.add_string buf in
  add "{\"schema\":1,\"meta\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then add ",";
      add (js_str k);
      add ":";
      add (js_str v))
    t.meta;
  add (Printf.sprintf "},\"total_us\":%s,\"phases\":[" (js_f t.total_us));
  List.iteri
    (fun i ph ->
      if i > 0 then add ",";
      add
        (Printf.sprintf
           "{\"name\":%s,\"start_us\":%s,\"dur_us\":%s,\"stall_us\":%s,\"io_us\":%s,\"overlap_us\":%s,\"compute_us\":%s}"
           (js_str ph.ph_name) (js_f ph.ph_start_us) (js_f ph.ph_dur_us) (js_f ph.ph_stall_us)
           (js_f ph.ph_io_us) (js_f ph.ph_overlap_us) (js_f ph.ph_compute_us)))
    t.phases;
  add
    (Printf.sprintf
       "],\"fetches\":{\"total\":%d,\"data\":%d,\"index\":%d,\"prefetched\":%d,\"demand\":%d}"
       t.fetch_total t.fetch_data t.fetch_index t.fetch_prefetched t.fetch_demand);
  add
    (Printf.sprintf ",\"prefetch\":{\"issued\":%d,\"hit\":%d,\"late\":%d,\"wasted\":%d}"
       t.pf_issued t.pf_hit t.pf_late t.pf_wasted);
  add
    (Printf.sprintf ",\"stalls\":{\"count\":%d,\"total_us\":%s,\"attributed_us\":%s}"
       t.stall_count (js_f t.stall_total_us) (js_f t.stall_attributed_us));
  add ",\"sources\":[";
  List.iteri
    (fun i s ->
      if i > 0 then add ",";
      add
        (Printf.sprintf "{\"device\":%s,\"kind\":%s,\"count\":%d,\"stall_us\":%s}"
           (js_str s.src_device) (js_str s.src_kind) s.src_count (js_f s.src_stall_us)))
    t.sources;
  add
    (Printf.sprintf "],\"net\":{\"msgs\":%d,\"wire_us\":%s,\"retransmits\":%d,\"sources\":["
       t.net_msgs (js_f t.net_wire_us) t.net_retransmits);
  List.iteri
    (fun i s ->
      if i > 0 then add ",";
      add
        (Printf.sprintf
           "{\"request\":%s,\"calls\":%d,\"wait_us\":%s,\"wire_us\":%s,\"retransmits\":%d}"
           (js_str s.ns_request) s.ns_calls (js_f s.ns_wait_us) (js_f s.ns_wire_us)
           s.ns_retransmits))
    t.net_sources;
  add (Printf.sprintf "]},\"redo_ops\":%d}" t.redo_ops);
  Buffer.contents buf

(* Minimal JSON reader for our own output (plus hand-edited baselines).  No
   external dependency is available, so: objects, arrays, strings with the
   escapes we emit, numbers, true/false/null. *)
type json =
  | Jnull
  | Jbool of bool
  | Jnum of float
  | Jstr of string
  | Jarr of json list
  | Jobj of (string * json) list

exception Parse_error of string

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal lit v =
    if !pos + String.length lit <= n && String.sub s !pos (String.length lit) = lit then begin
      pos := !pos + String.length lit;
      v
    end
    else fail ("expected " ^ lit)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          (match peek () with
          | Some '"' -> Buffer.add_char buf '"'
          | Some '\\' -> Buffer.add_char buf '\\'
          | Some '/' -> Buffer.add_char buf '/'
          | Some 'n' -> Buffer.add_char buf '\n'
          | Some 't' -> Buffer.add_char buf '\t'
          | Some 'r' -> Buffer.add_char buf '\r'
          | Some 'u' ->
              if !pos + 4 >= n then fail "bad \\u escape";
              let hex = String.sub s (!pos + 1) 4 in
              let code = try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape" in
              pos := !pos + 4;
              if code < 0x80 then Buffer.add_char buf (Char.chr code)
              else Buffer.add_char buf '?' (* control chars only in our output *)
          | _ -> fail "bad escape");
          advance ();
          go ()
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while (match peek () with Some c when is_num_char c -> true | _ -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Jobj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((key, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((key, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Jobj (members [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Jarr []
        end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          Jarr (elements [])
        end
    | Some '"' -> Jstr (parse_string ())
    | Some 't' -> literal "true" (Jbool true)
    | Some 'f' -> literal "false" (Jbool false)
    | Some 'n' -> literal "null" Jnull
    | Some _ -> Jnum (parse_number ())
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let member name = function
  | Jobj fields -> (
      match List.assoc_opt name fields with
      | Some v -> v
      | None -> raise (Parse_error ("missing field " ^ name)))
  | _ -> raise (Parse_error ("expected object around " ^ name))

let to_num name = function
  | Jnum f -> f
  | _ -> raise (Parse_error ("expected number for " ^ name))

let to_str name = function
  | Jstr s -> s
  | _ -> raise (Parse_error ("expected string for " ^ name))

let num j name = to_num name (member name j)
let int_ j name = int_of_float (num j name)
let str j name = to_str name (member name j)

let of_json text =
  match parse_json text with
  | exception Parse_error msg -> Error msg
  | j -> (
      try
        let meta =
          match member "meta" j with
          | Jobj fields -> List.map (fun (k, v) -> (k, to_str k v)) fields
          | _ -> raise (Parse_error "expected object for meta")
        in
        let phases =
          match member "phases" j with
          | Jarr items ->
              List.map
                (fun p ->
                  {
                    ph_name = str p "name";
                    ph_start_us = num p "start_us";
                    ph_dur_us = num p "dur_us";
                    ph_stall_us = num p "stall_us";
                    ph_io_us = num p "io_us";
                    ph_overlap_us = num p "overlap_us";
                    ph_compute_us = num p "compute_us";
                  })
                items
          | _ -> raise (Parse_error "expected array for phases")
        in
        let sources =
          match member "sources" j with
          | Jarr items ->
              List.map
                (fun s ->
                  {
                    src_device = str s "device";
                    src_kind = str s "kind";
                    src_count = int_ s "count";
                    src_stall_us = num s "stall_us";
                  })
                items
          | _ -> raise (Parse_error "expected array for sources")
        in
        let fetches = member "fetches" j and prefetch = member "prefetch" j in
        let stalls = member "stalls" j in
        (* Profiles written before the net section existed have no "net"
           key; read it tolerantly so committed baselines keep parsing. *)
        let net_msgs, net_wire_us, net_retransmits, net_sources =
          match try Some (member "net" j) with Parse_error _ -> None with
          | None -> (0, 0.0, 0, [])
          | Some nj ->
              let srcs =
                match member "sources" nj with
                | Jarr items ->
                    List.map
                      (fun s ->
                        {
                          ns_request = str s "request";
                          ns_calls = int_ s "calls";
                          ns_wait_us = num s "wait_us";
                          ns_wire_us = num s "wire_us";
                          ns_retransmits = int_ s "retransmits";
                        })
                      items
                | _ -> raise (Parse_error "expected array for net sources")
              in
              (int_ nj "msgs", num nj "wire_us", int_ nj "retransmits", srcs)
        in
        Ok
          {
            meta;
            total_us = num j "total_us";
            phases;
            fetch_total = int_ fetches "total";
            fetch_data = int_ fetches "data";
            fetch_index = int_ fetches "index";
            fetch_prefetched = int_ fetches "prefetched";
            fetch_demand = int_ fetches "demand";
            pf_issued = int_ prefetch "issued";
            pf_hit = int_ prefetch "hit";
            pf_late = int_ prefetch "late";
            pf_wasted = int_ prefetch "wasted";
            stall_count = int_ stalls "count";
            stall_total_us = num stalls "total_us";
            stall_attributed_us = num stalls "attributed_us";
            sources;
            net_msgs;
            net_wire_us;
            net_retransmits;
            net_sources;
            redo_ops = int_ j "redo_ops";
          }
      with Parse_error msg -> Error msg)

(* ---------- CSV ---------- *)

let csv_header = [ "metric"; "value" ]

let csv_rows t =
  let scalar name v = [ name; v ] in
  List.concat
    [
      List.map (fun (k, v) -> scalar ("meta." ^ k) v) t.meta;
      [ scalar "total_us" (js_f t.total_us) ];
      List.concat_map
        (fun ph ->
          let p suffix v = scalar (Printf.sprintf "phase.%s.%s" ph.ph_name suffix) (js_f v) in
          [
            p "start_us" ph.ph_start_us;
            p "dur_us" ph.ph_dur_us;
            p "stall_us" ph.ph_stall_us;
            p "io_us" ph.ph_io_us;
            p "overlap_us" ph.ph_overlap_us;
            p "compute_us" ph.ph_compute_us;
          ])
        t.phases;
      [
        scalar "fetch.total" (string_of_int t.fetch_total);
        scalar "fetch.data" (string_of_int t.fetch_data);
        scalar "fetch.index" (string_of_int t.fetch_index);
        scalar "fetch.prefetched" (string_of_int t.fetch_prefetched);
        scalar "fetch.demand" (string_of_int t.fetch_demand);
        scalar "prefetch.issued" (string_of_int t.pf_issued);
        scalar "prefetch.hit" (string_of_int t.pf_hit);
        scalar "prefetch.late" (string_of_int t.pf_late);
        scalar "prefetch.wasted" (string_of_int t.pf_wasted);
        scalar "stall.count" (string_of_int t.stall_count);
        scalar "stall.total_us" (js_f t.stall_total_us);
        scalar "stall.attributed_us" (js_f t.stall_attributed_us);
      ];
      List.map
        (fun s ->
          scalar
            (Printf.sprintf "stall.source.%s.%s_us" s.src_device s.src_kind)
            (js_f s.src_stall_us))
        t.sources;
      [
        scalar "net.msgs" (string_of_int t.net_msgs);
        scalar "net.wire_us" (js_f t.net_wire_us);
        scalar "net.retransmits" (string_of_int t.net_retransmits);
      ];
      List.concat_map
        (fun s ->
          [
            scalar (Printf.sprintf "net.source.%s.wait_us" s.ns_request) (js_f s.ns_wait_us);
            scalar
              (Printf.sprintf "net.source.%s.retransmits" s.ns_request)
              (string_of_int s.ns_retransmits);
          ])
        t.net_sources;
      [ scalar "redo_ops" (string_of_int t.redo_ops) ];
    ]

(* ---------- regression gate ---------- *)

type check = {
  ck_name : string;
  ck_baseline : float;
  ck_current : float;
  ck_limit : float;
  ck_ok : bool;
}

let check ~baseline ~current ~tolerance_pct =
  let tol = max 0.0 tolerance_pct /. 100.0 in
  (* Absolute slack keeps near-zero baselines from failing on noise-sized
     absolute changes: 2 events for counts, 500 µs for times. *)
  let one name ~slack b c =
    let limit = (b *. (1.0 +. tol)) +. slack in
    { ck_name = name; ck_baseline = b; ck_current = c; ck_limit = limit; ck_ok = c <= limit +. 1e-9 }
  in
  let count name b c = one name ~slack:2.0 (float_of_int b) (float_of_int c) in
  let time name b c = one name ~slack:500.0 b c in
  [
    time "total_us" baseline.total_us current.total_us;
    time "stall_total_us" baseline.stall_total_us current.stall_total_us;
    time "stall_attributed_us" baseline.stall_attributed_us current.stall_attributed_us;
    count "fetch_total" baseline.fetch_total current.fetch_total;
    count "fetch_index" baseline.fetch_index current.fetch_index;
    count "pf_wasted" baseline.pf_wasted current.pf_wasted;
  ]

let check_ok checks = List.for_all (fun ck -> ck.ck_ok) checks

let check_table checks =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "  %-22s %12s %12s %12s  %s\n" "metric" "baseline" "current" "limit" "gate");
  List.iter
    (fun ck ->
      Buffer.add_string buf
        (Printf.sprintf "  %-22s %12.3f %12.3f %12.3f  %s\n" ck.ck_name ck.ck_baseline
           ck.ck_current ck.ck_limit
           (if ck.ck_ok then "ok" else "FAIL")))
    checks;
  Buffer.contents buf
