(* Always-on bounded flight recorder.  See flight.mli for the contract. *)

type kind = Send | Recv | Handle | Force | Ckpt | Phase | Crash

let kind_to_string = function
  | Send -> "send"
  | Recv -> "recv"
  | Handle -> "handle"
  | Force -> "force"
  | Ckpt -> "ckpt"
  | Phase -> "phase"
  | Crash -> "crash"

type entry = {
  e_seq : int;
  e_ts : float;
  e_comp : int;
  e_kind : kind;
  e_what : string;
  e_mid : int;
  e_lsn : int;
}

type t = {
  now : unit -> float;
  capacity : int;
  rings : entry array array;  (* indexed by component + 1; slot 0 is the TC *)
  totals : int array;
  mutable seq : int;
  owner : Domain.id;  (* instrumentation is single-domain; see flight.mli *)
}

let tc = -1

let dummy =
  { e_seq = 0; e_ts = 0.0; e_comp = 0; e_kind = Phase; e_what = ""; e_mid = -1; e_lsn = -1 }

let create ~now ~components ?(capacity = 128) () =
  if components < 1 then invalid_arg "Flight.create: need at least one component";
  if capacity < 1 then invalid_arg "Flight.create: capacity must be positive";
  {
    now;
    capacity;
    rings = Array.init (components + 1) (fun _ -> Array.make capacity dummy);
    totals = Array.make (components + 1) 0;
    seq = 0;
    owner = Domain.self ();
  }

let components t = Array.length t.rings - 1
let capacity t = t.capacity
let recorded t = t.seq

(* O(1), allocates one record, never reads or advances the simulated
   clock beyond sampling it — recording cannot perturb the run.  The
   ownership guard keeps a cross-domain recording a loud error rather
   than a torn [seq] (two domains racing it would interleave rings). *)
let record t ~comp kind what ?(mid = -1) ?(lsn = -1) () =
  if Domain.self () <> t.owner then
    invalid_arg
      ("Flight.record: '" ^ what
     ^ "' recorded from a domain that does not own this recorder \
        (instrumentation is single-domain: give each domain its own engine)");
  let slot = comp + 1 in
  if slot < 0 || slot >= Array.length t.rings then
    invalid_arg (Printf.sprintf "Flight.record: unknown component %d" comp);
  let n = t.totals.(slot) in
  t.rings.(slot).(n mod t.capacity) <-
    { e_seq = t.seq; e_ts = t.now (); e_comp = comp; e_kind = kind; e_what = what; e_mid = mid;
      e_lsn = lsn };
  t.totals.(slot) <- n + 1;
  t.seq <- t.seq + 1

(* ---------- snapshots ---------- *)

(* A snapshot is an immutable deep copy: it rides inside a crash image, so
   later activity on the live recorder must not show through. *)
type snapshot = {
  s_capacity : int;
  s_recorded : int;
  s_entries : entry list array;  (* per slot, oldest first *)
  s_totals : int array;
}

let snapshot t =
  let entries_of slot =
    let total = t.totals.(slot) in
    let n = min total t.capacity in
    let first = total - n in
    List.init n (fun i -> t.rings.(slot).((first + i) mod t.capacity))
  in
  {
    s_capacity = t.capacity;
    s_recorded = t.seq;
    s_entries = Array.init (Array.length t.rings) entries_of;
    s_totals = Array.copy t.totals;
  }

let snapshot_components s = Array.length s.s_entries - 1
let snapshot_entries s ~comp = s.s_entries.(comp + 1)

let comp_label = function -1 -> "tc" | c -> Printf.sprintf "shard %d" c

let entry_line e =
  let tail =
    (if e.e_mid >= 0 then Printf.sprintf " mid=%d" e.e_mid else "")
    ^ if e.e_lsn >= 0 then Printf.sprintf " lsn=%d" e.e_lsn else ""
  in
  Printf.sprintf "  #%06d %12.3f  %-6s %s%s" e.e_seq e.e_ts (kind_to_string e.e_kind)
    e.e_what tail

(* Deterministic text dump: per-component recent history, then every
   causal id stitched across components.  Same seed, same bytes. *)
let render s =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "flight recorder: %d component(s) + tc, capacity %d/component, %d event(s) recorded\n"
       (snapshot_components s) s.s_capacity s.s_recorded);
  Array.iteri
    (fun slot entries ->
      let comp = slot - 1 in
      let total = s.s_totals.(slot) in
      Buffer.add_string buf
        (Printf.sprintf "\n[%s] last %d of %d event(s)\n" (comp_label comp)
           (List.length entries) total);
      List.iter (fun e -> Buffer.add_string buf (entry_line e ^ "\n")) entries)
    s.s_entries;
  (* Causal resolution: group the retained events by message id and print
     each chain in sequence order, so a send on the TC lines up with the
     handle on its shard and the reply's receipt. *)
  let by_mid = Hashtbl.create 64 in
  Array.iter
    (List.iter (fun e ->
         if e.e_mid >= 0 then
           Hashtbl.replace by_mid e.e_mid
             (e :: Option.value (Hashtbl.find_opt by_mid e.e_mid) ~default:[])))
    s.s_entries;
  let mids = List.sort compare (Hashtbl.fold (fun mid _ acc -> mid :: acc) by_mid []) in
  if mids <> [] then begin
    Buffer.add_string buf "\ncausal chains (message id -> hops, sequence order):\n";
    List.iter
      (fun mid ->
        let chain =
          List.sort
            (fun a b -> compare a.e_seq b.e_seq)
            (Hashtbl.find by_mid mid)
        in
        Buffer.add_string buf
          (Printf.sprintf "  mid %d: %s\n" mid
             (String.concat " -> "
                (List.map
                   (fun e ->
                     Printf.sprintf "%s %s [%s] @%.3f" (kind_to_string e.e_kind) e.e_what
                       (comp_label e.e_comp) e.e_ts)
                   chain))))
      mids
  end;
  Buffer.contents buf
