(** Bounded ring buffer of typed events stamped with the simulated clock.

    A trace is created with a [now] closure (normally the engine's virtual
    clock) so this library stays below [Deut_sim] in the dependency order.
    Events are spans (a name, a start timestamp and a duration, all in
    simulated microseconds) or instants.  The buffer holds the most recent
    [capacity] events; older ones are counted in [dropped] and discarded.

    Recording never advances the clock and allocates nothing on the
    disabled path (components hold a [t option] and skip emission when it
    is [None]), so enabling tracing cannot change simulated results — and
    because timestamps come from the deterministic simulation, two
    identical-seed runs export byte-identical files.

    Instrumentation is single-domain: the ring belongs to the domain that
    created it, and recording an event from any other domain raises
    [Invalid_argument] — a loud guard, since two domains racing the write
    cursor would silently tear the ring.  The domain-parallel harness and
    redo honour this by giving every domain its own engine (and so its own
    ring); reading or exporting after the owning domain has been joined is
    safe. *)

type kind =
  | Span
  | Instant
  | Flow_start  (** Chrome flow [ph:"s"]: causal arrow leaves here *)
  | Flow_step  (** Chrome flow [ph:"t"]: the arrow passes through *)
  | Flow_end  (** Chrome flow [ph:"f"], bound to the enclosing slice *)

type event = {
  name : string;  (** event type, e.g. "io_read", "stall", "redo_op" *)
  cat : string;  (** coarse category, e.g. "io", "cache", "recovery" *)
  track : int;  (** virtual thread lane, see the [track_*] constants *)
  ts : float;  (** start timestamp, simulated µs *)
  dur : float;  (** duration in simulated µs; 0 for instants *)
  kind : kind;
  args : (string * int) list;  (** small structured payload, e.g. page id *)
}

type t

(** {1 Track conventions} *)

val track_recovery : int  (** phase markers, redo ops, checkpoints *)

val track_cache : int  (** buffer pool: fetches, stalls, prefetch *)

val track_data_disk : int
val track_log_disk : int
val track_dc_log_disk : int
val track_wal : int  (** log manager: forces *)

val track_monitor : int  (** TC/DC monitor: delta / BW emission *)

val track_archive_disk : int
(** The archive device and the archiver's lifecycle events
    ([archive_seal] / [archive_truncate] instants, segment write IO). *)

val track_worker : int -> int
(** [track_worker w] is the lane for simulated redo worker [w] (lanes
    8–38).  Parallel replay routes each worker's [redo_op] and [stall]
    spans here so a trace shows per-worker IO overlap. *)

val track_net : int
(** Lane 39: the simulated network — per-message [net_rpc] spans and
    loss/reorder instants from {!Deut_net.Link}. *)

val track_shard : int -> int
(** [track_shard s] is the lane for data-component shard [s] (lanes
    40–62): its data/DC-log device IO and its redo replay during
    per-shard recovery. *)

val track_ondemand : int
(** Lane 63: instant recovery's on-demand page replay.  Each page slice
    replayed from the fault hook emits a [replay_page] span here, so a
    trace separates availability-critical redo (this lane) from the
    background drain (the recovery lane). *)

val track_client : int -> int
(** [track_client c] is the lane for simulated client [c] (lanes 64+).
    The concurrent-execution scheduler routes each client's [txn] spans
    and [conflict]/[wound]/[abort] instants here. *)

val track_name : int -> string

val pid_of_track : int -> int
(** The Chrome process a lane is exported under: 0 = the engine (every
    single-machine lane), 1 = the network, [2 + s] = shard [s].  Perfetto
    groups lanes by pid, so a sharded trace reads as one box per
    component. *)

val pid_name : int -> string

(** {1 Recording} *)

val create : now:(unit -> float) -> ?capacity:int -> unit -> t
(** [capacity] defaults to 65536 events. *)

val now : t -> float

val span :
  t -> name:string -> cat:string -> ?track:int -> ts:float -> dur:float ->
  ?args:(string * int) list -> unit -> unit

val instant :
  t -> name:string -> cat:string -> ?track:int -> ?args:(string * int) list ->
  unit -> unit
(** Timestamped with [now ()]. *)

val flow_start :
  t -> name:string -> cat:string -> ?track:int -> ts:float -> id:int -> unit -> unit
(** Open a causal flow: Perfetto draws an arrow from the slice enclosing
    [ts] on [track] to the next point of the same [id].  The id is carried
    in [args] as ["id"] and exported as the top-level Chrome flow id; use
    one id per caused chain (e.g. one per protocol message). *)

val flow_step :
  t -> name:string -> cat:string -> ?track:int -> ts:float -> id:int -> unit -> unit

val flow_end :
  t -> name:string -> cat:string -> ?track:int -> ts:float -> id:int -> unit -> unit
(** Close the flow ([bp:"e"]: binds to the enclosing slice, not the next
    one). *)

val flow_id : event -> int
(** The flow id a [Flow_*] event carries ([-1] for other kinds). *)

val stop : t -> unit
(** Ignore all further [span]/[instant] calls.  Used by [Recovery.recover]
    to close the window once statistics are finalised, so post-recovery
    activity (e.g. reopening the catalog) cannot skew span counts. *)

(** {1 Reading} *)

val events : t -> event list
(** Buffered events, oldest first. *)

val length : t -> int
(** Number of buffered events (≤ capacity). *)

val emitted : t -> int
(** Total events ever recorded, including dropped ones. *)

val dropped : t -> int

val count : t -> ?kind:kind -> ?name:string -> unit -> int
(** Buffered events matching the given filters. *)

val overflow_advice : t -> string option
(** [None] when nothing was dropped; otherwise a message naming the
    [trace_capacity] (and the [DEUT_TRACE_CAP] setting) that would have
    held the whole run.  Shared by every exporter that refuses truncated
    traces. *)

(** {1 Export} *)

val to_chrome_json : ?metrics:Metrics.t -> t -> string
(** Chrome [trace_event] JSON ({["{"traceEvents":[...]}"]}) loadable in
    chrome://tracing or https://ui.perfetto.dev.  Spans become ph="X"
    complete events, instants ph="i"; tracks map to tids with thread-name
    metadata.  With [metrics], a [Metrics.render]-equivalent snapshot is
    embedded as one ["metric"] metadata event per registered name (value,
    and observation count for histograms), so a single file carries both
    the event stream and the counters it must agree with.  Deterministic:
    fixed field order, fixed float formatting. *)

val csv_header : string list

val csv_rows : t -> string list list
(** One row per event matching [csv_header]; args are rendered as a single
    ["k=v,k=v"] cell (exercises CSV quoting). *)
