(** The log record vocabulary of the shared TC/DC log.

    Following the paper's prototype (§5.1), one integrated log serves both
    recovery families.  Logical (TC) update records identify their target by
    (table, key); the physiological page id rides along as [pid_hint] purely
    so the ARIES/SQL-Server baseline can run from the very same log — the
    logical methods never read it (enforced in tests).

    DC-side records — SMO page images, Δ-log records, BW-log records — carry
    the physical information only the data component knows (§4). *)

type op_kind = Insert | Update | Delete

val op_kind_to_string : op_kind -> string

(** A logical data operation, logged by the TC. *)
type update = {
  txn : int;
  table : int;
  key : int;
  op : op_kind;
  before : string option;  (** replaced value, [None] for insert — drives undo *)
  after : string option;  (** new value, [None] for delete — drives redo *)
  pid_hint : int;  (** physiological PID for the ARIES/SQL baseline only *)
  prev_lsn : Lsn.t;  (** backward chain of this transaction's records *)
}

(** Compensation log record written during undo (ARIES-style redo-only). *)
type clr = {
  txn : int;
  table : int;
  key : int;
  op : op_kind;  (** the compensating operation *)
  value : string option;
  pid_hint : int;
  undo_next : Lsn.t;  (** next record of the transaction still to undo *)
}

(** SQL Server's Buffer-Write record: pids flushed since the previous BW
    record, plus the end-of-stable-log captured at the first of those
    flushes (§3.3). *)
type bw = { written : int array; fw_lsn : Lsn.t }

(** The paper's Δ-log record (§4.1): pids dirtied and pids flushed in the
    interval, the first-write LSN, the index in [dirty] of the first page
    dirtied after that first write, and the TC end-of-stable-log at write
    time.  [dirty_lsns] is the Appendix D.1 "perfect DPT" extension — the
    exact LSN that dirtied each entry of [dirty]; empty in the standard
    configuration. *)
type delta = {
  dirty : int array;
  written : int array;
  fw_lsn : Lsn.t;
  first_dirty : int;
  tc_lsn : Lsn.t;
  dirty_lsns : int array;
}

type smo_kind =
  | Format_page
  | Leaf_split
  | Internal_split
  | Root_split
  | Leaf_merge
  | Root_collapse
  | Catalog

val smo_kind_to_string : smo_kind -> string

(** A structure modification operation logged by the DC as an atomic batch
    of full after-images of every page it touched.  Replayed (pLSN-guarded)
    by DC recovery before any transactional redo, guaranteeing well-formed
    B-trees for logical redo (§1.2, §4.2). *)
type smo = { kind : smo_kind; pages : (int * string) array }

(** The DPT captured in a checkpoint by the classic ARIES scheme (§3.1):
    (pid, rLSN, lastLSN) triples.  Only written when the engine runs in
    ARIES-checkpointing mode. *)
type aries_dpt = { entries : (int * Lsn.t * Lsn.t) array }

type t =
  | Update_rec of update
  | Commit of { txn : int }
  | Abort of { txn : int }
  | Clr of clr
  | Begin_ckpt
  | End_ckpt of { bckpt : Lsn.t; active : (int * Lsn.t) array }
      (** completes the checkpoint begun at [bckpt]; [bckpt] is also the
          rsspLSN the TC sent to the DC.  [active] is the transaction table
          at checkpoint time — (txn, lastLSN) pairs — so undo can find
          losers whose records all precede the redo scan start. *)
  | Aries_ckpt_dpt of aries_dpt
  | Bw of bw
  | Delta of delta
  | Smo of smo

val encode : t -> string

val encode_into : Codec.writer -> t -> unit
(** Append the encoding to [w] — the log manager threads one reusable
    scratch writer through every append instead of allocating a fresh
    buffer and [contents] string per record. *)

val encoded_size : t -> int
(** Exact byte length of [encode t], computed without encoding. *)

val decode : string -> t

val decode_sub : Bytes.t -> pos:int -> len:int -> t
(** Decode one record in place from [data.[pos .. pos+len)] — no payload
    substring is taken (the redo scan decodes every record once per pass). *)

(** Uniform view of the records redo must (re)apply: ordinary updates and
    CLRs, which ARIES redoes exactly like updates ("redo-only" records). *)
type redo_view = {
  rv_table : int;
  rv_key : int;
  rv_op : op_kind;
  rv_value : string option;  (** value to apply ([None] for a delete) *)
  rv_pid : int;  (** physiological pid hint *)
}

val redo_view : t -> redo_view option

val describe : t -> string
(** One-line human-readable rendering for tracing and error messages. *)

val is_update : t -> bool
