(** Archived-segment store: the durable home of log bytes cut from the
    live WAL.

    A long-lived deployment cannot let the live log grow forever.  The
    archiver copies a prefix of the live log — raw frames, byte for byte,
    so LSNs remain absolute byte offsets — into a {e segment} on a
    dedicated simulated archive device, seals it under a whole-segment
    FNV-1a checksum, and only then truncates the live log.  Sealing before
    truncating is the WAL rule applied to the log itself: at every instant
    the union of sealed segments and the durable live log covers
    [\[start_lsn, stable\)] contiguously, so a crash at {e any} point during
    archiving loses nothing (DESIGN.md §8 states the full contract).

    Segments are immutable once sealed.  An {e unsealed} segment — the
    residue of a crash mid-copy — is not part of the durable contract:
    readers ignore it and the next {!begin_segment} discards it; the bytes
    it would have covered are still in the live log because truncation
    had not yet happened.

    Readers verify a segment's checksum once per incarnation, on first
    access; a mismatch raises {!Corrupt_segment} — recovery from a damaged
    archive must fail loudly, never silently produce wrong state.  Scan IO
    is charged to the attached archive {!Deut_sim.Disk.t} per log page
    crossed, exactly like live-log scan charging, so recovery statistics
    account archive reads as log reads on their own device lane. *)

type t

val create : page_size:int -> t
(** An empty store.  [page_size] maps byte offsets to device page indexes
    (the same log-page geometry as the live log). *)

val page_size : t -> int

val attach_disk : t -> Deut_sim.Disk.t -> unit
(** Charge subsequent segment writes and scan page crossings to this
    device. *)

val detach_disk : t -> unit

val instrument : t -> ?trace:Deut_obs.Trace.t -> unit -> unit
(** Attach a trace sink: each {!seal} emits an [archive_seal] instant on
    the archive-disk track with the segment's LSN range and size.  Purely
    observational. *)

(** {1 Inspection} *)

val segment_count : t -> int
(** Sealed segments currently held. *)

val sealed_bytes : t -> int
(** Total payload bytes across sealed segments. *)

val seal_count : t -> int
(** Segments sealed this incarnation (a lifetime counter, reset by
    {!crash}). *)

val pages_written : t -> int
(** Device pages written by segment copies this incarnation. *)

val start_lsn : t -> Lsn.t option
(** Lowest archived offset, if any segment is sealed. *)

val covered_upto : t -> Lsn.t
(** One past the highest sealed byte; [0] when empty.  The live log's base
    never exceeds this — truncation follows sealing. *)

val segments : t -> (Lsn.t * Lsn.t * bool) list
(** [(lo, hi, sealed)] per segment, ascending — for operator display. *)

(** {1 Writing (the archiver side, driven by [Log_manager.archive_to])} *)

val begin_segment : t -> lo:Lsn.t -> len:int -> unit
(** Open an unsealed segment covering [\[lo, lo+len\)].  Discards any
    unsealed residue of a crashed copy first.  [lo] must equal
    {!covered_upto} when segments exist (no gaps, no overlap); raises
    [Invalid_argument] otherwise. *)

val append_bytes : t -> src:Bytes.t -> src_off:int -> len:int -> unit
(** Fill the open segment in order, charging the device one sequential
    write spanning the pages the chunk touches.  Raises
    [Invalid_argument] without an open segment or past its end. *)

val seal : t -> unit
(** Checksum and seal the open segment, making it part of the durable
    contract.  Raises [Invalid_argument] if the segment is not fully
    written. *)

(** {1 Reading (the recovery side)} *)

exception Corrupt_segment of { lo : Lsn.t; hi : Lsn.t }
(** A sealed segment failed its whole-segment checksum on first access. *)

val contains : t -> Lsn.t -> bool
(** Is the offset inside a sealed segment? *)

val locate : t -> Lsn.t -> Bytes.t * int
(** [(buf, off)] where the byte at the given LSN lives.  Verifies the
    segment's checksum on the incarnation's first access (raising
    {!Corrupt_segment} on mismatch).  Raises [Invalid_argument] when no
    sealed segment covers the offset. *)

val charge_page : t -> int -> unit
(** Charge one sequential log-page read to the archive device (scan
    accounting; no-op without a disk). *)

val corrupt_for_test : t -> lsn:Lsn.t -> unit
(** Flip one byte of the sealed segment holding [lsn] and clear its
    verified flag (fault injection: the next read must detect it). *)

val crash : t -> t
(** The store as a restarting system sees it: a deep copy with no device
    or trace attached, lifetime counters reset, and every checksum
    unverified — each incarnation re-earns its trust in the bytes. *)
