exception Truncated of string

type writer = Buffer.t

let writer () = Buffer.create 128
let contents = Buffer.contents
let clear = Buffer.clear
let length = Buffer.length
let blit w ~src_off dst ~dst_off ~len = Buffer.blit w src_off dst dst_off len
let w_u8 b v = Buffer.add_char b (Char.chr (v land 0xff))
let w_u16 b v = Buffer.add_uint16_be b v
let w_u32 b v = Buffer.add_int32_be b (Int32.of_int v)
let w_i64 b v = Buffer.add_int64_be b (Int64.of_int v)
let w_bool b v = w_u8 b (if v then 1 else 0)

let w_string b s =
  w_u32 b (String.length s);
  Buffer.add_string b s

let w_opt_string b = function
  | None -> w_u8 b 0
  | Some s ->
      w_u8 b 1;
      w_string b s

let w_u32_array b a =
  w_u32 b (Array.length a);
  Array.iter (w_u32 b) a

let w_i64_array b a =
  w_u32 b (Array.length a);
  Array.iter (w_i64 b) a

(* Readers decode in place over [Bytes.t] between [pos] and [limit] — the
   recovery scan hands the log buffer straight in, with no per-record
   [Bytes.sub_string].  Only [r_string] allocates (its value escapes). *)
type reader = { data : Bytes.t; limit : int; mutable pos : int }

let reader data =
  (* The string is never written through: readers only read. *)
  { data = Bytes.unsafe_of_string data; limit = String.length data; pos = 0 }

let reader_sub data ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length data then
    invalid_arg "Codec.reader_sub: range out of bounds";
  { data; limit = pos + len; pos }

let reader_pos r = r.pos
let at_end r = r.pos >= r.limit

let need r n what = if r.pos + n > r.limit then raise (Truncated what)

let r_u8 r =
  need r 1 "u8";
  let v = Char.code (Bytes.get r.data r.pos) in
  r.pos <- r.pos + 1;
  v

let r_u16 r =
  need r 2 "u16";
  let v = Bytes.get_uint16_be r.data r.pos in
  r.pos <- r.pos + 2;
  v

let r_u32 r =
  need r 4 "u32";
  let v = Int32.to_int (Bytes.get_int32_be r.data r.pos) land 0xffffffff in
  r.pos <- r.pos + 4;
  v

let r_i64 r =
  need r 8 "i64";
  let v = Int64.to_int (Bytes.get_int64_be r.data r.pos) in
  r.pos <- r.pos + 8;
  v

let r_bool r = r_u8 r <> 0

let r_string r =
  let len = r_u32 r in
  need r len "string";
  let s = Bytes.sub_string r.data r.pos len in
  r.pos <- r.pos + len;
  s

let r_opt_string r = match r_u8 r with 0 -> None | _ -> Some (r_string r)

let r_u32_array r =
  let n = r_u32 r in
  Array.init n (fun _ -> r_u32 r)

let r_i64_array r =
  let n = r_u32 r in
  Array.init n (fun _ -> r_i64 r)
