(* Archived-segment store.  See archive.mli for the contract. *)

exception Corrupt_segment of { lo : Lsn.t; hi : Lsn.t }

type segment = {
  lo : Lsn.t;
  hi : Lsn.t;  (* lo + Bytes.length bytes *)
  bytes : Bytes.t;
  mutable fill : int;  (* bytes written so far; = length when complete *)
  mutable checksum : int;  (* whole-payload FNV-1a, valid once sealed *)
  mutable sealed : bool;
  mutable verified : bool;  (* checksum checked this incarnation *)
}

type t = {
  page_size : int;
  mutable segments : segment list;
      (* ascending by lo; a contiguous sealed run plus at most one
         unsealed tail (an interrupted copy) *)
  mutable disk : Deut_sim.Disk.t option;
  mutable trace : Deut_obs.Trace.t option;
  mutable seals : int;
  mutable pages_written : int;
}

let create ~page_size =
  if page_size <= 0 then invalid_arg "Archive.create: page_size must be positive";
  { page_size; segments = []; disk = None; trace = None; seals = 0; pages_written = 0 }

let page_size t = t.page_size
let attach_disk t disk = t.disk <- Some disk
let detach_disk t = t.disk <- None
let instrument t ?trace () = t.trace <- trace

let sealed_segments t = List.filter (fun s -> s.sealed) t.segments
let segment_count t = List.length (sealed_segments t)

let sealed_bytes t =
  List.fold_left (fun acc s -> acc + Bytes.length s.bytes) 0 (sealed_segments t)

let seal_count t = t.seals
let pages_written t = t.pages_written

let start_lsn t = match sealed_segments t with [] -> None | s :: _ -> Some s.lo
let covered_upto t = List.fold_left (fun acc s -> if s.sealed then s.hi else acc) 0 t.segments
let segments t = List.map (fun s -> (s.lo, s.hi, s.sealed)) t.segments

let open_segment t =
  match List.rev t.segments with
  | last :: _ when not last.sealed -> last
  | _ -> invalid_arg "Archive: no open segment"

let begin_segment t ~lo ~len =
  if len <= 0 then invalid_arg "Archive.begin_segment: segment must be non-empty";
  (* Drop the residue of a copy a crash interrupted: its bytes are still in
     the live log (truncation follows sealing), so nothing is lost. *)
  t.segments <- List.filter (fun s -> s.sealed) t.segments;
  let covered = covered_upto t in
  if t.segments <> [] && lo <> covered then
    invalid_arg
      (Printf.sprintf "Archive.begin_segment: segment at %d would leave a gap (covered to %d)"
         lo covered);
  t.segments <-
    t.segments
    @ [
        {
          lo;
          hi = lo + len;
          bytes = Bytes.create len;
          fill = 0;
          checksum = 0;
          sealed = false;
          verified = false;
        };
      ]

let append_bytes t ~src ~src_off ~len =
  if len = 0 then ()
  else begin
    let s = open_segment t in
    if s.fill + len > Bytes.length s.bytes then
      invalid_arg "Archive.append_bytes: write past the open segment's end";
    Bytes.blit src src_off s.bytes s.fill len;
    (* One sequential device write spanning the log pages this chunk
       touches; fire-and-forget, like a cache flush — the archiver is a
       background task and never advances the caller's clock. *)
    let first_page = (s.lo + s.fill) / t.page_size in
    let last_page = (s.lo + s.fill + len - 1) / t.page_size in
    let count = last_page - first_page + 1 in
    (match t.disk with
    | Some disk -> ignore (Deut_sim.Disk.submit_sequential_write disk ~first_pid:first_page ~count)
    | None -> ());
    t.pages_written <- t.pages_written + count;
    s.fill <- s.fill + len
  end

let seal t =
  let s = open_segment t in
  if s.fill <> Bytes.length s.bytes then
    invalid_arg
      (Printf.sprintf "Archive.seal: segment [%d,%d) only %d of %d bytes written" s.lo s.hi
         s.fill (Bytes.length s.bytes));
  s.checksum <- Deut_storage.Fnv.sub s.bytes ~off:0 ~len:(Bytes.length s.bytes);
  s.sealed <- true;
  s.verified <- true;  (* the writer just produced the bytes it hashed *)
  t.seals <- t.seals + 1;
  match t.trace with
  | Some tr ->
      Deut_obs.Trace.instant tr ~name:"archive_seal" ~cat:"archive"
        ~track:Deut_obs.Trace.track_archive_disk
        ~args:[ ("lo", s.lo); ("hi", s.hi); ("bytes", Bytes.length s.bytes) ]
        ()
  | None -> ()

let find_sealed t lsn =
  List.find_opt (fun s -> s.sealed && s.lo <= lsn && lsn < s.hi) t.segments

let contains t lsn = find_sealed t lsn <> None

let verify s =
  if not s.verified then begin
    if Deut_storage.Fnv.sub s.bytes ~off:0 ~len:(Bytes.length s.bytes) <> s.checksum then
      raise (Corrupt_segment { lo = s.lo; hi = s.hi });
    s.verified <- true
  end

let locate t lsn =
  match find_sealed t lsn with
  | Some s ->
      verify s;
      (s.bytes, lsn - s.lo)
  | None ->
      invalid_arg (Printf.sprintf "Archive.locate: offset %d is not in any sealed segment" lsn)

let charge_page t page =
  match t.disk with
  | None -> ()
  | Some disk -> Deut_sim.Disk.read_sequential_sync disk ~first_pid:page ~count:1

let corrupt_for_test t ~lsn =
  match find_sealed t lsn with
  | Some s ->
      let off = lsn - s.lo in
      Bytes.set s.bytes off (Char.chr (Char.code (Bytes.get s.bytes off) lxor 0xFF));
      s.verified <- false
  | None -> invalid_arg "Archive.corrupt_for_test: offset is not in any sealed segment"

let crash t =
  {
    page_size = t.page_size;
    segments =
      List.map
        (fun s ->
          {
            s with
            bytes = Bytes.sub s.bytes 0 (Bytes.length s.bytes);
            verified = false;
          })
        t.segments;
    disk = None;
    trace = None;
    seals = 0;
    pages_written = 0;
  }
