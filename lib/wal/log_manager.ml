exception Corrupt_record of int

(* Word-wide FNV-1a over the payload (same value as the byte-wise loop). *)
let checksum_sub buf off len = Deut_storage.Fnv.sub buf ~off ~len

let frame_header = 8

type t = {
  page_size : int;
  mutable base : int;  (* absolute offset of data.(0): bytes before it were archived *)
  mutable data : Bytes.t;
  mutable len : int;  (* absolute end offset *)
  mutable stable : int;  (* absolute: bytes in [base, stable) are durable *)
  mutable records : int;
  mutable forces : int;
  mutable read_disk : Deut_sim.Disk.t option;
  mutable trace : Deut_obs.Trace.t option;
  mutable on_append : (int -> unit) option;
  scratch : Codec.writer;  (* reused across appends: no per-record buffer *)
  mutable verified_upto : int;
      (* Frames ending at or below this absolute offset have passed their
         CRC check once.  Log bytes are immutable after append (only
         [corrupt_for_test] edits them, and it pulls the watermark back),
         so one verification per frame is sound: appends extend the
         watermark when they land on it, [crash]/[crash_at] inherit it, and
         [read_at] skips the payload hash below it — the redo scan of every
         method after the first re-reads a frame it (or the appender)
         already checked. *)
}

let create ~page_size =
  if page_size <= 0 then invalid_arg "Log_manager.create: page_size must be positive";
  {
    page_size;
    base = 0;
    data = Bytes.create 65536;
    len = 0;
    stable = 0;
    records = 0;
    forces = 0;
    read_disk = None;
    trace = None;
    on_append = None;
    scratch = Codec.writer ();
    verified_upto = 0;
  }

let set_append_hook t hook = t.on_append <- hook

let instrument t ?trace () = t.trace <- trace

let note_force t ~from =
  match t.trace with
  | Some tr ->
      Deut_obs.Trace.instant tr ~name:"log_force" ~cat:"wal" ~track:Deut_obs.Trace.track_wal
        ~args:[ ("stable", t.stable); ("bytes", t.stable - from) ]
        ()
  | None -> ()

let page_size t = t.page_size
let end_lsn t = t.len
let stable_lsn t = t.stable
let base_lsn t = t.base
let record_count t = t.records
let force_count t = t.forces

let ensure_capacity t extra =
  let needed = t.len - t.base + extra in
  if needed > Bytes.length t.data then begin
    let grown = Bytes.create (Stdlib.max needed (2 * Bytes.length t.data)) in
    Bytes.blit t.data 0 grown 0 (t.len - t.base);
    t.data <- grown
  end

let append t record =
  Codec.clear t.scratch;
  Log_record.encode_into t.scratch record;
  let payload_len = Codec.length t.scratch in
  let frame = frame_header + payload_len in
  ensure_capacity t frame;
  let lsn = t.len in
  let off = lsn - t.base in
  Bytes.set_int32_be t.data off (Int32.of_int payload_len);
  Codec.blit t.scratch ~src_off:0 t.data ~dst_off:(off + frame_header) ~len:payload_len;
  let crc = checksum_sub t.data (off + frame_header) payload_len in
  Bytes.set_int32_be t.data (off + 4) (Int32.of_int crc);
  if t.verified_upto = lsn then t.verified_upto <- lsn + frame;
  t.len <- t.len + frame;
  t.records <- t.records + 1;
  (match t.on_append with Some f -> f lsn | None -> ());
  lsn

let force t =
  if t.len > t.stable then begin
    let from = t.stable in
    t.stable <- t.len;
    t.forces <- t.forces + 1;
    note_force t ~from
  end

let force_upto t lsn =
  if lsn >= t.stable then begin
    (* Stabilise through the end of the record starting at [lsn]. *)
    if lsn >= t.len then force t
    else begin
      let from = t.stable in
      let payload_len = Int32.to_int (Bytes.get_int32_be t.data (lsn - t.base)) in
      t.stable <- Stdlib.max t.stable (lsn + frame_header + payload_len);
      t.forces <- t.forces + 1;
      note_force t ~from
    end
  end

let read_at t lsn =
  if lsn < t.base || lsn + frame_header > t.len then
    invalid_arg (Printf.sprintf "Log_manager.read_at: offset %d out of range [%d,%d)" lsn t.base t.len);
  let off = lsn - t.base in
  let payload_len = Int32.to_int (Bytes.get_int32_be t.data off) in
  let next = lsn + frame_header + payload_len in
  if next > t.len then invalid_arg "Log_manager.read_at: truncated frame";
  if next > t.verified_upto then begin
    let stored = Int32.to_int (Bytes.get_int32_be t.data (off + 4)) land 0xFFFFFFFF in
    if stored <> checksum_sub t.data (off + frame_header) payload_len then
      raise (Corrupt_record lsn);
    if lsn <= t.verified_upto then t.verified_upto <- next
  end;
  (Log_record.decode_sub t.data ~pos:(off + frame_header) ~len:payload_len, next)

let corrupt_for_test t lsn =
  let off = lsn - t.base + frame_header in
  Bytes.set t.data off (Char.chr (Char.code (Bytes.get t.data off) lxor 0xFF));
  t.verified_upto <- Stdlib.min t.verified_upto lsn

let attach_read_disk t disk = t.read_disk <- Some disk
let detach_read_disk t = t.read_disk <- None

(* Log pids live in their own namespace on the dedicated log disk, so plain
   page indexes give correct sequential-run detection. *)
let charge_page t page_index =
  match t.read_disk with
  | None -> ()
  | Some disk -> Deut_sim.Disk.read_sequential_sync disk ~first_pid:page_index ~count:1

let iter t ~from ?upto f =
  let upto = match upto with Some u -> Stdlib.min u t.len | None -> t.stable in
  let start = if Lsn.is_nil from then t.base else from in
  if start < t.base then
    invalid_arg
      (Printf.sprintf "Log_manager.iter: scan start %d precedes archived boundary %d" start t.base);
  let last_page = ref (-1) in
  let rec loop lsn =
    if lsn < upto then begin
      let page = lsn / t.page_size in
      if page <> !last_page then begin
        (* Charge every log page from the last one read through this one so
           large records spanning pages are accounted in full. *)
        let first = if !last_page < 0 then page else !last_page + 1 in
        for p = first to page do
          charge_page t p
        done;
        last_page := page
      end;
      let record, next = read_at t lsn in
      f lsn record;
      loop next
    end
  in
  loop start

let fold t ~from ?upto ~init f =
  let acc = ref init in
  iter t ~from ?upto (fun lsn record -> acc := f !acc lsn record);
  !acc

let crash t =
  {
    page_size = t.page_size;
    base = t.base;
    data = Bytes.sub t.data 0 (t.stable - t.base);
    len = t.stable;
    stable = t.stable;
    records = 0;
    forces = 0;
    read_disk = None;
    trace = None;
    on_append = None;
    scratch = Codec.writer ();
    verified_upto = Stdlib.min t.verified_upto t.stable;
  }

let crash_at t lsn =
  if lsn < t.base || lsn > t.len then
    invalid_arg
      (Printf.sprintf "Log_manager.crash_at: boundary %d outside [%d,%d]" lsn t.base t.len);
  {
    page_size = t.page_size;
    base = t.base;
    data = Bytes.sub t.data 0 (lsn - t.base);
    len = lsn;
    stable = lsn;
    records = 0;
    forces = 0;
    read_disk = None;
    trace = None;
    on_append = None;
    scratch = Codec.writer ();
    verified_upto = Stdlib.min t.verified_upto lsn;
  }

let compact t ~keep_from =
  if keep_from > t.stable then
    invalid_arg "Log_manager.compact: cannot archive past the stable prefix";
  if keep_from > t.base then begin
    let retained = t.len - keep_from in
    let fresh = Bytes.create (Stdlib.max retained 65536) in
    Bytes.blit t.data (keep_from - t.base) fresh 0 retained;
    t.data <- fresh;
    t.base <- keep_from
  end

let pages_between t lo hi =
  if hi <= lo then 0 else ((hi - 1) / t.page_size) - (lo / t.page_size) + 1
