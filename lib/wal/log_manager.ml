exception Corrupt_record of int

(* Word-wide FNV-1a over the payload (same value as the byte-wise loop). *)
let checksum_sub buf off len = Deut_storage.Fnv.sub buf ~off ~len

let frame_header = 8

type archive_step =
  | Archive_segment_partial
  | Archive_segment_sealed
  | Archive_truncate_torn
  | Archive_truncated

type t = {
  page_size : int;
  mutable base : int;  (* absolute offset of data.(0): bytes before it were archived *)
  mutable data : Bytes.t;
  mutable len : int;  (* absolute end offset *)
  mutable stable : int;  (* absolute: bytes in [base, stable) are durable *)
  mutable records : int;
  mutable forces : int;
  mutable read_disk : Deut_sim.Disk.t option;
  mutable trace : Deut_obs.Trace.t option;
  mutable flight : (Deut_obs.Flight.t * int) option;
      (* the engine's flight recorder and the component this log belongs
         to, so forces land in that component's black box *)
  mutable on_append : (int -> unit) option;
  mutable archive : Archive.t option;
      (* sealed segments holding bytes below [base]; reads span the two
         stores transparently *)
  mutable on_archive : (archive_step -> unit) option;
  scratch : Codec.writer;  (* reused across appends: no per-record buffer *)
  mutable verified_upto : int;
      (* Frames ending at or below this absolute offset have passed their
         CRC check once.  Log bytes are immutable after append (only
         [corrupt_for_test] edits them, and it pulls the watermark back),
         so one verification per frame is sound: appends extend the
         watermark when they land on it, [crash]/[crash_at] inherit it, and
         [read_at] skips the payload hash below it — the redo scan of every
         method after the first re-reads a frame it (or the appender)
         already checked. *)
}

(* Offset 0 is reserved: the first record lands at [genesis] so that 0 —
   the pLSN a zero-initialised page header reports — unambiguously means
   "before every record".  Without the reservation, a log whose first
   record carries no preceding system records (the split layout's TC log,
   a fresh DC log) puts that record at offset 0, and the redo pLSN test
   [lsn <= plsn] cannot tell a fresh page from one that already holds it. *)
let genesis = 1

let create ~page_size =
  if page_size <= 0 then invalid_arg "Log_manager.create: page_size must be positive";
  {
    page_size;
    base = genesis;
    data = Bytes.create 65536;
    len = genesis;
    stable = genesis;
    records = 0;
    forces = 0;
    read_disk = None;
    trace = None;
    flight = None;
    on_append = None;
    archive = None;
    on_archive = None;
    scratch = Codec.writer ();
    verified_upto = genesis;
  }

let set_append_hook t hook = t.on_append <- hook
let set_archive_hook t hook = t.on_archive <- hook
let attach_archive t a = t.archive <- Some a
let archive t = t.archive

let instrument t ?trace ?flight () =
  t.trace <- trace;
  t.flight <- flight

let note_force t ~from =
  (match t.flight with
  | Some (f, comp) ->
      Deut_obs.Flight.record f ~comp Deut_obs.Flight.Force "log_force" ~lsn:t.stable ()
  | None -> ());
  match t.trace with
  | Some tr ->
      Deut_obs.Trace.instant tr ~name:"log_force" ~cat:"wal" ~track:Deut_obs.Trace.track_wal
        ~args:[ ("stable", t.stable); ("bytes", t.stable - from) ]
        ()
  | None -> ()

let page_size t = t.page_size
let end_lsn t = t.len
let stable_lsn t = t.stable
let base_lsn t = t.base
let record_count t = t.records
let force_count t = t.forces

let ensure_capacity t extra =
  let needed = t.len - t.base + extra in
  if needed > Bytes.length t.data then begin
    let grown = Bytes.create (Stdlib.max needed (2 * Bytes.length t.data)) in
    Bytes.blit t.data 0 grown 0 (t.len - t.base);
    t.data <- grown
  end

let append t record =
  Codec.clear t.scratch;
  Log_record.encode_into t.scratch record;
  let payload_len = Codec.length t.scratch in
  let frame = frame_header + payload_len in
  ensure_capacity t frame;
  let lsn = t.len in
  let off = lsn - t.base in
  Bytes.set_int32_be t.data off (Int32.of_int payload_len);
  Codec.blit t.scratch ~src_off:0 t.data ~dst_off:(off + frame_header) ~len:payload_len;
  let crc = checksum_sub t.data (off + frame_header) payload_len in
  Bytes.set_int32_be t.data (off + 4) (Int32.of_int crc);
  if t.verified_upto = lsn then t.verified_upto <- lsn + frame;
  t.len <- t.len + frame;
  t.records <- t.records + 1;
  (match t.on_append with Some f -> f lsn | None -> ());
  lsn

let force t =
  if t.len > t.stable then begin
    let from = t.stable in
    t.stable <- t.len;
    t.forces <- t.forces + 1;
    note_force t ~from
  end

let force_upto t lsn =
  if lsn >= t.stable then begin
    (* Stabilise through the end of the record starting at [lsn]. *)
    if lsn >= t.len then force t
    else begin
      let from = t.stable in
      let payload_len = Int32.to_int (Bytes.get_int32_be t.data (lsn - t.base)) in
      t.stable <- Stdlib.max t.stable (lsn + frame_header + payload_len);
      t.forces <- t.forces + 1;
      note_force t ~from
    end
  end

(* Serve an offset below [base] from the archive.  Sealed-segment checksums
   cover every frame at once (verified on the incarnation's first access),
   so the per-frame CRC is skipped here.  Segments begin and end on record
   boundaries, hence a frame never straddles two of them. *)
let read_archived t lsn =
  match t.archive with
  | Some a when Archive.contains a lsn ->
      let buf, off = Archive.locate a lsn in
      let payload_len = Int32.to_int (Bytes.get_int32_be buf off) in
      ( Log_record.decode_sub buf ~pos:(off + frame_header) ~len:payload_len,
        lsn + frame_header + payload_len )
  | _ ->
      invalid_arg
        (Printf.sprintf "Log_manager.read_at: offset %d out of range [%d,%d)" lsn t.base t.len)

let read_at t lsn =
  if lsn < t.base then read_archived t lsn
  else if lsn + frame_header > t.len then
    invalid_arg (Printf.sprintf "Log_manager.read_at: offset %d out of range [%d,%d)" lsn t.base t.len)
  else begin
  let off = lsn - t.base in
  let payload_len = Int32.to_int (Bytes.get_int32_be t.data off) in
  let next = lsn + frame_header + payload_len in
  if next > t.len then invalid_arg "Log_manager.read_at: truncated frame";
  if next > t.verified_upto then begin
    let stored = Int32.to_int (Bytes.get_int32_be t.data (off + 4)) land 0xFFFFFFFF in
    if stored <> checksum_sub t.data (off + frame_header) payload_len then
      raise (Corrupt_record lsn);
    if lsn <= t.verified_upto then t.verified_upto <- next
  end;
  (Log_record.decode_sub t.data ~pos:(off + frame_header) ~len:payload_len, next)
  end

let corrupt_for_test t lsn =
  let off = lsn - t.base + frame_header in
  Bytes.set t.data off (Char.chr (Char.code (Bytes.get t.data off) lxor 0xFF));
  t.verified_upto <- Stdlib.min t.verified_upto lsn

let attach_read_disk t disk = t.read_disk <- Some disk
let detach_read_disk t = t.read_disk <- None

(* Log pids live in their own namespace on the dedicated log disk, so plain
   page indexes give correct sequential-run detection. *)
let charge_page t page_index =
  match t.read_disk with
  | None -> ()
  | Some disk -> Deut_sim.Disk.read_sequential_sync disk ~first_pid:page_index ~count:1

(* The lowest offset a scan can start from: the first archived byte when
   segments exist, otherwise the live base. *)
let scan_floor t =
  match t.archive with
  | Some a -> ( match Archive.start_lsn a with Some s -> s | None -> t.base)
  | None -> t.base

let iter t ~from ?upto f =
  let upto = match upto with Some u -> Stdlib.min u t.len | None -> t.stable in
  let floor = scan_floor t in
  let start = if Lsn.is_nil from then floor else from in
  if start < floor then
    invalid_arg
      (Printf.sprintf "Log_manager.iter: scan start %d precedes archived boundary %d" start floor);
  let last_page = ref (-1) in
  (* Pages holding archived bytes are charged to the archive device, the
     rest to the live log disk — same per-page accounting, separate lanes. *)
  let charge lsn p =
    if lsn < t.base then (match t.archive with Some a -> Archive.charge_page a p | None -> ())
    else charge_page t p
  in
  let rec loop lsn =
    if lsn < upto then begin
      let page = lsn / t.page_size in
      if page <> !last_page then begin
        (* Charge every log page from the last one read through this one so
           large records spanning pages are accounted in full. *)
        let first = if !last_page < 0 then page else !last_page + 1 in
        for p = first to page do
          charge lsn p
        done;
        last_page := page
      end;
      let record, next = read_at t lsn in
      f lsn record;
      loop next
    end
  in
  loop start

let fold t ~from ?upto ~init f =
  let acc = ref init in
  iter t ~from ?upto (fun lsn record -> acc := f !acc lsn record);
  !acc

let crash t =
  {
    page_size = t.page_size;
    base = t.base;
    data = Bytes.sub t.data 0 (t.stable - t.base);
    len = t.stable;
    stable = t.stable;
    records = 0;
    forces = 0;
    read_disk = None;
    trace = None;
    flight = None;
    on_append = None;
    archive = Option.map Archive.crash t.archive;
    on_archive = None;
    scratch = Codec.writer ();
    verified_upto = Stdlib.min t.verified_upto t.stable;
  }

let crash_at t lsn =
  if lsn < t.base || lsn > t.len then
    invalid_arg
      (Printf.sprintf "Log_manager.crash_at: boundary %d outside [%d,%d]" lsn t.base t.len);
  {
    page_size = t.page_size;
    base = t.base;
    data = Bytes.sub t.data 0 (lsn - t.base);
    len = lsn;
    stable = lsn;
    records = 0;
    forces = 0;
    read_disk = None;
    trace = None;
    flight = None;
    on_append = None;
    archive = Option.map Archive.crash t.archive;
    on_archive = None;
    scratch = Codec.writer ();
    verified_upto = Stdlib.min t.verified_upto lsn;
  }

let compact t ~keep_from =
  if keep_from > t.stable then
    invalid_arg "Log_manager.compact: cannot archive past the stable prefix";
  if keep_from > t.base then begin
    let retained = t.len - keep_from in
    let fresh = Bytes.create (Stdlib.max retained 65536) in
    Bytes.blit t.data (keep_from - t.base) fresh 0 retained;
    t.data <- fresh;
    t.base <- keep_from
  end

let pages_between t lo hi =
  if hi <= lo then 0 else ((hi - 1) / t.page_size) - (lo / t.page_size) + 1

(* The record boundary closest to the midpoint of [lo, upto), found by
   hopping frames.  Gives the torn-truncation crash point a legal [compact]
   target strictly inside the range (when one exists). *)
let mid_boundary t ~lo ~upto =
  let target = lo + ((upto - lo) / 2) in
  let rec hop lsn =
    if lsn >= target || lsn + frame_header > upto then lsn
    else
      let payload_len = Int32.to_int (Bytes.get_int32_be t.data (lsn - t.base)) in
      let next = lsn + frame_header + payload_len in
      if next > upto then lsn else hop next
  in
  hop lo

let fire t step = match t.on_archive with Some f -> f step | None -> ()

let archive_to t ~upto =
  match t.archive with
  | None -> false
  | Some a ->
      if upto > t.stable then
        invalid_arg "Log_manager.archive_to: cannot archive past the stable prefix";
      (* After a crash between seal and truncate the archive already covers
         bytes the live log still holds; the next segment resumes where the
         sealed run ends, never re-copying. *)
      let lo = if Archive.segment_count a > 0 then Archive.covered_upto a else t.base in
      if upto <= lo then false
      else begin
        let len = upto - lo in
        (* Pick the torn-truncation point before any bytes move: it must be
           a frame boundary read from the still-intact live data. *)
        let mid = mid_boundary t ~lo ~upto in
        Archive.begin_segment a ~lo ~len;
        let half = len / 2 in
        Archive.append_bytes a ~src:t.data ~src_off:(lo - t.base) ~len:half;
        fire t Archive_segment_partial;
        Archive.append_bytes a ~src:t.data ~src_off:(lo - t.base + half) ~len:(len - half);
        Archive.seal a;
        fire t Archive_segment_sealed;
        if mid > t.base && mid < upto then begin
          compact t ~keep_from:mid;
          fire t Archive_truncate_torn
        end;
        compact t ~keep_from:upto;
        (match t.trace with
        | Some tr ->
            Deut_obs.Trace.instant tr ~name:"archive_truncate" ~cat:"archive"
              ~track:Deut_obs.Trace.track_archive_disk
              ~args:[ ("lo", lo); ("upto", upto) ]
              ()
        | None -> ());
        fire t Archive_truncated;
        true
      end
