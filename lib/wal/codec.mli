(** Binary encoding helpers shared by the log record codec and tests.

    Big-endian, length-prefixed strings and arrays.  Signed 64-bit values
    carry LSNs (so the [nil] sentinel, -1, round-trips); 32-bit values carry
    pids, table ids, and counts. *)

exception Truncated of string
(** Raised when a reader runs past the end of its input. *)

type writer

val writer : unit -> writer
val contents : writer -> string

val clear : writer -> unit
(** Reset to empty, keeping the underlying storage — the log manager reuses
    one scratch writer per append instead of allocating per record. *)

val length : writer -> int

val blit : writer -> src_off:int -> Bytes.t -> dst_off:int -> len:int -> unit
(** Copy written bytes straight into [dst], skipping the intermediate
    [contents] string. *)

val w_u8 : writer -> int -> unit
val w_u16 : writer -> int -> unit
val w_u32 : writer -> int -> unit
val w_i64 : writer -> int -> unit
val w_bool : writer -> bool -> unit
val w_string : writer -> string -> unit
val w_opt_string : writer -> string option -> unit
val w_u32_array : writer -> int array -> unit
val w_i64_array : writer -> int array -> unit

type reader

val reader : string -> reader

val reader_sub : Bytes.t -> pos:int -> len:int -> reader
(** Decode in place from [data.[pos .. pos+len)] — no substring is taken;
    the recovery scan decodes every record straight out of the log buffer.
    [reader_pos] stays absolute within [data].  The caller must not mutate
    the range while the reader is live. *)

val reader_pos : reader -> int
val at_end : reader -> bool
val r_u8 : reader -> int
val r_u16 : reader -> int
val r_u32 : reader -> int
val r_i64 : reader -> int
val r_bool : reader -> bool
val r_string : reader -> string
val r_opt_string : reader -> string option
val r_u32_array : reader -> int array
val r_i64_array : reader -> int array
