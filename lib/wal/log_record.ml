type op_kind = Insert | Update | Delete

let op_kind_to_string = function Insert -> "insert" | Update -> "update" | Delete -> "delete"

type update = {
  txn : int;
  table : int;
  key : int;
  op : op_kind;
  before : string option;
  after : string option;
  pid_hint : int;
  prev_lsn : Lsn.t;
}

type clr = {
  txn : int;
  table : int;
  key : int;
  op : op_kind;
  value : string option;
  pid_hint : int;
  undo_next : Lsn.t;
}

type bw = { written : int array; fw_lsn : Lsn.t }

type delta = {
  dirty : int array;
  written : int array;
  fw_lsn : Lsn.t;
  first_dirty : int;
  tc_lsn : Lsn.t;
  dirty_lsns : int array;
}

type smo_kind =
  | Format_page
  | Leaf_split
  | Internal_split
  | Root_split
  | Leaf_merge
  | Root_collapse
  | Catalog

let smo_kind_to_string = function
  | Format_page -> "format-page"
  | Leaf_split -> "leaf-split"
  | Internal_split -> "internal-split"
  | Root_split -> "root-split"
  | Leaf_merge -> "leaf-merge"
  | Root_collapse -> "root-collapse"
  | Catalog -> "catalog"

type smo = { kind : smo_kind; pages : (int * string) array }
type aries_dpt = { entries : (int * Lsn.t * Lsn.t) array }

type t =
  | Update_rec of update
  | Commit of { txn : int }
  | Abort of { txn : int }
  | Clr of clr
  | Begin_ckpt
  | End_ckpt of { bckpt : Lsn.t; active : (int * Lsn.t) array }
  | Aries_ckpt_dpt of aries_dpt
  | Bw of bw
  | Delta of delta
  | Smo of smo

let op_kind_to_tag = function Insert -> 0 | Update -> 1 | Delete -> 2

let op_kind_of_tag = function
  | 0 -> Insert
  | 1 -> Update
  | 2 -> Delete
  | n -> invalid_arg (Printf.sprintf "Log_record: corrupt op kind %d" n)

let smo_kind_to_tag = function
  | Format_page -> 0
  | Leaf_split -> 1
  | Internal_split -> 2
  | Root_split -> 3
  | Catalog -> 4
  | Leaf_merge -> 5
  | Root_collapse -> 6

let smo_kind_of_tag = function
  | 0 -> Format_page
  | 1 -> Leaf_split
  | 2 -> Internal_split
  | 3 -> Root_split
  | 4 -> Catalog
  | 5 -> Leaf_merge
  | 6 -> Root_collapse
  | n -> invalid_arg (Printf.sprintf "Log_record: corrupt smo kind %d" n)

let encode_into w t =
  match t with
  | Update_rec u ->
      Codec.w_u8 w 1;
      Codec.w_i64 w u.txn;
      Codec.w_u32 w u.table;
      Codec.w_i64 w u.key;
      Codec.w_u8 w (op_kind_to_tag u.op);
      Codec.w_opt_string w u.before;
      Codec.w_opt_string w u.after;
      Codec.w_u32 w u.pid_hint;
      Codec.w_i64 w u.prev_lsn
  | Commit { txn } ->
      Codec.w_u8 w 2;
      Codec.w_i64 w txn
  | Abort { txn } ->
      Codec.w_u8 w 3;
      Codec.w_i64 w txn
  | Clr c ->
      Codec.w_u8 w 4;
      Codec.w_i64 w c.txn;
      Codec.w_u32 w c.table;
      Codec.w_i64 w c.key;
      Codec.w_u8 w (op_kind_to_tag c.op);
      Codec.w_opt_string w c.value;
      Codec.w_u32 w c.pid_hint;
      Codec.w_i64 w c.undo_next
  | Begin_ckpt -> Codec.w_u8 w 5
  | End_ckpt { bckpt; active } ->
      Codec.w_u8 w 6;
      Codec.w_i64 w bckpt;
      Codec.w_u32 w (Array.length active);
      Array.iter
        (fun (txn, last) ->
          Codec.w_i64 w txn;
          Codec.w_i64 w last)
        active
  | Aries_ckpt_dpt { entries } ->
      Codec.w_u8 w 7;
      Codec.w_u32 w (Array.length entries);
      Array.iter
        (fun (pid, rlsn, last) ->
          Codec.w_u32 w pid;
          Codec.w_i64 w rlsn;
          Codec.w_i64 w last)
        entries
  | Bw b ->
      Codec.w_u8 w 8;
      Codec.w_u32_array w b.written;
      Codec.w_i64 w b.fw_lsn
  | Delta d ->
      Codec.w_u8 w 9;
      Codec.w_u32_array w d.dirty;
      Codec.w_u32_array w d.written;
      Codec.w_i64 w d.fw_lsn;
      Codec.w_u32 w d.first_dirty;
      Codec.w_i64 w d.tc_lsn;
      Codec.w_i64_array w d.dirty_lsns
  | Smo s ->
      Codec.w_u8 w 10;
      Codec.w_u8 w (smo_kind_to_tag s.kind);
      Codec.w_u32 w (Array.length s.pages);
      Array.iter
        (fun (pid, image) ->
          Codec.w_u32 w pid;
          Codec.w_string w image)
        s.pages

let encode t =
  let w = Codec.writer () in
  encode_into w t;
  Codec.contents w

(* Exact encoded byte count, without encoding: the Δ/BW monitors account
   record bytes per interval and used to re-encode every record just to
   measure it. *)
let encoded_size t =
  let opt_string = function None -> 1 | Some s -> 5 + String.length s in
  match t with
  | Update_rec u -> 1 + 8 + 4 + 8 + 1 + opt_string u.before + opt_string u.after + 4 + 8
  | Commit _ | Abort _ -> 1 + 8
  | Clr c -> 1 + 8 + 4 + 8 + 1 + opt_string c.value + 4 + 8
  | Begin_ckpt -> 1
  | End_ckpt { active; _ } -> 1 + 8 + 4 + (16 * Array.length active)
  | Aries_ckpt_dpt { entries } -> 1 + 4 + (20 * Array.length entries)
  | Bw b -> 1 + 4 + (4 * Array.length b.written) + 8
  | Delta d ->
      1
      + 4
      + (4 * Array.length d.dirty)
      + 4
      + (4 * Array.length d.written)
      + 8 + 4 + 8 + 4
      + (8 * Array.length d.dirty_lsns)
  | Smo s ->
      Array.fold_left (fun n (_, image) -> n + 4 + 4 + String.length image) (1 + 1 + 4) s.pages

let decode_from r =
  match Codec.r_u8 r with
  | 1 ->
      let txn = Codec.r_i64 r in
      let table = Codec.r_u32 r in
      let key = Codec.r_i64 r in
      let op = op_kind_of_tag (Codec.r_u8 r) in
      let before = Codec.r_opt_string r in
      let after = Codec.r_opt_string r in
      let pid_hint = Codec.r_u32 r in
      let prev_lsn = Codec.r_i64 r in
      Update_rec { txn; table; key; op; before; after; pid_hint; prev_lsn }
  | 2 -> Commit { txn = Codec.r_i64 r }
  | 3 -> Abort { txn = Codec.r_i64 r }
  | 4 ->
      let txn = Codec.r_i64 r in
      let table = Codec.r_u32 r in
      let key = Codec.r_i64 r in
      let op = op_kind_of_tag (Codec.r_u8 r) in
      let value = Codec.r_opt_string r in
      let pid_hint = Codec.r_u32 r in
      let undo_next = Codec.r_i64 r in
      Clr { txn; table; key; op; value; pid_hint; undo_next }
  | 5 -> Begin_ckpt
  | 6 ->
      let bckpt = Codec.r_i64 r in
      let n = Codec.r_u32 r in
      let active =
        Array.init n (fun _ ->
            let txn = Codec.r_i64 r in
            let last = Codec.r_i64 r in
            (txn, last))
      in
      End_ckpt { bckpt; active }
  | 7 ->
      let n = Codec.r_u32 r in
      let entries =
        Array.init n (fun _ ->
            let pid = Codec.r_u32 r in
            let rlsn = Codec.r_i64 r in
            let last = Codec.r_i64 r in
            (pid, rlsn, last))
      in
      Aries_ckpt_dpt { entries }
  | 8 ->
      let written = Codec.r_u32_array r in
      let fw_lsn = Codec.r_i64 r in
      Bw { written; fw_lsn }
  | 9 ->
      let dirty = Codec.r_u32_array r in
      let written = Codec.r_u32_array r in
      let fw_lsn = Codec.r_i64 r in
      let first_dirty = Codec.r_u32 r in
      let tc_lsn = Codec.r_i64 r in
      let dirty_lsns = Codec.r_i64_array r in
      Delta { dirty; written; fw_lsn; first_dirty; tc_lsn; dirty_lsns }
  | 10 ->
      let kind = smo_kind_of_tag (Codec.r_u8 r) in
      let n = Codec.r_u32 r in
      let pages =
        Array.init n (fun _ ->
            let pid = Codec.r_u32 r in
            let image = Codec.r_string r in
            (pid, image))
      in
      Smo { kind; pages }
  | n -> invalid_arg (Printf.sprintf "Log_record.decode: corrupt record tag %d" n)

let decode s = decode_from (Codec.reader s)
let decode_sub data ~pos ~len = decode_from (Codec.reader_sub data ~pos ~len)

let describe = function
  | Update_rec u ->
      Printf.sprintf "update txn=%d table=%d key=%d op=%s pid=%d prev=%s" u.txn u.table u.key
        (op_kind_to_string u.op) u.pid_hint (Lsn.to_string u.prev_lsn)
  | Commit { txn } -> Printf.sprintf "commit txn=%d" txn
  | Abort { txn } -> Printf.sprintf "abort txn=%d" txn
  | Clr c ->
      Printf.sprintf "clr txn=%d table=%d key=%d op=%s undo_next=%s" c.txn c.table c.key
        (op_kind_to_string c.op) (Lsn.to_string c.undo_next)
  | Begin_ckpt -> "begin-checkpoint"
  | End_ckpt { bckpt; active } ->
      Printf.sprintf "end-checkpoint bckpt=%s active=%d" (Lsn.to_string bckpt)
        (Array.length active)
  | Aries_ckpt_dpt { entries } -> Printf.sprintf "aries-ckpt-dpt entries=%d" (Array.length entries)
  | Bw b ->
      Printf.sprintf "bw written=%d fw_lsn=%s" (Array.length b.written) (Lsn.to_string b.fw_lsn)
  | Delta d ->
      Printf.sprintf "delta dirty=%d written=%d fw_lsn=%s first_dirty=%d tc_lsn=%s"
        (Array.length d.dirty) (Array.length d.written) (Lsn.to_string d.fw_lsn) d.first_dirty
        (Lsn.to_string d.tc_lsn)
  | Smo s -> Printf.sprintf "smo %s pages=%d" (smo_kind_to_string s.kind) (Array.length s.pages)

let is_update = function Update_rec _ -> true | _ -> false

type redo_view = {
  rv_table : int;
  rv_key : int;
  rv_op : op_kind;
  rv_value : string option;
  rv_pid : int;
}

let redo_view = function
  | Update_rec u ->
      Some { rv_table = u.table; rv_key = u.key; rv_op = u.op; rv_value = u.after; rv_pid = u.pid_hint }
  | Clr c ->
      Some { rv_table = c.table; rv_key = c.key; rv_op = c.op; rv_value = c.value; rv_pid = c.pid_hint }
  | Commit _ | Abort _ | Begin_ckpt | End_ckpt _ | Aries_ckpt_dpt _ | Bw _ | Delta _ | Smo _ ->
      None
