(** Append-only write-ahead log with an explicit stable prefix.

    Records are framed as [u32 length][u32 checksum][payload]; a record's
    LSN is the byte offset of its frame, and the checksum (validated on
    every read) turns torn or corrupted records into loud
    {!Corrupt_record} failures instead of silent wrong recovery.  Bytes in
    [0, stable_lsn) are durable; the tail beyond is volatile and vanishes
    at a crash.  Commits force the log; flushing a data page forces the
    log up to that page's pLSN first (the WAL rule, enforced by the buffer
    pool).

    When a read disk is attached, scans charge one sequential log-page read
    per log page crossed — the "log pages" term in the paper's Appendix B
    cost model.  Normal-operation bookkeeping scans run without a disk and
    cost nothing. *)

type t

val genesis : Lsn.t
(** Offset of a fresh log's first record.  Offset 0 is reserved so that a
    zero-initialised page header's pLSN (0) unambiguously tests below
    every record in the redo pLSN test. *)

val create : page_size:int -> t
val page_size : t -> int

val append : t -> Log_record.t -> Lsn.t
(** Append to the volatile tail; returns the record's LSN. *)

val set_append_hook : t -> (Lsn.t -> unit) option -> unit
(** Observe appends: the hook runs after each record is framed (so
    [end_lsn] is the boundary just past it), receiving the record's LSN.
    Used by the crash-point test harness to capture an image at every
    record boundary; [None] detaches.  Copies made by [crash] /
    [crash_at] never inherit the hook. *)

val end_lsn : t -> Lsn.t
(** Offset just past the last appended byte (the next record's LSN). *)

val stable_lsn : t -> Lsn.t

val force : t -> unit
(** Make everything appended so far stable. *)

val force_upto : t -> Lsn.t -> unit
(** Make at least the record at the given LSN (inclusive) stable. *)

val record_count : t -> int
val force_count : t -> int

val instrument : t -> ?trace:Deut_obs.Trace.t -> ?flight:Deut_obs.Flight.t * int -> unit -> unit
(** Attach observability sinks: each stable-LSN advance emits a
    [log_force] instant on the wal track with the new stable offset and
    the number of bytes made durable, and — with [flight], the engine's
    flight recorder paired with the component index this log belongs to —
    a [Force] entry in that component's black box.  Purely
    observational. *)

exception Corrupt_record of Lsn.t
(** A frame failed its checksum. *)

val read_at : t -> Lsn.t -> Log_record.t * Lsn.t
(** [read_at t lsn] decodes the record at [lsn] and returns it with the LSN
    of the following record.  Offsets below [base_lsn] are served from the
    attached archive when a sealed segment covers them (whole-segment
    checksum verified on the incarnation's first access; may raise
    {!Archive.Corrupt_segment}).  Raises [Invalid_argument] on a bad offset
    and {!Corrupt_record} on a live-frame checksum failure. *)

val corrupt_for_test : t -> Lsn.t -> unit
(** Flip a byte of the record's payload (fault injection for tests). *)

val attach_read_disk : t -> Deut_sim.Disk.t -> unit
(** Charge subsequent scans' page crossings to this disk. *)

val detach_read_disk : t -> unit

val iter : t -> from:Lsn.t -> ?upto:Lsn.t -> (Lsn.t -> Log_record.t -> unit) -> unit
(** [iter t ~from ?upto f] decodes records in order, calling [f lsn record].
    [upto] (exclusive) defaults to the stable end — recovery never sees the
    lost tail.  [from] = [Lsn.nil] starts at the beginning: the first
    archived byte when an archive holds sealed segments, else [base_lsn].
    The scan spans archive and live log transparently, charging each page
    to the device that holds it. *)

val fold : t -> from:Lsn.t -> ?upto:Lsn.t -> init:'a -> ('a -> Lsn.t -> Log_record.t -> 'a) -> 'a

val crash : t -> t
(** The log as a recovering system sees it: a deep copy truncated to the
    stable prefix, with no disk attached.  An attached archive survives the
    crash as {!Archive.crash} of itself — segments are durable device
    state, exactly what a real restart would find. *)

val crash_at : t -> Lsn.t -> t
(** [crash] truncated at an arbitrary record boundary instead of the
    stable prefix: what recovery would see had the crash hit when exactly
    the bytes in [\[base, lsn)] were durable.  The boundary must come from
    an append (e.g. via [set_append_hook]); raises [Invalid_argument] when
    outside [\[base_lsn, end_lsn\]]. *)

val base_lsn : t -> Lsn.t
(** Offset of the oldest retained byte; earlier bytes were archived by
    [compact]. *)

val compact : t -> keep_from:Lsn.t -> unit
(** Archive (drop) log bytes before [keep_from] — which must be a record
    boundary at or before the stable point, and at or before any LSN
    recovery could scan from (the caller passes the last completed
    checkpoint).  LSNs are unaffected; reading archived offsets raises. *)

val pages_between : t -> Lsn.t -> Lsn.t -> int
(** Number of log pages spanned by the byte range — the log-read IO a scan
    of that range performs. *)

(** {1 Archiving}

    [archive_to] runs the seal-then-truncate protocol that keeps the
    durability contract (DESIGN.md §8): copy [\[lo, upto)] into a new
    segment, seal it under its checksum, and only then cut the live log.
    A crash at any step loses nothing — before the seal the bytes are
    still live, after it they are archived. *)

type archive_step =
  | Archive_segment_partial
      (** half the segment's bytes copied; segment unsealed *)
  | Archive_segment_sealed
      (** segment sealed and durable; live log not yet truncated *)
  | Archive_truncate_torn
      (** truncation stopped at a record boundary partway to the archive
          point *)
  | Archive_truncated  (** live log cut at the archive point *)

val attach_archive : t -> Archive.t -> unit
(** Give the log an archived-segment store.  Reads and scans then span the
    two stores transparently, and [archive_to] becomes operative. *)

val archive : t -> Archive.t option

val set_archive_hook : t -> (archive_step -> unit) option -> unit
(** Observe the archiving protocol: the hook runs after each step of
    [archive_to], mirroring [set_append_hook] — the crash-point harness
    captures an image at each step to prove recovery from it.  Copies made
    by [crash] / [crash_at] never inherit the hook. *)

val archive_to : t -> upto:Lsn.t -> bool
(** Archive live bytes up to [upto] (exclusive; a record boundary at or
    below the stable point — typically [Tc.log_archive_point]) and truncate
    the live log there.  Resumes after the sealed run when a previous
    incarnation crashed between seal and truncate, never re-copying.
    Returns [false] when no archive is attached or there is nothing new to
    archive.  Raises [Invalid_argument] past the stable prefix. *)
