module Db = Deut_core.Db
module Config = Deut_core.Config
module Rng = Deut_sim.Rng
module Pool = Deut_buffer.Buffer_pool

type t = {
  db : Db.t;
  spec : Workload.spec;
  rng : Rng.t;
  zipf : Rng.Zipf.dist option;
  oracle : Oracle.t;
  mutable updates : int;
  mutable next_fresh_key : int;  (* for insert workloads *)
  mutable seq_cursor : int;
}

let db t = t.db
let oracle t = t.oracle
let spec t = t.spec
let updates_done t = t.updates

let table_of t =
  if t.spec.Workload.tables = 1 then 1 else 1 + Rng.int t.rng t.spec.Workload.tables

let key_of t =
  match t.spec.Workload.key_dist with
  | Workload.Uniform -> Rng.int t.rng t.spec.Workload.rows
  | Workload.Zipf _ -> Rng.Zipf.sample t.rng (Option.get t.zipf)
  | Workload.Sequential ->
      let k = t.seq_cursor in
      t.seq_cursor <- (t.seq_cursor + 1) mod t.spec.Workload.rows;
      k

let fail_op what = function
  | Ok () -> ()
  | Error e -> failwith (Printf.sprintf "Driver: %s failed: %s" what (Db.error_to_string e))

let create ~config spec =
  let database = Db.create ~config () in
  let rng = Rng.create ~seed:spec.Workload.seed in
  let zipf =
    match spec.Workload.key_dist with
    | Workload.Zipf theta -> Some (Rng.Zipf.create ~n:spec.Workload.rows ~theta)
    | Workload.Uniform | Workload.Sequential -> None
  in
  let oracle = Oracle.create () in
  let t =
    {
      db = database;
      spec;
      rng;
      zipf;
      oracle;
      updates = 0;
      next_fresh_key = spec.Workload.rows;
      seq_cursor = 0;
    }
  in
  (* Bulk load: sequential keys in commit batches; archive the log as we
     go so SMO page images from the load do not accumulate in memory. *)
  for table = 1 to spec.Workload.tables do
    Db.create_table database ~table;
    let batch = 1000 in
    let k = ref 0 in
    while !k < spec.Workload.rows do
      let txn = Db.begin_txn database in
      Oracle.begin_txn oracle (Db.Txn.id txn);
      let upper = Stdlib.min (!k + batch) spec.Workload.rows in
      while !k < upper do
        let value = Workload.value_of rng ~size:spec.Workload.value_size in
        fail_op "load insert" (Db.insert database txn ~table ~key:!k ~value);
        Oracle.buffer_put oracle ~txn:(Db.Txn.id txn) ~table ~key:!k ~value;
        incr k
      done;
      Db.commit database txn;
      Oracle.commit oracle ~txn:(Db.Txn.id txn);
      if !k mod 100_000 = 0 then begin
        Db.checkpoint database;
        Db.compact_log database
      end
    done
  done;
  Db.checkpoint database;
  Db.compact_log database;
  t

let apply_one t txn ~table =
  let key = key_of t in
  match t.spec.Workload.op_mix with
  | Workload.Update_only ->
      let value = Workload.value_of t.rng ~size:t.spec.Workload.value_size in
      fail_op "update" (Db.update t.db txn ~table ~key ~value);
      Oracle.buffer_put t.oracle ~txn:(Db.Txn.id txn) ~table ~key ~value;
      t.updates <- t.updates + 1
  | Workload.Mixed { update; insert; delete; read } ->
      let total = update +. insert +. delete +. read in
      let x = Rng.float t.rng total in
      if x < update then begin
        let value = Workload.value_of t.rng ~size:t.spec.Workload.value_size in
        match Db.update t.db txn ~table ~key ~value with
        | Ok () ->
            Oracle.buffer_put t.oracle ~txn:(Db.Txn.id txn) ~table ~key ~value;
            t.updates <- t.updates + 1
        | Error _ -> ()  (* key deleted earlier: treat as a no-op *)
      end
      else if x < update +. insert then begin
        let key = t.next_fresh_key in
        t.next_fresh_key <- key + 1;
        let value = Workload.value_of t.rng ~size:t.spec.Workload.value_size in
        fail_op "insert" (Db.insert t.db txn ~table ~key ~value);
        Oracle.buffer_put t.oracle ~txn:(Db.Txn.id txn) ~table ~key ~value;
        t.updates <- t.updates + 1
      end
      else if x < update +. insert +. delete then begin
        match Db.delete t.db txn ~table ~key with
        | Ok () ->
            Oracle.buffer_delete t.oracle ~txn:(Db.Txn.id txn) ~table ~key;
            t.updates <- t.updates + 1
        | Error _ -> ()  (* already gone *)
      end
      else ignore (Db.read t.db ~table ~key)

let run_txn t =
  let txn = Db.begin_txn t.db in
  Oracle.begin_txn t.oracle (Db.Txn.id txn);
  let table = table_of t in
  for _ = 1 to t.spec.Workload.ops_per_txn do
    apply_one t txn ~table
  done;
  Db.commit t.db txn;
  Oracle.commit t.oracle ~txn:(Db.Txn.id txn)

let run_updates t ~updates =
  let target = t.updates + updates in
  while t.updates < target do
    run_txn t
  done

let run_concurrent t ~txns =
  let sched = Client_sched.create ~oracle:t.oracle t.db t.spec in
  Client_sched.run sched ~txns;
  t.updates <- t.updates + (Client_sched.stats sched).Client_sched.committed_ops;
  sched

let checkpoint t =
  Db.checkpoint t.db;
  Db.compact_log t.db

let warm_to_equilibrium t =
  let pool = (Db.engine t.db).Deut_core.Engine.pool in
  let capacity = Pool.capacity pool in
  (* "A workload runs for double the time needed to fill the cache":
     touching ~2× capacity pages under the update workload, with periodic
     checkpoints, brings occupancy, dirtiness, and the flush monitors to
     steady state. *)
  let chunk = Stdlib.max 500 (capacity / 2) in
  let rounds = Stdlib.max 4 (2 * capacity / chunk) in
  for _ = 1 to rounds do
    run_updates t ~updates:chunk;
    checkpoint t
  done

let start_loser t ~ops =
  let txn = Db.begin_txn t.db in
  Oracle.begin_txn t.oracle (Db.Txn.id txn);
  let table = table_of t in
  for _ = 1 to ops do
    let value = String.make t.spec.Workload.value_size 'X' in
    (* Mixed workloads may have deleted the drawn key; try another. *)
    let rec attempt tries =
      if tries > 100 then failwith "Driver.start_loser: no updatable key found";
      match Db.update t.db txn ~table ~key:(key_of t) ~value with
      | Ok () -> ()
      | Error _ -> attempt (tries + 1)
    in
    attempt 0
  done;
  Oracle.abort t.oracle ~txn:(Db.Txn.id txn);
  (* Force so the loser's records survive the crash and exercise undo. *)
  Deut_wal.Log_manager.force (Db.engine t.db).Deut_core.Engine.log

let run_crash_protocol t ~checkpoints ~interval ~tail =
  for _ = 1 to checkpoints do
    run_updates t ~updates:interval;
    checkpoint t
  done;
  (* One more interval, ending [tail] updates after a periodic Δ/BW
     emission: the checkpoint reset the emission counter, so running a
     multiple of [delta_period] updates ends exactly on an emission. *)
  let period = (Db.config t.db).Config.delta_period in
  let body = Stdlib.max period (interval / period * period) in
  run_updates t ~updates:body;
  run_updates t ~updates:tail

let crash t = Db.crash t.db

let verify_recovered t recovered =
  match Db.check_integrity recovered with
  | Error msg -> Error ("integrity: " ^ msg)
  | Ok () ->
      let tables = List.init t.spec.Workload.tables (fun i -> i + 1) in
      Oracle.verify t.oracle recovered ~tables
