(* Deterministic multi-client scheduler.  See client_sched.mli for the
   contract and DESIGN.md §7 for the full argument. *)

module Db = Deut_core.Db
module Config = Deut_core.Config
module Engine = Deut_core.Engine
module Clock = Deut_sim.Clock
module Cursor = Deut_sim.Clock.Cursor
module Rng = Deut_sim.Rng
module Trace = Deut_obs.Trace
module Metrics = Deut_obs.Metrics

type action = Upd of string | Ins of string | Del | Read
type op = { table : int; key : int; action : action }
type desc = { ticket : int; ops : op array }

type client = {
  cid : int;
  rng : Rng.t;  (* timing only: think time, backoff jitter *)
  cursor : Cursor.t;
  mutable desc : desc option;  (* the descriptor being executed *)
  mutable txn : Db.Txn.t option;
  mutable next_op : int;
  mutable committing : bool;  (* all ops applied; at the commit gate *)
  mutable parked : bool;  (* not schedulable until unparked *)
  mutable attempts : int;  (* aborts of the current descriptor *)
  mutable requested_at : float;  (* entered the commit gate *)
  mutable started_at : float;  (* began the current attempt *)
  mutable commits : int;
  mutable aborts : int;
}

type t = {
  db : Db.t;
  oracle : Oracle.t option;
  spec : Workload.spec;
  cfg : Config.t;
  clock : Clock.t;
  clients : client array;
  stream : Rng.t;  (* descriptor content, consumed in ticket order *)
  zipf : Rng.Zipf.dist option;
  mutable seq_cursor : int;
  mutable next_fresh_key : int;
  mutable next_ticket : int;
  mutable tickets_limit : int;
  mutable commits_done : int;  (* the ticket the gate admits next *)
  active : (int, client) Hashtbl.t;  (* txn id -> executing client *)
  wounded : (int, unit) Hashtbl.t;  (* txn ids doomed by an older client *)
  latency_q : (float * int) Queue.t;  (* gate-entry times awaiting a force *)
  commit_hist : Metrics.histogram;
  trace : Trace.t option;
  started_us : float;
  conflicts0 : int;  (* lock-table refusals before this run *)
  mutable committed_ops : int;
  mutable wounds : int;
}

type stats = {
  n_clients : int;
  committed_txns : int;
  committed_ops : int;
  aborts : int;
  wounds : int;
  conflicts : int;
  makespan_ms : float;
  throughput_tps : float;
  abort_rate : float;
  commit_p50_us : float;
  commit_p95_us : float;
  per_client_commits : int array;
  per_client_aborts : int array;
}

let create ?oracle db spec =
  let engine = Db.engine db in
  let clock = engine.Engine.clock in
  let cfg = Db.config db in
  let n = Stdlib.max 1 cfg.Config.clients in
  (* Content and timing draw from disjoint streams: the content stream is
     consumed in ticket order (client-count independent), while each
     client's timing stream only shapes the interleaving. *)
  let stream = Rng.create ~seed:(spec.Workload.seed + 0x6c1e) in
  let timing = Rng.create ~seed:(spec.Workload.seed + 0x71e) in
  let now = Clock.now clock in
  let clients =
    Array.init n (fun cid ->
        {
          cid;
          rng = Rng.split timing;
          cursor = Cursor.make ~at:now clock;
          desc = None;
          txn = None;
          next_op = 0;
          committing = false;
          parked = false;
          attempts = 0;
          requested_at = now;
          started_at = now;
          commits = 0;
          aborts = 0;
        })
  in
  let zipf =
    match spec.Workload.key_dist with
    | Workload.Zipf theta -> Some (Rng.Zipf.create ~n:spec.Workload.rows ~theta)
    | Workload.Uniform | Workload.Sequential -> None
  in
  let m = Engine.metrics engine in
  let t =
    {
      db;
      oracle;
      spec;
      cfg;
      clock;
      clients;
      stream;
      zipf;
      seq_cursor = 0;
      next_fresh_key = spec.Workload.rows;
      next_ticket = 0;
      tickets_limit = 0;
      commits_done = 0;
      active = Hashtbl.create 64;
      wounded = Hashtbl.create 16;
      latency_q = Queue.create ();
      commit_hist = Metrics.histogram m "txn.commit_latency_us";
      trace = Engine.trace engine;
      started_us = now;
      conflicts0 = Metrics.read_int m "locks.conflicts";
      committed_ops = 0;
      wounds = 0;
    }
  in
  (* Stagger first arrivals with an initial think, so clients do not all
     fire at the same instant. *)
  Array.iter
    (fun c -> Cursor.advance_to c.cursor (now +. Rng.float c.rng cfg.Config.think_us))
    t.clients;
  t

(* ---------- descriptor stream ---------- *)

let table_of t =
  if t.spec.Workload.tables = 1 then 1 else 1 + Rng.int t.stream t.spec.Workload.tables

let key_of t =
  match t.spec.Workload.key_dist with
  | Workload.Uniform -> Rng.int t.stream t.spec.Workload.rows
  | Workload.Zipf _ -> Rng.Zipf.sample t.stream (Option.get t.zipf)
  | Workload.Sequential ->
      let k = t.seq_cursor in
      t.seq_cursor <- (t.seq_cursor + 1) mod t.spec.Workload.rows;
      k

let draw_op t =
  let table = table_of t in
  let key = key_of t in
  let value () = Workload.value_of t.stream ~size:t.spec.Workload.value_size in
  match t.spec.Workload.op_mix with
  | Workload.Update_only -> { table; key; action = Upd (value ()) }
  | Workload.Mixed { update; insert; delete; read } ->
      let total = update +. insert +. delete +. read in
      let x = Rng.float t.stream total in
      if x < update then { table; key; action = Upd (value ()) }
      else if x < update +. insert then begin
        let key = t.next_fresh_key in
        t.next_fresh_key <- key + 1;
        { table; key; action = Ins (value ()) }
      end
      else if x < update +. insert +. delete then { table; key; action = Del }
      else { table; key; action = Read }

let draw_desc t =
  let ticket = t.next_ticket in
  t.next_ticket <- ticket + 1;
  let nops = t.spec.Workload.ops_per_txn in
  let acc = ref [] in
  for _ = 1 to nops do
    acc := draw_op t :: !acc
  done;
  { ticket; ops = Array.of_list (List.rev !acc) }

(* ---------- bookkeeping ---------- *)

let trace_instant t c name args =
  match t.trace with
  | Some tr -> Trace.instant tr ~name ~cat:"client" ~track:(Trace.track_client c.cid) ~args ()
  | None -> ()

let trace_txn_span t c ~name ~args =
  match t.trace with
  | Some tr ->
      let now = Clock.now t.clock in
      Trace.span tr ~name ~cat:"client" ~track:(Trace.track_client c.cid) ~ts:c.started_at
        ~dur:(now -. c.started_at) ~args ()
  | None -> ()

(* The engine forced its log: every queued commit became durable. *)
let on_force t =
  let now = Clock.now t.clock in
  while not (Queue.is_empty t.latency_q) do
    let requested, _cid = Queue.pop t.latency_q in
    Metrics.observe t.commit_hist (now -. requested)
  done;
  match t.oracle with Some o -> Oracle.force o | None -> ()

let think_us t c =
  let m = t.cfg.Config.think_us in
  (0.5 *. m) +. Rng.float c.rng m

let backoff_us t c =
  let base = t.cfg.Config.retry_backoff_us *. float_of_int (1 lsl Stdlib.min c.attempts 6) in
  base +. Rng.float c.rng base

let ticket_of c = match c.desc with Some d -> d.ticket | None -> max_int

(* Abort the current attempt: roll back, release locks, back off, and
   retry the same descriptor (the ticket is not returned to the stream —
   content never depends on the abort history). *)
let abort_current t c ~wounded =
  match c.txn with
  | None -> ()
  | Some txn ->
      let id = Db.Txn.id txn in
      Hashtbl.remove t.active id;
      Hashtbl.remove t.wounded id;
      Db.abort t.db txn;
      (* [Tc.abort] ends in a log force: queued group commits just became
         durable. *)
      on_force t;
      (match t.oracle with Some o -> Oracle.abort o ~txn:id | None -> ());
      c.txn <- None;
      c.next_op <- 0;
      c.committing <- false;
      c.parked <- false;
      c.aborts <- c.aborts + 1;
      c.attempts <- c.attempts + 1;
      if c.attempts > 2_000 then
        failwith
          (Printf.sprintf "Client_sched: client %d ticket %d aborted %d times — livelock" c.cid
             (ticket_of c) c.attempts);
      trace_txn_span t c ~name:(if wounded then "txn-wounded" else "txn-aborted")
        ~args:[ ("ticket", ticket_of c); ("attempt", c.attempts) ];
      Cursor.advance_to c.cursor (Clock.now t.clock +. backoff_us t c)

let handle_conflict t c ~holder =
  trace_instant t c "conflict" [ ("holder", holder) ];
  match Hashtbl.find_opt t.active holder with
  | Some hc when ticket_of hc > ticket_of c ->
      (* Older wounds younger: doom the holder, keep our locks, and poll
         the same op after a short fixed backoff.  The holder aborts at
         its next step; since the oldest outstanding ticket is never
         wounded, it always makes progress — no livelock. *)
      if not (Hashtbl.mem t.wounded holder) then begin
        Hashtbl.replace t.wounded holder ();
        t.wounds <- t.wounds + 1;
        trace_instant t c "wound" [ ("victim", holder); ("victim_client", hc.cid) ]
      end;
      if hc.parked then begin
        hc.parked <- false;
        Cursor.advance_to hc.cursor (Clock.now t.clock)
      end;
      Cursor.advance_to c.cursor (Clock.now t.clock +. t.cfg.Config.retry_backoff_us)
  | _ ->
      (* Younger loses to older: no-wait abort, exponential backoff. *)
      abort_current t c ~wounded:false

let commit_current t c =
  let txn = Option.get c.txn in
  let d = Option.get c.desc in
  let id = Db.Txn.id txn in
  Hashtbl.remove t.active id;
  Hashtbl.remove t.wounded id;
  let durable = Db.commit_durable t.db txn in
  (match t.oracle with Some o -> Oracle.commit_queued o ~txn:id | None -> ());
  Queue.add (c.requested_at, c.cid) t.latency_q;
  if durable then on_force t;
  t.commits_done <- d.ticket + 1;
  t.committed_ops <- t.committed_ops + Array.length d.ops;
  c.commits <- c.commits + 1;
  trace_txn_span t c ~name:"txn" ~args:[ ("ticket", d.ticket); ("attempts", c.attempts) ];
  c.txn <- None;
  c.desc <- None;
  c.next_op <- 0;
  c.committing <- false;
  c.attempts <- 0;
  Cursor.advance_to c.cursor (Clock.now t.clock +. think_us t c);
  (* Open the gate for the next ticket's holder if it is already waiting. *)
  Array.iter
    (fun c' ->
      if c'.parked then
        match c'.desc with
        | Some d' when d'.ticket = t.commits_done ->
            c'.parked <- false;
            Cursor.advance_to c'.cursor (Clock.now t.clock)
        | _ -> ())
    t.clients

type op_result = Applied | Conflict of int

let exec_op t txn (op : op) =
  let id = Db.Txn.id txn in
  let buffer_put value =
    match t.oracle with
    | Some o -> Oracle.buffer_put o ~txn:id ~table:op.table ~key:op.key ~value
    | None -> ()
  in
  let hard what e = failwith ("Client_sched: " ^ what ^ ": " ^ Db.error_to_string e) in
  match op.action with
  | Upd value -> (
      match Db.update t.db txn ~table:op.table ~key:op.key ~value with
      | Ok () ->
          buffer_put value;
          Applied
      | Error (Db.Lock_conflict { holder }) -> Conflict holder
      | Error (Db.Missing_key _) -> Applied (* deleted by an earlier ticket: no-op *)
      | Error e -> hard "update" e)
  | Ins value -> (
      match Db.insert t.db txn ~table:op.table ~key:op.key ~value with
      | Ok () ->
          buffer_put value;
          Applied
      | Error (Db.Lock_conflict { holder }) -> Conflict holder
      | Error e -> hard "insert" e)
  | Del -> (
      match Db.delete t.db txn ~table:op.table ~key:op.key with
      | Ok () ->
          (match t.oracle with
          | Some o -> Oracle.buffer_delete o ~txn:id ~table:op.table ~key:op.key
          | None -> ());
          Applied
      | Error (Db.Lock_conflict { holder }) -> Conflict holder
      | Error (Db.Missing_key _) -> Applied (* already gone *)
      | Error e -> hard "delete" e)
  | Read -> (
      match Db.read_locked t.db txn ~table:op.table ~key:op.key with
      | Ok _ -> Applied
      | Error (Db.Lock_conflict { holder }) -> Conflict holder
      | Error e -> hard "read" e)

(* One scheduling quantum for a client, on its own timeline. *)
let step t c =
  Cursor.enter c.cursor;
  (match c.txn with
  | Some txn when Hashtbl.mem t.wounded (Db.Txn.id txn) -> abort_current t c ~wounded:true
  | _ ->
      if c.committing then begin
        match c.desc with
        | Some d when d.ticket = t.commits_done -> commit_current t c
        | Some _ -> c.parked <- true (* an earlier ticket is still running *)
        | None -> assert false
      end
      else begin
        match c.txn with
        | None -> (
            if c.desc = None then
              if t.next_ticket < t.tickets_limit then c.desc <- Some (draw_desc t)
              else c.parked <- true (* stream exhausted: nothing left to do *);
            match c.desc with
            | None -> ()
            | Some _ ->
                let txn = Db.begin_txn ~client:c.cid t.db in
                (match t.oracle with
                | Some o -> Oracle.begin_txn o (Db.Txn.id txn)
                | None -> ());
                Hashtbl.replace t.active (Db.Txn.id txn) c;
                c.txn <- Some txn;
                c.next_op <- 0;
                c.started_at <- Clock.now t.clock)
        | Some txn ->
            let d = Option.get c.desc in
            if c.next_op >= Array.length d.ops then begin
              c.committing <- true;
              c.requested_at <- Clock.now t.clock
            end
            else begin
              Clock.advance t.clock t.cfg.Config.cpu_op_us;
              match exec_op t txn d.ops.(c.next_op) with
              | Applied -> c.next_op <- c.next_op + 1
              | Conflict holder -> handle_conflict t c ~holder
            end
      end);
  Cursor.leave c.cursor

(* Earliest-cursor-first among schedulable clients; ties go to the lowest
   client id (first found). *)
let pick t =
  let best = ref None in
  Array.iter
    (fun c ->
      if not c.parked then
        match !best with
        | Some b when Cursor.time b.cursor <= Cursor.time c.cursor -> ()
        | _ -> best := Some c)
    t.clients;
  !best

let finish_clock t =
  let horizon =
    Array.fold_left (fun acc c -> Stdlib.max acc (Cursor.time c.cursor)) (Clock.now t.clock)
      t.clients
  in
  Clock.advance_to t.clock horizon

let run t ~txns =
  t.tickets_limit <- t.tickets_limit + txns;
  Array.iter (fun c -> if c.parked && c.desc = None && c.txn = None then c.parked <- false) t.clients;
  while t.commits_done < t.tickets_limit do
    match pick t with
    | Some c -> step t c
    | None -> failwith "Client_sched.run: every client parked — scheduler deadlock"
  done;
  finish_clock t

let run_steps t ~steps =
  if t.tickets_limit <> max_int then t.tickets_limit <- max_int;
  Array.iter (fun c -> if c.parked && c.desc = None && c.txn = None then c.parked <- false) t.clients;
  for _ = 1 to steps do
    match pick t with Some c -> step t c | None -> ()
  done;
  finish_clock t

let flush t =
  Db.flush_commits t.db;
  on_force t

let commits_done t = t.commits_done

let stats t =
  let m = Engine.metrics (Db.engine t.db) in
  let commits = Array.fold_left (fun a c -> a + c.commits) 0 t.clients in
  let aborts = Array.fold_left (fun a (c : client) -> a + c.aborts) 0 t.clients in
  let makespan_us = Clock.now t.clock -. t.started_us in
  let attempts = commits + aborts in
  {
    n_clients = Array.length t.clients;
    committed_txns = commits;
    committed_ops = t.committed_ops;
    aborts;
    wounds = t.wounds;
    conflicts = Metrics.read_int m "locks.conflicts" - t.conflicts0;
    makespan_ms = makespan_us /. 1000.0;
    throughput_tps =
      (if makespan_us <= 0.0 then 0.0 else float_of_int commits /. (makespan_us /. 1.0e6));
    abort_rate = (if attempts = 0 then 0.0 else float_of_int aborts /. float_of_int attempts);
    commit_p50_us = Metrics.percentile t.commit_hist 50.0;
    commit_p95_us = Metrics.percentile t.commit_hist 95.0;
    per_client_commits = Array.map (fun c -> c.commits) t.clients;
    per_client_aborts = Array.map (fun (c : client) -> c.aborts) t.clients;
  }

let logical_digest db =
  let buf = Buffer.create 4096 in
  List.iter
    (fun table ->
      Buffer.add_string buf (Printf.sprintf "table %d\n" table);
      List.iter
        (fun (k, v) ->
          Buffer.add_string buf (string_of_int k);
          Buffer.add_char buf '=';
          Buffer.add_string buf v;
          Buffer.add_char buf '\n')
        (Db.dump_table db ~table))
    (List.sort compare (Db.tables db));
  Digest.to_hex (Digest.string (Buffer.contents buf))
