(** Workload driver: runs a {!Workload.spec} against a {!Deut_core.Db},
    maintains the {!Oracle}, and implements the paper's crash protocol
    (§5.2): run to cache equilibrium, checkpoint every interval, crash a
    controlled number of updates after the last Δ/BW record — shortly
    before the next checkpoint, the worst case for redo. *)

type t

val create : config:Deut_core.Config.t -> Workload.spec -> t
(** Create the database, its tables, and bulk-load [spec.rows] rows per
    table (sequential keys, committed in batches, with periodic
    checkpoint + log archiving to bound memory). *)

val db : t -> Deut_core.Db.t
val oracle : t -> Oracle.t
val spec : t -> Workload.spec
val updates_done : t -> int

val run_txn : t -> unit
(** One transaction of [ops_per_txn] operations per the spec's mix,
    committed, mirrored in the oracle. *)

val run_updates : t -> updates:int -> unit
(** Run transactions until at least [updates] more operations have been
    applied. *)

val run_concurrent : t -> txns:int -> Client_sched.t
(** Run [txns] transactions through a fresh {!Client_sched} over
    [Config.clients] simulated clients, oracle-mirrored with group-commit
    fidelity.  Returns the scheduler for stats/flush/crash protocols.
    The committed state is identical to a serial run of the same
    descriptor stream at any client count. *)

val checkpoint : t -> unit
(** Checkpoint and archive the log prefix recovery can no longer need. *)

val warm_to_equilibrium : t -> unit
(** Run update transactions for double the work needed to fill the cache
    (the paper's steady-state criterion), with periodic checkpoints. *)

val start_loser : t -> ops:int -> unit
(** Begin a transaction, apply [ops] updates, and leave it uncommitted —
    undo-pass fodder.  Forces the log so the loser's records survive the
    crash. *)

val run_crash_protocol : t -> checkpoints:int -> interval:int -> tail:int -> unit
(** Take [checkpoints] checkpoints [interval] updates apart; then run one
    more interval, stopping [tail] updates after the last periodic Δ/BW
    emission, leaving the log tail the paper's redo falls back to basic
    mode for. *)

val crash : t -> Deut_core.Crash_image.t

val verify_recovered : t -> Deut_core.Db.t -> (unit, string) result
(** Oracle comparison plus structural B-tree checks. *)
