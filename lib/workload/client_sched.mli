(** Deterministic multi-client normal execution on the virtual clock.

    [Config.clients] simulated clients run transactions concurrently as
    coroutine-style state machines: a scheduler repeatedly picks the
    client whose private timeline ({!Deut_sim.Clock.Cursor}) is furthest
    behind, lets it run one quantum (begin, one operation, or commit),
    and captures where the shared clock ended up.  IOs issued on one
    client's timeline occupy the disk's busy horizon and so overlap —
    or queue behind — the other clients', exactly as in parallel redo.

    {b Determinism.}  Like redo workers, clients are a timing overlay,
    not a source of nondeterminism:

    - transaction {e content} (tables, keys, values) is drawn from a
      shared seeded stream at hand-out time, in ticket order — ticket
      [j] is the [j]-th descriptor regardless of which client runs it or
      how many clients exist;
    - a {e commit gate} admits commits in ticket order, so the committed
      schedule equals the serial execution of the stream;
    - on a no-wait lock conflict, an older ticket {e wounds} a younger
      holder (which aborts, backs off exponentially on its own seeded
      timing stream, and retries the same descriptor), while a younger
      ticket aborts itself.  The oldest outstanding ticket is never
      wounded, so progress is guaranteed.

    Hence the same seed produces the identical committed state — logical
    digest and committed txn/op counts — at any client count; only
    timing, abort counts and IO overlap vary.  Crashing mid-run leaves a
    log whose committed (durable) prefix is a ticket-order prefix, which
    every recovery method restores identically.

    Timing (think time, backoff jitter) comes from per-client streams
    disjoint from the content stream; group commit batches across
    clients, and commit latency (gate entry → durable force) lands in
    the ["txn.commit_latency_us"] histogram that {!Deut_core.Engine_stats}
    reports. *)

type t

type stats = {
  n_clients : int;
  committed_txns : int;
  committed_ops : int;  (** operations inside committed transactions *)
  aborts : int;  (** abort-and-retry events (not failed transactions) *)
  wounds : int;  (** aborts forced by an older ticket *)
  conflicts : int;  (** no-wait lock refusals during the run *)
  makespan_ms : float;
  throughput_tps : float;  (** committed transactions per simulated second *)
  abort_rate : float;  (** aborts / (commits + aborts) *)
  commit_p50_us : float;  (** gate entry → durable, bucket upper bound *)
  commit_p95_us : float;
  per_client_commits : int array;
  per_client_aborts : int array;
}

val create : ?oracle:Oracle.t -> Deut_core.Db.t -> Workload.spec -> t
(** A scheduler over [Config.clients] clients (from the db's config).
    When [oracle] is given, every operation is mirrored with group-commit
    fidelity: queued commits fold into the oracle's committed state only
    when the engine forces its log, so crash verification sees exactly
    the durable prefix. *)

val run : t -> txns:int -> unit
(** Hand out and commit [txns] more tickets, then return with every
    client idle.  Nothing is flushed: with group commit the tail may
    still be volatile (see {!flush}). *)

val run_steps : t -> steps:int -> unit
(** Advance the scheduler by a bounded number of quanta with an
    unlimited ticket stream, leaving transactions in flight and commits
    queued — the state a mid-run crash should capture. *)

val flush : t -> unit
(** [Db.flush_commits] plus the oracle/latency bookkeeping of the
    force. *)

val commits_done : t -> int
(** Tickets committed so far. *)

val stats : t -> stats

val logical_digest : Deut_core.Db.t -> string
(** MD5 over every table's sorted contents — the client-count-invariant
    digest (page images are {e not} compared: physical pLSN headers
    depend on the global log order, which legitimately varies with
    timing).  Scans every table: post-run/post-recovery use only. *)
