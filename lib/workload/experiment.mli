(** Scaled reproduction of the paper's experimental setup (§5.2) and the
    harness that runs crash + side-by-side recovery.

    The paper's table is 3.5 GB — 436,000 pages, 10^8 rows — with caches of
    64 MB … 2048 MB (2–60 % of the database), a checkpoint interval of
    40,000 updates, 10 checkpoints before the crash, and a ~100-update log
    tail after the last Δ/BW record.  [paper_setup ~scale] divides every
    size by [scale], preserving the ratios that drive the results
    (cache:database, DPT:cache, tail:interval); see DESIGN.md §1. *)

type protocol = { checkpoints : int; interval : int; tail : int; loser_ops : int }

type scaled = {
  label : string;
  config : Deut_core.Config.t;
  spec : Workload.spec;
  protocol : protocol;
  cache_mb_equiv : int;  (** paper-equivalent cache size in MB *)
}

val paper_setup :
  ?scale:int ->
  ?ckpt_multiplier:int ->
  ?dpt_mode:Deut_core.Config.dpt_mode ->
  ?checkpoint_mode:Deut_core.Config.checkpoint_mode ->
  ?key_dist:Workload.key_dist ->
  cache_mb:int ->
  unit ->
  scaled
(** [cache_mb] is the paper-equivalent cache size (64 … 2048).
    [ckpt_multiplier] scales the checkpoint interval (Appendix C's ci1,
    5×ci1, 10×ci1).  Default [scale] is 32. *)

(** A crashed system ready for side-by-side recovery: the shared crash
    image, the oracle, and normal-execution measurements. *)
type crash_run = {
  image : Deut_core.Crash_image.t;
  driver : Driver.t;  (** for its oracle; the driver's db is dead *)
  dirty_at_crash : int;
  cached_at_crash : int;
  dirty_fraction : float;  (** dirty pages / cache capacity — Figure 2(b) *)
  db_pages : int;
  deltas_total : int;
  bws_total : int;
  delta_bytes : int;  (** total Δ-record payload logged — the DC's overhead *)
  bw_bytes : int;
  updates_run : int;
}

type build_cache
(** Memoizes [build] by setup.  Sound because [build] is deterministic in
    its [scaled] argument; recoveries copy the crash image before mutating
    anything, so a cached run can back any number of them.  Safe to share
    across domains: a mutex guards the table, a requester of a setup whose
    build is already in flight waits for it rather than duplicating it, and
    published runs have sealed oracles (see {!Oracle.seal}).  Costs memory:
    every cached crash image (store + log) stays live until evicted — an
    LRU bound of [max_entries] caps how many. *)

val build_cache : ?max_entries:int -> unit -> build_cache
(** [max_entries] defaults to 16. *)

val drop_cache : build_cache -> unit
(** Empty the cache, releasing every retained crash image. *)

val build : ?cache:build_cache -> scaled -> crash_run
(** Load, warm to cache equilibrium, run the crash protocol, leave one
    uncommitted transaction, crash.  Thread-safe when [cache] is given. *)

val run_method :
  ?workers:int -> crash_run -> Deut_core.Recovery.method_ -> Deut_core.Recovery_stats.t
(** Recover with the given method from (a copy of) the shared image and
    verify the result against the oracle; raises [Failure] on divergence —
    a benchmark must never report timings for an incorrect recovery.
    [workers] overrides [Config.redo_workers] for this recovery. *)

val recover_verified :
  ?workers:int ->
  crash_run ->
  Deut_core.Recovery.method_ ->
  Deut_core.Db.t * Deut_core.Engine_stats.t * Deut_core.Recovery_stats.t
(** [run_method] that also returns the recovered database and an engine
    snapshot taken {e before} oracle verification, so the IO and stall
    latency histograms reflect recovery alone (verification's own page
    fetches would otherwise dominate them). *)

val run_all :
  crash_run ->
  Deut_core.Recovery.method_ list ->
  (Deut_core.Recovery.method_ * Deut_core.Recovery_stats.t) list

val store_digest : Deut_core.Db.t -> string
(** Digest of the stable page store after flushing every dirty frame — the
    complete database image, byte for byte.  Together with
    [Client_sched.logical_digest] this is the determinism gate's currency:
    recovered state must hash identically at every domain count. *)
