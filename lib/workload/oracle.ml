type change = Put of string | Remove

type t = {
  committed : (int * int, string) Hashtbl.t;  (* (table, key) -> value *)
  pending : (int, ((int * int) * change) list ref) Hashtbl.t;  (* txn -> buffered writes *)
  mutable queued : ((int * int) * change) list list;
      (* group-commit tail: committed but not yet durable, newest first *)
  mutable version : int;  (* bumped on every [committed] mutation *)
  entries_cache : (int, int * (int * string) list) Hashtbl.t;
      (* table -> (version, sorted entries); [verify] runs once per recovery
         method against the same oracle state, so the fold+sort over the
         whole committed table is paid once, not five times *)
}

let create () =
  {
    committed = Hashtbl.create 4096;
    pending = Hashtbl.create 16;
    queued = [];
    version = 0;
    entries_cache = Hashtbl.create 8;
  }
let begin_txn t txn = Hashtbl.replace t.pending txn (ref [])

let buffer t ~txn entry =
  match Hashtbl.find_opt t.pending txn with
  | Some changes -> changes := entry :: !changes
  | None -> invalid_arg "Oracle: transaction not begun"

let buffer_put t ~txn ~table ~key ~value = buffer t ~txn ((table, key), Put value)
let buffer_delete t ~txn ~table ~key = buffer t ~txn ((table, key), Remove)

let commit t ~txn =
  match Hashtbl.find_opt t.pending txn with
  | None -> invalid_arg "Oracle.commit: transaction not begun"
  | Some changes ->
      t.version <- t.version + 1;
      List.iter
        (fun (addr, change) ->
          match change with
          | Put v -> Hashtbl.replace t.committed addr v
          | Remove -> Hashtbl.remove t.committed addr)
        (List.rev !changes);
      Hashtbl.remove t.pending txn

let abort t ~txn = Hashtbl.remove t.pending txn

let commit_queued t ~txn =
  match Hashtbl.find_opt t.pending txn with
  | None -> invalid_arg "Oracle.commit_queued: transaction not begun"
  | Some changes ->
      t.queued <- List.rev !changes :: t.queued;
      Hashtbl.remove t.pending txn

let force t =
  if t.queued <> [] then t.version <- t.version + 1;
  List.iter
    (fun changes ->
      List.iter
        (fun (addr, change) ->
          match change with
          | Put v -> Hashtbl.replace t.committed addr v
          | Remove -> Hashtbl.remove t.committed addr)
        changes)
    (List.rev t.queued);
  t.queued <- []

let queued_commits t = List.length t.queued

let committed_value t ~table ~key = Hashtbl.find_opt t.committed (table, key)

let committed_entries t ~table =
  match Hashtbl.find_opt t.entries_cache table with
  | Some (v, entries) when v = t.version -> entries
  | _ ->
      let entries =
        Hashtbl.fold
          (fun (tbl, key) v acc -> if tbl = table then (key, v) :: acc else acc)
          t.committed []
        |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
      in
      Hashtbl.replace t.entries_cache table (t.version, entries);
      entries

(* Pre-compute the sorted-entry cache for every table with committed data.
   After sealing, [committed_entries] (and so [verify]) is a pure read as
   long as the committed state stays untouched — the invariant that lets
   several domains verify recoveries against one shared oracle
   concurrently.  Sealing is not a lock: any later mutation (another
   commit, a [force]) bumps [version] and the next lookup recomputes. *)
let seal t =
  let tables = Hashtbl.create 8 in
  Hashtbl.iter (fun (table, _) _ -> Hashtbl.replace tables table ()) t.committed;
  Hashtbl.iter (fun table () -> ignore (committed_entries t ~table)) tables

let entry_count t ~table =
  Hashtbl.fold (fun (tbl, _) _ n -> if tbl = table then n + 1 else n) t.committed 0

let verify t db ~tables =
  let check_table table =
    let expected = committed_entries t ~table in
    let actual = Deut_core.Db.dump_table db ~table in
    if expected = actual then Ok ()
    else begin
      let n_exp = List.length expected and n_act = List.length actual in
      if n_exp <> n_act then
        Error (Printf.sprintf "table %d: %d entries recovered, %d committed" table n_act n_exp)
      else begin
        let diff =
          List.find_opt (fun ((k1, v1), (k2, v2)) -> k1 <> k2 || v1 <> v2)
            (List.combine actual expected)
        in
        match diff with
        | Some ((k1, v1), (k2, v2)) ->
            Error
              (Printf.sprintf "table %d: recovered (%d,%S) but committed (%d,%S)" table k1 v1 k2
                 v2)
        | None -> Ok ()
      end
    end
  in
  let rec go = function
    | [] -> Ok ()
    | table :: rest -> ( match check_table table with Ok () -> go rest | Error _ as e -> e)
  in
  go tables
