module Config = Deut_core.Config
module Recovery = Deut_core.Recovery
module Rs = Deut_core.Recovery_stats

let paper_cache_sizes = [ 64; 128; 256; 512; 1024; 2048 ]
let no_progress _ = ()

(* The sweeps below evaluate independent cells — separate engines sharing
   nothing but the build cache (itself a monitor) — so with domains > 1
   they fan cells across real OS-level domains via {!Deut_sim.Domain_pool}.
   Results come back in input order, and each cell's simulated numbers are
   byte-identical to a sequential run ([Experiment.paper_setup] pins the
   per-cell config to one domain), so harness parallelism buys wall clock
   only.  Progress lines are serialised so concurrent cells cannot
   interleave output. *)
let fan ~domains f items =
  Deut_sim.Domain_pool.map (Deut_sim.Domain_pool.create ~domains) f items

let progress_lock = Mutex.create ()

let serial progress msg =
  Mutex.lock progress_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock progress_lock) (fun () -> progress msg)

type fig2_cell = {
  cache_mb : int;
  pool_pages : int;
  db_pages : int;
  dirty_pct : float;
  deltas_seen : int;
  bws_seen : int;
  methods : (Recovery.method_ * Rs.t) list;
  build_wall_s : float;  (* real seconds to build workload + crash image *)
  method_walls : (Recovery.method_ * float) list;  (* real seconds per recover+verify *)
  digests : (Recovery.method_ * (string * string)) list;
      (* (store, logical) digest of each method's recovered state — what the
         cross-domain determinism gate compares *)
}

let stats_of cell m = List.assoc m cell.methods
let redo_ms_of cell m = Rs.redo_ms (stats_of cell m)

let run_fig2 ?cache ?(scale = 64) ?(cache_sizes = paper_cache_sizes)
    ?(methods = Recovery.all_methods) ?(progress = no_progress)
    ?(domains = Config.default.Config.domains) () =
  (* Phase 1: one build per cache size, fanned across domains. *)
  let builds =
    fan ~domains
      (fun cache_mb ->
        serial progress (Printf.sprintf "fig2: cache %d MB (scale 1/%d)" cache_mb scale);
        let setup = Experiment.paper_setup ~scale ~cache_mb () in
        let t0 = Unix.gettimeofday () in
        let run = Experiment.build ?cache setup in
        (cache_mb, setup, run, Unix.gettimeofday () -. t0))
      cache_sizes
  in
  (* Phase 2: every (cache size, method) recovery is independent — the
     crash image is copied before recovery mutates anything and the oracle
     is sealed — so the full grid fans out flat. *)
  let tasks =
    List.concat_map (fun (cache_mb, _, run, _) -> List.map (fun m -> (cache_mb, run, m)) methods)
      builds
  in
  let timed =
    fan ~domains
      (fun (cache_mb, run, m) ->
        let t0 = Unix.gettimeofday () in
        let recovered, _engine, stats = Experiment.recover_verified run m in
        let wall = Unix.gettimeofday () -. t0 in
        let digest =
          (Experiment.store_digest recovered, Client_sched.logical_digest recovered)
        in
        (cache_mb, m, stats, wall, digest))
      tasks
  in
  List.map
    (fun (cache_mb, setup, run, build_wall_s) ->
      let mine = List.filter (fun (mb, _, _, _, _) -> mb = cache_mb) timed in
      let results = List.map (fun (_, m, s, _, _) -> (m, s)) mine in
      (* Δ/BW analysis counts come from any DPT-building method's stats. *)
      let counting =
        match List.find_opt (fun (m, _) -> m = Recovery.Log1) results with
        | Some (_, s) -> s
        | None -> snd (List.hd results)
      in
      {
        cache_mb;
        pool_pages = setup.Experiment.config.Config.pool_pages;
        db_pages = run.Experiment.db_pages;
        dirty_pct = 100.0 *. run.Experiment.dirty_fraction;
        deltas_seen = counting.Rs.deltas_seen;
        bws_seen = counting.Rs.bws_seen;
        methods = results;
        build_wall_s;
        method_walls = List.map (fun (_, m, _, w, _) -> (m, w)) mine;
        digests = List.map (fun (_, m, _, _, d) -> (m, d)) mine;
      })
    builds

let method_columns cells =
  match cells with [] -> [] | cell :: _ -> List.map fst cell.methods

let fig2a cells =
  let methods = method_columns cells in
  let header = "Cache (MB)" :: List.map Recovery.method_to_string methods in
  let rows =
    List.map
      (fun cell ->
        string_of_int cell.cache_mb
        :: List.map (fun m -> Report.ms (redo_ms_of cell m)) methods)
      cells
  in
  Report.table
    ~title:
      "Figure 2(a) — redo recovery time (simulated ms) vs cache size\n\
       (paper: Log1~SQL1; prefetch helps more at larger caches; only Log0 is\n\
       insensitive to cache growth)"
    ~header ~rows ()

let phase_table cells =
  let methods = method_columns cells in
  let header =
    [ "Cache (MB)"; "Method"; "analysis"; "redo"; "undo"; "total (ms)" ]
  in
  let rows =
    List.concat_map
      (fun cell ->
        List.map
          (fun m ->
            let s = stats_of cell m in
            [
              string_of_int cell.cache_mb;
              Recovery.method_to_string m;
              Report.ms (Rs.analysis_ms s);
              Report.ms (Rs.redo_ms s);
              Report.ms (Rs.undo_ms s);
              Report.ms (Rs.total_ms s);
            ])
          methods)
      cells
  in
  Report.table
    ~title:
      "Per-phase breakdown — simulated ms spent in analysis / redo / undo\n\
       (redo dominates everywhere; analysis differences separate the DPT\n\
       construction costs of §3 vs §4)"
    ~header ~rows ()

let fig2b cells =
  let header = [ "Cache (MB)"; "dirty % of cache"; "DPT size"; "cache pages"; "db pages" ] in
  let rows =
    List.map
      (fun cell ->
        let dpt =
          match List.find_opt (fun (m, _) -> m = Recovery.Log1) cell.methods with
          | Some (_, s) -> s.Rs.dpt_size
          | None -> 0
        in
        [
          string_of_int cell.cache_mb;
          Report.pct cell.dirty_pct;
          string_of_int dpt;
          string_of_int cell.pool_pages;
          string_of_int cell.db_pages;
        ])
      cells
  in
  Report.table
    ~title:
      "Figure 2(b) — dirty part of the cache at crash (%)\n\
       (paper: ~30% at 64MB falling to ~10% at 2048MB)"
    ~header ~rows ()

let fig2c cells =
  let header = [ "Cache (MB)"; "Δ records"; "BW records"; "Δ/BW" ] in
  let rows =
    List.map
      (fun cell ->
        [
          string_of_int cell.cache_mb;
          string_of_int cell.deltas_seen;
          string_of_int cell.bws_seen;
          (if cell.bws_seen = 0 then "-"
           else Printf.sprintf "%.2f" (float_of_int cell.deltas_seen /. float_of_int cell.bws_seen));
        ])
      cells
  in
  Report.table
    ~title:
      "Figure 2(c) — Δ- and BW-log records seen by the analysis pass\n\
       (paper: Δ ≤ 1.5 × BW up to 1024MB; some Δ records carry only dirty pages)"
    ~header ~rows ()

let pct_drop a b = 100.0 *. (a -. b) /. a

let sec53 cells =
  let find mb = List.find_opt (fun c -> c.cache_mb = mb) cells in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "Section 5.3 headline claims — paper vs this reproduction\n";
  let claim name paper measured =
    Buffer.add_string buf (Printf.sprintf "  %-52s paper: %-14s measured: %s\n" name paper measured)
  in
  (match find 512 with
  | Some c ->
      claim "DPT drops logical redo time (Log0→Log1, 512MB)" "65%"
        (Printf.sprintf "%.0f%%" (pct_drop (redo_ms_of c Recovery.Log0) (redo_ms_of c Recovery.Log1)));
      claim "prefetch drops a further (Log1→Log2, 512MB)" "20%"
        (Printf.sprintf "%.0f%%" (pct_drop (redo_ms_of c Recovery.Log1) (redo_ms_of c Recovery.Log2)))
  | None -> ());
  let ratios m1 m2 =
    List.map
      (fun c -> Printf.sprintf "%d:%.2f" c.cache_mb (redo_ms_of c m1 /. redo_ms_of c m2))
      cells
    |> String.concat " "
  in
  claim "Log1 / SQL1 redo time" "~1.0 everywhere" (ratios Recovery.Log1 Recovery.Sql1);
  claim "Log2 / SQL2 redo time" "<=1.15" (ratios Recovery.Log2 Recovery.Sql2);
  let io_cut =
    List.map
      (fun c ->
        let l0 = (stats_of c Recovery.Log0).Rs.data_page_fetches in
        let l1 = (stats_of c Recovery.Log1).Rs.data_page_fetches in
        Printf.sprintf "%d:%.0f%%" c.cache_mb (pct_drop (float_of_int l0) (float_of_int l1)))
      cells
    |> String.concat " "
  in
  claim "DPT cuts data-page IOs" "93% @64MB … 8% @2048MB" io_cut;
  let index_wait =
    List.map
      (fun c ->
        let s = stats_of c Recovery.Log1 in
        Printf.sprintf "%d:%.0f%%" c.cache_mb (100.0 *. s.Rs.index_stall_us /. s.Rs.redo_us))
      cells
    |> String.concat " "
  in
  claim "index-page waits, share of Log1 redo" "16% @64MB … 2% @2048MB" index_wait;
  Buffer.contents buf

let costmodel cells =
  let header =
    [
      "Cache (MB)";
      "Log0 pred";
      "Log0 meas";
      "SQL1 pred";
      "SQL1 meas";
      "Log1 pred";
      "Log1 meas";
    ]
  in
  let rows =
    List.map
      (fun c ->
        let log0 = stats_of c Recovery.Log0 in
        let sql1 = stats_of c Recovery.Sql1 in
        let log1 = stats_of c Recovery.Log1 in
        [
          string_of_int c.cache_mb;
          (* Eq (1): every redo log record costs a page fetch. *)
          string_of_int log0.Rs.redo_candidates;
          string_of_int log0.Rs.data_page_fetches;
          (* Eq (2): the DPT size. *)
          string_of_int sql1.Rs.dpt_size;
          string_of_int sql1.Rs.data_page_fetches;
          (* Eq (3): DPT size plus the log tail. *)
          string_of_int (log1.Rs.dpt_size + log1.Rs.tail_records);
          string_of_int log1.Rs.data_page_fetches;
        ])
      cells
  in
  Report.table
    ~title:
      "Appendix B — cost model, predicted vs measured data-page fetches\n\
       Eq(1) COST(Log0) ~ #log records;  Eq(2) COST(SQL1) ~ DPT;  Eq(3)\n\
       COST(Log1) ~ DPT + tail.  (Predictions ignore cache hits on repeated\n\
       pages, so measured <= predicted except under page swaps, as in the\n\
       paper.)"
    ~header ~rows ()

type fig3_cell = { multiplier : int; methods3 : (Recovery.method_ * Rs.t) list }

let run_fig3 ?cache ?(scale = 64) ?(cache_mb = 512) ?(multipliers = [ 1; 5; 10 ])
    ?(progress = no_progress) ?(domains = Config.default.Config.domains) () =
  fan ~domains
    (fun multiplier ->
      serial progress
        (Printf.sprintf "fig3: checkpoint interval %dx (scale 1/%d)" multiplier scale);
      let setup = Experiment.paper_setup ~scale ~cache_mb ~ckpt_multiplier:multiplier () in
      let run = Experiment.build ?cache setup in
      { multiplier; methods3 = Experiment.run_all run Recovery.all_methods })
    multipliers

let fig3 cells =
  let methods = match cells with [] -> [] | c :: _ -> List.map fst c.methods3 in
  let header = "ckpt interval" :: List.map Recovery.method_to_string methods in
  let rows =
    List.map
      (fun c ->
        Printf.sprintf "%dx" c.multiplier
        :: List.map (fun m -> Report.ms (Rs.redo_ms (List.assoc m c.methods3))) methods)
      cells
  in
  Report.table
    ~title:
      "Figure 3 (Appendix C) — redo time (simulated ms) vs checkpoint interval\n\
       (paper: Log0 grows linearly; Log1/SQL1 roughly double at 5x; Log2/SQL2\n\
       grow only ~1.2x per step)"
    ~header ~rows ()

type appd_row = {
  label : string;
  dpt_size : int;
  redo_ms : float;
  data_fetches : int;
  delta_records : int;
  delta_kb : float;
}

let run_appd ?cache ?(scale = 64) ?(cache_mb = 512) ?(progress = no_progress) () =
  let logical_variant label dpt_mode =
    progress (Printf.sprintf "appd: %s (scale 1/%d)" label scale);
    let setup = Experiment.paper_setup ~scale ~cache_mb ~dpt_mode () in
    let run = Experiment.build ?cache setup in
    let stats = Experiment.run_method run Recovery.Log1 in
    {
      label;
      dpt_size = stats.Rs.dpt_size;
      redo_ms = Rs.redo_ms stats;
      data_fetches = stats.Rs.data_page_fetches;
      delta_records = run.Experiment.deltas_total;
      delta_kb = float_of_int run.Experiment.delta_bytes /. 1024.0;
    }
  in
  let aries () =
    progress (Printf.sprintf "appd: aries-checkpointing (scale 1/%d)" scale);
    let setup =
      Experiment.paper_setup ~scale ~cache_mb ~checkpoint_mode:Config.Aries_fuzzy ()
    in
    let run = Experiment.build ?cache setup in
    let stats = Experiment.run_method run Recovery.Aries_ckpt in
    {
      label = "ARIES-ckpt (physiological, §3.1)";
      dpt_size = stats.Rs.dpt_size;
      redo_ms = Rs.redo_ms stats;
      data_fetches = stats.Rs.data_page_fetches;
      delta_records = run.Experiment.deltas_total;
      delta_kb = float_of_int run.Experiment.delta_bytes /. 1024.0;
    }
  in
  [
    logical_variant "standard Δ (§4.1)" Config.Standard;
    logical_variant "perfect DPT (D.1: +DirtyLSNs)" Config.Perfect;
    logical_variant "reduced logging (D.2: -FW/-FirstDirty)" Config.Reduced;
    aries ();
  ]

type split_row = {
  layout : string;
  smethod : Recovery.method_;
  s_analysis_ms : float;
  s_redo_ms : float;
  s_log_pages : int;
  tc_log_kb : float;
  dc_log_kb : float;
}

let run_split ?cache ?(scale = 64) ?(cache_mb = 512) ?(progress = no_progress) () =
  let module Ci = Deut_core.Crash_image in
  let module Log = Deut_wal.Log_manager in
  List.concat_map
    (fun layout ->
      progress
        (Printf.sprintf "split: %s layout (scale 1/%d)" (Config.log_layout_to_string layout)
           scale);
      let setup = Experiment.paper_setup ~scale ~cache_mb () in
      let setup =
        { setup with Experiment.config = { setup.Experiment.config with Config.log_layout = layout } }
      in
      let run = Experiment.build ?cache setup in
      let image = run.Experiment.image in
      let retained log = float_of_int (Log.end_lsn log - Log.base_lsn log) /. 1024.0 in
      let tc_kb = retained image.Ci.log in
      let dc_kb =
        match image.Ci.dc_log with Some l -> retained l | None -> tc_kb
      in
      List.map
        (fun m ->
          let stats = Experiment.run_method run m in
          {
            layout = Config.log_layout_to_string layout;
            smethod = m;
            s_analysis_ms = Rs.analysis_ms stats;
            s_redo_ms = Rs.redo_ms stats;
            s_log_pages = stats.Rs.log_pages_read;
            tc_log_kb = tc_kb;
            dc_log_kb = dc_kb;
          })
        [ Recovery.Log1; Recovery.Log2 ])
    [ Config.Integrated; Config.Split ]

let split_table rows =
  let header =
    [
      "layout";
      "method";
      "analysis (ms)";
      "redo (ms)";
      "log pages read";
      "TC log KiB";
      "DC log KiB";
    ]
  in
  let body =
    List.map
      (fun r ->
        [
          r.layout;
          Recovery.method_to_string r.smethod;
          Report.ms r.s_analysis_ms;
          Report.ms r.s_redo_ms;
          string_of_int r.s_log_pages;
          Report.f1 r.tc_log_kb;
          Report.f1 r.dc_log_kb;
        ])
      rows
  in
  Report.table
    ~title:
      "Split-log layout (§4.2) vs the paper's integrated prototype (§5.1)\n\
       With its own log, the DC redo/analysis pass scans only SMO and Δ\n\
       records — \"a much smaller log than that needed for the analysis pass\n\
       with integrated recovery\"."
    ~header ~rows:body ()

let appd rows =
  let header =
    [ "variant"; "DPT size"; "Log1 redo (ms)"; "data fetches"; "Δ records"; "Δ bytes (KiB)" ]
  in
  let body =
    List.map
      (fun r ->
        [
          r.label;
          string_of_int r.dpt_size;
          Report.ms r.redo_ms;
          string_of_int r.data_fetches;
          string_of_int r.delta_records;
          Report.f1 r.delta_kb;
        ])
      rows
  in
  Report.table
    ~title:
      "Appendix D — the DC-logging spectrum (512MB-equivalent cache)\n\
       More DC logging → more accurate DPT → faster redo; Reduced logs least\n\
       but keeps the most pages; Perfect matches SQL Server's DPT exactly."
    ~header ~rows:body ()

(* ---------- parallel redo sweep ---------- *)

module Es = Deut_core.Engine_stats

type workers_cell = {
  w_cache_mb : int;
  w_method : Recovery.method_;
  w_count : int;
  w_stats : Rs.t;
  w_engine : Es.t;
}

let run_workers ?cache ?(scale = 64) ?(cache_sizes = [ 64; 512 ]) ?(workers = [ 1; 2; 4; 8 ])
    ?(methods = Recovery.all_methods) ?(progress = no_progress)
    ?(domains = Config.default.Config.domains) () =
  let builds =
    fan ~domains
      (fun cache_mb ->
        serial progress (Printf.sprintf "workers: cache %d MB (scale 1/%d)" cache_mb scale);
        let setup = Experiment.paper_setup ~scale ~cache_mb () in
        (cache_mb, Experiment.build ?cache setup))
      cache_sizes
  in
  let tasks =
    List.concat_map
      (fun (cache_mb, run) ->
        List.concat_map (fun m -> List.map (fun w -> (cache_mb, run, m, w)) workers) methods)
      builds
  in
  fan ~domains
    (fun (cache_mb, run, m, w) ->
      let _db, engine, stats = Experiment.recover_verified ~workers:w run m in
      { w_cache_mb = cache_mb; w_method = m; w_count = w; w_stats = stats; w_engine = engine })
    tasks

let workers_table cells =
  let base cell =
    (* The workers=1 row of the same (cache, method) anchors the speedup. *)
    match
      List.find_opt
        (fun c -> c.w_cache_mb = cell.w_cache_mb && c.w_method = cell.w_method && c.w_count = 1)
        cells
    with
    | Some c -> Rs.redo_ms c.w_stats
    | None -> Rs.redo_ms cell.w_stats
  in
  let header =
    [
      "Cache (MB)";
      "Method";
      "workers";
      "redo (ms)";
      "speedup";
      "stalls";
      "stall p50/p95 (µs)";
      "io p50/p95 (µs)";
    ]
  in
  let rows =
    List.map
      (fun cell ->
        let e = cell.w_engine in
        [
          string_of_int cell.w_cache_mb;
          Recovery.method_to_string cell.w_method;
          string_of_int cell.w_count;
          Report.ms (Rs.redo_ms cell.w_stats);
          Printf.sprintf "%.2fx" (base cell /. Rs.redo_ms cell.w_stats);
          string_of_int cell.w_stats.Rs.stalls;
          Printf.sprintf "%.0f / %.0f" e.Es.stall_wait.Es.p50_us e.Es.stall_wait.Es.p95_us;
          Printf.sprintf "%.0f / %.0f" e.Es.data_io.Es.p50_us e.Es.data_io.Es.p95_us;
        ])
      cells
  in
  Report.table
    ~title:
      "Parallel redo — simulated workers replaying the partitioned redo range\n\
       (application stays in log order, so recovered state and apply counts are\n\
       identical at every worker count; workers overlap CPU and fetch stalls on\n\
       the shared disk, so the speedup ceiling is set by how IO-bound redo is;\n\
       percentiles are histogram bucket upper bounds)"
    ~header ~rows ()

type concurrency_cell = {
  c_clients : int;
  c_group_commit : int;
  c_stats : Client_sched.stats;
  c_digest : string;
}

let run_concurrency ?(scale = 64) ?(cache_mb = 256) ?(clients = [ 1; 2; 4; 8 ])
    ?(group_commits = [ 1; 4 ]) ?(txns = 300) ?(progress = no_progress)
    ?(domains = Config.default.Config.domains) () =
  let coords = List.concat_map (fun gc -> List.map (fun n -> (gc, n)) clients) group_commits in
  let cells =
    fan ~domains
      (fun (gc, n) ->
            serial progress
              (Printf.sprintf "concurrency: %d client%s, group_commit %d (scale 1/%d)" n
                 (if n = 1 then "" else "s")
                 gc scale);
            let setup = Experiment.paper_setup ~scale ~cache_mb () in
            let config =
              {
                setup.Experiment.config with
                Config.locking = true;
                group_commit = gc;
                clients = n;
              }
            in
            (* A smaller table than the crash experiments (the load dominates
               otherwise) and a seed shared by every cell: the committed
               stream — hence the final digest — must not depend on the
               sweep coordinates. *)
            let spec =
              {
                setup.Experiment.spec with
                Workload.rows = Stdlib.max 2_000 (setup.Experiment.spec.Workload.rows / 16);
                seed = 1903;
              }
            in
            let driver = Driver.create ~config spec in
            let sched = Driver.run_concurrent driver ~txns in
            Client_sched.flush sched;
            (match Driver.verify_recovered driver (Driver.db driver) with
            | Ok () -> ()
            | Error msg -> failwith ("concurrency sweep: oracle mismatch: " ^ msg));
            {
              c_clients = n;
              c_group_commit = gc;
              c_stats = Client_sched.stats sched;
              c_digest = Client_sched.logical_digest (Driver.db driver);
            })
      coords
  in
  (* The determinism contract, enforced on every sweep: same seed ⇒ same
     committed state at any client count and any commit batching. *)
  (match cells with
  | [] -> ()
  | first :: rest ->
      List.iter
        (fun c ->
          if c.c_digest <> first.c_digest then
            failwith
              (Printf.sprintf
                 "concurrency sweep: digest diverged — %d clients/gc=%d gave %s, %d clients/gc=%d gave %s"
                 first.c_clients first.c_group_commit first.c_digest c.c_clients
                 c.c_group_commit c.c_digest))
        rest);
  cells

let concurrency_table cells =
  let header =
    [
      "clients";
      "group_commit";
      "txns";
      "makespan (ms)";
      "tput (txn/s)";
      "aborts";
      "abort %";
      "wounds";
      "conflicts";
      "commit p50/p95 (µs)";
      "digest";
    ]
  in
  let rows =
    List.map
      (fun cell ->
        let s = cell.c_stats in
        [
          string_of_int cell.c_clients;
          string_of_int cell.c_group_commit;
          string_of_int s.Client_sched.committed_txns;
          Report.ms s.Client_sched.makespan_ms;
          Printf.sprintf "%.0f" s.Client_sched.throughput_tps;
          string_of_int s.Client_sched.aborts;
          Printf.sprintf "%.1f" (100.0 *. s.Client_sched.abort_rate);
          string_of_int s.Client_sched.wounds;
          string_of_int s.Client_sched.conflicts;
          Printf.sprintf "%.0f / %.0f" s.Client_sched.commit_p50_us s.Client_sched.commit_p95_us;
          String.sub cell.c_digest 0 12;
        ])
      cells
  in
  Report.table
    ~title:
      "Concurrency — simulated clients interleaving transactions on the virtual clock\n\
       (descriptors are drawn in ticket order and commits gated to ticket order, so\n\
       the final digest is identical in every row; group commit batches across\n\
       clients, trading commit latency for fewer log forces; percentiles are\n\
       histogram bucket upper bounds)"
    ~header ~rows ()

(* ---------- sharded data components ---------- *)

type sharding_crash = {
  sc_shard : int;  (* which shard was crashed *)
  sc_sibling_reads : int;  (* reads served by siblings while it was down *)
  sc_recover_ms : float;  (* virtual time for Db.recover_shard *)
}

type sharding_cell = {
  sh_shards : int;
  sh_clients : int;
  sh_stats : Client_sched.stats;
  sh_digest : string;
  sh_net_msgs : int;
  sh_crash : sharding_crash option;
}

let run_sharding ?(scale = 64) ?(cache_mb = 256) ?(shards = [ 1; 2; 4; 8 ])
    ?(clients = [ 4; 8 ]) ?(txns = 300) ?(net = false) ?(progress = no_progress)
    ?(domains = Config.default.Config.domains) () =
  let coords =
    List.concat_map (fun s -> List.map (fun c -> (s, c)) clients) shards
  in
  let cells =
    fan ~domains
      (fun (n_shards, n_clients) ->
            serial progress
              (Printf.sprintf "sharding: %d shard%s, %d client%s%s (scale 1/%d)" n_shards
                 (if n_shards = 1 then "" else "s")
                 n_clients
                 (if n_clients = 1 then "" else "s")
                 (if net then ", networked" else "")
                 scale);
            let setup = Experiment.paper_setup ~scale ~cache_mb () in
            let config =
              {
                setup.Experiment.config with
                Config.locking = true;
                clients = n_clients;
                shards = n_shards;
                net;
              }
            in
            (* Same sizing and seed discipline as the concurrency sweep:
               the committed stream must not depend on the coordinates. *)
            let spec =
              {
                setup.Experiment.spec with
                Workload.rows = Stdlib.max 2_000 (setup.Experiment.spec.Workload.rows / 16);
                seed = 1903;
              }
            in
            let driver = Driver.create ~config spec in
            let sched = Driver.run_concurrent driver ~txns in
            Client_sched.flush sched;
            let db = Driver.db driver in
            (* Snapshot before the availability scenario below: verify
               reads and the per-shard crash/recovery advance the virtual
               clock, and the makespan must cover the workload alone. *)
            let stats = Client_sched.stats sched in
            (match Driver.verify_recovered driver db with
            | Ok () -> ()
            | Error msg -> failwith ("sharding sweep: oracle mismatch: " ^ msg));
            let digest = Client_sched.logical_digest db in
            (* Availability scenario: crash the last shard on the live,
               quiesced engine, serve sibling reads while it is down,
               recover it alone, and require the state unperturbed. *)
            let crash =
              if n_shards <= 1 then None
              else begin
                let down = n_shards - 1 in
                let t0 = Deut_core.Db.now_ms db in
                Deut_core.Db.crash_shard db ~shard:down;
                let served = ref 0 in
                let rows = spec.Workload.rows in
                for i = 0 to 49 do
                  let key = (i * n_shards) mod rows in
                  (* [key mod shards = 0], never the crashed stripe. *)
                  if Option.is_some (Deut_core.Db.read db ~table:1 ~key) then incr served
                done;
                Deut_core.Db.recover_shard db ~shard:down;
                let recover_ms = Deut_core.Db.now_ms db -. t0 in
                let digest' = Client_sched.logical_digest db in
                if digest' <> digest then
                  failwith
                    (Printf.sprintf
                       "sharding sweep: per-shard recovery perturbed state at %d shards — %s vs %s"
                       n_shards digest digest');
                Some { sc_shard = down; sc_sibling_reads = !served; sc_recover_ms = recover_ms }
              end
            in
            let net_msgs =
              Deut_obs.Metrics.read_int
                (Deut_core.Engine.metrics (Deut_core.Db.engine db))
                "net.messages"
            in
            {
              sh_shards = n_shards;
              sh_clients = n_clients;
              sh_stats = stats;
              sh_digest = digest;
              sh_net_msgs = net_msgs;
              sh_crash = crash;
            })
      coords
  in
  (* Shard transparency, enforced on every sweep: same seed ⇒ identical
     committed state at any shard count, any client count, any transport. *)
  (match cells with
  | [] -> ()
  | first :: rest ->
      List.iter
        (fun c ->
          if c.sh_digest <> first.sh_digest then
            failwith
              (Printf.sprintf
                 "sharding sweep: digest diverged — %d shards/%d clients gave %s, %d shards/%d clients gave %s"
                 first.sh_shards first.sh_clients first.sh_digest c.sh_shards c.sh_clients
                 c.sh_digest))
        rest);
  cells

let sharding_table cells =
  let header =
    [
      "shards";
      "clients";
      "txns";
      "makespan (ms)";
      "tput (txn/s)";
      "aborts";
      "net msgs";
      "crash: reads while down";
      "recover shard (ms)";
      "digest";
    ]
  in
  let rows =
    List.map
      (fun cell ->
        let s = cell.sh_stats in
        [
          string_of_int cell.sh_shards;
          string_of_int cell.sh_clients;
          string_of_int s.Client_sched.committed_txns;
          Report.ms s.Client_sched.makespan_ms;
          Printf.sprintf "%.0f" s.Client_sched.throughput_tps;
          string_of_int s.Client_sched.aborts;
          string_of_int cell.sh_net_msgs;
          (match cell.sh_crash with
          | Some c -> string_of_int c.sc_sibling_reads
          | None -> "-");
          (match cell.sh_crash with
          | Some c -> Printf.sprintf "%.2f" c.sc_recover_ms
          | None -> "-");
          String.sub cell.sh_digest 0 12;
        ])
      cells
  in
  Report.table
    ~title:
      "Sharded data components — one TC driving N DCs through the Dc_access\n\
       protocol (§4.1), key space striped [key mod shards], each shard with its\n\
       own store, cache and DC log (split layout); the digest is identical in\n\
       every row (shard transparency), and each multi-shard cell crashes one\n\
       shard on the live engine, serves sibling reads while it is down, and\n\
       recovers it alone from its DC log plus its stripe of the TC log"
    ~header ~rows ()

(* ---------- log archiving ---------- *)

module Logm = Deut_wal.Log_manager
module Arch = Deut_wal.Archive

type archiving_round = {
  ar_round : int;
  ar_logged_kb : float;
  ar_live_kb : float;
  ar_archive_kb : float;
  ar_segments : int;
}

type archiving_cell = {
  a_archive : bool;
  a_rounds : archiving_round list;
  a_digest : string;
  a_methods : (Recovery.method_ * Rs.t) list;
}

let run_archiving ?(scale = 64) ?(cache_mb = 256) ?(clients = 4) ?(rounds = 6)
    ?(txns_per_round = 100) ?(progress = no_progress) () =
  let module Db = Deut_core.Db in
  let module Engine = Deut_core.Engine in
  let cells =
    List.map
      (fun archive ->
        progress
          (Printf.sprintf "archiving: %s, %d rounds x %d txns, %d clients (scale 1/%d)"
             (if archive then "on" else "off")
             rounds txns_per_round clients scale);
        let setup = Experiment.paper_setup ~scale ~cache_mb () in
        let config =
          {
            setup.Experiment.config with
            Config.locking = true;
            clients;
            archive;
            archive_min_bytes = 0;
          }
        in
        (* Same sizing and seed discipline as the concurrency sweep: the
           committed stream must not depend on whether archiving runs. *)
        let spec =
          {
            setup.Experiment.spec with
            Workload.rows = Stdlib.max 2_000 (setup.Experiment.spec.Workload.rows / 16);
            seed = 1903;
          }
        in
        let driver = Driver.create ~config spec in
        let db = Driver.db driver in
        let log = (Db.engine db).Engine.log in
        let round_row i =
          let archive_bytes, segments =
            match Logm.archive log with
            | Some a -> (Arch.sealed_bytes a, Arch.segment_count a)
            | None -> (0, 0)
          in
          (* The durability contract, checked on every round of the long
             run: sealed coverage meets the live base exactly — no gap, no
             unarchived drop. *)
          (match Logm.archive log with
          | Some a when Arch.segment_count a > 0 ->
              if Arch.covered_upto a <> Logm.base_lsn log then
                failwith
                  (Printf.sprintf
                     "archiving sweep: coverage gap at round %d — sealed to %d, live base %d" i
                     (Arch.covered_upto a) (Logm.base_lsn log))
          | _ -> ());
          {
            ar_round = i;
            ar_logged_kb = float_of_int (Logm.end_lsn log) /. 1024.0;
            ar_live_kb = float_of_int (Logm.end_lsn log - Logm.base_lsn log) /. 1024.0;
            ar_archive_kb = float_of_int archive_bytes /. 1024.0;
            ar_segments = segments;
          }
        in
        let rows = ref [] in
        for i = 1 to rounds do
          let sched = Driver.run_concurrent driver ~txns:txns_per_round in
          Client_sched.flush sched;
          Driver.checkpoint driver;
          rows := round_row i :: !rows
        done;
        (match Driver.verify_recovered driver db with
        | Ok () -> ()
        | Error msg -> failwith ("archiving sweep: oracle mismatch before crash: " ^ msg));
        let digest = Client_sched.logical_digest db in
        let image = Driver.crash driver in
        let methods =
          List.map
            (fun m ->
              let recovered, stats = Db.recover image m in
              (match Driver.verify_recovered driver recovered with
              | Ok () -> ()
              | Error msg ->
                  failwith
                    (Printf.sprintf
                       "archiving sweep: %s recovered wrong state from the %s log: %s"
                       (Recovery.method_to_string m)
                       (if archive then "archived+truncated" else "compacted")
                       msg));
              (m, stats))
            Recovery.all_methods
        in
        { a_archive = archive; a_rounds = List.rev !rows; a_digest = digest; a_methods = methods })
      [ false; true ]
  in
  (match cells with
  | [ off; on ] ->
      if off.a_digest <> on.a_digest then
        failwith
          (Printf.sprintf "archiving sweep: digest diverged — archive off %s vs on %s"
             off.a_digest on.a_digest);
      let last c = List.nth c.a_rounds (List.length c.a_rounds - 1) in
      let fin = last on in
      if fin.ar_segments = 0 then failwith "archiving sweep: no segment was ever sealed";
      if fin.ar_live_kb >= fin.ar_logged_kb then
        failwith
          (Printf.sprintf "archiving sweep: live log not bounded — %.1f KiB live of %.1f logged"
             fin.ar_live_kb fin.ar_logged_kb)
  | _ -> ());
  cells

let archiving_table cells =
  let header =
    [ "archive"; "round"; "logged KiB"; "live KiB"; "archived KiB"; "segments" ]
  in
  let rows =
    List.concat_map
      (fun cell ->
        List.map
          (fun r ->
            [
              (if cell.a_archive then "on" else "off");
              string_of_int r.ar_round;
              Report.f1 r.ar_logged_kb;
              Report.f1 r.ar_live_kb;
              Report.f1 r.ar_archive_kb;
              string_of_int r.ar_segments;
            ])
          cell.a_rounds)
      cells
  in
  let growth = Report.table
    ~title:
      "Log archiving — the live log stays bounded as logged bytes grow\n\
       (each round: concurrent transactions, then checkpoint + archive cut;\n\
       sealed-segment coverage meets the live base on every round — the\n\
       durability contract of DESIGN.md §8; final digests match with\n\
       archiving on and off)"
    ~header ~rows ()
  in
  let methods = match cells with c :: _ -> List.map fst c.a_methods | [] -> [] in
  let rheader =
    "method"
    :: List.concat_map
         (fun cell ->
           let tag = if cell.a_archive then "on" else "off" in
           [ "total ms (" ^ tag ^ ")"; "log pages (" ^ tag ^ ")" ])
         cells
  in
  let rrows =
    List.map
      (fun m ->
        Recovery.method_to_string m
        :: List.concat_map
             (fun cell ->
               let s = List.assoc m cell.a_methods in
               [ Report.ms (Rs.total_ms s); string_of_int s.Rs.log_pages_read ])
             cells)
      methods
  in
  growth
  ^ "\n"
  ^ Report.table
      ~title:
        "Restart from the truncated log + archive vs the compacted log\n\
         (every recovery oracle-verified; archived pages are charged to the\n\
         archive device and counted as log pages read)"
      ~header:rheader ~rows:rrows ()

(* ---------- prefetch tuning (trace-mined) ---------- *)

module Analysis = Deut_obs.Analysis
module Tuner = Deut_obs.Tuner
module Db = Deut_core.Db
module Engine = Deut_core.Engine
module Trace = Deut_obs.Trace

type tuning_cell = {
  t_cache_mb : int;
  t_method : Recovery.method_;
  t_outcomes : Tuner.outcome list;
  t_default : Tuner.outcome;
}

let candidate_config base (cand : Tuner.candidate) =
  let source =
    match Config.prefetch_source_of_string cand.Tuner.source with
    | Some s -> s
    | None -> invalid_arg ("run_tuning: unknown prefetch source " ^ cand.Tuner.source)
  in
  {
    base with
    Config.prefetch_window = cand.Tuner.window;
    prefetch_chunk = cand.Tuner.chunk;
    prefetch_lookahead = cand.Tuner.lookahead;
    prefetch_source = source;
  }

(* One traced, oracle-verified recovery; fails loudly rather than profiling
   a truncated trace or a wrong recovery. *)
let profiled_recovery run method_ config ~meta =
  let db, stats = Db.recover ~config run.Experiment.image method_ in
  (match Driver.verify_recovered run.Experiment.driver db with
  | Ok () -> ()
  | Error msg ->
      failwith
        (Printf.sprintf "tuning recovery with %s produced wrong state: %s"
           (Recovery.method_to_string method_) msg));
  let tr =
    match Engine.trace (Db.engine db) with
    | Some tr -> tr
    | None -> failwith "run_tuning: tracing was not enabled"
  in
  if Trace.dropped tr > 0 then
    failwith
      (Printf.sprintf "run_tuning: trace ring overflowed; trace_capacity of %d would suffice"
         (Trace.emitted tr));
  (Analysis.of_trace ~meta tr, stats)

let run_tuning ?cache ?(scale = 64) ?(cache_sizes = [ 1024 ]) ?(methods = [ Recovery.Log2; Recovery.Sql2 ])
    ?(windows = [ 8; 16; 32; 64 ]) ?(chunks = [ 4; 8; 16; 32 ])
    ?(lookaheads = [ 128; 256; 512; 1024 ]) ?(sources = [ Config.Pf_list; Config.Dpt_order ])
    ?(progress = no_progress) () =
  List.concat_map
    (fun cache_mb ->
      progress (Printf.sprintf "tuning: cache %d MB (scale 1/%d)" cache_mb scale);
      let setup = Experiment.paper_setup ~scale ~cache_mb () in
      let run = Experiment.build ?cache setup in
      let base = setup.Experiment.config in
      let default_cand =
        {
          Tuner.window = base.Config.prefetch_window;
          chunk = base.Config.prefetch_chunk;
          lookahead = base.Config.prefetch_lookahead;
          source = Config.prefetch_source_to_string base.Config.prefetch_source;
        }
      in
      List.map
        (fun method_ ->
          (* Only the dimension the method's prefetcher reads is swept:
             Log2's PF-driven prefetch ignores the lookahead, SQL2's
             log-driven prefetch ignores the source (Appendix A). *)
          let grid =
            match method_ with
            | Recovery.Log2 ->
                List.concat_map
                  (fun window ->
                    List.concat_map
                      (fun chunk ->
                        List.map
                          (fun source ->
                            {
                              Tuner.window;
                              chunk;
                              lookahead = default_cand.Tuner.lookahead;
                              source = Config.prefetch_source_to_string source;
                            })
                          sources)
                      chunks)
                  windows
            | _ ->
                List.concat_map
                  (fun window ->
                    List.concat_map
                      (fun chunk ->
                        List.map
                          (fun lookahead ->
                            {
                              Tuner.window;
                              chunk;
                              lookahead;
                              source = default_cand.Tuner.source;
                            })
                          lookaheads)
                      chunks)
                  windows
          in
          let grid = if List.mem default_cand grid then grid else default_cand :: grid in
          let outcomes =
            List.map
              (fun cand ->
                progress
                  (Printf.sprintf "tuning: %s %d MB %s"
                     (Recovery.method_to_string method_)
                     cache_mb
                     (Tuner.candidate_to_string cand));
                let config =
                  candidate_config
                    {
                      base with
                      Config.tracing = true;
                      trace_capacity = 1 lsl 20;
                      (* Tuning compares prefetch settings, so everything
                         else is pinned — including the env-defaulted
                         worker/client counts. *)
                      redo_workers = 1;
                      clients = 1;
                    }
                    cand
                in
                let meta =
                  [
                    ("method", Recovery.method_to_string method_);
                    ("cache_mb", string_of_int cache_mb);
                    ("candidate", Tuner.candidate_to_string cand);
                  ]
                in
                let profile, stats = profiled_recovery run method_ config ~meta in
                { Tuner.cand; profile; redo_ms = Rs.redo_ms stats })
              grid
          in
          let t_default =
            match List.find_opt (fun o -> o.Tuner.cand = default_cand) outcomes with
            | Some o -> o
            | None -> List.hd outcomes
          in
          { t_cache_mb = cache_mb; t_method = method_; t_outcomes = outcomes; t_default })
        methods)
    cache_sizes

(* ---------- instant recovery: availability vs cache size ---------- *)

type availability_cell = {
  v_cache_mb : int;
  v_ttft_ms : float;
  v_drained_ms : float;
  v_log2_total_ms : float;
  v_speedup : float;
  v_pages_ondemand : int;
  v_pages_background : int;
  v_probe_reads : int;
}

let run_availability ?cache ?(scale = 64) ?(cache_sizes = paper_cache_sizes) ?(probes = 32)
    ?(progress = no_progress) ?(domains = Config.default.Config.domains) () =
  fan ~domains
    (fun cache_mb ->
      serial progress (Printf.sprintf "availability: cache %d MB (scale 1/%d)" cache_mb scale);
      let setup = Experiment.paper_setup ~scale ~cache_mb () in
      let run = Experiment.build ?cache setup in
      let image = run.Experiment.image in
      let verify what db =
        match Driver.verify_recovered run.Experiment.driver db with
        | Ok () -> ()
        | Error msg ->
            failwith (Printf.sprintf "availability %d MB: %s: %s" cache_mb what msg)
      in
      (* Offline Log2 anchors both the time-to-full-recovery baseline and
         the determinism gate's reference digest. *)
      let db2, s2 = Db.recover image Recovery.Log2 in
      verify "Log2 baseline" db2;
      let digest2 = Client_sched.logical_digest db2 in
      (* Determinism gate: with the background redo forced to drain before
         the first client step — the [Db.recover] form — InstantLog2 must
         be byte-identical to Log2 at every cache size. *)
      let dbi, _ = Db.recover image Recovery.InstantLog2 in
      verify "drained InstantLog2" dbi;
      let digesti = Client_sched.logical_digest dbi in
      if digesti <> digest2 then
        failwith
          (Printf.sprintf
             "availability: InstantLog2 digest diverged from Log2 at %d MB — %s vs %s"
             cache_mb digesti digest2);
      (* Staged run: the engine serves probe reads from the moment it
         opens, interleaved with background drain steps on the virtual
         clock.  TTFT and drain time both come from this run's stats. *)
      let inst = Db.recover_instant image in
      let rdb = Db.instant_db inst in
      let spec = setup.Experiment.spec in
      let rng = Deut_sim.Rng.create ~seed:(spec.Workload.seed + 17) in
      let served = ref 0 in
      let draining = ref true in
      while !draining || !served < probes do
        if !served < probes then begin
          let table = 1 + Deut_sim.Rng.int rng spec.Workload.tables in
          ignore (Db.read rdb ~table ~key:(Deut_sim.Rng.int rng spec.Workload.rows));
          incr served
        end;
        if !draining then draining := Db.instant_step inst
      done;
      let si = Db.instant_finish inst in
      verify "staged InstantLog2" rdb;
      if Client_sched.logical_digest rdb <> digest2 then
        failwith
          (Printf.sprintf "availability: staged InstantLog2 digest diverged from Log2 at %d MB"
             cache_mb);
      let ttft = Rs.ttft_ms si in
      let drained = Rs.drained_ms si in
      {
        v_cache_mb = cache_mb;
        v_ttft_ms = ttft;
        v_drained_ms = drained;
        v_log2_total_ms = Rs.total_ms s2;
        v_speedup = (if ttft > 0.0 then drained /. ttft else 0.0);
        v_pages_ondemand = si.Rs.pages_ondemand;
        v_pages_background = si.Rs.pages_background;
        v_probe_reads = !served;
      })
    cache_sizes

let availability_table cells =
  let header =
    [
      "Cache (MB)";
      "open at (ms)";
      "drained (ms)";
      "Log2 total (ms)";
      "speedup";
      "pages on-demand";
      "pages background";
      "probe reads";
    ]
  in
  let rows =
    List.map
      (fun c ->
        [
          string_of_int c.v_cache_mb;
          Report.ms c.v_ttft_ms;
          Report.ms c.v_drained_ms;
          Report.ms c.v_log2_total_ms;
          Printf.sprintf "%.1fx" c.v_speedup;
          string_of_int c.v_pages_ondemand;
          string_of_int c.v_pages_background;
          string_of_int c.v_probe_reads;
        ])
      cells
  in
  Report.table
    ~title:
      "Instant recovery — time to first transaction vs time to full recovery\n\
       (InstantLog2 opens right after analysis + log scan — history\n\
        indexing, redo and loser rollback are all demand-driven — and redoes\n\
       pages on demand; speedup = drained/open; every cell's digest is checked\n\
       byte-identical to offline Log2 before timings are reported)"
    ~header ~rows ()

let tuning_table cells =
  let buf = Buffer.create 4096 in
  List.iter
    (fun cell ->
      let default = cell.t_default.Tuner.cand in
      Buffer.add_string buf
        (Printf.sprintf "=== prefetch tuning: %s, cache %d MB ===\n"
           (Recovery.method_to_string cell.t_method)
           cell.t_cache_mb);
      Buffer.add_string buf (Tuner.table ~default cell.t_outcomes);
      (match Tuner.best cell.t_outcomes with
      | Some best ->
          let d = cell.t_default in
          Buffer.add_string buf
            (Printf.sprintf "recommendation: %s — redo %.3f ms vs default %.3f ms (%+.1f%%)\n"
               (Tuner.candidate_to_string best.Tuner.cand)
               best.Tuner.redo_ms d.Tuner.redo_ms
               (if d.Tuner.redo_ms > 0.0 then
                  100.0 *. (best.Tuner.redo_ms -. d.Tuner.redo_ms) /. d.Tuner.redo_ms
                else 0.0))
      | None -> ());
      Buffer.add_char buf '\n')
    cells;
  Buffer.contents buf
