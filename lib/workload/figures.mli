(** Runners and renderers for every table and figure in the paper's
    evaluation (§5.3, Appendices B, C, D).

    Each [run_*] performs the workload + crash + side-by-side recoveries
    (verifying every recovery against the oracle) and returns structured
    results; each renderer prints a paper-shaped text table.  Used by both
    [bench/main.exe] and the CLI. *)

(** One cache-size cell of the Figure 2 experiment. *)
type fig2_cell = {
  cache_mb : int;  (** paper-equivalent cache size *)
  pool_pages : int;
  db_pages : int;
  dirty_pct : float;  (** Figure 2(b): dirty % of the cache at crash *)
  deltas_seen : int;  (** Figure 2(c): Δ records seen by analysis *)
  bws_seen : int;  (** Figure 2(c): BW records seen by analysis *)
  methods : (Deut_core.Recovery.method_ * Deut_core.Recovery_stats.t) list;
  build_wall_s : float;
      (** real (wall-clock) seconds spent building the workload and crash
          image for this cell — runtime cost, not simulated time *)
  method_walls : (Deut_core.Recovery.method_ * float) list;
      (** real seconds per recover+verify, in [methods] order *)
  digests : (Deut_core.Recovery.method_ * (string * string)) list;
      (** (store, logical) digest of each method's recovered state — must be
          byte-identical at every [domains] setting (the determinism gate) *)
}

val run_fig2 :
  ?cache:Experiment.build_cache ->
  ?scale:int ->
  ?cache_sizes:int list ->
  ?methods:Deut_core.Recovery.method_ list ->
  ?progress:(string -> unit) ->
  ?domains:int ->
  unit ->
  fig2_cell list
(** Defaults: scale 64, the paper's cache sizes 64…2048 MB, the paper's
    five methods.  [domains] (default [Config.default.domains], i.e.
    [DEUT_DOMAINS]) fans the builds, then the full (cache size, method)
    recovery grid, across real OS-level domains; every cell's simulated
    numbers and digests are byte-identical at any domain count — only wall
    clock changes. *)

val fig2a : fig2_cell list -> string
(** Figure 2(a): redo time (simulated ms) per method per cache size. *)

val phase_table : fig2_cell list -> string
(** Per-phase breakdown: simulated ms in analysis / redo / undo for every
    (cache size, method) pair of a Figure 2 run. *)

val fig2b : fig2_cell list -> string
val fig2c : fig2_cell list -> string

val sec53 : fig2_cell list -> string
(** §5.3's headline claims, paper value vs measured. *)

val costmodel : fig2_cell list -> string
(** Appendix B equations (1)–(3): predicted vs measured page fetches. *)

(** One checkpoint-interval cell of the Figure 3 experiment. *)
type fig3_cell = {
  multiplier : int;
  methods3 : (Deut_core.Recovery.method_ * Deut_core.Recovery_stats.t) list;
}

val run_fig3 :
  ?cache:Experiment.build_cache ->
  ?scale:int ->
  ?cache_mb:int ->
  ?multipliers:int list ->
  ?progress:(string -> unit) ->
  ?domains:int ->
  unit ->
  fig3_cell list
(** Appendix C: checkpoint interval ci1, 5×ci1, 10×ci1 at the 512 MB
    cache.  [domains] fans the interval cells across real domains. *)

val fig3 : fig3_cell list -> string

(** One Appendix-D ablation row. *)
type appd_row = {
  label : string;
  dpt_size : int;
  redo_ms : float;
  data_fetches : int;
  delta_records : int;
  delta_kb : float;  (** DC logging overhead during normal execution *)
}

val run_appd : ?cache:Experiment.build_cache -> ?scale:int -> ?cache_mb:int -> ?progress:(string -> unit) -> unit -> appd_row list
(** The DC-logging spectrum of Appendix D — Standard, Perfect (D.1),
    Reduced (D.2), all recovered with Log1 — plus classic ARIES
    checkpointing recovered physiologically, as ablation baselines. *)

val appd : appd_row list -> string

(** One row of the split-vs-integrated log-layout comparison (§4.2). *)
type split_row = {
  layout : string;
  smethod : Deut_core.Recovery.method_;
  s_analysis_ms : float;
  s_redo_ms : float;
  s_log_pages : int;  (** log pages read across both log devices *)
  tc_log_kb : float;  (** retained TC-log bytes at crash *)
  dc_log_kb : float;  (** retained DC-log bytes at crash (= TC when integrated) *)
}

val run_split :
  ?cache:Experiment.build_cache ->
  ?scale:int -> ?cache_mb:int -> ?progress:(string -> unit) -> unit -> split_row list
(** The Deuteronomy architecture proper vs the paper's integrated
    prototype: same workload, Log1/Log2 recovery from each layout.  Shows
    §4.2's claim that the DC redo/analysis pass scans a much smaller log. *)

val split_table : split_row list -> string

(** One (cache size, method, worker count) cell of the parallel-redo sweep. *)
type workers_cell = {
  w_cache_mb : int;
  w_method : Deut_core.Recovery.method_;
  w_count : int;  (** [Config.redo_workers] used for this recovery *)
  w_stats : Deut_core.Recovery_stats.t;
  w_engine : Deut_core.Engine_stats.t;  (** post-recovery engine snapshot (latency percentiles) *)
}

val run_workers :
  ?cache:Experiment.build_cache ->
  ?scale:int ->
  ?cache_sizes:int list ->
  ?workers:int list ->
  ?methods:Deut_core.Recovery.method_ list ->
  ?progress:(string -> unit) ->
  ?domains:int ->
  unit ->
  workers_cell list
(** One crash per cache size, recovered with every (method, worker count)
    pair; every recovery is oracle-verified.  Defaults: scale 64, caches
    {64, 512} MB, workers {1, 2, 4, 8}, the paper's five methods.
    [domains] fans the builds, then the flattened recovery grid, across
    real domains. *)

val workers_table : workers_cell list -> string
(** Redo time, speedup vs one worker, and stall / data-IO latency
    percentiles per (cache, method, workers) row. *)

(** One (clients, group_commit) cell of the concurrency sweep. *)
type concurrency_cell = {
  c_clients : int;  (** [Config.clients] used for this run *)
  c_group_commit : int;
  c_stats : Client_sched.stats;
  c_digest : string;  (** logical digest of the final store — equal in every cell *)
}

val run_concurrency :
  ?scale:int ->
  ?cache_mb:int ->
  ?clients:int list ->
  ?group_commits:int list ->
  ?txns:int ->
  ?progress:(string -> unit) ->
  ?domains:int ->
  unit ->
  concurrency_cell list
(** Fresh database per cell, same workload seed everywhere; [txns]
    transactions through {!Driver.run_concurrent}, oracle-verified, and
    the final logical digest cross-checked to be identical in every cell
    (raising otherwise).  Defaults: scale 64, cache 256 MB, clients
    {1, 2, 4, 8}, group commit {1, 4}, 300 transactions. *)

val concurrency_table : concurrency_cell list -> string
(** Throughput, abort rate, wound/conflict counts and commit-latency
    p50/p95 per (clients, group_commit) row. *)

(** The single-shard-crash availability scenario run inside a multi-shard
    sweep cell. *)
type sharding_crash = {
  sc_shard : int;  (** which shard was crashed *)
  sc_sibling_reads : int;  (** reads served by siblings while it was down *)
  sc_recover_ms : float;  (** virtual time for {!Deut_core.Db.recover_shard} *)
}

(** One (shards, clients) cell of the sharding sweep. *)
type sharding_cell = {
  sh_shards : int;
  sh_clients : int;
  sh_stats : Client_sched.stats;
  sh_digest : string;  (** logical digest — equal in every cell *)
  sh_net_msgs : int;  (** Dc_access messages over {!Deut_net.Link} (0 in-process) *)
  sh_crash : sharding_crash option;  (** [None] on single-shard cells *)
}

val run_sharding :
  ?scale:int ->
  ?cache_mb:int ->
  ?shards:int list ->
  ?clients:int list ->
  ?txns:int ->
  ?net:bool ->
  ?progress:(string -> unit) ->
  ?domains:int ->
  unit ->
  sharding_cell list
(** Fresh database per (shards, clients) cell, same workload seed
    everywhere; [txns] transactions through {!Driver.run_concurrent},
    oracle-verified, with the final logical digest cross-checked to be
    identical in every cell (shard transparency — raising otherwise).
    Each multi-shard cell then crashes its last shard on the live engine,
    serves sibling reads while it is down, recovers it alone with
    {!Deut_core.Db.recover_shard}, and re-checks the digest.  [net] routes
    the Dc_access protocol over simulated {!Deut_net.Link}s.  Defaults:
    scale 64, cache 256 MB, shards {1, 2, 4, 8}, clients {4, 8},
    300 transactions, in-process transport. *)

val sharding_table : sharding_cell list -> string
(** Throughput per (shards, clients) row plus the availability scenario's
    sibling-read count and per-shard recovery time. *)

(** One round of the log-archiving growth sweep. *)
type archiving_round = {
  ar_round : int;
  ar_logged_kb : float;  (** total bytes ever appended to the log *)
  ar_live_kb : float;  (** bytes the live log still retains *)
  ar_archive_kb : float;  (** sealed archive-segment payload *)
  ar_segments : int;
}

(** One (archive on/off) cell of the archiving sweep. *)
type archiving_cell = {
  a_archive : bool;
  a_rounds : archiving_round list;
  a_digest : string;  (** final logical digest — equal in both cells *)
  a_methods : (Deut_core.Recovery.method_ * Deut_core.Recovery_stats.t) list;
      (** post-crash recoveries, every one oracle-verified *)
}

val run_archiving :
  ?scale:int ->
  ?cache_mb:int ->
  ?clients:int ->
  ?rounds:int ->
  ?txns_per_round:int ->
  ?progress:(string -> unit) ->
  unit ->
  archiving_cell list
(** The long-running multi-client workload with periodic checkpoint +
    archive cuts, run twice — archiving off then on — with the same seed.
    Checks on every round that sealed coverage meets the live base (the
    durability contract), that the final digests match across the two
    cells, that the live log ends bounded below the total logged bytes,
    and that all five methods recover the oracle state from the truncated
    log; raises on any violation.  Defaults: scale 64, cache 256 MB,
    4 clients, 6 rounds of 100 transactions. *)

val archiving_table : archiving_cell list -> string
(** Round-by-round growth table plus a per-method restart comparison. *)

(** One cache-size cell of the instant-recovery availability sweep. *)
type availability_cell = {
  v_cache_mb : int;
  v_ttft_ms : float;  (** open for business: analysis + sequential log scan *)
  v_drained_ms : float;  (** background redo fully drained (same staged run) *)
  v_log2_total_ms : float;  (** offline Log2 baseline on the same image *)
  v_speedup : float;  (** drained / open — the availability win *)
  v_pages_ondemand : int;  (** pages replayed by probe-read faults *)
  v_pages_background : int;  (** pages replayed by the drain *)
  v_probe_reads : int;  (** reads served while redo was still pending *)
}

val run_availability :
  ?cache:Experiment.build_cache ->
  ?scale:int ->
  ?cache_sizes:int list ->
  ?probes:int ->
  ?progress:(string -> unit) ->
  ?domains:int ->
  unit ->
  availability_cell list
(** One crash per cache size.  Per cell: recover offline with Log2 (the
    baseline), recover with the drained form of InstantLog2 and require a
    byte-identical logical digest (the determinism gate — raises on
    divergence), then run the staged form with [probes] uniform reads
    interleaved with background drain steps, verify it against the oracle
    and the digest again, and report its TTFT / drain split.  Defaults:
    scale 64, the paper's cache sizes, 32 probe reads. *)

val availability_table : availability_cell list -> string
(** TTFT vs full-recovery time, speedup, and replay-path page counts per
    cache size. *)

(** One (cache size, method) cell of the trace-mined prefetch-tuning sweep. *)
type tuning_cell = {
  t_cache_mb : int;
  t_method : Deut_core.Recovery.method_;
  t_outcomes : Deut_obs.Tuner.outcome list;  (** sweep order; every run oracle-verified *)
  t_default : Deut_obs.Tuner.outcome;  (** the outcome at [Config.default]'s settings *)
}

val run_tuning :
  ?cache:Experiment.build_cache ->
  ?scale:int ->
  ?cache_sizes:int list ->
  ?methods:Deut_core.Recovery.method_ list ->
  ?windows:int list ->
  ?chunks:int list ->
  ?lookaheads:int list ->
  ?sources:Deut_core.Config.prefetch_source list ->
  ?progress:(string -> unit) ->
  unit ->
  tuning_cell list
(** One crash per cache size; for each method, every candidate
    [Config.prefetch_*] setting in the grid (Log2 sweeps window × chunk ×
    source, SQL2 window × chunk × lookahead — each prefetcher's live
    dimensions, Appendix A) is recovered with tracing on, oracle-verified,
    and profiled with {!Deut_obs.Analysis}; [redo_workers]/[clients] are
    pinned to 1 so results are byte-stable regardless of environment.
    Defaults: scale 64, cache {1024} MB, methods {Log2, SQL2}, windows
    {8,16,32,64}, chunks {4,8,16,32}, lookaheads {128,256,512,1024}, both
    sources.  The default setting always appears in the grid. *)

val tuning_table : tuning_cell list -> string
(** Per-cell recommendation tables ({!Deut_obs.Tuner.table}) plus a
    best-vs-default redo-time summary line. *)
