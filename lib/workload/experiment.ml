module Config = Deut_core.Config
module Db = Deut_core.Db
module Recovery = Deut_core.Recovery
module Recovery_stats = Deut_core.Recovery_stats
module Pool = Deut_buffer.Buffer_pool

type protocol = { checkpoints : int; interval : int; tail : int; loser_ops : int }

type scaled = {
  label : string;
  config : Config.t;
  spec : Workload.spec;
  protocol : protocol;
  cache_mb_equiv : int;
}

(* Paper constants (§5.2). *)
let paper_db_pages = 436_000
let paper_ckpt_interval = 40_000
let paper_tail = 100
let paper_checkpoints = 10

(* Sequentially loaded leaves are half full (split at midpoint), giving
   ~113 24-byte rows per 8 KiB page. *)
let rows_per_page = 113

let paper_setup ?(scale = 32) ?(ckpt_multiplier = 1) ?(dpt_mode = Config.Standard)
    ?(checkpoint_mode = Config.Penultimate) ?(key_dist = Workload.Uniform) ~cache_mb () =
  let pool_pages = Stdlib.max 64 (cache_mb * 128 / scale) in
  let interval = Stdlib.max 200 (paper_ckpt_interval / scale * ckpt_multiplier) in
  let delta_period = Stdlib.max 20 (interval / 20) in
  let config =
    {
      Config.default with
      Config.pool_pages;
      delta_period;
      dpt_mode;
      checkpoint_mode;
      (* The paper's experiment is a single data component; callers that
         want a sharded cell (Figures.run_sharding) override this. *)
      shards = 1;
      seed = 42 + cache_mb;
    }
  in
  let rows = paper_db_pages / scale * rows_per_page in
  let spec =
    {
      Workload.default with
      Workload.rows;
      key_dist;
      seed = 7 + cache_mb + (1000 * ckpt_multiplier);
    }
  in
  let protocol =
    {
      checkpoints = paper_checkpoints;
      interval;
      tail = Stdlib.max 5 (paper_tail * 2 / scale);
      loser_ops = 10;
    }
  in
  {
    label =
      Printf.sprintf "cache=%dMB ci=%dx dpt=%s ckpt=%s" cache_mb ckpt_multiplier
        (Config.dpt_mode_to_string dpt_mode)
        (Config.checkpoint_mode_to_string checkpoint_mode);
    config;
    spec;
    protocol;
    cache_mb_equiv = cache_mb;
  }

type crash_run = {
  image : Deut_core.Crash_image.t;
  driver : Driver.t;
  dirty_at_crash : int;
  cached_at_crash : int;
  dirty_fraction : float;
  db_pages : int;
  deltas_total : int;
  bws_total : int;
  delta_bytes : int;
  bw_bytes : int;
  updates_run : int;
}

(* [build] is deterministic: the same [scaled] record always yields the same
   workload, crash image, and statistics.  A cache therefore only saves wall
   clock — several harness sections use structurally identical setups (e.g.
   the 512 MB Figure 2 cell, the 1x Figure 3 cell, and the standard-Δ
   ablation row), and each build costs real seconds at small scales.  The
   cached [crash_run] is safe to share: recoveries instantiate fresh store
   and log copies from the image, and verification only reads the oracle. *)
type build_cache = (scaled, crash_run) Hashtbl.t

let build_cache () : build_cache = Hashtbl.create 8

let build_uncached scaled =
  let driver = Driver.create ~config:scaled.config scaled.spec in
  Driver.warm_to_equilibrium driver;
  Driver.run_crash_protocol driver ~checkpoints:scaled.protocol.checkpoints
    ~interval:scaled.protocol.interval ~tail:scaled.protocol.tail;
  Driver.start_loser driver ~ops:scaled.protocol.loser_ops;
  let database = Driver.db driver in
  let dirty = Db.dirty_page_count database in
  let pool = (Db.engine database).Deut_core.Engine.pool in
  (* Read every statistic before the crash: [Db.crash] poisons the handle. *)
  let cached_at_crash = Db.cached_page_count database in
  let db_pages = Db.allocated_pages database in
  let deltas_total = Db.deltas_written database in
  let bws_total = Db.bws_written database in
  let delta_bytes = Db.delta_bytes database in
  let bw_bytes = Db.bw_bytes database in
  {
    image = Driver.crash driver;
    driver;
    dirty_at_crash = dirty;
    cached_at_crash;
    dirty_fraction = float_of_int dirty /. float_of_int (Pool.capacity pool);
    db_pages;
    deltas_total;
    bws_total;
    delta_bytes;
    bw_bytes;
    updates_run = Driver.updates_done driver;
  }

let drop_cache (tbl : build_cache) = Hashtbl.reset tbl

let build ?cache scaled =
  match cache with
  | None -> build_uncached scaled
  | Some tbl -> (
      match Hashtbl.find_opt tbl scaled with
      | Some run -> run
      | None ->
          let run = build_uncached scaled in
          Hashtbl.add tbl scaled run;
          run)

let recover_verified ?workers run method_ =
  let config =
    Option.map
      (fun w -> { run.image.Deut_core.Crash_image.config with Config.redo_workers = w })
      workers
  in
  let recovered, stats = Db.recover ?config run.image method_ in
  (* Snapshot the engine before verification: the oracle scan below does
     thousands of its own page fetches, which would swamp the recovery-time
     IO and stall histograms. *)
  let engine = Deut_core.Engine_stats.capture (Db.engine recovered) in
  (match Driver.verify_recovered run.driver recovered with
  | Ok () -> ()
  | Error msg ->
      failwith
        (Printf.sprintf "recovery with %s produced wrong state: %s"
           (Recovery.method_to_string method_) msg));
  (recovered, engine, stats)

let run_method ?workers run method_ =
  let _, _, stats = recover_verified ?workers run method_ in
  stats
let run_all run methods = List.map (fun m -> (m, run_method run m)) methods
