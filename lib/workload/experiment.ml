module Config = Deut_core.Config
module Db = Deut_core.Db
module Recovery = Deut_core.Recovery
module Recovery_stats = Deut_core.Recovery_stats
module Pool = Deut_buffer.Buffer_pool

type protocol = { checkpoints : int; interval : int; tail : int; loser_ops : int }

type scaled = {
  label : string;
  config : Config.t;
  spec : Workload.spec;
  protocol : protocol;
  cache_mb_equiv : int;
}

(* Paper constants (§5.2). *)
let paper_db_pages = 436_000
let paper_ckpt_interval = 40_000
let paper_tail = 100
let paper_checkpoints = 10

(* Sequentially loaded leaves are half full (split at midpoint), giving
   ~113 24-byte rows per 8 KiB page. *)
let rows_per_page = 113

let paper_setup ?(scale = 32) ?(ckpt_multiplier = 1) ?(dpt_mode = Config.Standard)
    ?(checkpoint_mode = Config.Penultimate) ?(key_dist = Workload.Uniform) ~cache_mb () =
  let pool_pages = Stdlib.max 64 (cache_mb * 128 / scale) in
  let interval = Stdlib.max 200 (paper_ckpt_interval / scale * ckpt_multiplier) in
  let delta_period = Stdlib.max 20 (interval / 20) in
  let config =
    {
      Config.default with
      Config.pool_pages;
      delta_period;
      dpt_mode;
      checkpoint_mode;
      (* The paper's experiment is a single data component; callers that
         want a sharded cell (Figures.run_sharding) override this.  Real
         domains likewise: DEUT_DOMAINS parallelises the harness *across*
         cells, so the cell itself pins [domains = 1] and its simulated
         numbers are byte-identical at any domain count — callers that
         want domain-parallel redo inside a recovery override it. *)
      shards = 1;
      domains = 1;
      seed = 42 + cache_mb;
    }
  in
  let rows = paper_db_pages / scale * rows_per_page in
  let spec =
    {
      Workload.default with
      Workload.rows;
      key_dist;
      seed = 7 + cache_mb + (1000 * ckpt_multiplier);
    }
  in
  let protocol =
    {
      checkpoints = paper_checkpoints;
      interval;
      tail = Stdlib.max 5 (paper_tail * 2 / scale);
      loser_ops = 10;
    }
  in
  {
    label =
      Printf.sprintf "cache=%dMB ci=%dx dpt=%s ckpt=%s" cache_mb ckpt_multiplier
        (Config.dpt_mode_to_string dpt_mode)
        (Config.checkpoint_mode_to_string checkpoint_mode);
    config;
    spec;
    protocol;
    cache_mb_equiv = cache_mb;
  }

type crash_run = {
  image : Deut_core.Crash_image.t;
  driver : Driver.t;
  dirty_at_crash : int;
  cached_at_crash : int;
  dirty_fraction : float;
  db_pages : int;
  deltas_total : int;
  bws_total : int;
  delta_bytes : int;
  bw_bytes : int;
  updates_run : int;
}

(* [build] is deterministic: the same [scaled] record always yields the same
   workload, crash image, and statistics.  A cache therefore only saves wall
   clock — several harness sections use structurally identical setups (e.g.
   the 512 MB Figure 2 cell, the 1x Figure 3 cell, and the standard-Δ
   ablation row), and each build costs real seconds at small scales.  The
   cached [crash_run] is safe to share: recoveries instantiate fresh store
   and log copies from the image, and verification only reads the (sealed)
   oracle.

   The cache is the one structure the domain-parallel harness shares
   between cells, so it is a monitor: a mutex guards the table, and a
   [Building] marker parks later requesters of the same setup on a
   condition variable instead of letting them duplicate a multi-second
   build.  An LRU list bounds retained crash images ([max_entries]);
   in-flight builds are never evicted. *)
type cache_entry = Built of crash_run | Building

type build_cache = {
  mutex : Mutex.t;
  cond : Condition.t;
  entries : (scaled, cache_entry) Hashtbl.t;
  mutable lru : scaled list;  (* [Built] keys, most recently used first *)
  max_entries : int;
}

let build_cache ?(max_entries = 16) () : build_cache =
  if max_entries < 1 then invalid_arg "Experiment.build_cache: max_entries must be >= 1";
  {
    mutex = Mutex.create ();
    cond = Condition.create ();
    entries = Hashtbl.create 8;
    lru = [];
    max_entries;
  }

let build_uncached scaled =
  let driver = Driver.create ~config:scaled.config scaled.spec in
  Driver.warm_to_equilibrium driver;
  Driver.run_crash_protocol driver ~checkpoints:scaled.protocol.checkpoints
    ~interval:scaled.protocol.interval ~tail:scaled.protocol.tail;
  Driver.start_loser driver ~ops:scaled.protocol.loser_ops;
  let database = Driver.db driver in
  let dirty = Db.dirty_page_count database in
  let pool = (Db.engine database).Deut_core.Engine.pool in
  (* Read every statistic before the crash: [Db.crash] poisons the handle. *)
  let cached_at_crash = Db.cached_page_count database in
  let db_pages = Db.allocated_pages database in
  let deltas_total = Db.deltas_written database in
  let bws_total = Db.bws_written database in
  let delta_bytes = Db.delta_bytes database in
  let bw_bytes = Db.bw_bytes database in
  let run =
    {
      image = Driver.crash driver;
      driver;
      dirty_at_crash = dirty;
      cached_at_crash;
      dirty_fraction = float_of_int dirty /. float_of_int (Pool.capacity pool);
      db_pages;
      deltas_total;
      bws_total;
      delta_bytes;
      bw_bytes;
      updates_run = Driver.updates_done driver;
    }
  in
  (* Seal before the run is shared: the harness fans recoveries of one
     crash_run across domains, and each verifies against this oracle. *)
  Oracle.seal (Driver.oracle driver);
  run

let drop_cache c =
  Mutex.lock c.mutex;
  Hashtbl.reset c.entries;
  c.lru <- [];
  (* In-flight builders notice their [Building] marker is gone and return
     their run without publishing it. *)
  Condition.broadcast c.cond;
  Mutex.unlock c.mutex

let build ?cache scaled =
  match cache with
  | None -> build_uncached scaled
  | Some c -> (
      let rec acquire () =
        match Hashtbl.find_opt c.entries scaled with
        | Some (Built run) ->
            c.lru <- scaled :: List.filter (fun s -> s <> scaled) c.lru;
            Some run
        | Some Building ->
            Condition.wait c.cond c.mutex;
            acquire ()
        | None ->
            Hashtbl.replace c.entries scaled Building;
            None
      in
      Mutex.lock c.mutex;
      let cached = acquire () in
      Mutex.unlock c.mutex;
      match cached with
      | Some run -> run
      | None -> (
          match build_uncached scaled with
          | exception e ->
              Mutex.lock c.mutex;
              Hashtbl.remove c.entries scaled;
              Condition.broadcast c.cond;
              Mutex.unlock c.mutex;
              raise e
          | run ->
              Mutex.lock c.mutex;
              (match Hashtbl.find_opt c.entries scaled with
              | Some Building ->
                  Hashtbl.replace c.entries scaled (Built run);
                  c.lru <- scaled :: c.lru;
                  if List.length c.lru > c.max_entries then (
                    match List.rev c.lru with
                    | oldest :: _ ->
                        Hashtbl.remove c.entries oldest;
                        c.lru <- List.filter (fun s -> s <> oldest) c.lru
                    | [] -> ())
              | Some (Built _) | None ->
                  (* [drop_cache] raced us, or the marker was cleared;
                     hand the run to our caller without caching it. *)
                  ());
              Condition.broadcast c.cond;
              Mutex.unlock c.mutex;
              run))

let recover_verified ?workers run method_ =
  let config =
    Option.map
      (fun w -> { run.image.Deut_core.Crash_image.config with Config.redo_workers = w })
      workers
  in
  let recovered, stats = Db.recover ?config run.image method_ in
  (* Snapshot the engine before verification: the oracle scan below does
     thousands of its own page fetches, which would swamp the recovery-time
     IO and stall histograms. *)
  let engine = Deut_core.Engine_stats.capture (Db.engine recovered) in
  (match Driver.verify_recovered run.driver recovered with
  | Ok () -> ()
  | Error msg ->
      failwith
        (Printf.sprintf "recovery with %s produced wrong state: %s"
           (Recovery.method_to_string method_) msg));
  (recovered, engine, stats)

let run_method ?workers run method_ =
  let _, _, stats = recover_verified ?workers run method_ in
  stats
let run_all run methods = List.map (fun m -> (m, run_method run m)) methods

(* Digest of the stable page store after forcing every dirty frame out:
   the complete post-recovery database image, byte for byte.  Paired with
   [Client_sched.logical_digest], this is what the determinism gate
   compares across domain counts. *)
let store_digest db =
  let engine = Db.engine db in
  Pool.flush_all_dirty engine.Deut_core.Engine.pool;
  let pages = ref [] in
  Deut_storage.Page_store.iter_stable engine.Deut_core.Engine.store (fun p ->
      pages := (p.Deut_storage.Page.pid, Bytes.to_string p.Deut_storage.Page.buf) :: !pages);
  let buf = Buffer.create 4096 in
  List.iter
    (fun (pid, bytes) ->
      Buffer.add_string buf (string_of_int pid);
      Buffer.add_char buf ':';
      Buffer.add_string buf bytes)
    (List.sort compare !pages);
  Digest.to_hex (Digest.string (Buffer.contents buf))
