let table ?title ~header ~rows () =
  let all = header :: rows in
  let ncols = List.fold_left (fun m r -> Stdlib.max m (List.length r)) 0 all in
  let width col =
    List.fold_left
      (fun m row -> match List.nth_opt row col with Some cell -> Stdlib.max m (String.length cell) | None -> m)
      0 all
  in
  let widths = List.init ncols width in
  let render_row row =
    String.concat "  "
      (List.mapi
         (fun col w ->
           let cell = match List.nth_opt row col with Some c -> c | None -> "" in
           (* Right-align numbers, left-align text. *)
           let is_num = cell <> "" && String.for_all (fun c -> (c >= '0' && c <= '9') || c = '.' || c = '-' || c = '%' || c = '+') cell in
           if is_num then Printf.sprintf "%*s" w cell else Printf.sprintf "%-*s" w cell)
         widths)
  in
  let sep = String.concat "  " (List.map (fun w -> String.make w '-') widths) in
  let body = String.concat "\n" (render_row header :: sep :: List.map render_row rows) in
  match title with None -> body ^ "\n" | Some t -> t ^ "\n" ^ body ^ "\n"

(* RFC-4180 quoting: cells containing a comma, quote or newline are wrapped
   in double quotes with embedded quotes doubled; plain cells stay bare. *)
let csv_cell c =
  if String.exists (fun ch -> ch = ',' || ch = '"' || ch = '\n') c then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' c) ^ "\""
  else c

let csv ~header ~rows =
  let line cells = String.concat "," (List.map csv_cell cells) in
  String.concat "\n" (line header :: List.map line rows) ^ "\n"

let ms v = Printf.sprintf "%.1f" v
let pct v = Printf.sprintf "%.1f%%" v
let f1 v = Printf.sprintf "%.1f" v
let i v = string_of_int v
