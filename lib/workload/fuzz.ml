(* Randomized crash-workload generator.  See fuzz.mli for the contract.

   Shared between the crash-recovery fuzz suite (which recovers the
   sampled image under every method and compares against the oracle) and
   [repro_cli forensics] (which rebuilds the same image from a failing
   seed and prints its flight-recorder snapshot).  Everything here is a
   pure function of the seed — same seed, same workload, same sampled
   crash boundary, same image bytes. *)

module Db = Deut_core.Db
module Config = Deut_core.Config
module Engine = Deut_core.Engine
module Tc = Deut_core.Tc
module Recovery = Deut_core.Recovery
module Crash_image = Deut_core.Crash_image
module Flight = Deut_obs.Flight
module Rng = Deut_sim.Rng
module Lr = Deut_wal.Log_record
module Lsn = Deut_wal.Lsn
module Log = Deut_wal.Log_manager
module Page_store = Deut_storage.Page_store

let tables = [ 1; 2 ]

let config_of ?(shards = 1) rng =
  {
    Config.default with
    Config.page_size = 1024;
    pool_pages = [| 16; 32; 64 |].(Rng.int rng 3);
    delta_period = [| 5; 10; 20 |].(Rng.int rng 3);
    delta_capacity = 64;
    (* Archive (rather than drop) compacted log bytes: the committed-prefix
       oracle folds the image's log from genesis, which plain compaction
       would cut out from under it.  Sealing keeps every byte readable
       (iter spans archive + live) and exercises restart-from-archive. *)
    archive = true;
    archive_min_bytes = 1;
    (* The generator leaves transactions open while later ones run; key
       locks make the overlap serializable (conflicting ops fail with
       [Lock_conflict] and are skipped) — without them a later commit
       could overwrite a loser's write and make its rollback unsound. *)
    locking = true;
    shards;
  }

(* Committed state implied by a log prefix, generalised over tables:
   buffer each transaction's operations, fold into the committed map on
   Commit, drop on Abort.  CLRs are ignored — a loser's updates and its
   compensations net to nothing. *)
let expected_of_log log =
  let committed = Hashtbl.create 64 in
  let pending = Hashtbl.create 8 in
  Log.iter log ~from:Lsn.nil (fun _lsn record ->
      match record with
      | Lr.Update_rec u ->
          let prior = Option.value (Hashtbl.find_opt pending u.Lr.txn) ~default:[] in
          Hashtbl.replace pending u.Lr.txn (((u.Lr.table, u.Lr.key), u.Lr.after) :: prior)
      | Lr.Commit { txn } ->
          List.iter
            (fun (tk, after) ->
              match after with
              | Some v -> Hashtbl.replace committed tk v
              | None -> Hashtbl.remove committed tk)
            (List.rev (Option.value (Hashtbl.find_opt pending txn) ~default:[]));
          Hashtbl.remove pending txn
      | Lr.Abort { txn } -> Hashtbl.remove pending txn
      | Lr.Clr _ | Lr.Begin_ckpt | Lr.End_ckpt _ | Lr.Aries_ckpt_dpt _ | Lr.Bw _ | Lr.Delta _
      | Lr.Smo _ ->
          ());
  List.sort compare (Hashtbl.fold (fun tk v acc -> (tk, v) :: acc) committed [])

(* Generate and run the workload, reservoir-sampling one crash boundary.
   Returns the sampled image (the workload always appends at least one
   record, so the reservoir is never empty). *)
let build_image ?(shards = 1) seed =
  let rng = Rng.create ~seed in
  let config = config_of ~shards rng in
  let db = Db.create ~config () in
  List.iter (fun table -> Db.create_table db ~table) tables;
  let engine = Db.engine db in
  let log = engine.Engine.log in
  let sel_rng = Rng.split rng in
  let seen = ref 0 in
  let image = ref None in
  (* Snapshot at an append boundary: everything appended to the TC log so
     far survives ([crash_at end_lsn]); each DC log keeps only its forced
     prefix, exactly as a crash there would leave it (SMOs force
     synchronously, so structure changes are never in the lost tail).
     The flight recorder rides along, as [Db.crash] would carry it. *)
  let snapshot () =
    let extra_shards =
      Array.init
        (Engine.shard_count engine - 1)
        (fun i ->
          let sh = Engine.shard engine (i + 1) in
          {
            Crash_image.sh_store = Page_store.clone sh.Engine.s_store;
            sh_dc_log = Log.crash sh.Engine.s_dc_log;
          })
    in
    {
      Crash_image.config = engine.Engine.config;
      store = Page_store.clone engine.Engine.store;
      log = Log.crash_at log (Log.end_lsn log);
      dc_log =
        (if Engine.split engine then Some (Log.crash engine.Engine.dc_log) else None);
      master = Tc.master engine.Engine.tc;
      extra_shards;
      flight = Option.map Flight.snapshot (Engine.flight engine);
    }
  in
  Log.set_append_hook log
    (Some
       (fun _lsn ->
         incr seen;
         if Rng.int sel_rng !seen = 0 then image := Some (snapshot ())));
  (* Tracked keys are an approximation of what is present (aborts drift
     it); operations that turn out invalid return a typed error and are
     simply skipped. *)
  let keys = Hashtbl.create 64 in
  let present table = Hashtbl.find_opt keys table |> Option.value ~default:[] in
  let add table k = Hashtbl.replace keys table (k :: present table) in
  let remove table k =
    Hashtbl.replace keys table (List.filter (fun k' -> k' <> k) (present table))
  in
  let pick_table () = List.nth tables (Rng.int rng (List.length tables)) in
  let n_txns = 10 + Rng.int rng 15 in
  for t = 0 to n_txns - 1 do
    let txn = Db.begin_txn db in
    let n_ops = 1 + Rng.int rng 6 in
    for o = 0 to n_ops - 1 do
      let table = pick_table () in
      let v = Printf.sprintf "s%d.%d.%d" seed t o in
      match Rng.int rng 10 with
      | 0 | 1 | 2 | 3 ->
          let key = Rng.int rng 200 in
          if Result.is_ok (Db.insert db txn ~table ~key ~value:v) then add table key
      | 4 | 5 | 6 -> (
          match present table with
          | [] -> ()
          | ks -> ignore (Db.update db txn ~table ~key:(List.nth ks (Rng.int rng (List.length ks))) ~value:v))
      | _ -> (
          match present table with
          | [] -> ()
          | ks ->
              let key = List.nth ks (Rng.int rng (List.length ks)) in
              if Result.is_ok (Db.delete db txn ~table ~key) then remove table key)
    done;
    (match Rng.int rng 20 with
    | n when n < 16 -> Db.commit db txn
    | 16 | 17 | 18 -> Db.abort db txn
    | _ -> () (* leave open: an in-flight loser at later boundaries *));
    if Rng.int rng 7 = 0 then Db.checkpoint db;
    if Rng.int rng 10 = 0 then Db.compact_log db
  done;
  Log.set_append_hook log None;
  match !image with
  | Some image -> image
  | None -> failwith "Fuzz.build_image: workload appended no log records"

(* With shards > 1 only the logical methods can run (split layout per
   shard), and the staged InstantLog2 form is not yet sharded. *)
let methods_for ~shards =
  if shards > 1 then [ Recovery.Log0; Recovery.Log1; Recovery.Log2 ]
  else Recovery.all_methods_with_instant

let corpus = List.init 32 (fun i -> 1001 + (7919 * i))

let repro_hint seed =
  Printf.sprintf "repro: DEUT_FUZZ_SEEDS=%d dune exec test/main.exe -- test fuzz-recovery" seed
