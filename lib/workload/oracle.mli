(** Shadow committed state: the ground truth recovery must reproduce.

    The driver buffers each transaction's writes and folds them in at
    commit, so the oracle always holds exactly the committed state — never
    the effects of in-flight or aborted transactions.  Crucially it is a
    plain map: consulting it does not touch the database cache, unlike a
    table scan, which would flush dirty pages and corrupt the experiment
    (dirtiness at crash is the quantity under study). *)

type t

val create : unit -> t

val begin_txn : t -> int -> unit
val buffer_put : t -> txn:int -> table:int -> key:int -> value:string -> unit
val buffer_delete : t -> txn:int -> table:int -> key:int -> unit
val commit : t -> txn:int -> unit
val abort : t -> txn:int -> unit

(** {2 Group commit}

    With [Config.group_commit] > 1 a commit may sit in the volatile log
    tail; mirroring that, [commit_queued] parks the transaction's changes
    in commit order and [force] folds every parked group into the
    committed state.  Call [force] whenever the engine forces its log
    (durable commit ack, [Db.flush_commits], an abort or a checkpoint),
    and crash verification sees exactly the durable prefix. *)

val commit_queued : t -> txn:int -> unit
val force : t -> unit

val queued_commits : t -> int
(** Transactions committed but not yet folded by [force]. *)

val committed_value : t -> table:int -> key:int -> string option
val committed_entries : t -> table:int -> (int * string) list
(** Sorted by key. *)

val entry_count : t -> table:int -> int

val seal : t -> unit
(** Pre-compute the sorted-entry memo for every table holding committed
    data, making subsequent [committed_entries]/[verify] calls pure reads
    while the committed state is untouched.  [Experiment.build] seals the
    oracle before publishing a crash run so concurrent domains can verify
    recoveries against it without racing on the memo. *)

val verify : t -> Deut_core.Db.t -> tables:int list -> (unit, string) result
(** Compare the database contents (a full scan — post-recovery use only)
    against the committed state of every listed table. *)
