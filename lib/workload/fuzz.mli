(** Randomized crash-workload generator, shared by the crash-recovery
    fuzz suite and [repro_cli forensics].

    Each seed deterministically drives a generated workload (multi-op
    transactions with inserts/updates/deletes, commits, aborts,
    checkpoints, log compaction, in-flight losers) over a small cache,
    while a reservoir sample over the log-append hook picks ONE record
    boundary uniformly at random and snapshots a crash image there —
    capture-at-append, so post-boundary flushes cannot leak into the
    image.  The image carries the flight recorder's snapshot, which is
    what lets the CLI print post-crash forensics for a failing seed
    without re-running the test. *)

val tables : int list
(** The tables every generated workload creates and writes. *)

val config_of : ?shards:int -> Deut_sim.Rng.t -> Deut_core.Config.t
(** The per-seed engine config: small pages and cache, archiving on (the
    oracle folds the log from genesis), key locking on (open transactions
    overlap), [shards] data components (default 1). *)

val expected_of_log : Deut_wal.Log_manager.t -> ((int * int) * string) list
(** The committed-prefix oracle: the [(table, key) -> value] map implied
    by the log's committed transactions, sorted. *)

val build_image : ?shards:int -> int -> Deut_core.Crash_image.t
(** [build_image seed] runs the seed's workload and returns the uniformly
    sampled crash image.  Deterministic: same seed (and shard count),
    same image. *)

val methods_for : shards:int -> Deut_core.Recovery.method_ list
(** The recovery methods runnable at that shard count (sharding bars the
    physiological methods and staged instant recovery). *)

val corpus : int list
(** The default fixed seed corpus the fuzz suite runs. *)

val repro_hint : int -> string
(** A copy-paste repro command for a failing seed. *)
