(** Fixed-width text tables and CSV for the benchmark output. *)

val table : ?title:string -> header:string list -> rows:string list list -> unit -> string
(** Render an aligned table with a separator under the header. *)

val csv : header:string list -> rows:string list list -> string
(** RFC-4180 output: cells containing a comma, double quote or newline are
    quoted (embedded quotes doubled); all other cells are written bare. *)

val ms : float -> string
(** Milliseconds with one decimal. *)

val pct : float -> string
val f1 : float -> string
val i : int -> string
