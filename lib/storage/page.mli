(** Fixed-size binary database pages.

    Every page carries a 24-byte header: a kind tag, a checksum, and two
    page LSNs.  [plsn] is the TC-domain pLSN — the LSN of the last logged
    {e transactional} operation applied to the page, the heart of the redo
    idempotence test in every recovery method the paper compares (redo an
    operation iff its LSN > pLSN of the target page).  [dc_plsn] is the
    DC-domain pLSN — the LSN of the last structure-modification record
    applied, used by the DC's own (SMO) redo.  When the TC and DC share one
    log (the paper's prototype, §5.1) the two domains coincide; with a
    separate DC log (the Deuteronomy architecture proper, §4) they are
    independent LSN spaces and must not be compared with each other.

    The rest of the page is a raw byte payload; typed layouts (B-tree nodes,
    the catalog) are built on the accessors here.  All multi-byte integers
    are big-endian. *)

type kind = Free | Meta | Btree_leaf | Btree_internal

val kind_to_string : kind -> string

type t = private { pid : int; mutable buf : Bytes.t; mutable shared : bool }
(** Fields are readable everywhere; construction and mutation go through
    the functions below.  [shared] marks a borrowed page (see {!borrow})
    whose buffer still aliases its owner's bytes — every mutator copies
    the buffer first ([unshare]), so holders of the owner's bytes never see
    a page mutation and page holders never see owner mutations. *)

val header_size : int
(** Bytes reserved at the start of every page: kind tag, checksum, and the
    two pLSNs (24 bytes). *)

val create : page_size:int -> pid:int -> kind -> t
(** A zeroed page of the given kind with pLSN 0. *)

val copy : t -> t

val borrow : pid:int -> Bytes.t -> t
(** A copy-on-write view over caller-owned bytes: reads alias the caller's
    buffer, the first mutation through this page copies it.  The caller
    must not mutate the bytes while the borrow is live — the page store
    upholds this by replacing (never editing) stable images. *)

val of_image : pid:int -> string -> t
(** An owning page holding a copy of the full page image [image]. *)

val is_borrowed : t -> bool
(** [true] until the first mutation of a {!borrow}ed page. *)

val stable_image : t -> Bytes.t
(** A freshly allocated copy of the contents with the checksum stamped into
    it — the image the store files away.  [t] itself is not modified. *)

val size : t -> int

val kind : t -> kind
val set_kind : t -> kind -> unit

val plsn : t -> int
val set_plsn : t -> int -> unit

val dc_plsn : t -> int
val set_dc_plsn : t -> int -> unit

(** {2 Checksums}

    Bytes 4–7 of the header hold a checksum over the rest of the page,
    stamped at flush time and verified on read from stable storage —
    torn/corrupt stable pages are detected, not silently recovered from. *)

val stamp_checksum : t -> unit
val checksum_ok : t -> bool
(** [true] if the stored checksum matches the contents, or if the page was
    never stamped (all-zero checksum on a zero page). *)

(** {2 Raw accessors for payload layouts}

    Offsets are absolute within the page; layouts above the header must
    respect [header_size]. *)

val get_u8 : t -> int -> int
val set_u8 : t -> int -> int -> unit
val get_u16 : t -> int -> int
val set_u16 : t -> int -> int -> unit
val get_u32 : t -> int -> int
val set_u32 : t -> int -> int -> unit
val get_u64 : t -> int -> int
val set_u64 : t -> int -> int -> unit

val get_bytes : t -> off:int -> len:int -> string
val set_bytes : t -> off:int -> string -> unit

val blit_within : t -> src:int -> dst:int -> len:int -> unit
val zero_range : t -> off:int -> len:int -> unit

val equal_contents : t -> t -> bool
(** Byte equality of the full page images (pids may differ). *)
