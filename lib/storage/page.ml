type kind = Free | Meta | Btree_leaf | Btree_internal

let kind_to_string = function
  | Free -> "free"
  | Meta -> "meta"
  | Btree_leaf -> "leaf"
  | Btree_internal -> "internal"

(* [shared] marks a page whose [buf] aliases bytes owned by someone else
   (the page store's stable image).  Reads go straight through; the first
   mutation copies the buffer and drops the flag, so stable images can be
   lent out without a defensive copy per fetch. *)
type t = { pid : int; mutable buf : Bytes.t; mutable shared : bool }

let header_size = 24

let kind_to_tag = function Free -> 0 | Meta -> 1 | Btree_leaf -> 2 | Btree_internal -> 3

let kind_of_tag = function
  | 0 -> Free
  | 1 -> Meta
  | 2 -> Btree_leaf
  | 3 -> Btree_internal
  | n -> invalid_arg (Printf.sprintf "Page.kind_of_tag: corrupt kind tag %d" n)

let[@inline] unshare t =
  if t.shared then begin
    t.buf <- Bytes.copy t.buf;
    t.shared <- false
  end

let size t = Bytes.length t.buf
let get_u8 t off = Char.code (Bytes.get t.buf off)

let set_u8 t off v =
  unshare t;
  Bytes.set t.buf off (Char.chr (v land 0xff))

let get_u16 t off = Bytes.get_uint16_be t.buf off

let set_u16 t off v =
  unshare t;
  Bytes.set_uint16_be t.buf off v

let get_u32 t off = Int32.to_int (Bytes.get_int32_be t.buf off) land 0xffffffff

let set_u32 t off v =
  unshare t;
  Bytes.set_int32_be t.buf off (Int32.of_int v)

let get_u64 t off = Int64.to_int (Bytes.get_int64_be t.buf off)

let set_u64 t off v =
  unshare t;
  Bytes.set_int64_be t.buf off (Int64.of_int v)

let kind t = kind_of_tag (get_u8 t 0)
let set_kind t k = set_u8 t 0 (kind_to_tag k)
let plsn t = get_u64 t 8
let set_plsn t lsn = set_u64 t 8 lsn
let dc_plsn t = get_u64 t 16
let set_dc_plsn t lsn = set_u64 t 16 lsn

(* FNV-1a over everything except the checksum field itself (bytes 4-7). *)
let checksum_of_bytes buf =
  let h = Fnv.fold buf ~off:0 ~len:4 ~init:Fnv.seed in
  Fnv.fold buf ~off:8 ~len:(Bytes.length buf - 8) ~init:h

let compute_checksum t = checksum_of_bytes t.buf
let stamp_checksum t = set_u32 t 4 (compute_checksum t)

let checksum_ok t =
  let stored = get_u32 t 4 in
  stored = 0 || stored = compute_checksum t

let create ~page_size ~pid k =
  if page_size < header_size then invalid_arg "Page.create: page_size below header";
  let t = { pid; buf = Bytes.make page_size '\000'; shared = false } in
  set_kind t k;
  t

let copy t = { pid = t.pid; buf = Bytes.copy t.buf; shared = false }
let borrow ~pid buf = { pid; buf; shared = true }
let of_image ~pid image = { pid; buf = Bytes.of_string image; shared = false }
let is_borrowed t = t.shared

let stable_image t =
  let buf = Bytes.copy t.buf in
  let h = checksum_of_bytes buf in
  Bytes.set_int32_be buf 4 (Int32.of_int h);
  buf

let get_bytes t ~off ~len = Bytes.sub_string t.buf off len

let set_bytes t ~off s =
  unshare t;
  Bytes.blit_string s 0 t.buf off (String.length s)

let blit_within t ~src ~dst ~len =
  unshare t;
  Bytes.blit t.buf src t.buf dst len

let zero_range t ~off ~len =
  unshare t;
  Bytes.fill t.buf off len '\000'

let equal_contents a b = Bytes.equal a.buf b.buf
