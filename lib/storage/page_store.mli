(** The stable page store: contents of the database "disk".

    This holds the durable page images — what survives a crash.  It is pure
    state; IO *timing* is charged by the buffer pool and log manager against
    the {!Deut_sim.Disk} model, keeping contents and cost accounting
    separate.

    Pages are allocated here (monotonically increasing pids; pid 0 is the
    catalog meta page) but a freshly allocated page has no stable image
    until its first flush.  Reading a never-flushed page raises
    {!Missing_page}: with correct WAL + SMO-image recovery this must never
    happen, so surfacing it loudly is a correctness check. *)

exception Missing_page of int

exception Corrupt_page of int
(** Raised by [read] when the stored image fails its checksum — stable
    corruption is detected loudly, never silently recovered from. *)

type t

val create : page_size:int -> t
val page_size : t -> int

val allocate : t -> Page.kind -> int
(** Reserve the next pid.  No stable image exists until [write]. *)

val allocated_count : t -> int
(** Number of pids handed out (the "database size" in pages). *)

val stable_count : t -> int
(** Number of pages with a stable image (maintained incrementally, O(1)). *)

val exists : t -> int -> bool

val read : t -> int -> Page.t
(** A {!Page.borrow}ed copy-on-write view of the stable image: the checksum
    is verified against the stable buffer itself and no copy is taken until
    the caller's first mutation.  The store never edits an installed image
    in place (it replaces whole images), so the borrow stays coherent. *)

val write : t -> Page.t -> unit
(** Install a checksum-stamped copy of the page image as the stable
    version.  The caller's page is not modified. *)

val corrupt_for_test : t -> int -> unit
(** Flip a payload byte of the stored image (fault injection for checksum
    tests). *)

val clone : t -> t
(** Deep copy — the crash image of the disk. *)

val iter_stable : t -> (Page.t -> unit) -> unit

val note_allocated : t -> int -> unit
(** Inform the store that pids up to and including [pid] are in use (replica
    catch-up installs pages it did not allocate itself). *)
