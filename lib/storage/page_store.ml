exception Missing_page of int
exception Corrupt_page of int

(* A stable image is immutable once installed (the store replaces whole
   images, never edits them), so one successful checksum verification holds
   for the image's lifetime: [verified] caches it and repeat fetches skip
   the full-page hash.  Images installed by [write] are valid by
   construction (the stamp was just computed); only images of unknown
   provenance — a corrupted one, or a clone of one — start unverified. *)
type image = { bytes : Bytes.t; mutable verified : bool }

type t = {
  page_size : int;
  mutable images : image option array;  (* indexed by pid *)
  mutable next_pid : int;
  mutable stable : int;  (* number of Some slots in [images] *)
}

let create ~page_size = { page_size; images = Array.make 1024 None; next_pid = 0; stable = 0 }
let page_size t = t.page_size

let ensure_capacity t pid =
  let n = Array.length t.images in
  if pid >= n then begin
    let grown = Array.make (Stdlib.max (pid + 1) (2 * n)) None in
    Array.blit t.images 0 grown 0 n;
    t.images <- grown
  end

let allocate t _kind =
  let pid = t.next_pid in
  t.next_pid <- pid + 1;
  ensure_capacity t pid;
  pid

let allocated_count t = t.next_pid
let stable_count t = t.stable
let exists t pid = pid >= 0 && pid < t.next_pid && t.images.(pid) <> None

(* Zero-copy: the checksum is verified against the stable buffer itself and
   the caller gets a borrowed (copy-on-write) view of it — no per-fetch
   [Bytes.copy].  The stable image stays isolated because [Page] mutators
   unshare before writing and this store only ever replaces whole images. *)
let read t pid =
  if pid < 0 || pid >= t.next_pid then raise (Missing_page pid);
  match t.images.(pid) with
  | None -> raise (Missing_page pid)
  | Some img ->
      let page = Page.borrow ~pid img.bytes in
      if not img.verified then
        if Page.checksum_ok page then img.verified <- true
        else raise (Corrupt_page pid);
      page

let install_image t pid image =
  if t.images.(pid) = None then t.stable <- t.stable + 1;
  t.images.(pid) <- Some image

let install_bytes t pid bytes ~verified = install_image t pid { bytes; verified }

let write t (page : Page.t) =
  if Bytes.length page.buf <> t.page_size then invalid_arg "Page_store.write: size mismatch";
  ensure_capacity t page.pid;
  if page.pid >= t.next_pid then t.next_pid <- page.pid + 1;
  install_bytes t page.pid (Page.stable_image page) ~verified:true

let corrupt_for_test t pid =
  match t.images.(pid) with
  | Some img ->
      (* Replace rather than edit in place: outstanding borrows of the old
         image must keep reading the bytes they were lent. *)
      let corrupt = Bytes.copy img.bytes in
      let i = Page.header_size + 1 in
      Bytes.set corrupt i (Char.chr (Char.code (Bytes.get corrupt i) lxor 0xFF));
      t.images.(pid) <- Some { bytes = corrupt; verified = false }
  | None -> raise (Missing_page pid)

let clone t =
  {
    page_size = t.page_size;
    images =
      Array.map
        (Option.map (fun img -> { bytes = Bytes.copy img.bytes; verified = img.verified }))
        t.images;
    next_pid = t.next_pid;
    stable = t.stable;
  }

let iter_stable t f =
  for pid = 0 to t.next_pid - 1 do
    match t.images.(pid) with
    | Some img -> f (Page.borrow ~pid img.bytes)
    | None -> ()
  done

let note_allocated t pid =
  ensure_capacity t pid;
  if pid >= t.next_pid then t.next_pid <- pid + 1
