let seed = 0x811C9DC5

let[@inline always] mix h byte = (h lxor byte) * 0x01000193 land 0xFFFFFFFF

let fold_ref buf ~off ~len ~init =
  if off < 0 || len < 0 || off + len > Bytes.length buf then
    invalid_arg "Fnv.fold_ref: range out of bounds";
  let h = ref init in
  for i = off to off + len - 1 do
    h := mix !h (Char.code (Bytes.get buf i))
  done;
  !h

(* FNV-1a is byte-sequential, so "word-wide" here means one bounds-checked
   64-bit load per 8 bytes with the bytes then mixed in address order — the
   hash value is identical to the byte-at-a-time reference, only the memory
   traffic changes.  [get_int64_le] fixes byte order regardless of host
   endianness; byte 7 is re-read directly because [Int64.to_int] keeps only
   63 bits and would lose its high bit. *)
let fold buf ~off ~len ~init =
  if off < 0 || len < 0 || off + len > Bytes.length buf then
    invalid_arg "Fnv.fold: range out of bounds";
  let h = ref init in
  let i = ref off in
  let stop = off + len - 7 in
  while !i < stop do
    let w = Int64.to_int (Bytes.get_int64_le buf !i) in
    let h0 = mix !h (w land 0xff) in
    let h1 = mix h0 ((w lsr 8) land 0xff) in
    let h2 = mix h1 ((w lsr 16) land 0xff) in
    let h3 = mix h2 ((w lsr 24) land 0xff) in
    let h4 = mix h3 ((w lsr 32) land 0xff) in
    let h5 = mix h4 ((w lsr 40) land 0xff) in
    let h6 = mix h5 ((w lsr 48) land 0xff) in
    h := mix h6 (Char.code (Bytes.unsafe_get buf (!i + 7)));
    i := !i + 8
  done;
  let last = off + len - 1 in
  while !i <= last do
    h := mix !h (Char.code (Bytes.unsafe_get buf !i));
    incr i
  done;
  !h

let sub buf ~off ~len = fold buf ~off ~len ~init:seed
