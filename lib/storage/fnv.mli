(** 32-bit FNV-1a over byte ranges — the one checksum used for both page
    images and log frames.

    [fold] is the production implementation: it strides the range eight
    bytes at a time (one [Bytes.get_int64_le] load per word, bytes mixed in
    address order, [unsafe_get] for the tail), producing {e exactly} the
    same hash as the textbook byte-at-a-time loop.  [fold_ref] is that
    byte-wise reference, kept exported so the property tests and the
    microbench can pin the equivalence and the speedup. *)

val seed : int
(** The FNV-1a offset basis, [0x811C9DC5]. *)

val fold : Bytes.t -> off:int -> len:int -> init:int -> int
(** Word-wide FNV-1a of [buf.[off .. off+len)], continuing from [init].
    Chain calls (passing the previous result as [init]) to hash
    discontiguous ranges.  Raises [Invalid_argument] if the range is out of
    bounds. *)

val fold_ref : Bytes.t -> off:int -> len:int -> init:int -> int
(** Byte-at-a-time reference implementation; same contract as [fold]. *)

val sub : Bytes.t -> off:int -> len:int -> int
(** [fold] from [seed] — the checksum of a single contiguous range. *)
