(* Log-shipping to a physically different replica — the paper's §1.1
   motivation: because TC log records are logical (table + key, no page
   ids), they can be applied to a replica with a completely different
   physical configuration.  Here the primary uses 4 KiB pages and the
   replica 1 KiB pages: different page counts, different B-tree shapes,
   identical logical contents.

   Run with:  dune exec examples/replica.exe *)

module Db = Deut_core.Db
module Config = Deut_core.Config
module Engine = Deut_core.Engine
module Crash_image = Deut_core.Crash_image
module Lr = Deut_wal.Log_record
module Lsn = Deut_wal.Lsn
module Log = Deut_wal.Log_manager
module Rng = Deut_sim.Rng

let table = 1

(* Apply the committed transactions of a (crashed primary's) log to any Db
   through its public, purely logical API.  Two passes: find the committed
   transaction ids, then replay their operations in log order. *)
let apply_logical_log log (replica : Db.t) =
  let committed = Hashtbl.create 256 in
  Log.iter log ~from:Lsn.nil (fun _ record ->
      match record with
      | Lr.Commit { txn } -> Hashtbl.replace committed txn ()
      | _ -> ());
  let applied = ref 0 in
  Log.iter log ~from:Lsn.nil (fun _ record ->
      match record with
      | Lr.Update_rec u when Hashtbl.mem committed u.Lr.txn ->
          let txn = Db.begin_txn replica in
          let result =
            match (u.Lr.op, u.Lr.after) with
            | Lr.Insert, Some v -> Db.insert replica txn ~table:u.Lr.table ~key:u.Lr.key ~value:v
            | Lr.Update, Some v -> Db.update replica txn ~table:u.Lr.table ~key:u.Lr.key ~value:v
            | Lr.Delete, _ -> Db.delete replica txn ~table:u.Lr.table ~key:u.Lr.key
            | (Lr.Insert | Lr.Update), None -> failwith "replica apply: malformed record"
          in
          (match result with
          | Ok () -> incr applied
          | Error e -> failwith ("replica apply: " ^ Db.error_to_string e));
          Db.commit replica txn
      | _ -> ());
  !applied

let () =
  (* Primary: 4 KiB pages. *)
  let primary_config = { Config.default with Config.page_size = 4096; pool_pages = 64 } in
  let primary = Db.create ~config:primary_config () in
  Db.create_table primary ~table;
  let rng = Rng.create ~seed:2026 in
  for k = 0 to 1999 do
    Db.put primary ~table ~key:k ~value:(Printf.sprintf "row-%06d" k)
  done;
  for _ = 1 to 300 do
    let txn = Db.begin_txn primary in
    for _ = 1 to 10 do
      let k = Rng.int rng 2000 in
      match Db.update primary txn ~table ~key:k ~value:(Printf.sprintf "v2-%07d" (Rng.int rng 1_000_000)) with
      | Ok () -> ()
      | Error e -> failwith (Db.error_to_string e)
    done;
    Db.commit primary txn
  done;
  (* An uncommitted transaction: the replica must never see it. *)
  let loser = Db.begin_txn primary in
  (match Db.update primary loser ~table ~key:0 ~value:"UNCOMMITTED" with
  | Ok () -> ()
  | Error e -> failwith (Db.error_to_string e));
  Log.force (Db.engine primary).Engine.log;

  let image = Db.crash primary in
  Printf.printf "primary crashed: %d pages of %d bytes\n"
    (Deut_storage.Page_store.allocated_count image.Crash_image.store)
    primary_config.Config.page_size;

  (* Replica: 1 KiB pages — a disparate physical configuration. *)
  let replica_config = { Config.default with Config.page_size = 1024; pool_pages = 256 } in
  let replica = Db.create ~config:replica_config () in
  Db.create_table replica ~table;
  let applied = apply_logical_log image.Crash_image.log replica in
  Printf.printf "replica built: %d pages of %d bytes, %d logical operations applied\n"
    (Db.allocated_pages replica) replica_config.Config.page_size applied;

  (* The physical layouts differ... *)
  assert (Db.allocated_pages replica <> Deut_storage.Page_store.allocated_count image.Crash_image.store);

  (* ...but the logical contents are identical to the primary's committed
     state, which we obtain by recovering the primary image. *)
  let recovered_primary, _ = Db.recover image Deut_core.Recovery.Log1 in
  let primary_state = Db.dump_table recovered_primary ~table in
  let replica_state = Db.dump_table replica ~table in
  assert (List.length primary_state = 2000);
  assert (primary_state = replica_state);
  assert (Db.read replica ~table ~key:0 <> Some "UNCOMMITTED");
  (match Db.check_integrity replica with Ok () -> () | Error e -> failwith e);
  Printf.printf "replica state == primary committed state (%d rows). ok.\n"
    (List.length replica_state)
