(* Quickstart: a transactional KV store that survives a crash.

   Run with:  dune exec examples/quickstart.exe *)

module Db = Deut_core.Db
module Config = Deut_core.Config
module Recovery = Deut_core.Recovery
module Recovery_stats = Deut_core.Recovery_stats

let () =
  (* A small engine: 1 KiB pages, a 64-page cache. *)
  let config = { Config.default with Config.page_size = 1024; pool_pages = 64 } in
  let db = Db.create ~config () in
  let table = 1 in
  Db.create_table db ~table;

  (* Committed work: survives the crash. *)
  let txn = Db.begin_txn db in
  List.iter
    (fun (k, v) ->
      match Db.insert db txn ~table ~key:k ~value:v with
      | Ok () -> ()
      | Error e -> failwith (Db.error_to_string e))
    [ (1, "apples"); (2, "bread"); (3, "cheese") ];
  Db.commit db txn;

  let txn = Db.begin_txn db in
  (match Db.update db txn ~table ~key:2 ~value:"baguette" with Ok () -> () | Error e -> failwith (Db.error_to_string e));
  (match Db.delete db txn ~table ~key:3 with Ok () -> () | Error e -> failwith (Db.error_to_string e));
  Db.commit db txn;

  (* A checkpoint bounds how much log recovery must replay. *)
  Db.checkpoint db;

  (* Uncommitted work: must be rolled back by recovery's undo pass. *)
  let loser = Db.begin_txn db in
  (match Db.update db loser ~table ~key:1 ~value:"POISON" with Ok () -> () | Error e -> failwith (Db.error_to_string e));
  (* Force the log so the loser's records survive and undo has work to do. *)
  Deut_wal.Log_manager.force (Db.engine db).Deut_core.Engine.log;

  (* Pull the plug. *)
  let image = Db.crash db in
  print_endline "crashed.";

  (* Recover with logical redo + DPT + prefetch (the paper's Log2). *)
  let db', stats = Db.recover image Recovery.Log2 in
  Printf.printf "recovered in %.1f simulated ms (%d records scanned, %d losers undone)\n"
    (Recovery_stats.total_ms stats) stats.Recovery_stats.records_scanned
    stats.Recovery_stats.losers;

  List.iter
    (fun k ->
      Printf.printf "  key %d -> %s\n" k
        (match Db.read db' ~table ~key:k with Some v -> v | None -> "<absent>"))
    [ 1; 2; 3 ];

  assert (Db.read db' ~table ~key:1 = Some "apples") (* loser rolled back *);
  assert (Db.read db' ~table ~key:2 = Some "baguette");
  assert (Db.read db' ~table ~key:3 = None);
  print_endline "state is exactly the committed state. ok."
