(* Bank transfers under key locking: atomicity + durability end to end.

   Transfers move money between accounts inside transactions, with strict
   2PL key locks (a conflict aborts and the transfer retries).  The
   invariant — total money is conserved — must hold at every observable
   point: before the crash, and after recovery, which rolls back the
   in-flight transfer caught by the crash.

   Run with:  dune exec examples/bank.exe *)

module Db = Deut_core.Db
module Config = Deut_core.Config
module Recovery = Deut_core.Recovery
module Rng = Deut_sim.Rng

let accounts = 200
let initial_balance = 1_000
let table = 1

let balance db key =
  match Db.read db ~table ~key with
  | Some v -> int_of_string v
  | None -> failwith (Printf.sprintf "account %d missing" key)

let total db = Db.fold_table db ~table ~init:0 ~f:(fun acc _ v -> acc + int_of_string v)

let transfer db rng =
  let src = Rng.int rng accounts and dst = Rng.int rng accounts in
  if src = dst then ()
  else begin
    let txn = Db.begin_txn db in
    let attempt =
      (* Locked reads, then locked writes: all-or-nothing under 2PL. *)
      match (Db.read_locked db txn ~table ~key:src, Db.read_locked db txn ~table ~key:dst) with
      | Ok (Some s), Ok (Some d) ->
          let amount = 1 + Rng.int rng 50 in
          let s = int_of_string s and d = int_of_string d in
          if s < amount then Ok () (* insufficient funds: empty transaction *)
          else
            let ( let* ) r f = Result.bind r f in
            let* () = Db.update db txn ~table ~key:src ~value:(string_of_int (s - amount)) in
            Db.update db txn ~table ~key:dst ~value:(string_of_int (d + amount))
      | Error e, _ | _, Error e -> Error e
      | Ok None, _ | _, Ok None -> failwith "account vanished"
    in
    match attempt with
    | Ok () -> Db.commit db txn
    | Error (Db.Lock_conflict _) -> Db.abort db txn (* no-wait 2PL: abort, move on *)
    | Error e -> failwith (Db.error_to_string e)
  end

let () =
  let config =
    { Config.default with Config.page_size = 1024; pool_pages = 64; locking = true }
  in
  let db = Db.create ~config () in
  Db.create_table db ~table;
  for k = 0 to accounts - 1 do
    Db.put db ~table ~key:k ~value:(string_of_int initial_balance)
  done;
  Db.checkpoint db;
  let expected_total = accounts * initial_balance in
  assert (total db = expected_total);

  let rng = Rng.create ~seed:4242 in
  for _ = 1 to 2_000 do
    transfer db rng
  done;
  Printf.printf "after 2000 transfers: total = %d (conserved: %b)\n%!" (total db)
    (total db = expected_total);
  assert (total db = expected_total);

  (* Crash with a transfer in flight: debit applied, credit not yet. *)
  let txn = Db.begin_txn db in
  (match Db.read_locked db txn ~table ~key:0 with
  | Ok (Some s) ->
      (match Db.update db txn ~table ~key:0 ~value:(string_of_int (int_of_string s - 500)) with
      | Ok () -> ()
      | Error e -> failwith (Db.error_to_string e))
  | _ -> failwith "read failed");
  Deut_wal.Log_manager.force (Db.engine db).Deut_core.Engine.log;
  let half_done = balance db 0 in
  Printf.printf "crash with a debit in flight (account 0: %d, money missing!)\n%!" half_done;
  let image = Db.crash db in

  let recovered, stats = Db.recover image Recovery.Log2 in
  Printf.printf "recovered: %d losers undone, account 0 restored to %d\n%!"
    stats.Deut_core.Recovery_stats.losers (balance recovered 0);
  assert (total recovered = expected_total);
  Printf.printf "invariant holds after recovery: total = %d\n\n%!" (total recovered);
  print_string (Db.stats_string recovered)
