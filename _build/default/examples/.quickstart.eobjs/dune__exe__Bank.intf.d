examples/bank.mli:
