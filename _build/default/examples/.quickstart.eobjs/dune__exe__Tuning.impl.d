examples/tuning.ml: Deut_core Deut_workload List Printf
