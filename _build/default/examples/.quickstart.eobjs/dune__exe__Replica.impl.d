examples/replica.ml: Deut_core Deut_sim Deut_storage Deut_wal Hashtbl List Printf
