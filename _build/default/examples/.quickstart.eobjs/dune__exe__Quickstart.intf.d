examples/quickstart.mli:
