examples/tuning.mli:
