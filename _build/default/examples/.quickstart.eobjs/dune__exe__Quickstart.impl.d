examples/quickstart.ml: Deut_core Deut_wal List Printf
