examples/bank.ml: Deut_core Deut_sim Deut_wal Printf Result
