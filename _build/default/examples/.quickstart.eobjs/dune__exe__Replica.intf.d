examples/replica.mli:
