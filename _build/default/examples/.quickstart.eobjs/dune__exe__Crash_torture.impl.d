examples/crash_torture.ml: Array Deut_core Deut_sim Deut_workload List Printf Sys
