(* The Appendix D trade-off, live: how much the DC logs during normal
   execution versus how fast logical recovery runs.  Sweeps the Δ-record
   period (how often the DC emits its dirty/flush bookkeeping) and prints
   normal-execution overhead against Log1 redo time.

   Run with:  dune exec examples/tuning.exe *)

module Config = Deut_core.Config
module Recovery = Deut_core.Recovery
module Recovery_stats = Deut_core.Recovery_stats
module Workload = Deut_workload.Workload
module Driver = Deut_workload.Driver
module Db = Deut_core.Db
module Report = Deut_workload.Report

let () =
  let rows = 4000 in
  let header =
    [ "Δ period (updates)"; "Δ records"; "Δ KiB logged"; "DPT size"; "Log1 redo (ms)"; "tail" ]
  in
  let row period =
    let config =
      {
        Config.default with
        Config.page_size = 1024;
        pool_pages = 96;
        delta_period = period;
        delta_capacity = 512;
      }
    in
    let spec = { Workload.default with Workload.rows; value_size = 16; seed = 77 } in
    let driver = Driver.create ~config spec in
    Driver.run_crash_protocol driver ~checkpoints:3 ~interval:600 ~tail:(min 25 (period / 2));
    let db = Driver.db driver in
    let deltas = Db.deltas_written db and delta_kb = float_of_int (Db.delta_bytes db) /. 1024. in
    let image = Driver.crash driver in
    let recovered, stats = Db.recover image Recovery.Log1 in
    (match Driver.verify_recovered driver recovered with
    | Ok () -> ()
    | Error e -> failwith e);
    [
      string_of_int period;
      string_of_int deltas;
      Printf.sprintf "%.1f" delta_kb;
      string_of_int stats.Recovery_stats.dpt_size;
      Printf.sprintf "%.1f" (Recovery_stats.redo_ms stats);
      string_of_int stats.Recovery_stats.tail_records;
    ]
  in
  let rows_out = List.map row [ 10; 25; 50; 100; 200; 400 ] in
  print_string
    (Report.table
       ~title:
         "Δ-record cadence: normal-operation logging overhead vs recovery speed\n\
          (frequent Δ records shrink the unprotected log tail but cost log\n\
          bandwidth — the spectrum of Appendix D)"
       ~header ~rows:rows_out ())
