(* Crash torture: randomized workloads crashed at random points, recovered
   with every method (including the Appendix D logging variants), each
   recovery checked against the committed-state oracle and the B-tree
   structural invariants.  A miniature of the repository's qcheck suites,
   runnable as a standalone confidence drill.

   Run with:  dune exec examples/crash_torture.exe -- [rounds] *)

module Db = Deut_core.Db
module Config = Deut_core.Config
module Recovery = Deut_core.Recovery
module Workload = Deut_workload.Workload
module Driver = Deut_workload.Driver
module Rng = Deut_sim.Rng

let () =
  let rounds = try int_of_string Sys.argv.(1) with _ -> 12 in
  let rng = Rng.create ~seed:31337 in
  let failures = ref 0 in
  for round = 1 to rounds do
    (* Randomize everything that plausibly interacts with recovery. *)
    let dpt_mode =
      match Rng.int rng 3 with 0 -> Config.Standard | 1 -> Config.Perfect | _ -> Config.Reduced
    in
    let log_layout = if Rng.int rng 3 = 0 then Config.Split else Config.Integrated in
    let config =
      {
        Config.default with
        Config.page_size = 512 * (1 + Rng.int rng 2);
        pool_pages = 24 + Rng.int rng 64;
        delta_period = 20 + Rng.int rng 60;
        delta_capacity = 32 + Rng.int rng 64;
        lazy_writer_every = 1 + Rng.int rng 3;
        dpt_mode;
        log_layout;
      }
    in
    let op_mix =
      if Rng.bool rng then Workload.Update_only
      else Workload.Mixed { update = 0.5; insert = 0.25; delete = 0.15; read = 0.1 }
    in
    let spec =
      {
        Workload.default with
        Workload.rows = 300 + Rng.int rng 1500;
        value_size = 8 + Rng.int rng 24;
        op_mix;
        key_dist = (if Rng.bool rng then Workload.Uniform else Workload.Zipf 0.9);
        seed = Rng.int rng 100000;
      }
    in
    let driver = Driver.create ~config spec in
    Driver.run_crash_protocol driver
      ~checkpoints:(1 + Rng.int rng 3)
      ~interval:(100 + Rng.int rng 300)
      ~tail:(Rng.int rng 30);
    if Rng.bool rng then Driver.start_loser driver ~ops:(1 + Rng.int rng 12);
    let image = Driver.crash driver in
    let methods =
      match log_layout with
      | Config.Split -> [ Recovery.Log0; Recovery.Log1; Recovery.Log2 ]
      | Config.Integrated -> Recovery.all_methods
    in
    List.iter
      (fun m ->
        let recovered, _stats = Db.recover image m in
        match Driver.verify_recovered driver recovered with
        | Ok () -> ()
        | Error msg ->
            incr failures;
            Printf.printf "round %2d %-5s FAILED: %s\n%!" round (Recovery.method_to_string m) msg)
      methods;
    Printf.printf "round %2d ok (%s, %s, %d rows, pool %d, %s)\n%!" round
      (Config.log_layout_to_string log_layout)
      (Config.dpt_mode_to_string config.Config.dpt_mode)
      spec.Workload.rows config.Config.pool_pages
      (match op_mix with Workload.Update_only -> "update-only" | _ -> "mixed ops")
  done;
  if !failures = 0 then Printf.printf "torture passed: %d rounds x 5 methods, all verified.\n" rounds
  else begin
    Printf.printf "%d failures!\n" !failures;
    exit 1
  end
