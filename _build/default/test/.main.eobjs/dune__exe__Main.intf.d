test/main.mli:
