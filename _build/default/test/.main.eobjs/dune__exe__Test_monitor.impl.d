test/test_monitor.ml: Alcotest Array Deut_core Deut_wal List
