test/test_split_log.ml: Alcotest Deut_core Deut_wal Deut_workload List Option Printf
