test/test_workload.ml: Alcotest Deut_core Deut_sim Deut_workload List String
