test/test_btree.ml: Alcotest Array Deut_btree Deut_buffer Deut_sim Deut_storage Deut_wal Int List Map Printf QCheck2 QCheck_alcotest String
