test/main.ml: Alcotest Test_btree Test_cursor Test_dpt Test_engine Test_locks Test_monitor Test_node Test_pool Test_recovery Test_sim Test_split_log Test_storage Test_wal Test_workload
