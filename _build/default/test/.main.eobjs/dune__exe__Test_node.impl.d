test/test_node.ml: Alcotest Char Deut_btree Deut_storage Int List Printf QCheck2 QCheck_alcotest String
