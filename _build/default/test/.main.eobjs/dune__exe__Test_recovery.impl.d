test/test_recovery.ml: Alcotest Deut_core Deut_sim Deut_storage Deut_wal Deut_workload Hashtbl List Printf QCheck2 QCheck_alcotest
