test/test_dpt.ml: Alcotest Array Deut_core Deut_wal List
