test/test_cursor.ml: Alcotest Deut_btree Deut_buffer Deut_core Deut_sim Deut_storage Deut_wal List Printf QCheck2 QCheck_alcotest String
