test/test_locks.ml: Alcotest Deut_core Deut_wal Printf
