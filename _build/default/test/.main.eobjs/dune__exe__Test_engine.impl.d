test/test_engine.ml: Alcotest Deut_buffer Deut_core Deut_sim Deut_storage Deut_wal Printf String
