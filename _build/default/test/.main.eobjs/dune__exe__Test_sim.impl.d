test/test_sim.ml: Alcotest Array Deut_sim Fun List String
