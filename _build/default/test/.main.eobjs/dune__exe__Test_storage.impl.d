test/test_storage.ml: Alcotest Deut_storage List
