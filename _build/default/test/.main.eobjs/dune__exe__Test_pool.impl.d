test/test_pool.ml: Alcotest Deut_buffer Deut_sim Deut_storage Deut_wal List
