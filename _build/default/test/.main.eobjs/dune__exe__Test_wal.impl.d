test/test_wal.ml: Alcotest Array Deut_sim Deut_wal List QCheck2 QCheck_alcotest String
