(* Range scans: the cursor over the leaf sibling chain, and the Db-level
   scan API. *)

module Db = Deut_core.Db
module Config = Deut_core.Config
module Btree = Deut_btree.Btree
module Cursor = Deut_btree.Cursor
module Lr = Deut_wal.Log_record
module Log = Deut_wal.Log_manager
module Pool = Deut_buffer.Buffer_pool
module Page_store = Deut_storage.Page_store

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Standalone tree harness (same contract as test_btree). *)
let make_tree () =
  let clock = Deut_sim.Clock.create () in
  let disk = Deut_sim.Disk.create clock in
  let store = Page_store.create ~page_size:256 in
  let pool = Pool.create ~capacity:64 ~store ~disk ~clock () in
  let log = Log.create ~page_size:256 in
  let log_smo smo =
    let lsn = Log.append log (Lr.Smo smo) in
    Btree.stamp_smo pool smo ~lsn;
    lsn
  in
  Btree.format_store ~pool ~log_smo;
  Btree.create ~pool ~table:1 ~log_smo ()

let lsn = ref 0

let insert tree ~key ~value =
  match Btree.prepare_write tree ~key ~op:Lr.Insert ~value_len:(String.length value) with
  | Btree.Leaf { pid; _ } ->
      incr lsn;
      Btree.apply_insert tree ~pid ~key ~value ~lsn:!lsn
  | _ -> Alcotest.fail "insert rejected"

let delete tree ~key =
  match Btree.prepare_write tree ~key ~op:Lr.Delete ~value_len:0 with
  | Btree.Leaf { pid; _ } ->
      incr lsn;
      Btree.apply_delete tree ~pid ~key ~lsn:!lsn
  | _ -> Alcotest.fail "delete rejected"

let test_empty_tree () =
  let tree = make_tree () in
  let c = Cursor.first tree in
  check "empty tree: exhausted" false (Cursor.is_valid c);
  Cursor.next c;
  check "next on exhausted is a no-op" false (Cursor.is_valid c);
  Cursor.close c;
  (try
     ignore (Cursor.key c);
     Alcotest.fail "key on closed cursor must raise"
   with Invalid_argument _ -> ());
  check_int "empty range" 0 (Cursor.count_range tree ~lo:0 ~hi:100)

let test_full_scan_order () =
  let tree = make_tree () in
  (* Multi-leaf tree: every third key. *)
  for i = 0 to 599 do
    insert tree ~key:(3 * i) ~value:(string_of_int i)
  done;
  let c = Cursor.first tree in
  let n = ref 0 in
  while Cursor.is_valid c do
    check_int "keys in order" (3 * !n) (Cursor.key c);
    check "value matches" true (Cursor.value c = string_of_int !n);
    incr n;
    Cursor.next c
  done;
  Cursor.close c;
  check_int "all entries scanned" 600 !n

let test_seek_semantics () =
  let tree = make_tree () in
  for i = 0 to 99 do
    insert tree ~key:(10 * i) ~value:"v"
  done;
  let c = Cursor.seek tree ~key:55 in
  check_int "seek lands on next larger key" 60 (Cursor.key c);
  Cursor.close c;
  let c = Cursor.seek tree ~key:60 in
  check_int "seek exact hit" 60 (Cursor.key c);
  Cursor.close c;
  let c = Cursor.seek tree ~key:991 in
  check "seek past the end" false (Cursor.is_valid c);
  Cursor.close c

let test_range_bounds () =
  let tree = make_tree () in
  for i = 0 to 199 do
    insert tree ~key:i ~value:(string_of_int (i * i))
  done;
  check_int "half-open range" 10 (Cursor.count_range tree ~lo:20 ~hi:30);
  check_int "lo inclusive" 1 (Cursor.count_range tree ~lo:0 ~hi:1);
  check_int "empty when lo = hi" 0 (Cursor.count_range tree ~lo:50 ~hi:50);
  check_int "clipped at the end" 50 (Cursor.count_range tree ~lo:150 ~hi:10_000);
  let sum = Cursor.fold_range tree ~lo:10 ~hi:13 ~init:0 ~f:(fun acc _ v -> acc + int_of_string v) in
  check_int "fold_range values" (100 + 121 + 144) sum

let test_scan_skips_deleted_and_empty_leaves () =
  let tree = make_tree () in
  for i = 0 to 299 do
    insert tree ~key:i ~value:"x"
  done;
  (* Hollow out a whole key region, leaving empty leaves in the chain. *)
  for i = 60 to 239 do
    delete tree ~key:i
  done;
  let keys =
    List.rev (Cursor.fold_range tree ~lo:0 ~hi:1000 ~init:[] ~f:(fun acc k _ -> k :: acc))
  in
  check_int "survivors" 120 (List.length keys);
  check "gap skipped" true (not (List.mem 100 keys));
  check "resumes after the gap" true (List.mem 240 keys);
  match Btree.check_tree tree with Ok () -> () | Error e -> Alcotest.fail e

let test_db_scan_api () =
  let config = { Config.default with Config.page_size = 1024; pool_pages = 32 } in
  let db = Db.create ~config () in
  Db.create_table db ~table:1;
  for k = 0 to 499 do
    Db.put db ~table:1 ~key:k ~value:(Printf.sprintf "v%d" k)
  done;
  let entries = Db.scan db ~table:1 ~lo:100 ~hi:105 in
  Alcotest.(check (list (pair int string)))
    "db scan"
    [ (100, "v100"); (101, "v101"); (102, "v102"); (103, "v103"); (104, "v104") ]
    entries;
  (* Scans work on a recovered database too. *)
  Db.checkpoint db;
  let image = Db.crash db in
  let recovered, _ = Db.recover image Deut_core.Recovery.Log2 in
  Alcotest.(check (list (pair int string))) "scan after recovery" entries
    (Db.scan recovered ~table:1 ~lo:100 ~hi:105)

(* qcheck: fold_range over a tree built from random ops agrees with the
   filtered full dump. *)
let range_model_gen =
  let open QCheck2.Gen in
  let* keys = list_size (0 -- 150) (0 -- 200) in
  let* deletions = list_size (0 -- 60) (0 -- 200) in
  let* lo = 0 -- 220 and* span = 0 -- 100 in
  return (keys, deletions, lo, lo + span)

let prop_range_model =
  QCheck2.Test.make ~name:"fold_range agrees with filtered dump" ~count:100 range_model_gen
    (fun (keys, deletions, lo, hi) ->
      let tree = make_tree () in
      List.iter
        (fun k ->
          match Btree.prepare_write tree ~key:k ~op:Lr.Insert ~value_len:4 with
          | Btree.Leaf { pid; _ } ->
              incr lsn;
              Btree.apply_insert tree ~pid ~key:k ~value:(Printf.sprintf "%04d" k) ~lsn:!lsn
          | Btree.Duplicate_key -> ()
          | Btree.Missing_key -> assert false)
        keys;
      List.iter
        (fun k ->
          match Btree.prepare_write tree ~key:k ~op:Lr.Delete ~value_len:0 with
          | Btree.Leaf { pid; _ } ->
              incr lsn;
              Btree.apply_delete tree ~pid ~key:k ~lsn:!lsn
          | Btree.Missing_key -> ()
          | Btree.Duplicate_key -> assert false)
        deletions;
      let via_cursor =
        List.rev (Cursor.fold_range tree ~lo ~hi ~init:[] ~f:(fun acc k v -> (k, v) :: acc))
      in
      let via_dump =
        List.rev (Btree.fold_entries tree ~init:[] ~f:(fun acc k v -> (k, v) :: acc))
        |> List.filter (fun (k, _) -> k >= lo && k < hi)
      in
      via_cursor = via_dump)

let suite =
  [
    Alcotest.test_case "empty tree" `Quick test_empty_tree;
    Alcotest.test_case "full scan order" `Quick test_full_scan_order;
    Alcotest.test_case "seek semantics" `Quick test_seek_semantics;
    Alcotest.test_case "range bounds" `Quick test_range_bounds;
    Alcotest.test_case "deleted regions skipped" `Quick test_scan_skips_deleted_and_empty_leaves;
    Alcotest.test_case "db scan api" `Quick test_db_scan_api;
    QCheck_alcotest.to_alcotest prop_range_model;
  ]
