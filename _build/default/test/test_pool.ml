(* Buffer pool: caching, eviction, WAL hook ordering, checkpoint epochs,
   prefetch, pinning, the lazy writer. *)

module Page = Deut_storage.Page
module Page_store = Deut_storage.Page_store
module Pool = Deut_buffer.Buffer_pool
module Clock = Deut_sim.Clock
module Disk = Deut_sim.Disk
module Lsn = Deut_wal.Lsn

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

type env = {
  clock : Clock.t;
  disk : Disk.t;
  store : Page_store.t;
  pool : Pool.t;
  dirty_events : (int * Lsn.t) list ref;
  flush_events : int list ref;
  forced_upto : Lsn.t ref;
}

let make ?(capacity = 8) ?(pages = 32) ?lazy_writer_every ?lazy_writer_min_age () =
  let clock = Clock.create () in
  let disk = Disk.create clock in
  let store = Page_store.create ~page_size:256 in
  let pool = Pool.create ~capacity ?lazy_writer_every ?lazy_writer_min_age ~store ~disk ~clock () in
  let dirty_events = ref [] and flush_events = ref [] and forced_upto = ref Lsn.nil in
  Pool.set_hooks pool
    {
      Pool.on_dirty = (fun ~pid ~lsn -> dirty_events := (pid, lsn) :: !dirty_events);
      on_flush = (fun ~pid -> flush_events := pid :: !flush_events);
      ensure_stable =
        (fun ~tc_lsn ~dc_lsn ->
          forced_upto := Lsn.max !forced_upto (Lsn.max tc_lsn dc_lsn));
    };
  (* Seed the store with [pages] stable pages. *)
  for _ = 1 to pages do
    let pid = Page_store.allocate store Page.Meta in
    let p = Page.create ~page_size:256 ~pid Page.Meta in
    Page.set_u16 p 32 pid;
    Page_store.write store p
  done;
  { clock; disk; store; pool; dirty_events; flush_events; forced_upto }

let test_hit_miss () =
  let e = make () in
  let p = Pool.get e.pool 3 in
  check_int "content loaded" 3 (Page.get_u16 p 32);
  let c = Pool.counters e.pool in
  check_int "one miss" 1 c.Pool.misses;
  ignore (Pool.get e.pool 3);
  check_int "then a hit" 1 c.Pool.hits;
  check_int "still one miss" 1 c.Pool.misses;
  check "hit is free" true (c.Pool.stall_us > 0.0);
  check_int "cached" 1 (Pool.size e.pool)

let test_eviction_capacity () =
  let e = make ~capacity:4 () in
  for pid = 0 to 9 do
    ignore (Pool.get e.pool pid)
  done;
  check_int "bounded by capacity" 4 (Pool.size e.pool);
  check "evictions happened" true ((Pool.counters e.pool).Pool.evictions > 0)

let test_dirty_flush_cycle () =
  let e = make ~capacity:4 () in
  let p = Pool.get e.pool 1 in
  Page.set_u16 p 32 999;
  Pool.mark_dirty e.pool ~pid:1 ~lsn:50;
  check_int "plsn stamped" 50 (Page.plsn p);
  check "dirty" true (Pool.is_dirty e.pool 1);
  check_int "dirty count" 1 (Pool.dirty_count e.pool);
  Alcotest.(check (list (pair int int))) "dirty event fired" [ (1, 50) ] !(e.dirty_events);
  (* Re-dirtying does not fire another event but raises the pLSN. *)
  Pool.mark_dirty e.pool ~pid:1 ~lsn:70;
  check_int "one dirty event only" 1 (List.length !(e.dirty_events));
  check_int "plsn raised" 70 (Page.plsn p);
  Pool.flush_page e.pool 1;
  check "clean after flush" false (Pool.is_dirty e.pool 1);
  Alcotest.(check (list int)) "flush event" [ 1 ] !(e.flush_events);
  check_int "WAL forced through plsn" 70 !(e.forced_upto);
  (* The stable image now carries the update. *)
  check_int "store updated" 999 (Page.get_u16 (Page_store.read e.store 1) 32)

let test_eviction_flushes_dirty () =
  let e = make ~capacity:4 () in
  let p = Pool.get e.pool 0 in
  Page.set_u16 p 32 123;
  Pool.mark_dirty e.pool ~pid:0 ~lsn:10;
  (* Fill the cache so pid 0 is evicted. *)
  for pid = 1 to 8 do
    ignore (Pool.get e.pool pid)
  done;
  check "pid 0 evicted" false (Pool.contains e.pool 0);
  check "flush event on eviction" true (List.mem 0 !(e.flush_events));
  check_int "contents survived via store" 123 (Page.get_u16 (Pool.get e.pool 0) 32)

let test_pin_prevents_eviction () =
  let e = make ~capacity:4 () in
  ignore (Pool.get e.pool ~pin:true 0);
  for pid = 1 to 12 do
    ignore (Pool.get e.pool pid)
  done;
  check "pinned page survives pressure" true (Pool.contains e.pool 0);
  Pool.unpin e.pool 0;
  for pid = 13 to 20 do
    ignore (Pool.get e.pool pid)
  done;
  check "unpinned page can go" false (Pool.contains e.pool 0);
  (try
     Pool.unpin e.pool 5;
     Alcotest.fail "unpin of unpinned frame must raise"
   with Invalid_argument _ -> ())

let test_all_pinned_fails () =
  let e = make ~capacity:4 () in
  for pid = 0 to 3 do
    ignore (Pool.get e.pool ~pin:true pid)
  done;
  try
    ignore (Pool.get e.pool 10);
    Alcotest.fail "eviction with all frames pinned must fail"
  with Failure _ -> ()

let test_checkpoint_epochs () =
  let e = make ~capacity:8 () in
  ignore (Pool.get e.pool 0);
  Pool.mark_dirty e.pool ~pid:0 ~lsn:5;
  Pool.begin_checkpoint_epoch e.pool;
  (* Dirtied after the flip: belongs to the new epoch. *)
  ignore (Pool.get e.pool 1);
  Pool.mark_dirty e.pool ~pid:1 ~lsn:6;
  Pool.flush_previous_epoch e.pool;
  check "old epoch flushed" false (Pool.is_dirty e.pool 0);
  check "new epoch kept dirty" true (Pool.is_dirty e.pool 1)

let test_prefetch () =
  let e = make ~capacity:8 () in
  Pool.prefetch e.pool [ 2; 3; 4 ];
  check_int "in flight" 3 (Pool.in_flight_count e.pool);
  check_int "issued" 3 (Pool.counters e.pool).Pool.prefetch_issued;
  check_int "not yet cached" 0 (Pool.size e.pool);
  (* Duplicate prefetch is a no-op. *)
  Pool.prefetch e.pool [ 2; 3 ];
  check_int "no duplicates" 3 (Pool.in_flight_count e.pool);
  let p = Pool.get e.pool 3 in
  check_int "prefetched content" 3 (Page.get_u16 p 32);
  let c = Pool.counters e.pool in
  check_int "satisfied from prefetch" 1 c.Pool.prefetch_hits;
  check_int "no sync miss" 0 c.Pool.misses;
  check_int "two still in flight" 2 (Pool.in_flight_count e.pool);
  (* Waiting for the prefetch advanced the clock to the IO completion. *)
  check "stall accounted" true (c.Pool.stall_us > 0.0)

let test_prefetch_budget () =
  let e = make ~capacity:4 () in
  ignore (Pool.get e.pool 0);
  ignore (Pool.get e.pool 1);
  Pool.prefetch e.pool [ 2; 3; 4; 5; 6; 7 ];
  check "prefetch bounded by free space"  true (Pool.in_flight_count e.pool <= 2)

let test_prefetch_completed_is_free () =
  let e = make ~capacity:8 () in
  Pool.prefetch e.pool [ 5 ];
  Disk.drain e.disk;
  let stall_before = (Pool.counters e.pool).Pool.stall_us in
  ignore (Pool.get e.pool 5);
  check "no stall when IO already done" true
    ((Pool.counters e.pool).Pool.stall_us = stall_before)

let test_install_replaces () =
  let e = make ~capacity:8 () in
  ignore (Pool.get e.pool 2);
  let fresh = Page.create ~page_size:256 ~pid:2 Page.Meta in
  Page.set_u16 fresh 32 777;
  Page.set_plsn fresh 33;
  Pool.install e.pool fresh ~dirty:true;
  let p = Pool.get e.pool 2 in
  check_int "installed image visible" 777 (Page.get_u16 p 32);
  check "installed dirty" true (Pool.is_dirty e.pool 2);
  check "dirty event for install" true (List.mem_assoc 2 !(e.dirty_events))

let test_lazy_writer () =
  (* Writer flushes one aged dirty page per miss. *)
  let e = make ~capacity:8 ~lazy_writer_every:1 ~lazy_writer_min_age:2 () in
  ignore (Pool.get e.pool 0);
  Pool.mark_dirty e.pool ~pid:0 ~lsn:1;
  (* Not aged yet: a miss must not flush it. *)
  ignore (Pool.get e.pool 1);
  check "young page not flushed" true (Pool.is_dirty e.pool 0);
  (* Age it with two more update ticks elsewhere. *)
  Pool.mark_dirty e.pool ~pid:1 ~lsn:2;
  Pool.mark_dirty e.pool ~pid:1 ~lsn:3;
  ignore (Pool.get e.pool 2);
  check "aged page flushed by writer" false (Pool.is_dirty e.pool 0);
  (* Disabled writer does nothing. *)
  Pool.set_lazy_writer_enabled e.pool false;
  Pool.mark_dirty e.pool ~pid:2 ~lsn:4;
  Pool.mark_dirty e.pool ~pid:2 ~lsn:5;
  Pool.mark_dirty e.pool ~pid:2 ~lsn:6;
  ignore (Pool.get e.pool 3);
  ignore (Pool.get e.pool 4);
  check "disabled writer leaves dirt" true (Pool.is_dirty e.pool 1 && Pool.is_dirty e.pool 2)

let test_dirty_pids () =
  let e = make ~capacity:8 () in
  ignore (Pool.get e.pool 1);
  ignore (Pool.get e.pool 2);
  Pool.mark_dirty e.pool ~pid:1 ~lsn:1;
  Pool.mark_dirty e.pool ~pid:2 ~lsn:2;
  Alcotest.(check (list int)) "dirty pids" [ 1; 2 ] (List.sort compare (Pool.dirty_pids e.pool))

let suite =
  [
    Alcotest.test_case "hit/miss" `Quick test_hit_miss;
    Alcotest.test_case "eviction capacity" `Quick test_eviction_capacity;
    Alcotest.test_case "dirty/flush cycle" `Quick test_dirty_flush_cycle;
    Alcotest.test_case "eviction flushes dirty" `Quick test_eviction_flushes_dirty;
    Alcotest.test_case "pin prevents eviction" `Quick test_pin_prevents_eviction;
    Alcotest.test_case "all pinned fails" `Quick test_all_pinned_fails;
    Alcotest.test_case "checkpoint epochs" `Quick test_checkpoint_epochs;
    Alcotest.test_case "prefetch" `Quick test_prefetch;
    Alcotest.test_case "prefetch budget" `Quick test_prefetch_budget;
    Alcotest.test_case "completed prefetch is free" `Quick test_prefetch_completed_is_free;
    Alcotest.test_case "install replaces" `Quick test_install_replaces;
    Alcotest.test_case "lazy writer" `Quick test_lazy_writer;
    Alcotest.test_case "dirty pids" `Quick test_dirty_pids;
  ]
