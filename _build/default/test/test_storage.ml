(* Pages and the stable page store. *)

module Page = Deut_storage.Page
module Page_store = Deut_storage.Page_store

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let test_page_header () =
  let p = Page.create ~page_size:256 ~pid:3 Page.Btree_leaf in
  check_int "pid" 3 p.Page.pid;
  check_int "size" 256 (Page.size p);
  check "kind" true (Page.kind p = Page.Btree_leaf);
  check_int "fresh plsn" 0 (Page.plsn p);
  Page.set_plsn p 123456789;
  check_int "plsn roundtrip" 123456789 (Page.plsn p);
  Page.set_kind p Page.Btree_internal;
  check "kind change" true (Page.kind p = Page.Btree_internal)

let test_page_accessors () =
  let p = Page.create ~page_size:512 ~pid:0 Page.Meta in
  Page.set_u8 p 20 0xAB;
  check_int "u8" 0xAB (Page.get_u8 p 20);
  Page.set_u16 p 40 0xBEEF;
  check_int "u16" 0xBEEF (Page.get_u16 p 40);
  Page.set_u32 p 44 0xDEADBEEF;
  check_int "u32" 0xDEADBEEF (Page.get_u32 p 44);
  Page.set_u64 p 48 max_int;
  check_int "u64 max_int" max_int (Page.get_u64 p 48);
  Page.set_u64 p 48 (-1);
  check_int "u64 sign roundtrip" (-1) (Page.get_u64 p 48);
  Page.set_bytes p ~off:100 "hello";
  check_str "bytes" "hello" (Page.get_bytes p ~off:100 ~len:5);
  Page.blit_within p ~src:100 ~dst:200 ~len:5;
  check_str "blit" "hello" (Page.get_bytes p ~off:200 ~len:5);
  Page.zero_range p ~off:100 ~len:5;
  check_str "zero" "\000\000\000\000\000" (Page.get_bytes p ~off:100 ~len:5)

let test_page_copy_independent () =
  let p = Page.create ~page_size:64 ~pid:1 Page.Meta in
  Page.set_u16 p 32 7;
  let q = Page.copy p in
  check "copies equal" true (Page.equal_contents p q);
  Page.set_u16 q 20 9;
  check "copy is independent" false (Page.equal_contents p q);
  check_int "original untouched" 7 (Page.get_u16 p 32)

let test_store_basics () =
  let s = Page_store.create ~page_size:128 in
  let pid0 = Page_store.allocate s Page.Meta in
  let pid1 = Page_store.allocate s Page.Btree_leaf in
  check_int "pids monotone" 0 pid0;
  check_int "pids monotone 2" 1 pid1;
  check_int "allocated" 2 (Page_store.allocated_count s);
  check_int "nothing stable yet" 0 (Page_store.stable_count s);
  check "exists false before write" false (Page_store.exists s pid1);
  (try
     ignore (Page_store.read s pid1);
     Alcotest.fail "read of unwritten page must raise"
   with Page_store.Missing_page 1 -> ());
  let p = Page.create ~page_size:128 ~pid:pid1 Page.Btree_leaf in
  Page.set_u16 p 32 99;
  Page_store.write s p;
  check "exists after write" true (Page_store.exists s pid1);
  let r = Page_store.read s pid1 in
  check_int "contents persisted" 99 (Page.get_u16 r 32);
  (* The stable image is a snapshot, not a live alias. *)
  Page.set_u16 p 32 11;
  check_int "later mutation invisible" 99 (Page.get_u16 (Page_store.read s pid1) 32)

let test_store_clone () =
  let s = Page_store.create ~page_size:128 in
  let pid = Page_store.allocate s Page.Meta in
  let p = Page.create ~page_size:128 ~pid Page.Meta in
  Page.set_u16 p 32 5;
  Page_store.write s p;
  let c = Page_store.clone s in
  Page.set_u16 p 32 6;
  Page_store.write s p;
  check_int "clone froze the old image" 5 (Page.get_u16 (Page_store.read c pid) 32);
  check_int "original moved on" 6 (Page.get_u16 (Page_store.read s pid) 32);
  check_int "clone allocation cursor" (Page_store.allocated_count s) (Page_store.allocated_count c)

let test_store_note_allocated () =
  let s = Page_store.create ~page_size:128 in
  Page_store.note_allocated s 41;
  check_int "cursor advanced" 42 (Page_store.allocated_count s);
  check_int "next pid skips" 42 (Page_store.allocate s Page.Meta)

let test_store_iter () =
  let s = Page_store.create ~page_size:128 in
  for _ = 0 to 4 do
    ignore (Page_store.allocate s Page.Meta)
  done;
  List.iter
    (fun pid ->
      let p = Page.create ~page_size:128 ~pid Page.Meta in
      Page_store.write s p)
    [ 1; 3 ];
  let seen = ref [] in
  Page_store.iter_stable s (fun p -> seen := p.Page.pid :: !seen);
  Alcotest.(check (list int)) "iterates stable pages in pid order" [ 1; 3 ] (List.rev !seen)

let test_checksum () =
  let p = Page.create ~page_size:256 ~pid:1 Page.Meta in
  Page.set_bytes p ~off:40 "payload";
  check "unstamped page passes (zero checksum)" true (Page.checksum_ok p);
  Page.stamp_checksum p;
  check "stamped page passes" true (Page.checksum_ok p);
  Page.set_bytes p ~off:40 "tampered";
  check "mutation breaks the checksum" false (Page.checksum_ok p);
  Page.stamp_checksum p;
  check "re-stamp fixes it" true (Page.checksum_ok p);
  (* pLSN is covered by the checksum. *)
  Page.set_plsn p 999;
  check "plsn covered" false (Page.checksum_ok p)

let test_store_detects_corruption () =
  let s = Page_store.create ~page_size:128 in
  let pid = Page_store.allocate s Page.Meta in
  let p = Page.create ~page_size:128 ~pid Page.Meta in
  Page.set_bytes p ~off:32 "important";
  Page_store.write s p;
  check "clean read ok" true (Page.get_bytes (Page_store.read s pid) ~off:32 ~len:9 = "important");
  Page_store.corrupt_for_test s pid;
  (try
     ignore (Page_store.read s pid);
     Alcotest.fail "corruption must be detected"
   with Page_store.Corrupt_page p -> check_int "corrupt pid reported" pid p);
  (* A fresh write repairs the page. *)
  Page_store.write s p;
  check "rewrite restores readability" true (Page_store.exists s pid && Page.checksum_ok (Page_store.read s pid))

let suite =
  [
    Alcotest.test_case "page header" `Quick test_page_header;
    Alcotest.test_case "page checksum" `Quick test_checksum;
    Alcotest.test_case "store detects corruption" `Quick test_store_detects_corruption;
    Alcotest.test_case "page accessors" `Quick test_page_accessors;
    Alcotest.test_case "page copy" `Quick test_page_copy_independent;
    Alcotest.test_case "store basics" `Quick test_store_basics;
    Alcotest.test_case "store clone" `Quick test_store_clone;
    Alcotest.test_case "store note_allocated" `Quick test_store_note_allocated;
    Alcotest.test_case "store iter" `Quick test_store_iter;
  ]
