(* Slotted-page node layout: unit tests plus a qcheck model test against a
   sorted association list. *)

module Page = Deut_storage.Page
module Node = Deut_btree.Node

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let fresh_leaf ?(size = 512) () =
  let p = Page.create ~page_size:size ~pid:1 Page.Btree_leaf in
  Node.init p ~level:0;
  p

let fresh_internal ?(size = 512) () =
  let p = Page.create ~page_size:size ~pid:2 Page.Btree_internal in
  Node.init p ~level:1;
  p

let assert_ok p =
  match Node.check p with Ok () -> () | Error msg -> Alcotest.failf "node invariant: %s" msg

let test_init () =
  let p = fresh_leaf () in
  check "leaf" true (Node.is_leaf p);
  check_int "level" 0 (Node.level p);
  check_int "no slots" 0 (Node.nslots p);
  check_int "no sibling" Node.no_sibling (Node.right_sibling p);
  check "kind set" true (Page.kind p = Page.Btree_leaf);
  let q = fresh_internal () in
  check "internal" false (Node.is_leaf q);
  check "kind set internal" true (Page.kind q = Page.Btree_internal);
  assert_ok p

let test_leaf_insert_search () =
  let p = fresh_leaf () in
  List.iter
    (fun k ->
      match Node.search p k with
      | `Not_found slot ->
          check "insert fits" true (Node.leaf_insert p ~slot ~key:k ~value:(string_of_int k))
      | `Found _ -> Alcotest.fail "unexpected duplicate")
    [ 50; 10; 30; 20; 40 ];
  assert_ok p;
  check_int "nslots" 5 (Node.nslots p);
  (* Keys are kept sorted regardless of insertion order. *)
  List.iteri (fun i k -> check_int "sorted" k (Node.slot_key p i)) [ 10; 20; 30; 40; 50 ];
  (match Node.search p 30 with
  | `Found slot -> check_str "value" "30" (Node.leaf_value p slot)
  | `Not_found _ -> Alcotest.fail "key 30 missing");
  (match Node.search p 35 with
  | `Not_found slot -> check_int "insertion point" 3 slot
  | `Found _ -> Alcotest.fail "phantom key");
  match Node.search p 5 with
  | `Not_found slot -> check_int "before all" 0 slot
  | `Found _ -> Alcotest.fail "phantom key"

let test_leaf_delete_and_fragmentation () =
  let p = fresh_leaf () in
  List.iter
    (fun k ->
      match Node.search p k with
      | `Not_found slot ->
          ignore (Node.leaf_insert p ~slot ~key:k ~value:(String.make 20 (Char.chr (65 + k))))
      | `Found _ -> ())
    [ 0; 1; 2; 3; 4 ];
  let free_before = Node.free_space p in
  (match Node.search p 2 with
  | `Found slot -> Node.leaf_delete p ~slot
  | `Not_found _ -> Alcotest.fail "missing");
  assert_ok p;
  check_int "slot count drops" 4 (Node.nslots p);
  (* The cell bytes are fragmented until compaction. *)
  check_int "contiguous free grew by a slot only" (free_before + 2) (Node.free_space p);
  check "reclaimable sees the hole" true (Node.reclaimable_space p > Node.free_space p + 20);
  Node.compact p;
  assert_ok p;
  check_int "compaction reclaims" (Node.reclaimable_space p) (Node.free_space p);
  List.iteri (fun i k -> check_int "survivors" k (Node.slot_key p i)) [ 0; 1; 3; 4 ]

let test_leaf_replace () =
  let p = fresh_leaf () in
  (match Node.search p 1 with
  | `Not_found slot -> ignore (Node.leaf_insert p ~slot ~key:1 ~value:"aaaa")
  | `Found _ -> ());
  (match Node.search p 1 with
  | `Found slot ->
      check "shrink in place" true (Node.leaf_replace p ~slot ~value:"b");
      check_str "shrunk" "b" (Node.leaf_value p slot);
      check "grow" true (Node.leaf_replace p ~slot ~value:(String.make 50 'c'));
      check_str "grown" (String.make 50 'c') (Node.leaf_value p slot)
  | `Not_found _ -> Alcotest.fail "missing");
  assert_ok p;
  (* A value too large for the page must fail and leave it unchanged. *)
  match Node.search p 1 with
  | `Found slot ->
      let before = Page.copy p in
      check "oversized replace fails" false
        (Node.leaf_can_replace p ~slot ~value_len:1000 && Node.leaf_replace p ~slot ~value:(String.make 1000 'd'));
      check "page unchanged on failure" true (Page.equal_contents before p)
  | `Not_found _ -> Alcotest.fail "missing"

let test_internal_routing () =
  let p = fresh_internal () in
  Node.set_leftmost_child p 100;
  check "internal insert" true (Node.internal_insert p ~key:10 ~child:110);
  check "internal insert 2" true (Node.internal_insert p ~key:20 ~child:120);
  check "internal insert 3" true (Node.internal_insert p ~key:30 ~child:130);
  assert_ok p;
  check_int "below first key" 100 (Node.route p 5);
  check_int "exact key" 110 (Node.route p 10);
  check_int "between keys" 110 (Node.route p 15);
  check_int "last range" 130 (Node.route p 99);
  let children = ref [] in
  Node.iter_children p (fun c -> children := c :: !children);
  Alcotest.(check (list int)) "children order" [ 100; 110; 120; 130 ] (List.rev !children)

let fill_leaf p =
  let k = ref 0 in
  let continue = ref true in
  while !continue do
    match Node.search p !k with
    | `Not_found slot ->
        if Node.leaf_insert p ~slot ~key:!k ~value:(Printf.sprintf "v%04d" !k) then incr k
        else continue := false
    | `Found _ -> incr k
  done;
  !k

let test_split_leaf () =
  let p = fresh_leaf () in
  let n = fill_leaf p in
  check "filled" true (n > 10);
  let q = Page.create ~page_size:512 ~pid:9 Page.Btree_leaf in
  Node.init q ~level:0;
  let sep = Node.split_leaf p q in
  assert_ok p;
  assert_ok q;
  check_int "separator is right's first key" sep (Node.slot_key q 0);
  check_int "no entries lost" n (Node.nslots p + Node.nslots q);
  check "left keys below separator" true (Node.slot_key p (Node.nslots p - 1) < sep);
  check "left got room back" true (Node.free_space p > 100);
  (* Values survive the move. *)
  check_str "right value intact" (Printf.sprintf "v%04d" sep) (Node.leaf_value q 0)

let test_split_internal () =
  let p = fresh_internal () in
  Node.set_leftmost_child p 1000;
  let k = ref 0 in
  while Node.internal_insert p ~key:(10 * !k) ~child:(1001 + !k) do
    incr k
  done;
  let q = Page.create ~page_size:512 ~pid:10 Page.Btree_internal in
  Node.init q ~level:1;
  let total = Node.nslots p in
  let promoted = Node.split_internal p q in
  assert_ok p;
  assert_ok q;
  check_int "promoted key dropped from both" (total - 1) (Node.nslots p + Node.nslots q);
  check "left strictly below promoted" true (Node.slot_key p (Node.nslots p - 1) < promoted);
  check "right strictly above promoted" true (Node.slot_key q 0 > promoted);
  (* The promoted key's child became the right node's leftmost child. *)
  check_int "right leftmost child" (1001 + (total / 2)) (Node.leftmost_child q);
  check_int "routing promoted goes right" (Node.leftmost_child q) (Node.route q promoted)

(* Model test: a random mix of inserts, deletes, replaces, and compactions
   must agree with a sorted association list. *)
let model_ops_gen =
  let open QCheck2.Gen in
  let op =
    frequency
      [
        (5, map2 (fun k v -> `Insert (k, v)) (0 -- 50) (string_size (1 -- 12)));
        (2, map (fun k -> `Delete k) (0 -- 50));
        (2, map2 (fun k v -> `Replace (k, v)) (0 -- 50) (string_size (1 -- 12)));
        (1, return `Compact);
      ]
  in
  list_size (0 -- 200) op

let run_model ops =
  let p = fresh_leaf ~size:2048 () in
  let model = ref [] in
  let ok = ref true in
  List.iter
    (fun op ->
      match op with
      | `Insert (k, v) -> (
          match Node.search p k with
          | `Found _ -> if List.mem_assoc k !model then () else ok := false
          | `Not_found slot ->
              if List.mem_assoc k !model then ok := false
              else if Node.leaf_insert p ~slot ~key:k ~value:v then
                model := (k, v) :: !model)
      | `Delete k -> (
          match Node.search p k with
          | `Found slot ->
              Node.leaf_delete p ~slot;
              model := List.remove_assoc k !model
          | `Not_found _ -> if List.mem_assoc k !model then ok := false)
      | `Replace (k, v) -> (
          match Node.search p k with
          | `Found slot ->
              if Node.leaf_replace p ~slot ~value:v then
                model := (k, v) :: List.remove_assoc k !model
          | `Not_found _ -> ())
      | `Compact -> Node.compact p)
    ops;
  (match Node.check p with Ok () -> () | Error _ -> ok := false);
  let contents = ref [] in
  Node.iter_leaf p (fun k v -> contents := (k, v) :: !contents);
  let expected = List.sort (fun (a, _) (b, _) -> Int.compare a b) !model in
  !ok && List.rev !contents = expected

let prop_node_model =
  QCheck2.Test.make ~name:"slotted leaf agrees with assoc-list model" ~count:300 model_ops_gen
    run_model

let suite =
  [
    Alcotest.test_case "init" `Quick test_init;
    Alcotest.test_case "leaf insert/search" `Quick test_leaf_insert_search;
    Alcotest.test_case "leaf delete + fragmentation" `Quick test_leaf_delete_and_fragmentation;
    Alcotest.test_case "leaf replace" `Quick test_leaf_replace;
    Alcotest.test_case "internal routing" `Quick test_internal_routing;
    Alcotest.test_case "split leaf" `Quick test_split_leaf;
    Alcotest.test_case "split internal" `Quick test_split_internal;
    QCheck_alcotest.to_alcotest prop_node_model;
  ]
