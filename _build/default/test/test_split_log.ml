(* The split-log layout (§4.2): the DC keeps its own log with its own LSN
   space.  Logical recovery works unchanged; the physiological baselines
   cannot run (no shared physical log); and the DC redo/analysis pass scans
   a log that is orders of magnitude shorter than the TC's. *)

module Db = Deut_core.Db
module Config = Deut_core.Config
module Engine = Deut_core.Engine
module Recovery = Deut_core.Recovery
module Recovery_stats = Deut_core.Recovery_stats
module Crash_image = Deut_core.Crash_image
module Log = Deut_wal.Log_manager
module Workload = Deut_workload.Workload
module Driver = Deut_workload.Driver

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let split_config =
  {
    Config.default with
    Config.page_size = 1024;
    pool_pages = 48;
    delta_period = 40;
    delta_capacity = 64;
    log_layout = Config.Split;
  }

let spec = { Workload.default with Workload.rows = 1200; value_size = 16; seed = 9 }

let make_split_crash ?(loser = true) () =
  let driver = Driver.create ~config:split_config spec in
  Driver.run_crash_protocol driver ~checkpoints:3 ~interval:300 ~tail:15;
  if loser then Driver.start_loser driver ~ops:8;
  (driver, Driver.crash driver)

let test_split_engine_separates_logs () =
  let driver = Driver.create ~config:split_config spec in
  let engine = Db.engine (Driver.db driver) in
  check "engine is split" true (Engine.split engine);
  Driver.run_updates driver ~updates:500;
  Driver.checkpoint driver;
  (* The TC log carries no DC records; the DC log no TC records. *)
  let count_kinds log =
    let tc = ref 0 and dc = ref 0 in
    Log.iter log ~from:(Log.base_lsn log) (fun _ record ->
        match record with
        | Deut_wal.Log_record.Smo _ | Deut_wal.Log_record.Delta _ | Deut_wal.Log_record.Bw _ ->
            incr dc
        | Deut_wal.Log_record.Update_rec _ | Deut_wal.Log_record.Commit _
        | Deut_wal.Log_record.Abort _ | Deut_wal.Log_record.Clr _
        | Deut_wal.Log_record.Begin_ckpt | Deut_wal.Log_record.End_ckpt _
        | Deut_wal.Log_record.Aries_ckpt_dpt _ ->
            incr tc);
    (!tc, !dc)
  in
  let tc_on_tc, dc_on_tc = count_kinds engine.Engine.log in
  let tc_on_dc, dc_on_dc = count_kinds engine.Engine.dc_log in
  check "tc log has tc records" true (tc_on_tc > 0);
  check_int "tc log has no dc records" 0 dc_on_tc;
  check_int "dc log has no tc records" 0 tc_on_dc;
  check "dc log has dc records" true (dc_on_dc > 0)

let test_split_recovery_all_logical_methods () =
  let driver, image = make_split_crash () in
  check "image carries the dc log" true (image.Crash_image.dc_log <> None);
  List.iter
    (fun m ->
      let recovered, stats = Db.recover image m in
      (match Driver.verify_recovered driver recovered with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "%s (split): %s" (Recovery.method_to_string m) msg);
      check "undo ran" true (stats.Recovery_stats.losers >= 1))
    [ Recovery.Log0; Recovery.Log1; Recovery.Log2 ]

let test_split_rejects_physiological () =
  let _driver, image = make_split_crash ~loser:false () in
  List.iter
    (fun m ->
      try
        ignore (Db.recover image m);
        Alcotest.failf "%s must be rejected in the split layout" (Recovery.method_to_string m)
      with Invalid_argument _ -> ())
    [ Recovery.Sql1; Recovery.Sql2; Recovery.Aries_ckpt ]

let test_dc_log_is_short () =
  (* §4.2: "Since the DC log is short (e.g. no TC redo operations), this DC
     redo pass processes a much smaller log than that needed for the
     analysis pass with integrated recovery." *)
  let _driver, image = make_split_crash ~loser:false () in
  let tc_log = image.Crash_image.log in
  let dc_log = Option.get image.Crash_image.dc_log in
  let tc_bytes = Log.end_lsn tc_log - Log.base_lsn tc_log in
  let dc_bytes = Log.end_lsn dc_log - Log.base_lsn dc_log in
  check "dc log is much shorter than the tc log" true (dc_bytes * 4 < tc_bytes)

let test_split_matches_integrated_state () =
  (* Same workload, both layouts: identical committed state and identical
     logical recovery outcome. *)
  let run config =
    let driver = Driver.create ~config spec in
    Driver.run_crash_protocol driver ~checkpoints:2 ~interval:250 ~tail:10;
    let image = Driver.crash driver in
    let recovered, stats = Db.recover image Recovery.Log1 in
    (match Driver.verify_recovered driver recovered with
    | Ok () -> ()
    | Error msg -> Alcotest.fail msg);
    (Db.dump_table recovered ~table:1, stats)
  in
  let split_state, split_stats = run split_config in
  let integrated_state, integrated_stats =
    run { split_config with Config.log_layout = Config.Integrated }
  in
  check "same committed state either way" true (split_state = integrated_state);
  check_int "same redo work either way" integrated_stats.Recovery_stats.redo_applied
    split_stats.Recovery_stats.redo_applied

let test_split_smo_recovery () =
  (* Force splits after the checkpoint so SMO replay from the DC log is on
     the recovery path: insert fresh keys into the rightmost leaf. *)
  let db = Db.create ~config:split_config () in
  Db.create_table db ~table:1;
  for k = 0 to 299 do
    Db.put db ~table:1 ~key:k ~value:(Printf.sprintf "%024d" k)
  done;
  Db.checkpoint db;
  for k = 300 to 699 do
    Db.put db ~table:1 ~key:k ~value:(Printf.sprintf "%024d" k)
  done;
  let image = Db.crash db in
  List.iter
    (fun m ->
      let recovered, stats = Db.recover image m in
      check "SMOs were replayed from the DC log" true (stats.Recovery_stats.smos_replayed > 0);
      check_int "all rows present" 700 (Db.entry_count recovered ~table:1);
      match Db.check_integrity recovered with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)
    [ Recovery.Log0; Recovery.Log1; Recovery.Log2 ]

let test_layout_mismatch_rejected () =
  let _driver, image = make_split_crash ~loser:false () in
  let integrated = { split_config with Config.log_layout = Config.Integrated } in
  try
    ignore (Db.recover ~config:integrated image Recovery.Log1);
    Alcotest.fail "recovering a split image as integrated must be rejected"
  with Invalid_argument _ -> ()

let test_split_dc_log_compaction () =
  let driver = Driver.create ~config:split_config spec in
  Driver.run_updates driver ~updates:600;
  Driver.checkpoint driver;
  Driver.run_updates driver ~updates:300;
  Driver.checkpoint driver;
  let engine = Db.engine (Driver.db driver) in
  check "dc log archived at checkpoints" true (Log.base_lsn engine.Engine.dc_log > 0);
  (* And recovery still works from the archived DC log. *)
  Driver.run_updates driver ~updates:200;
  let image = Driver.crash driver in
  let recovered, _ = Db.recover image Recovery.Log2 in
  match Driver.verify_recovered driver recovered with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let suite =
  [
    Alcotest.test_case "logs are separated" `Quick test_split_engine_separates_logs;
    Alcotest.test_case "logical recovery works" `Quick test_split_recovery_all_logical_methods;
    Alcotest.test_case "physiological rejected" `Quick test_split_rejects_physiological;
    Alcotest.test_case "DC log is short (§4.2)" `Quick test_dc_log_is_short;
    Alcotest.test_case "split == integrated state" `Quick test_split_matches_integrated_state;
    Alcotest.test_case "SMO recovery from DC log" `Quick test_split_smo_recovery;
    Alcotest.test_case "layout mismatch rejected" `Quick test_layout_mismatch_rejected;
    Alcotest.test_case "DC log compaction" `Quick test_split_dc_log_compaction;
  ]
