(* B-tree: unit tests, catalog, and a qcheck model test against Map. *)

module Page = Deut_storage.Page
module Page_store = Deut_storage.Page_store
module Pool = Deut_buffer.Buffer_pool
module Btree = Deut_btree.Btree
module Catalog = Deut_btree.Catalog
module Node = Deut_btree.Node
module Lr = Deut_wal.Log_record
module Log = Deut_wal.Log_manager
module Clock = Deut_sim.Clock
module Disk = Deut_sim.Disk

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

type env = {
  pool : Pool.t;
  log : Log.t;
  mutable lsn : int;  (* fake op LSN source for apply_* calls *)
}

let make_env ?(page_size = 512) ?(capacity = 64) () =
  let clock = Clock.create () in
  let disk = Disk.create clock in
  let store = Page_store.create ~page_size in
  let pool = Pool.create ~capacity ~store ~disk ~clock () in
  let log = Log.create ~page_size in
  { pool; log; lsn = 0 }

(* The production callback lives in [Dc]; the test harness replicates its
   contract: append, then stamp + dirty the touched pages. *)
let log_smo env pool smo =
  let lsn = Log.append env.log (Lr.Smo smo) in
  Btree.stamp_smo pool smo ~lsn;
  lsn

let make_tree ?page_size ?capacity () =
  let env = make_env ?page_size ?capacity () in
  Btree.format_store ~pool:env.pool ~log_smo:(log_smo env env.pool);
  let tree = Btree.create ~pool:env.pool ~table:1 ~log_smo:(log_smo env env.pool) () in
  (env, tree)

let next_lsn env =
  env.lsn <- env.lsn + 10;
  env.lsn

let insert env tree ~key ~value =
  match Btree.prepare_write tree ~key ~op:Lr.Insert ~value_len:(String.length value) with
  | Btree.Leaf { pid; before } ->
      check "insert has no before-image" true (before = None);
      Btree.apply_insert tree ~pid ~key ~value ~lsn:(next_lsn env)
  | Btree.Duplicate_key -> Alcotest.failf "unexpected duplicate for key %d" key
  | Btree.Missing_key -> Alcotest.fail "impossible"

let update env tree ~key ~value =
  match Btree.prepare_write tree ~key ~op:Lr.Update ~value_len:(String.length value) with
  | Btree.Leaf { pid; _ } -> Btree.apply_update tree ~pid ~key ~value ~lsn:(next_lsn env)
  | Btree.Duplicate_key -> Alcotest.fail "impossible"
  | Btree.Missing_key -> Alcotest.failf "unexpected missing key %d" key

let delete env tree ~key =
  match Btree.prepare_write tree ~key ~op:Lr.Delete ~value_len:0 with
  | Btree.Leaf { pid; _ } -> Btree.apply_delete tree ~pid ~key ~lsn:(next_lsn env)
  | Btree.Duplicate_key -> Alcotest.fail "impossible"
  | Btree.Missing_key -> Alcotest.failf "unexpected missing key %d" key

let assert_tree tree =
  match Btree.check_tree tree with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "tree invariant: %s" msg

let test_create_empty () =
  let _env, tree = make_tree () in
  check_int "empty count" 0 (Btree.entry_count tree);
  check_int "height 1" 1 (Btree.height tree);
  check "lookup misses" true (Btree.lookup tree ~key:5 = None);
  check_int "one leaf" 1 (Btree.leaf_count tree);
  check "no internal pages" true (Btree.internal_pids tree = []);
  assert_tree tree

let test_basic_ops () =
  let env, tree = make_tree () in
  insert env tree ~key:5 ~value:"five";
  insert env tree ~key:3 ~value:"three";
  insert env tree ~key:9 ~value:"nine";
  check "lookup hit" true (Btree.lookup tree ~key:3 = Some "three");
  check "lookup miss" true (Btree.lookup tree ~key:4 = None);
  update env tree ~key:3 ~value:"THREE";
  check "update visible" true (Btree.lookup tree ~key:3 = Some "THREE");
  delete env tree ~key:5;
  check "delete visible" true (Btree.lookup tree ~key:5 = None);
  check_int "count" 2 (Btree.entry_count tree);
  assert_tree tree

let test_prepare_write_outcomes () =
  let env, tree = make_tree () in
  insert env tree ~key:1 ~value:"one";
  (match Btree.prepare_write tree ~key:1 ~op:Lr.Insert ~value_len:3 with
  | Btree.Duplicate_key -> ()
  | _ -> Alcotest.fail "duplicate insert must be rejected");
  (match Btree.prepare_write tree ~key:2 ~op:Lr.Update ~value_len:3 with
  | Btree.Missing_key -> ()
  | _ -> Alcotest.fail "update of absent key must be rejected");
  (match Btree.prepare_write tree ~key:2 ~op:Lr.Delete ~value_len:0 with
  | Btree.Missing_key -> ()
  | _ -> Alcotest.fail "delete of absent key must be rejected");
  (match Btree.prepare_write tree ~key:1 ~op:Lr.Update ~value_len:3 with
  | Btree.Leaf { before = Some "one"; _ } -> ()
  | _ -> Alcotest.fail "update must return the before-image");
  match Btree.prepare_write tree ~key:1 ~op:Lr.Delete ~value_len:0 with
  | Btree.Leaf { before = Some "one"; _ } -> ()
  | _ -> Alcotest.fail "delete must return the before-image"

let test_sequential_growth () =
  let env, tree = make_tree ~page_size:256 ~capacity:128 () in
  let n = 2000 in
  for k = 0 to n - 1 do
    insert env tree ~key:k ~value:(Printf.sprintf "val-%05d" k)
  done;
  assert_tree tree;
  check_int "all present" n (Btree.entry_count tree);
  check "tree grew" true (Btree.height tree >= 3);
  check "many leaves" true (Btree.leaf_count tree > 20);
  for k = 0 to n - 1 do
    if Btree.lookup tree ~key:k <> Some (Printf.sprintf "val-%05d" k) then
      Alcotest.failf "key %d lost" k
  done;
  (* In-order fold yields sorted keys. *)
  let last = ref (-1) in
  Btree.fold_entries tree ~init:() ~f:(fun () k _ ->
      if k <= !last then Alcotest.failf "fold out of order at %d" k;
      last := k);
  (* Internal pids are exactly the non-leaf pages of the tree. *)
  let internals = Btree.internal_pids tree in
  check "root among internals" true (List.mem (Btree.root_pid tree) internals);
  List.iter
    (fun pid ->
      let page = Pool.get env.pool pid in
      check "internal pid is internal" false (Node.is_leaf page))
    internals

let test_locate_leaf_consistency () =
  let env, tree = make_tree ~page_size:256 () in
  for k = 0 to 499 do
    insert env tree ~key:(k * 3) ~value:"x"
  done;
  for k = 0 to 499 do
    let pid = Btree.locate_leaf tree ~key:(k * 3) in
    let page = Pool.get env.pool pid in
    check "locate returns a leaf" true (Node.is_leaf page);
    match Node.search page (k * 3) with
    | `Found _ -> ()
    | `Not_found _ -> Alcotest.failf "key %d not in its located leaf" (k * 3)
  done

let test_random_order_inserts () =
  let env, tree = make_tree ~page_size:256 ~capacity:128 () in
  let rng = Deut_sim.Rng.create ~seed:11 in
  let keys = Array.init 1500 (fun i -> i) in
  Deut_sim.Rng.shuffle rng keys;
  Array.iter (fun k -> insert env tree ~key:k ~value:(string_of_int (k * 7))) keys;
  assert_tree tree;
  check_int "count" 1500 (Btree.entry_count tree);
  Array.iter
    (fun k ->
      if Btree.lookup tree ~key:k <> Some (string_of_int (k * 7)) then
        Alcotest.failf "key %d wrong" k)
    keys

let test_growing_values_split () =
  let env, tree = make_tree ~page_size:256 () in
  for k = 0 to 19 do
    insert env tree ~key:k ~value:"s"
  done;
  (* Grow every value so the leaf must split on replace. *)
  for k = 0 to 19 do
    update env tree ~key:k ~value:(String.make 40 'G')
  done;
  assert_tree tree;
  for k = 0 to 19 do
    check "grown value" true (Btree.lookup tree ~key:k = Some (String.make 40 'G'))
  done

let test_merge_shrinks_tree () =
  let env, tree = make_tree ~page_size:256 ~capacity:128 () in
  for k = 0 to 999 do
    insert env tree ~key:k ~value:(Printf.sprintf "%08d" k)
  done;
  let leaves_full = Btree.leaf_count tree in
  check "grew to many leaves" true (leaves_full > 10);
  (* Delete the middle 80%: lazy merging must reclaim most leaves. *)
  for k = 100 to 899 do
    delete env tree ~key:k
  done;
  assert_tree tree;
  let leaves_after = Btree.leaf_count tree in
  check "merging reclaimed leaves" true (leaves_after * 2 < leaves_full);
  check_int "survivors intact" 200 (Btree.entry_count tree);
  for k = 0 to 99 do
    check "low survivors" true (Btree.lookup tree ~key:k = Some (Printf.sprintf "%08d" k))
  done;
  for k = 900 to 999 do
    check "high survivors" true (Btree.lookup tree ~key:k = Some (Printf.sprintf "%08d" k))
  done;
  check "deleted gone" true (Btree.lookup tree ~key:500 = None)

let test_merge_collapses_root () =
  (* A height-2 tree (root over leaves): deleting everything cascades leaf
     merges until the root loses its last separator and collapses.  Deeper
     trees deliberately stop merging at 2 children per internal node — the
     lazy scheme never rebalances internal levels. *)
  let env, tree = make_tree ~page_size:256 () in
  for k = 0 to 59 do
    insert env tree ~key:k ~value:(Printf.sprintf "%06d" k)
  done;
  check_int "height 2 before" 2 (Btree.height tree);
  for k = 0 to 59 do
    delete env tree ~key:k
  done;
  assert_tree tree;
  check_int "empty" 0 (Btree.entry_count tree);
  check_int "root collapsed to a single leaf" 1 (Btree.height tree);
  (* The tree remains fully usable after heavy merging. *)
  for k = 0 to 199 do
    insert env tree ~key:k ~value:"again"
  done;
  assert_tree tree;
  check_int "reinserted" 200 (Btree.entry_count tree)

let test_merge_disabled_gate () =
  let env, tree = make_tree ~page_size:256 () in
  for k = 0 to 299 do
    insert env tree ~key:k ~value:(Printf.sprintf "%08d" k)
  done;
  let leaves = Btree.leaf_count tree in
  Btree.set_merge_allowed tree false;
  for k = 0 to 299 do
    delete env tree ~key:k
  done;
  check_int "no merging while gated" leaves (Btree.leaf_count tree);
  assert_tree tree;
  Btree.set_merge_allowed tree true;
  insert env tree ~key:0 ~value:"x";
  delete env tree ~key:0;
  check "merging resumes once ungated" true (Btree.leaf_count tree < leaves)

let test_multi_table () =
  let env = make_env () in
  Btree.format_store ~pool:env.pool ~log_smo:(log_smo env env.pool);
  let t1 = Btree.create ~pool:env.pool ~table:1 ~log_smo:(log_smo env env.pool) () in
  let t2 = Btree.create ~pool:env.pool ~table:2 ~log_smo:(log_smo env env.pool) () in
  insert env t1 ~key:1 ~value:"t1";
  insert env t2 ~key:1 ~value:"t2";
  check "tables independent" true (Btree.lookup t1 ~key:1 = Some "t1");
  check "tables independent 2" true (Btree.lookup t2 ~key:1 = Some "t2");
  let reopened = Btree.open_existing ~pool:env.pool ~table:2 ~log_smo:(log_smo env env.pool) () in
  check "open_existing sees data" true (Btree.lookup reopened ~key:1 = Some "t2");
  (try
     ignore (Btree.open_existing ~pool:env.pool ~table:99 ~log_smo:(log_smo env env.pool) ());
     Alcotest.fail "unknown table must raise"
   with Not_found -> ())

let test_catalog () =
  let p = Page.create ~page_size:256 ~pid:0 Page.Meta in
  Catalog.init p;
  check "empty" true (Catalog.find_root p ~table:1 = None);
  Catalog.set_root p ~table:1 ~root:10;
  Catalog.set_root p ~table:2 ~root:20;
  check "lookup" true (Catalog.find_root p ~table:1 = Some 10);
  Catalog.set_root p ~table:1 ~root:30;
  check "root update in place" true (Catalog.find_root p ~table:1 = Some 30);
  Alcotest.(check (list (pair int int))) "tables" [ (1, 30); (2, 20) ] (Catalog.tables p)

let test_smo_records_capture_all_touched_pages () =
  let env, tree = make_tree ~page_size:256 () in
  for k = 0 to 199 do
    insert env tree ~key:k ~value:(Printf.sprintf "%08d" k)
  done;
  (* Every page named in an SMO image must exist, and every image must be a
     full page. *)
  Log.force env.log;
  let smo_pages = ref 0 in
  Log.iter env.log ~from:Deut_wal.Lsn.nil (fun _ record ->
      match record with
      | Lr.Smo { pages; _ } ->
          Array.iter
            (fun (pid, image) ->
              incr smo_pages;
              check "image is page-sized" true (String.length image = 256);
              check "pid is valid" true (pid >= 0))
            pages
      | _ -> ());
  check "splits were logged" true (!smo_pages > 10)

(* Model-based qcheck: random operation sequences agree with Map. *)
module IntMap = Map.Make (Int)

let ops_gen =
  let open QCheck2.Gen in
  let op =
    frequency
      [
        (6, map2 (fun k v -> `Insert (k, v)) (0 -- 300) (string_size (1 -- 20)));
        (3, map2 (fun k v -> `Update (k, v)) (0 -- 300) (string_size (1 -- 20)));
        (2, map (fun k -> `Delete k) (0 -- 300));
        (2, map (fun k -> `Lookup k) (0 -- 300));
      ]
  in
  list_size (10 -- 400) op

let run_btree_model ops =
  let env, tree = make_tree ~page_size:256 ~capacity:64 () in
  let model = ref IntMap.empty in
  let ok = ref true in
  let expect cond = if not cond then ok := false in
  List.iter
    (fun op ->
      match op with
      | `Insert (key, v) -> (
          match Btree.prepare_write tree ~key ~op:Lr.Insert ~value_len:(String.length v) with
          | Btree.Leaf { pid; before } ->
              expect (before = None);
              expect (not (IntMap.mem key !model));
              Btree.apply_insert tree ~pid ~key ~value:v ~lsn:(next_lsn env);
              model := IntMap.add key v !model
          | Btree.Duplicate_key -> expect (IntMap.mem key !model)
          | Btree.Missing_key -> ok := false)
      | `Update (key, v) -> (
          match Btree.prepare_write tree ~key ~op:Lr.Update ~value_len:(String.length v) with
          | Btree.Leaf { pid; before } ->
              expect (before = IntMap.find_opt key !model);
              Btree.apply_update tree ~pid ~key ~value:v ~lsn:(next_lsn env);
              model := IntMap.add key v !model
          | Btree.Missing_key -> expect (not (IntMap.mem key !model))
          | Btree.Duplicate_key -> ok := false)
      | `Delete key -> (
          match Btree.prepare_write tree ~key ~op:Lr.Delete ~value_len:0 with
          | Btree.Leaf { pid; before } ->
              expect (before = IntMap.find_opt key !model);
              Btree.apply_delete tree ~pid ~key ~lsn:(next_lsn env);
              model := IntMap.remove key !model
          | Btree.Missing_key -> expect (not (IntMap.mem key !model))
          | Btree.Duplicate_key -> ok := false)
      | `Lookup key -> expect (Btree.lookup tree ~key = IntMap.find_opt key !model))
    ops;
  (match Btree.check_tree tree with Ok () -> () | Error _ -> ok := false);
  let contents =
    List.rev (Btree.fold_entries tree ~init:[] ~f:(fun acc k v -> (k, v) :: acc))
  in
  !ok && contents = IntMap.bindings !model

let prop_btree_model =
  QCheck2.Test.make ~name:"btree agrees with Map model" ~count:150 ops_gen run_btree_model

let suite =
  [
    Alcotest.test_case "create empty" `Quick test_create_empty;
    Alcotest.test_case "basic ops" `Quick test_basic_ops;
    Alcotest.test_case "prepare_write outcomes" `Quick test_prepare_write_outcomes;
    Alcotest.test_case "sequential growth" `Quick test_sequential_growth;
    Alcotest.test_case "locate_leaf consistency" `Quick test_locate_leaf_consistency;
    Alcotest.test_case "random order inserts" `Quick test_random_order_inserts;
    Alcotest.test_case "growing values force splits" `Quick test_growing_values_split;
    Alcotest.test_case "merge shrinks tree" `Quick test_merge_shrinks_tree;
    Alcotest.test_case "merge collapses root" `Quick test_merge_collapses_root;
    Alcotest.test_case "merge gate" `Quick test_merge_disabled_gate;
    Alcotest.test_case "multi-table" `Quick test_multi_table;
    Alcotest.test_case "catalog" `Quick test_catalog;
    Alcotest.test_case "smo records capture pages" `Quick test_smo_records_capture_all_touched_pages;
    QCheck_alcotest.to_alcotest prop_btree_model;
  ]
