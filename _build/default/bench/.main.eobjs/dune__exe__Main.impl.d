bench/main.ml: Deut_core Deut_workload Micro Printf String Sys
