bench/main.mli:
