bench/micro.ml: Analyze Bechamel Benchmark Buffer Deut_btree Deut_buffer Deut_core Deut_sim Deut_storage Deut_wal Instance Lazy List Measure Printf Staged String Test Time Toolkit
