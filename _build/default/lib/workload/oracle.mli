(** Shadow committed state: the ground truth recovery must reproduce.

    The driver buffers each transaction's writes and folds them in at
    commit, so the oracle always holds exactly the committed state — never
    the effects of in-flight or aborted transactions.  Crucially it is a
    plain map: consulting it does not touch the database cache, unlike a
    table scan, which would flush dirty pages and corrupt the experiment
    (dirtiness at crash is the quantity under study). *)

type t

val create : unit -> t

val begin_txn : t -> int -> unit
val buffer_put : t -> txn:int -> table:int -> key:int -> value:string -> unit
val buffer_delete : t -> txn:int -> table:int -> key:int -> unit
val commit : t -> txn:int -> unit
val abort : t -> txn:int -> unit

val committed_value : t -> table:int -> key:int -> string option
val committed_entries : t -> table:int -> (int * string) list
(** Sorted by key. *)

val entry_count : t -> table:int -> int

val verify : t -> Deut_core.Db.t -> tables:int list -> (unit, string) result
(** Compare the database contents (a full scan — post-recovery use only)
    against the committed state of every listed table. *)
