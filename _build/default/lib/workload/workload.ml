type key_dist = Uniform | Zipf of float | Sequential

type op_mix =
  | Update_only
  | Mixed of { update : float; insert : float; delete : float; read : float }

type spec = {
  tables : int;
  rows : int;
  value_size : int;
  ops_per_txn : int;
  key_dist : key_dist;
  op_mix : op_mix;
  seed : int;
}

let default =
  {
    tables = 1;
    rows = 100_000;
    value_size = 24;
    ops_per_txn = 10;
    key_dist = Uniform;
    op_mix = Update_only;
    seed = 1;
  }

let hex = "0123456789abcdef"

let value_of rng ~size =
  let b = Bytes.create size in
  for i = 0 to size - 1 do
    Bytes.set b i hex.[Deut_sim.Rng.int rng 16]
  done;
  Bytes.unsafe_to_string b
