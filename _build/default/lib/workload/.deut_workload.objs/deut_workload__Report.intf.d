lib/workload/report.mli:
