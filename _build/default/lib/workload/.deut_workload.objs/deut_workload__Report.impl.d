lib/workload/report.ml: List Printf Stdlib String
