lib/workload/experiment.mli: Deut_core Driver Workload
