lib/workload/figures.mli: Deut_core
