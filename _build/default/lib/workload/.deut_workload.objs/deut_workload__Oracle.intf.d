lib/workload/oracle.mli: Deut_core
