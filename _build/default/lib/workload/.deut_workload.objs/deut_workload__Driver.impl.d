lib/workload/driver.ml: Deut_buffer Deut_core Deut_sim Deut_wal List Option Oracle Printf Stdlib String Workload
