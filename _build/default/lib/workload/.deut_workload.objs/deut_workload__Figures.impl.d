lib/workload/figures.ml: Buffer Deut_core Deut_wal Experiment List Printf Report String
