lib/workload/workload.ml: Bytes Deut_sim String
