lib/workload/workload.mli: Deut_sim
