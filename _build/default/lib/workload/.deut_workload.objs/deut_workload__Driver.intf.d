lib/workload/driver.mli: Deut_core Oracle Workload
