lib/workload/oracle.ml: Deut_core Hashtbl Int List Printf
