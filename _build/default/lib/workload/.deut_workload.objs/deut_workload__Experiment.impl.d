lib/workload/experiment.ml: Deut_buffer Deut_core Driver List Printf Stdlib Workload
