(** Workload specifications.

    The paper's primary workload (§5.2) is update-only: small transactions
    of 10 updates each, on a single table, keys drawn uniformly — the worst
    case for redo recovery because it maximises the number of distinct
    dirty pages (Appendix B).  Zipfian skew and mixed operation workloads
    are provided for the locality experiments and tests. *)

type key_dist = Uniform | Zipf of float | Sequential

(** Operation mix as weights; a transaction draws each operation
    independently.  [Update_only] is the paper's workload. *)
type op_mix =
  | Update_only
  | Mixed of { update : float; insert : float; delete : float; read : float }

type spec = {
  tables : int;  (** number of tables (ids 1..tables) *)
  rows : int;  (** initial rows per table *)
  value_size : int;  (** bytes in the data attribute *)
  ops_per_txn : int;
  key_dist : key_dist;
  op_mix : op_mix;
  seed : int;
}

val default : spec
(** The paper's workload at a small default size: 1 table, 100k rows,
    24-byte values, 10 uniform updates per transaction. *)

val value_of : Deut_sim.Rng.t -> size:int -> string
(** A fresh random value of exactly [size] bytes. *)
