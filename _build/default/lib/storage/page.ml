type kind = Free | Meta | Btree_leaf | Btree_internal

let kind_to_string = function
  | Free -> "free"
  | Meta -> "meta"
  | Btree_leaf -> "leaf"
  | Btree_internal -> "internal"

type t = { pid : int; buf : Bytes.t }

let header_size = 24

let kind_to_tag = function Free -> 0 | Meta -> 1 | Btree_leaf -> 2 | Btree_internal -> 3

let kind_of_tag = function
  | 0 -> Free
  | 1 -> Meta
  | 2 -> Btree_leaf
  | 3 -> Btree_internal
  | n -> invalid_arg (Printf.sprintf "Page.kind_of_tag: corrupt kind tag %d" n)

let size t = Bytes.length t.buf
let get_u8 t off = Char.code (Bytes.get t.buf off)
let set_u8 t off v = Bytes.set t.buf off (Char.chr (v land 0xff))
let get_u16 t off = Bytes.get_uint16_be t.buf off
let set_u16 t off v = Bytes.set_uint16_be t.buf off v
let get_u32 t off = Int32.to_int (Bytes.get_int32_be t.buf off) land 0xffffffff
let set_u32 t off v = Bytes.set_int32_be t.buf off (Int32.of_int v)
let get_u64 t off = Int64.to_int (Bytes.get_int64_be t.buf off)
let set_u64 t off v = Bytes.set_int64_be t.buf off (Int64.of_int v)

let kind t = kind_of_tag (get_u8 t 0)
let set_kind t k = set_u8 t 0 (kind_to_tag k)
let plsn t = get_u64 t 8
let set_plsn t lsn = set_u64 t 8 lsn
let dc_plsn t = get_u64 t 16
let set_dc_plsn t lsn = set_u64 t 16 lsn

(* FNV-1a over everything except the checksum field itself (bytes 4-7). *)
let compute_checksum t =
  let h = ref 0x811C9DC5 in
  let mix byte = h := (!h lxor byte) * 0x01000193 land 0xFFFFFFFF in
  let n = Bytes.length t.buf in
  for i = 0 to 3 do
    mix (Char.code (Bytes.get t.buf i))
  done;
  for i = 8 to n - 1 do
    mix (Char.code (Bytes.get t.buf i))
  done;
  !h

let stamp_checksum t = set_u32 t 4 (compute_checksum t)

let checksum_ok t =
  let stored = get_u32 t 4 in
  stored = 0 || stored = compute_checksum t

let create ~page_size ~pid k =
  if page_size < header_size then invalid_arg "Page.create: page_size below header";
  let t = { pid; buf = Bytes.make page_size '\000' } in
  set_kind t k;
  t

let copy t = { pid = t.pid; buf = Bytes.copy t.buf }

let get_bytes t ~off ~len = Bytes.sub_string t.buf off len
let set_bytes t ~off s = Bytes.blit_string s 0 t.buf off (String.length s)
let blit_within t ~src ~dst ~len = Bytes.blit t.buf src t.buf dst len
let zero_range t ~off ~len = Bytes.fill t.buf off len '\000'
let equal_contents a b = Bytes.equal a.buf b.buf
