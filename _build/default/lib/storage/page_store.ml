exception Missing_page of int
exception Corrupt_page of int

type t = {
  page_size : int;
  mutable images : Bytes.t option array;  (* indexed by pid *)
  mutable next_pid : int;
}

let create ~page_size = { page_size; images = Array.make 1024 None; next_pid = 0 }
let page_size t = t.page_size

let ensure_capacity t pid =
  let n = Array.length t.images in
  if pid >= n then begin
    let grown = Array.make (Stdlib.max (pid + 1) (2 * n)) None in
    Array.blit t.images 0 grown 0 n;
    t.images <- grown
  end

let allocate t _kind =
  let pid = t.next_pid in
  t.next_pid <- pid + 1;
  ensure_capacity t pid;
  pid

let allocated_count t = t.next_pid

let stable_count t =
  let n = ref 0 in
  Array.iter (function Some _ -> incr n | None -> ()) t.images;
  !n

let exists t pid = pid >= 0 && pid < t.next_pid && t.images.(pid) <> None

let read t pid =
  if pid < 0 || pid >= t.next_pid then raise (Missing_page pid);
  match t.images.(pid) with
  | None -> raise (Missing_page pid)
  | Some buf ->
      let page = { Page.pid; buf = Bytes.copy buf } in
      if not (Page.checksum_ok page) then raise (Corrupt_page pid);
      page

let write t (page : Page.t) =
  if Bytes.length page.buf <> t.page_size then invalid_arg "Page_store.write: size mismatch";
  ensure_capacity t page.pid;
  if page.pid >= t.next_pid then t.next_pid <- page.pid + 1;
  let copy = { Page.pid = page.pid; buf = Bytes.copy page.buf } in
  Page.stamp_checksum copy;
  t.images.(page.pid) <- Some copy.Page.buf

let corrupt_for_test t pid =
  match t.images.(pid) with
  | Some buf ->
      let i = Page.header_size + 1 in
      Bytes.set buf i (Char.chr (Char.code (Bytes.get buf i) lxor 0xFF))
  | None -> raise (Missing_page pid)

let clone t =
  {
    page_size = t.page_size;
    images = Array.map (Option.map Bytes.copy) t.images;
    next_pid = t.next_pid;
  }

let iter_stable t f =
  for pid = 0 to t.next_pid - 1 do
    match t.images.(pid) with
    | Some buf -> f { Page.pid; buf }
    | None -> ()
  done

let note_allocated t pid =
  ensure_capacity t pid;
  if pid >= t.next_pid then t.next_pid <- pid + 1
