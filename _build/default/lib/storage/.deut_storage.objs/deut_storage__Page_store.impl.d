lib/storage/page_store.ml: Array Bytes Char Option Page Stdlib
