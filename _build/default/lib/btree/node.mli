(** Slotted-page layout for B-tree nodes.

    On top of the 16-byte page header, every node carries a node header
    (level, slot count, cell-area watermark, sibling link, leftmost child),
    a slot directory growing upward, and a cell area growing downward from
    the page end.  Deletes leave holes; [compact] rebuilds the cell area
    when a caller needs the fragmented space back.

    Leaf cells are [key:i64][vlen:u16][value bytes]; internal cells are
    [key:i64][child:u32].  An internal node with n cells has n+1 children:
    the [leftmost_child] covers keys below the first slot key; slot i's
    child covers keys in [key_i, key_{i+1}). *)

val node_header_end : int
(** First byte of the slot directory. *)

val no_sibling : int
(** Sentinel right-sibling value. *)

val init : Deut_storage.Page.t -> level:int -> unit
(** Format the page as an empty node of the given level (0 = leaf); sets
    the page kind accordingly. *)

val level : Deut_storage.Page.t -> int
val is_leaf : Deut_storage.Page.t -> bool
val nslots : Deut_storage.Page.t -> int
val right_sibling : Deut_storage.Page.t -> int
val set_right_sibling : Deut_storage.Page.t -> int -> unit
val leftmost_child : Deut_storage.Page.t -> int
val set_leftmost_child : Deut_storage.Page.t -> int -> unit

val free_space : Deut_storage.Page.t -> int
(** Contiguous bytes between the slot directory and the cell area. *)

val reclaimable_space : Deut_storage.Page.t -> int
(** [free_space] plus fragmentation a [compact] would recover. *)

val compact : Deut_storage.Page.t -> unit

val slot_key : Deut_storage.Page.t -> int -> int

val search : Deut_storage.Page.t -> int -> [ `Found of int | `Not_found of int ]
(** Binary search; [`Not_found slot] is the insertion position. *)

(** {2 Leaf operations} *)

val leaf_cell_size : value_len:int -> int

val leaf_value : Deut_storage.Page.t -> int -> string

val leaf_insert : Deut_storage.Page.t -> slot:int -> key:int -> value:string -> bool
(** [false] if contiguous free space is insufficient (caller compacts or
    splits).  The slot must come from [search]. *)

val leaf_delete : Deut_storage.Page.t -> slot:int -> unit

val leaf_replace : Deut_storage.Page.t -> slot:int -> value:string -> bool
(** In-place value update (delete + insert at the same slot); [false] if
    the new value does not fit even after compaction, in which case the
    page is left unmodified. *)

val leaf_can_replace : Deut_storage.Page.t -> slot:int -> value_len:int -> bool
(** Would [leaf_replace] with a value of this length succeed? *)

val iter_leaf : Deut_storage.Page.t -> (int -> string -> unit) -> unit

(** {2 Internal-node operations} *)

val internal_cell_size : int
val child_at : Deut_storage.Page.t -> int -> int

val route : Deut_storage.Page.t -> int -> int
(** Child pid to follow when searching for the key. *)

val internal_insert : Deut_storage.Page.t -> key:int -> child:int -> bool
val iter_children : Deut_storage.Page.t -> (int -> unit) -> unit

val live_bytes : Deut_storage.Page.t -> int
(** Bytes of live payload (cells + slots): the occupancy measure that
    drives merge decisions. *)

val payload_capacity : Deut_storage.Page.t -> int
(** Bytes available for cells + slots in a node of this page size. *)

val internal_remove_child : Deut_storage.Page.t -> child:int -> bool
(** Remove the separator entry pointing at [child]; [false] if no entry
    points there (e.g. it is the leftmost child). *)

(** {2 Splits and merges} *)

val merge_leaves : Deut_storage.Page.t -> Deut_storage.Page.t -> unit
(** Append every cell of the second (right) leaf to the first.  The caller
    checks fit with [live_bytes]/[payload_capacity], and fixes sibling
    links and pLSNs. *)

val split_leaf : Deut_storage.Page.t -> Deut_storage.Page.t -> int
(** Move the upper half of the cells of the first (full) leaf into the
    second (freshly initialised) one and link siblings; returns the
    separator key (= first key of the right node). *)

val split_internal : Deut_storage.Page.t -> Deut_storage.Page.t -> int
(** Same for an internal node; the middle key is promoted (returned, not
    retained) and the right node's leftmost child is the promoted key's
    child. *)

val check : Deut_storage.Page.t -> (unit, string) result
(** Structural invariants: sorted distinct keys, slot offsets within the
    cell area, watermark consistency. *)
