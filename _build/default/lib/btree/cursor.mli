(** Range scans over a B-tree via the leaf sibling chain.

    A cursor is positioned on an entry or exhausted.  It captures no locks
    and no snapshot: it reads whatever is current when it moves, pinning
    only the leaf it currently sits on (so the frame cannot be evicted or
    split away mid-read; moving or closing unpins).  Callers that mutate
    the tree between cursor steps should expect half-fresh reads — full
    isolation is the business of a lock manager, not the cursor. *)

type t

val seek : Btree.t -> key:int -> t
(** Position on the first entry with key ≥ [key] (possibly exhausted). *)

val first : Btree.t -> t
(** Position on the smallest entry. *)

val is_valid : t -> bool
val key : t -> int
(** @raise Invalid_argument if exhausted. *)

val value : t -> string
val next : t -> unit
(** Advance to the next entry in key order (following sibling links). *)

val close : t -> unit
(** Release the pinned leaf.  Using the cursor afterwards raises. *)

val fold_range :
  Btree.t -> lo:int -> hi:int -> init:'a -> f:('a -> int -> string -> 'a) -> 'a
(** Fold over entries with lo ≤ key < hi, in key order. *)

val count_range : Btree.t -> lo:int -> hi:int -> int
