lib/btree/node.ml: Array Deut_storage Printf String
