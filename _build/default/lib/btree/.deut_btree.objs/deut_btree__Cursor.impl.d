lib/btree/cursor.ml: Btree Deut_buffer Deut_storage Node
