lib/btree/node.mli: Deut_storage
