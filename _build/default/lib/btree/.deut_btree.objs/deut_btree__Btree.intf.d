lib/btree/btree.mli: Deut_buffer Deut_wal
