lib/btree/cursor.mli: Btree
