lib/btree/catalog.mli: Deut_storage
