lib/btree/catalog.ml: Deut_storage List Option
