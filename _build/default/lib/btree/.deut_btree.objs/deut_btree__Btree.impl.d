lib/btree/btree.ml: Array Catalog Deut_buffer Deut_storage Deut_wal List Node Printf Queue
