(** The catalog meta page: table id → B-tree root pid.

    Lives on pid 0.  Root changes (create table, root split) are part of the
    SMO page-image records, so DC recovery restores the mapping before any
    logical redo traverses an index — the DC owns data placement (§1.2). *)

val init : Deut_storage.Page.t -> unit

val find_root : Deut_storage.Page.t -> table:int -> int option

val set_root : Deut_storage.Page.t -> table:int -> root:int -> unit
(** Add the table or update its root.  Raises [Failure] if the page is
    full (the table limit is page-size/8, far beyond any test). *)

val tables : Deut_storage.Page.t -> (int * int) list
(** All (table, root) pairs in slot order. *)
