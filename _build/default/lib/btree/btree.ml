module Page = Deut_storage.Page
module Pool = Deut_buffer.Buffer_pool
module Lr = Deut_wal.Log_record
module Lsn = Deut_wal.Lsn

type t = {
  pool : Pool.t;
  table : int;
  log_smo : Lr.smo -> Lsn.t;
  merge_allowed : bool ref;
      (* Opportunistic merging is maintenance, not recovery work: redo
         passes disable it so opportunistic reorganisation cannot
         interleave with the replay of logged SMOs. *)
}

let table t = t.table
let catalog_pid = 0
let pool_of t = t.pool
let set_merge_allowed t enabled = t.merge_allowed := enabled

let capture_image (page : Page.t) =
  (page.Page.pid, Page.get_bytes page ~off:0 ~len:(Page.size page))

(* Log an SMO as one atomic batch of after-images.  The [log_smo] callback
   owns appending AND stamping/dirtying the touched pages in the DC pLSN
   domain (see [Dc.log_smo]); images therefore capture the final TC pLSNs,
   which is what the transactional redo test needs when an image is
   reinstalled. *)
let log_smo_and_stamp ~pool:_ ~log_smo kind pages =
  let images = Array.of_list (List.map capture_image pages) in
  ignore (log_smo { Lr.kind; pages = images })

(* What a [log_smo] callback must do after appending: used by [Dc] and by
   test harnesses that drive the B-tree without a data component. *)
let stamp_smo pool (smo : Lr.smo) ~lsn =
  Array.iter
    (fun (pid, _) -> Pool.mark_dirty_dc pool ~pid ~dc_lsn:lsn ~event_lsn:lsn)
    smo.Lr.pages

let format_store ~pool ~log_smo =
  let catalog = Pool.new_page pool Page.Meta in
  if catalog.Page.pid <> catalog_pid then
    invalid_arg "Btree.format_store: store is not fresh (catalog pid taken)";
  Catalog.init catalog;
  log_smo_and_stamp ~pool ~log_smo Lr.Catalog [ catalog ]

let create ?(merge_allowed = ref true) ~pool ~table ~log_smo () =
  let catalog = Pool.get pool catalog_pid in
  (match Catalog.find_root catalog ~table with
  | Some _ -> invalid_arg (Printf.sprintf "Btree.create: table %d already exists" table)
  | None -> ());
  let root = Pool.new_page pool Page.Btree_leaf in
  Node.init root ~level:0;
  Catalog.set_root catalog ~table ~root:root.Page.pid;
  log_smo_and_stamp ~pool ~log_smo Lr.Catalog [ root; catalog ];
  { pool; table; log_smo; merge_allowed }

let open_existing ?(merge_allowed = ref true) ~pool ~table ~log_smo () =
  let catalog = Pool.get pool catalog_pid in
  match Catalog.find_root catalog ~table with
  | Some _ -> { pool; table; log_smo; merge_allowed }
  | None -> raise Not_found

let root_pid t =
  let catalog = Pool.get t.pool catalog_pid in
  match Catalog.find_root catalog ~table:t.table with
  | Some root -> root
  | None -> failwith (Printf.sprintf "Btree: table %d missing from catalog" t.table)

let height t =
  let rec go pid acc =
    let page = Pool.get t.pool pid in
    if Node.is_leaf page then acc else go (Node.leftmost_child page) (acc + 1)
  in
  go (root_pid t) 1

(* Root-to-leaf descent; returns the internal pids on the path (root first)
   and the leaf pid.  Only internal pages are fetched: a level-1 node's
   children are known to be leaves, so the leaf itself is never touched —
   the caller decides whether (and when) to fetch it, which is what lets
   the DPT test of Algorithm 5 skip the leaf IO entirely. *)
let path_to_leaf t key =
  let rec go pid acc =
    let page = Pool.get t.pool pid in
    if Node.is_leaf page then (List.rev acc, pid)
    else
      let child = Node.route page key in
      if Node.level page = 1 then (List.rev (pid :: acc), child) else go child (pid :: acc)
  in
  go (root_pid t) []

let locate_leaf t ~key = snd (path_to_leaf t key)

let lookup t ~key =
  let leaf = Pool.get t.pool (locate_leaf t ~key) in
  match Node.search leaf key with
  | `Found slot -> Some (Node.leaf_value leaf slot)
  | `Not_found _ -> None

(* Split machinery.  All pages touched by one SMO are pinned for its
   duration, then logged as a single record and unpinned. *)

type smo_ctx = { mutable pinned : int list; mutable touched : Page.t list }

let get_pinned ctx pool pid =
  let page = Pool.get pool ~pin:true pid in
  ctx.pinned <- pid :: ctx.pinned;
  page

let fresh_pinned ctx pool kind ~level =
  let page = Pool.new_page pool kind in
  Node.init page ~level;
  Pool.pin pool page.Page.pid;
  ctx.pinned <- page.Page.pid :: ctx.pinned;
  page

let touch ctx page = if not (List.memq page ctx.touched) then ctx.touched <- page :: ctx.touched

(* Insert separator [sep] pointing at [child] into the parent chain
   [up_path] (nearest parent first); [below] is the left node of the split
   one level down.  Recursion propagates promoted keys upward; an empty
   path means [below] was the root and a new root is made. *)
let rec insert_sep t ctx up_path ~below ~sep ~child =
  match up_path with
  | [] ->
      let below_page = get_pinned ctx t.pool below in
      let new_root =
        fresh_pinned ctx t.pool Page.Btree_internal ~level:(Node.level below_page + 1)
      in
      Node.set_leftmost_child new_root below;
      let ok = Node.internal_insert new_root ~key:sep ~child in
      assert ok;
      let catalog = get_pinned ctx t.pool catalog_pid in
      Catalog.set_root catalog ~table:t.table ~root:new_root.Page.pid;
      touch ctx new_root;
      touch ctx catalog
  | parent_pid :: up ->
      let parent = get_pinned ctx t.pool parent_pid in
      if Node.internal_insert parent ~key:sep ~child then touch ctx parent
      else begin
        let right = fresh_pinned ctx t.pool Page.Btree_internal ~level:(Node.level parent) in
        let promoted = Node.split_internal parent right in
        let target = if sep < promoted then parent else right in
        let ok = Node.internal_insert target ~key:sep ~child in
        assert ok;
        touch ctx parent;
        touch ctx right;
        insert_sep t ctx up ~below:parent_pid ~sep:promoted ~child:right.Page.pid
      end

let split_leaf_for t key =
  let internals, leaf_pid = path_to_leaf t key in
  let ctx = { pinned = []; touched = [] } in
  let leaf = get_pinned ctx t.pool leaf_pid in
  let right = fresh_pinned ctx t.pool Page.Btree_leaf ~level:0 in
  let sep = Node.split_leaf leaf right in
  (* The right page inherits the left's TC pLSN: every transactional
     operation whose effect moved into it has an LSN at or below that, so
     the redo idempotence test stays exact under relocation. *)
  Page.set_plsn right (Page.plsn leaf);
  Node.set_right_sibling leaf right.Page.pid;
  touch ctx leaf;
  touch ctx right;
  insert_sep t ctx (List.rev internals) ~below:leaf_pid ~sep ~child:right.Page.pid;
  let kind = if internals = [] && Node.level leaf = 0 then Lr.Root_split else Lr.Leaf_split in
  log_smo_and_stamp ~pool:t.pool ~log_smo:t.log_smo kind (List.rev ctx.touched);
  List.iter (Pool.unpin t.pool) ctx.pinned

(* Lazy leaf merging: when a delete leaves a leaf under a quarter full,
   absorb its right sibling — provided both hang off the same parent and
   the combined payload fits one page.  Internal-node rebalancing is
   deliberately lazy (a merge is skipped rather than underflow a non-root
   parent); the root is collapsed onto its single child when it loses its
   last separator.  All of it is one atomic SMO, like splits. *)
let try_merge_after_delete t key =
  if not !(t.merge_allowed) then ()
  else
  let internals, lpid = path_to_leaf t key in
  match List.rev internals with
  | [] -> () (* the root is a leaf: nothing to merge into *)
  | parent_pid :: _ ->
      let ctx = { pinned = []; touched = [] } in
      let finish () = List.iter (Pool.unpin t.pool) ctx.pinned in
      let leaf = get_pinned ctx t.pool lpid in
      let cap = Node.payload_capacity leaf in
      if Node.live_bytes leaf * 4 >= cap then finish ()
      else begin
        let parent = get_pinned ctx t.pool parent_pid in
        let rpid = Node.right_sibling leaf in
        (* The right sibling must be reachable through a separator of the
           same parent — both so the merge is local and so the separator
           removal below is well-defined. *)
        let has_separator_to_sibling =
          rpid <> Node.no_sibling
          &&
          let n = Node.nslots parent in
          let rec find i = i < n && (Node.child_at parent i = rpid || find (i + 1)) in
          find 0
        in
        (* Removing a separator must not underflow a non-root parent. *)
        let parent_ok = Node.nslots parent >= 2 || parent_pid = root_pid t in
        if not (has_separator_to_sibling && parent_ok) then finish ()
        else begin
          let right = get_pinned ctx t.pool rpid in
          if Node.live_bytes leaf + Node.live_bytes right > cap then finish ()
          else begin
            Node.merge_leaves leaf right;
            Node.set_right_sibling leaf (Node.right_sibling right);
            (* Absorbed records keep their redo-test exactness: the
               surviving page's TC pLSN covers both sources. *)
            Page.set_plsn leaf (Lsn.max (Page.plsn leaf) (Page.plsn right));
            let removed = Node.internal_remove_child parent ~child:rpid in
            assert removed;
            Page.set_kind right Page.Free;
            touch ctx leaf;
            touch ctx right;
            touch ctx parent;
            if Node.nslots parent = 0 then begin
              (* Only reachable when the parent is the root (see
                 [parent_ok]): its single child becomes the root. *)
              let catalog = get_pinned ctx t.pool catalog_pid in
              Catalog.set_root catalog ~table:t.table ~root:lpid;
              Page.set_kind parent Page.Free;
              touch ctx catalog;
              log_smo_and_stamp ~pool:t.pool ~log_smo:t.log_smo Lr.Root_collapse
                (List.rev ctx.touched)
            end
            else
              log_smo_and_stamp ~pool:t.pool ~log_smo:t.log_smo Lr.Leaf_merge
                (List.rev ctx.touched);
            finish ()
          end
        end
      end

type write_target =
  | Leaf of { pid : int; before : string option }
  | Duplicate_key
  | Missing_key

let max_cell_size t =
  let page_size = Page.size (Pool.get t.pool catalog_pid) in
  (page_size - Node.node_header_end) / 4

let rec prepare_write ?(depth = 0) t ~key ~op ~value_len =
  if depth > 8 then failwith "Btree.prepare_write: split did not make room";
  if Node.leaf_cell_size ~value_len > max_cell_size t then
    invalid_arg "Btree.prepare_write: value too large for page";
  let pid = locate_leaf t ~key in
  let leaf = Pool.get t.pool pid in
  let split_and_retry () =
    split_leaf_for t key;
    prepare_write ~depth:(depth + 1) t ~key ~op ~value_len
  in
  match (op, Node.search leaf key) with
  | Lr.Insert, `Found _ -> Duplicate_key
  | Lr.Insert, `Not_found _ ->
      let needed = Node.leaf_cell_size ~value_len + 2 in
      if Node.free_space leaf >= needed then Leaf { pid; before = None }
      else if Node.reclaimable_space leaf >= needed then begin
        (* Compaction is content-preserving and needs no log record. *)
        Node.compact leaf;
        Leaf { pid; before = None }
      end
      else split_and_retry ()
  | Lr.Update, `Found slot ->
      let before = Node.leaf_value leaf slot in
      if Node.leaf_can_replace leaf ~slot ~value_len then Leaf { pid; before = Some before }
      else split_and_retry ()
  | Lr.Update, `Not_found _ -> Missing_key
  | Lr.Delete, `Found slot -> Leaf { pid; before = Some (Node.leaf_value leaf slot) }
  | Lr.Delete, `Not_found _ -> Missing_key

let prepare_write t ~key ~op ~value_len = prepare_write t ~key ~op ~value_len

let apply_insert t ~pid ~key ~value ~lsn =
  let page = Pool.get t.pool pid in
  (match Node.search page key with
  | `Found slot ->
      let ok = Node.leaf_replace page ~slot ~value in
      assert ok
  | `Not_found slot ->
      let ok =
        Node.leaf_insert page ~slot ~key ~value
        ||
        (Node.compact page;
         Node.leaf_insert page ~slot ~key ~value)
      in
      assert ok);
  Pool.mark_dirty t.pool ~pid ~lsn

let apply_update t ~pid ~key ~value ~lsn =
  let page = Pool.get t.pool pid in
  (match Node.search page key with
  | `Found slot ->
      let ok = Node.leaf_replace page ~slot ~value in
      assert ok
  | `Not_found slot ->
      let ok =
        Node.leaf_insert page ~slot ~key ~value
        ||
        (Node.compact page;
         Node.leaf_insert page ~slot ~key ~value)
      in
      assert ok);
  Pool.mark_dirty t.pool ~pid ~lsn

let apply_delete t ~pid ~key ~lsn =
  let page = Pool.get t.pool pid in
  (match Node.search page key with
  | `Found slot -> Node.leaf_delete page ~slot
  | `Not_found _ -> ());
  Pool.mark_dirty t.pool ~pid ~lsn;
  try_merge_after_delete t key

(* Breadth-first internal pids.  The children of level-1 nodes are leaves
   and are not visited. *)
let internal_pids t =
  let root = root_pid t in
  let root_page = Pool.get t.pool root in
  if Node.is_leaf root_page then []
  else begin
    let acc = ref [] in
    let queue = Queue.create () in
    Queue.add root queue;
    while not (Queue.is_empty queue) do
      let pid = Queue.pop queue in
      acc := pid :: !acc;
      let page = Pool.get t.pool pid in
      if Node.level page > 1 then Node.iter_children page (fun child -> Queue.add child queue)
    done;
    List.rev !acc
  end

let preload_index t =
  let root = root_pid t in
  let root_page = Pool.get t.pool root in
  if not (Node.is_leaf root_page) then begin
    let rec load_level pids =
      match pids with
      | [] -> ()
      | _ ->
          Pool.prefetch t.pool pids;
          let next =
            List.concat_map
              (fun pid ->
                let page = Pool.get t.pool pid in
                if Node.level page > 1 then begin
                  let children = ref [] in
                  Node.iter_children page (fun c -> children := c :: !children);
                  List.rev !children
                end
                else [])
              pids
          in
          load_level next
    in
    let first_children = ref [] in
    if Node.level root_page > 1 then
      Node.iter_children root_page (fun c -> first_children := c :: !first_children);
    load_level (List.rev !first_children)
  end

let leftmost_leaf t =
  let rec go pid =
    let page = Pool.get t.pool pid in
    if Node.is_leaf page then pid else go (Node.leftmost_child page)
  in
  go (root_pid t)

let fold_entries t ~init ~f =
  let rec walk pid acc =
    let page = Pool.get t.pool pid in
    let acc = ref acc in
    Node.iter_leaf page (fun key value -> acc := f !acc key value);
    let next = Node.right_sibling page in
    if next = Node.no_sibling then !acc else walk next !acc
  in
  walk (leftmost_leaf t) init

let entry_count t = fold_entries t ~init:0 ~f:(fun n _ _ -> n + 1)

let leaf_count t =
  let rec walk pid n =
    let page = Pool.get t.pool pid in
    let next = Node.right_sibling page in
    if next = Node.no_sibling then n + 1 else walk next (n + 1)
  in
  walk (leftmost_leaf t) 0

let check_tree t =
  let problem = ref None in
  let fail msg = if !problem = None then problem := Some msg in
  let leaves_in_order = ref [] in
  (* lo inclusive, hi exclusive; min_int/max_int act as infinities. *)
  let rec walk pid ~expected_level ~lo ~hi =
    let page = Pool.get t.pool pid in
    (match Node.check page with
    | Ok () -> ()
    | Error msg -> fail (Printf.sprintf "page %d: %s" pid msg));
    let level = Node.level page in
    (match expected_level with
    | Some l when l <> level -> fail (Printf.sprintf "page %d: level %d, expected %d" pid level l)
    | _ -> ());
    for i = 0 to Node.nslots page - 1 do
      let k = Node.slot_key page i in
      if k < lo || k >= hi then
        fail (Printf.sprintf "page %d: key %d outside separator bounds [%d,%d)" pid k lo hi)
    done;
    if Node.is_leaf page then leaves_in_order := pid :: !leaves_in_order
    else begin
      let n = Node.nslots page in
      if n = 0 then fail (Printf.sprintf "page %d: internal node with no separators" pid)
      else begin
        walk (Node.leftmost_child page) ~expected_level:(Some (level - 1)) ~lo
          ~hi:(Node.slot_key page 0);
        for i = 0 to n - 1 do
          let child_lo = Node.slot_key page i in
          let child_hi = if i = n - 1 then hi else Node.slot_key page (i + 1) in
          walk (Node.child_at page i) ~expected_level:(Some (level - 1)) ~lo:child_lo ~hi:child_hi
        done
      end
    end
  in
  walk (root_pid t) ~expected_level:None ~lo:min_int ~hi:max_int;
  (* The sibling chain must enumerate exactly the leaves, in order. *)
  let in_order = List.rev !leaves_in_order in
  let rec chain pid acc =
    let page = Pool.get t.pool pid in
    let next = Node.right_sibling page in
    if next = Node.no_sibling then List.rev (pid :: acc) else chain next (pid :: acc)
  in
  (match in_order with
  | [] -> fail "tree has no leaves"
  | first :: _ ->
      let chained = chain first [] in
      if chained <> in_order then fail "leaf sibling chain disagrees with in-order traversal");
  match !problem with None -> Ok () | Some msg -> Error msg
