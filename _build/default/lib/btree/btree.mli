(** Clustered B-tree over the buffer pool.

    The tree is the DC's data-placement structure: logical operations
    (table, key) are routed through it to a leaf page, during both normal
    execution and logical redo (Algorithms 2 and 5 traverse it to turn a
    key into a PID).

    {b SMO logging.}  Structure modifications — create, leaf/internal/root
    splits — are performed in cache and logged through [log_smo] as one
    atomic batch of full after-images of every touched page (including the
    catalog when the root moves).  The callback must append the record and
    stamp the touched pages' DC pLSNs with its LSN ({!stamp_smo} does the
    stamping; [Dc.log_smo] is the production callback).  DC recovery
    replays these images (DC-pLSN-guarded) before any transactional redo,
    so indexes are well-formed when logical redo begins — the ordering
    requirement of §1.2.

    {b Two-phase writes.}  [prepare_write] performs any splits needed so
    that the subsequent [apply_*] cannot fail for lack of space, and
    returns the before-image for undo.  The DC logs the operation between
    the two phases (WAL), then applies with the record's LSN.  The same
    [apply_*] functions are used verbatim by redo. *)

type t

val table : t -> int
val catalog_pid : int

val pool_of : t -> Deut_buffer.Buffer_pool.t
(** The buffer pool this tree reads through (used by {!Cursor}). *)

val stamp_smo : Deut_buffer.Buffer_pool.t -> Deut_wal.Log_record.smo -> lsn:Deut_wal.Lsn.t -> unit
(** Stamp + dirty every page named by the SMO record in the DC pLSN domain
    — the second half of the [log_smo] contract, for callbacks that are not
    a full data component (tests, tools). *)

val format_store :
  pool:Deut_buffer.Buffer_pool.t -> log_smo:(Deut_wal.Log_record.smo -> Deut_wal.Lsn.t) -> unit
(** Allocate and initialise the catalog page (pid 0) on a fresh store. *)

val create :
  ?merge_allowed:bool ref ->
  pool:Deut_buffer.Buffer_pool.t ->
  table:int ->
  log_smo:(Deut_wal.Log_record.smo -> Deut_wal.Lsn.t) ->
  unit ->
  t
(** Create the table's tree: a fresh root leaf, registered in the catalog,
    both logged as an SMO.  [merge_allowed] (shared, default always-on)
    gates opportunistic leaf merging — see {!set_merge_allowed}. *)

val open_existing :
  ?merge_allowed:bool ref ->
  pool:Deut_buffer.Buffer_pool.t ->
  table:int ->
  log_smo:(Deut_wal.Log_record.smo -> Deut_wal.Lsn.t) ->
  unit ->
  t
(** Attach to a table already present in the catalog (after recovery).
    Raises [Not_found] if the catalog has no entry. *)

val set_merge_allowed : t -> bool -> unit
(** Gate opportunistic leaf merging.  Redo passes turn it off: merging is
    maintenance, and reorganising the tree mid-replay would interleave
    with the logged SMOs still being reinstalled.  Normal operation and
    the undo pass (which runs on the fully replayed tree) keep it on. *)

val root_pid : t -> int
val height : t -> int

val lookup : t -> key:int -> string option

val locate_leaf : t -> key:int -> int
(** Pid of the leaf that does or would hold the key — the index traversal
    of logical redo.  Fetches only internal pages. *)

type write_target =
  | Leaf of { pid : int; before : string option }
      (** ready to apply; [before] is the current value if the key exists *)
  | Duplicate_key
  | Missing_key

val prepare_write :
  t -> key:int -> op:Deut_wal.Log_record.op_kind -> value_len:int -> write_target

val apply_insert : t -> pid:int -> key:int -> value:string -> lsn:Deut_wal.Lsn.t -> unit
val apply_update : t -> pid:int -> key:int -> value:string -> lsn:Deut_wal.Lsn.t -> unit
val apply_delete : t -> pid:int -> key:int -> lsn:Deut_wal.Lsn.t -> unit
(** Apply a logged operation to the (cached) leaf and stamp its pLSN.  The
    key is re-searched within the page, so these also serve redo, where the
    leaf may have a different slot layout than at log time.  [apply_insert]
    and [apply_update] tolerate the other's state (insert of an existing
    key overwrites; update of a missing key inserts): redo proper never
    needs the latitude, but CLR replay does. *)

val internal_pids : t -> int list
(** All internal-node pids (root included), breadth-first — the index pages
    Log2 preloads at the start of DC recovery (Appendix A.1). *)

val preload_index : t -> unit
(** Load every internal page into the cache, level by level, prefetching
    each level as a batch before touching it (Appendix A.1's "simply load
    all index pages at the beginning of DC recovery"). *)

val fold_entries : t -> init:'a -> f:('a -> int -> string -> 'a) -> 'a
(** In-order fold over all (key, value) entries via the leaf chain. *)

val entry_count : t -> int

val check_tree : t -> (unit, string) result
(** Whole-tree structural invariants: per-node layout, level consistency,
    separator bounds, leaf-chain agreement with in-order traversal. *)

val leaf_count : t -> int
