module Page = Deut_storage.Page

(* Node header layout (offsets relative to the page header):
     +0   u16  level (0 = leaf)
     +2   u16  nslots
     +4   u16  cell_start — lowest byte of the cell area
     +6   u16  reserved
     +8   u32  right_sibling
     +12  u32  leftmost_child (internal nodes only)
   The slot directory of u16 cell offsets starts at +16. *)

let off_level = Page.header_size
let off_nslots = Page.header_size + 2
let off_cell_start = Page.header_size + 4
let off_right_sibling = Page.header_size + 8
let off_leftmost = Page.header_size + 12
let node_header_end = Page.header_size + 16
let no_sibling = 0xFFFFFFFF

let level p = Page.get_u16 p off_level
let is_leaf p = level p = 0
let nslots p = Page.get_u16 p off_nslots
let set_nslots p n = Page.set_u16 p off_nslots n
let cell_start p = Page.get_u16 p off_cell_start
let set_cell_start p v = Page.set_u16 p off_cell_start v
let right_sibling p = Page.get_u32 p off_right_sibling
let set_right_sibling p v = Page.set_u32 p off_right_sibling v
let leftmost_child p = Page.get_u32 p off_leftmost
let set_leftmost_child p v = Page.set_u32 p off_leftmost v

let init p ~level =
  Page.zero_range p ~off:Page.header_size ~len:(Page.size p - Page.header_size);
  Page.set_kind p (if level = 0 then Page.Btree_leaf else Page.Btree_internal);
  Page.set_u16 p off_level level;
  set_nslots p 0;
  set_cell_start p (Page.size p);
  set_right_sibling p no_sibling;
  set_leftmost_child p no_sibling

let slot_offset p i = Page.get_u16 p (node_header_end + (2 * i))
let set_slot_offset p i v = Page.set_u16 p (node_header_end + (2 * i)) v
let slot_key p i = Page.get_u64 p (slot_offset p i)
let free_space p = cell_start p - (node_header_end + (2 * nslots p))

let leaf_cell_size ~value_len = 8 + 2 + value_len
let internal_cell_size = 8 + 4

let cell_size_at p i =
  let off = slot_offset p i in
  if is_leaf p then leaf_cell_size ~value_len:(Page.get_u16 p (off + 8)) else internal_cell_size

let reclaimable_space p =
  let used = ref 0 in
  for i = 0 to nslots p - 1 do
    used := !used + cell_size_at p i
  done;
  Page.size p - node_header_end - (2 * nslots p) - !used

let search p key =
  let n = nslots p in
  (* Invariant: keys at slots < lo are < key; keys at slots >= hi are > key. *)
  let rec go lo hi =
    if lo >= hi then `Not_found lo
    else
      let mid = (lo + hi) / 2 in
      let k = slot_key p mid in
      if k = key then `Found mid else if k < key then go (mid + 1) hi else go lo mid
  in
  go 0 n

let leaf_value p i =
  let off = slot_offset p i in
  let vlen = Page.get_u16 p (off + 8) in
  Page.get_bytes p ~off:(off + 10) ~len:vlen

(* Copy each live cell out and rewrite the cell area tightly packed. *)
let compact p =
  let n = nslots p in
  let cells =
    Array.init n (fun i ->
        let off = slot_offset p i in
        Page.get_bytes p ~off ~len:(cell_size_at p i))
  in
  let watermark = ref (Page.size p) in
  Array.iteri
    (fun i cell ->
      watermark := !watermark - String.length cell;
      Page.set_bytes p ~off:!watermark cell;
      set_slot_offset p i !watermark)
    cells;
  set_cell_start p !watermark

let insert_slot p slot off =
  let n = nslots p in
  (* Shift slots [slot, n) up one position. *)
  if n > slot then
    Page.blit_within p
      ~src:(node_header_end + (2 * slot))
      ~dst:(node_header_end + (2 * (slot + 1)))
      ~len:(2 * (n - slot));
  set_slot_offset p slot off;
  set_nslots p (n + 1)

let remove_slot p slot =
  let n = nslots p in
  if n > slot + 1 then
    Page.blit_within p
      ~src:(node_header_end + (2 * (slot + 1)))
      ~dst:(node_header_end + (2 * slot))
      ~len:(2 * (n - slot - 1));
  set_nslots p (n - 1)

let leaf_insert p ~slot ~key ~value =
  let size = leaf_cell_size ~value_len:(String.length value) in
  if free_space p < size + 2 then false
  else begin
    let off = cell_start p - size in
    Page.set_u64 p off key;
    Page.set_u16 p (off + 8) (String.length value);
    Page.set_bytes p ~off:(off + 10) value;
    set_cell_start p off;
    insert_slot p slot off;
    true
  end

let leaf_delete p ~slot = remove_slot p slot

let leaf_can_replace p ~slot ~value_len =
  let old_off = slot_offset p slot in
  let old_vlen = Page.get_u16 p (old_off + 8) in
  value_len <= old_vlen
  || free_space p >= leaf_cell_size ~value_len
  || reclaimable_space p + leaf_cell_size ~value_len:old_vlen >= leaf_cell_size ~value_len

let leaf_replace p ~slot ~value =
  let key = slot_key p slot in
  let old_off = slot_offset p slot in
  let old_vlen = Page.get_u16 p (old_off + 8) in
  if String.length value <= old_vlen then begin
    (* Shrinking or same-size: overwrite in place. *)
    Page.set_u16 p (old_off + 8) (String.length value);
    Page.set_bytes p ~off:(old_off + 10) value;
    true
  end
  else begin
    (* Growing: decide feasibility before mutating anything, so a [false]
       return leaves the page intact for the caller to split. *)
    let needed = leaf_cell_size ~value_len:(String.length value) in
    if free_space p >= needed then begin
      (* Append the new cell; dropping then re-adding the slot is net zero
         directory space, so success is guaranteed. *)
      remove_slot p slot;
      let ok = leaf_insert p ~slot ~key ~value in
      assert ok;
      true
    end
    else begin
      let old_cell = leaf_cell_size ~value_len:old_vlen in
      if reclaimable_space p + old_cell >= needed then begin
        remove_slot p slot;
        compact p;
        let ok = leaf_insert p ~slot ~key ~value in
        assert ok;
        true
      end
      else false
    end
  end

let iter_leaf p f =
  for i = 0 to nslots p - 1 do
    f (slot_key p i) (leaf_value p i)
  done

let child_at p i = Page.get_u32 p (slot_offset p i + 8)

let route p key =
  match search p key with
  | `Found i -> child_at p i
  | `Not_found 0 -> leftmost_child p
  | `Not_found i -> child_at p (i - 1)

let internal_insert p ~key ~child =
  if free_space p < internal_cell_size + 2 then false
  else begin
    let slot = match search p key with `Found i -> i | `Not_found i -> i in
    let off = cell_start p - internal_cell_size in
    Page.set_u64 p off key;
    Page.set_u32 p (off + 8) child;
    set_cell_start p off;
    insert_slot p slot off;
    true
  end

let iter_children p f =
  f (leftmost_child p);
  for i = 0 to nslots p - 1 do
    f (child_at p i)
  done

let move_cells ~src ~dst ~from_slot =
  let n = nslots src in
  for i = from_slot to n - 1 do
    let off = slot_offset src i in
    let size = cell_size_at src i in
    let cell = Page.get_bytes src ~off ~len:size in
    let doff = cell_start dst - size in
    Page.set_bytes dst ~off:doff cell;
    set_cell_start dst doff;
    set_slot_offset dst (nslots dst) doff;
    set_nslots dst (nslots dst + 1)
  done;
  set_nslots src from_slot

let live_bytes p =
  let cells = ref 0 in
  for i = 0 to nslots p - 1 do
    cells := !cells + cell_size_at p i
  done;
  !cells + (2 * nslots p)

let payload_capacity p = Page.size p - node_header_end

let internal_remove_child p ~child =
  let n = nslots p in
  let rec find i = if i >= n then None else if child_at p i = child then Some i else find (i + 1) in
  match find 0 with
  | Some slot ->
      remove_slot p slot;
      true
  | None -> false

let merge_leaves dst src =
  compact dst;
  move_cells ~src ~dst:(dst) ~from_slot:0

let split_leaf src dst =
  let n = nslots src in
  assert (n >= 2);
  let mid = n / 2 in
  move_cells ~src ~dst ~from_slot:mid;
  set_right_sibling dst (right_sibling src);
  (* Caller links src -> dst using dst's pid; we cannot see pids here. *)
  compact src;
  slot_key dst 0

let split_internal src dst =
  let n = nslots src in
  assert (n >= 3);
  let mid = n / 2 in
  let promoted = slot_key src mid in
  set_leftmost_child dst (child_at src mid);
  move_cells ~src ~dst ~from_slot:(mid + 1);
  (* Drop the promoted cell from src: it was not moved and is now garbage. *)
  set_nslots src mid;
  compact src;
  promoted

let check p =
  let n = nslots p in
  let size = Page.size p in
  let problem = ref None in
  let fail msg = if !problem = None then problem := Some msg in
  if cell_start p > size || cell_start p < node_header_end + (2 * n) then
    fail "cell watermark out of range";
  for i = 0 to n - 1 do
    let off = slot_offset p i in
    if off < cell_start p || off + cell_size_at p i > size then
      fail (Printf.sprintf "slot %d offset %d out of cell area" i off);
    if i > 0 && slot_key p (i - 1) >= slot_key p i then
      fail (Printf.sprintf "keys not strictly ascending at slot %d" i)
  done;
  if (not (is_leaf p)) && n > 0 && leftmost_child p = no_sibling then
    fail "internal node without leftmost child";
  match !problem with None -> Ok () | Some msg -> Error msg
