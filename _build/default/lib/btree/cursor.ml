module Page = Deut_storage.Page
module Pool = Deut_buffer.Buffer_pool

type state =
  | Closed
  | Exhausted
  | At of { pid : int; slot : int }  (* the leaf at [pid] is pinned *)

type t = { tree : Btree.t; pool : Pool.t; mutable state : state }

let pin_leaf t pid = ignore (Pool.get t.pool ~pin:true pid)
let unpin_leaf t pid = Pool.unpin t.pool pid

(* Move right through (possibly empty) leaves until one has a slot. *)
let rec settle t pid slot =
  let page = Pool.get t.pool pid in
  if slot < Node.nslots page then begin
    pin_leaf t pid;
    t.state <- At { pid; slot }
  end
  else begin
    let next = Node.right_sibling page in
    if next = Node.no_sibling then t.state <- Exhausted else settle t next 0
  end

let seek tree ~key =
  let pool = Btree.pool_of tree in
  let t = { tree; pool; state = Exhausted } in
  let pid = Btree.locate_leaf tree ~key in
  let page = Pool.get pool pid in
  let slot = match Node.search page key with `Found s -> s | `Not_found s -> s in
  settle t pid slot;
  t

let first tree = seek tree ~key:min_int

let is_valid t = match t.state with At _ -> true | Exhausted | Closed -> false

let current t =
  match t.state with
  | At { pid; slot } -> (Pool.get t.pool pid, slot)
  | Exhausted -> invalid_arg "Cursor: exhausted"
  | Closed -> invalid_arg "Cursor: closed"

let key t =
  let page, slot = current t in
  Node.slot_key page slot

let value t =
  let page, slot = current t in
  Node.leaf_value page slot

let next t =
  match t.state with
  | At { pid; slot } ->
      unpin_leaf t pid;
      t.state <- Exhausted;
      settle t pid (slot + 1)
  | Exhausted -> ()
  | Closed -> invalid_arg "Cursor: closed"

let close t =
  (match t.state with At { pid; _ } -> unpin_leaf t pid | Exhausted | Closed -> ());
  t.state <- Closed

let fold_range tree ~lo ~hi ~init ~f =
  let cursor = seek tree ~key:lo in
  let rec go acc =
    if is_valid cursor && key cursor < hi then begin
      let acc = f acc (key cursor) (value cursor) in
      next cursor;
      go acc
    end
    else acc
  in
  let result = go init in
  close cursor;
  result

let count_range tree ~lo ~hi = fold_range tree ~lo ~hi ~init:0 ~f:(fun n _ _ -> n + 1)
