module Page = Deut_storage.Page

(* Layout: u16 ntables right after the page header, then (u32 table,
   u32 root) pairs. *)

let off_count = Page.header_size
let entries_start = Page.header_size + 2
let entry_size = 8

let init p =
  Page.set_kind p Page.Meta;
  Page.set_u16 p off_count 0

let count p = Page.get_u16 p off_count
let entry_off i = entries_start + (i * entry_size)

let find_index p ~table =
  let n = count p in
  let rec go i =
    if i >= n then None
    else if Page.get_u32 p (entry_off i) = table then Some i
    else go (i + 1)
  in
  go 0

let find_root p ~table =
  Option.map (fun i -> Page.get_u32 p (entry_off i + 4)) (find_index p ~table)

let set_root p ~table ~root =
  match find_index p ~table with
  | Some i -> Page.set_u32 p (entry_off i + 4) root
  | None ->
      let n = count p in
      if entry_off (n + 1) > Page.size p then failwith "Catalog.set_root: catalog page full";
      Page.set_u32 p (entry_off n) table;
      Page.set_u32 p (entry_off n + 4) root;
      Page.set_u16 p off_count (n + 1)

let tables p =
  List.init (count p) (fun i -> (Page.get_u32 p (entry_off i), Page.get_u32 p (entry_off i + 4)))
