(** What survives a crash: the stable page store, the stable log prefix,
    and the master record (last completed checkpoint).

    A captured image is immutable here: every recovery run instantiates its
    own deep copies, so the five methods of §5.2 can be compared
    side-by-side from the {e same} crash — the paper's controlled
    methodology. *)

module Page_store = Deut_storage.Page_store
module Log_manager = Deut_wal.Log_manager
module Lsn = Deut_wal.Lsn

type t = {
  config : Config.t;
  store : Page_store.t;
  log : Log_manager.t;  (* TC log, truncated to the stable prefix *)
  dc_log : Log_manager.t option;  (* the DC's own log in the split layout *)
  master : Lsn.t;
}

let capture (engine : Engine.t) =
  {
    config = engine.Engine.config;
    store = Page_store.clone engine.Engine.store;
    log = Log_manager.crash engine.Engine.log;
    dc_log =
      (if Engine.split engine then Some (Log_manager.crash engine.Engine.dc_log) else None);
    master = Tc.master engine.Engine.tc;
  }

let config t = t.config
let master t = t.master

let instantiate ?config t =
  let config = Option.value config ~default:t.config in
  (* A config override may retune cache sizes etc., but the log layout is a
     property of what was logged: recovering a split image as integrated
     would silently drop the DC log (and vice versa would look for one that
     does not exist). *)
  (match (t.dc_log, config.Config.log_layout) with
  | Some _, Config.Split | None, Config.Integrated -> ()
  | Some _, Config.Integrated ->
      invalid_arg "Crash_image.instantiate: split-log image cannot be recovered as integrated"
  | None, Config.Split ->
      invalid_arg "Crash_image.instantiate: integrated image cannot be recovered as split");
  let dc_log = Option.map Log_manager.crash t.dc_log in
  Engine.assemble ?dc_log config ~store:(Page_store.clone t.store)
    ~log:(Log_manager.crash t.log)

let log_bytes t = Log_manager.end_lsn t.log
let stable_pages t = Page_store.stable_count t.store
