(** Measurements of one recovery run — the quantities behind every figure
    and table in the paper's evaluation (§5.3, Appendices B and C). *)

type t = {
  mutable analysis_us : float;  (** DC-recovery / analysis pass time *)
  mutable redo_us : float;
  mutable undo_us : float;
  mutable records_scanned : int;  (** redo-range records examined *)
  mutable redo_candidates : int;  (** update/CLR records subjected to a redo test *)
  mutable redo_applied : int;
  mutable skipped_dpt : int;  (** bypassed: page not in DPT (no page fetch) *)
  mutable skipped_rlsn : int;  (** bypassed: LSN below the entry's rLSN (no fetch) *)
  mutable skipped_plsn : int;  (** fetched, then bypassed by the pLSN test *)
  mutable tail_records : int;  (** logical ops past the last Δ record (basic mode) *)
  mutable data_page_fetches : int;
  mutable index_page_fetches : int;
  mutable data_stall_us : float;
  mutable index_stall_us : float;
  mutable log_pages_read : int;
  mutable dpt_size : int;
  mutable deltas_seen : int;  (** Δ-log records seen by the analysis pass (Fig. 2c) *)
  mutable bws_seen : int;  (** BW-log records seen by the analysis pass (Fig. 2c) *)
  mutable smos_replayed : int;
  mutable losers : int;
  mutable clrs_written : int;
  mutable prefetch_issued : int;
  mutable prefetch_hits : int;
  mutable stalls : int;
}

let create () =
  {
    analysis_us = 0.0;
    redo_us = 0.0;
    undo_us = 0.0;
    records_scanned = 0;
    redo_candidates = 0;
    redo_applied = 0;
    skipped_dpt = 0;
    skipped_rlsn = 0;
    skipped_plsn = 0;
    tail_records = 0;
    data_page_fetches = 0;
    index_page_fetches = 0;
    data_stall_us = 0.0;
    index_stall_us = 0.0;
    log_pages_read = 0;
    dpt_size = 0;
    deltas_seen = 0;
    bws_seen = 0;
    smos_replayed = 0;
    losers = 0;
    clrs_written = 0;
    prefetch_issued = 0;
    prefetch_hits = 0;
    stalls = 0;
  }

let redo_ms t = t.redo_us /. 1000.0
let analysis_ms t = t.analysis_us /. 1000.0
let undo_ms t = t.undo_us /. 1000.0
let total_ms t = (t.analysis_us +. t.redo_us +. t.undo_us) /. 1000.0

let pp fmt t =
  Format.fprintf fmt
    "@[<v>analysis %.1f ms, redo %.1f ms, undo %.1f ms@,\
     records: scanned %d, candidates %d, applied %d, tail %d@,\
     skips: dpt %d, rlsn %d, plsn %d@,\
     fetches: data %d (stall %.1f ms), index %d (stall %.1f ms), log pages %d@,\
     dpt %d entries; Δ seen %d, BW seen %d, SMO replayed %d@,\
     prefetch: issued %d, hits %d, stalls %d@,\
     undo: losers %d, CLRs %d@]"
    (analysis_ms t) (redo_ms t) (undo_ms t) t.records_scanned t.redo_candidates t.redo_applied
    t.tail_records t.skipped_dpt t.skipped_rlsn t.skipped_plsn t.data_page_fetches
    (t.data_stall_us /. 1000.0)
    t.index_page_fetches
    (t.index_stall_us /. 1000.0)
    t.log_pages_read t.dpt_size t.deltas_seen t.bws_seen t.smos_replayed t.prefetch_issued
    t.prefetch_hits t.stalls t.losers t.clrs_written

let to_string t = Format.asprintf "%a" pp t
