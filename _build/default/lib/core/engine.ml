(** Assembly of one running engine instance: clock, disks, stable store,
    log, cache, DC, TC.  [Db] wraps this for users; the recovery drivers
    assemble one from a crash image. *)

module Clock = Deut_sim.Clock
module Disk = Deut_sim.Disk
module Page_store = Deut_storage.Page_store
module Log_manager = Deut_wal.Log_manager
module Pool = Deut_buffer.Buffer_pool

type t = {
  config : Config.t;
  clock : Clock.t;
  data_disk : Disk.t;
  log_disk : Disk.t;
  dc_log_disk : Disk.t option;  (* the DC log's own device in the split layout *)
  store : Page_store.t;
  log : Log_manager.t;  (* the TC log; also carries DC records when integrated *)
  dc_log : Log_manager.t;  (* == [log] in the integrated layout *)
  pool : Pool.t;
  dc : Dc.t;
  tc : Tc.t;
}

let split t = not (t.dc_log == t.log)

let assemble ?dc_log config ~store ~log =
  let clock = Clock.create () in
  let data_disk = Disk.create ~params:config.Config.data_disk clock in
  let log_disk = Disk.create ~params:config.Config.log_disk clock in
  Log_manager.attach_read_disk log log_disk;
  let dc_log, dc_log_disk =
    match config.Config.log_layout with
    | Config.Integrated -> (log, None)
    | Config.Split ->
        let own =
          match dc_log with
          | Some l -> l
          | None -> Log_manager.create ~page_size:config.Config.page_size
        in
        let disk = Disk.create ~params:config.Config.log_disk clock in
        Log_manager.attach_read_disk own disk;
        (own, Some disk)
  in
  let pool =
    Pool.create ~capacity:config.Config.pool_pages ~block_pages:config.Config.block_pages
      ~lazy_writer_every:config.Config.lazy_writer_every
      ~lazy_writer_min_age:(2 * config.Config.delta_period) ~store ~disk:data_disk ~clock ()
  in
  let dc =
    Dc.create ~config ~clock ~disk:data_disk ~store ~pool ~dc_log
      ~tc_force_upto:(Log_manager.force_upto log) ()
  in
  let tc = Tc.create ~config ~log in
  { config; clock; data_disk; log_disk; dc_log_disk; store; log; dc_log; pool; dc; tc }

let fresh config =
  let store = Page_store.create ~page_size:config.Config.page_size in
  let log = Log_manager.create ~page_size:config.Config.page_size in
  let t = assemble config ~store ~log in
  Dc.format t.dc;
  t
