(** Introspection: one snapshot record over every counter the engine
    keeps — cache, disks, logs, monitors — with a human-readable
    rendering.  [Db.stats]/[Db.stats_string] expose it to users. *)

module Pool = Deut_buffer.Buffer_pool
module Disk = Deut_sim.Disk
module Log = Deut_wal.Log_manager

type t = {
  (* cache *)
  cache_capacity : int;
  cache_resident : int;
  cache_dirty : int;
  hits : int;
  misses : int;
  hit_rate : float;
  evictions : int;
  flushes : int;
  prefetch_issued : int;
  prefetch_hits : int;
  stalls : int;
  stall_ms : float;
  (* data disk *)
  data_pages_read : int;
  data_pages_written : int;
  data_seeks : int;
  data_sequential : int;
  (* logs *)
  split_logs : bool;
  tc_log_records : int;
  tc_log_bytes : int;
  tc_log_retained_bytes : int;
  tc_log_forces : int;
  dc_log_records : int;
  dc_log_retained_bytes : int;
  (* monitors *)
  delta_records : int;
  delta_bytes : int;
  bw_records : int;
  bw_bytes : int;
  (* database *)
  allocated_pages : int;
  stable_pages : int;
  tables : int;
  sim_now_ms : float;
}

let capture (engine : Engine.t) =
  let pool = engine.Engine.pool in
  let c = Pool.counters pool in
  let d = Disk.counters engine.Engine.data_disk in
  let log = engine.Engine.log in
  let dc_log = engine.Engine.dc_log in
  let monitor = Dc.monitor engine.Engine.dc in
  (* Snapshot the mutable counters before anything below (listing the
     catalog, sizing the pool) touches the cache and perturbs them. *)
  let hits = c.Pool.hits
  and misses = c.Pool.misses
  and prefetch_hits = c.Pool.prefetch_hits
  and prefetch_issued = c.Pool.prefetch_issued
  and evictions = c.Pool.evictions
  and flushes = c.Pool.flushes
  and stalls = c.Pool.stalls
  and stall_us = c.Pool.stall_us in
  let lookups = hits + misses + prefetch_hits in
  {
    cache_capacity = Pool.capacity pool;
    cache_resident = Pool.size pool;
    cache_dirty = Pool.dirty_count pool;
    hits;
    misses;
    hit_rate = (if lookups = 0 then 1.0 else float_of_int hits /. float_of_int lookups);
    evictions;
    flushes;
    prefetch_issued;
    prefetch_hits;
    stalls;
    stall_ms = stall_us /. 1000.0;
    data_pages_read = d.Disk.pages_read;
    data_pages_written = d.Disk.pages_written;
    data_seeks = d.Disk.seeks;
    data_sequential = d.Disk.sequential_requests;
    split_logs = Engine.split engine;
    tc_log_records = Log.record_count log;
    tc_log_bytes = Log.end_lsn log;
    tc_log_retained_bytes = Log.end_lsn log - Log.base_lsn log;
    tc_log_forces = Log.force_count log;
    dc_log_records = (if Engine.split engine then Log.record_count dc_log else 0);
    dc_log_retained_bytes =
      (if Engine.split engine then Log.end_lsn dc_log - Log.base_lsn dc_log else 0);
    delta_records = Monitor.deltas_written monitor;
    delta_bytes = Monitor.delta_bytes monitor;
    bw_records = Monitor.bws_written monitor;
    bw_bytes = Monitor.bw_bytes monitor;
    allocated_pages = Deut_storage.Page_store.allocated_count engine.Engine.store;
    stable_pages = Deut_storage.Page_store.stable_count engine.Engine.store;
    tables = List.length (Dc.tables engine.Engine.dc);
    sim_now_ms = Deut_sim.Clock.now_ms engine.Engine.clock;
  }

let to_string t =
  let b = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "database:   %d tables, %d pages allocated (%d stable)" t.tables t.allocated_pages
    t.stable_pages;
  line "cache:      %d/%d resident, %d dirty; hits %d / misses %d (%.1f%% hit rate)"
    t.cache_resident t.cache_capacity t.cache_dirty t.hits t.misses (100.0 *. t.hit_rate);
  line "            evictions %d, flushes %d, prefetch %d issued / %d used, stalls %d (%.1f ms)"
    t.evictions t.flushes t.prefetch_issued t.prefetch_hits t.stalls t.stall_ms;
  line "data disk:  %d pages read, %d written; %d seeks, %d sequential" t.data_pages_read
    t.data_pages_written t.data_seeks t.data_sequential;
  line "tc log:     %d records, %d bytes (%d retained), %d forces" t.tc_log_records
    t.tc_log_bytes t.tc_log_retained_bytes t.tc_log_forces;
  if t.split_logs then
    line "dc log:     %d records, %d bytes retained (split layout)" t.dc_log_records
      t.dc_log_retained_bytes;
  line "monitors:   %d Δ records (%d B), %d BW records (%d B)" t.delta_records t.delta_bytes
    t.bw_records t.bw_bytes;
  line "sim clock:  %.1f ms" t.sim_now_ms;
  Buffer.contents b
