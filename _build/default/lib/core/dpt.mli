(** The dirty page table: a conservative approximation of the set of pages
    dirty in the cache at the time of the crash (§3).

    Entries are (pid → rLSN, lastLSN).  Safety requires (i) every page
    actually dirty at the crash is present, and (ii) each entry's rLSN is
    not greater than the LSN of the operation that first dirtied the page.
    Both properties are qcheck-tested against ground truth. *)

type t

val create : unit -> t
val size : t -> int
val mem : t -> int -> bool

val find : t -> int -> (Deut_wal.Lsn.t * Deut_wal.Lsn.t) option
(** [(rLSN, lastLSN)] of the entry, if present. *)

val rlsn : t -> int -> Deut_wal.Lsn.t option

val add : t -> pid:int -> lsn:Deut_wal.Lsn.t -> bool
(** ADDENTRY: if absent, insert with rLSN = lastLSN = lsn and return [true]
    (it is a first mention); if present, raise the entry's lastLSN to [lsn]
    (monotonically) and return [false]. *)

val add_exact : t -> pid:int -> rlsn:Deut_wal.Lsn.t -> last_lsn:Deut_wal.Lsn.t -> unit
(** Install an entry verbatim (ARIES checkpoint DPT image). *)

val remove : t -> int -> unit

val raise_rlsn : t -> pid:int -> to_:Deut_wal.Lsn.t -> unit
(** Floor the entry's rLSN at [to_] (the FW-LSN adjustment of Algorithms 3
    and 4); no-op if absent or already higher. *)

val set_last : t -> pid:int -> Deut_wal.Lsn.t -> unit

val iter : t -> (int -> rlsn:Deut_wal.Lsn.t -> last_lsn:Deut_wal.Lsn.t -> unit) -> unit

val min_rlsn : t -> Deut_wal.Lsn.t
(** Smallest rLSN over all entries ([Lsn.nil] if empty) — the ARIES redo
    scan start point. *)

val to_sorted_list : t -> (int * Deut_wal.Lsn.t * Deut_wal.Lsn.t) list
(** Entries sorted by pid (deterministic output for tests and reports). *)

val entries_by_rlsn : t -> int list
(** Pids in ascending rLSN order — the DPT-driven prefetch order of
    Appendix A.2. *)
