lib/core/lock_table.ml: Hashtbl List
