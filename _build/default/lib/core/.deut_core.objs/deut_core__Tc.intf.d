lib/core/tc.mli: Config Dc Deut_wal
