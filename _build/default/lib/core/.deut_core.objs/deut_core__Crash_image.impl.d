lib/core/crash_image.ml: Config Deut_storage Deut_wal Engine Option Tc
