lib/core/dpt.ml: Deut_wal Hashtbl Int List Option
