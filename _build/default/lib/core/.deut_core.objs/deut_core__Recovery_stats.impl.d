lib/core/recovery_stats.ml: Format
