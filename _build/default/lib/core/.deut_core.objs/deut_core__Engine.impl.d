lib/core/engine.ml: Config Dc Deut_buffer Deut_sim Deut_storage Deut_wal Tc
