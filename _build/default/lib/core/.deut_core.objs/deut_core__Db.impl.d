lib/core/db.ml: Array Config Crash_image Dc Deut_btree Deut_buffer Deut_sim Deut_storage Deut_wal Engine Engine_stats List Monitor Printf Recovery Tc
