lib/core/monitor.mli: Config Deut_wal
