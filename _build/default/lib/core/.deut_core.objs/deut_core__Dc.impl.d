lib/core/dc.ml: Array Bytes Config Deut_btree Deut_buffer Deut_sim Deut_storage Deut_wal Dpt Hashtbl List Monitor Recovery_stats
