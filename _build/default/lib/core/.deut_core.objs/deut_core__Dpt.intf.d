lib/core/dpt.mli: Deut_wal
