lib/core/engine_stats.ml: Buffer Dc Deut_buffer Deut_sim Deut_storage Deut_wal Engine List Monitor Printf
