lib/core/config.ml: Deut_sim
