lib/core/recovery.mli: Config Crash_image Deut_wal Dpt Engine Recovery_stats
