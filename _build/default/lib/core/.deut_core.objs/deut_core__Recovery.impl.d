lib/core/recovery.ml: Array Config Crash_image Dc Deut_buffer Deut_sim Deut_wal Dpt Engine Hashtbl List Option Printf Recovery_stats Tc
