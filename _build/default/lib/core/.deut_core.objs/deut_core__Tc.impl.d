lib/core/tc.ml: Array Config Dc Deut_btree Deut_wal Hashtbl Int List Lock_table Monitor Printf Stdlib String
