lib/core/dc.mli: Config Deut_btree Deut_buffer Deut_sim Deut_storage Deut_wal Dpt Monitor Recovery_stats
