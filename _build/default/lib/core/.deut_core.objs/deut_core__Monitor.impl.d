lib/core/monitor.ml: Array Config Deut_sim Deut_wal Hashtbl Int List String
