lib/core/db.mli: Config Crash_image Deut_wal Engine Engine_stats Recovery Recovery_stats
