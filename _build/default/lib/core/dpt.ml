module Lsn = Deut_wal.Lsn

type entry = { mutable rlsn : Lsn.t; mutable last_lsn : Lsn.t }
type t = (int, entry) Hashtbl.t

let create () : t = Hashtbl.create 256
let size = Hashtbl.length
let mem = Hashtbl.mem

let find t pid =
  Option.map (fun e -> (e.rlsn, e.last_lsn)) (Hashtbl.find_opt t pid)

let rlsn t pid = Option.map (fun e -> e.rlsn) (Hashtbl.find_opt t pid)

let add t ~pid ~lsn =
  match Hashtbl.find_opt t pid with
  | Some e ->
      if lsn > e.last_lsn then e.last_lsn <- lsn;
      false
  | None ->
      Hashtbl.replace t pid { rlsn = lsn; last_lsn = lsn };
      true

let add_exact t ~pid ~rlsn ~last_lsn = Hashtbl.replace t pid { rlsn; last_lsn }
let remove t pid = Hashtbl.remove t pid

let raise_rlsn t ~pid ~to_ =
  match Hashtbl.find_opt t pid with
  | Some e when e.rlsn < to_ -> e.rlsn <- to_
  | Some _ | None -> ()

let set_last t ~pid lsn =
  match Hashtbl.find_opt t pid with Some e -> e.last_lsn <- lsn | None -> ()

let iter t f = Hashtbl.iter (fun pid e -> f pid ~rlsn:e.rlsn ~last_lsn:e.last_lsn) t

let min_rlsn t =
  Hashtbl.fold (fun _ e acc -> if Lsn.is_nil acc then e.rlsn else Lsn.min acc e.rlsn) t Lsn.nil

let to_sorted_list t =
  Hashtbl.fold (fun pid e acc -> (pid, e.rlsn, e.last_lsn) :: acc) t []
  |> List.sort (fun (a, _, _) (b, _, _) -> Int.compare a b)

let entries_by_rlsn t =
  Hashtbl.fold (fun pid e acc -> (pid, e.rlsn) :: acc) t []
  |> List.sort (fun (_, a) (_, b) -> Lsn.compare a b)
  |> List.map fst
