type t = int

let nil = -1
let is_nil t = t < 0
let compare = Int.compare
let equal = Int.equal
let max = Stdlib.max
let min = Stdlib.min
let to_string t = if is_nil t then "nil" else string_of_int t
let pp fmt t = Format.pp_print_string fmt (to_string t)
