(** Log sequence numbers.

    An LSN is the byte offset of a record in the log, as in ARIES and SQL
    Server: monotonically increasing, totally ordered, and directly usable
    to locate a record and to count log pages between two positions. *)

type t = int

val nil : t
(** Sentinel "no LSN" — smaller than every valid LSN. *)

val is_nil : t -> bool
val compare : t -> t -> int
val equal : t -> t -> bool
val max : t -> t -> t
val min : t -> t -> t
val to_string : t -> string
val pp : Format.formatter -> t -> unit
