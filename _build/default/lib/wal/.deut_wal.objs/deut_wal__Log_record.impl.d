lib/wal/log_record.ml: Array Codec Lsn Printf
