lib/wal/codec.mli:
