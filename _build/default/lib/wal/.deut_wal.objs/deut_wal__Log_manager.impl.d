lib/wal/log_manager.ml: Bytes Char Deut_sim Int32 Log_record Lsn Printf Stdlib String
