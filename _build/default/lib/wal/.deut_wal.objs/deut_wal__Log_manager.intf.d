lib/wal/log_manager.mli: Deut_sim Log_record Lsn
