type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int seed }

(* splitmix64 step: the golden-gamma increment followed by two xor-shift
   multiplications gives 64 well-mixed bits per call. *)
let int64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = { state = int64 t }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let mask = Int64.shift_right_logical (int64 t) 1 in
  Int64.to_int (Int64.rem mask (Int64.of_int bound))

let float t bound =
  let mantissa = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float mantissa /. 9007199254740992.0 *. bound

let bool t = Int64.logand (int64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

module Zipf = struct
  type dist = { cdf : float array }

  let create ~n ~theta =
    if n <= 0 then invalid_arg "Zipf.create: n must be positive";
    let weights = Array.init n (fun i -> 1.0 /. Float.pow (float_of_int (i + 1)) theta) in
    let total = Array.fold_left ( +. ) 0.0 weights in
    let cdf = Array.make n 0.0 in
    let acc = ref 0.0 in
    for i = 0 to n - 1 do
      acc := !acc +. (weights.(i) /. total);
      cdf.(i) <- !acc
    done;
    cdf.(n - 1) <- 1.0;
    { cdf }

  let sample t { cdf } =
    let u = float t 1.0 in
    (* Smallest index whose cumulative probability covers [u]. *)
    let rec search lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if cdf.(mid) < u then search (mid + 1) hi else search lo mid
    in
    search 0 (Array.length cdf - 1)
end
