(** Running statistics (Welford) for experiment reporting: the paper calls
    out the high run-to-run variance of the prefetching methods (Log2, SQL2),
    so the benches report mean ± stddev over repeated runs. *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val mean : t -> float
val stddev : t -> float
val min : t -> float
val max : t -> float

val summary : t -> string
(** ["mean ± stddev (min … max, n)"] with sensible formatting. *)
