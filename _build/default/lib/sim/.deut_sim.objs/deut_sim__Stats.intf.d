lib/sim/stats.mli:
