lib/sim/stats.ml: Printf
