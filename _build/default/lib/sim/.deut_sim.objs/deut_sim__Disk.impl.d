lib/sim/disk.ml: Clock Float Int List
