lib/sim/rng.mli:
