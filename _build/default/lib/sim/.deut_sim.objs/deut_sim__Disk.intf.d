lib/sim/disk.mli: Clock
