lib/sim/ivec.mli:
