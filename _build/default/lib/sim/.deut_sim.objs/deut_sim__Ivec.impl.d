lib/sim/ivec.ml: Array Stdlib
