lib/sim/clock.mli:
