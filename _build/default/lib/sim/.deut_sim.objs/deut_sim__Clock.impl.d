lib/sim/clock.ml:
