type params = {
  seek_us : float;
  transfer_us : float;
  sequential_gap : int;
  batch_seek_factor : float;
}

let default_params =
  { seek_us = 4000.0; transfer_us = 50.0; sequential_gap = 1; batch_seek_factor = 0.75 }

type counters = {
  mutable requests : int;
  mutable pages_read : int;
  mutable pages_written : int;
  mutable seeks : int;
  mutable sequential_requests : int;
}

type t = {
  clock : Clock.t;
  params : params;
  counters : counters;
  mutable free_at : float;  (* when the queue drains *)
  mutable head_pos : int;  (* pid just past the last request served *)
}

let create ?(params = default_params) clock =
  {
    clock;
    params;
    counters =
      { requests = 0; pages_read = 0; pages_written = 0; seeks = 0; sequential_requests = 0 };
    free_at = 0.0;
    head_pos = -1000;
  }

let params t = t.params
let counters t = t.counters

let reset_counters t =
  let c = t.counters in
  c.requests <- 0;
  c.pages_read <- 0;
  c.pages_written <- 0;
  c.seeks <- 0;
  c.sequential_requests <- 0

let busy_until t = Float.max t.free_at (Clock.now t.clock)

(* Core queueing step: a request for [count] pages starting at [first_pid]
   begins when the disk is free, pays a seek unless it continues the previous
   transfer, and transfers each page.  Returns the completion time. *)
let submit t ~first_pid ~count =
  let start = Float.max t.free_at (Clock.now t.clock) in
  let sequential = abs (first_pid - t.head_pos) <= t.params.sequential_gap in
  let seek = if sequential then 0.0 else t.params.seek_us in
  let completion = start +. seek +. (float_of_int count *. t.params.transfer_us) in
  t.free_at <- completion;
  t.head_pos <- first_pid + count;
  t.counters.requests <- t.counters.requests + 1;
  if sequential then t.counters.sequential_requests <- t.counters.sequential_requests + 1
  else t.counters.seeks <- t.counters.seeks + 1;
  completion

let submit_read t ~pid =
  let completion = submit t ~first_pid:pid ~count:1 in
  t.counters.pages_read <- t.counters.pages_read + 1;
  completion

let submit_block_read t ~first_pid ~count =
  let completion = submit t ~first_pid ~count in
  t.counters.pages_read <- t.counters.pages_read + count;
  completion

let submit_write t ~pid =
  let completion = submit t ~first_pid:pid ~count:1 in
  t.counters.pages_written <- t.counters.pages_written + 1;
  completion

let submit_batch_read t pids =
  match List.sort Int.compare pids with
  | [] -> busy_until t
  | sorted ->
      let start = Float.max t.free_at (Clock.now t.clock) in
      let batch_seek = t.params.seek_us *. t.params.batch_seek_factor in
      let service = ref 0.0 in
      let prev_end = ref t.head_pos in
      List.iter
        (fun pid ->
          let sequential = abs (pid - !prev_end) <= t.params.sequential_gap in
          service := !service +. (if sequential then 0.0 else batch_seek) +. t.params.transfer_us;
          if sequential then
            t.counters.sequential_requests <- t.counters.sequential_requests + 1
          else t.counters.seeks <- t.counters.seeks + 1;
          prev_end := pid + 1)
        sorted;
      let completion = start +. !service in
      t.free_at <- completion;
      t.head_pos <- !prev_end;
      t.counters.requests <- t.counters.requests + 1;
      t.counters.pages_read <- t.counters.pages_read + List.length sorted;
      completion

let read_sync t ~pid = Clock.advance_to t.clock (submit_read t ~pid)

let read_sequential_sync t ~first_pid ~count =
  let completion = submit t ~first_pid ~count in
  t.counters.pages_read <- t.counters.pages_read + count;
  Clock.advance_to t.clock completion

let drain t = Clock.advance_to t.clock t.free_at
