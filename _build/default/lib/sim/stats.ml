type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min_v : float;
  mutable max_v : float;
}

let create () = { n = 0; mean = 0.0; m2 = 0.0; min_v = infinity; max_v = neg_infinity }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min_v then t.min_v <- x;
  if x > t.max_v then t.max_v <- x

let count t = t.n
let mean t = t.mean
let stddev t = if t.n < 2 then 0.0 else sqrt (t.m2 /. float_of_int (t.n - 1))
let min t = t.min_v
let max t = t.max_v

let summary t =
  if t.n = 0 then "n=0"
  else
    Printf.sprintf "%.1f ± %.1f (%.1f … %.1f, n=%d)" t.mean (stddev t) t.min_v t.max_v t.n
