(** Growable int vector (OCaml 5.1 lacks Dynarray).

    Used for the monitors' DirtySet/WrittenSet accumulation and the
    prefetch list, where append order is semantically meaningful. *)

type t

val create : ?capacity:int -> unit -> t
val length : t -> int
val push : t -> int -> unit
val get : t -> int -> int
val to_array : t -> int array
val clear : t -> unit
val iter : (int -> unit) -> t -> unit
val is_empty : t -> bool
