type t = { mutable data : int array; mutable len : int }

let create ?(capacity = 16) () = { data = Array.make (Stdlib.max capacity 1) 0; len = 0 }
let length t = t.len

let push t v =
  if t.len = Array.length t.data then begin
    let grown = Array.make (2 * t.len) 0 in
    Array.blit t.data 0 grown 0 t.len;
    t.data <- grown
  end;
  t.data.(t.len) <- v;
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Ivec.get: index out of bounds";
  t.data.(i)

let to_array t = Array.sub t.data 0 t.len
let clear t = t.len <- 0

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let is_empty t = t.len = 0
