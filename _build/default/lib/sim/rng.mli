(** Deterministic pseudo-random number generation for reproducible
    experiments.

    The generator is splitmix64: fast, high quality for simulation purposes,
    and trivially seedable so that every experiment in the paper reproduction
    is bit-for-bit repeatable. *)

type t

val create : seed:int -> t

val split : t -> t
(** An independent generator derived from [t]'s stream, for components that
    must not perturb each other's sequences. *)

val int64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

(** Zipfian distribution over [{0, …, n-1}] with skew [theta] (theta = 0 is
    uniform; common benchmark skew is 0.99).  Sampling is O(log n) via binary
    search over the precomputed CDF. *)
module Zipf : sig
  type dist

  val create : n:int -> theta:float -> dist
  val sample : t -> dist -> int
end
