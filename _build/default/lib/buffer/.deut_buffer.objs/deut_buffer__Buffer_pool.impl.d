lib/buffer/buffer_pool.ml: Array Deut_sim Deut_storage Deut_wal Fun Hashtbl List Option
