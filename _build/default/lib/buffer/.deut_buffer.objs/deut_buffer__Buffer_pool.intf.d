lib/buffer/buffer_pool.mli: Deut_sim Deut_storage Deut_wal
